// E11 (extra) — The related-work baseline of §2: multidimensional IR after
// McCabe et al. [11], "an IR system based on a multidimensional database"
// where documents are categorized by location and time. Shows what the
// paper's predecessors could do (scope document retrieval by OLAP
// dimensions, roll up / drill down over the collection) and what they
// could not (return structured, DW-feedable answers — the QA delta).

#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "integration/multidim_ir.h"
#include "ir/html.h"
#include "web/synthetic_web.h"

using namespace dwqa;

int main() {
  PrintBanner(std::cout,
              "Multidimensional IR (related work, McCabe et al.) over the "
              "synthetic web");

  web::WebConfig config;
  config.cities = {"Barcelona", "Madrid", "New York", "London"};
  config.months = {1, 2, 3, 7};
  config.table_weather = false;
  config.noise_pages = 20;
  auto webb = web::SyntheticWeb::Build(config).ValueOrDie();

  auto mdir = integration::MultidimIr::Create().ValueOrDie();
  // Share one analyze-once corpus with the keyword index (the same object
  // an AliQAn instance over this collection would own), so the baseline
  // tokenizes each document exactly once too.
  text::AnalyzedCorpus corpus;
  if (!mdir.AttachCorpus(&corpus).ok()) return 1;
  // Categorize: weather pages carry their city and month; other pages are
  // registered under a catch-all location.
  for (const ir::Document& doc : webb.documents().documents()) {
    std::string plain = doc.format == ir::DocFormat::kPlainText
                            ? doc.raw
                            : ir::Html::StripTags(doc.raw);
    std::string city = "Unknown";
    std::string country = "Unknown";
    Date published(config.year, 1, 1);
    if (StartsWith(doc.url, "web://weather/")) {
      // web://weather/<city-slug>/<year>-<month>.html
      std::vector<std::string> parts = Split(doc.url, '/');
      std::string slug = parts[parts.size() - 2];
      city = ReplaceAll(slug, "-", " ");
      std::string file = parts.back();  // "2004-1.html"
      int month = std::atoi(Split(Split(file, '.')[0], '-')[1].c_str());
      published = Date(config.year, month, 1);
      country = (ToLower(city) == "new york") ? "United States" : "Europe";
    }
    if (!mdir.AddDocument(doc.id, plain, city, country, published).ok()) {
      return 1;
    }
  }

  TablePrinter table({"query", "scope", "documents returned"});
  auto run = [&](const char* label, const std::string& query,
                 std::vector<dw::Filter> filters) {
    auto hits = mdir.Search(query, filters, 100).ValueOrDie();
    table.AddRow({query, label, std::to_string(hits.size())});
    return hits.size();
  };
  size_t unscoped = run("(none)", "temperature weather", {});
  size_t by_city = run("City = barcelona", "temperature weather",
                       {{"location", "City", {"barcelona"}}});
  size_t q1 = run("City = barcelona, Q1 months", "temperature weather",
                  {{"location", "City", {"barcelona"}},
                   {"published", "Month",
                    {"2004-01", "2004-02", "2004-03"}}});
  size_t july = run("City = barcelona, Month = 2004-07",
                    "temperature weather",
                    {{"location", "City", {"barcelona"}},
                     {"published", "Month", {"2004-07"}}});
  table.Print(std::cout);

  PrintBanner(std::cout, "Collection roll-up: documents per city");
  std::cout << mdir.CountBy("location", "City").ValueOrDie()
                   .ToDisplayString();

  std::cout << "\nShared AnalyzedCorpus: " << corpus.document_count()
            << " documents, " << corpus.sentence_count() << " sentences, "
            << corpus.dictionary().size() << " interned terms\n";

  std::cout << "\n[shape check] dimensional scoping narrows monotonically "
               "(all > city > quarter >= month)\nand the drill-down to one "
               "month isolates that month's page — but the output is still\n"
               "*documents*; only the QA integration yields DW-feedable "
               "tuples (see bench_ir_vs_qa).\n";
  bool shape_ok = unscoped > by_city && by_city > q1 && q1 >= july &&
                  july == 1;
  std::cout << (shape_ok ? "[shape check] PASS\n" : "[shape check] FAIL\n");
  return shape_ok ? 0 : 1;
}
