// Microbenchmarks of the QA substrate: question analysis, passage
// selection and answer extraction — the per-question cost structure behind
// bench_fig3_aliqan_phases.

#include <benchmark/benchmark.h>

#include "bench/bench_json_main.h"

#include "ontology/enrichment.h"
#include "ontology/wordnet.h"
#include "qa/aliqan.h"
#include "qa/answer_extractor.h"
#include "qa/crosslingual.h"
#include "qa/question_analyzer.h"
#include "web/synthetic_web.h"

namespace {

using namespace dwqa;

const char* kQuestion =
    "What is the weather like in January of 2004 in El Prat?";

ontology::Ontology& MergedOntology() {
  static auto* onto = [] {
    auto* o = new ontology::Ontology(ontology::MiniWordNet::Build());
    std::vector<ontology::InstanceSeed> seeds = {
        {"El Prat", {}, "Barcelona", ""}};
    ontology::Enricher::Enrich(o, "airport", seeds).ValueOrDie();
    return o;
  }();
  return *onto;
}

qa::AliQAn& IndexedAliqan() {
  static auto* aliqan = [] {
    web::WebConfig config;
    config.cities = {"Barcelona", "Madrid"};
    config.months = {1};
    static auto* webb = new web::SyntheticWeb(
        web::SyntheticWeb::Build(config).ValueOrDie());
    auto* a = new qa::AliQAn(&MergedOntology());
    a->IndexCorpus(&webb->documents());
    return a;
  }();
  return *aliqan;
}

void BM_QuestionAnalysis(benchmark::State& state) {
  qa::QuestionAnalyzer analyzer(&MergedOntology());
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.Analyze(kQuestion));
  }
}
BENCHMARK(BM_QuestionAnalysis);

void BM_PassageSelection(benchmark::State& state) {
  qa::AliQAn& aliqan = IndexedAliqan();
  auto analysis = aliqan.AnalyzeQuestion(kQuestion).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(aliqan.SelectPassages(analysis));
  }
}
BENCHMARK(BM_PassageSelection);

void BM_AnswerExtraction(benchmark::State& state) {
  qa::AliQAn& aliqan = IndexedAliqan();
  auto analysis = aliqan.AnalyzeQuestion(kQuestion).ValueOrDie();
  auto passages = aliqan.SelectPassages(analysis).ValueOrDie();
  qa::AnswerExtractor extractor(&MergedOntology());
  for (auto _ : state) {
    for (const auto& p : passages) {
      benchmark::DoNotOptimize(
          extractor.Extract(analysis, p.text, p.doc, ""));
    }
  }
}
BENCHMARK(BM_AnswerExtraction);

void BM_FullAsk(benchmark::State& state) {
  qa::AliQAn& aliqan = IndexedAliqan();
  for (auto _ : state) {
    benchmark::DoNotOptimize(aliqan.Ask(kQuestion));
  }
}
BENCHMARK(BM_FullAsk);

void BM_SpanishTranslation(benchmark::State& state) {
  const std::string question =
      "\xC2\xBF\x43u\xC3\xA1l es la temperatura en El Prat en enero de "
      "2004?";
  for (auto _ : state) {
    benchmark::DoNotOptimize(qa::SpanishTranslator::Translate(question));
  }
}
BENCHMARK(BM_SpanishTranslation);

}  // namespace

DWQA_BENCH_JSON_MAIN("bench_micro_qa");
