// Chaos sweep — the resilience layer under compound failure: a blanket
// transient fault rate at every fault point PLUS one permanently poisoned
// source, crossed with the circuit breaker on/off and the deadline budget
// unlimited/tight. The paper's feed stores provenance "to make the approach
// robust against errors" (§4.2); this bench measures the active half of
// that robustness story: what the breaker saves, what the budget sheds and
// what the ladder still answers.
//
// Shape checks:
//  * zero crashes — every run returns a report, however degraded;
//  * breaker ON wastes strictly fewer retries than breaker OFF at every
//    nonzero fault rate (unlimited budget; never more under a tight one);
//  * every run's loaded rows are a subset of the fault-free rows — degraded
//    means fewer rows, never different rows;
//  * the accounting identity holds in every cell:
//    facts_extracted == rows_loaded + rows_deduplicated + rows_quarantined.
//
// A second section corrupts the unit markers of every weather page
// (Figure-5's failure mode) and shows the degradation ladder answering
// where the strict extractor cannot.

#include <iostream>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "integration/last_minute_sales.h"
#include "integration/pipeline.h"
#include "web/synthetic_web.h"

using namespace dwqa;
using integration::LastMinuteSales;

namespace {

const char kPoisonedUrl[] = "web://weather/barcelona/2004-1.html";

/// Fact rows with surrogate keys resolved to member names and the measure
/// rounded — chaos runs load fewer (differently numbered) members than the
/// clean run, so only resolved rows compare across runs.
std::multiset<std::string> WeatherRows(const dw::Warehouse& wh) {
  const dw::Table* table = wh.FactTable("Weather").ValueOrDie();
  size_t loc = table->ColumnIndex("fk_location").ValueOrDie();
  size_t day = table->ColumnIndex("fk_day").ValueOrDie();
  size_t temp = table->ColumnIndex("TemperatureC").ValueOrDie();
  std::multiset<std::string> rows;
  for (size_t r = 0; r < table->row_count(); ++r) {
    auto name = [&](const char* dim, size_t col, const char* level) {
      return wh
          .MemberLevelValue(dim, dw::MemberId(table->Get(r, col).as_int()),
                            level)
          .ValueOrDie();
    };
    rows.insert(name("City", loc, "City") + "|" +
                name("Date", day, "Date") + "|" +
                FormatDouble(table->Get(r, temp).as_double(), 2));
  }
  return rows;
}

bool IsSubsetOf(const std::multiset<std::string>& sub,
                const std::multiset<std::string>& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

struct RunResult {
  integration::FeedReport report;
  std::multiset<std::string> rows;
  std::vector<MetricSnapshot> metrics;
  double wall_ms = 0.0;
};

/// One flat key per series, Prometheus style: histogram series become
/// `_sum`/`_count` scalars so the JsonSectionWriter (scalars only) can
/// carry the whole registry snapshot into BENCH_phase3.json.
void TeeMetrics(const std::vector<MetricSnapshot>& metrics,
                bench::JsonSectionWriter* writer) {
  for (const MetricSnapshot& snap : metrics) {
    std::string key = snap.name;
    for (const auto& [k, v] : snap.labels) {
      key += "{" + k + "=" + v + "}";
    }
    if (snap.type == MetricType::kHistogram) {
      writer->Add(key + "_sum", snap.sum, "ms");
      writer->Add(key + "_count", double(snap.count), "");
    } else {
      writer->Add(key, snap.value, "");
    }
  }
}

}  // namespace

int main() {
  PrintBanner(std::cout,
              "Degradation & circuit breaking — the Step-5 feed under "
              "compound chaos");

  web::WebConfig web_config;
  web_config.cities = {"Barcelona", "Madrid", "Valencia"};
  web_config.months = {1};
  web_config.table_weather = false;  // One page (URL) per city.
  auto webb = web::SyntheticWeb::Build(web_config).ValueOrDie();
  ontology::UmlModel uml = LastMinuteSales::MakeUmlModel();
  const std::vector<std::string> questions = {
      "What is the temperature in Barcelona in January of 2004?",
      "What is the temperature in Madrid in January of 2004?",
      "What is the temperature in Valencia in January of 2004?",
  };

  auto run = [&](double fault_rate, bool breaker_on,
                 double budget) -> Result<RunResult> {
    auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
    integration::PipelineConfig config =
        LastMinuteSales::DefaultPipelineConfig();
    config.qa.max_answers = 40;
    config.qa.passages_to_analyze = 8;
    if (fault_rate > 0.0) {
      config.resilience.fault =
          FaultConfig::TransientEverywhere(fault_rate, /*seed=*/7);
      // One permanently poisoned source on top of the blanket flakiness:
      // every ETL load fed from the Barcelona page fails, always. Without a
      // breaker each of its facts burns the whole retry budget.
      config.resilience.fault.rules.push_back(
          {std::string(kFaultPointEtlLoad) + ":" + kPoisonedUrl, 1.0,
           FaultMode::kTransient, StatusCode::kUnavailable});
    }
    config.resilience.retry.sleep = false;
    config.resilience.retry.max_attempts = 6;
    if (breaker_on) {
      config.resilience.breaker.enabled = true;
      config.resilience.breaker.failure_threshold = 3;
      config.resilience.breaker.cooldown_attempts = 5;
    }
    config.resilience.deadline.budget = budget;
    // Ladder armed; with intact pages it never engages (everything Full).
    config.qa.degradation.enable_relaxed = true;
    config.qa.degradation.enable_ir_only = true;
    integration::IntegrationPipeline pipeline(&wh, &uml, config);
    bench::Timer timer;
    DWQA_RETURN_NOT_OK(pipeline.RunAll(&webb.documents()));
    DWQA_ASSIGN_OR_RETURN(
        integration::FeedReport report,
        pipeline.RunStep5(questions, "Weather", "temperature"));
    RunResult result;
    result.report = std::move(report);
    result.rows = WeatherRows(wh);
    result.metrics = pipeline.metrics()->Snapshot();
    result.wall_ms = timer.ElapsedMs();
    return result;
  };

  const double kUnlimited = std::numeric_limits<double>::infinity();

  auto baseline = run(0.0, false, kUnlimited);
  if (!baseline.ok()) {
    std::cerr << baseline.status() << std::endl;
    return 1;
  }
  const std::multiset<std::string> baseline_rows = baseline->rows;

  // Indexation now charges one unit per analyzed sentence, so a "tight"
  // budget is calibrated against the baseline's indexation ledger rather
  // than hard-coded: enough to index plus ~58 units of search phase — the
  // same squeeze the original fixed 60-unit budget applied.
  double index_spent = 0.0;
  for (const auto& [stage, spent] :
       baseline->report.health.spent_by_stage) {
    if (stage.rfind("qa.index", 0) == 0 || stage.rfind("ir.index", 0) == 0) {
      index_spent += spent;
    }
  }
  const double kTight = index_spent + 58.0;
  bool shape_ok = baseline->report.rows_loaded > 0;

  TablePrinter table({"fault rate", "breaker", "budget", "rows",
                      "circuit open", "wasted retries", "breaker rejects",
                      "ddl exhausted", "rows vs clean", "wall (ms)"});
  integration::PipelineHealth chaos_health;
  std::vector<MetricSnapshot> chaos_metrics;
  for (double rate : {0.1, 0.2, 0.3}) {
    for (double budget : {kUnlimited, kTight}) {
      RunResult off_result, on_result;
      for (bool breaker_on : {false, true}) {
        auto result = run(rate, breaker_on, budget);
        if (!result.ok()) {
          // Shape check 1: zero crashes — a chaos run must degrade, not die.
          std::cerr << "run(" << rate << ", " << breaker_on << ", " << budget
                    << ") failed: " << result.status() << std::endl;
          return 1;
        }
        (breaker_on ? on_result : off_result) = std::move(*result);
        const integration::FeedReport& r =
            (breaker_on ? on_result : off_result).report;
        const std::multiset<std::string>& rows =
            (breaker_on ? on_result : off_result).rows;
        bool subset = IsSubsetOf(rows, baseline_rows);
        bool identity = r.facts_extracted ==
                        r.rows_loaded + r.rows_deduplicated +
                            r.rows_quarantined;
        shape_ok = shape_ok && subset && identity;
        size_t circuit_open =
            r.quarantined_by_reason.count(qa::RejectReason::kCircuitOpen)
                ? r.quarantined_by_reason.at(qa::RejectReason::kCircuitOpen)
                : 0;
        table.AddRow({std::to_string(int(rate * 100)) + "%",
                      breaker_on ? "on" : "off",
                      budget == kUnlimited ? "unlimited"
                                           : FormatDouble(budget, 0),
                      std::to_string(r.rows_loaded),
                      std::to_string(circuit_open),
                      std::to_string(r.wasted_retries),
                      std::to_string(r.breaker_rejections),
                      r.deadline_exhausted ? "yes" : "no",
                      subset ? "subset" : "DIVERGED",
                      FormatDouble((breaker_on ? on_result : off_result)
                                       .wall_ms,
                                   0)});
      }
      // Shape check 2: the breaker cuts the waste — strictly under an
      // unlimited budget, never worse under a tight one (where the deadline
      // may shed the doomed loads before either variant retries them).
      if (budget == kUnlimited) {
        shape_ok = shape_ok && on_result.report.wasted_retries <
                                   off_result.report.wasted_retries;
      } else {
        shape_ok = shape_ok && on_result.report.wasted_retries <=
                                   off_result.report.wasted_retries;
        // Shape check 3: a tight budget is actually tight.
        shape_ok = shape_ok && on_result.report.deadline_exhausted &&
                   off_result.report.deadline_exhausted;
      }
      if (rate == 0.3 && budget == kTight) {
        chaos_health = on_result.report.health;
        chaos_metrics = on_result.metrics;
      }
    }
  }
  table.Print(std::cout);

  std::cout << "\nPipeline health of the most chaotic cell (30% faults, "
               "breaker on, tight budget):\n"
            << chaos_health.RenderTable();

  // --- Degradation ladder demo: Figure-5 unit corruption ------------------
  // Every unit marker of every page is destroyed (deterministically — the
  // probabilistic FaultMode::kBreakUnits leaves survivors); the strict
  // "number + scale" extractor finds nothing, the relaxed rung still
  // recovers the bare values (flagged kRelaxedPattern, at a discounted
  // confidence).
  ir::DocumentStore stripped_docs;
  for (const ir::Document& doc : webb.documents().documents()) {
    std::string raw = ReplaceAll(doc.raw, "\xC2\xBA C", "");
    raw = ReplaceAll(raw, "\xC2\xBA", "");
    raw = ReplaceAll(raw, " F ", " ");
    stripped_docs.Add(doc.url, doc.title, doc.format, std::move(raw));
  }

  auto ladder_run = [&](bool ladder_on) -> Result<integration::FeedReport> {
    auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
    integration::PipelineConfig config =
        LastMinuteSales::DefaultPipelineConfig();
    config.qa.max_answers = 40;
    config.qa.passages_to_analyze = 8;
    config.qa.degradation.enable_relaxed = ladder_on;
    config.qa.degradation.enable_ir_only = ladder_on;
    integration::IntegrationPipeline pipeline(&wh, &uml, config);
    DWQA_RETURN_NOT_OK(pipeline.RunAll(&stripped_docs));
    return pipeline.RunStep5(questions, "Weather", "temperature");
  };
  auto ladder_off = ladder_run(false);
  auto ladder_on = ladder_run(true);
  if (!ladder_off.ok() || !ladder_on.ok()) {
    std::cerr << "ladder demo failed" << std::endl;
    return 1;
  }
  TablePrinter ladder_table({"ladder", "questions answered", "Full",
                             "RelaxedPattern", "IrOnly", "Unanswered",
                             "facts", "rows loaded"});
  auto level_count = [](const integration::FeedReport& r,
                        qa::DegradationLevel level) {
    auto it = r.questions_by_degradation.find(level);
    return it == r.questions_by_degradation.end() ? size_t(0) : it->second;
  };
  for (const auto* entry :
       {&*ladder_off, &*ladder_on}) {
    const integration::FeedReport& r = *entry;
    ladder_table.AddRow(
        {entry == &*ladder_off ? "off" : "on",
         std::to_string(r.questions_answered),
         std::to_string(level_count(r, qa::DegradationLevel::kFull)),
         std::to_string(
             level_count(r, qa::DegradationLevel::kRelaxedPattern)),
         std::to_string(level_count(r, qa::DegradationLevel::kIrOnly)),
         std::to_string(level_count(r, qa::DegradationLevel::kUnanswered)),
         std::to_string(r.facts_extracted),
         std::to_string(r.rows_loaded)});
  }
  std::cout << "\nDegradation ladder over unit-corrupted pages "
               "(Figure 5's failure mode):\n";
  ladder_table.Print(std::cout);
  // Shape check 4: the ladder answers questions the strict extractor lost.
  shape_ok =
      shape_ok && ladder_on->questions_answered >
                      ladder_off->questions_answered;

  // Tee the observability snapshot of the most chaotic cell into the shared
  // bench artifact: a perf run leaves the full registry next to its timings.
  bench::JsonSectionWriter writer("bench_degradation");
  TeeMetrics(chaos_metrics, &writer);
  writer.Flush();

  std::cout << (shape_ok
                    ? "\n[shape check] PASS — no crashes, the breaker "
                      "strictly cuts wasted retries, every degraded run's "
                      "rows are a subset of the clean rows, and the ladder "
                      "answers where the strict extractor cannot.\n"
                    : "\n[shape check] FAIL\n");
  return shape_ok ? 0 : 1;
}
