# Bench binaries land in build/bench/ so that `for b in build/bench/*` runs
# exactly the benchmark executables.
set(DWQA_BENCH_DIR ${CMAKE_BINARY_DIR}/bench)

function(dwqa_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE dwqa_integration)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR})
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${DWQA_BENCH_DIR})
endfunction()

function(dwqa_microbench name)
  dwqa_bench(${name})
  target_link_libraries(${name} PRIVATE benchmark::benchmark)
endfunction()

dwqa_bench(bench_table1_pipeline)
dwqa_bench(bench_fig1_uml_model)
dwqa_bench(bench_fig2_ontology)
dwqa_bench(bench_fig3_aliqan_phases)
dwqa_bench(bench_fig4_prose_extraction)
dwqa_bench(bench_fig5_table_extraction)
dwqa_bench(bench_ir_vs_qa)
dwqa_bench(bench_ontology_enrichment)
dwqa_bench(bench_dw_feed_bi)
dwqa_bench(bench_feed_resilience)
dwqa_bench(bench_degradation)
dwqa_bench(bench_answer_taxonomy)
dwqa_bench(bench_multidim_ir)
dwqa_bench(bench_serve_load)
target_link_libraries(bench_serve_load PRIVATE dwqa_serve)
dwqa_bench(bench_recovery)
dwqa_bench(bench_federation)
dwqa_microbench(bench_micro_text)
dwqa_microbench(bench_micro_qa)
dwqa_microbench(bench_micro_ir)
dwqa_microbench(bench_micro_olap)
dwqa_microbench(bench_micro_ontology)

# Fast perf smokes: `ctest -L perf` runs the fig3 phase study in --smoke
# mode plus one repetition of each microbench, all teeing into the shared
# bench-JSON artifact (BENCH_phase3.json in the build dir unless
# DWQA_BENCH_JSON overrides it). scripts/check.sh runs this label so a
# broken bench or reporter fails CI, not just the nightly sweep.
add_test(NAME perf_fig3_aliqan_phases_smoke
  COMMAND bench_fig3_aliqan_phases --smoke
  WORKING_DIRECTORY ${CMAKE_BINARY_DIR})
set_tests_properties(perf_fig3_aliqan_phases_smoke PROPERTIES LABELS perf)
add_test(NAME perf_serve_load_smoke
  COMMAND bench_serve_load --smoke
  WORKING_DIRECTORY ${CMAKE_BINARY_DIR})
set_tests_properties(perf_serve_load_smoke PROPERTIES LABELS perf)
add_test(NAME perf_recovery_smoke
  COMMAND bench_recovery --smoke
  WORKING_DIRECTORY ${CMAKE_BINARY_DIR})
set_tests_properties(perf_recovery_smoke PROPERTIES LABELS perf)
add_test(NAME perf_federation_smoke
  COMMAND bench_federation --smoke
  WORKING_DIRECTORY ${CMAKE_BINARY_DIR})
set_tests_properties(perf_federation_smoke PROPERTIES LABELS perf)
foreach(micro bench_micro_text bench_micro_qa bench_micro_ir
        bench_micro_olap bench_micro_ontology)
  add_test(NAME perf_${micro}_smoke
    COMMAND ${micro} --benchmark_min_time=0.01
    WORKING_DIRECTORY ${CMAKE_BINARY_DIR})
  set_tests_properties(perf_${micro}_smoke PROPERTIES LABELS perf)
endforeach()
