// E10 — Exercises AliQAn's full 20-category answer-type taxonomy (§4.1)
// on the CLEF-style question set: per category, whether the question
// pattern detects the right type and whether the top-1 answer is correct.

#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "ontology/enrichment.h"
#include "ontology/wordnet.h"
#include "qa/aliqan.h"
#include "web/question_factory.h"
#include "web/synthetic_web.h"

using namespace dwqa;

int main() {
  PrintBanner(std::cout, "AliQAn answer-type taxonomy — the 20 categories "
                         "of section 4.1");

  web::WebConfig config;
  config.cities = {"Barcelona", "Madrid"};
  config.months = {1};
  auto webb = web::SyntheticWeb::Build(config).ValueOrDie();

  ontology::Ontology wn = ontology::MiniWordNet::Build();
  // Minimal Step-2 enrichment so location questions resolve.
  std::vector<ontology::InstanceSeed> seeds = {
      {"El Prat", {}, "Barcelona", ""}};
  if (!ontology::Enricher::Enrich(&wn, "airport", seeds).ok()) return 1;

  qa::AliQAn aliqan(&wn);
  if (!aliqan.IndexCorpus(&webb.documents()).ok()) return 1;

  TablePrinter table({"category", "question", "type detected", "top-1",
                      "correct"});
  size_t typed = 0, correct = 0;
  auto questions = web::QuestionFactory::ClefStyleQuestions();
  for (const auto& gq : questions) {
    auto answers = aliqan.Ask(gq.question);
    std::string top1 = "(none)";
    bool type_ok = false, ans_ok = false;
    if (answers.ok()) {
      type_ok = answers->analysis.answer_type == gq.expected_type;
      if (!answers->empty()) {
        const auto& best = answers->best();
        top1 = best.answer_text;
        if (top1.size() > 36) top1 = top1.substr(0, 33) + "...";
        ans_ok = web::QuestionFactory::Matches(gq, best.answer_text,
                                               best.has_value, best.value);
        // The weather question defers to the truth table.
        if (gq.gold.empty() &&
            gq.expected_type == qa::AnswerType::kNumericalMeasure &&
            best.has_value && best.date.has_value()) {
          auto it = webb.truth().temperature.find(
              {ToLower(best.location), best.date->ToIsoString()});
          ans_ok = it != webb.truth().temperature.end() &&
                   std::abs(best.value - it->second) < 0.76;
        }
      }
    }
    typed += type_ok;
    correct += ans_ok;
    std::string q = gq.question;
    if (q.size() > 46) q = q.substr(0, 43) + "...";
    table.AddRow({qa::AnswerTypeName(gq.expected_type), q,
                  type_ok ? "yes" : "NO", top1, ans_ok ? "yes" : "NO"});
  }
  table.Print(std::cout);
  std::cout << "\nType detection: " << bench::Pct(typed, questions.size())
            << ", top-1 answer accuracy: "
            << bench::Pct(correct, questions.size()) << "\n";
  bool shape_ok = typed == questions.size() &&
                  correct * 10 >= questions.size() * 6;
  std::cout << (shape_ok ? "[shape check] PASS\n" : "[shape check] FAIL\n");
  return shape_ok ? 0 : 1;
}
