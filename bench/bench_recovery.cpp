// Durability cost study — what the crash-safety layer charges at feed time
// and what it pays back at restart time.
//
// Series: N facts fed through the WAL (synced vs unsynced appends), then
// three restart paths measured on the same log: cold replay of the full
// WAL, snapshot-only load, and snapshot + WAL-tail replay (the steady
// state of a deployed feed). Shape check: recovery must restore the exact
// row count for every path — a durability layer that is fast but lossy
// benches as a failure, not a number.
//
// `--smoke` shrinks the series for the `perf`-labeled ctest smoke.

#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/table_printer.h"
#include "dw/etl.h"
#include "dw/recovery.h"
#include "dw/snapshot.h"
#include "dw/wal.h"
#include "integration/last_minute_sales.h"

using namespace dwqa;
using integration::LastMinuteSales;

namespace {

namespace stdfs = std::filesystem;

dw::WalFact MakeFact(int i) {
  static const char* kCities[] = {"Barcelona", "Madrid", "Valencia",
                                  "Seville"};
  const std::string city = kCities[i % 4];
  Date date(2004, 1 + (i / 28) % 12, 1 + i % 28);
  dw::WalFact fact;
  fact.fact_name = "Weather";
  fact.attribute = "temperature";
  fact.value = 5.0 + (i % 30);
  fact.unit = "\xC2\xBA\x43";
  fact.date_iso = date.ToIsoString();
  fact.location = city;
  fact.url = "http://weather.example/" + city + "/" + fact.date_iso;
  fact.confidence = 0.9;
  fact.dedup_key = "temperature|" + city + "|" + fact.date_iso;
  fact.record.role_paths = {{city}, dw::DateMemberPath(date), {fact.url}};
  fact.record.measures = {dw::Value(fact.value)};
  return fact;
}

struct FeedCost {
  double append_ms = 0.0;
  double snapshot_ms = 0.0;
};

/// Feeds `n` facts through a fresh WAL at `dir`, snapshotting at the end.
FeedCost Feed(const std::string& dir, int n, bool sync_each) {
  FeedCost cost;
  dw::WalOptions options;
  options.sync_each_append = sync_each;
  auto wal = dw::WalWriter::Open(dir, options).ValueOrDie();
  dw::Warehouse wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  dw::EtlLoader loader(&wh);
  {
    bench::Timer timer;
    for (int i = 0; i < n; ++i) {
      dw::WalFact fact = MakeFact(i);
      DWQA_CHECK(wal->AppendFact(fact).ok());
      DWQA_CHECK(loader.LoadRecord(fact.fact_name, fact.record).ok());
    }
    DWQA_CHECK(wal->Sync().ok());
    cost.append_ms = timer.ElapsedMs();
  }
  {
    bench::Timer timer;
    DWQA_CHECK(dw::SnapshotWriter::Write(dir, wh, wal->last_lsn()).ok());
    cost.snapshot_ms = timer.ElapsedMs();
  }
  return cost;
}

double MeasureOpen(const std::string& dir, size_t expect_rows) {
  dw::RecoveryOptions options;
  options.bootstrap_schema = LastMinuteSales::MakeSchema();
  bench::Timer timer;
  auto recovered = dw::Recovery::Open(dir, options).ValueOrDie();
  double ms = timer.ElapsedMs();
  size_t rows = recovered.warehouse.FactRowCount("Weather").ValueOrDie();
  if (rows != expect_rows) {
    std::cerr << "bench_recovery: recovery LOST DATA — expected "
              << expect_rows << " rows, got " << rows << "\n";
    std::exit(1);
  }
  return ms;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  PrintBanner(std::cout,
              "Durability cost — WAL feed overhead and the three restart "
              "paths");

  const std::vector<int> series =
      smoke ? std::vector<int>{200} : std::vector<int>{200, 1000, 5000};
  const stdfs::path base =
      stdfs::temp_directory_path() / "dwqa_bench_recovery";

  TablePrinter table({"facts", "append synced (ms)", "append unsynced (ms)",
                      "snapshot (ms)", "cold replay (ms)",
                      "snap+tail open (ms)"});
  bench::JsonSectionWriter json("bench_recovery");

  for (int n : series) {
    // Unsynced feed: the WAL price without the per-record fsync barrier.
    stdfs::remove_all(base);
    double unsynced_ms = Feed(base.string(), n, false).append_ms;

    // Synced feed (the default durability contract), snapshotted at the
    // end — this directory then serves the restart measurements.
    stdfs::remove_all(base);
    FeedCost cost = Feed(base.string(), n, true);

    // Steady state: snapshot + empty tail.
    double open_ms = MeasureOpen(base.string(), size_t(n));

    // Cold start: same log, snapshots removed, full replay.
    for (const auto& entry : stdfs::directory_iterator(base)) {
      if (entry.path().filename().string().rfind("snap-", 0) == 0) {
        stdfs::remove_all(entry.path());
      }
    }
    double replay_ms = MeasureOpen(base.string(), size_t(n));

    table.AddRow({std::to_string(n), FormatDouble(cost.append_ms, 1),
                  FormatDouble(unsynced_ms, 1),
                  FormatDouble(cost.snapshot_ms, 1),
                  FormatDouble(replay_ms, 1), FormatDouble(open_ms, 1)});
    const std::string tag = std::to_string(n);
    json.Add("feed_synced_" + tag + "_ms", cost.append_ms, "ms");
    json.Add("feed_unsynced_" + tag + "_ms", unsynced_ms, "ms");
    json.Add("snapshot_" + tag + "_ms", cost.snapshot_ms, "ms");
    json.Add("cold_replay_" + tag + "_ms", replay_ms, "ms");
    json.Add("snapshot_open_" + tag + "_ms", open_ms, "ms");
  }
  stdfs::remove_all(base);

  table.Print(std::cout);
  if (!json.Flush()) {
    std::cerr << "bench_recovery: bench-JSON flush failed\n";
    return 1;
  }
  return 0;
}
