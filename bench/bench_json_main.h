#ifndef DWQA_BENCH_BENCH_JSON_MAIN_H_
#define DWQA_BENCH_BENCH_JSON_MAIN_H_

// Drop-in replacement for BENCHMARK_MAIN() that tees every microbenchmark
// run into the shared bench-JSON artifact (bench/bench_json.h) while still
// printing the usual console table.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_json.h"

namespace dwqa {
namespace bench {

/// Console output as usual, plus one JSON metric per benchmark run
/// (adjusted real time, in the run's own time unit).
class JsonTeeReporter : public ::benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(std::string bench_name)
      : writer_(std::move(bench_name)) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      writer_.Add(run.benchmark_name(), run.GetAdjustedRealTime(),
                  ::benchmark::GetTimeUnitString(run.time_unit));
    }
    ::benchmark::ConsoleReporter::ReportRuns(reports);
  }

  bool Flush() const { return writer_.Flush(); }

 private:
  JsonSectionWriter writer_;
};

}  // namespace bench
}  // namespace dwqa

/// BENCHMARK_MAIN() with the JSON tee. `name` is the section key in the
/// merged artifact — use the binary's own name.
#define DWQA_BENCH_JSON_MAIN(name)                                         \
  int main(int argc, char** argv) {                                        \
    ::benchmark::Initialize(&argc, argv);                                  \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;    \
    ::dwqa::bench::JsonTeeReporter reporter(name);                         \
    ::benchmark::RunSpecifiedBenchmarks(&reporter);                        \
    reporter.Flush();                                                      \
    ::benchmark::Shutdown();                                               \
    return 0;                                                              \
  }                                                                        \
  int main(int, char**)

#endif  // DWQA_BENCH_BENCH_JSON_MAIN_H_
