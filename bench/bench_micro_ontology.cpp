// Microbenchmarks of the ontology substrate: build, merge-strategy
// ablation (exact / +partial / +head — the DESIGN.md Step-3 ablation),
// WSD and IsA traversal.

#include <benchmark/benchmark.h>

#include "bench/bench_json_main.h"

#include "integration/last_minute_sales.h"
#include "ontology/enrichment.h"
#include "ontology/merge.h"
#include "ontology/uml_to_ontology.h"
#include "ontology/wordnet.h"
#include "ontology/wsd.h"

namespace {

using namespace dwqa::ontology;

Ontology DomainOntology() {
  auto model = dwqa::integration::LastMinuteSales::MakeUmlModel();
  Ontology domain = UmlToOntology::Transform(model).ValueOrDie();
  std::vector<InstanceSeed> seeds;
  for (const auto& a : dwqa::integration::LastMinuteSales::Airports()) {
    seeds.push_back({a.name, a.aliases, a.city, ""});
  }
  Enricher::Enrich(&domain, "airport", seeds).ValueOrDie();
  return domain;
}

void BM_BuildMiniWordNet(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MiniWordNet::Build());
  }
}
BENCHMARK(BM_BuildMiniWordNet);

/// Merge-strategy ablation: 0 = exact only, 1 = +partial, 2 = +head.
void BM_MergeStrategy(benchmark::State& state) {
  Ontology domain = DomainOntology();
  MergeOptions options;
  options.enable_partial = state.range(0) >= 1;
  options.enable_head = state.range(0) >= 2;
  size_t new_trees = 0;
  for (auto _ : state) {
    Ontology upper = MiniWordNet::Build();
    auto report = OntologyMerger::Merge(&upper, domain, options);
    new_trees = report.ValueOrDie().new_tree;
    benchmark::DoNotOptimize(upper);
  }
  state.counters["new_trees"] = double(new_trees);
}
BENCHMARK(BM_MergeStrategy)->DenseRange(0, 2);

void BM_WsdDisambiguate(benchmark::State& state) {
  Ontology upper = MiniWordNet::Build();
  Ontology domain = DomainOntology();
  OntologyMerger::Merge(&upper, domain).ValueOrDie();
  Wsd wsd(&upper);
  std::vector<std::string> context = {"temperature", "january", "flight",
                                      "airport", "barcelona"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(wsd.Disambiguate("el prat", context));
  }
}
BENCHMARK(BM_WsdDisambiguate);

void BM_IsATraversal(benchmark::State& state) {
  Ontology wn = MiniWordNet::Build();
  ConceptId entity = wn.FindClass("entity").ValueOrDie();
  auto prat = wn.Find("kennedy international airport");
  for (auto _ : state) {
    benchmark::DoNotOptimize(wn.IsA(prat[0], entity));
  }
}
BENCHMARK(BM_IsATraversal);

void BM_LemmaLookup(benchmark::State& state) {
  Ontology wn = MiniWordNet::Build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(wn.Find("barcelona"));
    benchmark::DoNotOptimize(wn.Find("temperature"));
    benchmark::DoNotOptimize(wn.Find("zeppelin"));
  }
}
BENCHMARK(BM_LemmaLookup);

}  // namespace

DWQA_BENCH_JSON_MAIN("bench_micro_ontology");
