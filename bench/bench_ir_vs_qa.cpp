// E7 — Quantifies the paper's three QA-vs-IR differences (§1): IR returns
// whole documents the user must search through; QA returns a precise
// answer; QA pays for deeper analysis with time, mitigated by the IR
// filter.
//
// Systems compared on the same weather questions:
//   IR-doc      — document-level TF-IDF (the classical baseline),
//   IR-passage  — IR-n-style passage retrieval alone,
//   QA          — the full AliQAn pipeline.
// Metrics: answer-in-top-1 (for IR: the answer value occurs somewhere in
// the returned text), precise-tuple@1 (the structured answer is correct —
// only QA can score here), user-effort (sentences the user must read) and
// latency per question.

#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "ontology/enrichment.h"
#include "ontology/wordnet.h"
#include "qa/aliqan.h"
#include "text/sentence_splitter.h"
#include "web/question_factory.h"
#include "web/synthetic_web.h"

using namespace dwqa;

namespace {

/// True if some truth value of the question's month/city appears verbatim
/// in `text` followed by a degree sign — the "user could find it" notion.
bool AnswerStringInText(const web::GoldQuestion& q, const std::string& text) {
  for (const std::string& gold : q.gold) {
    if (text.find(gold + "\xC2\xBA") != std::string::npos) return true;
  }
  return false;
}

}  // namespace

int main() {
  PrintBanner(std::cout, "IR vs QA on weather questions (paper section 1 "
                         "claims)");

  web::WebConfig config;
  config.cities = {"Barcelona", "Madrid", "Paris", "Rome", "London"};
  config.months = {1};
  config.table_weather = false;
  config.noise_pages = 40;
  auto webb = web::SyntheticWeb::Build(config).ValueOrDie();
  auto questions = web::QuestionFactory::WeatherQuestions(webb);

  ontology::Ontology wn = ontology::MiniWordNet::Build();
  qa::AliQAn aliqan(&wn);
  if (!aliqan.IndexCorpus(&webb.documents()).ok()) return 1;

  struct SystemScore {
    size_t hit = 0;          // Answer somewhere in top-1 result.
    size_t precise = 0;      // Correct structured tuple at rank 1.
    double effort = 0;       // Sentences returned.
    double latency_ms = 0;
  };
  SystemScore ir_doc, ir_passage, qa_sys;

  for (const auto& gq : questions) {
    // --- IR-doc baseline -------------------------------------------------
    {
      bench::Timer timer;
      auto hits = aliqan.document_index().Search(gq.question, 1);
      ir_doc.latency_ms += timer.ElapsedMs();
      if (!hits.empty()) {
        std::string text = aliqan.PlainText(hits[0].doc).ValueOrDie();
        ir_doc.hit += AnswerStringInText(gq, text);
        ir_doc.effort += text::SentenceSplitter::Split(text).size();
      }
    }
    // --- IR-passage ------------------------------------------------------
    {
      bench::Timer timer;
      auto analysis = aliqan.AnalyzeQuestion(gq.question).ValueOrDie();
      auto passages = aliqan.SelectPassages(analysis).ValueOrDie();
      ir_passage.latency_ms += timer.ElapsedMs();
      if (!passages.empty()) {
        ir_passage.hit += AnswerStringInText(gq, passages[0].text);
        ir_passage.effort +=
            text::SentenceSplitter::Split(passages[0].text).size();
      }
    }
    // --- Full QA -----------------------------------------------------------
    {
      bench::Timer timer;
      auto answers = aliqan.Ask(gq.question);
      qa_sys.latency_ms += timer.ElapsedMs();
      if (answers.ok() && !answers->empty()) {
        const auto& best = answers->best();
        bool ok = web::QuestionFactory::Matches(gq, best.answer_text,
                                                best.has_value, best.value);
        qa_sys.hit += ok;
        qa_sys.precise += ok;
        qa_sys.effort += 1.0;  // One structured tuple to read.
      }
    }
  }

  size_t n = questions.size();
  TablePrinter table({"system", "answer in top-1", "precise tuple@1",
                      "user effort (sentences)", "latency ms/question"});
  auto row = [&](const char* name, const SystemScore& s, bool structured) {
    table.AddRow({name, bench::Pct(s.hit, n),
                  structured ? bench::Pct(s.precise, n) : "n/a (documents)",
                  FormatDouble(s.effort / double(n), 1),
                  FormatDouble(s.latency_ms / double(n), 3)});
  };
  row("IR (documents)", ir_doc, false);
  row("IR-n (passages)", ir_passage, false);
  row("QA (AliQAn)", qa_sys, true);
  table.Print(std::cout);

  std::cout << "\n[shape check] QA turns the user effort of scanning ~"
            << FormatDouble(ir_doc.effort / double(n), 0)
            << " sentences into one structured tuple, at higher latency;\n"
               "only QA produces machine-processable answers for the DW.\n";
  bool shape_ok = qa_sys.precise * 10 >= n * 8 &&             // QA precise.
                  ir_doc.effort > qa_sys.effort * 10 &&        // Effort gap.
                  qa_sys.latency_ms >= ir_doc.latency_ms;      // QA slower.
  std::cout << (shape_ok ? "[shape check] PASS\n" : "[shape check] FAIL\n");
  return shape_ok ? 0 : 1;
}
