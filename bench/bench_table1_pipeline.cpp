// E1 — Reproduces the paper's Table 1: "The output of Step 5 in our
// approach for the web page in Figure 4". Every row of the table is
// regenerated live from the pipeline: the query's morpho-syntactic
// analysis, the matched question pattern, the expected answer type, the
// main SBs handed to IR-n, the retrieved passage with its analysis, and
// the extracted (temperature – date – city) answer.

#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "integration/last_minute_sales.h"
#include "integration/pipeline.h"
#include "text/chunker.h"
#include "text/pos_tagger.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"
#include "web/synthetic_web.h"

using namespace dwqa;
using integration::LastMinuteSales;

namespace {

void Row(const std::string& label, const std::string& value) {
  std::cout << "| " << label << "\n";
  std::cout << "|   " << ReplaceAll(value, "\n", "\n|   ") << "\n";
  std::cout << "|\n";
}

std::string AnnotatePassage(const std::string& passage) {
  std::string out;
  text::PosTagger tagger;
  for (const std::string& sentence :
       text::SentenceSplitter::Split(passage)) {
    text::TokenSequence toks = text::Tokenizer::Tokenize(sentence);
    tagger.Tag(&toks);
    if (!out.empty()) out += "\n";
    out += text::Chunker::AnnotateSentence(toks);
  }
  return out;
}

}  // namespace

int main() {
  PrintBanner(std::cout, "Table 1 — the output of Step 5 for the Figure 4 "
                         "web page");

  // The paper's setup: Last Minute Sales DW + the synthetic web standing
  // in for the live Web (Barcelona weather pages, January 2004).
  auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  web::WebConfig web_config;
  web_config.cities = {"Barcelona", "Madrid"};
  web_config.months = {1};
  auto webb = web::SyntheticWeb::Build(web_config).ValueOrDie();
  ontology::UmlModel uml = LastMinuteSales::MakeUmlModel();
  integration::IntegrationPipeline pipeline(
      &wh, &uml, LastMinuteSales::DefaultPipelineConfig());
  if (auto st = pipeline.RunAll(&webb.documents()); !st.ok()) {
    std::cerr << st << std::endl;
    return 1;
  }

  const std::string query =
      "What is the weather like in January of 2004 in El Prat?";
  auto answers = pipeline.aliqan()->Ask(query);
  if (!answers.ok() || answers->empty()) {
    std::cerr << "no answer extracted" << std::endl;
    return 1;
  }
  const qa::QuestionAnalysis& analysis = answers->analysis;

  Row("Query", query);
  Row("Syntactic-morphologic analysis of the query", analysis.annotated);
  Row("Question pattern", analysis.pattern);
  Row("Expected answer type", analysis.expected_answer);
  std::string sbs;
  for (const std::string& sb : analysis.main_sbs) {
    sbs += "[" + sb + "]  ";
  }
  Row("Main SBs passed to the IR-n passage retrieval system", sbs);
  // The paper shows the passage the answer came from (one day's entry of
  // the eight-sentence passage); use the winning candidate's passage and
  // show the two lines around its sentence.
  const qa::AnswerCandidate& winning = answers->best();
  auto lines = text::SentenceSplitter::Split(winning.passage_text);
  std::string head;
  size_t anchor = 0;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (lines[i] == winning.sentence) {
      anchor = i > 0 ? i - 1 : 0;
      break;
    }
  }
  for (size_t i = anchor; i < lines.size() && i < anchor + 2; ++i) {
    if (!head.empty()) head += "\n";
    head += lines[i];
  }
  Row("Passage returned by the IR-n system", head);
  Row("Syntactic-morphologic analysis of the passage",
      AnnotatePassage(head));

  const qa::AnswerCandidate& best = answers->best();
  std::string extracted = "(" + best.answer_text;
  if (best.date.has_value()) {
    extracted += " \xE2\x80\x93 " + best.date->ToLongString();
  }
  extracted += " \xE2\x80\x93 " + best.location + ")";
  Row("Extracted answer", extracted);

  PrintBanner(std::cout, "Step 5 database rows (temperature - date - city "
                         "- web page)");
  for (const auto& fact :
       qa::ToStructuredFacts(*answers, "temperature")) {
    std::cout << "  " << fact.ToDisplayString() << "\n";
  }

  // Sanity for bench_output.txt: the headline answer must be a plausible
  // January Barcelona value with its date.
  if (!best.has_value || !best.date.has_value() ||
      best.location != "Barcelona") {
    std::cerr << "Table 1 reproduction incomplete" << std::endl;
    return 1;
  }
  std::cout << "\n[shape check] extracted a unit-tagged temperature with "
               "complete date for Barcelona: OK\n";
  return 0;
}
