#ifndef DWQA_BENCH_BENCH_UTIL_H_
#define DWQA_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cmath>
#include <string>

#include "common/string_util.h"
#include "qa/structured.h"
#include "web/synthetic_web.h"

namespace dwqa {
namespace bench {

/// Wall-clock helper.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Per-tuple correctness of one extracted temperature fact against the
/// synthetic-web ground truth.
struct TupleCheck {
  bool location_known = false;  ///< (city, date) exists in the truth.
  bool value_ok = false;        ///< value matches mean (or high/low).
  bool unit_known = false;      ///< ºC or F associated.
  bool date_complete = false;

  /// The paper-level notion of a correct database row: right value, with
  /// its unit, for a real (city, date).
  bool FullyCorrect() const {
    return location_known && value_ok && unit_known && date_complete;
  }
};

/// Checks one structured fact. `accept_high_low` widens the accept set to
/// the table pages' published high/low values (mean ± 3).
inline TupleCheck CheckTemperatureFact(const web::GroundTruth& truth,
                                       const qa::StructuredFact& fact,
                                       bool accept_high_low) {
  TupleCheck check;
  check.unit_known = !fact.unit.empty();
  check.date_complete = fact.date.has_value();
  if (!fact.date.has_value()) return check;
  auto it = truth.temperature.find(
      {ToLower(fact.location), fact.date->ToIsoString()});
  if (it == truth.temperature.end()) return check;
  check.location_known = true;
  double celsius =
      fact.unit == "F" ? (fact.value - 32.0) * 5.0 / 9.0 : fact.value;
  double mean = it->second;
  check.value_ok = std::abs(celsius - mean) < 0.76;
  if (accept_high_low && !check.value_ok) {
    check.value_ok = std::abs(celsius - (mean + 3.0)) < 0.76 ||
                     std::abs(celsius - (mean - 3.0)) < 0.76;
  }
  return check;
}

/// Percentage rendering for the report tables.
inline std::string Pct(size_t num, size_t den) {
  if (den == 0) return "n/a";
  return FormatDouble(100.0 * double(num) / double(den), 1) + "%";
}

}  // namespace bench
}  // namespace dwqa

#endif  // DWQA_BENCH_BENCH_UTIL_H_
