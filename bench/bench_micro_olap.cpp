// Microbenchmarks of the OLAP engine over the Last Minute Sales cube:
// scan+aggregate cost by grouping level, slice selectivity and roll-up —
// plus the materialized-view sweep: view read vs recompute at 1k/10k-fact
// scale and the per-insert cost of incremental view maintenance.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/bench_json_main.h"

#include "common/logging.h"
#include "dw/materialized_view.h"
#include "dw/olap.h"
#include "integration/last_minute_sales.h"
#include "web/weather_model.h"

namespace {

using dwqa::dw::AggFn;
using dwqa::dw::DeriveViewsFromSchema;
using dwqa::dw::MemberId;
using dwqa::dw::OlapEngine;
using dwqa::dw::OlapQuery;
using dwqa::dw::Value;
using dwqa::dw::ViewCatalog;
using dwqa::dw::Warehouse;
using dwqa::integration::LastMinuteSales;

Warehouse& FullWarehouse() {
  static auto* wh = [] {
    auto warehouse = new Warehouse(
        LastMinuteSales::MakeWarehouse().ValueOrDie());
    dwqa::web::WeatherModel weather(42);
    LastMinuteSales::GenerateSales(warehouse, weather,
                                   dwqa::Date(2004, 1, 1), 730)
        .ValueOrDie();
    return warehouse;
  }();
  return *wh;
}

void BM_GroupByLevel(benchmark::State& state) {
  const char* levels[] = {"Airport", "City", "State", "Country"};
  OlapEngine engine(&FullWarehouse());
  OlapQuery q;
  q.fact = "LastMinuteSales";
  q.measures = {{"Tickets", AggFn::kSum}, {"Price", AggFn::kAvg}};
  q.group_by = {{"destination", levels[state.range(0)]}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Execute(q).ValueOrDie());
  }
  state.SetItemsProcessed(
      int64_t(state.iterations()) *
      int64_t(FullWarehouse().FactRowCount("LastMinuteSales").ValueOrDie()));
}
BENCHMARK(BM_GroupByLevel)->DenseRange(0, 3);

void BM_SliceSelectivity(benchmark::State& state) {
  OlapEngine engine(&FullWarehouse());
  OlapQuery q;
  q.fact = "LastMinuteSales";
  q.measures = {{"Tickets", AggFn::kSum}};
  q.group_by = {{"destination", "City"}};
  q.filters = {{"destination", "Country", {"Spain"}}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Execute(q).ValueOrDie());
  }
}
BENCHMARK(BM_SliceSelectivity);

void BM_TwoAxisCube(benchmark::State& state) {
  OlapEngine engine(&FullWarehouse());
  OlapQuery q;
  q.fact = "LastMinuteSales";
  q.measures = {{"Tickets", AggFn::kSum}};
  q.group_by = {{"destination", "City"}, {"date", "Month"}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Execute(q).ValueOrDie());
  }
}
BENCHMARK(BM_TwoAxisCube);

void BM_RollUpDerivation(benchmark::State& state) {
  OlapEngine engine(&FullWarehouse());
  OlapQuery q;
  q.fact = "LastMinuteSales";
  q.measures = {{"Tickets", AggFn::kSum}};
  q.group_by = {{"destination", "Airport"}};
  for (auto _ : state) {
    auto up = engine.RollUp(q, "destination").ValueOrDie();
    benchmark::DoNotOptimize(engine.Execute(up).ValueOrDie());
  }
}
BENCHMARK(BM_RollUpDerivation);

// ---------------------------------------------------------------------------
// Materialized-view sweep: the same canonical BI aggregate answered by a
// full recompute vs a view read, at 1k and 10k facts. The acceptance bar
// is the ratio: a view read must be ≥50x faster than BM_GroupByLevelAtScale
// at 10k facts (it reads ~10 groups instead of scanning every row).
// ---------------------------------------------------------------------------

/// A warehouse with exactly `facts` synthetic sales rows, spread over 10
/// destinations × 365 dates, plus (when `with_views`) the derived catalog
/// bound and maintained through every insert.
struct ScaledCube {
  std::unique_ptr<Warehouse> wh;
  std::unique_ptr<ViewCatalog> views;
  std::vector<MemberId> airports, customers, dates;

  explicit ScaledCube(size_t facts, bool with_views) {
    wh = std::make_unique<Warehouse>(
        LastMinuteSales::MakeWarehouse().ValueOrDie());
    if (with_views) {
      views = std::make_unique<ViewCatalog>();
      DWQA_CHECK(
          views->DefineAll(DeriveViewsFromSchema(wh->schema())).ok());
      wh->AttachViews(views.get());
      DWQA_CHECK(views->Bind(*wh).ok());
    }
    for (int i = 0; i < 10; ++i) {
      airports.push_back(
          wh->AddMember("Airport", {"AP" + std::to_string(i),
                                    "City" + std::to_string(i), "State",
                                    "Country" + std::to_string(i % 3)})
              .ValueOrDie());
      customers.push_back(
          wh->AddMember("Customer",
                        {"Cust" + std::to_string(i),
                         i % 2 == 0 ? "Business" : "Leisure"})
              .ValueOrDie());
    }
    dwqa::Date d(2004, 1, 1);
    for (int i = 0; i < 365; ++i, d = d.NextDay()) {
      dates.push_back(
          wh->AddMember("Date", dwqa::dw::DateMemberPath(d)).ValueOrDie());
    }
    for (size_t i = 0; i < facts; ++i) Insert(i);
  }

  void Insert(size_t i) {
    DWQA_CHECK(wh->InsertFact("LastMinuteSales",
                              {airports[i % airports.size()],
                               airports[(i + 3) % airports.size()],
                               customers[i % customers.size()],
                               dates[i % dates.size()]},
                              {Value(100.0 + double(i % 50)), Value(800.0),
                               Value(1.0 + double(i % 3))})
                   .ok());
  }
};

OlapQuery CanonicalBiQuery() {
  OlapQuery q;
  q.fact = "LastMinuteSales";
  q.measures = {{"Tickets", AggFn::kSum}, {"Price", AggFn::kAvg}};
  q.group_by = {{"destination", "City"}};
  return q;
}

ScaledCube& CubeAtScale(size_t facts) {
  static auto* cubes = new std::vector<std::unique_ptr<ScaledCube>>();
  for (auto& cube : *cubes) {
    if (cube->wh->FactRowCount("LastMinuteSales").ValueOrDie() == facts) {
      return *cube;
    }
  }
  cubes->push_back(std::make_unique<ScaledCube>(facts, /*with_views=*/true));
  return *cubes->back();
}

void BM_GroupByLevelAtScale(benchmark::State& state) {
  ScaledCube& cube = CubeAtScale(size_t(state.range(0)));
  OlapEngine engine(cube.wh.get());
  OlapQuery q = CanonicalBiQuery();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Execute(q).ValueOrDie());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_GroupByLevelAtScale)->Arg(1000)->Arg(10000);

void BM_ViewReadAtScale(benchmark::State& state) {
  ScaledCube& cube = CubeAtScale(size_t(state.range(0)));
  OlapQuery q = CanonicalBiQuery();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cube.views->Answer(q).ValueOrDie());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_ViewReadAtScale)->Arg(1000)->Arg(10000);

/// Per-insert cost of the fact append alone (arg 0) vs append + delta
/// maintenance of the full derived view set (arg 1) — the write-side price
/// of the read-side collapse above.
void BM_InsertFactMaintenance(benchmark::State& state) {
  const bool with_views = state.range(0) != 0;
  ScaledCube cube(1000, with_views);
  size_t i = 1000;
  for (auto _ : state) {
    cube.Insert(i++);
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_InsertFactMaintenance)->Arg(0)->Arg(1);

}  // namespace

DWQA_BENCH_JSON_MAIN("bench_micro_olap");
