// Microbenchmarks of the OLAP engine over the Last Minute Sales cube:
// scan+aggregate cost by grouping level, slice selectivity and roll-up.

#include <benchmark/benchmark.h>

#include "bench/bench_json_main.h"

#include "dw/olap.h"
#include "integration/last_minute_sales.h"
#include "web/weather_model.h"

namespace {

using dwqa::dw::AggFn;
using dwqa::dw::OlapEngine;
using dwqa::dw::OlapQuery;
using dwqa::dw::Warehouse;
using dwqa::integration::LastMinuteSales;

Warehouse& FullWarehouse() {
  static auto* wh = [] {
    auto warehouse = new Warehouse(
        LastMinuteSales::MakeWarehouse().ValueOrDie());
    dwqa::web::WeatherModel weather(42);
    LastMinuteSales::GenerateSales(warehouse, weather,
                                   dwqa::Date(2004, 1, 1), 730)
        .ValueOrDie();
    return warehouse;
  }();
  return *wh;
}

void BM_GroupByLevel(benchmark::State& state) {
  const char* levels[] = {"Airport", "City", "State", "Country"};
  OlapEngine engine(&FullWarehouse());
  OlapQuery q;
  q.fact = "LastMinuteSales";
  q.measures = {{"Tickets", AggFn::kSum}, {"Price", AggFn::kAvg}};
  q.group_by = {{"destination", levels[state.range(0)]}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Execute(q).ValueOrDie());
  }
  state.SetItemsProcessed(
      int64_t(state.iterations()) *
      int64_t(FullWarehouse().FactRowCount("LastMinuteSales").ValueOrDie()));
}
BENCHMARK(BM_GroupByLevel)->DenseRange(0, 3);

void BM_SliceSelectivity(benchmark::State& state) {
  OlapEngine engine(&FullWarehouse());
  OlapQuery q;
  q.fact = "LastMinuteSales";
  q.measures = {{"Tickets", AggFn::kSum}};
  q.group_by = {{"destination", "City"}};
  q.filters = {{"destination", "Country", {"Spain"}}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Execute(q).ValueOrDie());
  }
}
BENCHMARK(BM_SliceSelectivity);

void BM_TwoAxisCube(benchmark::State& state) {
  OlapEngine engine(&FullWarehouse());
  OlapQuery q;
  q.fact = "LastMinuteSales";
  q.measures = {{"Tickets", AggFn::kSum}};
  q.group_by = {{"destination", "City"}, {"date", "Month"}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Execute(q).ValueOrDie());
  }
}
BENCHMARK(BM_TwoAxisCube);

void BM_RollUpDerivation(benchmark::State& state) {
  OlapEngine engine(&FullWarehouse());
  OlapQuery q;
  q.fact = "LastMinuteSales";
  q.measures = {{"Tickets", AggFn::kSum}};
  q.group_by = {{"destination", "Airport"}};
  for (auto _ : state) {
    auto up = engine.RollUp(q, "destination").ValueOrDie();
    benchmark::DoNotOptimize(engine.Execute(up).ValueOrDie());
  }
}
BENCHMARK(BM_RollUpDerivation);

}  // namespace

DWQA_BENCH_JSON_MAIN("bench_micro_olap");
