// Resilience sweep — how the Step-5 feed behaves when the web, the parser
// and the ETL misbehave. The paper stores the source URL with every fed
// tuple "in order to make the approach robust against errors" (§4.2); this
// bench measures the rest of the robustness story: transient faults masked
// by retries, implausible extractions caught by the Step-4 axioms and
// diverted to the quarantine.
//
// Series: injected transient fault rate 0% → 30% at every fault point
// (page fetch, corpus indexation, ETL load). Shape check: every faulty run
// must load the byte-identical fact table of the fault-free run — the
// retries fully absorb the faults, deterministically.

#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/fault.h"
#include "common/table_printer.h"
#include "integration/last_minute_sales.h"
#include "integration/pipeline.h"
#include "web/synthetic_web.h"

using namespace dwqa;
using integration::LastMinuteSales;

namespace {

std::multiset<std::string> WeatherRows(const dw::Warehouse& wh) {
  const dw::Table* table = wh.FactTable("Weather").ValueOrDie();
  std::multiset<std::string> rows;
  for (size_t r = 0; r < table->row_count(); ++r) {
    std::string row;
    for (size_t c = 0; c < table->column_count(); ++c) {
      row += table->Get(r, c).ToString() + "|";
    }
    rows.insert(row);
  }
  return rows;
}

struct RunResult {
  integration::FeedReport report;
  std::multiset<std::string> rows;
  double wall_ms = 0.0;
};

}  // namespace

int main() {
  PrintBanner(std::cout,
              "Step-5 feed under fault injection — retries, quarantine and "
              "the surviving row set");

  web::WebConfig web_config;
  web_config.cities = {"Barcelona", "Madrid", "Valencia"};
  web_config.months = {1};
  auto webb = web::SyntheticWeb::Build(web_config).ValueOrDie();
  ontology::UmlModel uml = LastMinuteSales::MakeUmlModel();
  const std::vector<std::string> questions = {
      "What is the temperature in Barcelona in January of 2004?",
      "What is the temperature in Madrid in January of 2004?",
      "What is the temperature in Valencia in January of 2004?",
  };

  auto run = [&](double fault_rate) -> Result<RunResult> {
    auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
    integration::PipelineConfig config =
        LastMinuteSales::DefaultPipelineConfig();
    // Full-month extraction so every fault point sees enough draws for the
    // low rates to actually fire.
    config.qa.max_answers = 40;
    config.qa.passages_to_analyze = 8;
    config.resilience.fault =
        FaultConfig::TransientEverywhere(fault_rate, /*seed=*/7);
    // The default backoff schedule, minus the actual sleeping — the bench
    // measures schedules and counters, not wall-clock waiting.
    config.resilience.retry.sleep = false;
    integration::IntegrationPipeline pipeline(&wh, &uml, config);
    bench::Timer timer;
    DWQA_RETURN_NOT_OK(pipeline.RunAll(&webb.documents()));
    DWQA_ASSIGN_OR_RETURN(
        integration::FeedReport report,
        pipeline.RunStep5(questions, "Weather", "temperature"));
    RunResult result;
    result.report = std::move(report);
    result.rows = WeatherRows(wh);
    result.wall_ms = timer.ElapsedMs();
    return result;
  };

  TablePrinter table({"fault rate", "rows loaded", "quarantined", "retries",
                      "transient faults", "questions failed",
                      "row set vs 0%", "wall (ms)"});
  std::multiset<std::string> baseline_rows;
  bool shape_ok = true;
  for (double rate : {0.0, 0.1, 0.2, 0.3}) {
    auto result = run(rate);
    if (!result.ok()) {
      std::cerr << result.status() << std::endl;
      return 1;
    }
    const integration::FeedReport& r = result->report;
    if (rate == 0.0) {
      baseline_rows = result->rows;
      shape_ok = shape_ok && r.rows_loaded > 0 && r.retries == 0;
    } else {
      // The acceptance bar: retries fully mask the faults — identical row
      // set, no failed questions, and the masking visible as retries.
      bool identical = result->rows == baseline_rows;
      shape_ok = shape_ok && identical && r.questions_failed == 0 &&
                 r.retries > 0;
    }
    table.AddRow({std::to_string(int(rate * 100)) + "%",
                  std::to_string(r.rows_loaded),
                  std::to_string(r.rows_quarantined),
                  std::to_string(r.retries),
                  std::to_string(r.transient_failures),
                  std::to_string(r.questions_failed),
                  result->rows == baseline_rows ? "identical" : "DIVERGED",
                  FormatDouble(result->wall_ms, 0)});
  }
  table.Print(std::cout);
  std::cout << (shape_ok
                    ? "[shape check] PASS — every faulty run converges to "
                      "the fault-free row set;\nthe retry layer absorbs up "
                      "to 30% transient faults without losing a row.\n"
                    : "[shape check] FAIL\n");
  return shape_ok ? 0 : 1;
}
