#ifndef DWQA_BENCH_BENCH_JSON_H_
#define DWQA_BENCH_BENCH_JSON_H_

// Shared bench-JSON reporter: every bench that wants its numbers in the
// CI artifact appends a section through a JsonSectionWriter, and the merged
// result lands at $DWQA_BENCH_JSON (default ./BENCH_phase3.json).
//
// Benches run as independent processes (scripts/check.sh loops over
// build/bench/*), so the merge cannot happen in one process. Instead each
// writer stages its section as <dest>.d/<bench>.json and then rewrites the
// destination from *all* staged sections via a tmp-file + rename — the
// destination is always a complete, valid JSON document no matter which
// subset of benches has run, and re-running a bench replaces only its own
// section.

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace dwqa {
namespace bench {

/// JSON string escaping for metric names (quotes, backslashes, control
/// characters — bench names are ASCII but the writer does not assume it).
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// The destination path: $DWQA_BENCH_JSON or ./BENCH_phase3.json.
inline std::string BenchJsonPath() {
  const char* env = std::getenv("DWQA_BENCH_JSON");
  return (env != nullptr && env[0] != '\0') ? env : "BENCH_phase3.json";
}

/// \brief Collects one bench's metrics and merges them into the shared
/// JSON artifact on Flush().
class JsonSectionWriter {
 public:
  explicit JsonSectionWriter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  /// Records one scalar. `unit` is informational ("ms", "q/s", "x", "");
  /// non-finite values are recorded as null.
  void Add(const std::string& metric, double value,
           const std::string& unit = "") {
    std::ostringstream row;
    row.precision(6);
    row << std::fixed;
    row << "      \"" << JsonEscape(metric) << "\": {\"value\": ";
    if (std::isfinite(value)) {
      row << value;
    } else {
      row << "null";
    }
    row << ", \"unit\": \"" << JsonEscape(unit) << "\"}";
    rows_.push_back(row.str());
  }

  /// Stages this bench's section and rewrites the merged artifact.
  /// Returns false (after a stderr note) when the filesystem refuses.
  bool Flush() const {
    const std::string dest = BenchJsonPath();
    const std::string staging = dest + ".d";
    ::mkdir(staging.c_str(), 0755);
    {
      std::ofstream section(staging + "/" + bench_name_ + ".json");
      if (!section) {
        std::fprintf(stderr, "bench_json: cannot stage %s\n",
                     bench_name_.c_str());
        return false;
      }
      section << "    \"" << JsonEscape(bench_name_) << "\": {\n";
      for (size_t i = 0; i < rows_.size(); ++i) {
        section << rows_[i] << (i + 1 < rows_.size() ? ",\n" : "\n");
      }
      section << "    }";
    }
    return Merge(staging, dest);
  }

 private:
  /// Concatenates every staged section into `dest` atomically.
  static bool Merge(const std::string& staging, const std::string& dest) {
    std::vector<std::string> sections;
    DIR* dir = ::opendir(staging.c_str());
    if (dir == nullptr) return false;
    while (dirent* entry = ::readdir(dir)) {
      std::string name = entry->d_name;
      if (name.size() > 5 && name.rfind(".json") == name.size() - 5) {
        sections.push_back(name);
      }
    }
    ::closedir(dir);
    std::sort(sections.begin(), sections.end());
    const std::string tmp = dest + ".tmp";
    {
      std::ofstream out(tmp);
      if (!out) return false;
      out << "{\n  \"schema\": \"dwqa-bench-v1\",\n  \"benchmarks\": {\n";
      for (size_t i = 0; i < sections.size(); ++i) {
        std::ifstream in(staging + "/" + sections[i]);
        out << in.rdbuf() << (i + 1 < sections.size() ? ",\n" : "\n");
      }
      out << "  }\n}\n";
    }
    if (std::rename(tmp.c_str(), dest.c_str()) != 0) {
      std::fprintf(stderr, "bench_json: cannot rename %s\n", tmp.c_str());
      return false;
    }
    return true;
  }

  std::string bench_name_;
  std::vector<std::string> rows_;
};

}  // namespace bench
}  // namespace dwqa

#endif  // DWQA_BENCH_BENCH_JSON_H_
