// Microbenchmarks of the IR substrate, including the passage-window
// ablation the DESIGN.md calls out (IR-n's defining parameter; the paper's
// footnote 6 reports 8-sentence passages).

#include <benchmark/benchmark.h>

#include "bench/bench_json_main.h"

#include "ir/inverted_index.h"
#include "ir/passage_index.h"
#include "web/synthetic_web.h"

namespace {

using dwqa::ir::InvertedIndex;
using dwqa::ir::PassageIndex;

dwqa::web::SyntheticWeb& Corpus() {
  static auto* web = [] {
    dwqa::web::WebConfig config;
    config.months = {1};
    config.noise_pages = 60;
    return new dwqa::web::SyntheticWeb(
        dwqa::web::SyntheticWeb::Build(config).ValueOrDie());
  }();
  return *web;
}

void BM_IndexCorpusDocLevel(benchmark::State& state) {
  const auto& docs = Corpus().documents();
  for (auto _ : state) {
    InvertedIndex index;
    for (const auto& doc : docs.documents()) {
      index.AddDocument(doc.id, doc.raw);
    }
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_IndexCorpusDocLevel);

void BM_DocSearch(benchmark::State& state) {
  const auto& docs = Corpus().documents();
  InvertedIndex index;
  for (const auto& doc : docs.documents()) {
    index.AddDocument(doc.id, doc.raw);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.Search("Barcelona January 2004 temperature"));
  }
}
BENCHMARK(BM_DocSearch);

/// Passage retrieval cost and behaviour across window sizes (ablation).
void BM_PassageSearchWindow(benchmark::State& state) {
  const auto& docs = Corpus().documents();
  PassageIndex index(static_cast<size_t>(state.range(0)));
  for (const auto& doc : docs.documents()) {
    index.AddDocument(doc.id, doc.raw);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.Search("Barcelona January 2004 temperature", 5));
  }
}
BENCHMARK(BM_PassageSearchWindow)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_PassageIndexBuild(benchmark::State& state) {
  const auto& docs = Corpus().documents();
  for (auto _ : state) {
    PassageIndex index(8);
    for (const auto& doc : docs.documents()) {
      index.AddDocument(doc.id, doc.raw);
    }
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_PassageIndexBuild);

}  // namespace

DWQA_BENCH_JSON_MAIN("bench_micro_ir");
