// Microbenchmarks of the IR substrate, including the passage-window
// ablation the DESIGN.md calls out (IR-n's defining parameter; the paper's
// footnote 6 reports 8-sentence passages).

#include <benchmark/benchmark.h>

#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_json_main.h"

#include "ir/inverted_index.h"
#include "ir/passage_index.h"
#include "web/synthetic_web.h"

namespace {

using dwqa::ir::InvertedIndex;
using dwqa::ir::PassageIndex;

dwqa::web::SyntheticWeb& Corpus() {
  static auto* web = [] {
    dwqa::web::WebConfig config;
    config.months = {1};
    config.noise_pages = 60;
    return new dwqa::web::SyntheticWeb(
        dwqa::web::SyntheticWeb::Build(config).ValueOrDie());
  }();
  return *web;
}

void BM_IndexCorpusDocLevel(benchmark::State& state) {
  const auto& docs = Corpus().documents();
  for (auto _ : state) {
    InvertedIndex index;
    for (const auto& doc : docs.documents()) {
      index.AddDocument(doc.id, doc.raw);
    }
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_IndexCorpusDocLevel);

void BM_DocSearch(benchmark::State& state) {
  const auto& docs = Corpus().documents();
  InvertedIndex index;
  for (const auto& doc : docs.documents()) {
    index.AddDocument(doc.id, doc.raw);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.Search("Barcelona January 2004 temperature"));
  }
}
BENCHMARK(BM_DocSearch);

/// Passage retrieval cost and behaviour across window sizes (ablation).
void BM_PassageSearchWindow(benchmark::State& state) {
  const auto& docs = Corpus().documents();
  PassageIndex index(static_cast<size_t>(state.range(0)));
  for (const auto& doc : docs.documents()) {
    index.AddDocument(doc.id, doc.raw);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.Search("Barcelona January 2004 temperature", 5));
  }
}
BENCHMARK(BM_PassageSearchWindow)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_PassageIndexBuild(benchmark::State& state) {
  const auto& docs = Corpus().documents();
  for (auto _ : state) {
    PassageIndex index(8);
    for (const auto& doc : docs.documents()) {
      index.AddDocument(doc.id, doc.raw);
    }
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_PassageIndexBuild);

// ---------------------------------------------------------------------------
// Corpus-size sweep for the segmented index cores (36 / 1k / 10k docs):
// full rebuild grows with the corpus, appending one document to a built
// index must stay flat (memtable insert + amortized seal/merge), and
// querying the merged manifest shows the block-max search cost.

/// Deterministic short document — enough shared vocabulary for real
/// posting lists, enough variation for distinct postings.
std::string SweepDoc(size_t i) {
  static const char* kCities[] = {"Barcelona", "Madrid", "Valencia",
                                  "Seville"};
  std::ostringstream out;
  out << "The temperature in " << kCities[i % 4] << " on day "
      << (i % 28 + 1) << " of January was " << (i % 30)
      << " degrees. Flights from terminal " << (i % 9) << " were "
      << ((i % 2 != 0) ? "delayed" : "punctual") << " that morning.";
  return out.str();
}

void BM_SegmentedFullBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::string> docs;
  docs.reserve(n);
  for (size_t i = 0; i < n; ++i) docs.push_back(SweepDoc(i));
  for (auto _ : state) {
    InvertedIndex index;
    for (size_t i = 0; i < n; ++i) {
      index.AddDocument(dwqa::ir::DocId(i), docs[i]);
    }
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}
BENCHMARK(BM_SegmentedFullBuild)
    ->Arg(36)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

void BM_SegmentedIncrementalIngest(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  InvertedIndex index;
  for (size_t i = 0; i < n; ++i) {
    index.AddDocument(dwqa::ir::DocId(i), SweepDoc(i));
  }
  // Pre-render the appended text so only the index append is timed.
  std::vector<std::string> extra;
  for (size_t i = 0; i < 1024; ++i) extra.push_back(SweepDoc(n + i));
  size_t next = n;
  for (auto _ : state) {
    index.AddDocument(dwqa::ir::DocId(next), extra[(next - n) % 1024]);
    ++next;
  }
}
BENCHMARK(BM_SegmentedIncrementalIngest)->Arg(36)->Arg(1000)->Arg(10000);

void BM_SegmentedMergedQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  dwqa::ir::SegmentedIndexOptions options;
  options.seal_every = 8;
  options.merge_trigger = 4;
  InvertedIndex index(options);
  for (size_t i = 0; i < n; ++i) {
    index.AddDocument(dwqa::ir::DocId(i), SweepDoc(i));
  }
  index.WaitForMerges();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.Search("temperature Barcelona January degrees"));
  }
}
BENCHMARK(BM_SegmentedMergedQuery)->Arg(36)->Arg(1000)->Arg(10000);

}  // namespace

DWQA_BENCH_JSON_MAIN("bench_micro_ir");
