// E9 — The paper's end-to-end scenario (§1, §3 Step 5): the QA system
// feeds the DW with web-extracted weather, and the BI layer analyzes "the
// range of temperatures that increase the last minute flights to a certain
// city" so ticket prices can be adjusted.
//
// Series: the Step-5 feed statistics, then the sales-vs-temperature report
// per temperature bucket, with the planted boost interval as the expected
// shape.

#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "integration/bi_analysis.h"
#include "integration/last_minute_sales.h"
#include "integration/pipeline.h"
#include "integration/query_generation.h"
#include "web/synthetic_web.h"

using namespace dwqa;
using integration::LastMinuteSales;

int main() {
  PrintBanner(std::cout, "Step 5 + BI — feeding the DW from the Web and "
                         "analyzing sales vs weather");

  auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  web::WebConfig config;
  config.months = {1, 4, 7, 10};
  config.table_weather = false;
  auto webb = web::SyntheticWeb::Build(config).ValueOrDie();
  if (!LastMinuteSales::GenerateSales(&wh, webb.weather(), Date(2004, 1, 1),
                                      365)
           .ok()) {
    return 1;
  }

  ontology::UmlModel uml = LastMinuteSales::MakeUmlModel();
  integration::PipelineConfig pconfig =
      LastMinuteSales::DefaultPipelineConfig();
  pconfig.qa.max_answers = 40;
  pconfig.qa.passages_to_analyze = 8;
  integration::IntegrationPipeline pipeline(&wh, &uml, pconfig);
  bench::Timer total_timer;
  if (!pipeline.RunAll(&webb.documents()).ok()) return 1;

  // Future-work feature (§5): the DW analysis context generates the QA
  // questions automatically.
  integration::AnalysisContext ctx;
  ctx.attribute = "temperature";
  ctx.dimension = "Airport";
  ctx.level = "City";
  std::vector<std::string> questions;
  for (int month : config.months) {
    ctx.month = month;
    auto qs =
        integration::QueryGeneration::GenerateQuestions(wh, ctx).ValueOrDie();
    questions.insert(questions.end(), qs.begin(), qs.end());
  }

  auto feed = pipeline.RunStep5(questions, "Weather", "temperature");
  if (!feed.ok()) {
    std::cerr << feed.status() << std::endl;
    return 1;
  }

  TablePrinter feed_table({"metric", "value"});
  feed_table.AddRow({"QA questions generated from the DW",
                     std::to_string(feed->questions_asked)});
  feed_table.AddRow({"questions answered",
                     std::to_string(feed->questions_answered)});
  feed_table.AddRow({"tuples extracted",
                     std::to_string(feed->facts_extracted)});
  feed_table.AddRow({"rows loaded into fact 'Weather'",
                     std::to_string(feed->rows_loaded)});
  feed_table.AddRow({"end-to-end wall clock (ms)",
                     FormatDouble(total_timer.ElapsedMs(), 0)});
  // Feed precision against the ground truth.
  size_t correct = 0;
  for (const auto& fact : feed->facts) {
    if (bench::CheckTemperatureFact(webb.truth(), fact, false)
            .FullyCorrect()) {
      ++correct;
    }
  }
  feed_table.AddRow({"fed-tuple precision",
                     bench::Pct(correct, feed->facts.size())});
  feed_table.Print(std::cout);

  PrintBanner(std::cout, "BI report — average last-minute tickets per "
                         "destination-temperature range");
  auto bi = integration::BiAnalysis::SalesVsTemperature(wh);
  if (!bi.ok()) {
    std::cerr << bi.status() << std::endl;
    return 1;
  }
  TablePrinter bi_table({"temperature range (C)", "city-days",
                         "avg tickets/day"});
  for (const auto& range : bi->ranges) {
    bi_table.AddRow({"[" + FormatDouble(range.low_c, 0) + ", " +
                         FormatDouble(range.high_c, 0) + ")",
                     std::to_string(range.observations),
                     FormatDouble(range.avg_tickets, 1)});
  }
  bi_table.Print(std::cout);
  std::cout << "Joined city-days: " << bi->joined_days
            << "; best range: [" << FormatDouble(bi->best.low_c, 0) << ", "
            << FormatDouble(bi->best.high_c, 0) << ") C"
            << "; planted boost interval: ["
            << FormatDouble(LastMinuteSales::kBoostLowC, 0) << ", "
            << FormatDouble(LastMinuteSales::kBoostHighC, 0) << ") C\n";

  bool shape_ok = bi->best.high_c >= LastMinuteSales::kBoostLowC &&
                  bi->best.low_c <= LastMinuteSales::kBoostHighC &&
                  feed->rows_loaded > 100;
  std::cout << (shape_ok
                    ? "[shape check] PASS — the BI analysis recovers the "
                      "planted pleasant-weather boost\nfrom QA-fed data "
                      "alone.\n"
                    : "[shape check] FAIL\n");
  return shape_ok ? 0 : 1;
}
