// E4 — Reproduces Figure 3 (the AliQAn architecture) as a phase-timing
// study, quantifying the paper's §1 claim: "IR tools are usually run as a
// first filtering phase, and QA works on IR output. In this way, time of
// analysis ... is highly decreased."
//
// Series: corpus size sweep × {IR filter ON, IR filter OFF}; per phase
// wall-clock plus the amount of text the expensive extraction module sees.

#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "ontology/wordnet.h"
#include "qa/aliqan.h"
#include "web/synthetic_web.h"

using namespace dwqa;

int main() {
  PrintBanner(std::cout,
              "Figure 3 — AliQAn two-phase architecture: indexation + "
              "3-module search phase");
  std::cout << "Claim under test: the IR-n filtering module cuts the text "
               "volume (and time)\nthe answer-extraction module spends per "
               "question.\n";

  TablePrinter table({"docs", "IR filter", "index ms", "analysis ms",
                      "retrieval ms", "extraction ms", "sentences analyzed"});

  const std::string question =
      "What is the temperature in Barcelona in January of 2004?";

  for (size_t noise : {10u, 60u, 160u}) {
    web::WebConfig config;
    config.cities = {"Barcelona", "Madrid", "Paris", "Rome"};
    config.months = {1};
    config.noise_pages = noise;
    auto webb = web::SyntheticWeb::Build(config).ValueOrDie();

    for (bool filter : {true, false}) {
      ontology::Ontology wn = ontology::MiniWordNet::Build();
      qa::AliQAnConfig qa_config;
      qa_config.use_ir_filter = filter;
      qa::AliQAn aliqan(&wn, qa_config);
      if (!aliqan.IndexCorpus(&webb.documents()).ok()) return 1;
      // Warm + measured run (timings are per last Ask call; average 5).
      double analysis = 0, retrieval = 0, extraction = 0;
      size_t sentences = 0;
      const int kRuns = 5;
      for (int r = 0; r < kRuns; ++r) {
        auto answers = aliqan.Ask(question);
        if (!answers.ok() || answers->empty()) {
          std::cerr << "no answer at noise=" << noise << std::endl;
          return 1;
        }
        analysis += aliqan.last_timings().analysis_ms;
        retrieval += aliqan.last_timings().retrieval_ms;
        extraction += aliqan.last_timings().extraction_ms;
        sentences = aliqan.last_timings().sentences_analyzed;
      }
      table.AddRow({std::to_string(webb.documents().size()),
                    filter ? "ON" : "OFF",
                    FormatDouble(aliqan.last_timings().indexation_ms, 1),
                    FormatDouble(analysis / kRuns, 2),
                    FormatDouble(retrieval / kRuns, 2),
                    FormatDouble(extraction / kRuns, 2),
                    std::to_string(sentences)});
    }
  }
  table.Print(std::cout);
  std::cout << "\n[shape check] extraction time and sentence volume grow "
               "with corpus size when the\nfilter is OFF and stay flat "
               "when it is ON.\n";
  return 0;
}
