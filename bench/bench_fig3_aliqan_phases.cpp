// E4 — Reproduces Figure 3 (the AliQAn architecture) as a phase-timing
// study, quantifying the paper's §1 claim: "IR tools are usually run as a
// first filtering phase, and QA works on IR output. In this way, time of
// analysis ... is highly decreased."
//
// Part 1 (corpus sweep): corpus size × {IR filter ON, OFF}; per phase
// wall-clock plus the amount of text the expensive extraction module sees.
//
// Part 2 (off-line indexation): the AnalyzedCorpus refactor moved the
// linguistic pipeline (tokenize/tag/lemmatize/chunk) from the per-question
// search phase into one-time indexation. Over the E10 CLEF-style question
// set, the cached path is compared against the reanalyze_per_question
// ablation (the pre-refactor behaviour); the per-question
// analysis+extraction speedup must be ≥ 2×. Results are appended to the
// shared bench-JSON artifact ($DWQA_BENCH_JSON, default BENCH_phase3.json).
//
// Part 3 (parallel indexation scaling): serial vs N-thread off-line
// indexation over the same corpus. The parallel build must stay
// byte-identical to the serial one (postings and answers are compared
// inline); on hardware with ≥ 4 cores the 4-thread build must also be
// > 1.5× faster — on smaller machines the numbers are recorded without
// the speedup gate.
//
// `--smoke` shrinks all parts for the `perf`-labeled ctest smoke.

#include <algorithm>
#include <cstring>
#include <iostream>
#include <thread>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "ontology/enrichment.h"
#include "ontology/wordnet.h"
#include "qa/aliqan.h"
#include "web/question_factory.h"
#include "web/synthetic_web.h"

using namespace dwqa;

namespace {

/// Sum of extraction-phase wall-clock over one pass of the question set.
/// Every question must produce an answer (the golden-equivalence suite
/// guarantees both modes produce the *same* ones).
bool AskAll(qa::AliQAn* aliqan, const std::vector<web::GoldQuestion>& qs,
            double* extraction_ms, size_t* sentences, size_t* cached) {
  for (const web::GoldQuestion& gq : qs) {
    auto answers = aliqan->Ask(gq.question);
    if (!answers.ok()) {
      std::cerr << "E10 question failed: " << gq.question << std::endl;
      return false;
    }
    *extraction_ms += aliqan->last_timings().extraction_ms;
    *sentences += aliqan->last_timings().sentences_analyzed;
    *cached += aliqan->last_timings().sentences_analyzed_cached;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  PrintBanner(std::cout,
              "Figure 3 — AliQAn two-phase architecture: indexation + "
              "3-module search phase");
  std::cout << "Claim under test: the IR-n filtering module cuts the text "
               "volume (and time)\nthe answer-extraction module spends per "
               "question.\n";

  bench::JsonSectionWriter json("bench_fig3_aliqan_phases");

  TablePrinter table({"docs", "IR filter", "index ms", "analysis ms",
                      "retrieval ms", "extraction ms", "sentences analyzed"});

  const std::string question =
      "What is the temperature in Barcelona in January of 2004?";

  std::vector<size_t> noise_levels = smoke ? std::vector<size_t>{10u}
                                           : std::vector<size_t>{10u, 60u,
                                                                 160u};
  const int kRuns = smoke ? 2 : 5;
  for (size_t noise : noise_levels) {
    web::WebConfig config;
    config.cities = {"Barcelona", "Madrid", "Paris", "Rome"};
    config.months = {1};
    config.noise_pages = noise;
    auto webb = web::SyntheticWeb::Build(config).ValueOrDie();

    for (bool filter : {true, false}) {
      ontology::Ontology wn = ontology::MiniWordNet::Build();
      qa::AliQAnConfig qa_config;
      qa_config.use_ir_filter = filter;
      qa::AliQAn aliqan(&wn, qa_config);
      if (!aliqan.IndexCorpus(&webb.documents()).ok()) return 1;
      // Warm + measured run (timings are per last Ask call; average kRuns).
      double analysis = 0, retrieval = 0, extraction = 0;
      size_t sentences = 0;
      for (int r = 0; r < kRuns; ++r) {
        auto answers = aliqan.Ask(question);
        if (!answers.ok() || answers->empty()) {
          std::cerr << "no answer at noise=" << noise << std::endl;
          return 1;
        }
        analysis += aliqan.last_timings().analysis_ms;
        retrieval += aliqan.last_timings().retrieval_ms;
        extraction += aliqan.last_timings().extraction_ms;
        sentences = aliqan.last_timings().sentences_analyzed;
      }
      table.AddRow({std::to_string(webb.documents().size()),
                    filter ? "ON" : "OFF",
                    FormatDouble(aliqan.last_timings().indexation_ms, 1),
                    FormatDouble(analysis / kRuns, 2),
                    FormatDouble(retrieval / kRuns, 2),
                    FormatDouble(extraction / kRuns, 2),
                    std::to_string(sentences)});
      std::string key = "sweep_docs" + std::to_string(webb.documents().size()) +
                        (filter ? "_filter_on" : "_filter_off");
      json.Add(key + "_extraction_ms", extraction / kRuns, "ms");
      json.Add(key + "_sentences", double(sentences), "sentences");
    }
  }
  table.Print(std::cout);
  std::cout << "\n[shape check] extraction time and sentence volume grow "
               "with corpus size when the\nfilter is OFF and stay flat "
               "when it is ON.\n";

  // ----- Part 2: off-line indexation vs per-question re-analysis (E10) ----
  PrintBanner(std::cout,
              "AnalyzedCorpus — one-time indexation analysis vs. "
              "per-question re-analysis (E10 set)");
  web::WebConfig config;
  config.cities = {"Barcelona", "Madrid"};
  config.months = {1};
  auto webb = web::SyntheticWeb::Build(config).ValueOrDie();
  ontology::Ontology wn = ontology::MiniWordNet::Build();
  std::vector<ontology::InstanceSeed> seeds = {{"El Prat", {}, "Barcelona",
                                                ""}};
  if (!ontology::Enricher::Enrich(&wn, "airport", seeds).ok()) return 1;
  auto questions = web::QuestionFactory::ClefStyleQuestions();

  const int kPasses = smoke ? 1 : 5;
  struct ModeResult {
    double index_ms = 0;
    double extraction_ms = 0;
    size_t sentences = 0;
    size_t cached = 0;
  };
  ModeResult modes[2];  // [0] = cached path, [1] = reanalyze ablation.
  for (int mode = 0; mode < 2; ++mode) {
    qa::AliQAnConfig qa_config;
    qa_config.reanalyze_per_question = (mode == 1);
    qa::AliQAn aliqan(&wn, qa_config);
    if (!aliqan.IndexCorpus(&webb.documents()).ok()) return 1;
    modes[mode].index_ms = aliqan.last_timings().indexation_ms;
    // Warm-up pass, then measured passes.
    double warm = 0;
    size_t w1 = 0, w2 = 0;
    if (!AskAll(&aliqan, questions, &warm, &w1, &w2)) return 1;
    for (int pass = 0; pass < kPasses; ++pass) {
      if (!AskAll(&aliqan, questions, &modes[mode].extraction_ms,
                  &modes[mode].sentences, &modes[mode].cached)) {
        return 1;
      }
    }
  }

  const size_t asked = questions.size() * size_t(kPasses);
  const double cached_per_q = modes[0].extraction_ms / double(asked);
  const double reanalyze_per_q = modes[1].extraction_ms / double(asked);
  const double speedup =
      cached_per_q > 0 ? reanalyze_per_q / cached_per_q : 0.0;
  const double hit_rate = modes[0].sentences > 0
                              ? double(modes[0].cached) /
                                    double(modes[0].sentences)
                              : 0.0;

  TablePrinter e10({"mode", "index ms", "extraction ms/question",
                    "questions/s", "cache hit rate"});
  const char* names[2] = {"cached (analyze-once)", "reanalyze per question"};
  for (int mode = 0; mode < 2; ++mode) {
    double per_q = modes[mode].extraction_ms / double(asked);
    e10.AddRow({names[mode], FormatDouble(modes[mode].index_ms, 1),
                FormatDouble(per_q, 3),
                per_q > 0 ? FormatDouble(1000.0 / per_q, 0) : "inf",
                bench::Pct(modes[mode].cached, modes[mode].sentences)});
  }
  e10.Print(std::cout);
  std::cout << "\nPer-question analysis+extraction speedup (reanalyze / "
               "cached): "
            << FormatDouble(speedup, 2) << "x\n"
            << "The linguistic cost moved off-line: indexation "
            << FormatDouble(modes[0].index_ms, 1) << " ms (cached) vs "
            << FormatDouble(modes[1].index_ms, 1)
            << " ms (raw string indexing only).\n";

  json.Add("e10_questions", double(questions.size()), "questions");
  json.Add("e10_indexation_ms_cached", modes[0].index_ms, "ms");
  json.Add("e10_indexation_ms_reanalyze", modes[1].index_ms, "ms");
  json.Add("e10_extraction_ms_per_q_cached", cached_per_q, "ms");
  json.Add("e10_extraction_ms_per_q_reanalyze", reanalyze_per_q, "ms");
  json.Add("e10_speedup", speedup, "x");
  json.Add("e10_cache_hit_rate", hit_rate, "ratio");

  // ----- Part 3: serial vs N-thread off-line indexation scaling ----------
  PrintBanner(std::cout,
              "Parallel indexation — ThreadPool scaling of the off-line "
              "analysis phase");
  web::WebConfig scaling_config;
  scaling_config.cities = {"Barcelona", "Madrid", "Paris", "Rome"};
  scaling_config.months = {1};
  scaling_config.noise_pages = smoke ? 40u : 200u;
  auto scaling_web = web::SyntheticWeb::Build(scaling_config).ValueOrDie();
  const int kIndexRuns = smoke ? 2 : 3;

  const std::vector<size_t> thread_counts = {1, 2, 4};
  std::vector<double> index_ms(thread_counts.size(), 0.0);
  std::string serial_postings;
  std::string serial_answer;
  bool identical = true;
  TablePrinter scaling({"threads", "index ms (best)", "speedup vs serial",
                        "identical build"});
  for (size_t t = 0; t < thread_counts.size(); ++t) {
    qa::AliQAnConfig qa_config;
    qa_config.threads = thread_counts[t];
    qa::AliQAn aliqan(&wn, qa_config);
    double best = 0.0;
    for (int run = 0; run < kIndexRuns; ++run) {
      if (!aliqan.IndexCorpus(&scaling_web.documents()).ok()) return 1;
      double ms = aliqan.last_timings().indexation_ms;
      if (run == 0 || ms < best) best = ms;
    }
    index_ms[t] = best;
    // Equality gate: every thread count builds the same postings bytes and
    // answers the probe question identically.
    std::string postings = aliqan.document_index().DebugString() +
                           aliqan.passage_index().DebugString();
    auto answers = aliqan.Ask(question);
    if (!answers.ok() || answers->empty()) {
      std::cerr << "no answer at threads=" << thread_counts[t] << std::endl;
      return 1;
    }
    std::string answer = answers->answers.front().answer_text;
    if (t == 0) {
      serial_postings = std::move(postings);
      serial_answer = std::move(answer);
    } else if (postings != serial_postings || answer != serial_answer) {
      identical = false;
    }
    scaling.AddRow({std::to_string(thread_counts[t]), FormatDouble(best, 1),
                    FormatDouble(index_ms[0] / best, 2) + "x",
                    t == 0 ? "baseline" : (identical ? "yes" : "NO")});
    json.Add("scaling_indexation_ms_t" + std::to_string(thread_counts[t]),
             best, "ms");
  }
  scaling.Print(std::cout);

  const double speedup_4t = index_ms.back() > 0
                                ? index_ms.front() / index_ms.back()
                                : 0.0;
  const unsigned hw_threads = std::thread::hardware_concurrency();
  json.Add("scaling_speedup_4t", speedup_4t, "x");
  json.Add("scaling_hw_threads", double(hw_threads), "threads");
  json.Add("scaling_identical", identical ? 1.0 : 0.0, "bool");
  std::cout << "\n4-thread indexation speedup: " << FormatDouble(speedup_4t, 2)
            << "x on " << hw_threads << " hardware thread(s)\n";

  if (!json.Flush()) return 1;
  std::cout << "[bench-json] wrote section bench_fig3_aliqan_phases to "
            << bench::BenchJsonPath() << "\n";

  // Shape checks: (1) the indexation-time analysis must pay for itself ≥ 2×
  // in the search phase, with every extraction sentence served from cache;
  // (2) parallel indexation must be byte-identical to serial at every
  // thread count; (3) on hardware with ≥ 4 cores, 4 threads must index
  // > 1.5× faster (on smaller machines the speedup is recorded unchecked —
  // there is nothing to scale onto).
  bool shape_ok = speedup >= 2.0 && hit_rate == 1.0 && identical;
  if (hw_threads >= 4 && speedup_4t <= 1.5) {
    std::cout << "[shape check] 4-thread speedup " << FormatDouble(speedup_4t, 2)
              << "x <= 1.5x on " << hw_threads << "-thread hardware\n";
    shape_ok = false;
  }
  std::cout << (shape_ok ? "[shape check] PASS\n" : "[shape check] FAIL\n");
  return shape_ok ? 0 : 1;
}
