// E8 — Quantifies the paper's Step 2 claim (§3): with the ontology
// enriched by the DW contents "the QA system will be more precise and will
// return more reliable answers" — the system knows that "JFK", "John
// Wayne", "La Guardia" or "El Prat" mean airports "instead of a person or
// a Spanish musical group".
//
// Series: weather questions phrased through *airport names* × {Step 2 ON,
// Step 2 OFF}; metrics: city resolution rate, answered rate, correct-tuple
// rate.

#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "integration/last_minute_sales.h"
#include "integration/pipeline.h"
#include "web/question_factory.h"
#include "web/synthetic_web.h"

using namespace dwqa;
using integration::LastMinuteSales;

namespace {

struct RunScore {
  size_t questions = 0;
  size_t city_resolved = 0;
  size_t answered = 0;
  size_t correct = 0;
};

}  // namespace

int main() {
  PrintBanner(std::cout,
              "Step 2 ablation — QA accuracy on airport-phrased questions "
              "with/without DW enrichment");

  web::WebConfig config;
  config.months = {1};
  config.table_weather = false;
  auto webb = web::SyntheticWeb::Build(config).ValueOrDie();

  // Airport-phrased weather questions for every airline city with a
  // distinct airport name, including the famously ambiguous ones.
  std::vector<std::pair<std::string, std::string>> airport_of_city;
  for (const auto& a : LastMinuteSales::Airports()) {
    airport_of_city.push_back({ToLower(a.city), a.name});
  }
  auto questions =
      web::QuestionFactory::AirportWeatherQuestions(webb, airport_of_city);
  if (questions.empty()) {
    std::cerr << "no questions generated" << std::endl;
    return 1;
  }

  ontology::UmlModel uml = LastMinuteSales::MakeUmlModel();
  auto run = [&](bool enrich) {
    auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
    integration::PipelineConfig pconfig =
        LastMinuteSales::DefaultPipelineConfig();
    pconfig.enrich_with_dw_contents = enrich;
    pconfig.qa.max_answers = 10;
    integration::IntegrationPipeline pipeline(&wh, &uml, pconfig);
    RunScore score;
    if (!pipeline.RunAll(&webb.documents()).ok()) return score;
    for (const auto& gq : questions) {
      ++score.questions;
      auto analysis = pipeline.aliqan()->AnalyzeQuestion(gq.question);
      if (analysis.ok() && !analysis->resolved_city.empty()) {
        ++score.city_resolved;
      }
      auto answers = pipeline.aliqan()->Ask(gq.question);
      if (!answers.ok() || answers->empty()) continue;
      const auto& best = answers->best();
      if (!best.has_value) continue;
      ++score.answered;
      if (web::QuestionFactory::Matches(gq, best.answer_text,
                                        best.has_value, best.value) &&
          analysis.ok() &&
          ToLower(best.location) == ToLower(analysis->resolved_city)) {
        ++score.correct;
      }
    }
    return score;
  };

  RunScore with = run(true);
  RunScore without = run(false);

  TablePrinter table({"configuration", "questions", "city resolved",
                      "answered", "correct tuple@1"});
  auto add = [&](const char* name, const RunScore& s) {
    table.AddRow({name, std::to_string(s.questions),
                  bench::Pct(s.city_resolved, s.questions),
                  bench::Pct(s.answered, s.questions),
                  bench::Pct(s.correct, s.questions)});
  };
  add("Steps 2+3 ON (enriched ontology)", with);
  add("Step 2 OFF (bare WordNet)", without);
  table.Print(std::cout);

  std::cout << "\n[shape check] without enrichment the airport names stay "
               "people/bands and the\nquestions cannot be grounded to "
               "cities; with enrichment most resolve and are\nanswered "
               "correctly.\n";
  bool shape_ok = with.correct > without.correct &&
                  with.city_resolved > without.city_resolved &&
                  with.city_resolved * 10 >= with.questions * 8;
  std::cout << (shape_ok ? "[shape check] PASS\n" : "[shape check] FAIL\n");
  return shape_ok ? 0 : 1;
}
