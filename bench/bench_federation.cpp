// Federation cost study — what the fan-out/merge path charges relative to
// physically merging the warehouses, and how partner chaos degrades it.
//
// Two warehouses (the local airline plus the partner of the federation
// scenario) answer the same representative OLAP queries three ways: the
// merged-warehouse oracle (MergeWarehouses once, then plain OlapEngine),
// and the FederatedEngine at 0%, 5% and 10% injected sub-query failure.
// Shape check: at 0% chaos the federated answers must be byte-identical
// to the oracle — a federation layer that is fast but wrong benches as a
// failure, not a number. Under chaos the engine must keep answering with
// typed partial coverage; any hard error is likewise fatal to the bench.
//
// `--smoke` shrinks the fact volume and repetitions for the `perf`-labeled
// ctest smoke.

#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/table_printer.h"
#include "dw/federation/federated_engine.h"
#include "dw/federation/merge_warehouses.h"
#include "dw/federation/partner_warehouse.h"
#include "dw/olap.h"
#include "integration/last_minute_sales.h"
#include "web/weather_model.h"

using namespace dwqa;
using dw::AggFn;
using dw::OlapEngine;
using dw::OlapQuery;
using dw::OlapResult;
using dw::Warehouse;
using integration::LastMinuteSales;

namespace {

/// The query mix: one roll-up that exercises the km→mi unit conversion and
/// one finer-grained cube whose group count scales with the day range.
std::vector<OlapQuery> QueryMix() {
  OlapQuery rollup;
  rollup.fact = "LastMinuteSales";
  rollup.measures = {{"Tickets", AggFn::kSum}, {"Miles", AggFn::kSum}};
  rollup.group_by = {{"destination", "Country"}};

  OlapQuery cube;
  cube.fact = "LastMinuteSales";
  cube.measures = {{"Tickets", AggFn::kSum}};
  cube.group_by = {{"destination", "City"}, {"date", "Date"}};

  return {rollup, cube};
}

bool SameResult(const OlapResult& a, const OlapResult& b) {
  if (a.headers != b.headers || a.rows.size() != b.rows.size()) return false;
  for (size_t r = 0; r < a.rows.size(); ++r) {
    if (a.rows[r] != b.rows[r]) return false;
  }
  return true;
}

struct FedSample {
  double mean_ms = 0.0;
  int partial = 0;  ///< executions that came back with coverage gaps
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  PrintBanner(std::cout,
              "Federation cost — fan-out/merge vs the merged-warehouse "
              "oracle, 2 warehouses at 0-10% partner chaos");

  const int days = smoke ? 31 : 180;
  const int reps = smoke ? 40 : 200;

  // Local airline with its sales, partner with sales and weather.
  Date start(2004, 1, 1);
  Warehouse local = LastMinuteSales::MakeWarehouse().ValueOrDie();
  web::WeatherModel weather(42);
  DWQA_CHECK(
      LastMinuteSales::GenerateSales(&local, weather, start, days).ok());
  Warehouse remote = dw::fed::PartnerAirline::MakeWarehouse().ValueOrDie();
  DWQA_CHECK(
      dw::fed::PartnerAirline::GeneratePartnerSales(&remote, start, days)
          .ok());
  DWQA_CHECK(
      dw::fed::PartnerAirline::GeneratePartnerWeather(&remote, start, days)
          .ok());

  dw::fed::SchemaMatcher matcher(
      dw::fed::PartnerAirline::DefaultMatcherOptions());
  dw::fed::SchemaMapping mapping = matcher.Match(local, remote).ValueOrDie();

  const std::vector<OlapQuery> queries = QueryMix();
  bench::JsonSectionWriter json("bench_federation");
  TablePrinter table({"path", "chaos", "mean query (ms)", "partial runs"});

  // The oracle: pay the physical merge once, then query one warehouse.
  double merge_ms = 0.0;
  std::vector<OlapResult> oracle_answers;
  double oracle_mean_ms = 0.0;
  {
    bench::Timer timer;
    auto merged = dw::fed::MergeWarehouses(local, remote, mapping);
    merge_ms = timer.ElapsedMs();
    DWQA_CHECK(merged.ok());
    OlapEngine engine(&*merged);
    for (const OlapQuery& q : queries) {
      oracle_answers.push_back(engine.Execute(q).ValueOrDie());
    }
    bench::Timer loop;
    for (int i = 0; i < reps; ++i) {
      DWQA_CHECK(engine.Execute(queries[i % queries.size()]).ok());
    }
    oracle_mean_ms = loop.ElapsedMs() / reps;
  }
  table.AddRow({"merged oracle", "0%", FormatDouble(oracle_mean_ms, 3), "0"});
  json.Add("merge_oracle_build_ms", merge_ms, "ms");
  json.Add("oracle_query_mean_ms", oracle_mean_ms, "ms");

  // The federated path at increasing partner failure probability.
  const std::vector<double> chaos_levels = {0.0, 0.05, 0.10};
  for (double chaos : chaos_levels) {
    FaultConfig config;
    config.seed = 97;
    if (chaos > 0.0) {
      config.rules = {{kFaultPointFedSubquery, chaos}};
    }
    FaultInjector injector(config);
    dw::fed::FederatedEngine engine(&local);
    DWQA_CHECK(engine
                   .AddRemote("partner", &remote, mapping,
                              chaos > 0.0 ? &injector : nullptr)
                   .ok());

    FedSample sample;
    bench::Timer loop;
    for (int i = 0; i < reps; ++i) {
      auto fed = engine.Execute(queries[i % queries.size()]);
      // Chaos must degrade coverage, never the call: a hard error here is
      // a federation bug, not a slow run.
      DWQA_CHECK(fed.ok());
      if (!fed->coverage.full()) ++sample.partial;
      if (chaos == 0.0 && i < int(queries.size()) &&
          !SameResult(oracle_answers[i], fed->result)) {
        std::cerr << "bench_federation: federated answer DIVERGED from the "
                     "merged oracle at 0% chaos (query "
                  << i << ")\n";
        return 1;
      }
    }
    sample.mean_ms = loop.ElapsedMs() / reps;

    const std::string tag =
        std::to_string(int(chaos * 100 + 0.5)) + "%";
    table.AddRow({"federated", tag, FormatDouble(sample.mean_ms, 3),
                  std::to_string(sample.partial)});
    json.Add("fed_chaos_" + tag + "_mean_ms", sample.mean_ms, "ms");
    json.Add("fed_chaos_" + tag + "_partial", double(sample.partial), "");
  }

  table.Print(std::cout);
  if (!json.Flush()) {
    std::cerr << "bench_federation: bench-JSON flush failed\n";
    return 1;
  }
  return 0;
}
