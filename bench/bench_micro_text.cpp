// Microbenchmarks of the NLP substrate: tokenizer, tagger, chunker and
// entity recognizers — the per-sentence cost that dominates AliQAn's
// extraction module.

#include <benchmark/benchmark.h>

#include "bench/bench_json_main.h"

#include "text/chunker.h"
#include "text/entities.h"
#include "text/pos_tagger.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

namespace {

const char* kSentence =
    "Monday, January 31, 2004 Barcelona Weather: Temperature 8\xC2\xBA C "
    "around 46.4 F Clear skies today";

const char* kQuestion =
    "What is the weather like in January of 2004 in El Prat?";

void BM_Tokenize(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(dwqa::text::Tokenizer::Tokenize(kSentence));
  }
}
BENCHMARK(BM_Tokenize);

void BM_TokenizeAndTag(benchmark::State& state) {
  dwqa::text::PosTagger tagger;
  for (auto _ : state) {
    auto toks = dwqa::text::Tokenizer::Tokenize(kSentence);
    tagger.Tag(&toks);
    benchmark::DoNotOptimize(toks);
  }
}
BENCHMARK(BM_TokenizeAndTag);

void BM_ChunkSentence(benchmark::State& state) {
  dwqa::text::PosTagger tagger;
  auto toks = dwqa::text::Tokenizer::Tokenize(kQuestion);
  tagger.Tag(&toks);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dwqa::text::Chunker::Chunk(toks));
  }
}
BENCHMARK(BM_ChunkSentence);

void BM_EntityRecognizers(benchmark::State& state) {
  dwqa::text::PosTagger tagger;
  auto toks = dwqa::text::Tokenizer::Tokenize(kSentence);
  tagger.Tag(&toks);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dwqa::text::EntityRecognizer::FindDates(toks));
    benchmark::DoNotOptimize(
        dwqa::text::EntityRecognizer::FindTemperatures(toks));
    benchmark::DoNotOptimize(
        dwqa::text::EntityRecognizer::FindProperNouns(toks));
  }
}
BENCHMARK(BM_EntityRecognizers);

void BM_SentenceSplit(benchmark::State& state) {
  std::string doc;
  for (int i = 0; i < 100; ++i) {
    doc += kSentence;
    doc += ".\n";
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dwqa::text::SentenceSplitter::Split(doc));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) *
                          int64_t(doc.size()));
}
BENCHMARK(BM_SentenceSplit);

}  // namespace

DWQA_BENCH_JSON_MAIN("bench_micro_text");
