// E6 — Reproduces the Figure 5 experiment (§4.2): "lower precision is
// obtained from web pages that contain tables ... the task of associating
// the measure with its corresponding measure unit gets more difficult",
// plus the robustness measure (the page URL is always stored) and the
// paper's future-work ablation: the table-aware preprocessor (§5) restores
// most of the loss.
//
// Series: {prose pages, table pages naive, table pages + preprocessor} ×
// tuple-quality metrics.

#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "integration/last_minute_sales.h"
#include "integration/pipeline.h"

using namespace dwqa;
using integration::LastMinuteSales;

namespace {

struct RunResult {
  size_t tuples = 0;
  size_t value_ok = 0;
  size_t unit_ok = 0;
  size_t correct = 0;
  size_t url_stored = 0;
};

RunResult RunOn(const web::SyntheticWeb& webb, bool table_preprocess,
                const std::vector<std::string>& cities) {
  auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  ontology::UmlModel uml = LastMinuteSales::MakeUmlModel();
  integration::PipelineConfig config =
      LastMinuteSales::DefaultPipelineConfig();
  config.qa.max_answers = 40;
  config.qa.passages_to_analyze = 8;
  config.table_preprocess = table_preprocess;
  integration::IntegrationPipeline pipeline(&wh, &uml, config);
  RunResult result;
  if (!pipeline.RunAll(&webb.documents()).ok()) return result;
  for (const std::string& city : cities) {
    auto report = pipeline.RunStep5(
        {"What is the temperature in " + city + " in January of 2004?"},
        "Weather", "temperature");
    if (!report.ok()) continue;
    for (const auto& fact : report->facts) {
      ++result.tuples;
      // Table pages publish high/low; both count as a correct value.
      bench::TupleCheck check = bench::CheckTemperatureFact(
          webb.truth(), fact, /*accept_high_low=*/true);
      result.value_ok += check.value_ok;
      result.unit_ok += check.unit_known;
      result.correct += check.FullyCorrect();
      result.url_stored += !fact.url.empty();
    }
  }
  return result;
}

}  // namespace

int main() {
  PrintBanner(std::cout,
              "Figure 5 — extraction from table-form weather pages vs "
              "prose pages");
  std::vector<std::string> cities = {"Barcelona", "Madrid", "Paris"};

  web::WebConfig prose_config;
  prose_config.cities = cities;
  prose_config.months = {1};
  prose_config.table_weather = false;
  auto prose_web = web::SyntheticWeb::Build(prose_config).ValueOrDie();

  web::WebConfig table_config = prose_config;
  table_config.table_weather = true;
  table_config.prose_weather = false;
  auto table_web = web::SyntheticWeb::Build(table_config).ValueOrDie();

  RunResult prose = RunOn(prose_web, false, cities);
  RunResult naive = RunOn(table_web, false, cities);
  RunResult preprocessed = RunOn(table_web, true, cities);

  TablePrinter table({"corpus", "tuples", "value ok", "unit associated",
                      "full tuple precision", "URL stored"});
  auto add = [&](const char* name, const RunResult& r) {
    table.AddRow({name, std::to_string(r.tuples),
                  bench::Pct(r.value_ok, r.tuples),
                  bench::Pct(r.unit_ok, r.tuples),
                  bench::Pct(r.correct, r.tuples),
                  bench::Pct(r.url_stored, r.tuples)});
  };
  add("prose pages (Fig. 4)", prose);
  add("table pages, naive stripping (Fig. 5)", naive);
  add("table pages + table preprocessor (future work, para 5)",
      preprocessed);
  table.Print(std::cout);

  std::cout << "\n[shape check] unit association collapses on naive table "
               "stripping and recovers\nwith the preprocessor; the URL is "
               "stored in every row (robustness, para 4.2).\n";
  bool shape_ok =
      prose.tuples > 0 && naive.tuples > 0 && preprocessed.tuples > 0 &&
      prose.correct * naive.tuples > naive.correct * prose.tuples &&
      preprocessed.correct * naive.tuples >
          naive.correct * preprocessed.tuples &&
      prose.url_stored == prose.tuples;
  std::cout << (shape_ok ? "[shape check] PASS\n" : "[shape check] FAIL\n");
  return shape_ok ? 0 : 1;
}
