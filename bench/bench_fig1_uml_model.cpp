// E2 — Reproduces Figure 1: the excerpt of the multidimensional UML model
// for the Last Minute Sales example, printed as the class inventory with
// stereotypes, attributes and associations.

#include <iostream>

#include "common/table_printer.h"
#include "integration/last_minute_sales.h"

using namespace dwqa;
using integration::LastMinuteSales;

int main() {
  PrintBanner(std::cout,
              "Figure 1 — multidimensional model for Last Minute Sales");
  ontology::UmlModel model = LastMinuteSales::MakeUmlModel();
  if (auto st = model.Validate(); !st.ok()) {
    std::cerr << st << std::endl;
    return 1;
  }

  TablePrinter classes({"Class", "Stereotype", "Attributes"});
  for (const ontology::UmlClass& c : model.classes()) {
    std::string attrs;
    for (const auto& a : c.attributes) {
      if (!attrs.empty()) attrs += ", ";
      attrs += a.name + " <<" +
               std::string(ontology::AttrStereotypeName(a.stereotype)) +
               ">>";
    }
    classes.AddRow({c.name,
                    std::string("<<") +
                        ontology::ClassStereotypeName(c.stereotype) + ">>",
                    attrs});
  }
  classes.Print(std::cout);

  PrintBanner(std::cout, "Associations");
  TablePrinter assocs({"From", "Kind", "To", "Role"});
  for (const ontology::UmlAssociation& a : model.associations()) {
    const char* kind = "association";
    switch (a.kind) {
      case ontology::AssocKind::kAggregation:
        kind = "aggregation";
        break;
      case ontology::AssocKind::kRollsUpTo:
        kind = "rolls-up-to";
        break;
      case ontology::AssocKind::kGeneralization:
        kind = "generalization";
        break;
      case ontology::AssocKind::kAssociation:
        break;
    }
    assocs.AddRow({a.from, kind, a.to, a.role});
  }
  assocs.Print(std::cout);

  PrintBanner(std::cout, "Dimension hierarchies (finest level first)");
  for (const char* base : {"Airport", "Customer", "Date"}) {
    auto chain = model.HierarchyFrom(base);
    std::string line = "  ";
    for (size_t i = 0; i < chain.size(); ++i) {
      if (i > 0) line += " -> ";
      line += chain[i];
    }
    std::cout << line << "\n";
  }
  return 0;
}
