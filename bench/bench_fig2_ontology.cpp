// E3 — Reproduces Figure 2: the domain ontology obtained from the UML
// model of Figure 1 via the ad-hoc Step-1 transformation, plus the OWL
// serialization the paper's Step 1(b) calls for.

#include <iostream>

#include "common/table_printer.h"
#include "integration/last_minute_sales.h"
#include "ontology/owl_writer.h"
#include "ontology/uml_to_ontology.h"

using namespace dwqa;
using integration::LastMinuteSales;

int main() {
  PrintBanner(std::cout,
              "Figure 2 — ontology for the Last Minute Sales example "
              "(Step 1 output)");
  ontology::UmlModel model = LastMinuteSales::MakeUmlModel();
  auto onto_result = ontology::UmlToOntology::Transform(model);
  if (!onto_result.ok()) {
    std::cerr << onto_result.status() << std::endl;
    return 1;
  }
  const ontology::Ontology& onto = *onto_result;

  TablePrinter concepts({"Concept", "Relations"});
  for (ontology::ConceptId id : onto.AllConcepts()) {
    const ontology::Concept& c = onto.GetConcept(id);
    std::string rels;
    for (ontology::RelationKind kind :
         {ontology::RelationKind::kPartOf,
          ontology::RelationKind::kHasProperty,
          ontology::RelationKind::kAssociated}) {
      for (ontology::ConceptId other : onto.Related(id, kind)) {
        if (!rels.empty()) rels += ", ";
        rels += std::string(ontology::RelationKindName(kind)) + "(" +
                onto.GetConcept(other).name + ")";
      }
    }
    concepts.AddRow({c.name, rels});
  }
  concepts.Print(std::cout);
  std::cout << "\nConcepts: " << onto.concept_count()
            << ", relations: " << onto.relation_count() << "\n";

  PrintBanner(std::cout, "OWL rendering (Step 1b), first lines");
  std::string owl = ontology::OwlWriter::ToOwlXml(onto);
  size_t shown = 0;
  size_t pos = 0;
  while (shown < 18 && pos < owl.size()) {
    size_t end = owl.find('\n', pos);
    if (end == std::string::npos) end = owl.size();
    std::cout << owl.substr(pos, end - pos) << "\n";
    pos = end + 1;
    ++shown;
  }
  std::cout << "... (" << owl.size() << " bytes total)\n";
  return 0;
}
