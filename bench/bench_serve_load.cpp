// Serving-loop load study — the QA-as-a-service front-end replaying a
// multi-tenant question stream under increasing chaos.
//
// Three tenants share one QaServer; ≥5000 requests (mostly `ask`, with
// periodic `bi` roll-ups, deadline-capped asks and cache-bypassing asks)
// replay against injected transient fault rates of 0%, 5% and 10% at the
// ask path's fetch point. Reported per rate: outcome mix, cache behaviour,
// latency percentiles (p50/p95/p99 from the server's own latency
// histogram) and throughput.
//
// Shape check — the serving contract of the robustness issue: EVERY
// request ends in an answer carrying a DegradationLevel or in a typed
// rejection (Overloaded / DeadlineExceeded / CircuitOpen); no untyped
// errors, no crashes, no hangs.
//
// `--smoke` shrinks the replay for the `perf`-labeled ctest smoke.

#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/date.h"
#include "common/fault.h"
#include "common/metric_names.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "integration/last_minute_sales.h"
#include "serve/server.h"
#include "web/question_factory.h"
#include "web/synthetic_web.h"

using namespace dwqa;
using integration::LastMinuteSales;

namespace {

struct RateReport {
  size_t requests = 0;
  size_t ok = 0;
  size_t cached = 0;
  size_t stale = 0;
  size_t rejected = 0;
  size_t untyped_errors = 0;
  std::map<std::string, size_t> rejection_codes;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  double wall_ms = 0.0;
};

/// The ask-endpoint latency series of the server registry.
double AskQuantile(const MetricRegistry& metrics, double q) {
  for (const MetricSnapshot& snapshot :
       metrics.SnapshotFamily(kMetricServeRequestLatency)) {
    auto it = snapshot.labels.find("endpoint");
    if (it != snapshot.labels.end() && it->second == "ask") {
      return HistogramQuantile(snapshot, q);
    }
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  PrintBanner(std::cout,
              "QA-as-a-service under load — three tenants, chaos sweep, "
              "typed outcomes only");

  web::WebConfig web_config;
  web_config.seed = 42;
  web_config.cities = {"Barcelona", "Madrid", "Valencia",
                       "Seville", "Paris", "Rome"};
  web_config.months = {1, 2};
  auto webb = web::SyntheticWeb::Build(web_config).ValueOrDie();
  ontology::UmlModel uml = LastMinuteSales::MakeUmlModel();

  // The replayed question pool: every (city, month) weather question.
  std::vector<std::string> pool;
  for (const web::GoldQuestion& gold :
       web::QuestionFactory::WeatherQuestions(webb)) {
    pool.push_back(gold.question);
  }

  const std::vector<std::string> tenants = {"alpha", "beta", "gamma"};
  const size_t total_requests = smoke ? 600 : 5100;
  const std::vector<double> rates =
      smoke ? std::vector<double>{0.0, 0.10}
            : std::vector<double>{0.0, 0.05, 0.10};

  // Per-tenant warehouses outlive the servers of every chaos rate.
  std::vector<std::unique_ptr<dw::Warehouse>> warehouses;
  for (size_t i = 0; i < tenants.size(); ++i) {
    auto wh = std::make_unique<dw::Warehouse>(
        LastMinuteSales::MakeWarehouse().ValueOrDie());
    if (!LastMinuteSales::GenerateSales(wh.get(), webb.weather(),
                                        Date(2004, 1, 1), 59)
             .ok()) {
      std::cerr << "sales generation failed" << std::endl;
      return 1;
    }
    warehouses.push_back(std::move(wh));
  }

  auto run = [&](double chaos) -> Result<RateReport> {
    serve::ServerConfig server_config;
    // Rate-limit each tenant below its arrival rate so a slice of the
    // stream is shed with the typed Overloaded rejection — overload is
    // part of the study, not an accident.
    server_config.admission.rate.capacity = 8.0;
    server_config.admission.rate.refill_per_tick = 0.30;
    serve::QaServer server(server_config);

    for (size_t i = 0; i < tenants.size(); ++i) {
      serve::ServeTenantConfig tenant;
      tenant.name = tenants[i];
      tenant.warehouse = warehouses[i].get();
      tenant.uml = &uml;
      tenant.docs = &webb.documents();
      tenant.pipeline = LastMinuteSales::DefaultPipelineConfig();
      tenant.pipeline.resilience.retry.sleep = false;
      tenant.pipeline.resilience.fault =
          FaultConfig::TransientEverywhere(chaos, /*seed=*/17 + i);
      tenant.retry.sleep = false;
      tenant.fault = FaultConfig::TransientEverywhere(chaos, /*seed=*/7 + i);
      tenant.breaker.enabled = true;
      // Entries go stale mid-replay, so the stale-while-degraded fallback
      // is exercised, not just asserted on in tests.
      tenant.cache.ttl_ticks = total_requests / 4;
      DWQA_RETURN_NOT_OK(server.AddTenant(tenant));
    }

    RateReport report;
    bench::Timer timer;
    for (size_t i = 0; i < total_requests; ++i) {
      serve::Request request;
      request.id = i + 1;
      request.tenant = tenants[i % tenants.size()];
      if (i % 250 == 0) {
        // Periodic Step-5 feeds keep each tenant's warehouse warm — and
        // make the later `bi` roll-ups meaningful.
        request.endpoint = serve::Endpoint::kFeed;
        request.questions = {pool[0], pool[1], pool[2]};
      } else if (i % 250 == 249) {
        request.endpoint = serve::Endpoint::kBi;
      } else {
        request.endpoint = serve::Endpoint::kAsk;
        request.questions = {pool[i % pool.size()]};
        // Every 7th ask bypasses the cache (a live-path slice); every 13th
        // carries a deliberately tiny deadline budget.
        request.no_cache = (i % 7 == 0);
        if (i % 13 == 0) request.budget = 2.0;
      }
      serve::Response response = server.Handle(request);
      ++report.requests;
      if (response.status == "ok") {
        ++report.ok;
        if (response.cached) ++report.cached;
        if (response.stale) ++report.stale;
        if (request.endpoint == serve::Endpoint::kAsk &&
            response.AnswerField("degradation").empty()) {
          ++report.untyped_errors;  // An answer without a level is a bug.
        }
      } else if (response.status == "rejected") {
        ++report.rejected;
        ++report.rejection_codes[response.code];
      } else {
        ++report.untyped_errors;
        ++report.rejection_codes["error:" + response.code];
      }
    }
    report.wall_ms = timer.ElapsedMs();
    report.p50 = AskQuantile(*server.metrics(), 0.50);
    report.p95 = AskQuantile(*server.metrics(), 0.95);
    report.p99 = AskQuantile(*server.metrics(), 0.99);
    DWQA_RETURN_NOT_OK(server.Drain());
    return report;
  };

  bench::JsonSectionWriter json("bench_serve_load");
  TablePrinter table({"chaos", "requests", "ok", "cached", "stale",
                      "rejected", "codes", "p50 ms", "p95 ms", "p99 ms",
                      "req/s"});
  bool shape_ok = true;
  for (double rate : rates) {
    auto result = run(rate);
    if (!result.ok()) {
      std::cerr << result.status() << std::endl;
      return 1;
    }
    const RateReport& r = *result;
    // The contract: answers or typed rejections, nothing else; shedding
    // visible once the rate limiter bites; at most the three typed codes.
    shape_ok = shape_ok && r.untyped_errors == 0 &&
               r.ok + r.rejected == r.requests && r.rejected > 0;
    for (const auto& [code, count] : r.rejection_codes) {
      shape_ok = shape_ok &&
                 (code == "Overloaded" || code == "DeadlineExceeded" ||
                  code == "CircuitOpen");
    }
    std::string codes;
    for (const auto& [code, count] : r.rejection_codes) {
      if (!codes.empty()) codes += " ";
      codes += code + ":" + std::to_string(count);
    }
    const double qps = r.requests / (r.wall_ms / 1000.0);
    const std::string label = std::to_string(int(rate * 100)) + "%";
    table.AddRow({label, std::to_string(r.requests), std::to_string(r.ok),
                  std::to_string(r.cached), std::to_string(r.stale),
                  std::to_string(r.rejected), codes, FormatDouble(r.p50, 2),
                  FormatDouble(r.p95, 2), FormatDouble(r.p99, 2),
                  FormatDouble(qps, 0)});
    json.Add("chaos_" + label + "_p50_ms", r.p50, "ms");
    json.Add("chaos_" + label + "_p95_ms", r.p95, "ms");
    json.Add("chaos_" + label + "_p99_ms", r.p99, "ms");
    json.Add("chaos_" + label + "_throughput", qps, "q/s");
    json.Add("chaos_" + label + "_rejected", double(r.rejected), "");
    json.Add("chaos_" + label + "_cache_hits", double(r.cached), "");
  }
  table.Print(std::cout);
  if (!json.Flush()) return 1;
  std::cout << (shape_ok
                    ? "[shape check] PASS — every request across the chaos "
                      "sweep ended in an answer with a degradation level or "
                      "a typed rejection (Overloaded / DeadlineExceeded / "
                      "CircuitOpen).\n"
                    : "[shape check] FAIL\n");
  return shape_ok ? 0 : 1;
}
