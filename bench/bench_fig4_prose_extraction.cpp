// E5 — Reproduces the Figure 4 experiment (§4.2): on the prose weather
// pages "the best precision in the extraction of temperatures and dates is
// obtained ... the following database is generated successfully and
// correctly (temperature – date – city – web page)".
//
// Series: per city, precision/recall of the Step-5-fed tuples against the
// synthetic web's exact ground truth.

#include <iostream>
#include <set>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "integration/last_minute_sales.h"
#include "integration/pipeline.h"

using namespace dwqa;
using integration::LastMinuteSales;

int main() {
  PrintBanner(std::cout,
              "Figure 4 — extraction from prose weather pages (per-city "
              "tuple precision)");

  web::WebConfig config;
  config.cities = {"Barcelona", "Madrid", "Paris", "New York"};
  config.months = {1};
  config.table_weather = false;  // Prose pages only (the Figure 4 corpus).
  auto webb = web::SyntheticWeb::Build(config).ValueOrDie();

  auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  ontology::UmlModel uml = LastMinuteSales::MakeUmlModel();
  integration::PipelineConfig pconfig =
      LastMinuteSales::DefaultPipelineConfig();
  pconfig.qa.max_answers = 40;
  pconfig.qa.passages_to_analyze = 8;
  integration::IntegrationPipeline pipeline(&wh, &uml, pconfig);
  if (!pipeline.RunAll(&webb.documents()).ok()) return 1;

  TablePrinter table({"city", "tuples fed", "value ok", "unit ok",
                      "date ok", "tuple precision", "day recall"});
  size_t total = 0, total_correct = 0;
  for (const std::string& city : config.cities) {
    auto report = pipeline.RunStep5(
        {"What is the temperature in " + city + " in January of 2004?"},
        "Weather", "temperature");
    if (!report.ok()) {
      std::cerr << report.status() << std::endl;
      return 1;
    }
    size_t value_ok = 0, unit_ok = 0, date_ok = 0, correct = 0;
    std::set<std::string> days_recovered;
    for (const auto& fact : report->facts) {
      bench::TupleCheck check =
          bench::CheckTemperatureFact(webb.truth(), fact,
                                      /*accept_high_low=*/false);
      value_ok += check.value_ok;
      unit_ok += check.unit_known;
      date_ok += check.date_complete && check.location_known;
      if (check.FullyCorrect()) {
        ++correct;
        days_recovered.insert(fact.date->ToIsoString());
      }
    }
    size_t n = report->facts.size();
    table.AddRow({city, std::to_string(n), bench::Pct(value_ok, n),
                  bench::Pct(unit_ok, n), bench::Pct(date_ok, n),
                  bench::Pct(correct, n),
                  bench::Pct(days_recovered.size(), 31)});
    total += n;
    total_correct += correct;
  }
  table.Print(std::cout);
  std::cout << "\nOverall tuple precision: "
            << bench::Pct(total_correct, total) << " over " << total
            << " fed tuples\n";
  std::cout << "[shape check] the paper reports the DB is generated "
               "\"successfully and correctly\"\nfrom this layout — "
               "precision should be near 100%.\n";
  return total_correct * 10 >= total * 9 ? 0 : 1;
}
