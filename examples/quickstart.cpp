// Quickstart: ask the paper's flagship question against a synthetic web and
// print the precise, structured answer a QA system returns (vs. the whole
// documents an IR system would return).
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <iostream>

#include "ontology/wordnet.h"
#include "qa/aliqan.h"
#include "qa/structured.h"
#include "web/synthetic_web.h"

using namespace dwqa;

int main() {
  // 1. Build a small synthetic web: weather pages for Barcelona, January
  //    2004, plus noise.
  web::WebConfig web_config;
  web_config.cities = {"Barcelona", "Madrid"};
  web_config.year = 2004;
  web_config.months = {1};
  auto built = web::SyntheticWeb::Build(web_config);
  if (!built.ok()) {
    std::cerr << "failed to build the synthetic web: " << built.status()
              << std::endl;
    return 1;
  }
  const web::SyntheticWeb& webb = *built;
  std::cout << "Synthetic web: " << webb.documents().size()
            << " documents\n";

  // 2. Stand up the QA system over the mini-WordNet upper ontology.
  ontology::Ontology upper = ontology::MiniWordNet::Build();
  qa::AliQAn aliqan(&upper);
  if (auto st = aliqan.IndexCorpus(&webb.documents()); !st.ok()) {
    std::cerr << "indexation failed: " << st << std::endl;
    return 1;
  }

  // 3. Ask the paper's question.
  const std::string question =
      "What is the temperature in Barcelona in January of 2004?";
  std::cout << "\nQ: " << question << "\n";
  auto answers = aliqan.Ask(question);
  if (!answers.ok()) {
    std::cerr << "QA failed: " << answers.status() << std::endl;
    return 1;
  }
  std::cout << "Pattern:       " << answers->analysis.pattern << "\n";
  std::cout << "Answer type:   "
            << qa::AnswerTypeName(answers->analysis.answer_type) << "\n";
  std::cout << "Main SBs:      ";
  for (const auto& sb : answers->analysis.main_sbs) {
    std::cout << "[" << sb << "] ";
  }
  std::cout << "\n\nTop answers (structured — ready to feed the DW):\n";
  for (const auto& fact :
       qa::ToStructuredFacts(*answers, "temperature")) {
    std::cout << "  " << fact.ToDisplayString() << "\n";
  }
  if (answers->empty()) {
    std::cout << "  (no answer found)\n";
    return 1;
  }
  return 0;
}
