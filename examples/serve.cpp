// serve — QA-as-a-service on stdin/stdout: a long-lived, multi-tenant
// serving loop speaking the framed DWQA1 protocol (docs/SERVING.md).
// Two tenants ("alpha" and "beta") are registered over the synthetic web,
// each with its own pipeline, answer cache and circuit breaker. Tenant
// alpha owns a mutable copy of the corpus, so its `ingest` endpoint is
// live: a document posted in the frame payload becomes searchable
// without a reindex (DESIGN.md §14). An ingest frame carries the
// document metadata as headers — `url=`, `title=`, and `format=` with
// one of `text` (default), `html` or `xml`; any other format value is
// rejected at parse time with "protocol: unknown format '...'" — and
// the document body after the blank line:
//
//   endpoint=ingest
//   id=9
//   tenant=alpha
//   url=http://example.test/new-page
//   format=html
//
//   <html>the body, verbatim — newlines welcome</html>
//
// Alpha also carries a materialized view catalog derived from the
// schema's conformed levels, so its `bi` responses answer from
// pre-aggregated views (`sales_from_view=1`,
// maintained incrementally as `feed` loads facts — DESIGN.md §15), while
// beta demonstrates the recompute fallback.
//
//   printf 'DWQA1 %s' "$(printf 'endpoint=ask\nid=1\ntenant=alpha\nq=What is the temperature in Barcelona in January of 2004?\n' | wc -c)" \
//     && printf '\nendpoint=ask\nid=1\ntenant=alpha\nq=...\n'
//
// or, much easier, pre-framed request files:
//
//   ./build/examples/serve < requests.dwqa > responses.dwqa
//
// SIGTERM/SIGINT request a graceful drain: in-flight requests finish,
// feed checkpoints are flushed, late arrivals get the typed Draining
// rejection, and the process exits 0.

#include <csignal>
#include <iostream>
#include <memory>
#include <string_view>
#include <vector>

#include "common/date.h"
#include "dw/materialized_view.h"
#include "integration/last_minute_sales.h"
#include "serve/server.h"
#include "web/synthetic_web.h"

using namespace dwqa;
using integration::LastMinuteSales;

namespace {

serve::QaServer* g_server = nullptr;

// Signal-safe: RequestDrain is a single atomic store.
void HandleSignal(int) {
  if (g_server != nullptr) g_server->RequestDrain();
}

}  // namespace

int main() {
  web::WebConfig web_config;
  web_config.months = {1, 7};
  auto webb = web::SyntheticWeb::Build(web_config).ValueOrDie();
  ontology::UmlModel uml = LastMinuteSales::MakeUmlModel();

  serve::ServerConfig config;
  config.admission.max_queue_depth = 32;
  config.admission.per_tenant_concurrency = 8;
  serve::QaServer server(config);

  // Alpha's corpus copy stays mutable so the ingest endpoint can append.
  ir::DocumentStore alpha_docs;
  for (const ir::Document& doc : webb.documents().documents()) {
    alpha_docs.Add(doc.url, doc.title, doc.format, doc.raw);
  }

  std::vector<std::unique_ptr<dw::Warehouse>> warehouses;
  std::vector<std::unique_ptr<dw::ViewCatalog>> catalogs;
  for (const char* name : {"alpha", "beta"}) {
    auto wh = std::make_unique<dw::Warehouse>(
        LastMinuteSales::MakeWarehouse().ValueOrDie());
    if (std::string_view(name) == "alpha") {
      auto views = std::make_unique<dw::ViewCatalog>();
      if (auto st = views->DefineAll(
              dw::DeriveViewsFromSchema(wh->schema()));
          !st.ok()) {
        std::cerr << st << std::endl;
        return 1;
      }
      wh->AttachViews(views.get());
      catalogs.push_back(std::move(views));
    }
    if (auto generated = LastMinuteSales::GenerateSales(
            wh.get(), webb.weather(), Date(2004, 1, 1), 59);
        !generated.ok()) {
      std::cerr << generated.status() << std::endl;
      return 1;
    }
    if (wh->views() != nullptr) {
      if (auto st = wh->views()->Bind(*wh); !st.ok()) {
        std::cerr << st << std::endl;
        return 1;
      }
    }
    serve::ServeTenantConfig tenant;
    tenant.name = name;
    tenant.warehouse = wh.get();
    tenant.uml = &uml;
    tenant.docs = &webb.documents();
    if (std::string_view(name) == "alpha") {
      tenant.docs = &alpha_docs;
      tenant.ingest_docs = &alpha_docs;
    }
    tenant.pipeline = LastMinuteSales::DefaultPipelineConfig();
    tenant.breaker.enabled = true;
    if (auto st = server.AddTenant(tenant); !st.ok()) {
      std::cerr << st << std::endl;
      return 1;
    }
    warehouses.push_back(std::move(wh));
  }

  g_server = &server;
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  std::cerr << "dwqa serve — tenants: alpha, beta; corpus: "
            << webb.documents().size()
            << " documents. Reading DWQA1 frames from stdin.\n"
            << "endpoints: ask feed bi ingest health metrics; ingest "
               "headers: url= title= format= (text|html|xml, payload = "
               "document body); see docs/SERVING.md\n";
  Status st = server.ServeStream(std::cin, std::cout);
  if (!st.ok()) {
    std::cerr << st << std::endl;
    return 1;
  }
  std::cerr << "drained cleanly after " << server.now_tick()
            << " requests\n";
  return 0;
}
