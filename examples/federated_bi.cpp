// Federated BI quickstart — the warehouse-federation scenario end to end
// (docs/FEDERATION.md): build the local airline warehouse and the partner
// airline's independently designed one, let the ontology-mediated
// SchemaMatcher derive the typed mapping between them, run a BI roll-up
// through the FederatedEngine's fan-out/merge path, and check the answer
// byte-for-byte against the MergeWarehouses oracle. Ends with a chaos
// demonstration: a partner outage degrades into typed partial coverage,
// never into a silently smaller sum.
//
// Run: ./build/examples/federated_bi

#include <iostream>
#include <string>

#include "common/date.h"
#include "common/fault.h"
#include "dw/federation/federated_engine.h"
#include "dw/federation/merge_warehouses.h"
#include "dw/federation/partner_warehouse.h"
#include "dw/olap.h"
#include "integration/last_minute_sales.h"
#include "web/weather_model.h"

using namespace dwqa;
using dw::fed::PartnerAirline;
using integration::LastMinuteSales;

int main() {
  // 1. Two autonomous warehouses over the same winter month.
  const Date start(2004, 1, 1);
  const int days = 31;

  auto local_result = LastMinuteSales::MakeWarehouse();
  if (!local_result.ok()) {
    std::cerr << local_result.status() << std::endl;
    return 1;
  }
  dw::Warehouse local = std::move(local_result).ValueOrDie();
  web::WeatherModel weather(42);
  if (!LastMinuteSales::GenerateSales(&local, weather, start, days).ok()) {
    return 1;
  }

  auto remote_result = PartnerAirline::MakeWarehouse();
  if (!remote_result.ok()) {
    std::cerr << remote_result.status() << std::endl;
    return 1;
  }
  dw::Warehouse remote = std::move(remote_result).ValueOrDie();
  if (!PartnerAirline::GeneratePartnerSales(&remote, start, days).ok() ||
      !PartnerAirline::GeneratePartnerWeather(&remote, start, days).ok()) {
    return 1;
  }

  // 2. Derive the schema-instance mapping. No hand-written crosswalk: the
  // Step-3 ontology ladder aligns levels, roles, measures and members.
  dw::fed::SchemaMatcher matcher(PartnerAirline::DefaultMatcherOptions());
  auto mapping_result = matcher.Match(local, remote);
  if (!mapping_result.ok()) {
    std::cerr << mapping_result.status() << std::endl;
    return 1;
  }
  const dw::fed::SchemaMapping& mapping = *mapping_result;

  std::cout << "Derived mapping (local <-> partner):\n";
  for (const auto& dim : mapping.dimensions) {
    std::cout << "  dimension " << dim.local_dimension << " <-> "
              << dim.remote_dimension << "  (" << dim.member_map.size()
              << " shared members)\n";
    for (const auto& level : dim.levels) {
      std::cout << "    " << level.local_level << " <-> "
                << level.remote_level << "  ["
                << dw::fed::MatchKindName(level.kind) << "]\n";
    }
  }
  for (const auto& fact : mapping.facts) {
    std::cout << "  fact " << fact.local_fact << " <-> " << fact.remote_fact
              << (fact.key_complete ? "  (key-complete)"
                                    : "  (additive merge)")
              << "\n";
    for (const auto& m : fact.measures) {
      std::cout << "    " << m.local_measure << " <-> " << m.remote_measure
                << "  [" << dw::fed::MatchKindName(m.kind) << ", x"
                << m.conversion << "]\n";
    }
    for (const std::string& role : fact.unmapped_local_roles) {
      std::cout << "    role " << role << ": no partner counterpart -> "
                << dw::fed::kUnattributedMember << "\n";
    }
  }
  std::cout << "  matcher notes (refusals are recorded, never guessed): "
            << (mapping.notes.empty() ? "none\n" : "\n");
  for (const std::string& note : mapping.notes) {
    std::cout << "    - " << note << "\n";
  }

  // 3. One BI roll-up over both airlines: tickets and miles by destination
  // country. Partner kilometres become miles (x0.625, exact) at merge.
  dw::OlapQuery query;
  query.fact = "LastMinuteSales";
  query.measures = {{"Tickets", dw::AggFn::kSum}, {"Miles", dw::AggFn::kSum}};
  query.group_by = {{"destination", "Country"}};

  dw::fed::FederatedEngine engine(&local);
  if (auto st = engine.AddRemote("partner", &remote, mapping); !st.ok()) {
    std::cerr << st << std::endl;
    return 1;
  }
  auto fed = engine.Execute(query);
  if (!fed.ok()) {
    std::cerr << fed.status() << std::endl;
    return 1;
  }
  std::cout << "\nFederated tickets+miles by destination country ("
            << (fed->coverage.full() ? "full" : "partial")
            << " coverage, no fact row copied):\n"
            << fed->result.ToDisplayString();

  // 4. The oracle: physically merge the partner into the local schema and
  // run the same query on one warehouse. Answers must agree byte for byte.
  dw::fed::MergeWarehousesReport report;
  auto merged = dw::fed::MergeWarehouses(local, remote, mapping, {},
                                         /*quarantine=*/nullptr, &report);
  if (!merged.ok()) {
    std::cerr << merged.status() << std::endl;
    return 1;
  }
  std::cout << "\nMerged-warehouse oracle: kept " << report.local_facts_kept
            << " local facts, merged " << report.remote_facts_merged
            << " partner facts, added " << report.members_added
            << " members.\n";
  auto oracle = dw::OlapEngine(&*merged).Execute(query);
  if (!oracle.ok()) {
    std::cerr << oracle.status() << std::endl;
    return 1;
  }
  const bool identical = oracle->headers == fed->result.headers &&
                         oracle->rows == fed->result.rows;
  std::cout << "Federated answer vs oracle: "
            << (identical ? "byte-identical" : "DIVERGED") << "\n";
  if (!identical) return 1;

  // 5. Chaos: kill every partner sub-query. The federation answers from
  // the local share and *says so* — typed coverage, not a quiet undercount.
  FaultConfig config;
  config.seed = 7;
  config.rules = {{kFaultPointFedSubquery, 1.0}};
  FaultInjector outage(config);
  dw::fed::FederatedEngine degraded(&local);
  if (auto st = degraded.AddRemote("partner", &remote, mapping, &outage);
      !st.ok()) {
    std::cerr << st << std::endl;
    return 1;
  }
  auto partial = degraded.Execute(query);
  if (!partial.ok()) {
    std::cerr << partial.status() << std::endl;
    return 1;
  }
  std::cout << "\nWith the partner down: coverage "
            << partial->coverage.answered << "/"
            << partial->coverage.warehouses_total << " members";
  for (const auto& gap : partial->coverage.missing) {
    std::cout << "; missing " << gap.warehouse << " (" << gap.reason << ")";
  }
  std::cout << "\n" << partial->result.ToDisplayString();
  return 0;
}
