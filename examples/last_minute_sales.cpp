// The paper's full running example (§3–§4): an airline's Last Minute Sales
// warehouse is integrated with the AliQAn-style QA system through an
// ontology, the QA system harvests temperatures from the (synthetic) Web,
// Step 5 feeds them back into the DW, and the BI layer finally answers the
// motivating question: *which temperature range makes last-minute tickets
// sell?*
//
// Run: ./build/examples/last_minute_sales

#include <algorithm>
#include <iostream>

#include "common/logging.h"
#include "common/string_util.h"
#include "dw/persistence.h"
#include "integration/bi_analysis.h"
#include "integration/last_minute_sales.h"
#include "integration/pipeline.h"
#include "integration/query_generation.h"
#include "web/synthetic_web.h"

using namespace dwqa;
using integration::LastMinuteSales;

int main() {
  Logger::set_threshold(LogLevel::kInfo);

  // ---- The structured side: the airline DW with one year of sales -------
  auto wh_result = LastMinuteSales::MakeWarehouse();
  if (!wh_result.ok()) {
    std::cerr << wh_result.status() << std::endl;
    return 1;
  }
  dw::Warehouse wh = std::move(wh_result).ValueOrDie();
  web::WeatherModel weather(42);
  auto sales =
      LastMinuteSales::GenerateSales(&wh, weather, Date(2004, 1, 1), 365);
  if (!sales.ok()) {
    std::cerr << sales.status() << std::endl;
    return 1;
  }
  std::cout << "Warehouse: " << *sales << " Last Minute Sales fact rows\n";

  // ---- The unstructured side: the synthetic Web -------------------------
  web::WebConfig web_config;
  web_config.seed = 42;  // Same weather world as the sales generator.
  web_config.months = {1, 4, 7, 10};
  auto webb = web::SyntheticWeb::Build(web_config);
  if (!webb.ok()) {
    std::cerr << webb.status() << std::endl;
    return 1;
  }
  std::cout << "Synthetic web: " << webb->documents().size()
            << " documents\n\n";

  // ---- Steps 1–4 + indexation -------------------------------------------
  ontology::UmlModel uml = LastMinuteSales::MakeUmlModel();
  integration::PipelineConfig config =
      LastMinuteSales::DefaultPipelineConfig();
  integration::IntegrationPipeline pipeline(&wh, &uml, config);
  if (auto st = pipeline.RunAll(&webb->documents()); !st.ok()) {
    std::cerr << "pipeline failed: " << st << std::endl;
    return 1;
  }
  std::cout << "Merged ontology: "
            << pipeline.merged_ontology().concept_count() << " concepts, "
            << pipeline.merged_ontology().relation_count() << " relations\n";

  // ---- Step 5: DW-driven question generation (future work §5) + feed ----
  integration::AnalysisContext ctx;
  ctx.attribute = "temperature";
  ctx.dimension = "Airport";
  ctx.level = "City";
  std::vector<std::string> questions;
  for (int month : web_config.months) {
    ctx.month = month;
    auto qs = integration::QueryGeneration::GenerateQuestions(wh, ctx);
    if (!qs.ok()) {
      std::cerr << qs.status() << std::endl;
      return 1;
    }
    questions.insert(questions.end(), qs->begin(), qs->end());
  }
  std::cout << "Generated " << questions.size()
            << " QA questions from the DW schema, e.g.:\n  " << questions[0]
            << "\n\n";

  auto feed = pipeline.RunStep5(questions, "Weather", "temperature");
  if (!feed.ok()) {
    std::cerr << "Step 5 failed: " << feed.status() << std::endl;
    return 1;
  }
  std::cout << "Step 5: asked " << feed->questions_asked << ", answered "
            << feed->questions_answered << ", loaded " << feed->rows_loaded
            << " weather tuples into the DW\n";
  std::cout << "First extracted tuples:\n";
  for (size_t i = 0; i < feed->facts.size() && i < 3; ++i) {
    std::cout << "  " << feed->facts[i].ToDisplayString() << "\n";
  }

  // ---- The BI payoff ------------------------------------------------------
  auto report = integration::BiAnalysis::SalesVsTemperature(wh);
  if (!report.ok()) {
    std::cerr << "BI analysis failed: " << report.status() << std::endl;
    return 1;
  }
  std::cout << "\nSales vs destination temperature ("
            << report->joined_days << " joined city-days):\n";
  for (const auto& range : report->ranges) {
    std::cout << "  [" << FormatDouble(range.low_c, 0) << ", "
              << FormatDouble(range.high_c, 0) << ") C : avg "
              << FormatDouble(range.avg_tickets, 1) << " tickets/day  ("
              << range.observations << " days)\n";
  }
  std::cout << "Best range: [" << FormatDouble(report->best.low_c, 0)
            << ", " << FormatDouble(report->best.high_c, 0)
            << ") C -> adjust last-minute prices for those days.\n";
  std::cout << "(Planted boost interval was ["
            << LastMinuteSales::kBoostLowC << ", "
            << LastMinuteSales::kBoostHighC << ") C)\n";

  // ---- Persist the enriched warehouse -----------------------------------
  std::string dir = "/tmp/dwqa_last_minute_sales";
  if (auto st = dw::WarehousePersistence::Save(wh, dir); st.ok()) {
    std::cout << "\nWarehouse (including the QA-fed Weather fact) saved to "
              << dir << "/\n";
    std::cout << "First lines of the Step-5 CSV:\n";
    std::string csv = qa::StructuredFactsToCsv(
        {feed->facts.begin(),
         feed->facts.begin() + std::min<size_t>(3, feed->facts.size())});
    std::cout << csv;
  } else {
    std::cerr << "persistence failed: " << st << std::endl;
  }
  return 0;
}
