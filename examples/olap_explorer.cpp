// OLAP explorer: exercises the warehouse substrate on its own — the
// hierarchy-aware aggregation the paper's §2 relates to multidimensional IR
// (roll-up, drill-down, slice, dice on the Last Minute Sales cube).
//
// Run: ./build/examples/olap_explorer

#include <iostream>

#include "dw/olap.h"
#include "dw/query_parser.h"
#include "integration/last_minute_sales.h"
#include "web/weather_model.h"

using namespace dwqa;
using integration::LastMinuteSales;

int main() {
  auto wh_result = LastMinuteSales::MakeWarehouse();
  if (!wh_result.ok()) {
    std::cerr << wh_result.status() << std::endl;
    return 1;
  }
  dw::Warehouse wh = std::move(wh_result).ValueOrDie();
  web::WeatherModel weather(42);
  if (!LastMinuteSales::GenerateSales(&wh, weather, Date(2004, 1, 1), 365)
           .ok()) {
    return 1;
  }

  dw::OlapEngine engine(&wh);

  // 1. Revenue and tickets by destination country.
  dw::OlapQuery by_country;
  by_country.fact = "LastMinuteSales";
  by_country.measures = {{"Price", dw::AggFn::kSum},
                         {"Tickets", dw::AggFn::kSum},
                         {"Price", dw::AggFn::kAvg}};
  by_country.group_by = {{"destination", "Country"}};
  auto r1 = engine.Execute(by_country);
  if (!r1.ok()) {
    std::cerr << r1.status() << std::endl;
    return 1;
  }
  std::cout << "Sales by destination country:\n" << r1->ToDisplayString();

  // 2. Drill down: Country -> State -> City.
  auto drilled = engine.DrillDown(by_country, "destination");
  if (drilled.ok()) {
    auto r2 = engine.Execute(*drilled);
    std::cout << "\nDrill-down to destination state (first rows):\n"
              << r2->ToDisplayString(8);
  }

  // 3. Slice: Spain only, by city and quarter-ish (month level).
  dw::OlapQuery spain;
  spain.fact = "LastMinuteSales";
  spain.measures = {{"Tickets", dw::AggFn::kSum}};
  spain.group_by = {{"destination", "City"}, {"date", "Month"}};
  spain.filters = {{"destination", "Country", {"Spain"}}};
  auto r3 = engine.Execute(spain);
  if (!r3.ok()) {
    std::cerr << r3.status() << std::endl;
    return 1;
  }
  std::cout << "\nTickets to Spanish cities by month (slice on "
               "Country=Spain; first rows):\n"
            << r3->ToDisplayString(12);
  std::cout << "(facts scanned: " << r3->facts_scanned
            << ", matched: " << r3->facts_matched << ")\n";

  // 4. Dice: two customer segments compared at year level — written in the
  // textual query language this time.
  auto dice = dw::QueryParser::Parse(
      "SELECT AVG(Price), SUM(Tickets) FROM LastMinuteSales "
      "BY customer.Segment, date.Year "
      "WHERE destination.Country IN (Spain, France)");
  if (!dice.ok()) {
    std::cerr << dice.status() << std::endl;
    return 1;
  }
  auto r4 = engine.Execute(*dice);
  if (!r4.ok()) {
    std::cerr << r4.status() << std::endl;
    return 1;
  }
  std::cout << "\nSegments on Spain+France routes (dice, from the textual "
               "query language):\n"
            << r4->ToDisplayString();
  return 0;
}
