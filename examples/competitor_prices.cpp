// Competitor price intelligence: the second kind of unstructured source the
// paper motivates ("the Webs of the company competitors", §1). QA extracts
// fares from competitor pages and feeds them into a Prices fact so the BI
// side can compare its own fares per route.
//
// Run: ./build/examples/competitor_prices

#include <iostream>

#include "common/string_util.h"
#include "dw/etl.h"
#include "dw/olap.h"
#include "ontology/wordnet.h"
#include "qa/aliqan.h"
#include "qa/structured.h"
#include "web/question_factory.h"
#include "web/synthetic_web.h"

using namespace dwqa;

int main() {
  // Synthetic web with competitor price pages.
  web::WebConfig config;
  config.price_pages = 10;
  config.noise_pages = 8;
  auto webb = web::SyntheticWeb::Build(config);
  if (!webb.ok()) {
    std::cerr << webb.status() << std::endl;
    return 1;
  }

  // A small prices warehouse: route (origin city, destination city) + fare.
  dw::MdSchema schema;
  if (!schema.AddDimension({"City", {{"City"}}}).ok() ||
      !schema.AddDimension({"Source", {{"Url"}}}).ok()) {
    return 1;
  }
  dw::FactDef fares;
  fares.name = "CompetitorFares";
  fares.measures = {{"FareEUR", dw::ColumnType::kDouble, dw::AggFn::kMin}};
  fares.roles = {{"destination", "City"}, {"source", "Source"}};
  if (!schema.AddFact(std::move(fares)).ok()) return 1;
  auto wh_result = dw::Warehouse::Create(std::move(schema));
  if (!wh_result.ok()) {
    std::cerr << wh_result.status() << std::endl;
    return 1;
  }
  dw::Warehouse wh = std::move(wh_result).ValueOrDie();

  // QA over the upper ontology (no DW-specific enrichment needed: the
  // questions name cities directly).
  ontology::Ontology upper = ontology::MiniWordNet::Build();
  qa::AliQAn aliqan(&upper);
  if (!aliqan.IndexCorpus(&webb->documents()).ok()) return 1;

  std::vector<web::GoldQuestion> questions =
      web::QuestionFactory::PriceQuestions(*webb);
  std::cout << "Asking " << questions.size()
            << " price questions against the competitor pages...\n\n";

  dw::EtlLoader loader(&wh);
  size_t correct = 0;
  for (const auto& gq : questions) {
    auto answers = aliqan.Ask(gq.question);
    if (!answers.ok() || answers->empty()) {
      std::cout << "  (no answer) " << gq.question << "\n";
      continue;
    }
    const qa::AnswerCandidate& best = answers->best();
    bool ok = web::QuestionFactory::Matches(gq, best.answer_text,
                                            best.has_value, best.value);
    correct += ok ? 1 : 0;
    std::cout << "  " << gq.question << "\n    -> " << best.answer_text
              << (ok ? "  [correct]" : "  [WRONG]") << "\n";
    auto fact = qa::ToStructuredFact(best, "fare");
    if (fact.ok()) {
      dw::FactRecord record;
      // Destination is the last city named in the question.
      std::string dest = best.location.empty() ? "?" : best.location;
      record.role_paths = {{dest}, {fact->url.empty() ? "?" : fact->url}};
      record.measures = {dw::Value(fact->value)};
      (void)loader.LoadRecord("CompetitorFares", record);
    }
  }
  std::cout << "\nAnswered " << correct << "/" << questions.size()
            << " correctly.\n";

  // BI view: cheapest competitor fare per destination city.
  dw::OlapEngine engine(&wh);
  dw::OlapQuery q;
  q.fact = "CompetitorFares";
  q.measures = {{"FareEUR", dw::AggFn::kMin}};
  q.group_by = {{"destination", "City"}};
  auto result = engine.Execute(q);
  if (result.ok() && !result->rows.empty()) {
    std::cout << "\nCheapest competitor fare per destination:\n"
              << result->ToDisplayString();
  }
  return correct * 2 >= questions.size() ? 0 : 1;
}
