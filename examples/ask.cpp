// ask — a small QA console over the synthetic web: pass questions as
// arguments (or pipe them on stdin, one per line) and get the structured
// answers AliQAn extracts. Spanish questions are translated through the
// cross-lingual layer (the CLEF capability of paper §4.1).
//
//   ./build/examples/ask "What is the capital of Spain?"
//   ./build/examples/ask "¿Cuál es la temperatura en El Prat en enero de 2004?"
//   echo "Who was the 35th president of the United States?" | ./build/examples/ask

#include <iostream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "integration/last_minute_sales.h"
#include "integration/pipeline.h"
#include "qa/crosslingual.h"
#include "web/synthetic_web.h"

using namespace dwqa;

namespace {

bool LooksSpanish(const std::string& question) {
  // Inverted punctuation or common Spanish interrogatives.
  if (question.find("\xC2\xBF") != std::string::npos) return true;
  std::string norm = qa::SpanishTranslator::Normalize(question);
  for (const char* marker : {"cual ", "cuanto", "cuantos", "que ", "quien ",
                             "donde ", "cuando "}) {
    if (StartsWith(norm, marker)) return true;
  }
  return false;
}

void Answer(qa::AliQAn* aliqan, const std::string& question) {
  std::cout << "\nQ: " << question << "\n";
  std::string english = question;
  if (LooksSpanish(question)) {
    qa::CrossLingualAliQAn xl(aliqan);
    auto answers = xl.Ask(question);
    std::cout << "   (translated: " << xl.last_translation().english
              << ")\n";
    if (!answers.ok()) {
      std::cout << "A: " << answers.status() << "\n";
      return;
    }
    if (answers->empty()) {
      std::cout << "A: no answer found\n";
      return;
    }
    const auto& best = answers->best();
    std::cout << "A: " << best.answer_text;
    if (best.date.has_value()) std::cout << " (" << best.date->ToLongString()
                                         << ")";
    if (!best.location.empty()) std::cout << " [" << best.location << "]";
    std::cout << "\n   source: " << best.url << "\n";
    return;
  }
  auto answers = aliqan->Ask(english);
  if (!answers.ok()) {
    std::cout << "A: " << answers.status() << "\n";
    return;
  }
  std::cout << "   type: "
            << qa::AnswerTypeName(answers->analysis.answer_type) << "\n";
  if (answers->empty()) {
    std::cout << "A: no answer found\n";
    return;
  }
  const auto& best = answers->best();
  std::cout << "A: " << best.answer_text;
  if (best.date.has_value()) {
    std::cout << " (" << best.date->ToLongString() << ")";
  }
  if (!best.location.empty()) std::cout << " [" << best.location << "]";
  std::cout << "\n   source: " << best.url << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Stand up the integrated system once: DW + merged ontology + corpus.
  auto wh = integration::LastMinuteSales::MakeWarehouse().ValueOrDie();
  ontology::UmlModel uml = integration::LastMinuteSales::MakeUmlModel();
  web::WebConfig web_config;
  web_config.months = {1, 7};
  auto webb = web::SyntheticWeb::Build(web_config).ValueOrDie();
  integration::IntegrationPipeline pipeline(
      &wh, &uml, integration::LastMinuteSales::DefaultPipelineConfig());
  if (auto st = pipeline.RunAll(&webb.documents()); !st.ok()) {
    std::cerr << st << std::endl;
    return 1;
  }
  std::cout << "dwqa ask — corpus: " << webb.documents().size()
            << " documents, ontology: "
            << pipeline.merged_ontology().concept_count() << " concepts\n";

  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      Answer(pipeline.aliqan(), argv[i]);
    }
    return 0;
  }
  std::string line;
  while (std::getline(std::cin, line)) {
    if (Trim(line).empty()) continue;
    Answer(pipeline.aliqan(), line);
  }
  return 0;
}
