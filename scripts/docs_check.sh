#!/usr/bin/env bash
# Doxygen warning gate for the core API (the CI docs job).
#
# Renders src/common — the layer every other module builds on, and the
# home of the observability API — plus the warehouse layer src/dw and its
# federation subsystem src/dw/federation with WARN_AS_ERROR, so an
# undocumented public item, a stale \param or a broken reference fails the
# build. The base Doxyfile is reused; only the scope and the failure mode
# change.
#
# Usage: scripts/docs_check.sh   (requires doxygen on PATH)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

if ! command -v doxygen >/dev/null 2>&1; then
  echo "docs_check: doxygen not found on PATH — install it or skip." >&2
  exit 1
fi

OUT="${TMPDIR:-/tmp}/dwqa-docs-check"
rm -rf "$OUT"

(
  cat Doxyfile
  echo "INPUT                  = src/common src/dw src/dw/federation"
  echo "OUTPUT_DIRECTORY       = $OUT"
  echo "GENERATE_HTML          = NO"
  echo "USE_MDFILE_AS_MAINPAGE ="
  echo "WARN_AS_ERROR          = YES"
) | doxygen -

echo "docs_check: src/common + src/dw (+ federation) render with zero" \
     "Doxygen warnings."
