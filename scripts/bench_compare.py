#!/usr/bin/env python3
"""Perf-regression gate over the merged bench-JSON artifact.

Compares a freshly produced BENCH_phase3.json (the `ctest -L perf` smoke
writes one per run) against the committed baseline in bench/baseline.json
and fails when any *gated* benchmark regresses past the threshold. Every
other shared metric is reported informationally — the gate only bites on
the benches whose shape IS the contract (view reads must stay micro-scale,
maintenance must stay bounded) so runner noise on incidental benches
cannot flake the lane.

Usage:
  scripts/bench_compare.py --current build/BENCH_phase3.json \
      --baseline bench/baseline.json [--report build/bench_diff.md] \
      [--threshold 2.0] [--update]

Exit status: 0 when every gated bench is within threshold, 1 on any gated
regression or a gated bench missing from either side. --update rewrites
the baseline from the current artifact instead of comparing (use after an
intentional perf change, then commit the new baseline).
"""

import argparse
import json
import sys

# The gated set: (section, benchmark) pairs whose regression fails CI.
# BM_ViewReadAtScale decaying toward BM_GroupByLevelAtScale would mean
# view reads silently fell back to recompute; BM_InsertFactMaintenance/1
# bounds the write-side price of keeping the views fresh.
GATED = [
    ("bench_micro_olap", "BM_ViewReadAtScale/1000"),
    ("bench_micro_olap", "BM_ViewReadAtScale/10000"),
    ("bench_micro_olap", "BM_GroupByLevelAtScale/1000"),
    ("bench_micro_olap", "BM_GroupByLevelAtScale/10000"),
    ("bench_micro_olap", "BM_InsertFactMaintenance/0"),
    ("bench_micro_olap", "BM_InsertFactMaintenance/1"),
    ("bench_recovery", "cold_replay_200_ms"),
    # Federated answering decaying toward (or past) the merged-oracle cost
    # would mean the fan-out/merge path lost its reason to exist.
    ("bench_federation", "oracle_query_mean_ms"),
    ("bench_federation", "fed_chaos_0%_mean_ms"),
]

# Everything normalises to seconds before the ratio so a unit change in a
# bench (ns -> us) cannot masquerade as a 1000x regression.
UNIT_SECONDS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}


def load(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != "dwqa-bench-v1":
        raise ValueError(f"{path}: unexpected schema {doc.get('schema')!r}")
    return doc.get("benchmarks", {})


def seconds(metric):
    scale = UNIT_SECONDS.get(metric.get("unit"))
    if scale is None:
        return None
    return float(metric["value"]) * scale


def fmt(metric):
    return f"{metric['value']:.3f} {metric.get('unit', '?')}"


def compare(current, baseline, threshold):
    """Returns (rows, failures). Each row is a markdown table line."""
    rows = []
    failures = []
    gated_set = set(GATED)
    pairs = []
    for section in sorted(set(current) | set(baseline)):
        names = set(current.get(section, {})) | set(baseline.get(section, {}))
        pairs.extend((section, name) for name in sorted(names))
    # Gated benches first, in their declared order.
    pairs.sort(key=lambda p: (p not in gated_set, p))

    for section, name in pairs:
        gated = (section, name) in gated_set
        cur = current.get(section, {}).get(name)
        base = baseline.get(section, {}).get(name)
        label = f"`{section}/{name}`"
        if cur is None or base is None:
            side = "current" if cur is None else "baseline"
            status = "MISSING"
            if gated:
                failures.append(
                    f"{section}/{name}: gated bench missing from {side} "
                    "(run scripts/bench_compare.py --update after an "
                    "intentional bench change)")
            rows.append(f"| {label} | {fmt(base) if base else '—'} "
                        f"| {fmt(cur) if cur else '—'} | — | {status}"
                        f"{' (gated)' if gated else ''} |")
            continue
        cur_s, base_s = seconds(cur), seconds(base)
        if cur_s is None or base_s is None or base_s <= 0.0:
            rows.append(f"| {label} | {fmt(base)} | {fmt(cur)} | — | "
                        "not comparable |")
            continue
        ratio = cur_s / base_s
        ok = ratio <= threshold
        status = "ok" if ok else f"REGRESSION >{threshold:g}x"
        if gated:
            status += " (gated)"
            if not ok:
                failures.append(
                    f"{section}/{name}: {fmt(base)} -> {fmt(cur)} "
                    f"({ratio:.2f}x, threshold {threshold:g}x)")
        rows.append(f"| {label} | {fmt(base)} | {fmt(cur)} | "
                    f"{ratio:.2f}x | {status} |")
    return rows, failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True,
                        help="fresh BENCH_phase3.json from the perf smoke")
    parser.add_argument("--baseline", required=True,
                        help="committed bench/baseline.json")
    parser.add_argument("--report", default=None,
                        help="write the markdown diff table here")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="fail gated benches above current/baseline "
                             "ratio (default 2.0)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from --current instead "
                             "of comparing")
    args = parser.parse_args()

    current = load(args.current)
    if args.update:
        doc = {"schema": "dwqa-bench-v1", "benchmarks": current}
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"bench_compare: baseline rewritten at {args.baseline}")
        return 0

    baseline = load(args.baseline)
    rows, failures = compare(current, baseline, args.threshold)

    lines = ["# Bench diff vs committed baseline", "",
             f"Threshold: gated benches fail above {args.threshold:g}x.", "",
             "| bench | baseline | current | ratio | status |",
             "|---|---|---|---|---|"]
    lines += rows
    lines.append("")
    if failures:
        lines.append("## Gated regressions")
        lines.extend(f"- {f}" for f in failures)
    else:
        lines.append("All gated benches within threshold.")
    report = "\n".join(lines) + "\n"
    print(report)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(report)

    if failures:
        print(f"bench_compare: {len(failures)} gated failure(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
