#!/usr/bin/env bash
# Grep lints shared by the local sweep (scripts/check.sh) and the CI lint
# job. Each lint prints the offending lines and the rationale, then fails.
#
# Usage: scripts/lint.sh
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
failed=0

# Lint 1: the POS tagger builds its lexicon at construction time, so a
# `PosTagger tagger;` inside a loop body re-pays that cost per sentence.
# The QA layer reads cached AnalyzedCorpus analyses instead; any tagger a
# qa/ source still needs must be hoisted to function scope (2-space indent).
# Indentation ≥ 4 spaces means the declaration sits inside a loop or other
# nested block — reject it.
if grep -rnE '^[[:space:]]{4,}(text::)?PosTagger [a-z_]+;' "$ROOT/src/qa"; then
  echo "lint: PosTagger constructed inside a nested scope in src/qa/ —" \
       "hoist it out of the loop (see text/analyzed_corpus.h)." >&2
  failed=1
fi

# Lint 2: common/thread_pool is the one threading primitive of the
# codebase — its determinism contract (stable output ordering, threads=1 as
# the literal serial path, lowest-index exception propagation) is what the
# golden-equivalence suite certifies. A raw std::thread anywhere else in
# src/ escapes that contract.
if grep -rn 'std::thread' "$ROOT/src" \
     --include='*.h' --include='*.cc' \
     | grep -v '^[^:]*/common/thread_pool\.\(h\|cc\):' \
     | grep -v 'hardware_concurrency'; then
  echo "lint: raw std::thread outside common/thread_pool — use" \
       "ThreadPool::Submit/ParallelFor so parallel output stays" \
       "deterministic." >&2
  failed=1
fi

# Lint 3: the metric catalogue. Every metric name registered in code
# (constants in src/common/metric_names.h plus any literal passed straight
# to a Get* call) must be documented in docs/OBSERVABILITY.md — name, type,
# labels and emitting path — or dashboards chase ghosts. Test-only metrics
# use the dwqa_test_ prefix and are exempt.
catalogue="$ROOT/docs/OBSERVABILITY.md"
missing=0
for name in $(grep -rhoE '"dwqa_[a-z0-9_]+"' "$ROOT/src" \
                --include='*.h' --include='*.cc' \
                | tr -d '"' | sort -u); do
  case "$name" in dwqa_test_*) continue ;; esac
  if ! grep -q "\`$name\`" "$catalogue"; then
    echo "$name"
    missing=1
  fi
done
if [ "$missing" -ne 0 ]; then
  echo "lint: metric names above are registered in src/ but missing from" \
       "docs/OBSERVABILITY.md — add them to the catalogue." >&2
  failed=1
fi

# Lint 4: the span taxonomy, same contract as the metric catalogue. Every
# span name opened in src/ (a string literal at a `Span x(recorder, "...")`
# construction site — `view.maintain`, `qa.ask`, `wal.append`, ...) must be
# documented in docs/OBSERVABILITY.md, or trace trees grow anonymous nodes
# nobody can interpret.
missing_spans=0
for name in $(grep -rhoE 'Span [a-z_]+\([a-zA-Z_>.()-]+, *"[a-z0-9._]+"' \
                "$ROOT/src" --include='*.h' --include='*.cc' \
                | grep -oE '"[a-z0-9._]+"' | tr -d '"' | sort -u); do
  if ! grep -q "\`$name\`" "$catalogue"; then
    echo "$name"
    missing_spans=1
  fi
done
if [ "$missing_spans" -ne 0 ]; then
  echo "lint: span names above are opened in src/ but missing from" \
       "docs/OBSERVABILITY.md — add them to the span taxonomy." >&2
  failed=1
fi

exit "$failed"
