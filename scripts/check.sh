#!/usr/bin/env bash
# Full verification sweep: configure, build, unit tests, a sanitizer pass
# over the whole test suite, then all benches.
#
# Usage: scripts/check.sh [build-dir]
#
# Environment knobs:
#   DWQA_SANITIZE       sanitizer list for the sanitizer pass
#                       (default "address,undefined"; "" skips the pass)
#   DWQA_SKIP_BENCHES=1 skip the bench sweep
set -euo pipefail

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
SANITIZE="${DWQA_SANITIZE-address,undefined}"

GENERATOR=()
command -v ninja >/dev/null 2>&1 && GENERATOR=(-G Ninja)

cmake -B "$ROOT/$BUILD_DIR" "${GENERATOR[@]}" -S "$ROOT"
cmake --build "$ROOT/$BUILD_DIR" -j
ctest --test-dir "$ROOT/$BUILD_DIR" --output-on-failure

if [ -n "$SANITIZE" ]; then
  SAN_DIR="${BUILD_DIR}-san"
  echo
  echo "##### sanitizer pass (-fsanitize=$SANITIZE) #####"
  cmake -B "$ROOT/$SAN_DIR" "${GENERATOR[@]}" -S "$ROOT" \
    -DDWQA_SANITIZE="$SANITIZE" -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$ROOT/$SAN_DIR" -j
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
    ctest --test-dir "$ROOT/$SAN_DIR" --output-on-failure

  # The fault-injection suite once more, alone and loudly: the chaos label
  # is the contract that these tests exist and run sanitized.
  echo
  echo "##### chaos suite under sanitizers (ctest -L chaos) #####"
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
    ctest --test-dir "$ROOT/$SAN_DIR" -L chaos --output-on-failure
fi

if [ "${DWQA_SKIP_BENCHES:-0}" != 1 ]; then
  for bench in "$ROOT/$BUILD_DIR"/bench/*; do
    [ -x "$bench" ] || continue
    echo
    echo "##### $(basename "$bench")"
    "$bench"
  done
fi
