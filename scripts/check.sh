#!/usr/bin/env bash
# Full verification sweep: configure, build, unit tests, all benches.
# Usage: scripts/check.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

cmake -B "$ROOT/$BUILD_DIR" -G Ninja -S "$ROOT"
cmake --build "$ROOT/$BUILD_DIR"
ctest --test-dir "$ROOT/$BUILD_DIR" --output-on-failure

for bench in "$ROOT/$BUILD_DIR"/bench/*; do
  [ -x "$bench" ] || continue
  echo
  echo "##### $(basename "$bench")"
  "$bench"
done
