#!/usr/bin/env bash
# Full verification sweep: lints, configure, build, unit tests, a sanitizer
# pass over the whole test suite, then all benches.
#
# Usage: scripts/check.sh [build-dir]
#
# Environment knobs:
#   DWQA_SANITIZE       sanitizer list for the sanitizer pass
#                       (default "address,undefined"; "" skips the pass;
#                       "thread" runs the TSan flavour CI uses for the
#                       threads-labeled suite)
#   DWQA_SKIP_BENCHES=1 skip the bench sweep
#   DWQA_JOBS           bound build/test parallelism (default: unbounded -j,
#                       which OOMs small CI runners)
set -euo pipefail

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
SANITIZE="${DWQA_SANITIZE-address,undefined}"

GENERATOR=()
command -v ninja >/dev/null 2>&1 && GENERATOR=(-G Ninja)

JOBS=(-j)
[ -n "${DWQA_JOBS:-}" ] && JOBS=(-j "$DWQA_JOBS")

# Grep lints (shared with the CI lint job).
"$ROOT/scripts/lint.sh"

cmake -B "$ROOT/$BUILD_DIR" "${GENERATOR[@]}" -S "$ROOT"
cmake --build "$ROOT/$BUILD_DIR" "${JOBS[@]}"
ctest --test-dir "$ROOT/$BUILD_DIR" --output-on-failure

# Perf smoke: the fig3 phase study (--smoke) plus one repetition of each
# microbench, all merging into one bench-JSON artifact. Fails when a bench
# breaks, when the JSON reporter breaks, or when the indexation-time
# analysis stops paying for itself (fig3's ≥2x speedup shape check).
echo
echo "##### perf smoke (ctest -L perf) → $BUILD_DIR/BENCH_phase3.json #####"
DWQA_BENCH_JSON="$ROOT/$BUILD_DIR/BENCH_phase3.json" \
  ctest --test-dir "$ROOT/$BUILD_DIR" -L perf --output-on-failure

# The perf-regression gate CI runs, locally: gated benches (view reads,
# maintenance cost, cold replay) must stay within 2x of the committed
# baseline. Regenerate with `scripts/bench_compare.py ... --update` after
# an intentional perf change and commit the new bench/baseline.json.
python3 "$ROOT/scripts/bench_compare.py" \
  --current "$ROOT/$BUILD_DIR/BENCH_phase3.json" \
  --baseline "$ROOT/bench/baseline.json" \
  --report "$ROOT/$BUILD_DIR/bench_diff.md"

if [ -n "$SANITIZE" ]; then
  SAN_DIR="${BUILD_DIR}-san"
  echo
  echo "##### sanitizer pass (-fsanitize=$SANITIZE) #####"
  cmake -B "$ROOT/$SAN_DIR" "${GENERATOR[@]}" -S "$ROOT" \
    -DDWQA_SANITIZE="$SANITIZE" -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$ROOT/$SAN_DIR" "${JOBS[@]}"
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
    ctest --test-dir "$ROOT/$SAN_DIR" --output-on-failure

  # The fault-injection suite once more, alone and loudly: the chaos label
  # is the contract that these tests exist and run sanitized. The exit
  # status is propagated explicitly — `set -e` does not survive callers
  # that pipe this script (only the last pipeline member's status counts),
  # so a swallowed chaos failure here once faked a green sweep.
  echo
  echo "##### chaos suite under sanitizers (ctest -L chaos) #####"
  if ! ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}" \
       UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
       ctest --test-dir "$ROOT/$SAN_DIR" -L chaos --output-on-failure; then
    echo "check.sh: chaos suite FAILED under -fsanitize=$SANITIZE" >&2
    exit 1
  fi

  # The serving layer once more under the sanitizers, same contract as the
  # chaos label: the suite must exist, and admission/cache/drain must be
  # clean under -fsanitize, not just in the plain build.
  echo
  echo "##### serving suite under sanitizers (ctest -L serve) #####"
  if ! ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}" \
       UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
       ctest --test-dir "$ROOT/$SAN_DIR" -L serve --output-on-failure; then
    echo "check.sh: serving suite FAILED under -fsanitize=$SANITIZE" >&2
    exit 1
  fi

  # The durability layer once more under the sanitizers: the WAL parser,
  # the recovery replay and above all the crash-point sweep (every mutating
  # fs op × {stop, torn-write}) must be clean under -fsanitize — torn and
  # bit-flipped inputs are exactly where parsers walk off buffers.
  echo
  echo "##### durability suite under sanitizers (ctest -L durability) #####"
  if ! ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}" \
       UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
       ctest --test-dir "$ROOT/$SAN_DIR" -L durability --output-on-failure; then
    echo "check.sh: durability suite FAILED under -fsanitize=$SANITIZE" >&2
    exit 1
  fi

  # The segmented-index suite once more under the sanitizers: delta+varint
  # decoding, block skipping and the merge/query races are exactly where
  # an off-by-one walks off a postings buffer.
  echo
  echo "##### segmented-index suite under sanitizers (ctest -L index) #####"
  if ! ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}" \
       UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
       ctest --test-dir "$ROOT/$SAN_DIR" -L index --output-on-failure; then
    echo "check.sh: segmented-index suite FAILED under -fsanitize=$SANITIZE" >&2
    exit 1
  fi

  # The materialized-view suite once more under the sanitizers: delta
  # maintenance mutating shared AggStates under the catalog lock, the
  # chaos-fed equivalence sweep and the crash-point view-recovery sweep
  # must be clean under -fsanitize, not just byte-identical.
  echo
  echo "##### materialized-view suite under sanitizers (ctest -L views) #####"
  if ! ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}" \
       UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
       ctest --test-dir "$ROOT/$SAN_DIR" -L views --output-on-failure; then
    echo "check.sh: materialized-view suite FAILED under -fsanitize=$SANITIZE" >&2
    exit 1
  fi

  # The federation suite once more under the sanitizers: cross-warehouse
  # merges reassociate shared AggStates, the fan-out path runs sub-queries
  # on pool threads, and the chaos-degraded coverage paths are exactly
  # where a partial result could read a dead partial aggregate.
  echo
  echo "##### federation suite under sanitizers (ctest -L federation) #####"
  if ! ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}" \
       UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
       ctest --test-dir "$ROOT/$SAN_DIR" -L federation --output-on-failure; then
    echo "check.sh: federation suite FAILED under -fsanitize=$SANITIZE" >&2
    exit 1
  fi
fi

if [ "${DWQA_SKIP_BENCHES:-0}" != 1 ]; then
  for bench in "$ROOT/$BUILD_DIR"/bench/*; do
    [ -x "$bench" ] || continue
    echo
    echo "##### $(basename "$bench")"
    "$bench"
  done
fi
