#!/usr/bin/env bash
# Full verification sweep: configure, build, unit tests, a sanitizer pass
# over the whole test suite, then all benches.
#
# Usage: scripts/check.sh [build-dir]
#
# Environment knobs:
#   DWQA_SANITIZE       sanitizer list for the sanitizer pass
#                       (default "address,undefined"; "" skips the pass)
#   DWQA_SKIP_BENCHES=1 skip the bench sweep
set -euo pipefail

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
SANITIZE="${DWQA_SANITIZE-address,undefined}"

GENERATOR=()
command -v ninja >/dev/null 2>&1 && GENERATOR=(-G Ninja)

# Lint: the POS tagger builds its lexicon at construction time, so a
# `PosTagger tagger;` inside a loop body re-pays that cost per sentence.
# The QA layer reads cached AnalyzedCorpus analyses instead; any tagger a
# qa/ source still needs must be hoisted to function scope (2-space indent).
# Indentation ≥ 4 spaces means the declaration sits inside a loop or other
# nested block — reject it.
if grep -rnE '^[[:space:]]{4,}(text::)?PosTagger [a-z_]+;' "$ROOT/src/qa"; then
  echo "lint: PosTagger constructed inside a nested scope in src/qa/ —" \
       "hoist it out of the loop (see text/analyzed_corpus.h)." >&2
  exit 1
fi

cmake -B "$ROOT/$BUILD_DIR" "${GENERATOR[@]}" -S "$ROOT"
cmake --build "$ROOT/$BUILD_DIR" -j
ctest --test-dir "$ROOT/$BUILD_DIR" --output-on-failure

# Perf smoke: the fig3 phase study (--smoke) plus one repetition of each
# microbench, all merging into one bench-JSON artifact. Fails when a bench
# breaks, when the JSON reporter breaks, or when the indexation-time
# analysis stops paying for itself (fig3's ≥2x speedup shape check).
echo
echo "##### perf smoke (ctest -L perf) → $BUILD_DIR/BENCH_phase3.json #####"
DWQA_BENCH_JSON="$ROOT/$BUILD_DIR/BENCH_phase3.json" \
  ctest --test-dir "$ROOT/$BUILD_DIR" -L perf --output-on-failure

if [ -n "$SANITIZE" ]; then
  SAN_DIR="${BUILD_DIR}-san"
  echo
  echo "##### sanitizer pass (-fsanitize=$SANITIZE) #####"
  cmake -B "$ROOT/$SAN_DIR" "${GENERATOR[@]}" -S "$ROOT" \
    -DDWQA_SANITIZE="$SANITIZE" -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$ROOT/$SAN_DIR" -j
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
    ctest --test-dir "$ROOT/$SAN_DIR" --output-on-failure

  # The fault-injection suite once more, alone and loudly: the chaos label
  # is the contract that these tests exist and run sanitized.
  echo
  echo "##### chaos suite under sanitizers (ctest -L chaos) #####"
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
    ctest --test-dir "$ROOT/$SAN_DIR" -L chaos --output-on-failure
fi

if [ "${DWQA_SKIP_BENCHES:-0}" != 1 ]; then
  for bench in "$ROOT/$BUILD_DIR"/bench/*; do
    [ -x "$bench" ] || continue
    echo
    echo "##### $(basename "$bench")"
    "$bench"
  done
fi
