#include "dw/etl.h"

#include <gtest/gtest.h>

namespace dwqa {
namespace dw {
namespace {

MdSchema WeatherSchema() {
  MdSchema s;
  EXPECT_TRUE(s.AddDimension({"City", {{"City"}, {"Country"}}}).ok());
  EXPECT_TRUE(
      s.AddDimension({"Date", {{"Date"}, {"Month"}, {"Year"}}}).ok());
  FactDef f;
  f.name = "Weather";
  f.measures = {{"TemperatureC", ColumnType::kDouble, AggFn::kAvg}};
  f.roles = {{"location", "City"}, {"day", "Date"}};
  EXPECT_TRUE(s.AddFact(std::move(f)).ok());
  return s;
}

TEST(EtlTest, DateMemberPathShape) {
  auto path = DateMemberPath(Date(2004, 1, 31));
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], "2004-01-31");
  EXPECT_EQ(path[1], "2004-01");
  EXPECT_EQ(path[2], "2004");
}

TEST(EtlTest, LoadRecordRegistersMembersOnTheFly) {
  Warehouse wh = Warehouse::Create(WeatherSchema()).ValueOrDie();
  EtlLoader loader(&wh);
  FactRecord rec;
  rec.role_paths = {{"Barcelona", "Spain"}, DateMemberPath(Date(2004, 1, 31))};
  rec.measures = {Value(8.0)};
  ASSERT_TRUE(loader.LoadRecord("Weather", rec).ok());
  EXPECT_TRUE(wh.FindMember("City", "Barcelona").ok());
  EXPECT_TRUE(wh.FindMember("Date", "2004-01-31").ok());
  EXPECT_EQ(wh.FactRowCount("Weather").ValueOrDie(), 1u);
}

TEST(EtlTest, LoadRecordValidatesArity) {
  Warehouse wh = Warehouse::Create(WeatherSchema()).ValueOrDie();
  EtlLoader loader(&wh);
  FactRecord rec;
  rec.role_paths = {{"Barcelona"}};  // Missing the date path.
  rec.measures = {Value(8.0)};
  EXPECT_TRUE(loader.LoadRecord("Weather", rec).IsInvalidArgument());
}

TEST(EtlTest, LoadBatchContinuesPastRejects) {
  Warehouse wh = Warehouse::Create(WeatherSchema()).ValueOrDie();
  EtlLoader loader(&wh);
  FactRecord good;
  good.role_paths = {{"Barcelona"}, {"2004-01-31", "2004-01", "2004"}};
  good.measures = {Value(8.0)};
  FactRecord bad;
  bad.role_paths = {{"Madrid"}};
  bad.measures = {Value(7.0)};
  FactRecord bad2;
  bad2.role_paths = {{"Madrid"}, {"2004-01-30"}};
  bad2.measures = {};  // Missing measure.
  auto report = loader.LoadBatch("Weather", {good, bad, good, bad2});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rows_loaded, 2u);
  EXPECT_EQ(report->rows_rejected, 2u);
  EXPECT_EQ(report->errors.size(), 2u);
  EXPECT_EQ(wh.FactRowCount("Weather").ValueOrDie(), 2u);
}

TEST(EtlTest, BatchReportCountsRejectsPerStatusCode) {
  Warehouse wh = Warehouse::Create(WeatherSchema()).ValueOrDie();
  EtlLoader loader(&wh);
  FactRecord good;
  good.role_paths = {{"Barcelona"}, {"2004-01-31", "2004-01", "2004"}};
  good.measures = {Value(8.0)};
  FactRecord missing_role;
  missing_role.role_paths = {{"Madrid"}};
  missing_role.measures = {Value(7.0)};
  FactRecord missing_measure;
  missing_measure.role_paths = {{"Madrid"}, {"2004-01-30"}};
  missing_measure.measures = {};
  auto report = loader.LoadBatch(
      "Weather", {good, missing_role, missing_role, missing_measure});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rows_rejected, 3u);
  EXPECT_EQ(report->rejected_by_code.at("InvalidArgument"), 3u);
  EXPECT_EQ(report->rejected_by_code.size(), 1u);
}

TEST(EtlTest, ErrorMessagesAreCappedButCountsAreNot) {
  Warehouse wh = Warehouse::Create(WeatherSchema()).ValueOrDie();
  EtlLoader loader(&wh, /*max_error_messages=*/2);
  EXPECT_EQ(loader.max_error_messages(), 2u);
  FactRecord bad;
  bad.role_paths = {{"Madrid"}};  // Missing the date path.
  bad.measures = {Value(7.0)};
  auto report =
      loader.LoadBatch("Weather", std::vector<FactRecord>(25, bad));
  ASSERT_TRUE(report.ok());
  // The messages stop at the cap; the counters keep the full picture.
  EXPECT_EQ(report->errors.size(), 2u);
  EXPECT_EQ(report->rows_rejected, 25u);
  EXPECT_EQ(report->rejected_by_code.at("InvalidArgument"), 25u);
}

TEST(EtlTest, DefaultErrorMessageCapIsTen) {
  Warehouse wh = Warehouse::Create(WeatherSchema()).ValueOrDie();
  EtlLoader loader(&wh);
  EXPECT_EQ(loader.max_error_messages(), 10u);
  FactRecord bad;
  bad.role_paths = {{"Madrid"}};
  bad.measures = {Value(7.0)};
  auto report =
      loader.LoadBatch("Weather", std::vector<FactRecord>(15, bad));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->errors.size(), 10u);
  EXPECT_EQ(report->rows_rejected, 15u);
}

TEST(EtlTest, UnknownFactFails) {
  Warehouse wh = Warehouse::Create(WeatherSchema()).ValueOrDie();
  EtlLoader loader(&wh);
  FactRecord rec;
  rec.role_paths = {{"a"}, {"b"}};
  rec.measures = {Value(1.0)};
  EXPECT_TRUE(loader.LoadRecord("Ghost", rec).IsNotFound());
}

TEST(EtlTest, RepeatedLoadsShareMembers) {
  Warehouse wh = Warehouse::Create(WeatherSchema()).ValueOrDie();
  EtlLoader loader(&wh);
  for (int d = 1; d <= 5; ++d) {
    FactRecord rec;
    rec.role_paths = {{"Barcelona", "Spain"},
                      DateMemberPath(Date(2004, 1, d))};
    rec.measures = {Value(8.0 + d)};
    ASSERT_TRUE(loader.LoadRecord("Weather", rec).ok());
  }
  EXPECT_EQ(wh.DimensionTable("City").ValueOrDie()->row_count(), 1u);
  EXPECT_EQ(wh.DimensionTable("Date").ValueOrDie()->row_count(), 5u);
  EXPECT_EQ(wh.FactRowCount("Weather").ValueOrDie(), 5u);
}

}  // namespace
}  // namespace dw
}  // namespace dwqa
