#include "dw/csv_etl.h"

#include <gtest/gtest.h>

#include "common/csv.h"

namespace dwqa {
namespace dw {
namespace {

MdSchema WeatherSchema() {
  MdSchema s;
  EXPECT_TRUE(s.AddDimension({"City", {{"City"}, {"Country"}}}).ok());
  EXPECT_TRUE(
      s.AddDimension({"Date", {{"Date"}, {"Month"}, {"Year"}}}).ok());
  FactDef f;
  f.name = "Weather";
  f.measures = {{"TemperatureC", ColumnType::kDouble, AggFn::kAvg}};
  f.roles = {{"location", "City"}, {"day", "Date"}};
  EXPECT_TRUE(s.AddFact(std::move(f)).ok());
  return s;
}

Warehouse LoadedWarehouse() {
  Warehouse wh = Warehouse::Create(WeatherSchema()).ValueOrDie();
  EtlLoader loader(&wh);
  for (int d = 1; d <= 3; ++d) {
    FactRecord rec;
    rec.role_paths = {{"Barcelona", "Spain"},
                      DateMemberPath(Date(2004, 1, d))};
    rec.measures = {Value(7.0 + d)};
    EXPECT_TRUE(loader.LoadRecord("Weather", rec).ok());
  }
  return wh;
}

TEST(CsvEtlTest, ExportFactDenormalizedHeader) {
  Warehouse wh = LoadedWarehouse();
  std::string csv = CsvEtl::ExportFact(wh, "Weather").ValueOrDie();
  auto rows = Csv::Parse(csv).ValueOrDie();
  ASSERT_EQ(rows.size(), 4u);  // Header + 3 facts.
  EXPECT_EQ(rows[0],
            (std::vector<std::string>{"location.City", "location.Country",
                                      "day.Date", "day.Month", "day.Year",
                                      "TemperatureC"}));
  EXPECT_EQ(rows[1][0], "Barcelona");
  EXPECT_EQ(rows[1][2], "2004-01-01");
  EXPECT_EQ(rows[1][5], "8.00");
}

TEST(CsvEtlTest, RoundTripThroughImport) {
  Warehouse wh = LoadedWarehouse();
  std::string csv = CsvEtl::ExportFact(wh, "Weather").ValueOrDie();
  auto records =
      CsvEtl::ImportFactRecords(wh.schema(), "Weather", csv).ValueOrDie();
  ASSERT_EQ(records.size(), 3u);
  // Load into a fresh warehouse and re-export: identical CSV.
  Warehouse fresh = Warehouse::Create(WeatherSchema()).ValueOrDie();
  EtlLoader loader(&fresh);
  auto report = loader.LoadBatch("Weather", records).ValueOrDie();
  EXPECT_EQ(report.rows_loaded, 3u);
  EXPECT_EQ(CsvEtl::ExportFact(fresh, "Weather").ValueOrDie(), csv);
}

TEST(CsvEtlTest, ImportValidatesHeader) {
  Warehouse wh = LoadedWarehouse();
  EXPECT_TRUE(CsvEtl::ImportFactRecords(wh.schema(), "Weather", "")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(CsvEtl::ImportFactRecords(wh.schema(), "Weather",
                                        "wrong,header\n")
                  .status()
                  .IsInvalidArgument());
  // Right width, wrong name.
  EXPECT_TRUE(
      CsvEtl::ImportFactRecords(
          wh.schema(), "Weather",
          "location.City,location.Country,day.Date,day.Month,day.Year,"
          "Pressure\n")
          .status()
          .IsInvalidArgument());
}

TEST(CsvEtlTest, ImportRejectsRaggedRows) {
  Warehouse wh = LoadedWarehouse();
  std::string csv =
      "location.City,location.Country,day.Date,day.Month,day.Year,"
      "TemperatureC\nBarcelona,Spain,2004-01-01\n";
  EXPECT_TRUE(CsvEtl::ImportFactRecords(wh.schema(), "Weather", csv)
                  .status()
                  .IsInvalidArgument());
}

TEST(CsvEtlTest, ImportHandlesShortMemberPaths) {
  Warehouse wh = LoadedWarehouse();
  std::string csv =
      "location.City,location.Country,day.Date,day.Month,day.Year,"
      "TemperatureC\nParis,,2004-02-01,2004-02,2004,4.5\n";
  auto records =
      CsvEtl::ImportFactRecords(wh.schema(), "Weather", csv).ValueOrDie();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].role_paths[0],
            (std::vector<std::string>{"Paris"}));  // Country trimmed.
  EXPECT_DOUBLE_EQ(records[0].measures[0].as_double(), 4.5);
}

TEST(CsvEtlTest, ExportTableIncludesHeader) {
  Warehouse wh = LoadedWarehouse();
  const Table* dim = wh.DimensionTable("Date").ValueOrDie();
  std::string csv = CsvEtl::ExportTable(*dim);
  auto rows = Csv::Parse(csv).ValueOrDie();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0][0], "Date");
  EXPECT_EQ(rows[3][0], "2004-01-03");
}

TEST(CsvEtlTest, UnknownFactRejected) {
  Warehouse wh = LoadedWarehouse();
  EXPECT_TRUE(CsvEtl::ExportFact(wh, "Ghost").status().IsNotFound());
  EXPECT_TRUE(CsvEtl::ImportFactRecords(wh.schema(), "Ghost", "x\n")
                  .status()
                  .IsNotFound());
}

}  // namespace
}  // namespace dw
}  // namespace dwqa
