#include "dw/materialized_view.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/metric_names.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "dw/olap.h"
#include "integration/last_minute_sales.h"

namespace dwqa {
namespace dw {
namespace {

/// Byte-identity oracle: a view answer must be indistinguishable from the
/// recompute — same headers, same group order, same cell Values, same scan
/// counters, same rendering.
void ExpectSameResult(const OlapResult& view, const OlapResult& engine,
                      const std::string& context) {
  ASSERT_EQ(view.headers, engine.headers) << context;
  ASSERT_EQ(view.rows.size(), engine.rows.size()) << context;
  for (size_t r = 0; r < engine.rows.size(); ++r) {
    ASSERT_EQ(view.rows[r].size(), engine.rows[r].size())
        << context << " row " << r;
    for (size_t c = 0; c < engine.rows[r].size(); ++c) {
      EXPECT_TRUE(view.rows[r][c] == engine.rows[r][c])
          << context << " cell (" << r << "," << c
          << "): " << view.rows[r][c].ToString() << " vs "
          << engine.rows[r][c].ToString();
    }
  }
  EXPECT_EQ(view.facts_scanned, engine.facts_scanned) << context;
  EXPECT_EQ(view.facts_matched, engine.facts_matched) << context;
  EXPECT_EQ(view.ToDisplayString(), engine.ToDisplayString()) << context;
}

/// The OlapTest cube: 2 dimensions, 1 fact, 2 measures, 4 rows.
class MaterializedViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MdSchema s;
    ASSERT_TRUE(
        s.AddDimension({"Geo", {{"Airport"}, {"City"}, {"Country"}}}).ok());
    ASSERT_TRUE(
        s.AddDimension({"Date", {{"Date"}, {"Month"}, {"Year"}}}).ok());
    FactDef f;
    f.name = "Sales";
    f.measures = {{"Price", ColumnType::kDouble, AggFn::kSum},
                  {"Tickets", ColumnType::kDouble, AggFn::kSum}};
    f.roles = {{"dest", "Geo"}, {"when", "Date"}};
    ASSERT_TRUE(s.AddFact(std::move(f)).ok());
    wh_ = std::make_unique<Warehouse>(
        Warehouse::Create(std::move(s)).ValueOrDie());

    prat_ = wh_->AddMember("Geo", {"El Prat", "Barcelona", "Spain"})
                .ValueOrDie();
    barajas_ =
        wh_->AddMember("Geo", {"Barajas", "Madrid", "Spain"}).ValueOrDie();
    jfk_ = wh_->AddMember("Geo", {"JFK", "New York", "United States"})
               .ValueOrDie();
    d1_ = wh_->AddMember("Date", {"2004-01-01", "2004-01", "2004"})
              .ValueOrDie();
    d2_ = wh_->AddMember("Date", {"2004-02-01", "2004-02", "2004"})
              .ValueOrDie();
  }

  void Ins(MemberId g, MemberId d, double price, double tickets) {
    ASSERT_TRUE(
        wh_->InsertFact("Sales", {g, d}, {Value(price), Value(tickets)})
            .ok());
  }

  void InsAll() {
    Ins(prat_, d1_, 100, 2);
    Ins(prat_, d2_, 200, 4);
    Ins(barajas_, d1_, 50, 1);
    Ins(jfk_, d1_, 300, 3);
  }

  /// Defines + binds the derived view set and attaches it to the cube.
  void BindDerived(ViewCatalog* catalog) {
    ASSERT_TRUE(
        catalog->DefineAll(DeriveViewsFromSchema(wh_->schema())).ok());
    wh_->AttachViews(catalog);
    ASSERT_TRUE(catalog->Bind(*wh_).ok());
  }

  std::unique_ptr<Warehouse> wh_;
  MemberId prat_, barajas_, jfk_, d1_, d2_;
};

TEST_F(MaterializedViewTest, DeriveCoversEveryRoleLevelRung) {
  std::vector<ViewDefinition> views = DeriveViewsFromSchema(wh_->schema());
  std::set<std::string> names;
  for (const auto& v : views) names.insert(v.name);
  // One single-axis view per (role, level): 2 roles × 3 levels.
  for (const char* expect :
       {"Sales/dest.Airport", "Sales/dest.City", "Sales/dest.Country",
        "Sales/when.Date", "Sales/when.Month", "Sales/when.Year"}) {
    EXPECT_TRUE(names.count(expect)) << expect;
  }
  // Neither dimension is conformed here (no shared level name, one fact),
  // so no two-axis slices are derived.
  for (const auto& name : names) {
    EXPECT_EQ(name.find('+'), std::string::npos) << name;
  }
}

TEST_F(MaterializedViewTest, DeriveParsesConformedLevels) {
  std::vector<ViewDefinition> views =
      DeriveViewsFromSchema(integration::LastMinuteSales::MakeSchema());
  std::set<std::string> names;
  for (const auto& v : views) names.insert(v.name);
  // The dashboard slices the BI layer reads: City × Date on both facts.
  EXPECT_TRUE(names.count("LastMinuteSales/destination.City+date.Date"));
  EXPECT_TRUE(names.count("Weather/location.City+day.Date"));
  // Single-axis ladders exist even for unconformed dimensions...
  EXPECT_TRUE(names.count("LastMinuteSales/customer.Customer"));
  EXPECT_TRUE(names.count("Weather/source.Url"));
  // ...but unconformed levels never participate in two-axis slices.
  for (const auto& name : names) {
    if (name.find('+') == std::string::npos) continue;
    EXPECT_EQ(name.find("customer."), std::string::npos) << name;
    EXPECT_EQ(name.find("source."), std::string::npos) << name;
  }
}

TEST_F(MaterializedViewTest, DefineValidatesAndRejectsDuplicates) {
  ViewCatalog catalog;
  ViewDefinition def;
  def.name = "v";
  def.fact = "Sales";
  def.group_by = {{"dest", "City"}};
  ASSERT_TRUE(catalog.Define(def).ok());
  EXPECT_TRUE(catalog.Define(def).IsAlreadyExists());
  ViewDefinition empty_fact;
  empty_fact.name = "w";
  empty_fact.group_by = {{"dest", "City"}};
  EXPECT_TRUE(catalog.Define(empty_fact).IsInvalidArgument());
  ViewDefinition no_axes;
  no_axes.name = "x";
  no_axes.fact = "Sales";
  EXPECT_TRUE(catalog.Define(no_axes).IsInvalidArgument());
}

TEST_F(MaterializedViewTest, BindRejectsUnknownFactRoleLevelMeasure) {
  auto try_bind = [&](ViewDefinition def) {
    ViewCatalog catalog;
    def.name = "v";
    EXPECT_TRUE(catalog.Define(def).ok());
    return catalog.Bind(*wh_);
  };
  ViewDefinition ghost_fact;
  ghost_fact.fact = "Ghost";
  ghost_fact.group_by = {{"dest", "City"}};
  EXPECT_TRUE(try_bind(ghost_fact).IsNotFound());
  ViewDefinition ghost_role;
  ghost_role.fact = "Sales";
  ghost_role.group_by = {{"ghost", "City"}};
  EXPECT_FALSE(try_bind(ghost_role).ok());
  ViewDefinition ghost_level;
  ghost_level.fact = "Sales";
  ghost_level.group_by = {{"dest", "Continent"}};
  EXPECT_FALSE(try_bind(ghost_level).ok());
  ViewDefinition ghost_measure;
  ghost_measure.fact = "Sales";
  ghost_measure.group_by = {{"dest", "City"}};
  ghost_measure.measures = {"Altitude"};
  EXPECT_FALSE(try_bind(ghost_measure).ok());
}

/// The tentpole pin: every derived view answers every measure under every
/// aggregation function byte-identically to the full recompute.
TEST_F(MaterializedViewTest, AnswerMatchesRecomputeForEveryAggFn) {
  InsAll();
  ViewCatalog catalog;
  BindDerived(&catalog);
  OlapEngine engine(wh_.get());
  for (const ViewDefinition& def : DeriveViewsFromSchema(wh_->schema())) {
    for (const char* measure : {"Price", "Tickets"}) {
      for (AggFn fn : {AggFn::kSum, AggFn::kCount, AggFn::kAvg, AggFn::kMin,
                       AggFn::kMax}) {
        OlapQuery q;
        q.fact = def.fact;
        q.measures = {{measure, fn}};
        q.group_by = def.group_by;
        auto viewed = catalog.Answer(q);
        ASSERT_TRUE(viewed.ok())
            << def.name << ": " << viewed.status().ToString();
        ExpectSameResult(*viewed, engine.Execute(q).ValueOrDie(),
                         def.name + "/" + measure);
      }
    }
    // Multi-measure projection in one query.
    OlapQuery q;
    q.fact = def.fact;
    q.measures = {{"Tickets", AggFn::kSum}, {"Price", AggFn::kAvg}};
    q.group_by = def.group_by;
    ExpectSameResult(catalog.Answer(q).ValueOrDie(),
                     engine.Execute(q).ValueOrDie(), def.name + "/multi");
  }
}

TEST_F(MaterializedViewTest, IncrementalMaintenanceEqualsRebuild) {
  // Bind over an EMPTY warehouse, then insert: every fact arrives through
  // OnFactInserted.
  ViewCatalog incremental;
  BindDerived(&incremental);
  InsAll();
  EXPECT_GT(incremental.maintenance_updates(), 0u);

  // A second catalog bound AFTER the inserts sees only the rebuild path.
  ViewCatalog rebuilt;
  ASSERT_TRUE(
      rebuilt.DefineAll(DeriveViewsFromSchema(wh_->schema())).ok());
  ASSERT_TRUE(rebuilt.Bind(*wh_).ok());
  EXPECT_EQ(rebuilt.maintenance_updates(), 0u);

  OlapEngine engine(wh_.get());
  for (const ViewDefinition& def : DeriveViewsFromSchema(wh_->schema())) {
    OlapQuery q;
    q.fact = def.fact;
    q.measures = {{"Price", AggFn::kSum}, {"Tickets", AggFn::kCount}};
    q.group_by = def.group_by;
    OlapResult golden = engine.Execute(q).ValueOrDie();
    ExpectSameResult(incremental.Answer(q).ValueOrDie(), golden,
                     def.name + "/incremental");
    ExpectSameResult(rebuilt.Answer(q).ValueOrDie(), golden,
                     def.name + "/rebuilt");
  }

  // The two catalogs materialized identical state.
  auto a = incremental.StatsSnapshot();
  auto b = rebuilt.StatsSnapshot();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].groups, b[i].groups) << a[i].name;
    EXPECT_EQ(a[i].facts_absorbed, b[i].facts_absorbed) << a[i].name;
  }
}

TEST_F(MaterializedViewTest, HavingAppliedIdentically) {
  InsAll();
  ViewCatalog catalog;
  BindDerived(&catalog);
  OlapEngine engine(wh_.get());
  OlapQuery q;
  q.fact = "Sales";
  q.measures = {{"Price", AggFn::kSum}};
  q.group_by = {{"dest", "City"}};
  q.having = {{0, CompareOp::kGreater, 100.0}};
  OlapResult viewed = catalog.Answer(q).ValueOrDie();
  ExpectSameResult(viewed, engine.Execute(q).ValueOrDie(), "having");
  ASSERT_EQ(viewed.rows.size(), 2u);  // Barcelona 300, New York 300.

  // A HAVING referring past the measure list fails with the engine's exact
  // message — callers can't tell the paths apart even on errors.
  q.having = {{3, CompareOp::kGreater, 0.0}};
  auto view_err = catalog.Answer(q).status();
  auto engine_err = engine.Execute(q).status();
  ASSERT_FALSE(view_err.ok());
  EXPECT_EQ(view_err.ToString(), engine_err.ToString());
}

TEST_F(MaterializedViewTest, FilteredQueriesAlwaysMiss) {
  InsAll();
  ViewCatalog catalog;
  BindDerived(&catalog);
  OlapQuery q;
  q.fact = "Sales";
  q.measures = {{"Price", AggFn::kSum}};
  q.group_by = {{"dest", "City"}};
  q.filters = {{"when", "Year", {"2004"}}};
  EXPECT_TRUE(catalog.Answer(q).status().IsNotFound());
  EXPECT_TRUE(catalog.EstimateGroups(q).status().IsNotFound());
  // The recompute fallback still answers it.
  EXPECT_TRUE(OlapEngine(wh_.get()).Execute(q).ok());
}

TEST_F(MaterializedViewTest, MissesOnUnknownShapes) {
  InsAll();
  ViewCatalog catalog;
  BindDerived(&catalog);
  OlapQuery q;
  q.fact = "Sales";
  q.measures = {{"Price", AggFn::kSum}};
  q.group_by = {{"dest", "City"}, {"when", "Date"}};
  // Derived single-axis views don't cover the two-axis shape...
  EXPECT_TRUE(catalog.Answer(q).status().IsNotFound());
  // ...until one is registered against the live warehouse.
  ViewDefinition slice;
  slice.name = "city_date";
  slice.fact = "Sales";
  slice.group_by = q.group_by;
  ASSERT_TRUE(catalog.Register(*wh_, slice).ok());
  ExpectSameResult(catalog.Answer(q).ValueOrDie(),
                   OlapEngine(wh_.get()).Execute(q).ValueOrDie(),
                   "registered slice");
  // Swapped axis order is a different shape.
  q.group_by = {{"when", "Date"}, {"dest", "City"}};
  EXPECT_TRUE(catalog.Answer(q).status().IsNotFound());
  // No measures at all is never view-answerable.
  q.group_by = {{"dest", "City"}};
  q.measures.clear();
  EXPECT_TRUE(catalog.Answer(q).status().IsNotFound());
  // Unknown fact.
  OlapQuery ghost;
  ghost.fact = "Ghost";
  ghost.measures = {{"Price", AggFn::kSum}};
  ghost.group_by = {{"dest", "City"}};
  EXPECT_TRUE(catalog.Answer(ghost).status().IsNotFound());
}

TEST_F(MaterializedViewTest, MatchingIsCaseInsensitiveButSpellingIsTheQuerys) {
  InsAll();
  ViewCatalog catalog;
  BindDerived(&catalog);
  OlapQuery q;
  q.fact = "sales";
  q.measures = {{"PRICE", AggFn::kSum}};
  q.group_by = {{"DEST", "city"}};
  auto viewed = catalog.Answer(q);
  ASSERT_TRUE(viewed.ok()) << viewed.status().ToString();
  // Headers come from the query's own spelling on both paths.
  ExpectSameResult(*viewed,
                   OlapEngine(wh_.get()).Execute(q).ValueOrDie(),
                   "case-insensitive");
  EXPECT_EQ(viewed->headers[0], "DEST.city");
}

TEST_F(MaterializedViewTest, StatsAndMetricsObserveMaintenance) {
  MetricRegistry metrics;
  ViewCatalog catalog;
  catalog.set_metrics(&metrics);
  BindDerived(&catalog);
  EXPECT_EQ(catalog.view_count(), 6u);
  EXPECT_DOUBLE_EQ(metrics.Value(kMetricViewRebuilds), 1.0);
  EXPECT_DOUBLE_EQ(metrics.Value(kMetricViewCount), 6.0);
  InsAll();
  // 4 facts × 6 views of the Sales fact.
  EXPECT_EQ(catalog.maintenance_updates(), 24u);
  EXPECT_DOUBLE_EQ(metrics.Value(kMetricViewMaintenanceUpdates), 24.0);
  for (const ViewStats& stats : catalog.StatsSnapshot()) {
    EXPECT_EQ(stats.fact, "Sales");
    EXPECT_EQ(stats.facts_absorbed, 4u) << stats.name;
    EXPECT_GT(stats.groups, 0u) << stats.name;
  }
  OlapQuery q;
  q.fact = "Sales";
  q.measures = {{"Price", AggFn::kSum}};
  q.group_by = {{"dest", "City"}};
  ASSERT_TRUE(catalog.Answer(q).ok());
  EXPECT_DOUBLE_EQ(metrics.FamilySum(kMetricViewReads), 1.0);
  q.filters = {{"when", "Year", {"2004"}}};
  ASSERT_FALSE(catalog.Answer(q).ok());
  EXPECT_DOUBLE_EQ(metrics.Value(kMetricViewMisses), 1.0);
}

TEST_F(MaterializedViewTest, RebindIsIdempotent) {
  InsAll();
  ViewCatalog catalog;
  BindDerived(&catalog);
  OlapQuery q;
  q.fact = "Sales";
  q.measures = {{"Tickets", AggFn::kSum}};
  q.group_by = {{"dest", "Country"}};
  OlapResult before = catalog.Answer(q).ValueOrDie();
  ASSERT_TRUE(catalog.Bind(*wh_).ok());
  ExpectSameResult(catalog.Answer(q).ValueOrDie(), before, "re-bind");
}

/// The `views` label's TSan target: BI readers race incremental
/// maintenance through the catalog's shared_mutex. Readers must always see
/// a fact-aligned snapshot — a SUM exactly `tickets_per_fact ×` the row
/// count the same result reports, never a torn in-between.
TEST_F(MaterializedViewTest, ConcurrentReadsSeeFactAlignedSnapshots) {
  constexpr double kTicketsPerFact = 2.0;
  constexpr int kFacts = 300;
  ViewCatalog catalog;
  BindDerived(&catalog);
  ThreadPool pool(4);
  auto writer = pool.Submit([&]() {
    for (int i = 0; i < kFacts; ++i) {
      Status inserted = wh_->InsertFact(
          "Sales", {prat_, i % 2 == 0 ? d1_ : d2_},
          {Value(100.0), Value(kTicketsPerFact)});
      if (!inserted.ok()) return inserted;
    }
    return Status::OK();
  });
  std::vector<std::future<Status>> readers;
  for (int t = 0; t < 3; ++t) {
    readers.push_back(pool.Submit([&]() {
      OlapQuery q;
      q.fact = "Sales";
      q.measures = {{"Tickets", AggFn::kSum}};
      q.group_by = {{"dest", "Country"}};
      for (int i = 0; i < 200; ++i) {
        auto r = catalog.Answer(q);
        if (!r.ok()) return r.status();
        double sum = 0.0;
        for (const auto& row : r->rows) sum += row[1].ToDouble();
        if (sum != kTicketsPerFact * double(r->facts_matched)) {
          return Status::Internal("torn read: sum " + std::to_string(sum) +
                                  " over " +
                                  std::to_string(r->facts_matched) +
                                  " facts");
        }
        (void)catalog.EstimateGroups(q);
        (void)catalog.StatsSnapshot();
      }
      return Status::OK();
    }));
  }
  EXPECT_TRUE(writer.get().ok());
  for (auto& reader : readers) {
    Status status = reader.get();
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  // After the race settles, the view still equals the recompute.
  OlapQuery q;
  q.fact = "Sales";
  q.measures = {{"Tickets", AggFn::kSum}, {"Price", AggFn::kAvg}};
  q.group_by = {{"dest", "Country"}};
  ExpectSameResult(catalog.Answer(q).ValueOrDie(),
                   OlapEngine(wh_.get()).Execute(q).ValueOrDie(),
                   "post-race");
}

}  // namespace
}  // namespace dw
}  // namespace dwqa
