#include "dw/warehouse.h"

#include <gtest/gtest.h>

namespace dwqa {
namespace dw {
namespace {

MdSchema SmallSchema() {
  MdSchema s;
  EXPECT_TRUE(
      s.AddDimension({"Geo", {{"Airport"}, {"City"}, {"Country"}}}).ok());
  EXPECT_TRUE(s.AddDimension({"Date", {{"Date"}, {"Year"}}}).ok());
  FactDef f;
  f.name = "Sales";
  f.measures = {{"Price", ColumnType::kDouble, AggFn::kSum},
                {"Tickets", ColumnType::kDouble, AggFn::kSum}};
  f.roles = {{"dest", "Geo"}, {"when", "Date"}};
  EXPECT_TRUE(s.AddFact(std::move(f)).ok());
  return s;
}

class WarehouseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wh_ = std::make_unique<Warehouse>(
        Warehouse::Create(SmallSchema()).ValueOrDie());
  }
  std::unique_ptr<Warehouse> wh_;
};

TEST_F(WarehouseTest, AddAndFindMember) {
  MemberId prat =
      wh_->AddMember("Geo", {"El Prat", "Barcelona", "Spain"}).ValueOrDie();
  EXPECT_EQ(wh_->FindMember("Geo", "El Prat").ValueOrDie(), prat);
  EXPECT_EQ(wh_->FindMember("Geo", "el prat").ValueOrDie(), prat);
  EXPECT_TRUE(wh_->FindMember("Geo", "Ghost").status().IsNotFound());
}

TEST_F(WarehouseTest, ReAddingMemberReturnsSameId) {
  MemberId a = wh_->AddMember("Geo", {"El Prat", "Barcelona"}).ValueOrDie();
  MemberId b = wh_->AddMember("Geo", {"El Prat"}).ValueOrDie();
  EXPECT_EQ(a, b);
  EXPECT_EQ(wh_->DimensionTable("Geo").ValueOrDie()->row_count(), 1u);
}

TEST_F(WarehouseTest, ShortPathLeavesCoarseLevelsNull) {
  MemberId m = wh_->AddMember("Geo", {"Lonely"}).ValueOrDie();
  EXPECT_EQ(wh_->MemberLevelValue("Geo", m, "Airport").ValueOrDie(),
            "Lonely");
  EXPECT_EQ(wh_->MemberLevelValue("Geo", m, "Country").ValueOrDie(), "");
}

TEST_F(WarehouseTest, PathValidation) {
  EXPECT_TRUE(wh_->AddMember("Geo", {}).status().IsInvalidArgument());
  EXPECT_TRUE(wh_->AddMember("Geo", {""}).status().IsInvalidArgument());
  EXPECT_TRUE(wh_->AddMember("Geo", {"a", "b", "c", "d"})
                  .status()
                  .IsInvalidArgument());  // Longer than hierarchy.
  EXPECT_TRUE(wh_->AddMember("Ghost", {"a"}).status().IsNotFound());
}

TEST_F(WarehouseTest, MemberLevelValue) {
  MemberId m =
      wh_->AddMember("Geo", {"El Prat", "Barcelona", "Spain"}).ValueOrDie();
  EXPECT_EQ(wh_->MemberLevelValue("Geo", m, "City").ValueOrDie(),
            "Barcelona");
  EXPECT_TRUE(
      wh_->MemberLevelValue("Geo", m, "Continent").status().IsNotFound());
  EXPECT_TRUE(wh_->MemberLevelValue("Geo", 99, "City").status()
                  .IsOutOfRange());
}

TEST_F(WarehouseTest, MemberNamesInInsertionOrder) {
  ASSERT_TRUE(wh_->AddMember("Geo", {"B"}).ok());
  ASSERT_TRUE(wh_->AddMember("Geo", {"A"}).ok());
  auto names = wh_->MemberNames("Geo").ValueOrDie();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "B");
  EXPECT_EQ(names[1], "A");
}

TEST_F(WarehouseTest, InsertFactChecksArityAndIntegrity) {
  MemberId geo = wh_->AddMember("Geo", {"X"}).ValueOrDie();
  MemberId date = wh_->AddMember("Date", {"2004-01-01", "2004"}).ValueOrDie();
  EXPECT_TRUE(wh_->InsertFact("Sales", {geo, date},
                              {Value(10.0), Value(2.0)})
                  .ok());
  EXPECT_EQ(wh_->FactRowCount("Sales").ValueOrDie(), 1u);
  // Wrong member count.
  EXPECT_TRUE(wh_->InsertFact("Sales", {geo}, {Value(1.0), Value(1.0)})
                  .IsInvalidArgument());
  // Wrong measure count.
  EXPECT_TRUE(
      wh_->InsertFact("Sales", {geo, date}, {Value(1.0)}).IsInvalidArgument());
  // Foreign key out of range.
  EXPECT_TRUE(wh_->InsertFact("Sales", {geo, 77},
                              {Value(1.0), Value(1.0)})
                  .IsInvalidArgument());
  // Unknown fact.
  EXPECT_TRUE(wh_->InsertFact("Ghost", {geo, date},
                              {Value(1.0), Value(1.0)})
                  .IsNotFound());
  // The failed inserts left no rows behind.
  EXPECT_EQ(wh_->FactRowCount("Sales").ValueOrDie(), 1u);
}

TEST_F(WarehouseTest, FactTableLayout) {
  MemberId geo = wh_->AddMember("Geo", {"X"}).ValueOrDie();
  MemberId date = wh_->AddMember("Date", {"2004-01-01"}).ValueOrDie();
  ASSERT_TRUE(
      wh_->InsertFact("Sales", {geo, date}, {Value(10.0), Value(2.0)}).ok());
  const Table* fact = wh_->FactTable("Sales").ValueOrDie();
  EXPECT_EQ(fact->column_count(), 4u);  // 2 FKs + 2 measures.
  EXPECT_EQ(fact->column(0).name(), "fk_dest");
  EXPECT_EQ(fact->column(2).name(), "Price");
  EXPECT_EQ(fact->Get(0, 0).as_int(), geo);
  EXPECT_DOUBLE_EQ(fact->Get(0, 2).as_double(), 10.0);
}

TEST_F(WarehouseTest, CreateRejectsInvalidSchema) {
  MdSchema bad;
  ASSERT_TRUE(bad.AddDimension({"D", {{"L"}}}).ok());
  FactDef f;
  f.name = "F";
  f.roles = {{"a", "D"}, {"A", "D"}};
  ASSERT_TRUE(bad.AddFact(std::move(f)).ok());
  EXPECT_FALSE(Warehouse::Create(std::move(bad)).ok());
}

}  // namespace
}  // namespace dw
}  // namespace dwqa
