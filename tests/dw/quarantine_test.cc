#include "dw/quarantine.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace dwqa {
namespace dw {
namespace {

QuarantineRecord SampleRecord() {
  QuarantineRecord record;
  record.attribute = "temperature";
  record.value = "888";
  record.unit = "\xC2\xBA" "C";
  record.date_iso = "2004-01-31";
  record.location = "Barcelona";
  record.url = "http://weather.example/barcelona";
  record.reason = "ValueOutOfRange";
  record.detail = "axiom interval [-90, 60]";
  return record;
}

TEST(QuarantineTest, AddStampsSequenceAndTimestamp) {
  QuarantineStore store;
  store.Add(SampleRecord());
  store.Add(SampleRecord());
  ASSERT_EQ(store.size(), 2u);
  EXPECT_EQ(store.records()[0].sequence, 1u);
  EXPECT_EQ(store.records()[1].sequence, 2u);
  // ISO 8601 UTC: "2026-08-06T12:34:56Z".
  const std::string& ts = store.records()[0].timestamp;
  ASSERT_EQ(ts.size(), 20u);
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[10], 'T');
  EXPECT_EQ(ts.back(), 'Z');
}

TEST(QuarantineTest, PresetTimestampIsKept) {
  QuarantineStore store;
  QuarantineRecord record = SampleRecord();
  record.timestamp = "2004-01-31T00:00:00Z";
  store.Add(record);
  EXPECT_EQ(store.records()[0].timestamp, "2004-01-31T00:00:00Z");
}

TEST(QuarantineTest, CountsByReason) {
  QuarantineStore store;
  store.Add(SampleRecord());
  store.Add(SampleRecord());
  QuarantineRecord other = SampleRecord();
  other.reason = "BadUnit";
  store.Add(other);
  auto counts = store.CountsByReason();
  EXPECT_EQ(counts["ValueOutOfRange"], 2u);
  EXPECT_EQ(counts["BadUnit"], 1u);
  EXPECT_EQ(counts.size(), 2u);
}

TEST(QuarantineTest, CsvHasHeaderAndOneLinePerRecord) {
  QuarantineStore store;
  store.Add(SampleRecord());
  std::string csv = store.ToCsv();
  std::istringstream in(csv);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header,
            "sequence,timestamp,reason,attribute,value,unit,date,location,"
            "url,detail");
  std::string row;
  ASSERT_TRUE(std::getline(in, row));
  EXPECT_NE(row.find("ValueOutOfRange"), std::string::npos);
  EXPECT_NE(row.find("888"), std::string::npos);
  EXPECT_NE(row.find("Barcelona"), std::string::npos);
  std::string extra;
  EXPECT_FALSE(std::getline(in, extra));
}

TEST(QuarantineTest, CsvQuotesFieldsWithCommas) {
  QuarantineStore store;
  QuarantineRecord record = SampleRecord();
  record.detail = "etl: bad member, path too deep";
  store.Add(record);
  std::string csv = store.ToCsv();
  EXPECT_NE(csv.find("\"etl: bad member, path too deep\""),
            std::string::npos);
}

TEST(QuarantineTest, SaveCsvWritesTheFile) {
  QuarantineStore store;
  store.Add(SampleRecord());
  std::string path = testing::TempDir() + "quarantine_test.csv";
  ASSERT_TRUE(store.SaveCsv(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), store.ToCsv());
  std::remove(path.c_str());
}

TEST(QuarantineTest, ClearResetsButSequenceKeepsCounting) {
  QuarantineStore store;
  store.Add(SampleRecord());
  store.Clear();
  EXPECT_TRUE(store.empty());
  store.Add(SampleRecord());
  // Sequence numbers stay monotonic across Clear so CSV exports from
  // different moments never collide.
  EXPECT_EQ(store.records()[0].sequence, 2u);
}

}  // namespace
}  // namespace dw
}  // namespace dwqa
