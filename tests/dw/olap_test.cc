#include "dw/olap.h"

#include <gtest/gtest.h>

namespace dwqa {
namespace dw {
namespace {

/// A small, hand-checkable cube: 2 destinations × 2 dates.
class OlapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MdSchema s;
    ASSERT_TRUE(
        s.AddDimension({"Geo", {{"Airport"}, {"City"}, {"Country"}}}).ok());
    ASSERT_TRUE(s.AddDimension({"Date", {{"Date"}, {"Month"}, {"Year"}}})
                    .ok());
    FactDef f;
    f.name = "Sales";
    f.measures = {{"Price", ColumnType::kDouble, AggFn::kSum},
                  {"Tickets", ColumnType::kDouble, AggFn::kSum}};
    f.roles = {{"dest", "Geo"}, {"when", "Date"}};
    ASSERT_TRUE(s.AddFact(std::move(f)).ok());
    wh_ = std::make_unique<Warehouse>(
        Warehouse::Create(std::move(s)).ValueOrDie());

    prat_ = wh_->AddMember("Geo", {"El Prat", "Barcelona", "Spain"})
                .ValueOrDie();
    barajas_ =
        wh_->AddMember("Geo", {"Barajas", "Madrid", "Spain"}).ValueOrDie();
    jfk_ = wh_->AddMember("Geo", {"JFK", "New York", "United States"})
               .ValueOrDie();
    d1_ = wh_->AddMember("Date", {"2004-01-01", "2004-01", "2004"})
              .ValueOrDie();
    d2_ = wh_->AddMember("Date", {"2004-02-01", "2004-02", "2004"})
              .ValueOrDie();

    Ins(prat_, d1_, 100, 2);
    Ins(prat_, d2_, 200, 4);
    Ins(barajas_, d1_, 50, 1);
    Ins(jfk_, d1_, 300, 3);
  }

  void Ins(MemberId g, MemberId d, double price, double tickets) {
    ASSERT_TRUE(
        wh_->InsertFact("Sales", {g, d}, {Value(price), Value(tickets)})
            .ok());
  }

  static double Cell(const OlapResult& r, const std::string& key,
                     size_t col) {
    for (const auto& row : r.rows) {
      if (row[0].ToString() == key) return row[col].ToDouble();
    }
    ADD_FAILURE() << "no row " << key;
    return -1;
  }

  std::unique_ptr<Warehouse> wh_;
  MemberId prat_, barajas_, jfk_, d1_, d2_;
};

TEST_F(OlapTest, GroupByCityWithSum) {
  OlapEngine engine(wh_.get());
  OlapQuery q;
  q.fact = "Sales";
  q.measures = {{"Price", AggFn::kSum}};
  q.group_by = {{"dest", "City"}};
  OlapResult r = engine.Execute(q).ValueOrDie();
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_DOUBLE_EQ(Cell(r, "Barcelona", 1), 300.0);
  EXPECT_DOUBLE_EQ(Cell(r, "Madrid", 1), 50.0);
  EXPECT_DOUBLE_EQ(Cell(r, "New York", 1), 300.0);
  EXPECT_EQ(r.facts_scanned, 4u);
  EXPECT_EQ(r.facts_matched, 4u);
}

TEST_F(OlapTest, RollUpCityToCountry) {
  OlapEngine engine(wh_.get());
  OlapQuery q;
  q.fact = "Sales";
  q.measures = {{"Price", AggFn::kSum}};
  q.group_by = {{"dest", "City"}};
  OlapQuery up = engine.RollUp(q, "dest").ValueOrDie();
  EXPECT_EQ(up.group_by[0].level, "Country");
  OlapResult r = engine.Execute(up).ValueOrDie();
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(Cell(r, "Spain", 1), 350.0);
  EXPECT_DOUBLE_EQ(Cell(r, "United States", 1), 300.0);
}

TEST_F(OlapTest, RollUpPastTopFails) {
  OlapEngine engine(wh_.get());
  OlapQuery q;
  q.fact = "Sales";
  q.measures = {{"Price", AggFn::kSum}};
  q.group_by = {{"dest", "Country"}};
  EXPECT_TRUE(engine.RollUp(q, "dest").status().IsOutOfRange());
}

TEST_F(OlapTest, DrillDownCountryToCity) {
  OlapEngine engine(wh_.get());
  OlapQuery q;
  q.fact = "Sales";
  q.measures = {{"Price", AggFn::kSum}};
  q.group_by = {{"dest", "Country"}};
  OlapQuery down = engine.DrillDown(q, "dest").ValueOrDie();
  EXPECT_EQ(down.group_by[0].level, "City");
  // Past the base level fails.
  OlapQuery base = engine.DrillDown(down, "dest").ValueOrDie();
  EXPECT_EQ(base.group_by[0].level, "Airport");
  EXPECT_TRUE(engine.DrillDown(base, "dest").status().IsOutOfRange());
}

TEST_F(OlapTest, RollUpUnknownRoleFails) {
  OlapEngine engine(wh_.get());
  OlapQuery q;
  q.fact = "Sales";
  q.measures = {{"Price", AggFn::kSum}};
  q.group_by = {{"dest", "City"}};
  EXPECT_TRUE(engine.RollUp(q, "ghost").status().IsNotFound());
}

TEST_F(OlapTest, SliceFiltersFacts) {
  OlapEngine engine(wh_.get());
  OlapQuery q;
  q.fact = "Sales";
  q.measures = {{"Tickets", AggFn::kSum}};
  q.group_by = {{"dest", "City"}};
  q.filters = {{"dest", "Country", {"Spain"}}};
  OlapResult r = engine.Execute(q).ValueOrDie();
  EXPECT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.facts_matched, 3u);
  EXPECT_DOUBLE_EQ(Cell(r, "Barcelona", 1), 6.0);
}

TEST_F(OlapTest, DiceWithMultipleValues) {
  OlapEngine engine(wh_.get());
  OlapQuery q;
  q.fact = "Sales";
  q.measures = {{"Price", AggFn::kSum}};
  q.group_by = {{"dest", "Airport"}};
  q.filters = {{"dest", "City", {"Barcelona", "New York"}}};
  OlapResult r = engine.Execute(q).ValueOrDie();
  EXPECT_EQ(r.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(Cell(r, "El Prat", 1), 300.0);
  EXPECT_DOUBLE_EQ(Cell(r, "JFK", 1), 300.0);
}

TEST_F(OlapTest, TemporalSliceOnMonth) {
  OlapEngine engine(wh_.get());
  OlapQuery q;
  q.fact = "Sales";
  q.measures = {{"Price", AggFn::kSum}};
  q.group_by = {{"dest", "City"}};
  q.filters = {{"when", "Month", {"2004-01"}}};
  OlapResult r = engine.Execute(q).ValueOrDie();
  EXPECT_EQ(r.facts_matched, 3u);
  EXPECT_DOUBLE_EQ(Cell(r, "Barcelona", 1), 100.0);
}

TEST_F(OlapTest, AllAggregationFunctions) {
  OlapEngine engine(wh_.get());
  OlapQuery q;
  q.fact = "Sales";
  q.measures = {{"Price", AggFn::kSum},
                {"Price", AggFn::kAvg},
                {"Price", AggFn::kMin},
                {"Price", AggFn::kMax},
                {"Price", AggFn::kCount}};
  q.group_by = {{"dest", "City"}};
  OlapResult r = engine.Execute(q).ValueOrDie();
  EXPECT_DOUBLE_EQ(Cell(r, "Barcelona", 1), 300.0);   // SUM
  EXPECT_DOUBLE_EQ(Cell(r, "Barcelona", 2), 150.0);   // AVG
  EXPECT_DOUBLE_EQ(Cell(r, "Barcelona", 3), 100.0);   // MIN
  EXPECT_DOUBLE_EQ(Cell(r, "Barcelona", 4), 200.0);   // MAX
  EXPECT_DOUBLE_EQ(Cell(r, "Barcelona", 5), 2.0);     // COUNT
}

TEST_F(OlapTest, GrandTotalWithoutGroupBy) {
  OlapEngine engine(wh_.get());
  OlapQuery q;
  q.fact = "Sales";
  q.measures = {{"Price", AggFn::kSum}};
  OlapResult r = engine.Execute(q).ValueOrDie();
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][0].ToDouble(), 650.0);
}

TEST_F(OlapTest, MultiAxisGroupBy) {
  OlapEngine engine(wh_.get());
  OlapQuery q;
  q.fact = "Sales";
  q.measures = {{"Price", AggFn::kSum}};
  q.group_by = {{"dest", "Country"}, {"when", "Year"}};
  OlapResult r = engine.Execute(q).ValueOrDie();
  EXPECT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.headers[0], "dest.Country");
  EXPECT_EQ(r.headers[1], "when.Year");
}

TEST_F(OlapTest, ErrorsOnBadQuery) {
  OlapEngine engine(wh_.get());
  OlapQuery q;
  q.fact = "Ghost";
  q.measures = {{"Price", AggFn::kSum}};
  EXPECT_TRUE(engine.Execute(q).status().IsNotFound());
  q.fact = "Sales";
  q.measures.clear();
  EXPECT_TRUE(engine.Execute(q).status().IsInvalidArgument());
  q.measures = {{"Ghost", AggFn::kSum}};
  EXPECT_TRUE(engine.Execute(q).status().IsNotFound());
  q.measures = {{"Price", AggFn::kSum}};
  q.group_by = {{"dest", "Continent"}};
  EXPECT_TRUE(engine.Execute(q).status().IsNotFound());
}

TEST_F(OlapTest, ResultsAreDeterministicallyOrdered) {
  OlapEngine engine(wh_.get());
  OlapQuery q;
  q.fact = "Sales";
  q.measures = {{"Price", AggFn::kSum}};
  q.group_by = {{"dest", "City"}};
  OlapResult a = engine.Execute(q).ValueOrDie();
  OlapResult b = engine.Execute(q).ValueOrDie();
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i][0].ToString(), b.rows[i][0].ToString());
  }
  // Sorted by group key.
  EXPECT_EQ(a.rows[0][0].ToString(), "Barcelona");
}

TEST_F(OlapTest, HavingFiltersGroups) {
  OlapEngine engine(wh_.get());
  OlapQuery q;
  q.fact = "Sales";
  q.measures = {{"Price", AggFn::kSum}};
  q.group_by = {{"dest", "City"}};
  q.having = {{0, CompareOp::kGreaterEqual, 300.0}};
  OlapResult r = engine.Execute(q).ValueOrDie();
  ASSERT_EQ(r.rows.size(), 2u);  // Barcelona (300) and New York (300).
  q.having = {{0, CompareOp::kGreater, 300.0}};
  EXPECT_TRUE(engine.Execute(q).ValueOrDie().rows.empty());
  q.having = {{0, CompareOp::kEqual, 50.0}};
  r = engine.Execute(q).ValueOrDie();
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].ToString(), "Madrid");
}

TEST_F(OlapTest, HavingIndexOutOfRangeRejected) {
  OlapEngine engine(wh_.get());
  OlapQuery q;
  q.fact = "Sales";
  q.measures = {{"Price", AggFn::kSum}};
  q.having = {{7, CompareOp::kGreater, 0.0}};
  EXPECT_TRUE(engine.Execute(q).status().IsInvalidArgument());
}

TEST_F(OlapTest, GroupSumsEqualGrandTotalProperty) {
  // Property: for every grouping level, SUM over groups == grand total.
  OlapEngine engine(wh_.get());
  OlapQuery total_q;
  total_q.fact = "Sales";
  total_q.measures = {{"Price", AggFn::kSum}};
  double total =
      engine.Execute(total_q).ValueOrDie().rows[0][0].ToDouble();
  for (const char* level : {"Airport", "City", "Country"}) {
    OlapQuery q;
    q.fact = "Sales";
    q.measures = {{"Price", AggFn::kSum}};
    q.group_by = {{"dest", level}};
    OlapResult r = engine.Execute(q).ValueOrDie();
    double sum = 0;
    for (const auto& row : r.rows) sum += row[1].ToDouble();
    EXPECT_DOUBLE_EQ(sum, total) << level;
  }
}

}  // namespace
}  // namespace dw
}  // namespace dwqa
