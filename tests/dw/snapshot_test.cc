#include "dw/snapshot.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "dw/persistence.h"
#include "integration/last_minute_sales.h"
#include "web/weather_model.h"

namespace dwqa {
namespace dw {
namespace {

namespace stdfs = std::filesystem;

Warehouse PopulatedWarehouse() {
  Warehouse wh = integration::LastMinuteSales::MakeWarehouse().ValueOrDie();
  web::WeatherModel weather(42);
  EXPECT_TRUE(integration::LastMinuteSales::GenerateSales(
                  &wh, weather, Date(2004, 1, 1), 5)
                  .ok());
  return wh;
}

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = stdfs::path(::testing::TempDir()) / (std::string("dwqa_snapshot_test.") + std::to_string(::getpid()));
    stdfs::remove_all(dir_);
  }
  void TearDown() override { stdfs::remove_all(dir_); }

  std::string Dir() const { return dir_.string(); }

  stdfs::path dir_;
};

TEST(ManifestSerdeTest, RoundTrip) {
  SnapshotManifest manifest;
  manifest.lsn = 42;
  manifest.entries = {{"schema.txt", 120, "cbf43926"},
                      {"fact_Weather.csv", 0, "00000000"}};
  auto back = ManifestSerde::FromText(ManifestSerde::ToText(manifest));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->lsn, 42u);
  ASSERT_EQ(back->entries.size(), 2u);
  EXPECT_EQ(back->entries[0].file, "schema.txt");
  EXPECT_EQ(back->entries[0].size, 120u);
  EXPECT_EQ(back->entries[0].crc_hex, "cbf43926");
}

TEST(ManifestSerdeTest, AdversarialInputRejectedWithLineNumbers) {
  const char* cases[] = {
      "",
      "not-a-manifest\t1\n",
      "dwqa-snapshot\t9\n",                       // Unknown version.
      "dwqa-snapshot\t1\n",                       // Missing lsn.
      "dwqa-snapshot\t1\nlsn\tmany\n",            // Non-numeric lsn.
      "dwqa-snapshot\t1\nlsn\t1\nlsn\t2\n",       // Duplicate lsn.
      "dwqa-snapshot\t1\nlsn\t1\nfile\ta\t3\n",   // Short file line.
      "dwqa-snapshot\t1\nlsn\t1\nfile\ta\t3\tzz\n",  // Bad CRC width.
      "dwqa-snapshot\t1\nlsn\t1\nzap\tx\n",       // Unknown tag.
      "dwqa-snapshot\t1\nlsn\t99999999999999999999\n",  // u64 overflow.
  };
  for (const char* text : cases) {
    auto parsed = ManifestSerde::FromText(text);
    ASSERT_FALSE(parsed.ok()) << "accepted: " << text;
    EXPECT_TRUE(parsed.status().IsCorruption()) << parsed.status().ToString();
    EXPECT_NE(parsed.status().message().find("line"), std::string::npos);
  }
}

TEST_F(SnapshotTest, WriteCommitVerifyRoundTrip) {
  Warehouse wh = PopulatedWarehouse();
  std::string path = SnapshotWriter::Write(Dir(), wh, 7).ValueOrDie();
  EXPECT_NE(path.find("snap-00000000000000000007"), std::string::npos);
  // Committed: no tmp dir left, manifest verifies, warehouse loads back.
  EXPECT_FALSE(stdfs::exists(path + ".tmp"));
  SnapshotManifest manifest = VerifySnapshot(path).ValueOrDie();
  EXPECT_EQ(manifest.lsn, 7u);
  EXPECT_FALSE(manifest.entries.empty());
  Warehouse back = WarehousePersistence::Load(path).ValueOrDie();
  EXPECT_EQ(back.FactRowCount("LastMinuteSales").ValueOrDie(),
            wh.FactRowCount("LastMinuteSales").ValueOrDie());

  std::vector<std::string> tmp_leftovers;
  auto snapshots = ListSnapshots(Dir(), nullptr, &tmp_leftovers).ValueOrDie();
  ASSERT_EQ(snapshots.size(), 1u);
  EXPECT_EQ(snapshots[0].lsn, 7u);
  EXPECT_TRUE(tmp_leftovers.empty());
}

TEST_F(SnapshotTest, RewriteAtTheSameLsnIsIdempotent) {
  Warehouse wh = PopulatedWarehouse();
  std::string first = SnapshotWriter::Write(Dir(), wh, 7).ValueOrDie();
  std::string second = SnapshotWriter::Write(Dir(), wh, 7).ValueOrDie();
  EXPECT_EQ(first, second);
  EXPECT_EQ(ListSnapshots(Dir()).ValueOrDie().size(), 1u);
}

TEST_F(SnapshotTest, SnapshotsListOldestFirst) {
  Warehouse wh = PopulatedWarehouse();
  ASSERT_TRUE(SnapshotWriter::Write(Dir(), wh, 30).ok());
  ASSERT_TRUE(SnapshotWriter::Write(Dir(), wh, 4).ok());
  ASSERT_TRUE(SnapshotWriter::Write(Dir(), wh, 100).ok());
  auto snapshots = ListSnapshots(Dir()).ValueOrDie();
  ASSERT_EQ(snapshots.size(), 3u);
  EXPECT_EQ(snapshots[0].lsn, 4u);
  EXPECT_EQ(snapshots[1].lsn, 30u);
  EXPECT_EQ(snapshots[2].lsn, 100u);
}

TEST_F(SnapshotTest, StaleTmpDirIsReportedAndSweptByRewrite) {
  Warehouse wh = PopulatedWarehouse();
  // A crash mid-build leaves snap-<lsn>.tmp behind.
  stdfs::create_directories(dir_ / "snap-00000000000000000009.tmp");
  std::vector<std::string> tmp_leftovers;
  ASSERT_TRUE(ListSnapshots(Dir(), nullptr, &tmp_leftovers).ok());
  ASSERT_EQ(tmp_leftovers.size(), 1u);
  // A retried Write at the same LSN sweeps the stale build dir.
  ASSERT_TRUE(SnapshotWriter::Write(Dir(), wh, 9).ok());
  tmp_leftovers.clear();
  ASSERT_TRUE(ListSnapshots(Dir(), nullptr, &tmp_leftovers).ok());
  EXPECT_TRUE(tmp_leftovers.empty());
}

TEST_F(SnapshotTest, BitRotInADataFileFailsVerification) {
  Warehouse wh = PopulatedWarehouse();
  std::string path = SnapshotWriter::Write(Dir(), wh, 7).ValueOrDie();
  // Flip one byte of a covered file, keeping its size.
  std::string target = path + "/schema.txt";
  std::ifstream in(target, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  ASSERT_FALSE(content.empty());
  content[content.size() / 2] ^= 0x01;
  {
    std::ofstream out(target, std::ios::binary | std::ios::trunc);
    out << content;
  }
  Status st = VerifySnapshot(path).status();
  ASSERT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.message().find("CRC mismatch"), std::string::npos);
  EXPECT_NE(st.message().find("schema.txt"), std::string::npos);
}

TEST_F(SnapshotTest, TruncatedDataFileFailsVerificationBySize) {
  Warehouse wh = PopulatedWarehouse();
  std::string path = SnapshotWriter::Write(Dir(), wh, 7).ValueOrDie();
  { std::ofstream out(path + "/schema.txt", std::ios::trunc); }
  Status st = VerifySnapshot(path).status();
  ASSERT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.message().find("size"), std::string::npos);
}

TEST_F(SnapshotTest, MissingManifestFailsVerification) {
  Warehouse wh = PopulatedWarehouse();
  std::string path = SnapshotWriter::Write(Dir(), wh, 7).ValueOrDie();
  stdfs::remove(path + "/MANIFEST");
  Status st = VerifySnapshot(path).status();
  ASSERT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.message().find("MANIFEST"), std::string::npos);
}

// Satellite 1: WarehousePersistence::Save writes every file atomically —
// after any successful Save, the directory holds complete files and no
// .tmp leftovers, and a re-Save over an existing directory is clean.
TEST_F(SnapshotTest, PersistenceSaveIsAtomicAndRepeatable) {
  Warehouse wh = PopulatedWarehouse();
  ASSERT_TRUE(WarehousePersistence::Save(wh, Dir()).ok());
  ASSERT_TRUE(WarehousePersistence::Save(wh, Dir()).ok());  // Overwrite.
  for (const auto& entry : stdfs::directory_iterator(dir_)) {
    EXPECT_NE(entry.path().extension(), ".tmp")
        << "leftover temp file: " << entry.path();
  }
  Warehouse back = WarehousePersistence::Load(Dir()).ValueOrDie();
  EXPECT_EQ(back.FactRowCount("LastMinuteSales").ValueOrDie(),
            wh.FactRowCount("LastMinuteSales").ValueOrDie());
}

}  // namespace
}  // namespace dw
}  // namespace dwqa
