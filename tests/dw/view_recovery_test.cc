#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/io.h"
#include "dw/etl.h"
#include "dw/materialized_view.h"
#include "dw/olap.h"
#include "dw/recovery.h"
#include "integration/last_minute_sales.h"

namespace dwqa {
namespace dw {
namespace {

namespace stdfs = std::filesystem;

WalFact MakeFact(int day, const std::string& city) {
  char date[11];
  std::snprintf(date, sizeof(date), "2004-01-%02d", day);
  WalFact fact;
  fact.fact_name = "Weather";
  fact.attribute = "temperature";
  fact.value = 5.0 + day;
  fact.unit = "\xC2\xBA\x43";
  fact.date_iso = date;
  fact.location = city;
  fact.url = "http://weather.example/" + city;
  fact.confidence = 0.9;
  fact.dedup_key = "temperature|" + city + "|" + date;
  fact.record.role_paths = {
      {city}, DateMemberPath(Date::FromIsoString(date).ValueOrDie()),
      {fact.url}};
  fact.record.measures = {Value(fact.value)};
  return fact;
}

/// The durability workload of the crash sweep, minus the checkpoint: WAL
/// appends interleaved with warehouse loads, a mid-run snapshot dropping
/// covered segments, more appends after it — so recovery exercises both
/// the snapshot-load + Bind() rebuild AND the WAL-replay incremental
/// maintenance of the same catalog.
size_t RunWorkload(const std::string& dir, FaultFs* fs) {
  WalOptions options;
  options.segment_bytes = 256;  // Small enough to force a rotation.
  auto wal = WalWriter::Open(dir, options, fs);
  if (!wal.ok()) return fs->op_count();
  Warehouse wh = integration::LastMinuteSales::MakeWarehouse().ValueOrDie();
  EtlLoader loader(&wh);
  const std::vector<std::string> cities = {"Barcelona", "Madrid"};
  auto feed = [&](int from, int to) -> bool {
    for (int day = from; day <= to; ++day) {
      WalFact fact = MakeFact(day, cities[size_t(day) % cities.size()]);
      if (!(*wal)->AppendFact(fact).ok()) return false;
      if (!loader.LoadRecord(fact.fact_name, fact.record).ok()) {
        return false;
      }
    }
    return true;
  };
  if (!feed(1, 4)) return fs->op_count();
  if (SnapshotWriter::Write(dir, wh, (*wal)->last_lsn(), fs).ok()) {
    (void)(*wal)->DropSegmentsCoveredBy((*wal)->last_lsn());
  }
  (void)feed(5, 8);
  return fs->op_count();
}

/// The queries the BI layer reads over the recovered Weather fact.
std::vector<OlapQuery> WeatherQueries() {
  std::vector<OlapQuery> queries;
  OlapQuery by_city;
  by_city.fact = "Weather";
  by_city.measures = {{"TemperatureC", AggFn::kAvg}};
  by_city.group_by = {{"location", "City"}};
  queries.push_back(by_city);
  OlapQuery by_day;
  by_day.fact = "Weather";
  by_day.measures = {{"TemperatureC", AggFn::kMax}};
  by_day.group_by = {{"day", "Date"}};
  queries.push_back(by_day);
  OlapQuery slice;
  slice.fact = "Weather";
  slice.measures = {{"TemperatureC", AggFn::kAvg}};
  slice.group_by = {{"location", "City"}, {"day", "Date"}};
  queries.push_back(slice);
  return queries;
}

/// Asserts the recovered catalog's answers are byte-identical to BOTH the
/// engine recompute and a second catalog bound from scratch over the
/// recovered facts — the "views equal a from-scratch rebuild" contract.
void ExpectViewsEqualRebuild(const Warehouse& wh, const ViewCatalog& views,
                             const std::string& context) {
  ViewCatalog fresh;
  ASSERT_TRUE(fresh.DefineAll(DeriveViewsFromSchema(wh.schema())).ok())
      << context;
  ASSERT_TRUE(fresh.Bind(wh).ok()) << context;
  OlapEngine engine(&wh);
  for (const OlapQuery& q : WeatherQueries()) {
    auto recovered = views.Answer(q);
    auto rebuilt = fresh.Answer(q);
    ASSERT_TRUE(recovered.ok()) << context << ": "
                                << recovered.status().ToString();
    ASSERT_TRUE(rebuilt.ok()) << context;
    OlapResult golden = engine.Execute(q).ValueOrDie();
    EXPECT_EQ(recovered->ToDisplayString(), golden.ToDisplayString())
        << context;
    EXPECT_EQ(recovered->ToDisplayString(), rebuilt->ToDisplayString())
        << context;
    EXPECT_EQ(recovered->facts_scanned, golden.facts_scanned) << context;
    EXPECT_EQ(recovered->facts_matched, golden.facts_matched) << context;
    EXPECT_EQ(recovered->headers, golden.headers) << context;
  }
  // The materialized state itself matches, view by view.
  auto a = views.StatsSnapshot();
  auto b = fresh.StatsSnapshot();
  ASSERT_EQ(a.size(), b.size()) << context;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name) << context;
    EXPECT_EQ(a[i].groups, b[i].groups) << context << " " << a[i].name;
    EXPECT_EQ(a[i].facts_absorbed, b[i].facts_absorbed)
        << context << " " << a[i].name;
  }
}

class ViewRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = stdfs::path(::testing::TempDir()) / (std::string("dwqa_view_recovery.") + std::to_string(::getpid()));
    stdfs::remove_all(dir_);
  }
  void TearDown() override { stdfs::remove_all(dir_); }

  std::string Dir() const { return dir_.string(); }

  Result<RecoveredWarehouse> Recover(ViewCatalog* catalog) {
    RecoveryOptions options;
    options.bootstrap_schema = integration::LastMinuteSales::MakeSchema();
    if (catalog != nullptr) {
      Status defined = catalog->DefineAll(
          DeriveViewsFromSchema(*options.bootstrap_schema));
      if (!defined.ok()) return defined;
      options.views = catalog;
    }
    return Recovery::Open(Dir(), options);
  }

  stdfs::path dir_;
};

/// Clean-shutdown recovery: the catalog rebuilds from the snapshot via
/// Bind(), then WAL replay routes the tail through incremental
/// maintenance — and the result equals a from-scratch rebuild.
TEST_F(ViewRecoveryTest, RecoveryRebuildsViewsFromSnapshotAndWalTail) {
  FaultFs fs(RealFilesystem());
  RunWorkload(Dir(), &fs);

  ViewCatalog catalog;
  auto recovered = Recover(&catalog);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ(
      recovered->warehouse.FactRowCount("Weather").ValueOrDie(), 8u);
  EXPECT_EQ(recovered->warehouse.views(), &catalog);
  // The WAL tail past the snapshot reached the views incrementally, not
  // through another rebuild.
  EXPECT_GT(catalog.maintenance_updates(), 0u);
  ExpectViewsEqualRebuild(recovered->warehouse, catalog, "clean recovery");
}

/// The tentpole sweep: crash at EVERY mutating fs op, in both stop and
/// torn-write modes; after each crash, recovery with a view catalog must
/// leave view contents equal to a from-scratch rebuild over the recovered
/// facts.
TEST_F(ViewRecoveryTest, EveryCrashPointRecoversViewsEqualToRebuild) {
  FaultFs recorder(RealFilesystem());
  size_t ops = RunWorkload(Dir(), &recorder);
  ASSERT_GT(ops, 20u) << "workload too small to be a real sweep";

  for (CrashMode mode : {CrashMode::kStop, CrashMode::kTornWrite}) {
    for (size_t crash_at = 0; crash_at < ops; ++crash_at) {
      stdfs::remove_all(dir_);
      CrashPlan plan;
      plan.crash_at_op = crash_at;
      plan.mode = mode;
      plan.seed = 23 + crash_at;
      FaultFs fs(RealFilesystem(), plan);
      RunWorkload(Dir(), &fs);
      ASSERT_TRUE(fs.crashed()) << "op " << crash_at << " never executed";
      const std::string context = std::string(CrashModeName(mode)) +
                                  " @ op " + std::to_string(crash_at);

      ViewCatalog catalog;
      auto recovered = Recover(&catalog);
      ASSERT_TRUE(recovered.ok())
          << context << ": " << recovered.status().ToString();
      ExpectViewsEqualRebuild(recovered->warehouse, catalog, context);
    }
  }
}

/// A recovery opened WITHOUT views must stay view-free (no hook installed),
/// and one whose catalog holds an unresolvable definition must fail loudly
/// instead of serving stale answers.
TEST_F(ViewRecoveryTest, RecoveryWithoutViewsAndWithBadViewsBehave) {
  FaultFs fs(RealFilesystem());
  RunWorkload(Dir(), &fs);

  auto plain = Recover(nullptr);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->warehouse.views(), nullptr);

  ViewCatalog bad;
  ViewDefinition ghost;
  ghost.name = "ghost";
  ghost.fact = "NoSuchFact";
  ghost.group_by = {{"location", "City"}};
  ASSERT_TRUE(bad.Define(ghost).ok());
  RecoveryOptions options;
  options.bootstrap_schema = integration::LastMinuteSales::MakeSchema();
  options.views = &bad;
  EXPECT_FALSE(Recovery::Open(Dir(), options).ok());
}

}  // namespace
}  // namespace dw
}  // namespace dwqa
