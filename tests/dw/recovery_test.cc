#include "dw/recovery.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "dw/etl.h"
#include "integration/last_minute_sales.h"

namespace dwqa {
namespace dw {
namespace {

namespace stdfs = std::filesystem;

WalFact MakeFact(int day, const std::string& city = "Barcelona",
                 double value = 8.0) {
  char date[11];
  std::snprintf(date, sizeof(date), "2004-01-%02d", day);
  WalFact fact;
  fact.fact_name = "Weather";
  fact.attribute = "temperature";
  fact.value = value;
  fact.unit = "\xC2\xBA\x43";
  fact.date_iso = date;
  fact.location = city;
  fact.url = "http://weather.example/" + city;
  fact.confidence = 0.9;
  fact.dedup_key = "temperature|" + city + "|" + date;
  fact.record.role_paths = {
      {city}, DateMemberPath(Date::FromIsoString(date).ValueOrDie()),
      {fact.url}};
  fact.record.measures = {Value(value)};
  return fact;
}

size_t WeatherRows(const Warehouse& wh) {
  return wh.FactRowCount("Weather").ValueOrDie();
}

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = stdfs::path(::testing::TempDir()) / (std::string("dwqa_recovery_test.") + std::to_string(::getpid()));
    stdfs::remove_all(dir_);
    options_.bootstrap_schema = integration::LastMinuteSales::MakeSchema();
  }
  void TearDown() override { stdfs::remove_all(dir_); }

  std::string Dir() const { return dir_.string(); }

  /// Appends `facts` to the WAL, mirroring them into `wh` the way the live
  /// feed does (WAL first, then ETL).
  void Feed(WalWriter* wal, Warehouse* wh,
            const std::vector<WalFact>& facts) {
    EtlLoader loader(wh);
    for (const WalFact& fact : facts) {
      ASSERT_TRUE(wal->AppendFact(fact).ok());
      ASSERT_TRUE(loader.LoadRecord(fact.fact_name, fact.record).ok());
    }
  }

  stdfs::path dir_;
  RecoveryOptions options_;
};

TEST_F(RecoveryTest, ColdStartReplaysTheFullWal) {
  {
    auto wal = WalWriter::Open(Dir()).ValueOrDie();
    Warehouse wh =
        integration::LastMinuteSales::MakeWarehouse().ValueOrDie();
    Feed(wal.get(), &wh, {MakeFact(1), MakeFact(2), MakeFact(3)});
  }
  RecoveredWarehouse recovered =
      Recovery::Open(Dir(), options_).ValueOrDie();
  EXPECT_EQ(recovered.snapshot_lsn, 0u);
  EXPECT_EQ(recovered.last_lsn, 3u);
  EXPECT_EQ(recovered.replayed, 3u);
  EXPECT_EQ(WeatherRows(recovered.warehouse), 3u);
  EXPECT_TRUE(recovered.quarantine.empty());

  FsckReport fsck = Fsck(Dir()).ValueOrDie();
  EXPECT_TRUE(fsck.clean())
      << (fsck.issues.empty() ? "" : fsck.issues[0]);
  EXPECT_EQ(fsck.wal_last_lsn, 3u);
  EXPECT_EQ(fsck.wal_records, 3u);
}

TEST_F(RecoveryTest, SnapshotPlusTailReplay) {
  {
    auto wal = WalWriter::Open(Dir()).ValueOrDie();
    Warehouse wh =
        integration::LastMinuteSales::MakeWarehouse().ValueOrDie();
    Feed(wal.get(), &wh, {MakeFact(1), MakeFact(2)});
    ASSERT_TRUE(
        SnapshotWriter::Write(Dir(), wh, wal->last_lsn()).ok());
    Feed(wal.get(), &wh, {MakeFact(3), MakeFact(4)});
  }
  RecoveredWarehouse recovered =
      Recovery::Open(Dir(), options_).ValueOrDie();
  EXPECT_EQ(recovered.snapshot_lsn, 2u);
  EXPECT_EQ(recovered.last_lsn, 4u);
  // Records 1–2 are covered by the snapshot (idempotent replay skips
  // them); only the tail is applied.
  EXPECT_EQ(recovered.replayed, 2u);
  EXPECT_EQ(recovered.skipped_covered, 2u);
  EXPECT_EQ(WeatherRows(recovered.warehouse), 4u);
  EXPECT_TRUE(Fsck(Dir()).ValueOrDie().clean());
}

TEST_F(RecoveryTest, RecoveryIsIdempotent) {
  {
    auto wal = WalWriter::Open(Dir()).ValueOrDie();
    Warehouse wh =
        integration::LastMinuteSales::MakeWarehouse().ValueOrDie();
    Feed(wal.get(), &wh, {MakeFact(1), MakeFact(2)});
  }
  auto first = Recovery::Open(Dir(), options_).ValueOrDie();
  auto second = Recovery::Open(Dir(), options_).ValueOrDie();
  EXPECT_EQ(WeatherRows(first.warehouse), WeatherRows(second.warehouse));
  EXPECT_EQ(first.last_lsn, second.last_lsn);
}

TEST_F(RecoveryTest, TornTailIsTruncatedAndReported) {
  std::string segment;
  {
    auto wal = WalWriter::Open(Dir()).ValueOrDie();
    Warehouse wh =
        integration::LastMinuteSales::MakeWarehouse().ValueOrDie();
    Feed(wal.get(), &wh, {MakeFact(1), MakeFact(2)});
    segment = wal->current_segment_path();
  }
  {
    std::ofstream out(segment, std::ios::app | std::ios::binary);
    out << "rec\t3\t500\tdeadbeef\nonly half a payl";
  }
  RecoveredWarehouse recovered =
      Recovery::Open(Dir(), options_).ValueOrDie();
  EXPECT_GT(recovered.torn_bytes_truncated, 0u);
  EXPECT_EQ(recovered.last_lsn, 2u);
  EXPECT_EQ(WeatherRows(recovered.warehouse), 2u);
  ASSERT_FALSE(recovered.issues.empty());
  // After truncation the directory fsck-checks clean again.
  EXPECT_TRUE(Fsck(Dir()).ValueOrDie().clean());
}

TEST_F(RecoveryTest, BitFlippedRecordIsQuarantinedNotLoaded) {
  std::string segment;
  {
    auto wal = WalWriter::Open(Dir()).ValueOrDie();
    Warehouse wh =
        integration::LastMinuteSales::MakeWarehouse().ValueOrDie();
    Feed(wal.get(), &wh,
         {MakeFact(1), MakeFact(2, "Madrid"), MakeFact(3)});
    segment = wal->current_segment_path();
  }
  // Flip a byte inside the second record's payload (its city name).
  std::ifstream in(segment, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  size_t at = content.find("Madrid");
  ASSERT_NE(at, std::string::npos);
  content[at] ^= 0x04;
  {
    std::ofstream out(segment, std::ios::binary | std::ios::trunc);
    out << content;
  }
  RecoveredWarehouse recovered =
      Recovery::Open(Dir(), options_).ValueOrDie();
  EXPECT_EQ(recovered.corrupt_records, 1u);
  EXPECT_EQ(recovered.replayed, 2u);
  EXPECT_EQ(WeatherRows(recovered.warehouse), 2u);
  ASSERT_EQ(recovered.quarantine.size(), 1u);
  EXPECT_EQ(recovered.quarantine.records()[0].reason, "WalCorrupt");
  // Fsck flags the corruption (it is detection, not silent repair).
  EXPECT_FALSE(Fsck(Dir()).ValueOrDie().clean());
}

TEST_F(RecoveryTest, ValidatorRejectsLandInQuarantine) {
  {
    auto wal = WalWriter::Open(Dir()).ValueOrDie();
    Warehouse wh =
        integration::LastMinuteSales::MakeWarehouse().ValueOrDie();
    Feed(wal.get(), &wh,
         {MakeFact(1, "Barcelona", 8.0), MakeFact(2, "Madrid", 888.0)});
  }
  options_.validate = [](const WalFact& fact) -> std::string {
    return fact.value > 60.0 ? "ValueOutOfRange" : "";
  };
  RecoveredWarehouse recovered =
      Recovery::Open(Dir(), options_).ValueOrDie();
  EXPECT_EQ(recovered.replayed, 1u);
  EXPECT_EQ(WeatherRows(recovered.warehouse), 1u);
  ASSERT_EQ(recovered.quarantine.size(), 1u);
  EXPECT_EQ(recovered.quarantine.records()[0].reason, "ValueOutOfRange");
  EXPECT_EQ(recovered.quarantine.records()[0].location, "Madrid");
}

TEST_F(RecoveryTest, CorruptNewestSnapshotFallsBackToOlder) {
  {
    auto wal = WalWriter::Open(Dir()).ValueOrDie();
    Warehouse wh =
        integration::LastMinuteSales::MakeWarehouse().ValueOrDie();
    Feed(wal.get(), &wh, {MakeFact(1), MakeFact(2)});
    ASSERT_TRUE(SnapshotWriter::Write(Dir(), wh, 2).ok());
    Feed(wal.get(), &wh, {MakeFact(3), MakeFact(4)});
    ASSERT_TRUE(SnapshotWriter::Write(Dir(), wh, 4).ok());
  }
  // Rot the newest snapshot; the older one plus the retained WAL tail
  // must still reconstruct the full state.
  {
    std::ofstream out(Dir() + "/snap-00000000000000000004/schema.txt",
                      std::ios::trunc);
    out << "rotten";
  }
  RecoveredWarehouse recovered =
      Recovery::Open(Dir(), options_).ValueOrDie();
  EXPECT_EQ(recovered.snapshot_lsn, 2u);
  EXPECT_EQ(recovered.replayed, 2u);
  EXPECT_EQ(WeatherRows(recovered.warehouse), 4u);
  bool mentioned_fallback = false;
  for (const std::string& issue : recovered.issues) {
    if (issue.find("falling back") != std::string::npos) {
      mentioned_fallback = true;
    }
  }
  EXPECT_TRUE(mentioned_fallback);
}

TEST_F(RecoveryTest, UncommittedTmpSnapshotIsSwept) {
  {
    auto wal = WalWriter::Open(Dir()).ValueOrDie();
    Warehouse wh =
        integration::LastMinuteSales::MakeWarehouse().ValueOrDie();
    Feed(wal.get(), &wh, {MakeFact(1)});
  }
  stdfs::create_directories(dir_ / "snap-00000000000000000005.tmp");
  RecoveredWarehouse recovered =
      Recovery::Open(Dir(), options_).ValueOrDie();
  EXPECT_FALSE(stdfs::exists(dir_ / "snap-00000000000000000005.tmp"));
  EXPECT_EQ(WeatherRows(recovered.warehouse), 1u);
}

TEST_F(RecoveryTest, NoSnapshotAndNoBootstrapFails) {
  RecoveryOptions bare;
  auto recovered = Recovery::Open(Dir(), bare);
  ASSERT_FALSE(recovered.ok());
  EXPECT_TRUE(recovered.status().IsNotFound());
}

TEST_F(RecoveryTest, FsckFlagsUnrecoverableGapAfterLostSegments) {
  {
    WalOptions options;
    options.segment_bytes = 1;  // One record per segment.
    auto wal = WalWriter::Open(Dir(), options).ValueOrDie();
    Warehouse wh =
        integration::LastMinuteSales::MakeWarehouse().ValueOrDie();
    Feed(wal.get(), &wh, {MakeFact(1), MakeFact(2), MakeFact(3)});
    // Dropping segments without a covering snapshot loses records 1–2.
    ASSERT_GT(wal->DropSegmentsCoveredBy(2).ValueOrDie(), 0u);
  }
  FsckReport fsck = Fsck(Dir()).ValueOrDie();
  ASSERT_FALSE(fsck.clean());
  bool flagged = false;
  for (const std::string& issue : fsck.issues) {
    if (issue.find("unrecoverable") != std::string::npos) flagged = true;
  }
  EXPECT_TRUE(flagged);
}

TEST_F(RecoveryTest, FsckFlagsStaleCheckpointLsn) {
  {
    auto wal = WalWriter::Open(Dir()).ValueOrDie();
    Warehouse wh =
        integration::LastMinuteSales::MakeWarehouse().ValueOrDie();
    Feed(wal.get(), &wh, {MakeFact(1), MakeFact(2)});
  }
  FsckOptions options;
  options.has_checkpoint_lsn = true;
  options.checkpoint_lsn = 2;  // Exactly the durable LSN: fine.
  EXPECT_TRUE(Fsck(Dir(), options).ValueOrDie().clean());
  options.checkpoint_lsn = 99;  // Claims progress the log never saw.
  FsckReport fsck = Fsck(Dir(), options).ValueOrDie();
  ASSERT_FALSE(fsck.clean());
  EXPECT_NE(fsck.issues.back().find("stale or foreign checkpoint"),
            std::string::npos);
}

TEST_F(RecoveryTest, EtlRejectedReplayGoesToQuarantine) {
  {
    auto wal = WalWriter::Open(Dir()).ValueOrDie();
    WalFact broken = MakeFact(1);
    broken.record.measures.clear();  // Weather needs one measure.
    ASSERT_TRUE(wal->AppendFact(broken).ok());
    ASSERT_TRUE(wal->AppendFact(MakeFact(2)).ok());
  }
  RecoveredWarehouse recovered =
      Recovery::Open(Dir(), options_).ValueOrDie();
  EXPECT_EQ(recovered.replayed, 1u);
  EXPECT_EQ(WeatherRows(recovered.warehouse), 1u);
  ASSERT_EQ(recovered.quarantine.size(), 1u);
  EXPECT_EQ(recovered.quarantine.records()[0].reason, "EtlRejected");
}

}  // namespace
}  // namespace dw
}  // namespace dwqa
