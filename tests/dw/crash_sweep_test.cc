#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/io.h"
#include "dw/etl.h"
#include "dw/recovery.h"
#include "integration/feed_checkpoint.h"
#include "integration/last_minute_sales.h"

namespace dwqa {
namespace dw {
namespace {

namespace stdfs = std::filesystem;

/// The committed-state oracle: every (city, date) the workload *acknowledged*
/// — a WAL append that returned OK — must be present after recovery, in
/// workload order.
struct WorkloadResult {
  std::vector<std::string> committed_keys;  ///< Acknowledged, in order.
  size_t ops = 0;                           ///< Mutating fs ops attempted.
  std::vector<std::string> op_log;
};

WalFact MakeFact(int day, const std::string& city) {
  char date[11];
  std::snprintf(date, sizeof(date), "2004-01-%02d", day);
  WalFact fact;
  fact.fact_name = "Weather";
  fact.attribute = "temperature";
  fact.value = 5.0 + day;
  fact.unit = "\xC2\xBA\x43";
  fact.date_iso = date;
  fact.location = city;
  fact.url = "http://weather.example/" + city;
  fact.confidence = 0.9;
  fact.dedup_key = "temperature|" + city + "|" + date;
  fact.record.role_paths = {
      {city}, DateMemberPath(Date::FromIsoString(date).ValueOrDie()),
      {fact.url}};
  fact.record.measures = {Value(fact.value)};
  return fact;
}

std::string FactKey(const WalFact& fact) {
  return fact.location + "|" + fact.date_iso;
}

/// The recovered-state projection comparable against the oracle.
std::multiset<std::string> WarehouseKeys(const Warehouse& wh) {
  const Table* table = wh.FactTable("Weather").ValueOrDie();
  size_t loc = table->ColumnIndex("fk_location").ValueOrDie();
  size_t day = table->ColumnIndex("fk_day").ValueOrDie();
  std::multiset<std::string> keys;
  for (size_t r = 0; r < table->row_count(); ++r) {
    std::string city =
        wh.MemberLevelValue("City", MemberId(table->Get(r, loc).as_int()),
                            "City")
            .ValueOrDie();
    std::string date =
        wh.MemberLevelValue("Date", MemberId(table->Get(r, day).as_int()),
                            "Date")
            .ValueOrDie();
    keys.insert(city + "|" + date);
  }
  return keys;
}

/// One full durability workload against `fs`: open the WAL, feed facts,
/// snapshot mid-way (dropping covered segments), feed more facts across a
/// segment rotation, save a checkpoint. Exercises every crash-point family
/// the issue names: WAL append, segment rotate, snapshot temp write,
/// manifest write, rename, checkpoint save.
WorkloadResult RunWorkload(const std::string& dir, FaultFs* fs) {
  WorkloadResult result;
  auto record_ops = [&]() {
    result.ops = fs->op_count();
    result.op_log = fs->op_log();
  };
  WalOptions options;
  options.segment_bytes = 256;  // Small enough to force a rotation.
  auto wal = WalWriter::Open(dir, options, fs);
  if (!wal.ok()) {
    record_ops();
    return result;
  }
  Warehouse wh = integration::LastMinuteSales::MakeWarehouse().ValueOrDie();
  EtlLoader loader(&wh);
  const std::vector<std::string> cities = {"Barcelona", "Madrid"};
  auto feed = [&](int from, int to) -> bool {
    for (int day = from; day <= to; ++day) {
      WalFact fact = MakeFact(day, cities[size_t(day) % cities.size()]);
      auto appended = (*wal)->AppendFact(fact);
      if (!appended.ok()) return false;
      // Acknowledged: the fact is committed whatever happens next.
      result.committed_keys.push_back(FactKey(fact));
      if (!loader.LoadRecord(fact.fact_name, fact.record).ok()) {
        return false;
      }
    }
    return true;
  };
  if (!feed(1, 4)) {
    record_ops();
    return result;
  }
  // Mid-run flush: snapshot + WAL garbage collection.
  if (SnapshotWriter::Write(dir, wh, (*wal)->last_lsn(), fs).ok()) {
    (void)(*wal)->DropSegmentsCoveredBy((*wal)->last_lsn());
  }
  if (!feed(5, 8)) {
    record_ops();
    return result;
  }
  integration::FeedCheckpoint checkpoint;
  checkpoint.rows_loaded = result.committed_keys.size();
  checkpoint.wal_lsn = (*wal)->last_lsn();
  (void)integration::FeedCheckpointFile::Save(checkpoint,
                                              dir + "/feed.ckpt", fs);
  record_ops();
  return result;
}

class CrashSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = stdfs::path(::testing::TempDir()) / (std::string("dwqa_crash_sweep.") + std::to_string(::getpid()));
    stdfs::remove_all(dir_);
  }
  void TearDown() override { stdfs::remove_all(dir_); }

  std::string Dir() const { return dir_.string(); }

  stdfs::path dir_;
};

/// The tentpole assertion: for EVERY mutating-fs-operation index and for
/// both kStop and kTornWrite crash modes, recovery after the crash yields
/// exactly the committed prefix of the workload — never a lost
/// acknowledged fact, never a phantom beyond the one unacknowledged
/// append a crash-during-sync can leave fully on disk.
TEST_F(CrashSweepTest, EveryCrashPointRecoversTheCommittedState) {
  // Recorder pass: enumerate the ops of a crash-free run.
  FaultFs recorder(RealFilesystem());
  WorkloadResult full = RunWorkload(Dir(), &recorder);
  ASSERT_GT(full.ops, 20u) << "workload too small to be a real sweep";
  ASSERT_EQ(full.committed_keys.size(), 8u);

  for (CrashMode mode : {CrashMode::kStop, CrashMode::kTornWrite}) {
    for (size_t crash_at = 0; crash_at < full.ops; ++crash_at) {
      stdfs::remove_all(dir_);
      CrashPlan plan;
      plan.crash_at_op = crash_at;
      plan.mode = mode;
      plan.seed = 17 + crash_at;
      FaultFs fs(RealFilesystem(), plan);
      WorkloadResult crashed = RunWorkload(Dir(), &fs);
      ASSERT_TRUE(fs.crashed())
          << "op " << crash_at << " never executed";
      const std::string context =
          std::string(CrashModeName(mode)) + " @ op " +
          std::to_string(crash_at) + " (" + fs.op_log()[crash_at] + ")";

      // Recover through the REAL filesystem: the crash is over, the
      // surviving bytes are what a restarted process would see.
      RecoveryOptions options;
      options.bootstrap_schema =
          integration::LastMinuteSales::MakeSchema();
      auto recovered = Recovery::Open(Dir(), options);
      ASSERT_TRUE(recovered.ok())
          << context << ": " << recovered.status().ToString();

      // The recovered fact set must be the committed prefix — with one
      // exception: a crash during the *sync* of an append that already
      // landed fully leaves a durable, unacknowledged record. Recovery
      // may legitimately surface it (committed + 1), never more.
      std::multiset<std::string> keys =
          WarehouseKeys(recovered->warehouse);
      size_t committed = crashed.committed_keys.size();
      ASSERT_GE(keys.size(), committed) << context << ": lost a committed fact";
      ASSERT_LE(keys.size(), committed + 1) << context << ": phantom facts";
      const std::string& crash_op = crashed.op_log[crash_at];
      if (keys.size() == committed + 1) {
        ASSERT_EQ(crash_op.substr(0, 5), "sync:")
            << context << ": extra fact without a crashed sync";
      }
      // Byte-identical prefix: every committed key is present.
      std::multiset<std::string> expected(
          crashed.committed_keys.begin(), crashed.committed_keys.end());
      if (keys.size() == committed + 1) {
        expected.insert(full.committed_keys[committed]);
      }
      ASSERT_EQ(keys, expected) << context;

      // After recovery truncated/cleaned, the directory must fsck clean.
      FsckOptions fsck_options;
      auto checkpoint =
          integration::FeedCheckpointFile::Load(Dir() + "/feed.ckpt");
      if (checkpoint.ok()) {
        fsck_options.has_checkpoint_lsn = true;
        fsck_options.checkpoint_lsn = checkpoint->wal_lsn;
      }
      FsckReport fsck = Fsck(Dir(), fsck_options).ValueOrDie();
      EXPECT_TRUE(fsck.clean())
          << context << ": "
          << (fsck.issues.empty() ? "" : fsck.issues[0]);
    }
  }
}

/// kBitFlip is about detection, not clean recovery: a flipped bit in a
/// committed WAL record must be caught by the CRC and quarantined, never
/// silently loaded.
TEST_F(CrashSweepTest, BitFlipDuringAppendIsCaughtByTheCrc) {
  // Find an append op to flip by recording a clean run first.
  FaultFs recorder(RealFilesystem());
  WorkloadResult full = RunWorkload(Dir(), &recorder);
  size_t append_op = full.ops;
  for (size_t i = 0; i < full.op_log.size(); ++i) {
    if (full.op_log[i].substr(0, 7) == "append:" &&
        full.op_log[i].find("wal-") != std::string::npos) {
      append_op = i;  // Keep the LAST WAL append: a committed-record flip.
    }
  }
  ASSERT_LT(append_op, full.ops);

  stdfs::remove_all(dir_);
  CrashPlan plan;
  plan.crash_at_op = append_op;
  plan.mode = CrashMode::kBitFlip;
  FaultFs fs(RealFilesystem(), plan);
  WorkloadResult crashed = RunWorkload(Dir(), &fs);
  ASSERT_TRUE(fs.crashed());

  RecoveryOptions options;
  options.bootstrap_schema = integration::LastMinuteSales::MakeSchema();
  auto recovered = Recovery::Open(Dir(), options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  // The flipped record is either inside the framing (CRC catches it →
  // quarantined) or tore the framing (truncated). Either way it must not
  // be loaded as a fact, and nothing committed before it may be lost.
  std::multiset<std::string> keys = WarehouseKeys(recovered->warehouse);
  EXPECT_EQ(keys.size(), crashed.committed_keys.size());
  EXPECT_TRUE(recovered->corrupt_records > 0 ||
              recovered->torn_bytes_truncated > 0)
      << "the flip vanished: neither quarantined nor truncated";
}

/// A bit flip inside a committed snapshot file must fail manifest
/// verification and make recovery fall back (to an older snapshot or the
/// WAL), not load rotten data.
TEST_F(CrashSweepTest, BitFlippedSnapshotFileIsRejectedByTheManifest) {
  FaultFs recorder(RealFilesystem());
  WorkloadResult full = RunWorkload(Dir(), &recorder);
  ASSERT_EQ(full.committed_keys.size(), 8u);

  // Corrupt one byte of one data file inside the committed snapshot.
  std::string snapshot;
  for (const auto& entry : stdfs::directory_iterator(dir_)) {
    if (entry.is_directory() &&
        entry.path().filename().string().rfind("snap-", 0) == 0) {
      snapshot = entry.path().string();
    }
  }
  ASSERT_FALSE(snapshot.empty());
  std::string target = snapshot + "/fact_Weather.csv";
  std::string content =
      RealFilesystem()->ReadFile(target).ValueOrDie();
  ASSERT_FALSE(content.empty());
  content[content.size() / 3] ^= 0x10;
  ASSERT_TRUE(RealFilesystem()->WriteFile(target, content).ok());

  EXPECT_FALSE(VerifySnapshot(snapshot).ok());
  RecoveryOptions options;
  options.bootstrap_schema = integration::LastMinuteSales::MakeSchema();
  auto recovered = Recovery::Open(Dir(), options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  // The snapshot is distrusted wholesale; whatever the WAL still holds is
  // replayed instead. Garbage collection dropped only *fully* covered
  // segments, so recovery yields at least every post-snapshot fact, at
  // most the full committed set, and never invents rows — and the
  // fallback is reported, not silent.
  std::multiset<std::string> keys = WarehouseKeys(recovered->warehouse);
  std::multiset<std::string> tail(full.committed_keys.begin() + 4,
                                  full.committed_keys.end());
  std::multiset<std::string> all(full.committed_keys.begin(),
                                 full.committed_keys.end());
  EXPECT_TRUE(std::includes(keys.begin(), keys.end(), tail.begin(),
                            tail.end()))
      << "a post-snapshot committed fact was lost";
  EXPECT_TRUE(std::includes(all.begin(), all.end(), keys.begin(),
                            keys.end()))
      << "recovery invented a fact";
  EXPECT_FALSE(recovered->issues.empty());
}

}  // namespace
}  // namespace dw
}  // namespace dwqa
