#include "dw/query_parser.h"

#include <gtest/gtest.h>

#include "integration/last_minute_sales.h"
#include "web/weather_model.h"

namespace dwqa {
namespace dw {
namespace {

TEST(QueryParserTest, MinimalQuery) {
  auto q = QueryParser::Parse("SELECT SUM(Tickets) FROM LastMinuteSales");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->fact, "LastMinuteSales");
  ASSERT_EQ(q->measures.size(), 1u);
  EXPECT_EQ(q->measures[0].measure, "Tickets");
  EXPECT_EQ(q->measures[0].agg, AggFn::kSum);
  EXPECT_TRUE(q->group_by.empty());
  EXPECT_TRUE(q->filters.empty());
}

TEST(QueryParserTest, FullQuery) {
  auto q = QueryParser::Parse(
      "SELECT AVG(Price), SUM(Tickets) FROM LastMinuteSales "
      "BY destination.Country, date.Year "
      "WHERE destination.Country IN (Spain, France) AND date.Year = 2004");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->measures.size(), 2u);
  EXPECT_EQ(q->measures[0].agg, AggFn::kAvg);
  ASSERT_EQ(q->group_by.size(), 2u);
  EXPECT_EQ(q->group_by[0].role, "destination");
  EXPECT_EQ(q->group_by[0].level, "Country");
  ASSERT_EQ(q->filters.size(), 2u);
  EXPECT_EQ(q->filters[0].values,
            (std::vector<std::string>{"Spain", "France"}));
  EXPECT_EQ(q->filters[1].values, (std::vector<std::string>{"2004"}));
}

TEST(QueryParserTest, KeywordsCaseInsensitive) {
  auto q = QueryParser::Parse(
      "select min(Price) from Sales by dest.City where dest.City = Madrid");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->measures[0].agg, AggFn::kMin);
}

TEST(QueryParserTest, QuotedIdentifiersAllowSpaces) {
  auto q = QueryParser::Parse(
      "SELECT COUNT(Price) FROM \"Last Minute Sales\" "
      "BY destination.City WHERE destination.City = \"New York\"");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->fact, "Last Minute Sales");
  EXPECT_EQ(q->filters[0].values[0], "New York");
}

TEST(QueryParserTest, DateLikeValuesLex) {
  auto q = QueryParser::Parse(
      "SELECT AVG(TemperatureC) FROM Weather BY location.City "
      "WHERE day.Month = 2004-01");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->filters[0].values[0], "2004-01");
}

TEST(QueryParserTest, AllAggregationFunctions) {
  auto q = QueryParser::Parse(
      "SELECT SUM(a), COUNT(a), AVG(a), MIN(a), MAX(a) FROM f");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->measures.size(), 5u);
  EXPECT_EQ(q->measures[4].agg, AggFn::kMax);
}

TEST(QueryParserTest, SyntaxErrors) {
  EXPECT_FALSE(QueryParser::Parse("").ok());
  EXPECT_FALSE(QueryParser::Parse("FROM Sales").ok());
  EXPECT_FALSE(QueryParser::Parse("SELECT FROM Sales").ok());
  EXPECT_FALSE(QueryParser::Parse("SELECT ZAP(x) FROM Sales").ok());
  EXPECT_FALSE(QueryParser::Parse("SELECT SUM(x FROM Sales").ok());
  EXPECT_FALSE(QueryParser::Parse("SELECT SUM(x)").ok());
  EXPECT_FALSE(QueryParser::Parse("SELECT SUM(x) FROM Sales BY role").ok());
  EXPECT_FALSE(
      QueryParser::Parse("SELECT SUM(x) FROM Sales WHERE a.b").ok());
  EXPECT_FALSE(
      QueryParser::Parse("SELECT SUM(x) FROM Sales trailing junk").ok());
  EXPECT_FALSE(
      QueryParser::Parse("SELECT SUM(x) FROM Sales WHERE a.b IN ()").ok());
}

TEST(QueryParserTest, ParsedQueryExecutes) {
  // End-to-end: a parsed query runs on a real warehouse and matches the
  // programmatic equivalent.
  Warehouse wh =
      integration::LastMinuteSales::MakeWarehouse().ValueOrDie();
  web::WeatherModel weather(42);
  ASSERT_TRUE(integration::LastMinuteSales::GenerateSales(
                  &wh, weather, Date(2004, 1, 1), 60)
                  .ok());
  OlapEngine engine(&wh);

  auto parsed = QueryParser::Parse(
      "SELECT SUM(Tickets) FROM LastMinuteSales BY destination.Country "
      "WHERE destination.Country = Spain");
  ASSERT_TRUE(parsed.ok());
  OlapResult from_text = engine.Execute(*parsed).ValueOrDie();

  OlapQuery manual;
  manual.fact = "LastMinuteSales";
  manual.measures = {{"Tickets", AggFn::kSum}};
  manual.group_by = {{"destination", "Country"}};
  manual.filters = {{"destination", "Country", {"Spain"}}};
  OlapResult from_code = engine.Execute(manual).ValueOrDie();

  ASSERT_EQ(from_text.rows.size(), from_code.rows.size());
  EXPECT_EQ(from_text.rows[0][1].ToDouble(),
            from_code.rows[0][1].ToDouble());
}

TEST(QueryParserTest, HavingClause) {
  auto q = QueryParser::Parse(
      "SELECT SUM(Tickets), AVG(Price) FROM LastMinuteSales "
      "BY destination.City "
      "HAVING SUM(Tickets) >= 100 AND AVG(Price) < 200");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->having.size(), 2u);
  EXPECT_EQ(q->having[0].measure_index, 0u);
  EXPECT_EQ(q->having[0].op, CompareOp::kGreaterEqual);
  EXPECT_DOUBLE_EQ(q->having[0].value, 100.0);
  EXPECT_EQ(q->having[1].measure_index, 1u);
  EXPECT_EQ(q->having[1].op, CompareOp::kLess);
}

TEST(QueryParserTest, HavingMustReferenceSelectedAggregation) {
  EXPECT_FALSE(QueryParser::Parse(
                   "SELECT SUM(Tickets) FROM Sales HAVING AVG(Price) > 1")
                   .ok());
  EXPECT_FALSE(QueryParser::Parse(
                   "SELECT SUM(Tickets) FROM Sales HAVING SUM(Tickets) > x")
                   .ok());
}

TEST(QueryParserTest, HavingExecutes) {
  Warehouse wh =
      integration::LastMinuteSales::MakeWarehouse().ValueOrDie();
  web::WeatherModel weather(42);
  ASSERT_TRUE(integration::LastMinuteSales::GenerateSales(
                  &wh, weather, Date(2004, 1, 1), 60)
                  .ok());
  OlapEngine engine(&wh);
  auto all = engine.Execute(*QueryParser::Parse(
                 "SELECT SUM(Tickets) FROM LastMinuteSales "
                 "BY destination.City"))
                 .ValueOrDie();
  auto filtered =
      engine.Execute(*QueryParser::Parse(
                "SELECT SUM(Tickets) FROM LastMinuteSales "
                "BY destination.City HAVING SUM(Tickets) > 250"))
          .ValueOrDie();
  EXPECT_LT(filtered.rows.size(), all.rows.size());
  for (const auto& row : filtered.rows) {
    EXPECT_GT(row[1].ToDouble(), 250.0);
  }
}

}  // namespace
}  // namespace dw
}  // namespace dwqa
