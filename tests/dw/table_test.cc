#include "dw/table.h"

#include <gtest/gtest.h>

namespace dwqa {
namespace dw {
namespace {

Table MakeTable() {
  return Table("t", {{"name", ColumnType::kString},
                     {"count", ColumnType::kInt64},
                     {"score", ColumnType::kDouble},
                     {"day", ColumnType::kDate}});
}

TEST(ColumnTest, TypedAppendAndGet) {
  Column c("x", ColumnType::kDouble);
  ASSERT_TRUE(c.Append(Value(1.5)).ok());
  ASSERT_TRUE(c.Append(Value(2)).ok());  // Int coerces into double column.
  EXPECT_DOUBLE_EQ(c.Get(0).as_double(), 1.5);
  EXPECT_DOUBLE_EQ(c.Get(1).as_double(), 2.0);
  EXPECT_DOUBLE_EQ(c.GetDouble(1), 2.0);
}

TEST(ColumnTest, TypeMismatchRejected) {
  Column c("x", ColumnType::kInt64);
  EXPECT_TRUE(c.Append(Value("nope")).IsInvalidArgument());
  EXPECT_TRUE(c.Append(Value(1.5)).IsInvalidArgument());
  EXPECT_EQ(c.size(), 0u);
}

TEST(ColumnTest, NullsTracked) {
  Column c("x", ColumnType::kString);
  ASSERT_TRUE(c.Append(Value()).ok());
  ASSERT_TRUE(c.Append(Value("a")).ok());
  EXPECT_TRUE(c.Get(0).is_null());
  EXPECT_EQ(c.Get(1).as_string(), "a");
  EXPECT_DOUBLE_EQ(c.GetDouble(0), 0.0);
}

TEST(ColumnTest, OutOfRangeRowIsNull) {
  Column c("x", ColumnType::kInt64);
  EXPECT_TRUE(c.Get(99).is_null());
}

TEST(TableTest, AppendRowAndGet) {
  Table t = MakeTable();
  ASSERT_TRUE(t.AppendRow({Value("a"), Value(1), Value(0.5),
                           Value(Date(2004, 1, 1))})
                  .ok());
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_EQ(t.Get(0, 0).as_string(), "a");
  EXPECT_EQ(t.Get(0, 1).as_int(), 1);
}

TEST(TableTest, ArityMismatchRejected) {
  Table t = MakeTable();
  EXPECT_TRUE(t.AppendRow({Value("a")}).IsInvalidArgument());
  EXPECT_EQ(t.row_count(), 0u);
}

TEST(TableTest, TypeMismatchLeavesNoPartialRow) {
  Table t = MakeTable();
  // Third column expects double; give it a string — nothing is appended,
  // including to the columns before it.
  EXPECT_FALSE(
      t.AppendRow({Value("a"), Value(1), Value("bad"), Value()}).ok());
  EXPECT_EQ(t.row_count(), 0u);
  EXPECT_EQ(t.column(0).size(), 0u);
  EXPECT_EQ(t.column(1).size(), 0u);
}

TEST(TableTest, NullsAllowedAnywhere) {
  Table t = MakeTable();
  ASSERT_TRUE(t.AppendRow({Value(), Value(), Value(), Value()}).ok());
  for (size_t c = 0; c < t.column_count(); ++c) {
    EXPECT_TRUE(t.Get(0, c).is_null());
  }
}

TEST(TableTest, ColumnIndexLookup) {
  Table t = MakeTable();
  EXPECT_EQ(t.ColumnIndex("score").ValueOrDie(), 2u);
  EXPECT_TRUE(t.ColumnIndex("missing").status().IsNotFound());
}

TEST(TableTest, DisplayStringTruncates) {
  Table t("t", {{"n", ColumnType::kInt64}});
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.AppendRow({Value(i)}).ok());
  }
  std::string out = t.ToDisplayString(3);
  EXPECT_NE(out.find("7 more rows"), std::string::npos);
}

}  // namespace
}  // namespace dw
}  // namespace dwqa
