#include "dw/schema.h"

#include <gtest/gtest.h>

namespace dwqa {
namespace dw {
namespace {

MdSchema SmallSchema() {
  MdSchema s;
  EXPECT_TRUE(
      s.AddDimension({"Geo", {{"Airport"}, {"City"}, {"Country"}}}).ok());
  EXPECT_TRUE(s.AddDimension({"Date", {{"Date"}, {"Year"}}}).ok());
  FactDef f;
  f.name = "Sales";
  f.measures = {{"Price", ColumnType::kDouble, AggFn::kSum}};
  f.roles = {{"dest", "Geo"}, {"when", "Date"}};
  EXPECT_TRUE(s.AddFact(std::move(f)).ok());
  return s;
}

TEST(SchemaTest, FindDimensionCaseInsensitive) {
  MdSchema s = SmallSchema();
  EXPECT_TRUE(s.FindDimension("geo").ok());
  EXPECT_TRUE(s.FindDimension("GEO").ok());
  EXPECT_TRUE(s.FindDimension("nope").status().IsNotFound());
}

TEST(SchemaTest, LevelIndexOrder) {
  MdSchema s = SmallSchema();
  const DimensionDef* geo = s.FindDimension("Geo").ValueOrDie();
  EXPECT_EQ(geo->LevelIndex("Airport").ValueOrDie(), 0u);
  EXPECT_EQ(geo->LevelIndex("country").ValueOrDie(), 2u);
  EXPECT_TRUE(geo->LevelIndex("Continent").status().IsNotFound());
}

TEST(SchemaTest, FactLookups) {
  MdSchema s = SmallSchema();
  const FactDef* f = s.FindFact("sales").ValueOrDie();
  EXPECT_EQ(f->MeasureIndex("price").ValueOrDie(), 0u);
  EXPECT_EQ(f->RoleIndex("when").ValueOrDie(), 1u);
  EXPECT_TRUE(f->MeasureIndex("ghost").status().IsNotFound());
  EXPECT_TRUE(f->RoleIndex("ghost").status().IsNotFound());
}

TEST(SchemaTest, DuplicateNamesRejected) {
  MdSchema s = SmallSchema();
  EXPECT_TRUE(s.AddDimension({"Geo", {{"X"}}}).IsAlreadyExists());
  FactDef f;
  f.name = "Sales";
  EXPECT_TRUE(s.AddFact(std::move(f)).IsAlreadyExists());
}

TEST(SchemaTest, DimensionNeedsLevels) {
  MdSchema s;
  EXPECT_TRUE(s.AddDimension({"Empty", {}}).IsInvalidArgument());
  EXPECT_TRUE(s.AddDimension({"", {{"L"}}}).IsInvalidArgument());
}

TEST(SchemaTest, FactNeedsKnownDimensions) {
  MdSchema s;
  FactDef f;
  f.name = "F";
  f.roles = {{"r", "Ghost"}};
  EXPECT_TRUE(s.AddFact(std::move(f)).IsNotFound());
}

TEST(SchemaTest, ValidateDetectsDuplicateRolesAndMeasures) {
  MdSchema s;
  ASSERT_TRUE(s.AddDimension({"D", {{"L"}}}).ok());
  FactDef f;
  f.name = "F";
  f.roles = {{"r", "D"}, {"R", "D"}};  // Same role, case-insensitively.
  ASSERT_TRUE(s.AddFact(std::move(f)).ok());
  EXPECT_TRUE(s.Validate().IsInvalidArgument());

  MdSchema s2;
  ASSERT_TRUE(s2.AddDimension({"D", {{"L"}}}).ok());
  FactDef f2;
  f2.name = "F";
  f2.roles = {{"r", "D"}};
  f2.measures = {{"m", ColumnType::kDouble, AggFn::kSum},
                 {"M", ColumnType::kDouble, AggFn::kSum}};
  ASSERT_TRUE(s2.AddFact(std::move(f2)).ok());
  EXPECT_TRUE(s2.Validate().IsInvalidArgument());
}

TEST(SchemaTest, ValidSchemaValidates) {
  EXPECT_TRUE(SmallSchema().Validate().ok());
}

TEST(SchemaTest, AggFnNames) {
  EXPECT_STREQ(AggFnName(AggFn::kSum), "SUM");
  EXPECT_STREQ(AggFnName(AggFn::kAvg), "AVG");
  EXPECT_STREQ(AggFnName(AggFn::kCount), "COUNT");
  EXPECT_STREQ(AggFnName(AggFn::kMin), "MIN");
  EXPECT_STREQ(AggFnName(AggFn::kMax), "MAX");
}

}  // namespace
}  // namespace dw
}  // namespace dwqa
