#include "dw/wal.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "common/metrics.h"
#include "common/metric_names.h"

namespace dwqa {
namespace dw {
namespace {

namespace stdfs = std::filesystem;

WalFact SampleFact(double value = 8.0, const std::string& city = "Barcelona") {
  WalFact fact;
  fact.fact_name = "Weather";
  fact.attribute = "temperature";
  fact.value = value;
  fact.unit = "\xC2\xBA\x43";  // ºC
  fact.date_iso = "2004-01-31";
  fact.location = city;
  fact.url = "http://weather.example/" + city;
  fact.confidence = 0.75;
  fact.dedup_key = "temperature|" + city + "|2004-01-31";
  fact.record.role_paths = {{city}, {"2004-01-31", "2004-01", "2004"},
                            {fact.url}};
  fact.record.measures = {Value(value)};
  return fact;
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = stdfs::path(::testing::TempDir()) / (std::string("dwqa_wal_test.") + std::to_string(::getpid()));
    stdfs::remove_all(dir_);
  }
  void TearDown() override { stdfs::remove_all(dir_); }

  std::string Dir() const { return dir_.string(); }

  stdfs::path dir_;
};

TEST(WalFactSerdeTest, RoundTrip) {
  WalFact fact = SampleFact();
  std::string payload = WalFactSerde::ToPayload(fact).ValueOrDie();
  WalFact back = WalFactSerde::FromPayload(payload).ValueOrDie();
  EXPECT_EQ(back.fact_name, fact.fact_name);
  EXPECT_EQ(back.attribute, fact.attribute);
  EXPECT_DOUBLE_EQ(back.value, fact.value);
  EXPECT_EQ(back.unit, fact.unit);
  EXPECT_EQ(back.date_iso, fact.date_iso);
  EXPECT_EQ(back.location, fact.location);
  EXPECT_EQ(back.url, fact.url);
  EXPECT_DOUBLE_EQ(back.confidence, fact.confidence);
  EXPECT_EQ(back.dedup_key, fact.dedup_key);
  EXPECT_EQ(back.record.role_paths, fact.record.role_paths);
  ASSERT_EQ(back.record.measures.size(), 1u);
  EXPECT_DOUBLE_EQ(back.record.measures[0].as_double(), 8.0);
}

TEST(WalFactSerdeTest, AwkwardDoublesRoundTripExactly) {
  for (double v : {-0.0, 1.0 / 3.0, 1e-300, 1.7976931348623157e308,
                   -273.15000000000003}) {
    WalFact fact = SampleFact(v);
    std::string payload = WalFactSerde::ToPayload(fact).ValueOrDie();
    WalFact back = WalFactSerde::FromPayload(payload).ValueOrDie();
    EXPECT_EQ(back.value, v);
  }
}

TEST(WalFactSerdeTest, EmbeddedTabsAndNewlinesRefusedWithFieldName) {
  WalFact tabbed = SampleFact();
  tabbed.location = "Bar\tcelona";
  Status st = WalFactSerde::ToPayload(tabbed).status();
  ASSERT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_NE(st.message().find("location"), std::string::npos);

  WalFact newlined = SampleFact();
  newlined.url = "http://evil.example/\ninjected";
  st = WalFactSerde::ToPayload(newlined).status();
  ASSERT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("url"), std::string::npos);

  WalFact bad_role = SampleFact();
  bad_role.record.role_paths[0][0] = "a\rb";
  EXPECT_FALSE(WalFactSerde::ToPayload(bad_role).ok());

  WalFact nameless = SampleFact();
  nameless.fact_name.clear();
  EXPECT_FALSE(WalFactSerde::ToPayload(nameless).ok());
}

TEST(WalFactSerdeTest, AdversarialPayloadsRejectedWithLineNumbers) {
  // Each case must produce a typed Corruption error, never a crash.
  const char* cases[] = {
      "",                                  // Nothing at all.
      "garbage\n",                         // Unknown tag.
      "fact\tWeather\n",                   // Missing attr.
      "attr\ttemperature\t8\t\t\t\t0.5\n", // Missing fact.
      "fact\tWeather\nattr\tonly\tthree\n",
      "fact\tWeather\nattr\tt\tNaNsense\t\t\t\t0.5\n",
      "fact\tWeather\nattr\tt\t8\t\t\t\tmaybe\n",
      "fact\t\n",
      "fact\tWeather\nfact\tWeather\nattr\tt\t8\t\t\t\t0.5\n",
      "fact\tWeather\nattr\tt\t8\t\t\t\t0.5\nmeasure\tdouble\n",
      "fact\tWeather\nattr\tt\t8\t\t\t\t0.5\nmeasure\tquux\t8\n",
      "fact\tWeather\nattr\tt\t8\t\t\t\t0.5\nmeasure\tint64\t99999999999999999999\n",
      "fact\tWeather\nattr\tt\t8\t\t\t\t0.5\nmeasure\tdate\tnot-a-date\n",
  };
  for (const char* text : cases) {
    auto parsed = WalFactSerde::FromPayload(text);
    ASSERT_FALSE(parsed.ok()) << "accepted: " << text;
    EXPECT_TRUE(parsed.status().IsCorruption()) << parsed.status().ToString();
    EXPECT_NE(parsed.status().message().find("line"), std::string::npos)
        << parsed.status().ToString();
  }
  // A truncated prefix of a valid payload never parses either.
  std::string full = WalFactSerde::ToPayload(SampleFact()).ValueOrDie();
  for (size_t cut = 0; cut < full.size(); cut += 7) {
    WalFactSerde::FromPayload(full.substr(0, cut));  // Must not crash.
  }
}

TEST_F(WalTest, AppendAssignsMonotonicLsnsAndSurvivesReopen) {
  MetricRegistry metrics;
  {
    auto wal = WalWriter::Open(Dir(), {}, nullptr, &metrics).ValueOrDie();
    EXPECT_EQ(wal->last_lsn(), 0u);
    EXPECT_EQ(wal->Append("one").ValueOrDie(), 1u);
    EXPECT_EQ(wal->Append("two").ValueOrDie(), 2u);
    EXPECT_EQ(wal->AppendFact(SampleFact()).ValueOrDie(), 3u);
  }
  // Reopen continues the LSN sequence.
  auto wal = WalWriter::Open(Dir()).ValueOrDie();
  EXPECT_EQ(wal->last_lsn(), 3u);
  EXPECT_EQ(wal->Append("four").ValueOrDie(), 4u);

  WalScan scan = ScanWal(Dir()).ValueOrDie();
  ASSERT_EQ(scan.records.size(), 4u);
  EXPECT_EQ(scan.records[0].payload, "one");
  EXPECT_EQ(scan.records[3].payload, "four");
  EXPECT_EQ(scan.last_lsn, 4u);
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_TRUE(scan.corrupt_records.empty());

  EXPECT_EQ(metrics.GetCounter(kMetricWalAppends)->value(), 3.0);
}

TEST_F(WalTest, SegmentsRotateAtTheByteThreshold) {
  WalOptions options;
  options.segment_bytes = 64;  // Tiny: every append or two rotates.
  auto wal = WalWriter::Open(Dir(), options).ValueOrDie();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(wal->Append("payload-" + std::to_string(i)).ok());
  }
  EXPECT_GT(wal->segment_count(), 1u);
  WalScan scan = ScanWal(Dir()).ValueOrDie();
  EXPECT_EQ(scan.records.size(), 6u);
  EXPECT_GT(scan.segments.size(), 1u);
  // Each segment header declares the LSN its file name carries.
  for (const WalSegmentInfo& info : scan.segments) {
    EXPECT_FALSE(info.torn());
  }
}

TEST_F(WalTest, ExplicitRotateStartsANewSegment) {
  auto wal = WalWriter::Open(Dir()).ValueOrDie();
  ASSERT_TRUE(wal->Append("a").ok());
  std::string first_segment = wal->current_segment_path();
  ASSERT_TRUE(wal->Rotate().ok());
  ASSERT_TRUE(wal->Append("b").ok());
  EXPECT_NE(wal->current_segment_path(), first_segment);
  EXPECT_EQ(wal->segment_count(), 2u);
}

TEST_F(WalTest, DropSegmentsCoveredKeepsTheTail) {
  WalOptions options;
  options.segment_bytes = 1;  // Rotate on every append.
  auto wal = WalWriter::Open(Dir(), options).ValueOrDie();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(wal->Append("p" + std::to_string(i)).ok());
  }
  ASSERT_EQ(wal->segment_count(), 4u);  // One record per segment.
  size_t dropped = wal->DropSegmentsCoveredBy(2).ValueOrDie();
  EXPECT_EQ(dropped, 2u);
  // Records past the cover point are still scannable.
  WalScan scan = ScanWal(Dir()).ValueOrDie();
  ASSERT_FALSE(scan.records.empty());
  EXPECT_EQ(scan.last_lsn, 4u);
  for (const WalRecord& rec : scan.records) {
    EXPECT_GT(rec.lsn, 2u);
  }
  // The current segment is never dropped, even when fully covered.
  EXPECT_EQ(wal->DropSegmentsCoveredBy(100).ValueOrDie(), 1u);
  EXPECT_EQ(wal->segment_count(), 1u);
  EXPECT_EQ(ScanWal(Dir()).ValueOrDie().last_lsn, 4u);
}

TEST_F(WalTest, TornTailIsDetectedAndTruncatedOnReopen) {
  {
    auto wal = WalWriter::Open(Dir()).ValueOrDie();
    ASSERT_TRUE(wal->Append("committed-1").ok());
    ASSERT_TRUE(wal->Append("committed-2").ok());
  }
  // Simulate a torn append: half a record header lands at the tail.
  WalScan before = ScanWal(Dir()).ValueOrDie();
  ASSERT_EQ(before.segments.size(), 1u);
  std::string segment = Dir() + "/" + before.segments[0].file;
  {
    std::ofstream out(segment, std::ios::app | std::ios::binary);
    out << "rec\t3\t99";  // No CRC, no newline, no payload.
  }
  WalScan torn = ScanWal(Dir()).ValueOrDie();
  EXPECT_TRUE(torn.torn_tail);
  EXPECT_GT(torn.torn_bytes, 0u);
  EXPECT_EQ(torn.records.size(), 2u);  // Committed records still parse.

  // Reopen truncates the tear and appends cleanly after it.
  auto wal = WalWriter::Open(Dir()).ValueOrDie();
  EXPECT_EQ(wal->last_lsn(), 2u);
  ASSERT_TRUE(wal->Append("after-recovery").ok());
  WalScan after = ScanWal(Dir()).ValueOrDie();
  EXPECT_FALSE(after.torn_tail);
  ASSERT_EQ(after.records.size(), 3u);
  EXPECT_EQ(after.records[2].payload, "after-recovery");
}

TEST_F(WalTest, CrcMismatchSkipsTheRecordButKeepsFraming) {
  {
    auto wal = WalWriter::Open(Dir()).ValueOrDie();
    ASSERT_TRUE(wal->Append("first").ok());
    ASSERT_TRUE(wal->Append("second").ok());
    ASSERT_TRUE(wal->Append("third").ok());
  }
  WalScan clean = ScanWal(Dir()).ValueOrDie();
  std::string segment = Dir() + "/" + clean.segments[0].file;
  // Flip one byte inside the middle record's payload ("second").
  std::ifstream in(segment, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  size_t at = content.find("second");
  ASSERT_NE(at, std::string::npos);
  content[at] ^= 0x20;
  {
    std::ofstream out(segment, std::ios::binary | std::ios::trunc);
    out << content;
  }
  WalScan scan = ScanWal(Dir()).ValueOrDie();
  EXPECT_FALSE(scan.torn_tail);  // Framing intact: not a tear.
  ASSERT_EQ(scan.corrupt_records.size(), 1u);
  EXPECT_EQ(scan.corrupt_records[0].lsn, 2u);
  // The healthy neighbours still replay.
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0].payload, "first");
  EXPECT_EQ(scan.records[1].payload, "third");
  ASSERT_FALSE(scan.issues.empty());
  EXPECT_NE(scan.issues[0].find("CRC mismatch"), std::string::npos);
}

TEST_F(WalTest, GarbageSegmentHeaderIsATornTail) {
  stdfs::create_directories(dir_);
  {
    std::ofstream out(dir_ / "wal-00000000000000000001.log",
                      std::ios::binary);
    out << "this is not a wal segment\nat all\n";
  }
  WalScan scan = ScanWal(Dir()).ValueOrDie();
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_TRUE(scan.records.empty());
  // Open() recovers by dropping the unusable file and starting fresh.
  auto wal = WalWriter::Open(Dir()).ValueOrDie();
  EXPECT_EQ(wal->Append("fresh").ValueOrDie(), 1u);
}

TEST_F(WalTest, ScanOfMissingDirectoryIsEmptyNotAnError) {
  WalScan scan = ScanWal(Dir() + "/never_created").ValueOrDie();
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.last_lsn, 0u);
  EXPECT_FALSE(scan.torn_tail);
}

TEST_F(WalTest, UnsyncedAppendsAreFlushedByExplicitSync) {
  WalOptions options;
  options.sync_each_append = false;
  MetricRegistry metrics;
  auto wal = WalWriter::Open(Dir(), options, nullptr, &metrics).ValueOrDie();
  ASSERT_TRUE(wal->Append("a").ok());
  ASSERT_TRUE(wal->Append("b").ok());
  double syncs_before = metrics.GetCounter(kMetricWalSyncs)->value();
  ASSERT_TRUE(wal->Sync().ok());
  EXPECT_EQ(metrics.GetCounter(kMetricWalSyncs)->value(), syncs_before + 1);
  // A second Sync with nothing dirty is a no-op barrier.
  ASSERT_TRUE(wal->Sync().ok());
  EXPECT_EQ(metrics.GetCounter(kMetricWalSyncs)->value(), syncs_before + 1);
}

}  // namespace
}  // namespace dw
}  // namespace dwqa
