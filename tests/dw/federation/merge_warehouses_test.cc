#include "dw/federation/merge_warehouses.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include "dw/etl.h"
#include "dw/federation/partner_warehouse.h"
#include "dw/olap.h"
#include "dw/quarantine.h"
#include "integration/last_minute_sales.h"
#include "web/weather_model.h"

namespace dwqa {
namespace dw {
namespace fed {
namespace {

constexpr int kDays = 5;

/// Min/count of TemperatureC for one (city, day) — enough to read a single
/// weather row back and to count how many survive a conflict policy.
Result<OlapResult> QueryCityDayTemp(const Warehouse& wh,
                                    const std::string& city,
                                    const std::string& day) {
  OlapQuery q;
  q.fact = "Weather";
  q.measures = {{"TemperatureC", AggFn::kMin}, {"TemperatureC", AggFn::kCount}};
  q.group_by = {{"location", "City"}};
  q.filters = {{"location", "City", {city}}, {"day", "Date", {day}}};
  return OlapEngine(&wh).Execute(q);
}

/// The merge scenario: local airline + partner airline over the same
/// 5-day window, with one locally inserted weather row that shares the
/// partner's (Barcelona, 2004-01-01, partner URL) fact key.
class MergeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Date start(2004, 1, 1);

    auto remote = PartnerAirline::MakeWarehouse();
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    remote_ = std::make_unique<Warehouse>(std::move(*remote));
    ASSERT_TRUE(
        PartnerAirline::GeneratePartnerSales(remote_.get(), start, kDays)
            .ok());
    ASSERT_TRUE(
        PartnerAirline::GeneratePartnerWeather(remote_.get(), start, kDays)
            .ok());

    // Read the partner's Barcelona temperature for the shared key before
    // deciding what the local copy says about it.
    auto partner_row =
        QueryCityDayTemp(*remote_, "Barcelona", "2004-01-01");
    ASSERT_TRUE(partner_row.ok()) << partner_row.status().ToString();
    ASSERT_EQ(partner_row->rows.size(), 1u);
    partner_temp_ = partner_row->rows[0][1].as_double();

    auto local = integration::LastMinuteSales::MakeWarehouse();
    ASSERT_TRUE(local.ok()) << local.status().ToString();
    local_ = std::make_unique<Warehouse>(std::move(*local));
    web::WeatherModel weather(42);
    ASSERT_TRUE(integration::LastMinuteSales::GenerateSales(
                    local_.get(), weather, start, kDays)
                    .ok());
  }

  /// Inserts a local Weather row under the partner's Barcelona fact key.
  void InsertLocalWeather(double temperature_c) {
    auto city = local_->AddMember("City", {"Barcelona", "Spain"});
    ASSERT_TRUE(city.ok());
    auto day = local_->AddMember("Date", DateMemberPath(Date(2004, 1, 1)));
    ASSERT_TRUE(day.ok());
    auto source = local_->AddMember(
        "Source", {"http://partner.example/weather/barcelona"});
    ASSERT_TRUE(source.ok());
    ASSERT_TRUE(local_->InsertFact("Weather", {*city, *day, *source},
                                   {Value(temperature_c)})
                    .ok());
  }

  /// Runs the matcher (after all member insertions, so the instance merge
  /// sees the final populations).
  SchemaMapping Match() {
    SchemaMatcher matcher(PartnerAirline::DefaultMatcherOptions());
    auto mapping = matcher.Match(*local_, *remote_);
    EXPECT_TRUE(mapping.ok()) << mapping.status().ToString();
    return std::move(*mapping);
  }

  std::unique_ptr<Warehouse> local_;
  std::unique_ptr<Warehouse> remote_;
  double partner_temp_ = 0.0;
};

TEST_F(MergeTest, AdditiveMergeKeepsEveryRowOfBothSaleFacts) {
  SchemaMapping mapping = Match();
  MergeWarehousesReport report;
  auto merged = MergeWarehouses(*local_, *remote_, mapping, {}, nullptr,
                                &report);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  auto local_sales = local_->FactRowCount("LastMinuteSales");
  auto remote_sales = remote_->FactRowCount("Partner Sales");
  auto merged_sales = merged->FactRowCount("LastMinuteSales");
  ASSERT_TRUE(local_sales.ok() && remote_sales.ok() && merged_sales.ok());
  // LastMinuteSales is not key-complete (customer never maps), so the
  // merge is purely additive: every row of both sides survives.
  EXPECT_EQ(*merged_sales, *local_sales + *remote_sales);
  EXPECT_GT(report.local_facts_kept, 0u);
  EXPECT_GT(report.remote_facts_merged, 0u);
  EXPECT_GT(report.members_added, 0u);
}

TEST_F(MergeTest, TranslatesMembersAndBacksUnmappedRolesWithSentinel) {
  SchemaMapping mapping = Match();
  auto merged = MergeWarehouses(*local_, *remote_, mapping);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  // Partner-only aerodromes became local Airport members…
  EXPECT_TRUE(merged->FindMember("Airport", "Portela").ok());
  EXPECT_TRUE(merged->FindMember("Airport", "Gardermoen").ok());
  // …while the aliased one folded into the local spelling instead of
  // arriving under its partner name.
  EXPECT_FALSE(merged->FindMember("Airport", "Kennedy International Airport")
                   .ok());
  EXPECT_TRUE(merged->FindMember("Airport", "JFK").ok());
  // Partner sales have no customer: their rows hang off the sentinel.
  auto sentinel = merged->FindMember("Customer", kUnattributedMember);
  EXPECT_TRUE(sentinel.ok());
  EXPECT_FALSE(local_->FindMember("Customer", kUnattributedMember).ok());

  // The sentinel carries exactly the partner's tickets.
  OlapQuery q;
  q.fact = "LastMinuteSales";
  q.measures = {{"Tickets", AggFn::kSum}};
  q.group_by = {{"customer", "Customer"}};
  q.filters = {{"customer", "Customer", {kUnattributedMember}}};
  auto rows = OlapEngine(&*merged).Execute(q);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->rows.size(), 1u);

  OlapQuery partner_q;
  partner_q.fact = "Partner Sales";
  partner_q.measures = {{"Tickets", AggFn::kSum}};
  auto partner_rows = OlapEngine(&*remote_).Execute(partner_q);
  ASSERT_TRUE(partner_rows.ok()) << partner_rows.status().ToString();
  ASSERT_EQ(partner_rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][1], partner_rows->rows[0][0]);
}

TEST_F(MergeTest, ConvertsRemoteKilometresIntoLocalMilesExactly) {
  SchemaMapping mapping = Match();
  auto merged = MergeWarehouses(*local_, *remote_, mapping);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  OlapQuery km;
  km.fact = "Partner Sales";
  km.measures = {{"DistanceKm", AggFn::kSum}};
  auto km_rows = OlapEngine(&*remote_).Execute(km);
  ASSERT_TRUE(km_rows.ok());

  OlapQuery mi;
  mi.fact = "LastMinuteSales";
  mi.measures = {{"Miles", AggFn::kSum}};
  mi.filters = {{"customer", "Customer", {kUnattributedMember}}};
  auto mi_rows = OlapEngine(&*merged).Execute(mi);
  ASSERT_TRUE(mi_rows.ok());
  ASSERT_EQ(mi_rows->rows.size(), 1u);
  // Integer kilometres × the dyadic 0.625 factor: exact, not approximate.
  EXPECT_EQ(mi_rows->rows[0][0].as_double(),
            km_rows->rows[0][0].as_double() * PartnerAirline::kKmToMiles);
}

TEST_F(MergeTest, IdenticalRowsOnSharedKeysAreDeduplicated) {
  InsertLocalWeather(partner_temp_);
  SchemaMapping mapping = Match();
  MergeWarehousesReport report;
  auto merged = MergeWarehouses(*local_, *remote_, mapping, {}, nullptr,
                                &report);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  const ConflictStats& stats = report.conflicts.at("Weather");
  EXPECT_EQ(stats.keys_in_both, 1u);
  EXPECT_EQ(stats.deduplicated_rows, 1u);
  EXPECT_EQ(stats.conflicting_keys, 0u);

  auto row = QueryCityDayTemp(*merged, "Barcelona", "2004-01-01");
  ASSERT_TRUE(row.ok());
  ASSERT_EQ(row->rows.size(), 1u);
  EXPECT_EQ(row->rows[0][2].as_int(), 1);  // one copy survives
  EXPECT_EQ(row->rows[0][1].as_double(), partner_temp_);
}

TEST_F(MergeTest, PreferLocalKeepsTheLocalReadingOnConflict) {
  InsertLocalWeather(99.0);
  SchemaMapping mapping = Match();
  MergeWarehousesReport report;
  MergePolicy policy;
  policy.conflicts = ConflictPolicy::kPreferLocal;
  auto merged = MergeWarehouses(*local_, *remote_, mapping, policy, nullptr,
                                &report);
  ASSERT_TRUE(merged.ok());

  const ConflictStats& stats = report.conflicts.at("Weather");
  EXPECT_EQ(stats.conflicting_keys, 1u);
  EXPECT_EQ(stats.remote_rows_dropped, 1u);
  EXPECT_EQ(stats.local_rows_dropped, 0u);
  EXPECT_EQ(stats.quarantined_rows, 0u);

  auto row = QueryCityDayTemp(*merged, "Barcelona", "2004-01-01");
  ASSERT_TRUE(row.ok());
  ASSERT_EQ(row->rows.size(), 1u);
  EXPECT_EQ(row->rows[0][2].as_int(), 1);
  EXPECT_EQ(row->rows[0][1].as_double(), 99.0);
}

TEST_F(MergeTest, PreferFresherFollowsTheRefreshDates) {
  InsertLocalWeather(99.0);
  SchemaMapping mapping = Match();

  MergePolicy remote_fresher;
  remote_fresher.conflicts = ConflictPolicy::kPreferFresher;
  remote_fresher.local_refresh_iso = "2004-01-01";
  remote_fresher.remote_refresh_iso = "2004-02-01";
  MergeWarehousesReport report;
  auto merged = MergeWarehouses(*local_, *remote_, mapping, remote_fresher,
                                nullptr, &report);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(report.conflicts.at("Weather").local_rows_dropped, 1u);
  auto row = QueryCityDayTemp(*merged, "Barcelona", "2004-01-01");
  ASSERT_TRUE(row.ok());
  ASSERT_EQ(row->rows.size(), 1u);
  EXPECT_EQ(row->rows[0][1].as_double(), partner_temp_);

  MergePolicy local_fresher = remote_fresher;
  local_fresher.local_refresh_iso = "2004-03-01";
  auto merged2 =
      MergeWarehouses(*local_, *remote_, mapping, local_fresher);
  ASSERT_TRUE(merged2.ok());
  auto row2 = QueryCityDayTemp(*merged2, "Barcelona", "2004-01-01");
  ASSERT_TRUE(row2.ok());
  ASSERT_EQ(row2->rows.size(), 1u);
  EXPECT_EQ(row2->rows[0][1].as_double(), 99.0);
}

TEST_F(MergeTest, QuarantinePolicyExcludesBothSidesAndRoutesRecords) {
  InsertLocalWeather(99.0);
  SchemaMapping mapping = Match();
  MergePolicy policy;
  policy.conflicts = ConflictPolicy::kQuarantine;
  QuarantineStore store;
  MergeWarehousesReport report;
  auto merged = MergeWarehouses(*local_, *remote_, mapping, policy, &store,
                                &report);
  ASSERT_TRUE(merged.ok());

  const ConflictStats& stats = report.conflicts.at("Weather");
  EXPECT_EQ(stats.conflicting_keys, 1u);
  EXPECT_EQ(stats.quarantined_rows, 2u);
  EXPECT_EQ(stats.local_rows_dropped, 1u);
  EXPECT_EQ(stats.remote_rows_dropped, 1u);

  // The disputed reading is gone from the oracle entirely…
  auto row = QueryCityDayTemp(*merged, "Barcelona", "2004-01-01");
  ASSERT_TRUE(row.ok());
  EXPECT_TRUE(row->rows.empty());

  // …and both copies landed in quarantine with the typed reason.
  ASSERT_EQ(store.size(), 2u);
  auto counts = store.CountsByReason();
  EXPECT_EQ(counts.at("FederationConflict"), 2u);
  for (const QuarantineRecord& record : store.records()) {
    EXPECT_EQ(record.location, "barcelona");  // keys are case-normalized
    EXPECT_EQ(record.date_iso, "2004-01-01");
    EXPECT_EQ(record.url, "http://partner.example/weather/barcelona");
    EXPECT_NE(record.detail.find("quarantine"), std::string::npos);
  }
}

TEST_F(MergeTest, ResolveConflictsIsEmptyForAdditiveFactMappings) {
  SchemaMapping mapping = Match();
  const FactMapping* sales = mapping.FindLocalFact("LastMinuteSales");
  ASSERT_NE(sales, nullptr);
  ASSERT_FALSE(sales->key_complete);
  auto resolution =
      ResolveConflicts(*local_, *remote_, mapping, *sales, MergePolicy{});
  ASSERT_TRUE(resolution.ok());
  EXPECT_TRUE(resolution->local_excluded.empty());
  EXPECT_TRUE(resolution->remote_excluded.empty());
  EXPECT_TRUE(resolution->quarantine.empty());
  EXPECT_EQ(resolution->stats.keys_in_both, 0u);
}

}  // namespace
}  // namespace fed
}  // namespace dw
}  // namespace dwqa
