#include "dw/federation/schema_mapping.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>
#include "dw/federation/partner_warehouse.h"
#include "integration/last_minute_sales.h"

namespace dwqa {
namespace dw {
namespace fed {
namespace {

/// The partner-airline alignment every federation test plans against.
class PartnerMatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto local = integration::LastMinuteSales::MakeWarehouse();
    ASSERT_TRUE(local.ok()) << local.status().ToString();
    local_ = std::make_unique<Warehouse>(std::move(*local));
    auto remote = PartnerAirline::MakeWarehouse();
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    remote_ = std::make_unique<Warehouse>(std::move(*remote));
    SchemaMatcher matcher(PartnerAirline::DefaultMatcherOptions());
    auto mapping = matcher.Match(*local_, *remote_);
    ASSERT_TRUE(mapping.ok()) << mapping.status().ToString();
    mapping_ = std::move(*mapping);
  }

  bool HasNoteContaining(const std::string& needle) const {
    for (const std::string& note : mapping_.notes) {
      if (note.find(needle) != std::string::npos) return true;
    }
    return false;
  }

  std::unique_ptr<Warehouse> local_;
  std::unique_ptr<Warehouse> remote_;
  SchemaMapping mapping_;
};

TEST_F(PartnerMatchTest, AlignsGeographyAcrossAllThreeLadderTiers) {
  const DimensionMapping* dm = mapping_.FindLocalDimension("Airport");
  ASSERT_NE(dm, nullptr);
  EXPECT_EQ(dm->remote_dimension, "Aerodrome");
  ASSERT_EQ(dm->levels.size(), 4u);

  const LevelMapping* base = dm->FindLocalLevel("Airport");
  ASSERT_NE(base, nullptr);
  EXPECT_EQ(base->remote_level, "Airports");
  EXPECT_EQ(base->kind, MatchKind::kPartial);

  const LevelMapping* city = dm->FindLocalLevel("City");
  ASSERT_NE(city, nullptr);
  EXPECT_EQ(city->remote_level, "City");
  EXPECT_EQ(city->kind, MatchKind::kExact);

  const LevelMapping* state = dm->FindLocalLevel("State");
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->remote_level, "Member State");
  EXPECT_EQ(state->kind, MatchKind::kHeadWord);

  const LevelMapping* country = dm->FindLocalLevel("Country");
  ASSERT_NE(country, nullptr);
  EXPECT_EQ(country->remote_level, "Country");
  EXPECT_EQ(country->kind, MatchKind::kExact);
}

TEST_F(PartnerMatchTest, MapsNameExactDimensionsAndLeavesOrphansUnmapped) {
  const DimensionMapping* date = mapping_.FindLocalDimension("Date");
  ASSERT_NE(date, nullptr);
  EXPECT_EQ(date->remote_dimension, "Date");
  EXPECT_EQ(date->levels.size(), 3u);

  const DimensionMapping* city = mapping_.FindLocalDimension("City");
  ASSERT_NE(city, nullptr);
  EXPECT_EQ(city->remote_dimension, "City");

  const DimensionMapping* source = mapping_.FindLocalDimension("Source");
  ASSERT_NE(source, nullptr);
  EXPECT_EQ(source->remote_dimension, "Source");

  // Customer has no remote counterpart; the remote-only Aircraft dimension
  // must not have been grabbed for it.
  EXPECT_EQ(mapping_.FindLocalDimension("Customer"), nullptr);
  for (const DimensionMapping& dm : mapping_.dimensions) {
    EXPECT_NE(dm.remote_dimension, "Aircraft");
  }
}

TEST_F(PartnerMatchTest, SalesFactMapsWithUnitPairAndIncompleteKey) {
  const FactMapping* fm = mapping_.FindLocalFact("LastMinuteSales");
  ASSERT_NE(fm, nullptr);
  EXPECT_EQ(fm->remote_fact, "Partner Sales");

  const MeasureMapping* price = fm->FindLocalMeasure("Price");
  ASSERT_NE(price, nullptr);
  EXPECT_EQ(price->remote_measure, "Price");
  EXPECT_EQ(price->kind, MatchKind::kExact);
  EXPECT_DOUBLE_EQ(price->conversion, 1.0);

  // Miles has no name in common with DistanceKm: only the registered
  // km→mi conversion pairs them.
  const MeasureMapping* miles = fm->FindLocalMeasure("Miles");
  ASSERT_NE(miles, nullptr);
  EXPECT_EQ(miles->remote_measure, "DistanceKm");
  EXPECT_EQ(miles->kind, MatchKind::kUnit);
  EXPECT_DOUBLE_EQ(miles->conversion, PartnerAirline::kKmToMiles);

  const MeasureMapping* tickets = fm->FindLocalMeasure("Tickets");
  ASSERT_NE(tickets, nullptr);
  EXPECT_EQ(tickets->kind, MatchKind::kExact);

  // The remote-only BaggageFees measure is simply ignored.
  EXPECT_EQ(fm->measures.size(), 3u);

  // origin/destination/date map; customer does not, so the two fact
  // tables do not share a key space (additive merge, no conflict checks).
  EXPECT_NE(fm->FindLocalRole("origin"), nullptr);
  EXPECT_NE(fm->FindLocalRole("destination"), nullptr);
  EXPECT_NE(fm->FindLocalRole("date"), nullptr);
  EXPECT_EQ(fm->FindLocalRole("customer"), nullptr);
  EXPECT_FALSE(fm->key_complete);
  ASSERT_EQ(fm->unmapped_local_roles.size(), 1u);
  EXPECT_EQ(fm->unmapped_local_roles.front(), "customer");
}

TEST_F(PartnerMatchTest, WeatherFactIsKeyComplete) {
  const FactMapping* fm = mapping_.FindLocalFact("Weather");
  ASSERT_NE(fm, nullptr);
  EXPECT_EQ(fm->remote_fact, "Weather");
  EXPECT_TRUE(fm->key_complete);
  EXPECT_EQ(fm->roles.size(), 3u);
  const MeasureMapping* temp = fm->FindLocalMeasure("TemperatureC");
  ASSERT_NE(temp, nullptr);
  EXPECT_DOUBLE_EQ(temp->conversion, 1.0);
}

TEST_F(PartnerMatchTest, MemberMergeBridgesAliasAndKeepsRemoteOnlyOut) {
  const DimensionMapping* dm = mapping_.FindLocalDimension("Airport");
  ASSERT_NE(dm, nullptr);
  // The paper's alias bridge: the partner spells the airport out, the
  // local warehouse calls it JFK — the ontology instance merge links them.
  auto it = dm->member_map.find("kennedy international airport");
  ASSERT_NE(it, dm->member_map.end());
  EXPECT_EQ(it->second, "JFK");
  // Same-spelling overlap maps onto the canonical local spelling.
  auto prat = dm->member_map.find("el prat");
  ASSERT_NE(prat, dm->member_map.end());
  EXPECT_EQ(prat->second, "El Prat");
  // Partner-only aerodromes have no local counterpart.
  EXPECT_EQ(dm->member_map.count("portela"), 0u);
  EXPECT_EQ(dm->member_map.count("gardermoen"), 0u);
}

TEST(SchemaMatcherEdgeTest, AmbiguousHeadWordTieIsRefusedWithNote) {
  // Two local levels share the head word "State"; the remote "Member
  // State" must not be guessed onto either of them.
  MdSchema local_schema;
  ASSERT_TRUE(local_schema
                  .AddDimension({"Region",
                                 {{"City"}, {"Home State"}, {"Origin State"}}})
                  .ok());
  MdSchema remote_schema;
  ASSERT_TRUE(
      remote_schema.AddDimension({"Region", {{"City"}, {"Member State"}}})
          .ok());
  auto local = Warehouse::Create(std::move(local_schema));
  ASSERT_TRUE(local.ok());
  auto remote = Warehouse::Create(std::move(remote_schema));
  ASSERT_TRUE(remote.ok());

  SchemaMatcher matcher;
  auto mapping = matcher.Match(*local, *remote);
  ASSERT_TRUE(mapping.ok()) << mapping.status().ToString();
  const DimensionMapping* dm = mapping->FindLocalDimension("Region");
  ASSERT_NE(dm, nullptr);
  // City still aligns; neither *State level does.
  EXPECT_NE(dm->FindLocalLevel("City"), nullptr);
  EXPECT_EQ(dm->FindLocalLevel("Home State"), nullptr);
  EXPECT_EQ(dm->FindLocalLevel("Origin State"), nullptr);
  bool noted = false;
  for (const std::string& note : mapping->notes) {
    if (note.find("ambiguous") != std::string::npos &&
        note.find("Member State") != std::string::npos) {
      noted = true;
    }
  }
  EXPECT_TRUE(noted);
}

TEST(SchemaMatcherEdgeTest, UnconvertibleUnitsMustNotAutoMap) {
  // Name-identical measures in EUR vs USD with no registered conversion:
  // the unit gate refuses the pair, and because every local measure must
  // map, the whole fact pair is refused.
  MdSchema local_schema;
  ASSERT_TRUE(local_schema.AddDimension({"Date", {{"Date"}}}).ok());
  FactDef local_fact;
  local_fact.name = "Revenue";
  local_fact.measures = {{"Price", ColumnType::kDouble, AggFn::kSum}};
  local_fact.roles = {{"date", "Date"}};
  ASSERT_TRUE(local_schema.AddFact(std::move(local_fact)).ok());

  MdSchema remote_schema;
  ASSERT_TRUE(remote_schema.AddDimension({"Date", {{"Date"}}}).ok());
  FactDef remote_fact;
  remote_fact.name = "Revenue";
  remote_fact.measures = {{"Price", ColumnType::kDouble, AggFn::kSum}};
  remote_fact.roles = {{"date", "Date"}};
  ASSERT_TRUE(remote_schema.AddFact(std::move(remote_fact)).ok());

  auto local = Warehouse::Create(std::move(local_schema));
  ASSERT_TRUE(local.ok());
  auto remote = Warehouse::Create(std::move(remote_schema));
  ASSERT_TRUE(remote.ok());

  MatcherOptions options;
  options.local_units["price"] = "EUR";
  options.remote_units["price"] = "USD";
  SchemaMatcher matcher(options);
  auto mapping = matcher.Match(*local, *remote);
  ASSERT_TRUE(mapping.ok()) << mapping.status().ToString();
  EXPECT_EQ(mapping->FindLocalFact("Revenue"), nullptr);
  bool refused = false;
  bool no_counterpart = false;
  for (const std::string& note : mapping->notes) {
    if (note.find("not convertible") != std::string::npos) refused = true;
    if (note.find("no mergeable remote counterpart") != std::string::npos) {
      no_counterpart = true;
    }
  }
  EXPECT_TRUE(refused);
  EXPECT_TRUE(no_counterpart);
}

TEST(SchemaMatcherEdgeTest, RegisteredConversionOpensTheUnitGate) {
  // The same EUR/USD pair with a conversion registered maps — and carries
  // the factor.
  MdSchema local_schema;
  ASSERT_TRUE(local_schema.AddDimension({"Date", {{"Date"}}}).ok());
  FactDef local_fact;
  local_fact.name = "Revenue";
  local_fact.measures = {{"Price", ColumnType::kDouble, AggFn::kSum}};
  local_fact.roles = {{"date", "Date"}};
  ASSERT_TRUE(local_schema.AddFact(std::move(local_fact)).ok());
  MdSchema remote_schema;
  ASSERT_TRUE(remote_schema.AddDimension({"Date", {{"Date"}}}).ok());
  FactDef remote_fact;
  remote_fact.name = "Revenue";
  remote_fact.measures = {{"Price", ColumnType::kDouble, AggFn::kSum}};
  remote_fact.roles = {{"date", "Date"}};
  ASSERT_TRUE(remote_schema.AddFact(std::move(remote_fact)).ok());
  auto local = Warehouse::Create(std::move(local_schema));
  ASSERT_TRUE(local.ok());
  auto remote = Warehouse::Create(std::move(remote_schema));
  ASSERT_TRUE(remote.ok());

  MatcherOptions options;
  options.local_units["price"] = "EUR";
  options.remote_units["price"] = "USD";
  options.unit_conversions["usd->eur"] = 0.875;
  SchemaMatcher matcher(options);
  auto mapping = matcher.Match(*local, *remote);
  ASSERT_TRUE(mapping.ok()) << mapping.status().ToString();
  const FactMapping* fm = mapping->FindLocalFact("Revenue");
  ASSERT_NE(fm, nullptr);
  const MeasureMapping* price = fm->FindLocalMeasure("Price");
  ASSERT_NE(price, nullptr);
  EXPECT_DOUBLE_EQ(price->conversion, 0.875);
  EXPECT_TRUE(fm->key_complete);
}

}  // namespace
}  // namespace fed
}  // namespace dw
}  // namespace dwqa
