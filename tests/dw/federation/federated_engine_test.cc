#include "dw/federation/federated_engine.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include "common/fault.h"
#include "common/metric_names.h"
#include "common/metrics.h"
#include "dw/etl.h"
#include "dw/federation/merge_warehouses.h"
#include "dw/federation/partner_warehouse.h"
#include "dw/materialized_view.h"
#include "dw/olap.h"
#include "integration/last_minute_sales.h"
#include "web/weather_model.h"

namespace dwqa {
namespace dw {
namespace fed {
namespace {

constexpr int kDays = 7;

/// Byte-identity: headers, group order, and every cell's type *and* value
/// (Value::operator== compares the variant, so a double 3.0 is not an
/// int64 3). Scan counters are deliberately not compared — the federated
/// path scans two warehouses.
void ExpectSameResult(const OlapResult& oracle, const OlapResult& fed) {
  ASSERT_EQ(oracle.headers, fed.headers);
  ASSERT_EQ(oracle.rows.size(), fed.rows.size());
  for (size_t r = 0; r < oracle.rows.size(); ++r) {
    ASSERT_EQ(oracle.rows[r].size(), fed.rows[r].size()) << "row " << r;
    for (size_t c = 0; c < oracle.rows[r].size(); ++c) {
      EXPECT_EQ(oracle.rows[r][c], fed.rows[r][c])
          << "row " << r << " col " << c << " oracle='"
          << oracle.rows[r][c].ToString() << "' fed='"
          << fed.rows[r][c].ToString() << "'";
    }
  }
}

/// The two-airline federation scenario, including one cross-warehouse
/// weather conflict so every query also exercises conflict exclusions.
class FederatedEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Date start(2004, 1, 1);
    auto local = integration::LastMinuteSales::MakeWarehouse();
    ASSERT_TRUE(local.ok()) << local.status().ToString();
    local_ = std::make_unique<Warehouse>(std::move(*local));
    web::WeatherModel weather(42);
    ASSERT_TRUE(integration::LastMinuteSales::GenerateSales(
                    local_.get(), weather, start, kDays)
                    .ok());
    // Locally ingested weather (dyadic temperatures, local source URLs —
    // no key collision with the partner's readings)…
    InsertLocalWeather("New York", "United States", "2004-01-02", 21.5,
                       "http://local.example/weather/new-york");
    InsertLocalWeather("Barcelona", "Spain", "2004-01-03", 9.25,
                       "http://local.example/weather/barcelona");
    // …plus one reading under the partner's exact fact key, so the
    // conflict machinery is live in every test.
    InsertLocalWeather("Barcelona", "Spain", "2004-01-01", 99.0,
                       "http://partner.example/weather/barcelona");

    auto remote = PartnerAirline::MakeWarehouse();
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    remote_ = std::make_unique<Warehouse>(std::move(*remote));
    ASSERT_TRUE(
        PartnerAirline::GeneratePartnerSales(remote_.get(), start, kDays)
            .ok());
    ASSERT_TRUE(
        PartnerAirline::GeneratePartnerWeather(remote_.get(), start, kDays)
            .ok());

    SchemaMatcher matcher(PartnerAirline::DefaultMatcherOptions());
    auto mapping = matcher.Match(*local_, *remote_);
    ASSERT_TRUE(mapping.ok()) << mapping.status().ToString();
    mapping_ = std::move(*mapping);
  }

  void InsertLocalWeather(const std::string& city, const std::string& country,
                          const std::string& iso_day, double temperature_c,
                          const std::string& url) {
    auto city_id = local_->AddMember("City", {city, country});
    ASSERT_TRUE(city_id.ok());
    auto day = Date::FromIsoString(iso_day);
    ASSERT_TRUE(day.ok());
    auto day_id = local_->AddMember("Date", DateMemberPath(*day));
    ASSERT_TRUE(day_id.ok());
    auto source_id = local_->AddMember("Source", {url});
    ASSERT_TRUE(source_id.ok());
    ASSERT_TRUE(local_->InsertFact("Weather", {*city_id, *day_id, *source_id},
                                   {Value(temperature_c)})
                    .ok());
  }

  /// Builds the engine under `policy` (no pool — deterministic inline).
  /// Heap-allocated: the engine owns a mutex and cannot move.
  std::unique_ptr<FederatedEngine> MakeEngine(
      const MergePolicy& policy = {}) {
    auto engine = std::make_unique<FederatedEngine>(local_.get());
    EXPECT_TRUE(engine->AddRemote("partner", remote_.get(), mapping_).ok());
    engine->set_policy(policy);
    return engine;
  }

  /// Asserts `query` answers byte-identically to the merged oracle under
  /// `policy`, with full coverage.
  void ExpectOracleIdentity(const OlapQuery& query,
                            const MergePolicy& policy = {}) {
    auto oracle_wh = MergeWarehouses(*local_, *remote_, mapping_, policy);
    ASSERT_TRUE(oracle_wh.ok()) << oracle_wh.status().ToString();
    auto oracle = OlapEngine(&*oracle_wh).Execute(query);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

    auto engine = MakeEngine(policy);
    auto fed = engine->Execute(query);
    ASSERT_TRUE(fed.ok()) << fed.status().ToString();
    EXPECT_TRUE(fed->coverage.full());
    EXPECT_EQ(fed->coverage.warehouses_total, 2u);
    ExpectSameResult(*oracle, fed->result);
  }

  std::unique_ptr<Warehouse> local_;
  std::unique_ptr<Warehouse> remote_;
  SchemaMapping mapping_;
};

OlapQuery SalesByCityDay() {
  OlapQuery q;
  q.fact = "LastMinuteSales";
  q.measures = {{"Tickets", AggFn::kSum}};
  q.group_by = {{"destination", "City"}, {"date", "Date"}};
  return q;
}

TEST_F(FederatedEngineTest, MatchesOracleOnCityDayTickets) {
  ExpectOracleIdentity(SalesByCityDay());
}

TEST_F(FederatedEngineTest, MatchesOracleOnCountryRollUpWithUnitConversion) {
  OlapQuery q;
  q.fact = "LastMinuteSales";
  q.measures = {{"Tickets", AggFn::kSum}, {"Miles", AggFn::kSum}};
  q.group_by = {{"destination", "Country"}};
  // SUM(Miles) folds converted partner kilometres into local miles — the
  // dyadic 0.625 factor keeps the merged sums exact.
  ExpectOracleIdentity(q);
}

TEST_F(FederatedEngineTest, MatchesOracleAcrossTranslatedAirportMembers) {
  OlapQuery q;
  q.fact = "LastMinuteSales";
  q.measures = {{"Tickets", AggFn::kSum}};
  q.group_by = {{"origin", "Airport"}};
  // Partner rows out of "Kennedy International Airport" must land in the
  // local "JFK" group, not a group of their own.
  ExpectOracleIdentity(q);
}

TEST_F(FederatedEngineTest, MatchesOracleOnSentinelCustomerGroups) {
  OlapQuery q;
  q.fact = "LastMinuteSales";
  q.measures = {{"Tickets", AggFn::kSum}};
  q.group_by = {{"customer", "Customer"}};
  // The partner has no customer role: its rows group under the sentinel.
  ExpectOracleIdentity(q);
}

TEST_F(FederatedEngineTest, MatchesOracleUnderSliceAndAliasFilters) {
  OlapQuery by_city = SalesByCityDay();
  by_city.filters = {{"destination", "City", {"Barcelona"}}};
  ExpectOracleIdentity(by_city);

  OlapQuery by_alias;
  by_alias.fact = "LastMinuteSales";
  by_alias.measures = {{"Tickets", AggFn::kSum}};
  by_alias.group_by = {{"origin", "Airport"}};
  // Filtering on the local spelling must still include the partner rows
  // recorded under the aliased member name.
  by_alias.filters = {{"origin", "Airport", {"JFK"}}};
  ExpectOracleIdentity(by_alias);
}

TEST_F(FederatedEngineTest, MatchesOracleWhenFilterTouchesUnmappedRole) {
  // A real segment: the partner (all sentinel rows) contributes nothing,
  // and its sub-query is skipped rather than dispatched.
  OlapQuery business;
  business.fact = "LastMinuteSales";
  business.measures = {{"Tickets", AggFn::kSum}};
  business.group_by = {{"destination", "Country"}};
  business.filters = {{"customer", "Segment", {"Business"}}};
  ExpectOracleIdentity(business);

  // The sentinel itself: only the partner's rows qualify.
  OlapQuery unattributed = business;
  unattributed.filters = {
      {"customer", "Customer", {std::string(kUnattributedMember)}}};
  ExpectOracleIdentity(unattributed);
}

TEST_F(FederatedEngineTest, MatchesOracleOnHavingAppliedPostMerge) {
  // The HAVING threshold must see *merged* sums: a group that clears it
  // only with both warehouses' tickets combined stays in the answer.
  OlapQuery q;
  q.fact = "LastMinuteSales";
  q.measures = {{"Tickets", AggFn::kSum}};
  q.group_by = {{"destination", "City"}};
  q.having = {{0, CompareOp::kGreater, 40.0}};
  ExpectOracleIdentity(q);
}

TEST_F(FederatedEngineTest, MatchesOracleOnMixedAggregates) {
  OlapQuery q;
  q.fact = "LastMinuteSales";
  q.measures = {{"Tickets", AggFn::kSum},
                {"Tickets", AggFn::kCount},
                {"Miles", AggFn::kMin},
                {"Price", AggFn::kMax}};
  q.group_by = {{"destination", "Country"}};
  ExpectOracleIdentity(q);
}

TEST_F(FederatedEngineTest, MatchesOracleOnFederatedWeatherAverages) {
  OlapQuery q;
  q.fact = "Weather";
  q.measures = {{"TemperatureC", AggFn::kAvg}};
  q.group_by = {{"location", "City"}, {"day", "Date"}};
  // Half-degree partner readings + quarter-degree local ones: the dyadic
  // sums make the merged averages exact.
  ExpectOracleIdentity(q);
}

TEST_F(FederatedEngineTest, MatchesOracleUnderEveryConflictPolicy) {
  OlapQuery q;
  q.fact = "Weather";
  q.measures = {{"TemperatureC", AggFn::kAvg},
                {"TemperatureC", AggFn::kCount}};
  q.group_by = {{"location", "City"}, {"day", "Date"}};

  MergePolicy prefer_local;
  prefer_local.conflicts = ConflictPolicy::kPreferLocal;
  ExpectOracleIdentity(q, prefer_local);

  MergePolicy prefer_fresher;
  prefer_fresher.conflicts = ConflictPolicy::kPreferFresher;
  prefer_fresher.local_refresh_iso = "2004-01-01";
  prefer_fresher.remote_refresh_iso = "2004-02-01";
  ExpectOracleIdentity(q, prefer_fresher);

  MergePolicy quarantine;
  quarantine.conflicts = ConflictPolicy::kQuarantine;
  ExpectOracleIdentity(q, quarantine);
}

TEST_F(FederatedEngineTest, MatchesOracleWithViewCatalogsAttached) {
  // Each member answers its sub-query from its own materialized views —
  // the catalog contract (views byte-identical to recompute) composes
  // with the federation contract.
  ViewCatalog local_views;
  ASSERT_TRUE(
      local_views.DefineAll(DeriveViewsFromSchema(local_->schema())).ok());
  local_->AttachViews(&local_views);
  ASSERT_TRUE(local_views.Bind(*local_).ok());
  ViewCatalog remote_views;
  ASSERT_TRUE(
      remote_views.DefineAll(DeriveViewsFromSchema(remote_->schema())).ok());
  remote_->AttachViews(&remote_views);
  ASSERT_TRUE(remote_views.Bind(*remote_).ok());

  ExpectOracleIdentity(SalesByCityDay());

  OlapQuery weather;
  weather.fact = "Weather";
  weather.measures = {{"TemperatureC", AggFn::kAvg}};
  weather.group_by = {{"location", "City"}, {"day", "Date"}};
  ExpectOracleIdentity(weather);

  local_->AttachViews(nullptr);
  remote_->AttachViews(nullptr);
}

TEST_F(FederatedEngineTest, RemoteFailureDegradesToTypedPartialCoverage) {
  FaultConfig config;
  config.rules = {{kFaultPointFedSubquery, 1.0}};
  FaultInjector chaos(config);

  FederatedEngine engine(local_.get());
  ASSERT_TRUE(
      engine.AddRemote("partner", remote_.get(), mapping_, &chaos).ok());

  OlapQuery q = SalesByCityDay();
  auto fed = engine.Execute(q);
  ASSERT_TRUE(fed.ok()) << fed.status().ToString();
  EXPECT_FALSE(fed->coverage.full());
  EXPECT_EQ(fed->coverage.answered, 1u);
  ASSERT_EQ(fed->coverage.missing.size(), 1u);
  EXPECT_EQ(fed->coverage.missing[0].warehouse, "partner");
  EXPECT_FALSE(fed->coverage.missing[0].reason.empty());

  // The partial answer is exactly the local share — never a silent
  // partial sum mixing a half-failed fan-out.
  auto local_only = OlapEngine(local_.get()).Execute(q);
  ASSERT_TRUE(local_only.ok());
  ExpectSameResult(*local_only, fed->result);
}

TEST_F(FederatedEngineTest, AllMembersFailingIsATypedError) {
  FaultConfig config;
  config.rules = {{kFaultPointFedSubquery, 1.0}};
  FaultInjector local_chaos(config);
  FaultInjector remote_chaos(config);

  FederatedEngine engine(local_.get());
  ASSERT_TRUE(
      engine.AddRemote("partner", remote_.get(), mapping_, &remote_chaos)
          .ok());
  engine.set_local_chaos(&local_chaos);

  auto fed = engine.Execute(SalesByCityDay());
  ASSERT_FALSE(fed.ok());
  EXPECT_TRUE(fed.status().IsUnavailable()) << fed.status().ToString();
  EXPECT_NE(fed.status().message().find("no member could answer"),
            std::string::npos)
      << fed.status().ToString();
}

TEST_F(FederatedEngineTest, CountsQueriesSubqueriesAndMergedGroups) {
  MetricRegistry metrics;
  auto engine = MakeEngine();
  engine->set_metrics(&metrics);

  auto fed = engine->Execute(SalesByCityDay());
  ASSERT_TRUE(fed.ok());
  EXPECT_EQ(metrics.Value(kMetricFedQueries, {{"coverage", "full"}}), 1.0);
  EXPECT_EQ(metrics.Value(kMetricFedSubqueries,
                          {{"warehouse", "local"}, {"outcome", "ok"}}),
            1.0);
  EXPECT_EQ(metrics.Value(kMetricFedSubqueries,
                          {{"warehouse", "partner"}, {"outcome", "ok"}}),
            1.0);
  EXPECT_GE(metrics.Value(kMetricFedGroupsMerged),
            static_cast<double>(fed->result.rows.size()));

  // A chaos-degraded query lands in the partial bucket with a typed
  // error outcome for the failed member.
  FaultConfig config;
  config.rules = {{kFaultPointFedSubquery, 1.0}};
  FaultInjector chaos(config);
  FederatedEngine flaky(local_.get());
  ASSERT_TRUE(
      flaky.AddRemote("partner", remote_.get(), mapping_, &chaos).ok());
  flaky.set_metrics(&metrics);
  ASSERT_TRUE(flaky.Execute(SalesByCityDay()).ok());
  EXPECT_EQ(metrics.Value(kMetricFedQueries, {{"coverage", "partial"}}), 1.0);
  EXPECT_EQ(metrics.Value(kMetricFedSubqueries,
                          {{"warehouse", "partner"}, {"outcome", "error"}}),
            1.0);
}

TEST_F(FederatedEngineTest, CountsConflictResolutions) {
  MetricRegistry metrics;
  MergePolicy quarantine;
  quarantine.conflicts = ConflictPolicy::kQuarantine;
  auto engine = MakeEngine(quarantine);
  engine->set_metrics(&metrics);

  OlapQuery q;
  q.fact = "Weather";
  q.measures = {{"TemperatureC", AggFn::kAvg}};
  q.group_by = {{"location", "City"}};
  ASSERT_TRUE(engine->Execute(q).ok());
  EXPECT_EQ(metrics.Value(kMetricFedConflicts,
                          {{"policy", "quarantine"},
                           {"resolution", "quarantined"}}),
            2.0);
}

TEST_F(FederatedEngineTest, SkippedFilterShortCircuitCountsAsSkipped) {
  MetricRegistry metrics;
  auto engine = MakeEngine();
  engine->set_metrics(&metrics);

  OlapQuery q;
  q.fact = "LastMinuteSales";
  q.measures = {{"Tickets", AggFn::kSum}};
  q.group_by = {{"destination", "Country"}};
  q.filters = {{"customer", "Segment", {"Business"}}};
  auto fed = engine->Execute(q);
  ASSERT_TRUE(fed.ok());
  EXPECT_TRUE(fed->coverage.full());  // zero contribution is still exact
  EXPECT_EQ(metrics.Value(kMetricFedSubqueries,
                          {{"warehouse", "partner"}, {"outcome", "skipped"}}),
            1.0);
}

TEST_F(FederatedEngineTest, ThreadPoolFanOutMatchesInlineExecution) {
  ThreadPool pool(4);
  auto pooled = MakeEngine();
  pooled->set_pool(&pool);
  auto inline_engine = MakeEngine();

  OlapQuery q = SalesByCityDay();
  auto fanned = pooled->Execute(q);
  auto serial = inline_engine->Execute(q);
  ASSERT_TRUE(fanned.ok() && serial.ok());
  ExpectSameResult(serial->result, fanned->result);
}

TEST_F(FederatedEngineTest, RejectsInvalidQueriesAndRegistrations) {
  auto engine = MakeEngine();

  OlapQuery unknown_fact = SalesByCityDay();
  unknown_fact.fact = "NoSuchFact";
  EXPECT_FALSE(engine->Execute(unknown_fact).ok());

  OlapQuery unknown_measure = SalesByCityDay();
  unknown_measure.measures = {{"NoSuchMeasure", AggFn::kSum}};
  EXPECT_FALSE(engine->Execute(unknown_measure).ok());

  OlapQuery bad_having = SalesByCityDay();
  bad_having.having = {{7, CompareOp::kGreater, 0.0}};
  auto result = engine->Execute(bad_having);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("HAVING refers to measure index"),
            std::string::npos);

  FederatedEngine fresh(local_.get());
  EXPECT_TRUE(fresh.AddRemote("local", remote_.get(), mapping_)
                  .IsAlreadyExists());
  EXPECT_TRUE(fresh.AddRemote("partner", nullptr, mapping_)
                  .IsInvalidArgument());
  ASSERT_TRUE(fresh.AddRemote("partner", remote_.get(), mapping_).ok());
  EXPECT_TRUE(fresh.AddRemote("Partner", remote_.get(), mapping_)
                  .IsAlreadyExists());
}

}  // namespace
}  // namespace fed
}  // namespace dw
}  // namespace dwqa
