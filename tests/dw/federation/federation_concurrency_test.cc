#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include "common/metric_names.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "dw/federation/federated_engine.h"
#include "dw/federation/partner_warehouse.h"
#include "dw/olap.h"
#include "integration/last_minute_sales.h"
#include "web/weather_model.h"

namespace dwqa {
namespace dw {
namespace fed {
namespace {

/// Concurrent Execute calls against one pool-backed engine: every caller
/// must get the same answer a serial engine computes, with no data races
/// (this suite runs under TSan via the `threads` label). No trace recorder
/// is attached — the engine's documented exception to thread-safety.
TEST(FederationConcurrencyTest, ConcurrentExecutesMatchSerialAnswers) {
  Date start(2004, 1, 1);
  auto local = integration::LastMinuteSales::MakeWarehouse();
  ASSERT_TRUE(local.ok());
  web::WeatherModel weather(42);
  ASSERT_TRUE(integration::LastMinuteSales::GenerateSales(&*local, weather,
                                                          start, 7)
                  .ok());
  auto remote = PartnerAirline::MakeWarehouse();
  ASSERT_TRUE(remote.ok());
  ASSERT_TRUE(PartnerAirline::GeneratePartnerSales(&*remote, start, 7).ok());
  SchemaMatcher matcher(PartnerAirline::DefaultMatcherOptions());
  auto mapping = matcher.Match(*local, *remote);
  ASSERT_TRUE(mapping.ok());

  ThreadPool pool(4);
  MetricRegistry metrics;
  FederatedEngine engine(&*local);
  ASSERT_TRUE(engine.AddRemote("partner", &*remote, *mapping).ok());
  engine.set_pool(&pool);
  engine.set_metrics(&metrics);

  // Three distinct query shapes, answered serially first.
  std::vector<OlapQuery> queries(3);
  queries[0].fact = "LastMinuteSales";
  queries[0].measures = {{"Tickets", AggFn::kSum}};
  queries[0].group_by = {{"destination", "City"}, {"date", "Date"}};
  queries[1].fact = "LastMinuteSales";
  queries[1].measures = {{"Miles", AggFn::kSum}, {"Tickets", AggFn::kCount}};
  queries[1].group_by = {{"destination", "Country"}};
  queries[2].fact = "LastMinuteSales";
  queries[2].measures = {{"Price", AggFn::kMax}};
  queries[2].group_by = {{"origin", "Airport"}};
  queries[2].filters = {{"origin", "Airport", {"JFK", "El Prat"}}};

  std::vector<OlapResult> expected;
  for (const OlapQuery& q : queries) {
    auto serial = engine.Execute(q);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    expected.push_back(std::move(serial->result));
  }

  constexpr size_t kCallers = 8;
  constexpr size_t kRounds = 5;
  std::vector<std::string> failures(kCallers);
  std::vector<std::thread> callers;
  for (size_t t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      for (size_t round = 0; round < kRounds; ++round) {
        const size_t qi = (t + round) % queries.size();
        auto fed = engine.Execute(queries[qi]);
        if (!fed.ok()) {
          failures[t] = fed.status().ToString();
          return;
        }
        if (!fed->coverage.full() ||
            fed->result.rows != expected[qi].rows ||
            fed->result.headers != expected[qi].headers) {
          failures[t] = "caller " + std::to_string(t) +
                        " diverged from the serial answer on query " +
                        std::to_string(qi);
          return;
        }
      }
    });
  }
  for (std::thread& caller : callers) caller.join();
  for (const std::string& failure : failures) EXPECT_EQ(failure, "");

  // Every execution was counted, and all of them with full coverage.
  EXPECT_EQ(metrics.Value(kMetricFedQueries, {{"coverage", "full"}}),
            static_cast<double>(queries.size() + kCallers * kRounds));
}

}  // namespace
}  // namespace fed
}  // namespace dw
}  // namespace dwqa
