#include "dw/value.h"

#include <gtest/gtest.h>

namespace dwqa {
namespace dw {
namespace {

TEST(ValueTest, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.is_int());
  EXPECT_EQ(v.ToString(), "");
  EXPECT_DOUBLE_EQ(v.ToDouble(), 0.0);
}

TEST(ValueTest, TypedConstruction) {
  EXPECT_TRUE(Value(int64_t{5}).is_int());
  EXPECT_TRUE(Value(5).is_int());
  EXPECT_TRUE(Value(5.5).is_double());
  EXPECT_TRUE(Value("abc").is_string());
  EXPECT_TRUE(Value(std::string("abc")).is_string());
  EXPECT_TRUE(Value(Date(2004, 1, 31)).is_date());
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value(7).as_int(), 7);
  EXPECT_DOUBLE_EQ(Value(2.5).as_double(), 2.5);
  EXPECT_EQ(Value("x").as_string(), "x");
  EXPECT_EQ(Value(Date(2004, 1, 31)).as_date(), Date(2004, 1, 31));
}

TEST(ValueTest, ToDoubleCoercesNumerics) {
  EXPECT_DOUBLE_EQ(Value(7).ToDouble(), 7.0);
  EXPECT_DOUBLE_EQ(Value(2.5).ToDouble(), 2.5);
  EXPECT_DOUBLE_EQ(Value("8").ToDouble(), 0.0);  // Strings do not coerce.
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value(7).ToString(), "7");
  EXPECT_EQ(Value(2.5).ToString(), "2.50");
  EXPECT_EQ(Value("Barcelona").ToString(), "Barcelona");
  EXPECT_EQ(Value(Date(2004, 1, 31)).ToString(), "2004-01-31");
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value(7), Value(7));
  EXPECT_FALSE(Value(7) == Value(8));
  EXPECT_FALSE(Value(7) == Value(7.0));  // Different alternatives differ.
  EXPECT_EQ(Value(), Value());
}

TEST(ValueTest, ColumnTypeNames) {
  EXPECT_STREQ(ColumnTypeName(ColumnType::kInt64), "int64");
  EXPECT_STREQ(ColumnTypeName(ColumnType::kDouble), "double");
  EXPECT_STREQ(ColumnTypeName(ColumnType::kString), "string");
  EXPECT_STREQ(ColumnTypeName(ColumnType::kDate), "date");
}

}  // namespace
}  // namespace dw
}  // namespace dwqa
