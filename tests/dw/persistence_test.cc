#include "dw/persistence.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "dw/csv_etl.h"
#include "dw/olap.h"
#include "integration/last_minute_sales.h"
#include "web/weather_model.h"

namespace dwqa {
namespace dw {
namespace {

namespace fs = std::filesystem;

TEST(SchemaSerdeTest, RoundTrip) {
  MdSchema schema = integration::LastMinuteSales::MakeSchema();
  std::string text = SchemaSerde::ToText(schema);
  MdSchema back = SchemaSerde::FromText(text).ValueOrDie();
  // Same serialized form means same schema.
  EXPECT_EQ(SchemaSerde::ToText(back), text);
  EXPECT_EQ(back.dimensions().size(), schema.dimensions().size());
  EXPECT_EQ(back.facts().size(), schema.facts().size());
  const FactDef* sales = back.FindFact("LastMinuteSales").ValueOrDie();
  EXPECT_EQ(sales->roles.size(), 4u);
  EXPECT_EQ(sales->measures[0].type, ColumnType::kDouble);
  EXPECT_EQ(sales->measures[0].default_agg, AggFn::kSum);
}

TEST(SchemaSerdeTest, CommentsAndBlankLinesIgnored) {
  std::string text =
      "# a comment\n\ndimension\tD\nlevel\tL\n\nfact\tF\nrole\tr\tD\n"
      "measure\tm\tdouble\tSUM\n";
  MdSchema schema = SchemaSerde::FromText(text).ValueOrDie();
  EXPECT_TRUE(schema.FindFact("F").ok());
}

TEST(SchemaSerdeTest, MalformedInputRejected) {
  EXPECT_FALSE(SchemaSerde::FromText("level\tL\n").ok());  // Orphan level.
  EXPECT_FALSE(SchemaSerde::FromText("role\tr\tD\n").ok());
  EXPECT_FALSE(SchemaSerde::FromText("zap\tx\n").ok());
  EXPECT_FALSE(SchemaSerde::FromText("dimension\n").ok());
  EXPECT_FALSE(
      SchemaSerde::FromText("fact\tF\nmeasure\tm\tquux\tSUM\n").ok());
  EXPECT_FALSE(
      SchemaSerde::FromText("fact\tF\nmeasure\tm\tdouble\tZAP\n").ok());
  // Structurally invalid: fact references unknown dimension.
  EXPECT_FALSE(SchemaSerde::FromText("fact\tF\nrole\tr\tGhost\n").ok());
}

TEST(SchemaSerdeTest, MalformedInputNamesTheOffendingLine) {
  // The orphan level sits on line 3 (after a comment and a dimension-less
  // blank); the error must say so.
  Status st =
      SchemaSerde::FromText("# header\n\nlevel\tL\n").status();
  ASSERT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("schema line 3"), std::string::npos)
      << st.ToString();

  st = SchemaSerde::FromText("dimension\tD\nlevel\tL\nwhat is this\n")
           .status();
  ASSERT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("schema line 3"), std::string::npos)
      << st.ToString();
}

TEST(SchemaSerdeTest, EmptyNamesRejected) {
  EXPECT_FALSE(SchemaSerde::FromText("dimension\t\n").ok());
  EXPECT_FALSE(
      SchemaSerde::FromText("dimension\tD\nlevel\t\n").ok());
  EXPECT_FALSE(SchemaSerde::FromText("fact\t\n").ok());
}

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) / (std::string("dwqa_persist_test.") + std::to_string(::getpid()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(PersistenceTest, SaveLoadRoundTrip) {
  Warehouse wh =
      integration::LastMinuteSales::MakeWarehouse().ValueOrDie();
  web::WeatherModel weather(42);
  ASSERT_TRUE(integration::LastMinuteSales::GenerateSales(
                  &wh, weather, Date(2004, 1, 1), 20)
                  .ok());
  ASSERT_TRUE(WarehousePersistence::Save(wh, dir_.string()).ok());
  Warehouse back =
      WarehousePersistence::Load(dir_.string()).ValueOrDie();

  // Fact rows, member sets and OLAP results all round-trip.
  EXPECT_EQ(back.FactRowCount("LastMinuteSales").ValueOrDie(),
            wh.FactRowCount("LastMinuteSales").ValueOrDie());
  EXPECT_EQ(back.MemberNames("Airport").ValueOrDie(),
            wh.MemberNames("Airport").ValueOrDie());
  EXPECT_EQ(CsvEtl::ExportFact(back, "LastMinuteSales").ValueOrDie(),
            CsvEtl::ExportFact(wh, "LastMinuteSales").ValueOrDie());

  OlapQuery q;
  q.fact = "LastMinuteSales";
  q.measures = {{"Tickets", AggFn::kSum}};
  q.group_by = {{"destination", "Country"}};
  OlapResult a = OlapEngine(&wh).Execute(q).ValueOrDie();
  OlapResult b = OlapEngine(&back).Execute(q).ValueOrDie();
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i][0].ToString(), b.rows[i][0].ToString());
    EXPECT_DOUBLE_EQ(a.rows[i][1].ToDouble(), b.rows[i][1].ToDouble());
  }
}

TEST_F(PersistenceTest, MembersWithoutFactsSurvive) {
  Warehouse wh =
      integration::LastMinuteSales::MakeWarehouse().ValueOrDie();
  // No sales generated: dimensions are populated, facts are empty.
  ASSERT_TRUE(WarehousePersistence::Save(wh, dir_.string()).ok());
  Warehouse back =
      WarehousePersistence::Load(dir_.string()).ValueOrDie();
  EXPECT_EQ(back.MemberNames("Airport").ValueOrDie().size(),
            integration::LastMinuteSales::Airports().size());
  EXPECT_EQ(back.FactRowCount("LastMinuteSales").ValueOrDie(), 0u);
}

TEST_F(PersistenceTest, ExpectedFilesWritten) {
  Warehouse wh =
      integration::LastMinuteSales::MakeWarehouse().ValueOrDie();
  ASSERT_TRUE(WarehousePersistence::Save(wh, dir_.string()).ok());
  EXPECT_TRUE(fs::exists(dir_ / "schema.txt"));
  EXPECT_TRUE(fs::exists(dir_ / "dim_Airport.csv"));
  EXPECT_TRUE(fs::exists(dir_ / "fact_LastMinuteSales.csv"));
  EXPECT_TRUE(fs::exists(dir_ / "fact_Weather.csv"));
}

TEST_F(PersistenceTest, LoadFromMissingDirectoryFails) {
  EXPECT_TRUE(WarehousePersistence::Load("/no/such/dwqa/dir")
                  .status()
                  .IsIOError());
}

TEST_F(PersistenceTest, TruncatedDimensionCsvRejected) {
  Warehouse wh =
      integration::LastMinuteSales::MakeWarehouse().ValueOrDie();
  ASSERT_TRUE(WarehousePersistence::Save(wh, dir_.string()).ok());
  // Simulate a crash mid-write: the dimension file survives empty.
  { std::ofstream truncate(dir_ / "dim_Airport.csv"); }
  Status st = WarehousePersistence::Load(dir_.string()).status();
  ASSERT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_NE(st.message().find("empty or truncated"), std::string::npos);
  EXPECT_NE(st.message().find("dim_Airport.csv"), std::string::npos);
}

TEST_F(PersistenceTest, OverlongMemberPathRejectedWithRowNumber) {
  Warehouse wh =
      integration::LastMinuteSales::MakeWarehouse().ValueOrDie();
  ASSERT_TRUE(WarehousePersistence::Save(wh, dir_.string()).ok());
  {
    std::ofstream out(dir_ / "dim_Airport.csv", std::ios::app);
    // Five path segments against a four-level hierarchy.
    out << "X,Y,Z,W,TooDeep\n";
  }
  Status st = WarehousePersistence::Load(dir_.string()).status();
  ASSERT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_NE(st.message().find("row"), std::string::npos);
  EXPECT_NE(st.message().find("levels"), std::string::npos);
}

TEST_F(PersistenceTest, GarbageFactCsvRejectedWithFileName) {
  Warehouse wh =
      integration::LastMinuteSales::MakeWarehouse().ValueOrDie();
  ASSERT_TRUE(WarehousePersistence::Save(wh, dir_.string()).ok());
  {
    std::ofstream out(dir_ / "fact_Weather.csv", std::ios::app);
    out << "\"unterminated quote\n";
  }
  Status st = WarehousePersistence::Load(dir_.string()).status();
  ASSERT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_NE(st.message().find("fact_Weather.csv"), std::string::npos);
}

}  // namespace
}  // namespace dw
}  // namespace dwqa
