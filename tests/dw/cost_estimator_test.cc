#include "dw/cost_estimator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "dw/materialized_view.h"
#include "dw/olap.h"
#include "integration/last_minute_sales.h"

namespace dwqa {
namespace dw {
namespace {

OlapQuery CityTickets() {
  OlapQuery q;
  q.fact = "LastMinuteSales";
  q.measures = {{"Tickets", AggFn::kSum}};
  q.group_by = {{"destination", "City"}};
  return q;
}

class CostEstimatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wh_ = std::make_unique<Warehouse>(
        integration::LastMinuteSales::MakeWarehouse().ValueOrDie());
    web::WeatherModel weather(42);
    ASSERT_TRUE(integration::LastMinuteSales::GenerateSales(
                    wh_.get(), weather, Date(2004, 1, 1), 30)
                    .ok());
    rows_ = wh_->FactRowCount("LastMinuteSales").ValueOrDie();
    ASSERT_GT(rows_, 100u);
  }

  std::unique_ptr<Warehouse> wh_;
  size_t rows_ = 0;
};

TEST_F(CostEstimatorTest, NoViewsMeansFullScanEstimate) {
  CostEstimator estimator;
  CostEstimate estimate = estimator.Estimate(*wh_, CityTickets()).ValueOrDie();
  EXPECT_FALSE(estimate.from_view);
  EXPECT_EQ(estimate.estimated_rows, rows_);
  // Default options: 1000 rows per unit, floor 1.
  EXPECT_DOUBLE_EQ(estimate.cost_units,
                   std::max(1.0, double(rows_) / 1000.0));
}

TEST_F(CostEstimatorTest, ViewCoverageCollapsesTheEstimate) {
  ViewCatalog catalog;
  ASSERT_TRUE(catalog.DefineAll(DeriveViewsFromSchema(wh_->schema())).ok());
  wh_->AttachViews(&catalog);
  ASSERT_TRUE(catalog.Bind(*wh_).ok());

  CostEstimator estimator;
  CostEstimate viewed = estimator.Estimate(*wh_, CityTickets()).ValueOrDie();
  EXPECT_TRUE(viewed.from_view);
  // Rows-touched is the view's group cardinality: a handful of cities,
  // orders of magnitude under the fact row count.
  EXPECT_GT(viewed.estimated_rows, 0u);
  EXPECT_LT(viewed.estimated_rows, rows_ / 10);
  EXPECT_DOUBLE_EQ(viewed.cost_units, 1.0);  // Hits the floor.

  // A filtered query misses every view and pays the full-scan estimate —
  // a sharper unit scale keeps both sides off the floor so the weights
  // actually separate.
  CostEstimator::Options sharp;
  sharp.rows_per_unit = 10.0;
  sharp.min_units = 0.1;
  CostEstimator sharp_estimator(sharp);
  OlapQuery filtered = CityTickets();
  filtered.filters = {{"date", "Year", {"2004"}}};
  CostEstimate scanned =
      sharp_estimator.Estimate(*wh_, filtered).ValueOrDie();
  EXPECT_FALSE(scanned.from_view);
  EXPECT_EQ(scanned.estimated_rows, rows_);
  EXPECT_GT(scanned.cost_units,
            sharp_estimator.Estimate(*wh_, CityTickets())
                .ValueOrDie()
                .cost_units);
}

TEST_F(CostEstimatorTest, OptionsScaleTheUnits) {
  CostEstimator::Options options;
  options.rows_per_unit = 10.0;
  options.min_units = 2.0;
  CostEstimator estimator(options);
  CostEstimate estimate = estimator.Estimate(*wh_, CityTickets()).ValueOrDie();
  EXPECT_DOUBLE_EQ(estimate.cost_units,
                   std::max(2.0, double(rows_) / 10.0));

  // Non-positive rows_per_unit degenerates to raw rows (clamped to the
  // floor) rather than dividing by zero.
  CostEstimator::Options raw;
  raw.rows_per_unit = 0.0;
  raw.min_units = 1.0;
  CostEstimate raw_estimate =
      CostEstimator(raw).Estimate(*wh_, CityTickets()).ValueOrDie();
  EXPECT_DOUBLE_EQ(raw_estimate.cost_units, double(rows_));
}

TEST_F(CostEstimatorTest, UnknownFactIsNotFound) {
  CostEstimator estimator;
  OlapQuery q = CityTickets();
  q.fact = "Ghost";
  EXPECT_TRUE(estimator.Estimate(*wh_, q).status().IsNotFound());
}

TEST_F(CostEstimatorTest, EmptyFactTableCostsTheFloor) {
  Warehouse empty =
      integration::LastMinuteSales::MakeWarehouse().ValueOrDie();
  CostEstimator estimator;
  CostEstimate estimate =
      estimator.Estimate(empty, CityTickets()).ValueOrDie();
  EXPECT_EQ(estimate.estimated_rows, 0u);
  EXPECT_DOUBLE_EQ(estimate.cost_units, 1.0);
}

}  // namespace
}  // namespace dw
}  // namespace dwqa
