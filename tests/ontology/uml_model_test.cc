#include "ontology/uml_model.h"

#include <gtest/gtest.h>

namespace dwqa {
namespace ontology {
namespace {

UmlModel SmallModel() {
  UmlModel m;
  UmlClass fact;
  fact.name = "Sales";
  fact.stereotype = ClassStereotype::kFact;
  fact.attributes = {{"Price", "double", AttrStereotype::kFactAttribute}};
  EXPECT_TRUE(m.AddClass(std::move(fact)).ok());
  UmlClass dim;
  dim.name = "Geo";
  dim.stereotype = ClassStereotype::kDimension;
  EXPECT_TRUE(m.AddClass(std::move(dim)).ok());
  for (const char* level : {"Airport", "City", "Country"}) {
    UmlClass base;
    base.name = level;
    base.stereotype = ClassStereotype::kBase;
    EXPECT_TRUE(m.AddClass(std::move(base)).ok());
  }
  EXPECT_TRUE(
      m.AddAssociation({"Sales", "Geo", AssocKind::kAssociation, "dest"})
          .ok());
  EXPECT_TRUE(
      m.AddAssociation({"Geo", "Airport", AssocKind::kAggregation, ""}).ok());
  EXPECT_TRUE(
      m.AddAssociation({"Airport", "City", AssocKind::kRollsUpTo, ""}).ok());
  EXPECT_TRUE(
      m.AddAssociation({"City", "Country", AssocKind::kRollsUpTo, ""}).ok());
  return m;
}

TEST(UmlModelTest, AddAndFindClass) {
  UmlModel m = SmallModel();
  EXPECT_EQ(m.classes().size(), 5u);
  auto found = m.FindClass("city");
  ASSERT_TRUE(found.ok());  // Case-insensitive.
  EXPECT_EQ((*found)->name, "City");
  EXPECT_TRUE(m.FindClass("Nope").status().IsNotFound());
}

TEST(UmlModelTest, DuplicateClassRejected) {
  UmlModel m = SmallModel();
  UmlClass dup;
  dup.name = "city";
  EXPECT_TRUE(m.AddClass(std::move(dup)).IsAlreadyExists());
}

TEST(UmlModelTest, EmptyNamesRejected) {
  UmlModel m;
  UmlClass c;
  EXPECT_TRUE(m.AddClass(std::move(c)).IsInvalidArgument());
  EXPECT_TRUE(m.AddAssociation({"", "x", AssocKind::kAssociation, ""})
                  .IsInvalidArgument());
}

TEST(UmlModelTest, ValidModelPasses) {
  EXPECT_TRUE(SmallModel().Validate().ok());
}

TEST(UmlModelTest, DanglingAssociationFailsValidation) {
  UmlModel m = SmallModel();
  ASSERT_TRUE(
      m.AddAssociation({"Sales", "Ghost", AssocKind::kAssociation, ""}).ok());
  EXPECT_TRUE(m.Validate().IsNotFound());
}

TEST(UmlModelTest, FactWithoutDimensionFailsValidation) {
  UmlModel m;
  UmlClass fact;
  fact.name = "Orphan";
  fact.stereotype = ClassStereotype::kFact;
  ASSERT_TRUE(m.AddClass(std::move(fact)).ok());
  EXPECT_TRUE(m.Validate().IsInvalidArgument());
}

TEST(UmlModelTest, RollsUpToRequiresBaseClasses) {
  UmlModel m = SmallModel();
  ASSERT_TRUE(
      m.AddAssociation({"Sales", "City", AssocKind::kRollsUpTo, ""}).ok());
  EXPECT_TRUE(m.Validate().IsInvalidArgument());
}

TEST(UmlModelTest, HierarchyCycleDetected) {
  UmlModel m = SmallModel();
  ASSERT_TRUE(
      m.AddAssociation({"Country", "Airport", AssocKind::kRollsUpTo, ""})
          .ok());
  EXPECT_FALSE(m.Validate().ok());
}

TEST(UmlModelTest, HierarchyFromWalksChain) {
  UmlModel m = SmallModel();
  auto chain = m.HierarchyFrom("Airport");
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0], "Airport");
  EXPECT_EQ(chain[1], "City");
  EXPECT_EQ(chain[2], "Country");
  EXPECT_EQ(m.HierarchyFrom("Country").size(), 1u);
}

TEST(UmlModelTest, ClassesWithStereotype) {
  UmlModel m = SmallModel();
  EXPECT_EQ(m.ClassesWithStereotype(ClassStereotype::kFact).size(), 1u);
  EXPECT_EQ(m.ClassesWithStereotype(ClassStereotype::kDimension).size(), 1u);
  EXPECT_EQ(m.ClassesWithStereotype(ClassStereotype::kBase).size(), 3u);
}

TEST(UmlModelTest, StereotypeNames) {
  EXPECT_STREQ(ClassStereotypeName(ClassStereotype::kFact), "Fact");
  EXPECT_STREQ(AttrStereotypeName(AttrStereotype::kDescriptor),
               "Descriptor");
  EXPECT_STREQ(AttrStereotypeName(AttrStereotype::kFactAttribute),
               "FactAttribute");
}

}  // namespace
}  // namespace ontology
}  // namespace dwqa
