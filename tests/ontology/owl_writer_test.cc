#include "ontology/owl_writer.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "ontology/wordnet.h"

namespace dwqa {
namespace ontology {
namespace {

Ontology Small() {
  Ontology o;
  ConceptId airport =
      o.AddConcept("airport", "an airfield", "test").ValueOrDie();
  ConceptId facility =
      o.AddConcept("facility", "a service building", "test").ValueOrDie();
  EXPECT_TRUE(o.AddRelation(airport, RelationKind::kHypernym, facility).ok());
  ConceptId prat =
      o.AddInstance("El Prat", "Barcelona airport", "test").ValueOrDie();
  EXPECT_TRUE(o.AddRelation(prat, RelationKind::kInstanceOf, airport).ok());
  EXPECT_TRUE(o.AddAlias(prat, "BCN").ok());
  EXPECT_TRUE(o.SetAxiom(airport, "kind", "transport").ok());
  return o;
}

TEST(OwlWriterTest, ContainsOwlSkeleton) {
  std::string xml = OwlWriter::ToOwlXml(Small());
  EXPECT_NE(xml.find("<?xml version=\"1.0\"?>"), std::string::npos);
  EXPECT_NE(xml.find("<rdf:RDF"), std::string::npos);
  EXPECT_NE(xml.find("</rdf:RDF>"), std::string::npos);
  EXPECT_NE(xml.find("<owl:Ontology"), std::string::npos);
}

TEST(OwlWriterTest, ClassesAndSubClassOf) {
  std::string xml = OwlWriter::ToOwlXml(Small());
  EXPECT_NE(xml.find("<owl:Class"), std::string::npos);
  EXPECT_NE(xml.find("rdfs:subClassOf"), std::string::npos);
  EXPECT_NE(xml.find("<rdfs:label>airport</rdfs:label>"),
            std::string::npos);
}

TEST(OwlWriterTest, InstancesAsNamedIndividuals) {
  std::string xml = OwlWriter::ToOwlXml(Small());
  EXPECT_NE(xml.find("<owl:NamedIndividual"), std::string::npos);
  EXPECT_NE(xml.find("<rdf:type"), std::string::npos);
  EXPECT_NE(xml.find("<rdfs:label>El Prat</rdfs:label>"),
            std::string::npos);
}

TEST(OwlWriterTest, AliasesAndAxiomsSerialized) {
  std::string xml = OwlWriter::ToOwlXml(Small());
  EXPECT_NE(xml.find("<dwqa:altLabel>bcn</dwqa:altLabel>"),
            std::string::npos);
  EXPECT_NE(xml.find("<dwqa:axiom_kind>transport</dwqa:axiom_kind>"),
            std::string::npos);
}

TEST(OwlWriterTest, XmlEscaping) {
  Ontology o;
  ASSERT_TRUE(o.AddConcept("a<b>&\"c", "gloss with < and &", "test").ok());
  std::string xml = OwlWriter::ToOwlXml(o);
  EXPECT_EQ(xml.find("<b>&\"c"), std::string::npos);
  EXPECT_NE(xml.find("a&lt;b&gt;&amp;&quot;c"), std::string::npos);
}

TEST(OwlWriterTest, FragmentsAreUniquePerConcept) {
  Ontology o;
  ASSERT_TRUE(o.AddConcept("state", "sense 1", "test").ok());
  ASSERT_TRUE(o.AddConcept("state", "sense 2", "test").ok());
  std::string xml = OwlWriter::ToOwlXml(o);
  EXPECT_NE(xml.find("state_0"), std::string::npos);
  EXPECT_NE(xml.find("state_1"), std::string::npos);
}

TEST(OwlWriterTest, CustomIriUsed) {
  std::string xml = OwlWriter::ToOwlXml(Small(), "http://example.com/x");
  EXPECT_NE(xml.find("http://example.com/x#"), std::string::npos);
}

TEST(OwlWriterTest, WriteFileRoundTrip) {
  std::string path = ::testing::TempDir() + "/dwqa_owl_test." + std::to_string(::getpid()) + ".owl";
  ASSERT_TRUE(OwlWriter::WriteFile(Small(), path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, OwlWriter::ToOwlXml(Small()));
  std::remove(path.c_str());
}

TEST(OwlWriterTest, WriteFileBadPathFails) {
  EXPECT_TRUE(OwlWriter::WriteFile(Small(), "/no/such/dir/file.owl")
                  .IsIOError());
}

TEST(OwlWriterTest, FullMiniWordNetSerializes) {
  Ontology wn = MiniWordNet::Build();
  std::string xml = OwlWriter::ToOwlXml(wn);
  EXPECT_GT(xml.size(), 10000u);
  // Well-formed-ish: tags balance for the two element kinds we emit.
  size_t open_cls = 0, close_cls = 0, pos = 0;
  while ((pos = xml.find("<owl:Class", pos)) != std::string::npos) {
    ++open_cls;
    pos += 10;
  }
  pos = 0;
  while ((pos = xml.find("</owl:Class>", pos)) != std::string::npos) {
    ++close_cls;
    pos += 12;
  }
  EXPECT_EQ(open_cls, close_cls);
}

}  // namespace
}  // namespace ontology
}  // namespace dwqa
