#include "ontology/similarity.h"

#include <gtest/gtest.h>

#include "ontology/wordnet.h"

namespace dwqa {
namespace ontology {
namespace {

class SimilarityTest : public ::testing::Test {
 protected:
  Ontology wn_ = MiniWordNet::Build();

  ConceptId C(const char* lemma) { return wn_.FindClass(lemma).ValueOrDie(); }
};

TEST_F(SimilarityTest, IdenticalConceptsScoreOne) {
  EXPECT_DOUBLE_EQ(Similarity::WuPalmer(wn_, C("city"), C("city")), 1.0);
  EXPECT_DOUBLE_EQ(Similarity::PathSimilarity(wn_, C("city"), C("city")),
                   1.0);
}

TEST_F(SimilarityTest, SiblingsCloserThanStrangers) {
  // city and country are both region hyponyms; city and airport only share
  // the root.
  double siblings = Similarity::WuPalmer(wn_, C("city"), C("country"));
  double strangers = Similarity::WuPalmer(wn_, C("city"), C("airport"));
  EXPECT_GT(siblings, strangers);
  EXPECT_GT(siblings, 0.5);
}

TEST_F(SimilarityTest, LcsOfSiblingsIsParent) {
  ConceptId lcs =
      Similarity::LeastCommonSubsumer(wn_, C("city"), C("country"))
          .ValueOrDie();
  EXPECT_EQ(wn_.GetConcept(lcs).lemma, "region");
}

TEST_F(SimilarityTest, LcsWithAncestorIsTheAncestor) {
  ConceptId lcs =
      Similarity::LeastCommonSubsumer(wn_, C("capital"), C("location"))
          .ValueOrDie();
  EXPECT_EQ(lcs, C("location"));
  // And similarity to a near ancestor beats similarity to the root.
  EXPECT_GT(Similarity::WuPalmer(wn_, C("capital"), C("city")),
            Similarity::WuPalmer(wn_, C("capital"), C("entity")));
}

TEST_F(SimilarityTest, InstancesWork) {
  auto barcelona = wn_.Find("barcelona");
  auto madrid = wn_.Find("madrid");
  ASSERT_FALSE(barcelona.empty());
  ASSERT_FALSE(madrid.empty());
  double sim = Similarity::WuPalmer(wn_, barcelona[0], madrid[0]);
  EXPECT_GT(sim, 0.6);  // Both cities.
  EXPECT_LT(sim, 1.0);
}

TEST_F(SimilarityTest, DisjointTreesScoreZero) {
  Ontology o;
  ConceptId a = o.AddConcept("alpha", "", "t").ValueOrDie();
  ConceptId b = o.AddConcept("beta", "", "t").ValueOrDie();
  EXPECT_DOUBLE_EQ(Similarity::WuPalmer(o, a, b), 0.0);
  EXPECT_DOUBLE_EQ(Similarity::PathSimilarity(o, a, b), 0.0);
  EXPECT_TRUE(Similarity::LeastCommonSubsumer(o, a, b)
                  .status()
                  .IsNotFound());
}

TEST_F(SimilarityTest, InvalidIdsRejected) {
  EXPECT_TRUE(Similarity::LeastCommonSubsumer(wn_, -1, C("city"))
                  .status()
                  .IsInvalidArgument());
  EXPECT_DOUBLE_EQ(Similarity::WuPalmer(wn_, -1, C("city")), 0.0);
}

TEST_F(SimilarityTest, SymmetryProperty) {
  const char* lemmas[] = {"city", "country", "airport", "temperature",
                          "person", "sale"};
  for (const char* a : lemmas) {
    for (const char* b : lemmas) {
      EXPECT_DOUBLE_EQ(Similarity::WuPalmer(wn_, C(a), C(b)),
                       Similarity::WuPalmer(wn_, C(b), C(a)))
          << a << "/" << b;
      EXPECT_DOUBLE_EQ(Similarity::PathSimilarity(wn_, C(a), C(b)),
                       Similarity::PathSimilarity(wn_, C(b), C(a)))
          << a << "/" << b;
    }
  }
}

TEST_F(SimilarityTest, RangeProperty) {
  const char* lemmas[] = {"city", "airport", "person", "month", "price"};
  for (const char* a : lemmas) {
    for (const char* b : lemmas) {
      double wp = Similarity::WuPalmer(wn_, C(a), C(b));
      EXPECT_GE(wp, 0.0);
      EXPECT_LE(wp, 1.0);
      double ps = Similarity::PathSimilarity(wn_, C(a), C(b));
      EXPECT_GE(ps, 0.0);
      EXPECT_LE(ps, 1.0);
    }
  }
}

}  // namespace
}  // namespace ontology
}  // namespace dwqa
