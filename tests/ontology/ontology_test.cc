#include "ontology/ontology.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace dwqa {
namespace ontology {
namespace {

class OntologyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    entity_ = onto_.AddConcept("entity", "root", "test").ValueOrDie();
    location_ =
        onto_.AddConcept("location", "a place", "test").ValueOrDie();
    city_ = onto_.AddConcept("city", "urban area", "test").ValueOrDie();
    ASSERT_TRUE(
        onto_.AddRelation(location_, RelationKind::kHypernym, entity_).ok());
    ASSERT_TRUE(
        onto_.AddRelation(city_, RelationKind::kHypernym, location_).ok());
    barcelona_ =
        onto_.AddInstance("Barcelona", "city in Spain", "test").ValueOrDie();
    ASSERT_TRUE(
        onto_.AddRelation(barcelona_, RelationKind::kInstanceOf, city_).ok());
  }

  Ontology onto_;
  ConceptId entity_, location_, city_, barcelona_;
};

TEST_F(OntologyTest, AddAndLookup) {
  EXPECT_EQ(onto_.concept_count(), 4u);
  auto found = onto_.FindClass("city");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, city_);
  EXPECT_EQ(onto_.GetConcept(city_).lemma, "city");
  EXPECT_FALSE(onto_.GetConcept(city_).is_instance);
  EXPECT_TRUE(onto_.GetConcept(barcelona_).is_instance);
}

TEST_F(OntologyTest, EmptyNameRejected) {
  EXPECT_FALSE(onto_.AddConcept("", "x", "test").ok());
}

TEST_F(OntologyTest, LemmaIsLowercased) {
  auto ids = onto_.Find("barcelona");
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], barcelona_);
}

TEST_F(OntologyTest, MultipleSensesShareLemma) {
  ConceptId state1 =
      onto_.AddConcept("state", "a condition", "test").ValueOrDie();
  ConceptId state2 =
      onto_.AddConcept("state", "administrative district", "test")
          .ValueOrDie();
  auto ids = onto_.Find("state");
  EXPECT_EQ(ids.size(), 2u);
  // First-sense heuristic: earliest insertion wins.
  EXPECT_EQ(onto_.FindClass("state").ValueOrDie(), state1);
  (void)state2;
}

TEST_F(OntologyTest, InverseRelationsMaintained) {
  auto hypos = onto_.Related(location_, RelationKind::kHyponym);
  ASSERT_EQ(hypos.size(), 1u);
  EXPECT_EQ(hypos[0], city_);
  auto insts = onto_.Related(city_, RelationKind::kHasInstance);
  ASSERT_EQ(insts.size(), 1u);
  EXPECT_EQ(insts[0], barcelona_);
}

TEST_F(OntologyTest, RelationRejectsSelfLoopAndBadIds) {
  EXPECT_TRUE(onto_.AddRelation(city_, RelationKind::kSynonymOf, city_)
                  .IsInvalidArgument());
  EXPECT_TRUE(onto_.AddRelation(city_, RelationKind::kHypernym, 999)
                  .IsInvalidArgument());
  EXPECT_TRUE(onto_.AddRelation(-1, RelationKind::kHypernym, city_)
                  .IsInvalidArgument());
}

TEST_F(OntologyTest, DuplicateRelationIsIdempotent) {
  size_t before = onto_.relation_count();
  EXPECT_TRUE(
      onto_.AddRelation(city_, RelationKind::kHypernym, location_).ok());
  EXPECT_EQ(onto_.relation_count(), before);
}

TEST_F(OntologyTest, IsATransitive) {
  EXPECT_TRUE(onto_.IsA(barcelona_, city_));
  EXPECT_TRUE(onto_.IsA(barcelona_, location_));
  EXPECT_TRUE(onto_.IsA(barcelona_, entity_));
  EXPECT_TRUE(onto_.IsA(city_, entity_));
  EXPECT_FALSE(onto_.IsA(entity_, city_));
  EXPECT_TRUE(onto_.IsA(city_, city_));  // Reflexive.
}

TEST_F(OntologyTest, HypernymPathWalksUp) {
  auto path = onto_.HypernymPath(barcelona_);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[0], barcelona_);
  EXPECT_EQ(path[1], city_);
  EXPECT_EQ(path[2], location_);
  EXPECT_EQ(path[3], entity_);
}

TEST_F(OntologyTest, SubtreeCollectsDescendants) {
  auto subtree = onto_.SubtreeOf(entity_);
  EXPECT_EQ(subtree.size(), 3u);  // location, city, barcelona.
  auto limited = onto_.SubtreeOf(entity_, 2);
  EXPECT_EQ(limited.size(), 2u);
}

TEST_F(OntologyTest, AliasesFindTheConcept) {
  ASSERT_TRUE(onto_.AddAlias(barcelona_, "BCN").ok());
  auto ids = onto_.Find("bcn");
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], barcelona_);
  // Duplicate alias is a no-op.
  ASSERT_TRUE(onto_.AddAlias(barcelona_, "BCN").ok());
  EXPECT_EQ(onto_.GetConcept(barcelona_).aliases.size(), 1u);
  // Alias equal to the lemma itself is a no-op.
  ASSERT_TRUE(onto_.AddAlias(barcelona_, "Barcelona").ok());
  EXPECT_EQ(onto_.GetConcept(barcelona_).aliases.size(), 1u);
}

TEST_F(OntologyTest, AxiomsSetGetOverwrite) {
  ASSERT_TRUE(onto_.SetAxiom(city_, "min_population", "1000").ok());
  EXPECT_EQ(onto_.GetAxiom(city_, "min_population").ValueOrDie(), "1000");
  ASSERT_TRUE(onto_.SetAxiom(city_, "min_population", "5000").ok());
  EXPECT_EQ(onto_.GetAxiom(city_, "min_population").ValueOrDie(), "5000");
  EXPECT_TRUE(onto_.GetAxiom(city_, "nope").status().IsNotFound());
  EXPECT_TRUE(onto_.GetAxiom(999, "x").status().IsInvalidArgument());
}

TEST_F(OntologyTest, FindUnknownLemmaEmpty) {
  EXPECT_TRUE(onto_.Find("zzz").empty());
  EXPECT_TRUE(onto_.FindClass("zzz").status().IsNotFound());
}

TEST_F(OntologyTest, SymmetricRelationKinds) {
  EXPECT_EQ(InverseRelation(RelationKind::kSynonymOf),
            RelationKind::kSynonymOf);
  EXPECT_EQ(InverseRelation(RelationKind::kAntonym), RelationKind::kAntonym);
  EXPECT_EQ(InverseRelation(RelationKind::kHypernym),
            RelationKind::kHyponym);
  EXPECT_EQ(InverseRelation(RelationKind::kPartOf), RelationKind::kHasPart);
  EXPECT_EQ(InverseRelation(RelationKind::kInstanceOf),
            RelationKind::kHasInstance);
  EXPECT_EQ(InverseRelation(RelationKind::kHasProperty),
            RelationKind::kPropertyOf);
}

TEST_F(OntologyTest, AllRelationKindsHaveNames) {
  for (RelationKind k :
       {RelationKind::kHypernym, RelationKind::kHyponym,
        RelationKind::kSynonymOf, RelationKind::kPartOf,
        RelationKind::kHasPart, RelationKind::kAntonym,
        RelationKind::kInstanceOf, RelationKind::kHasInstance,
        RelationKind::kHasProperty, RelationKind::kPropertyOf,
        RelationKind::kAssociated}) {
    EXPECT_STRNE(RelationKindName(k), "?");
  }
}

TEST_F(OntologyTest, IsACrossesSynonymLinks) {
  ConceptId town =
      onto_.AddConcept("town", "small city", "test").ValueOrDie();
  ASSERT_TRUE(onto_.AddRelation(town, RelationKind::kSynonymOf, city_).ok());
  EXPECT_TRUE(onto_.IsA(town, location_));
}

}  // namespace
}  // namespace ontology
}  // namespace dwqa
