#include "ontology/enrichment.h"

#include <gtest/gtest.h>

#include "ontology/wordnet.h"

namespace dwqa {
namespace ontology {
namespace {

std::vector<InstanceSeed> AirportSeeds() {
  return {
      {"El Prat", {}, "Barcelona", ""},
      {"JFK", {"Kennedy International Airport"}, "New York", ""},
      {"John Wayne", {}, "Costa Mesa", ""},
  };
}

TEST(EnrichmentTest, AddsInstancesUnderConcept) {
  Ontology onto = MiniWordNet::Build();
  auto report = Enricher::Enrich(&onto, "airport", AirportSeeds());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->instances_added, 3u);
  ConceptId airport = onto.FindClass("airport").ValueOrDie();
  // "El Prat" now has an airport sense besides the musical-group sense.
  bool has_airport_sense = false;
  for (ConceptId id : onto.Find("el prat")) {
    if (onto.IsA(id, airport)) has_airport_sense = true;
  }
  EXPECT_TRUE(has_airport_sense);
}

TEST(EnrichmentTest, PartOfLinksToExistingCityInstance) {
  Ontology onto = MiniWordNet::Build();
  ASSERT_TRUE(Enricher::Enrich(&onto, "airport", AirportSeeds()).ok());
  ConceptId airport = onto.FindClass("airport").ValueOrDie();
  ConceptId el_prat = kInvalidConcept;
  for (ConceptId id : onto.Find("el prat")) {
    if (onto.IsA(id, airport)) el_prat = id;
  }
  ASSERT_NE(el_prat, kInvalidConcept);
  auto parts = onto.Related(el_prat, RelationKind::kPartOf);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(onto.GetConcept(parts[0]).lemma, "barcelona");
  // The pre-existing Barcelona instance was reused, not duplicated.
  EXPECT_TRUE(onto.GetConcept(parts[0]).is_instance);
}

TEST(EnrichmentTest, UnknownContainerGetsCreated) {
  Ontology onto = MiniWordNet::Build();
  // "Costa Mesa" is a weather-model city but also exists in MiniWordNet?
  // Use a genuinely unknown town.
  std::vector<InstanceSeed> seeds = {{"Tiny Field", {}, "Nowhereville", ""}};
  ASSERT_TRUE(Enricher::Enrich(&onto, "airport", seeds).ok());
  EXPECT_FALSE(onto.Find("nowhereville").empty());
}

TEST(EnrichmentTest, AliasesRegistered) {
  Ontology onto = MiniWordNet::Build();
  ASSERT_TRUE(Enricher::Enrich(&onto, "airport", AirportSeeds()).ok());
  // The alias lets "Kennedy International Airport" find the JFK instance.
  ConceptId airport = onto.FindClass("airport").ValueOrDie();
  bool found = false;
  for (ConceptId id : onto.Find("kennedy international airport")) {
    if (onto.IsA(id, airport) && onto.GetConcept(id).source == "dw") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(EnrichmentTest, ReEnrichmentIsIdempotent) {
  Ontology onto = MiniWordNet::Build();
  size_t n1 = 0;
  {
    auto report = Enricher::Enrich(&onto, "airport", AirportSeeds());
    ASSERT_TRUE(report.ok());
    n1 = onto.concept_count();
  }
  auto report = Enricher::Enrich(&onto, "airport", AirportSeeds());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->instances_added, 0u);
  EXPECT_EQ(report->skipped_existing, 3u);
  EXPECT_EQ(onto.concept_count(), n1);
}

TEST(EnrichmentTest, UnknownConceptFails) {
  Ontology onto = MiniWordNet::Build();
  auto report = Enricher::Enrich(&onto, "zeppelin port", AirportSeeds());
  EXPECT_TRUE(report.status().IsNotFound());
}

TEST(EnrichmentTest, EmptySeedNameFails) {
  Ontology onto = MiniWordNet::Build();
  std::vector<InstanceSeed> seeds = {{"", {}, "", ""}};
  EXPECT_TRUE(
      Enricher::Enrich(&onto, "airport", seeds).status().IsInvalidArgument());
}

TEST(EnrichmentTest, NullOntologyFails) {
  EXPECT_TRUE(Enricher::Enrich(nullptr, "airport", AirportSeeds())
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace ontology
}  // namespace dwqa
