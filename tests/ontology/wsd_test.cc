#include "ontology/wsd.h"

#include <gtest/gtest.h>

#include "ontology/enrichment.h"
#include "ontology/wordnet.h"

namespace dwqa {
namespace ontology {
namespace {

TEST(WsdTest, UnknownLemmaIsNotFound) {
  Ontology wn = MiniWordNet::Build();
  Wsd wsd(&wn);
  EXPECT_TRUE(wsd.Disambiguate("zorblax", {}).status().IsNotFound());
}

TEST(WsdTest, SingleSenseWinsTrivially) {
  Ontology wn = MiniWordNet::Build();
  Wsd wsd(&wn);
  auto choice = wsd.Disambiguate("barcelona", {"weather"});
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(choice->candidate_count, 1u);
  EXPECT_EQ(wn.GetConcept(choice->sense).lemma, "barcelona");
}

TEST(WsdTest, ContextSelectsAirportSenseAfterEnrichment) {
  // The paper's motivating case: once the DW enriches the ontology,
  // "El Prat" in an aviation context resolves to the *airport* sense, not
  // the musical group (the signature of the new sense contains "airport"
  // and "barcelona" through its instanceOf/partOf neighbours).
  Ontology wn = MiniWordNet::Build();
  std::vector<InstanceSeed> seeds = {{"El Prat", {}, "Barcelona", ""}};
  ASSERT_TRUE(Enricher::Enrich(&wn, "airport", seeds).ok());
  Wsd wsd(&wn);
  auto choice = wsd.Disambiguate(
      "el prat", {"the", "flight", "landed", "at", "the", "airport", "in",
                  "barcelona"});
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(choice->candidate_count, 2u);
  ConceptId airport = wn.FindClass("airport").ValueOrDie();
  EXPECT_TRUE(wn.IsA(choice->sense, airport));
}

TEST(WsdTest, MusicContextSelectsBandSense) {
  Ontology wn = MiniWordNet::Build();
  std::vector<InstanceSeed> seeds = {{"El Prat", {}, "Barcelona", ""}};
  ASSERT_TRUE(Enricher::Enrich(&wn, "airport", seeds).ok());
  Wsd wsd(&wn);
  auto choice = wsd.Disambiguate(
      "el prat", {"the", "musical", "group", "play", "music", "spanish"});
  ASSERT_TRUE(choice.ok());
  ConceptId group = wn.FindClass("group").ValueOrDie();
  EXPECT_TRUE(wn.IsA(choice->sense, group));
}

TEST(WsdTest, WithoutEnrichmentOnlyTheDistractorSenseExists) {
  Ontology wn = MiniWordNet::Build();
  Wsd wsd(&wn);
  auto choice = wsd.Disambiguate("el prat", {"temperature", "january"});
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(choice->candidate_count, 1u);
  ConceptId airport = wn.FindClass("airport").ValueOrDie();
  EXPECT_FALSE(wn.IsA(choice->sense, airport));
}

TEST(WsdTest, SignatureContainsGlossAndNeighbors) {
  Ontology wn = MiniWordNet::Build();
  Wsd wsd(&wn);
  ConceptId airport = wn.FindClass("airport").ValueOrDie();
  auto sig = wsd.Signature(airport);
  bool has_control_tower_word = false;
  bool has_hypernym_name = false;
  for (const auto& w : sig) {
    if (w == "passengers" || w == "hangars" || w == "airfield") {
      has_control_tower_word = true;
    }
    if (w == "facility") has_hypernym_name = true;
  }
  EXPECT_TRUE(has_control_tower_word);
  EXPECT_TRUE(has_hypernym_name);
}

TEST(WsdTest, SignatureOfInvalidIdIsEmpty) {
  Ontology wn = MiniWordNet::Build();
  Wsd wsd(&wn);
  EXPECT_TRUE(wsd.Signature(kInvalidConcept).empty());
  EXPECT_TRUE(wsd.Signature(999999).empty());
}

TEST(WsdTest, EmptyContextStillPicksSomeSense) {
  Ontology wn = MiniWordNet::Build();
  Wsd wsd(&wn);
  auto choice = wsd.Disambiguate("jfk", {});
  ASSERT_TRUE(choice.ok());
  EXPECT_NE(choice->sense, kInvalidConcept);
}

}  // namespace
}  // namespace ontology
}  // namespace dwqa
