#include "ontology/merge.h"

#include <gtest/gtest.h>

#include "ontology/enrichment.h"
#include "ontology/uml_to_ontology.h"
#include "ontology/wordnet.h"
#include "integration/last_minute_sales.h"

namespace dwqa {
namespace ontology {
namespace {

Ontology DomainOntology() {
  UmlModel model = integration::LastMinuteSales::MakeUmlModel();
  Ontology domain = UmlToOntology::Transform(model).ValueOrDie();
  std::vector<InstanceSeed> seeds = {
      {"El Prat", {}, "Barcelona", ""},
      {"JFK", {"Kennedy International Airport"}, "New York", ""},
  };
  EXPECT_TRUE(Enricher::Enrich(&domain, "airport", seeds).ok());
  return domain;
}

TEST(MergeTest, ExactMatchesMapOntoUpperConcepts) {
  Ontology upper = MiniWordNet::Build();
  size_t upper_airport_count = upper.Find("airport").size();
  auto report = OntologyMerger::Merge(&upper, DomainOntology());
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->exact, 0u);
  // "Airport", "City", "State", "Country" all exist in the upper ontology:
  // no duplicate class concepts created.
  EXPECT_EQ(upper.Find("airport").size(), upper_airport_count);
}

TEST(MergeTest, HeadWordFallbackForLastMinuteSales) {
  // "Last Minute Sales" is not in WordNet; its head "Sale" is, so it is
  // added as a new hyponym of "sale" (§3, Step 3).
  Ontology upper = MiniWordNet::Build();
  auto report = OntologyMerger::Merge(&upper, DomainOntology());
  ASSERT_TRUE(report.ok());
  auto lms = upper.Find("last minute sales");
  ASSERT_FALSE(lms.empty());
  EXPECT_TRUE(upper.IsA(lms[0], upper.FindClass("sale").ValueOrDie()));
  bool recorded = false;
  for (const MergeRecord& r : report->records) {
    if (r.domain_concept == "Last Minute Sales") {
      EXPECT_EQ(r.decision, MergeDecision::kHeadHyponym);
      EXPECT_EQ(r.target, "sale");
      recorded = true;
    }
  }
  EXPECT_TRUE(recorded);
}

TEST(MergeTest, JfkAliasEnrichesKennedyInstance) {
  // The paper's example: "JFK" matches the existing WordNet instance
  // "Kennedy International Airport" through its alias and the two become
  // synonyms.
  Ontology upper = MiniWordNet::Build();
  ASSERT_TRUE(OntologyMerger::Merge(&upper, DomainOntology()).ok());
  ConceptId airport = upper.FindClass("airport").ValueOrDie();
  std::vector<ConceptId> jfk_airport;
  for (ConceptId id : upper.Find("jfk")) {
    if (upper.IsA(id, airport)) jfk_airport.push_back(id);
  }
  ASSERT_EQ(jfk_airport.size(), 1u);
  EXPECT_EQ(upper.GetConcept(jfk_airport[0]).lemma,
            "kennedy international airport");
}

TEST(MergeTest, ElPratAddedAsNewAirportInstance) {
  // "El Prat" has no airport instance in the upper ontology (only the
  // musical group) → a new instance is attached under "airport".
  Ontology upper = MiniWordNet::Build();
  ASSERT_TRUE(OntologyMerger::Merge(&upper, DomainOntology()).ok());
  ConceptId airport = upper.FindClass("airport").ValueOrDie();
  bool has_airport_sense = false;
  bool still_has_group_sense = false;
  for (ConceptId id : upper.Find("el prat")) {
    if (upper.IsA(id, airport)) has_airport_sense = true;
    if (upper.IsA(id, upper.FindClass("group").ValueOrDie())) {
      still_has_group_sense = true;
    }
  }
  EXPECT_TRUE(has_airport_sense);
  EXPECT_TRUE(still_has_group_sense);
}

TEST(MergeTest, PartOfRelationsCarriedOver) {
  Ontology upper = MiniWordNet::Build();
  ASSERT_TRUE(OntologyMerger::Merge(&upper, DomainOntology()).ok());
  ConceptId airport = upper.FindClass("airport").ValueOrDie();
  for (ConceptId id : upper.Find("el prat")) {
    if (!upper.IsA(id, airport)) continue;
    auto parts = upper.Related(id, RelationKind::kPartOf);
    ASSERT_FALSE(parts.empty());
    EXPECT_EQ(upper.GetConcept(parts[0]).lemma, "barcelona");
    return;
  }
  FAIL() << "no airport sense of El Prat after merge";
}

TEST(MergeTest, NewTreeWhenNothingSimilar) {
  Ontology upper = MiniWordNet::Build();
  Ontology domain;
  ConceptId weird =
      domain.AddConcept("Zorblax Quux", "utterly novel", "uml").ValueOrDie();
  (void)weird;
  auto report = OntologyMerger::Merge(&upper, domain);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->new_tree, 1u);
  auto found = upper.Find("zorblax quux");
  ASSERT_EQ(found.size(), 1u);
  // A new tree has no hypernym.
  EXPECT_TRUE(upper.Related(found[0], RelationKind::kHypernym).empty());
}

TEST(MergeTest, PartialMatchLinksAsSynonym) {
  Ontology upper = MiniWordNet::Build();
  Ontology domain;
  // "temperatures" ~ "temperature" at > 0.85 similarity.
  ASSERT_TRUE(domain.AddConcept("Temperatur", "a misspelling", "uml").ok());
  MergeOptions options;
  options.partial_threshold = 0.8;
  auto report = OntologyMerger::Merge(&upper, domain, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->partial, 1u);
  // The domain name became an alias of the upper concept.
  auto found = upper.Find("temperatur");
  ASSERT_FALSE(found.empty());
  EXPECT_EQ(upper.GetConcept(found[0]).lemma, "temperature");
}

TEST(MergeTest, DisablingHeadFallbackCreatesNewTrees) {
  Ontology upper = MiniWordNet::Build();
  MergeOptions options;
  options.enable_head = false;
  options.enable_partial = false;
  auto report = OntologyMerger::Merge(&upper, DomainOntology(), options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->head, 0u);
  EXPECT_GT(report->new_tree, 0u);
}

TEST(MergeTest, AxiomsTravelWithConcepts) {
  Ontology upper = MiniWordNet::Build();
  Ontology domain;
  ConceptId c = domain.AddConcept("temperature", "attr", "uml").ValueOrDie();
  ASSERT_TRUE(domain.SetAxiom(c, "unit", "ºC|F").ok());
  ASSERT_TRUE(OntologyMerger::Merge(&upper, domain).ok());
  ConceptId upper_temp = upper.FindClass("temperature").ValueOrDie();
  EXPECT_EQ(upper.GetAxiom(upper_temp, "unit").ValueOrDie(), "ºC|F");
}

TEST(MergeTest, HeadWordExtraction) {
  EXPECT_EQ(OntologyMerger::HeadWord("Last Minute Sales"), "sale");
  EXPECT_EQ(OntologyMerger::HeadWord("City"), "city");
  EXPECT_EQ(OntologyMerger::HeadWord(""), "");
  EXPECT_EQ(OntologyMerger::HeadWord("Airport Dimension"), "dimension");
}

TEST(MergeTest, NullUpperRejected) {
  Ontology domain;
  EXPECT_TRUE(OntologyMerger::Merge(nullptr, domain)
                  .status()
                  .IsInvalidArgument());
}

TEST(MergeTest, ReportCountsAreConsistent) {
  Ontology upper = MiniWordNet::Build();
  auto report = OntologyMerger::Merge(&upper, DomainOntology());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->records.size(),
            report->exact + report->partial + report->head +
                report->new_tree + report->new_instances);
}

}  // namespace
}  // namespace ontology
}  // namespace dwqa
