#include "ontology/uml_to_ontology.h"

#include <gtest/gtest.h>

#include "integration/last_minute_sales.h"

namespace dwqa {
namespace ontology {
namespace {

TEST(UmlToOntologyTest, ClassesBecomeConcepts) {
  UmlModel model = integration::LastMinuteSales::MakeUmlModel();
  auto onto = UmlToOntology::Transform(model);
  ASSERT_TRUE(onto.ok());
  // Every UML class has a concept (the Figure 2 shape).
  for (const UmlClass& c : model.classes()) {
    EXPECT_TRUE(onto->FindClass(c.name).ok() ||
                !onto->Find(c.name).empty())
        << c.name;
  }
}

TEST(UmlToOntologyTest, AttributesBecomePropertyConcepts) {
  UmlModel model = integration::LastMinuteSales::MakeUmlModel();
  Ontology onto = UmlToOntology::Transform(model).ValueOrDie();
  ConceptId sales = onto.FindClass("last minute sales").ValueOrDie();
  auto props = onto.Related(sales, RelationKind::kHasProperty);
  // Price, Miles, Tickets.
  EXPECT_EQ(props.size(), 3u);
  bool has_price = false;
  for (ConceptId p : props) {
    if (onto.GetConcept(p).lemma == "price") has_price = true;
  }
  EXPECT_TRUE(has_price);
}

TEST(UmlToOntologyTest, RollsUpToBecomesPartOf) {
  UmlModel model = integration::LastMinuteSales::MakeUmlModel();
  Ontology onto = UmlToOntology::Transform(model).ValueOrDie();
  ConceptId airport = onto.FindClass("airport").ValueOrDie();
  ConceptId city = onto.FindClass("city").ValueOrDie();
  auto parts = onto.Related(airport, RelationKind::kPartOf);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], city);
}

TEST(UmlToOntologyTest, AssociationsBecomeAssociated) {
  UmlModel model = integration::LastMinuteSales::MakeUmlModel();
  Ontology onto = UmlToOntology::Transform(model).ValueOrDie();
  ConceptId sales = onto.FindClass("last minute sales").ValueOrDie();
  auto assoc = onto.Related(sales, RelationKind::kAssociated);
  // origin + destination collapse onto the same Airport Dimension concept
  // (relation store is idempotent), plus Customer and Date dimensions.
  EXPECT_EQ(assoc.size(), 3u);
}

TEST(UmlToOntologyTest, OidAttributesSkipped) {
  UmlModel model;
  UmlClass fact;
  fact.name = "F";
  fact.stereotype = ClassStereotype::kFact;
  fact.attributes = {{"Id", "int", AttrStereotype::kOID},
                     {"Amount", "double", AttrStereotype::kFactAttribute}};
  ASSERT_TRUE(model.AddClass(std::move(fact)).ok());
  UmlClass dim;
  dim.name = "D";
  dim.stereotype = ClassStereotype::kDimension;
  ASSERT_TRUE(model.AddClass(std::move(dim)).ok());
  ASSERT_TRUE(
      model.AddAssociation({"F", "D", AssocKind::kAssociation, ""}).ok());
  Ontology onto = UmlToOntology::Transform(model).ValueOrDie();
  EXPECT_TRUE(onto.Find("id").empty());
  EXPECT_FALSE(onto.Find("amount").empty());
}

TEST(UmlToOntologyTest, SharedAttributeNamesReuseOneConcept) {
  UmlModel model;
  UmlClass fact;
  fact.name = "F";
  fact.stereotype = ClassStereotype::kFact;
  ASSERT_TRUE(model.AddClass(std::move(fact)).ok());
  UmlClass dim;
  dim.name = "D";
  dim.stereotype = ClassStereotype::kDimension;
  ASSERT_TRUE(model.AddClass(std::move(dim)).ok());
  ASSERT_TRUE(
      model.AddAssociation({"F", "D", AssocKind::kAssociation, ""}).ok());
  for (const char* base : {"City", "Country"}) {
    UmlClass b;
    b.name = base;
    b.stereotype = ClassStereotype::kBase;
    b.attributes = {{"Name", "string", AttrStereotype::kDescriptor}};
    ASSERT_TRUE(model.AddClass(std::move(b)).ok());
  }
  Ontology onto = UmlToOntology::Transform(model).ValueOrDie();
  EXPECT_EQ(onto.Find("name").size(), 1u);
}

TEST(UmlToOntologyTest, InvalidModelRejected) {
  UmlModel model;
  UmlClass fact;
  fact.name = "Orphan";
  fact.stereotype = ClassStereotype::kFact;
  ASSERT_TRUE(model.AddClass(std::move(fact)).ok());
  EXPECT_FALSE(UmlToOntology::Transform(model).ok());
}

TEST(UmlToOntologyTest, ConceptsTaggedWithUmlSource) {
  UmlModel model = integration::LastMinuteSales::MakeUmlModel();
  Ontology onto = UmlToOntology::Transform(model).ValueOrDie();
  for (ConceptId id : onto.AllConcepts()) {
    EXPECT_EQ(onto.GetConcept(id).source, "uml");
  }
}

}  // namespace
}  // namespace ontology
}  // namespace dwqa
