#include "ontology/wordnet.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace dwqa {
namespace ontology {
namespace {

class MiniWordNetTest : public ::testing::Test {
 protected:
  Ontology wn_ = MiniWordNet::Build();
};

TEST_F(MiniWordNetTest, HasTheTwentyFiveUniqueBeginners) {
  const char* beginners[] = {
      "act",        "animal",        "artifact",   "attribute", "body",
      "cognition",  "communication", "event",      "feeling",   "food",
      "group",      "location",      "motive",     "object",    "person",
      "phenomenon", "plant",         "possession", "process",   "quantity",
      "relation",   "shape",         "state",      "substance", "time"};
  ConceptId entity = wn_.FindClass("entity").ValueOrDie();
  for (const char* b : beginners) {
    auto id = wn_.FindClass(b);
    ASSERT_TRUE(id.ok()) << b;
    EXPECT_TRUE(wn_.IsA(*id, entity)) << b;
  }
}

TEST_F(MiniWordNetTest, AirportIsAFacilityIsAnArtifact) {
  ConceptId airport = wn_.FindClass("airport").ValueOrDie();
  EXPECT_TRUE(wn_.IsA(airport, wn_.FindClass("facility").ValueOrDie()));
  EXPECT_TRUE(wn_.IsA(airport, wn_.FindClass("artifact").ValueOrDie()));
  EXPECT_FALSE(wn_.IsA(airport, wn_.FindClass("person").ValueOrDie()));
}

TEST_F(MiniWordNetTest, KennedyAirportExistsAsPaperStates) {
  // "'JFK' does not exist in WordNet but the term 'Kennedy International
  // Airport' is in WordNet as hyponym of 'airport'" (§3, Step 3).
  auto ids = wn_.Find("kennedy international airport");
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_TRUE(wn_.IsA(ids[0], wn_.FindClass("airport").ValueOrDie()));
}

TEST_F(MiniWordNetTest, JfkResolvesOnlyToThePresident) {
  // Before enrichment, "JFK" means the person John F. Kennedy.
  auto ids = wn_.Find("jfk");
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_TRUE(wn_.IsA(ids[0], wn_.FindClass("person").ValueOrDie()));
  EXPECT_FALSE(wn_.IsA(ids[0], wn_.FindClass("airport").ValueOrDie()));
}

TEST_F(MiniWordNetTest, AmbiguityDistractorsPresent) {
  // "the previous entities mean airports instead of a person or a Spanish
  // musical group" — the non-airport senses must exist to be distractors.
  auto wayne = wn_.Find("john wayne");
  ASSERT_FALSE(wayne.empty());
  EXPECT_TRUE(wn_.IsA(wayne[0], wn_.FindClass("person").ValueOrDie()));
  auto laguardia = wn_.Find("la guardia");
  ASSERT_FALSE(laguardia.empty());
  EXPECT_TRUE(wn_.IsA(laguardia[0], wn_.FindClass("group").ValueOrDie()));
  auto elprat = wn_.Find("el prat");
  ASSERT_FALSE(elprat.empty());
  EXPECT_TRUE(wn_.IsA(elprat[0], wn_.FindClass("group").ValueOrDie()));
}

TEST_F(MiniWordNetTest, GeographyInstances) {
  ConceptId city = wn_.FindClass("city").ValueOrDie();
  ConceptId country = wn_.FindClass("country").ValueOrDie();
  for (const char* c : {"barcelona", "madrid", "new york", "paris"}) {
    auto ids = wn_.Find(c);
    ASSERT_FALSE(ids.empty()) << c;
    EXPECT_TRUE(wn_.IsA(ids[0], city)) << c;
  }
  for (const char* c : {"spain", "france", "iraq", "kuwait"}) {
    auto ids = wn_.Find(c);
    ASSERT_FALSE(ids.empty()) << c;
    EXPECT_TRUE(wn_.IsA(ids[0], country)) << c;
  }
}

TEST_F(MiniWordNetTest, CapitalIsACity) {
  ConceptId capital = wn_.FindClass("capital").ValueOrDie();
  EXPECT_TRUE(wn_.IsA(capital, wn_.FindClass("city").ValueOrDie()));
  auto madrid = wn_.Find("madrid");
  ASSERT_FALSE(madrid.empty());
  EXPECT_TRUE(wn_.IsA(madrid[0], capital));
}

TEST_F(MiniWordNetTest, UsaAliasesWork) {
  auto ids = wn_.Find("usa");
  ASSERT_FALSE(ids.empty());
  EXPECT_EQ(wn_.GetConcept(ids[0]).lemma, "united states");
}

TEST_F(MiniWordNetTest, WeatherHasTemperatureProperty) {
  ConceptId weather = wn_.FindClass("weather").ValueOrDie();
  ConceptId temperature = wn_.FindClass("temperature").ValueOrDie();
  auto props = wn_.Related(weather, RelationKind::kHasProperty);
  EXPECT_NE(std::find(props.begin(), props.end(), temperature), props.end());
}

TEST_F(MiniWordNetTest, MonthsAreInstancesOfMonth) {
  ConceptId month = wn_.FindClass("month").ValueOrDie();
  auto insts = wn_.Related(month, RelationKind::kHasInstance);
  EXPECT_EQ(insts.size(), 12u);
}

TEST_F(MiniWordNetTest, BarcelonaIsPartOfSpain) {
  auto barcelona = wn_.Find("barcelona");
  ASSERT_FALSE(barcelona.empty());
  auto parts = wn_.Related(barcelona[0], RelationKind::kPartOf);
  ASSERT_FALSE(parts.empty());
  EXPECT_EQ(wn_.GetConcept(parts[0]).lemma, "spain");
}

TEST_F(MiniWordNetTest, BuildIsDeterministic) {
  Ontology other = MiniWordNet::Build();
  EXPECT_EQ(other.concept_count(), wn_.concept_count());
  EXPECT_EQ(other.relation_count(), wn_.relation_count());
}

TEST_F(MiniWordNetTest, ReasonableSize) {
  EXPECT_GT(wn_.concept_count(), 100u);
  EXPECT_GT(wn_.relation_count(), 100u);
}

}  // namespace
}  // namespace ontology
}  // namespace dwqa
