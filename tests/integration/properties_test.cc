// Cross-module property tests: parameterized sweeps over seeds, window
// sizes and corpora that assert system-level invariants rather than single
// behaviours.

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "dw/query_parser.h"
#include "integration/last_minute_sales.h"
#include "integration/pipeline.h"
#include "ir/passage_index.h"
#include "text/pos_tagger.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"
#include "web/synthetic_web.h"

namespace dwqa {
namespace integration {
namespace {

// ---------------------------------------------------------------------------
// Extraction precision holds across synthetic-web seeds (the result is not
// an artifact of one lucky weather world).
class SeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweep, ProseExtractionPrecisionStable) {
  web::WebConfig config;
  config.seed = GetParam();
  config.cities = {"Barcelona"};
  config.months = {1};
  config.table_weather = false;
  auto webb = web::SyntheticWeb::Build(config).ValueOrDie();

  auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  ontology::UmlModel uml = LastMinuteSales::MakeUmlModel();
  PipelineConfig pconfig = LastMinuteSales::DefaultPipelineConfig();
  pconfig.qa.max_answers = 40;
  IntegrationPipeline pipeline(&wh, &uml, pconfig);
  ASSERT_TRUE(pipeline.RunAll(&webb.documents()).ok());
  auto report = pipeline.RunStep5(
      {"What is the temperature in Barcelona in January of 2004?"},
      "Weather", "temperature");
  ASSERT_TRUE(report.ok());
  ASSERT_GT(report->facts.size(), 5u);
  size_t correct = 0;
  for (const auto& fact : report->facts) {
    if (bench::CheckTemperatureFact(webb.truth(), fact, false)
            .FullyCorrect()) {
      ++correct;
    }
  }
  EXPECT_GE(correct * 10, report->facts.size() * 9)
      << correct << "/" << report->facts.size() << " at seed "
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 7, 42, 99, 12345));

// ---------------------------------------------------------------------------
// Passage-window invariants hold for every window size.
class WindowSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(WindowSweep, PassageInvariants) {
  web::WebConfig config;
  config.cities = {"Barcelona", "Madrid"};
  config.months = {1};
  auto webb = web::SyntheticWeb::Build(config).ValueOrDie();
  ir::PassageIndex index(GetParam());
  for (const auto& doc : webb.documents().documents()) {
    index.AddDocument(doc.id, doc.raw);
  }
  auto passages = index.Search("Barcelona temperature January 2004", 8);
  ASSERT_FALSE(passages.empty());
  for (size_t i = 0; i < passages.size(); ++i) {
    const ir::Passage& p = passages[i];
    // Window size bound.
    EXPECT_LE(p.last_sentence - p.first_sentence + 1, index.window());
    // In-range sentences.
    EXPECT_LT(p.last_sentence, index.Sentences(p.doc).size());
    // Scores descending.
    if (i > 0) EXPECT_GE(passages[i - 1].score, p.score);
    // Non-overlap within a document.
    for (size_t j = i + 1; j < passages.size(); ++j) {
      if (passages[j].doc != p.doc) continue;
      bool overlap = p.first_sentence <= passages[j].last_sentence &&
                     passages[j].first_sentence <= p.last_sentence;
      EXPECT_FALSE(overlap);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSweep,
                         ::testing::Values(1, 2, 4, 8, 16));

// ---------------------------------------------------------------------------
// Tokenizer offsets are consistent on every generated page.
TEST(TokenizerCorpusProperty, OffsetsConsistentOnSyntheticWeb) {
  web::WebConfig config;
  config.cities = {"Barcelona"};
  config.months = {1};
  auto webb = web::SyntheticWeb::Build(config).ValueOrDie();
  text::PosTagger tagger;
  for (const auto& doc : webb.documents().documents()) {
    for (const std::string& sentence :
         text::SentenceSplitter::Split(doc.raw)) {
      auto toks = text::Tokenizer::Tokenize(sentence);
      size_t prev_end = 0;
      for (const auto& t : toks) {
        ASSERT_GE(t.begin, prev_end);
        ASSERT_LE(t.end, sentence.size());
        ASSERT_LT(t.begin, t.end);
        prev_end = t.end;
      }
      // Tagging never leaves a token untagged.
      tagger.Tag(&toks);
      for (const auto& t : toks) {
        ASSERT_FALSE(t.tag.empty());
        ASSERT_FALSE(t.lemma.empty());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The pipeline is deterministic: identical configs produce identical feeds.
TEST(PipelineDeterminismProperty, SameConfigSameFeed) {
  auto run = [] {
    web::WebConfig config;
    config.cities = {"Barcelona", "Madrid"};
    config.months = {1};
    auto webb = web::SyntheticWeb::Build(config).ValueOrDie();
    auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
    ontology::UmlModel uml = LastMinuteSales::MakeUmlModel();
    IntegrationPipeline pipeline(&wh, &uml,
                                 LastMinuteSales::DefaultPipelineConfig());
    EXPECT_TRUE(pipeline.RunAll(&webb.documents()).ok());
    auto report = pipeline.RunStep5(
        {"What is the temperature in Madrid in January of 2004?"},
        "Weather", "temperature");
    EXPECT_TRUE(report.ok());
    return qa::StructuredFactsToCsv(report->facts);
  };
  EXPECT_EQ(run(), run());
}

// ---------------------------------------------------------------------------
// Query-parser fuzz: mutated query strings never crash; they parse or fail
// with a Status.
TEST(QueryParserFuzzProperty, MutatedInputsDoNotCrash) {
  const std::string base =
      "SELECT SUM(Tickets), AVG(Price) FROM LastMinuteSales "
      "BY destination.City WHERE date.Year IN (2004, 2005) "
      "HAVING SUM(Tickets) >= 10";
  Rng rng(2024);
  const char kChars[] = "(),.=<>\"abcZ19 \t";
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = base;
    size_t edits = 1 + rng.NextBelow(4);
    for (size_t e = 0; e < edits; ++e) {
      size_t pos = rng.NextIndex(mutated.size());
      char c = kChars[rng.NextIndex(sizeof(kChars) - 1)];
      switch (rng.NextBelow(3)) {
        case 0:
          mutated[pos] = c;
          break;
        case 1:
          mutated.insert(pos, 1, c);
          break;
        case 2:
          mutated.erase(pos, 1);
          break;
      }
    }
    auto result = dw::QueryParser::Parse(mutated);  // Must not crash.
    if (result.ok()) {
      EXPECT_FALSE(result->fact.empty());
    } else {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

// ---------------------------------------------------------------------------
// The Step-4 conversion axiom at work: a Fahrenheit-only corpus still feeds
// correct Celsius values into the warehouse.
class ProseStyleSweep : public ::testing::TestWithParam<web::ProseStyle> {};

TEST_P(ProseStyleSweep, CorrectCelsiusRegardlessOfPublishedUnit) {
  web::WebConfig config;
  config.cities = {"Barcelona"};
  config.months = {1};
  config.table_weather = false;
  config.prose_style = GetParam();
  auto webb = web::SyntheticWeb::Build(config).ValueOrDie();

  auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  ontology::UmlModel uml = LastMinuteSales::MakeUmlModel();
  PipelineConfig pconfig = LastMinuteSales::DefaultPipelineConfig();
  pconfig.qa.max_answers = 40;
  IntegrationPipeline pipeline(&wh, &uml, pconfig);
  ASSERT_TRUE(pipeline.RunAll(&webb.documents()).ok());
  auto report = pipeline.RunStep5(
      {"What is the temperature in Barcelona in January of 2004?"},
      "Weather", "temperature");
  ASSERT_TRUE(report.ok());
  ASSERT_GT(report->rows_loaded, 5u);

  // Check the values as they landed in the warehouse (post conversion).
  dw::OlapEngine engine(&wh);
  dw::OlapQuery q;
  q.fact = "Weather";
  q.measures = {{"TemperatureC", dw::AggFn::kAvg}};
  q.group_by = {{"day", "Date"}};
  dw::OlapResult r = engine.Execute(q).ValueOrDie();
  size_t checked = 0;
  for (const auto& row : r.rows) {
    auto it = webb.truth().temperature.find(
        {"barcelona", row[0].ToString()});
    if (it == webb.truth().temperature.end()) continue;
    // Fahrenheit rounding to 1 decimal loses < 0.06 ºC.
    EXPECT_NEAR(row[1].ToDouble(), it->second, 0.1) << row[0].ToString();
    ++checked;
  }
  EXPECT_GT(checked, 5u);
}

INSTANTIATE_TEST_SUITE_P(
    Styles, ProseStyleSweep,
    ::testing::Values(web::ProseStyle::kCelsiusWithFahrenheit,
                      web::ProseStyle::kFahrenheitWithCelsius,
                      web::ProseStyle::kFahrenheitOnly));

}  // namespace
}  // namespace integration
}  // namespace dwqa
