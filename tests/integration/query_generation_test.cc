#include "integration/query_generation.h"

#include <gtest/gtest.h>

#include "integration/last_minute_sales.h"

namespace dwqa {
namespace integration {
namespace {

TEST(QueryGenerationTest, OneQuestionPerDistinctCity) {
  dw::Warehouse wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  AnalysisContext ctx;
  ctx.attribute = "temperature";
  ctx.dimension = "Airport";
  ctx.level = "City";
  ctx.year = 2004;
  ctx.month = 1;
  auto questions = QueryGeneration::GenerateQuestions(wh, ctx).ValueOrDie();
  // 10 airports in 9 distinct cities (JFK and La Guardia share New York).
  EXPECT_EQ(questions.size(), 9u);
  bool found = false;
  for (const auto& q : questions) {
    if (q == "What is the temperature in Barcelona in January of 2004?") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(QueryGenerationTest, AirportLevelAsksPerAirport) {
  dw::Warehouse wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  AnalysisContext ctx;
  ctx.attribute = "temperature";
  ctx.dimension = "Airport";
  ctx.level = "Airport";
  auto questions = QueryGeneration::GenerateQuestions(wh, ctx).ValueOrDie();
  EXPECT_EQ(questions.size(), LastMinuteSales::Airports().size());
  bool prat = false;
  for (const auto& q : questions) {
    if (q.find("El Prat") != std::string::npos) prat = true;
  }
  EXPECT_TRUE(prat);
}

TEST(QueryGenerationTest, WeatherTemplate) {
  dw::Warehouse wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  AnalysisContext ctx;
  ctx.attribute = "weather";
  ctx.dimension = "Airport";
  ctx.level = "City";
  ctx.month = 5;
  ctx.year = 1997;
  auto questions = QueryGeneration::GenerateQuestions(wh, ctx).ValueOrDie();
  ASSERT_FALSE(questions.empty());
  EXPECT_NE(questions[0].find("What is the weather like in"),
            std::string::npos);
  EXPECT_NE(questions[0].find("May of 1997"), std::string::npos);
}

TEST(QueryGenerationTest, UnknownAttributeUnimplemented) {
  dw::Warehouse wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  AnalysisContext ctx;
  ctx.attribute = "humidity level of the cargo bay";
  ctx.dimension = "Airport";
  ctx.level = "City";
  EXPECT_TRUE(QueryGeneration::GenerateQuestions(wh, ctx)
                  .status()
                  .IsUnimplemented());
}

TEST(QueryGenerationTest, BadContextRejected) {
  dw::Warehouse wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  AnalysisContext ctx;
  ctx.attribute = "temperature";
  ctx.dimension = "Ghost";
  ctx.level = "City";
  EXPECT_TRUE(
      QueryGeneration::GenerateQuestions(wh, ctx).status().IsNotFound());
  ctx.dimension = "Airport";
  ctx.level = "Continent";
  EXPECT_TRUE(
      QueryGeneration::GenerateQuestions(wh, ctx).status().IsNotFound());
  ctx.level = "City";
  ctx.month = 0;
  EXPECT_TRUE(QueryGeneration::GenerateQuestions(wh, ctx)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace integration
}  // namespace dwqa
