#include "integration/table_preprocess.h"

#include <gtest/gtest.h>

#include "text/entities.h"
#include "text/pos_tagger.h"
#include "text/tokenizer.h"
#include "ir/html.h"
#include "text/sentence_splitter.h"
#include "web/page_generators.h"

namespace dwqa {
namespace integration {
namespace {

ir::Document TableDoc() {
  web::WeatherModel model(42);
  ir::Document doc;
  doc.id = 0;
  doc.url = "web://weather-table/barcelona";
  doc.format = ir::DocFormat::kHtml;
  doc.raw = web::PageGenerators::TableWeatherPage(model, "Barcelona", 2004, 1)
                .ValueOrDie();
  return doc;
}

TEST(TablePreprocessTest, EmitsProseSentencesWithUnits) {
  std::string out = TablePreprocessor{}(TableDoc());
  EXPECT_NE(out.find("the high temperature was"), std::string::npos);
  EXPECT_NE(out.find("the low temperature was"), std::string::npos);
  EXPECT_NE(out.find("On January 5, 2004"), std::string::npos);
  // The unit, lost by naive stripping, is restored from the header.
  size_t pos = out.find("the high temperature was");
  std::string tail = out.substr(pos, 60);
  EXPECT_NE(tail.find("\xC2\xBA\x43"), std::string::npos);
}

TEST(TablePreprocessTest, RecognizersFireOnEmittedProse) {
  std::string out = TablePreprocessor{}(TableDoc());
  // Find the sentence for January 5 and check a temperature mention with a
  // known scale is recognized there.
  size_t pos = out.find("On January 5, 2004");
  ASSERT_NE(pos, std::string::npos);
  std::string sentence = out.substr(pos, out.find('\n', pos) - pos);
  auto toks = text::Tokenizer::Tokenize(sentence);
  text::PosTagger tagger;
  tagger.Tag(&toks);
  auto temps = text::EntityRecognizer::FindTemperatures(toks);
  ASSERT_GE(temps.size(), 2u);  // High and low.
  EXPECT_EQ(temps[0].scale, 'C');
  auto dates = text::EntityRecognizer::FindDates(toks);
  ASSERT_FALSE(dates.empty());
  EXPECT_TRUE(dates[0].IsComplete());
}

TEST(TablePreprocessTest, NaiveStrippingLosesTheUnit) {
  // The contrast the E6 ablation measures: without the preprocessor the
  // same page yields temperature mentions with unknown scale.
  ir::Document doc = TableDoc();
  std::string naive = ir::Html::StripTags(doc.raw);
  bool any_unknown = false;
  for (const std::string& line : text::SentenceSplitter::Split(naive)) {
    auto toks = text::Tokenizer::Tokenize(line);
    text::PosTagger tagger;
    tagger.Tag(&toks);
    for (const auto& m : text::EntityRecognizer::FindTemperatures(toks)) {
      if (m.scale == '?') any_unknown = true;
      EXPECT_NE(m.scale, 'C');  // The scale letter never made it out.
    }
  }
  EXPECT_TRUE(any_unknown);
}

TEST(TablePreprocessTest, PlainTextPassesThrough) {
  ir::Document doc;
  doc.format = ir::DocFormat::kPlainText;
  doc.raw = "no html at all";
  EXPECT_EQ(TablePreprocessor{}(doc), "no html at all");
}

TEST(TablePreprocessTest, HtmlWithoutTablesJustStripped) {
  ir::Document doc;
  doc.format = ir::DocFormat::kHtml;
  doc.raw = "<p>hello <b>world</b></p>";
  std::string out = TablePreprocessor{}(doc);
  EXPECT_NE(out.find("hello world"), std::string::npos);
  EXPECT_EQ(out.find("temperature was"), std::string::npos);
}

TEST(TablePreprocessTest, HeaderlessTableIgnored) {
  ir::Document doc;
  doc.format = ir::DocFormat::kHtml;
  doc.raw = "<table><tr><td>January 5, 2004</td><td>12\xC2\xBA</td></tr>"
            "<tr><td>January 6, 2004</td><td>10\xC2\xBA</td></tr></table>";
  std::string out = TablePreprocessor{}(doc);
  EXPECT_EQ(out.find("temperature was"), std::string::npos);
}

TEST(TablePreprocessTest, FahrenheitHeaderRespected) {
  ir::Document doc;
  doc.format = ir::DocFormat::kHtml;
  doc.raw =
      "<table><tr><th>Date</th><th>Temp (F)</th></tr>"
      "<tr><td>January 5, 2004</td><td>46</td></tr></table>";
  std::string out = TablePreprocessor{}(doc);
  EXPECT_NE(out.find("the temperature was 46 F"), std::string::npos);
}

}  // namespace
}  // namespace integration
}  // namespace dwqa
