#include "integration/last_minute_sales.h"

#include <gtest/gtest.h>

#include "dw/olap.h"

namespace dwqa {
namespace integration {
namespace {

TEST(LastMinuteSalesTest, UmlModelValidates) {
  ontology::UmlModel model = LastMinuteSales::MakeUmlModel();
  EXPECT_TRUE(model.Validate().ok());
  // The Figure 1 shape: one fact, three dimensions, hierarchies.
  EXPECT_EQ(model.ClassesWithStereotype(ontology::ClassStereotype::kFact)
                .size(),
            1u);
  EXPECT_EQ(
      model.ClassesWithStereotype(ontology::ClassStereotype::kDimension)
          .size(),
      3u);
  auto chain = model.HierarchyFrom("Airport");
  ASSERT_EQ(chain.size(), 4u);
  EXPECT_EQ(chain.back(), "Country");
}

TEST(LastMinuteSalesTest, FactHasPaperMeasures) {
  ontology::UmlModel model = LastMinuteSales::MakeUmlModel();
  const ontology::UmlClass* fact =
      model.FindClass("Last Minute Sales").ValueOrDie();
  std::set<std::string> names;
  for (const auto& a : fact->attributes) names.insert(a.name);
  EXPECT_TRUE(names.count("Price"));
  EXPECT_TRUE(names.count("Miles"));
}

TEST(LastMinuteSalesTest, SchemaMatchesModel) {
  dw::MdSchema schema = LastMinuteSales::MakeSchema();
  EXPECT_TRUE(schema.Validate().ok());
  const dw::FactDef* sales = schema.FindFact("LastMinuteSales").ValueOrDie();
  EXPECT_EQ(sales->roles.size(), 4u);  // origin/destination/customer/date.
  EXPECT_TRUE(sales->RoleIndex("origin").ok());
  EXPECT_TRUE(sales->RoleIndex("destination").ok());
  // The Step-5 feedback fact exists.
  EXPECT_TRUE(schema.FindFact("Weather").ok());
}

TEST(LastMinuteSalesTest, WarehousePreloadsMembers) {
  dw::Warehouse wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  EXPECT_TRUE(wh.FindMember("Airport", "El Prat").ok());
  EXPECT_TRUE(wh.FindMember("Airport", "JFK").ok());
  EXPECT_TRUE(wh.FindMember("Customer", "Customer-0").ok());
  dw::MemberId prat = wh.FindMember("Airport", "El Prat").ValueOrDie();
  EXPECT_EQ(wh.MemberLevelValue("Airport", prat, "City").ValueOrDie(),
            "Barcelona");
  EXPECT_EQ(wh.MemberLevelValue("Airport", prat, "Country").ValueOrDie(),
            "Spain");
}

TEST(LastMinuteSalesTest, AmbiguousAirportsPresent) {
  // The names the paper's Step 2 discussion revolves around.
  const auto& airports = LastMinuteSales::Airports();
  std::set<std::string> names;
  for (const auto& a : airports) names.insert(a.name);
  EXPECT_TRUE(names.count("JFK"));
  EXPECT_TRUE(names.count("John Wayne"));
  EXPECT_TRUE(names.count("La Guardia"));
  EXPECT_TRUE(names.count("El Prat"));
}

TEST(LastMinuteSalesTest, DefaultPipelineConfigCarriesJfkAlias) {
  PipelineConfig config = LastMinuteSales::DefaultPipelineConfig();
  ASSERT_TRUE(config.member_aliases.count("jfk"));
  EXPECT_EQ(config.member_aliases.at("jfk")[0],
            "Kennedy International Airport");
}

TEST(LastMinuteSalesTest, GenerateSalesDeterministic) {
  web::WeatherModel weather(42);
  dw::Warehouse a = LastMinuteSales::MakeWarehouse().ValueOrDie();
  dw::Warehouse b = LastMinuteSales::MakeWarehouse().ValueOrDie();
  size_t na = LastMinuteSales::GenerateSales(&a, weather, Date(2004, 1, 1),
                                             30)
                  .ValueOrDie();
  size_t nb = LastMinuteSales::GenerateSales(&b, weather, Date(2004, 1, 1),
                                             30)
                  .ValueOrDie();
  EXPECT_EQ(na, nb);
  EXPECT_GT(na, 100u);
}

TEST(LastMinuteSalesTest, PlantedWeatherBoostVisible) {
  // Days in the pleasant range sell about twice as many tickets: compare
  // mean tickets/day/destination across a summer vs a winter month for a
  // Mediterranean city.
  web::WeatherModel weather(42);
  dw::Warehouse wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  ASSERT_TRUE(LastMinuteSales::GenerateSales(&wh, weather, Date(2004, 1, 1),
                                             365)
                  .ok());
  dw::OlapEngine engine(&wh);
  auto month_tickets = [&](const std::string& month) {
    dw::OlapQuery q;
    q.fact = "LastMinuteSales";
    q.measures = {{"Tickets", dw::AggFn::kSum}};
    q.filters = {{"destination", "City", {"Barcelona"}},
                 {"date", "Month", {month}}};
    return engine.Execute(q).ValueOrDie().rows[0][0].ToDouble();
  };
  double january = month_tickets("2004-01");
  double june = month_tickets("2004-06");
  EXPECT_GT(june, january * 1.4);
}

TEST(LastMinuteSalesTest, GenerateSalesNullWarehouseRejected) {
  web::WeatherModel weather(42);
  EXPECT_TRUE(LastMinuteSales::GenerateSales(nullptr, weather,
                                             Date(2004, 1, 1), 1)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace integration
}  // namespace dwqa
