#include <algorithm>
#include <cstdio>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "integration/last_minute_sales.h"
#include "integration/pipeline.h"
#include "web/synthetic_web.h"

namespace dwqa {
namespace integration {
namespace {

const char kQ1[] = "What is the temperature in Barcelona in January of 2004?";
const char kQ2[] = "What is the temperature in Madrid in January of 2004?";
/// The one prose weather page per (city, month) the chaos web serves — the
/// poisoned-source tests arm faults scoped to this exact URL.
const char kBarcelonaUrl[] = "web://weather/barcelona/2004-1.html";

RetryPolicy FastRetry(int max_attempts = 3) {
  RetryPolicy policy;
  policy.max_attempts = max_attempts;
  policy.sleep = false;
  return policy;
}

BreakerConfig BreakerOn(size_t threshold = 2, size_t cooldown = 100) {
  BreakerConfig config;
  config.enabled = true;
  config.failure_threshold = threshold;
  config.cooldown_attempts = cooldown;
  return config;
}

/// Fact rows with the surrogate keys resolved to member names. Surrogate
/// ids depend on load order, and a chaos run loads fewer (and differently
/// ordered) members than a clean one — only the resolved rows compare.
std::multiset<std::string> WeatherRows(const dw::Warehouse& wh) {
  const dw::Table* table = wh.FactTable("Weather").ValueOrDie();
  size_t loc = table->ColumnIndex("fk_location").ValueOrDie();
  size_t day = table->ColumnIndex("fk_day").ValueOrDie();
  size_t src = table->ColumnIndex("fk_source").ValueOrDie();
  size_t temp = table->ColumnIndex("TemperatureC").ValueOrDie();
  std::multiset<std::string> rows;
  for (size_t r = 0; r < table->row_count(); ++r) {
    auto name = [&](const char* dim, size_t col, const char* level) {
      return wh.MemberLevelValue(dim, dw::MemberId(table->Get(r, col).as_int()),
                                 level)
          .ValueOrDie();
    };
    rows.insert(name("City", loc, "City") + "|" + name("Date", day, "Date") +
                "|" + name("Source", src, "Url") + "|" +
                table->Get(r, temp).ToString());
  }
  return rows;
}

/// Empty when `sub` ⊆ `super`; otherwise the offending rows, for messages.
std::string ExtraRows(const std::multiset<std::string>& sub,
                      const std::multiset<std::string>& super) {
  std::multiset<std::string> extra;
  std::set_difference(sub.begin(), sub.end(), super.begin(), super.end(),
                      std::inserter(extra, extra.begin()));
  std::string out;
  for (const std::string& row : extra) out += row + "\n";
  return out;
}

/// One prose page per (city, month): every Barcelona fact carries
/// kBarcelonaUrl, so a per-source breaker has a single well-known victim.
class ChaosPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    uml_ = LastMinuteSales::MakeUmlModel();
    web::WebConfig config;
    config.cities = {"Barcelona", "Madrid"};
    config.months = {1};
    config.table_weather = false;
    web_ = std::make_unique<web::SyntheticWeb>(
        web::SyntheticWeb::Build(config).ValueOrDie());
  }

  Result<FeedReport> Feed(dw::Warehouse* wh, const ResilienceConfig& res,
                          IntegrationPipeline** out_pipeline = nullptr,
                          bool reanalyze_per_question = false,
                          size_t parallel = 1) {
    PipelineConfig config = LastMinuteSales::DefaultPipelineConfig();
    // Wider extraction than the default so each question yields several
    // facts — the per-source breaker needs a stream of loads to trip on.
    config.qa.max_answers = 10;
    config.qa.passages_to_analyze = 8;
    config.qa.reanalyze_per_question = reanalyze_per_question;
    config.qa.threads = parallel;
    config.parallel_questions = parallel;
    config.resilience = res;
    pipeline_ = std::make_unique<IntegrationPipeline>(wh, &uml_, config);
    if (out_pipeline != nullptr) *out_pipeline = pipeline_.get();
    DWQA_RETURN_NOT_OK(pipeline_->RunAll(&web_->documents()));
    return pipeline_->RunStep5({kQ1, kQ2}, "Weather", "temperature");
  }

  /// Units one unlimited-budget run spends through indexation (one
  /// ir.index attempt + qa.index + one qa.index.analysis unit per analyzed
  /// sentence). The budget tests calibrate against this probe instead of a
  /// hard-coded constant so the per-sentence indexation charging can evolve
  /// with the corpus.
  double IndexationCost() {
    PipelineConfig config = LastMinuteSales::DefaultPipelineConfig();
    config.qa.max_answers = 10;
    config.qa.passages_to_analyze = 8;
    config.resilience.retry = FastRetry();
    auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
    IntegrationPipeline probe(&wh, &uml_, config);
    EXPECT_TRUE(probe.RunAll(&web_->documents()).ok());
    return probe.deadline().spent();
  }

  ontology::UmlModel uml_;
  std::unique_ptr<web::SyntheticWeb> web_;
  std::unique_ptr<IntegrationPipeline> pipeline_;
};

// ---------------------------------------------------------------------------
// Satellite: resilience knobs are validated at pipeline construction.
// ---------------------------------------------------------------------------

TEST_F(ChaosPipelineTest, BadRetryPolicyIsRejectedAtTheFirstStep) {
  PipelineConfig config = LastMinuteSales::DefaultPipelineConfig();
  config.resilience.retry.max_attempts = 0;
  auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  IntegrationPipeline p(&wh, &uml_, config);
  Status st = p.RunStep1();
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

TEST_F(ChaosPipelineTest, NegativeBackoffIsRejected) {
  PipelineConfig config = LastMinuteSales::DefaultPipelineConfig();
  config.resilience.retry.base_delay_ms = -1.0;
  auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  IntegrationPipeline p(&wh, &uml_, config);
  EXPECT_TRUE(p.RunAll(&web_->documents()).IsInvalidArgument());
}

TEST_F(ChaosPipelineTest, ZeroBreakerThresholdIsRejected) {
  PipelineConfig config = LastMinuteSales::DefaultPipelineConfig();
  config.resilience.breaker.failure_threshold = 0;
  auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  IntegrationPipeline p(&wh, &uml_, config);
  EXPECT_TRUE(p.RunStep1().IsInvalidArgument());
}

TEST_F(ChaosPipelineTest, NegativeDeadlineBudgetIsRejected) {
  PipelineConfig config = LastMinuteSales::DefaultPipelineConfig();
  config.resilience.deadline.budget = -5.0;
  auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  IntegrationPipeline p(&wh, &uml_, config);
  EXPECT_TRUE(p.RunStep1().IsInvalidArgument());
}

TEST_F(ChaosPipelineTest, ZeroCheckpointEveryIsRejected) {
  PipelineConfig config = LastMinuteSales::DefaultPipelineConfig();
  config.resilience.checkpoint_every = 0;
  auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  IntegrationPipeline p(&wh, &uml_, config);
  EXPECT_TRUE(p.RunStep1().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Satellite: a failed boundary checkpoint save degrades to a warning.
// ---------------------------------------------------------------------------

TEST_F(ChaosPipelineTest, FailedBoundaryCheckpointSaveIsDowngraded) {
  // Only the checkpoint rule is armed, so the injector draws exactly once
  // per checkpoint probe, in order. Find a seed whose schedule is
  // (fail, succeed): the Q1 boundary save fails, the Q2 one recovers, and
  // no final save is needed.
  uint64_t seed = 0;
  for (uint64_t s = 1; s < 10000; ++s) {
    Rng rng(s);
    bool first = rng.NextBool(0.5);
    bool second = rng.NextBool(0.5);
    if (first && !second) {
      seed = s;
      break;
    }
  }
  ASSERT_NE(seed, 0u);

  std::string ckpt = testing::TempDir() + "chaos_feed.ckpt";
  std::remove(ckpt.c_str());
  ResilienceConfig res;
  res.retry = FastRetry();
  res.checkpoint_path = ckpt;
  res.checkpoint_every = 1;
  res.fault.seed = seed;
  res.fault.rules.push_back({kFaultPointCheckpoint, 0.5,
                             FaultMode::kTransient,
                             StatusCode::kUnavailable});
  auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  auto report = Feed(&wh, res);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // The failed save was counted, not fatal; the feed completed in full.
  EXPECT_EQ(report->checkpoint_failures, 1u);
  EXPECT_EQ(report->questions_answered, 2u);
  EXPECT_GT(report->rows_loaded, 0u);
  // The recovered boundary save persisted the *complete* progress (both
  // questions), so nothing is lost to the earlier failure.
  auto on_disk = FeedCheckpointFile::Load(ckpt);
  ASSERT_TRUE(on_disk.ok());
  EXPECT_EQ(on_disk->completed_questions.size(), 2u);
  EXPECT_EQ(on_disk->rows_loaded, report->rows_loaded);
  std::remove(ckpt.c_str());
}

TEST_F(ChaosPipelineTest, FailedFinalCheckpointSaveFailsTheRun) {
  std::string ckpt = testing::TempDir() + "chaos_feed_final.ckpt";
  std::remove(ckpt.c_str());
  ResilienceConfig res;
  res.retry = FastRetry();
  res.checkpoint_path = ckpt;
  // Boundary every 10 questions: with 2 questions only the final save runs
  // — and it always fails. Losing it would silently discard the whole run.
  res.checkpoint_every = 10;
  res.fault.rules.push_back({kFaultPointCheckpoint, 1.0,
                             FaultMode::kTransient,
                             StatusCode::kUnavailable});
  auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  auto report = Feed(&wh, res);
  EXPECT_FALSE(report.ok());
  std::remove(ckpt.c_str());
}

// ---------------------------------------------------------------------------
// Tentpole: a poisoned source is isolated by its circuit breaker.
// ---------------------------------------------------------------------------

TEST_F(ChaosPipelineTest, BreakerIsolatesThePoisonedSource) {
  auto clean_wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  ResilienceConfig clean_res;
  clean_res.retry = FastRetry();
  auto clean = Feed(&clean_wh, clean_res);
  ASSERT_TRUE(clean.ok());
  ASSERT_GT(clean->rows_loaded, 0u);

  // Every ETL load sourced from the Barcelona page fails, always.
  ResilienceConfig poison;
  poison.retry = FastRetry();
  poison.fault.rules.push_back(
      {std::string(kFaultPointEtlLoad) + ":" + kBarcelonaUrl, 1.0,
       FaultMode::kTransient, StatusCode::kUnavailable});

  // Without a breaker, every Barcelona fact burns the full retry budget.
  auto off_wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  auto off = Feed(&off_wh, poison);
  ASSERT_TRUE(off.ok());
  EXPECT_GT(off->wasted_retries, 0u);
  EXPECT_EQ(off->breaker_rejections, 0u);

  // With the breaker, the source is cut off after `threshold` failures and
  // its remaining facts are parked as kCircuitOpen without touching the ETL.
  IntegrationPipeline* p = nullptr;
  ResilienceConfig guarded = poison;
  guarded.breaker = BreakerOn(/*threshold=*/2, /*cooldown=*/100);
  auto on_wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  auto on = Feed(&on_wh, guarded, &p);
  ASSERT_TRUE(on.ok());

  EXPECT_GT(on->breaker_rejections, 0u);
  EXPECT_GT(on->quarantined_by_reason.at(qa::RejectReason::kCircuitOpen), 0u);
  EXPECT_EQ(on->breaker_rejections,
            on->quarantined_by_reason.at(qa::RejectReason::kCircuitOpen));
  // The healthy source is untouched: Madrid still loads, and every loaded
  // row also exists in the fault-free run.
  EXPECT_GT(on->rows_loaded, 0u);
  EXPECT_EQ(ExtraRows(WeatherRows(on_wh), WeatherRows(clean_wh)), "");
  // Isolation pays: strictly fewer attempts wasted on the doomed source.
  EXPECT_LT(on->wasted_retries, off->wasted_retries);
  // The accounting identity holds under chaos.
  EXPECT_EQ(on->rows_loaded + on->rows_deduplicated + on->rows_quarantined,
            on->facts_extracted);
  // The breaker's state is visible in the health summary.
  EXPECT_GE(on->health.breakers_open, 1u);
  const std::string source_name = std::string("source:") + kBarcelonaUrl;
  bool found = false;
  for (const BreakerHealth& b : on->health.breakers) {
    if (b.name == source_name) {
      found = true;
      EXPECT_EQ(b.state, "Open");
      EXPECT_GE(b.opens, 1u);
    }
  }
  EXPECT_TRUE(found);
  std::string table = on->health.RenderTable();
  EXPECT_NE(table.find(source_name), std::string::npos);
}

TEST_F(ChaosPipelineTest, PersistentlyFailingFetchTripsTheQuestionBreaker) {
  ResilienceConfig res;
  res.retry = FastRetry();
  res.breaker = BreakerOn(/*threshold=*/1, /*cooldown=*/100);
  res.fault.rules.push_back({kFaultPointFetch, 1.0, FaultMode::kTransient,
                             StatusCode::kUnavailable});
  auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  auto report = Feed(&wh, res);
  ASSERT_TRUE(report.ok());
  // Q1 trips the web.fetch breaker; Q2 is refused without a single attempt.
  EXPECT_EQ(report->questions_failed, 2u);
  EXPECT_EQ(report->breaker_rejections, 1u);
  EXPECT_GT(report->wasted_retries, 0u);
  EXPECT_EQ(report->rows_loaded, 0u);
}

// ---------------------------------------------------------------------------
// Satellite: every extracted fact appears in the report with a disposition.
// ---------------------------------------------------------------------------

TEST_F(ChaosPipelineTest, EveryFactHasExactlyOneDisposition) {
  // A strict admission rule splits the batch into loaded and quarantined
  // facts (plus whatever the dedup catches).
  ResilienceConfig res;
  res.retry = FastRetry();
  qa::AttributeRule strict;
  strict.min_value = -90.0;
  strict.max_value = 8.0;
  res.validator_rules["temperature"] = strict;
  auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  auto report = Feed(&wh, res);
  ASSERT_TRUE(report.ok());
  ASSERT_GT(report->rows_loaded, 0u);
  ASSERT_GT(report->rows_quarantined, 0u);

  EXPECT_EQ(report->facts.size(), report->facts_extracted);
  std::map<qa::FactDisposition, size_t> by_disposition;
  for (const qa::StructuredFact& fact : report->facts) {
    ++by_disposition[fact.disposition];
  }
  EXPECT_EQ(by_disposition[qa::FactDisposition::kLoaded],
            report->rows_loaded);
  EXPECT_EQ(by_disposition[qa::FactDisposition::kDeduplicated],
            report->rows_deduplicated);
  // Rejected facts (ETL-layer refusals) are a subset of the quarantined
  // bucket in the counter model.
  EXPECT_EQ(by_disposition[qa::FactDisposition::kQuarantined] +
                by_disposition[qa::FactDisposition::kRejected],
            report->rows_quarantined);
  EXPECT_EQ(by_disposition[qa::FactDisposition::kRejected],
            report->rows_rejected);
}

// ---------------------------------------------------------------------------
// Tentpole: the deadline budget propagates through the whole feed.
// ---------------------------------------------------------------------------

TEST_F(ChaosPipelineTest, TinyBudgetSkipsQuestionsInsteadOfCrashing) {
  auto clean_wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  ResilienceConfig clean_res;
  clean_res.retry = FastRetry();
  auto clean = Feed(&clean_wh, clean_res);
  ASSERT_TRUE(clean.ok());

  // A budget of exactly the indexation cost (which now includes one unit
  // per analyzed sentence — the linguistic work moved off-line with the
  // AnalyzedCorpus) lets indexation finish on its crossing charge and dies
  // at the first question's analysis.
  const double index_cost = IndexationCost();
  ASSERT_GT(index_cost, 2.0);  // ir.index + qa.index + per-sentence units.
  IntegrationPipeline* p = nullptr;
  ResilienceConfig res;
  res.retry = FastRetry();
  res.deadline.budget = index_cost;
  auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  auto report = Feed(&wh, res, &p);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_TRUE(report->deadline_exhausted);
  EXPECT_EQ(report->questions_deadline_skipped, 2u);
  EXPECT_EQ(report->questions_failed, 0u);  // Skipped, not failed.
  EXPECT_EQ(report->rows_loaded, 0u);
  EXPECT_EQ(report->rows_loaded + report->rows_deduplicated +
                report->rows_quarantined,
            report->facts_extracted);
  // The exceeded stage is named, for the operator.
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->deadline().exhausted());
  EXPECT_FALSE(p->deadline().exhausted_stage().empty());
  EXPECT_TRUE(report->health.deadline_exhausted);
  EXPECT_EQ(report->health.budget_limit, index_cost);
  EXPECT_LE(report->health.budget_spent, index_cost);
}

TEST_F(ChaosPipelineTest, MidRunBudgetDegradesButStaysConsistent) {
  auto clean_wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  ResilienceConfig clean_res;
  clean_res.retry = FastRetry();
  auto clean = Feed(&clean_wh, clean_res);
  ASSERT_TRUE(clean.ok());
  ASSERT_GT(clean->rows_loaded, 0u);

  // Indexation plus enough to answer Q1 and load part of its facts; the
  // rest of the run is shed. The partial warehouse must still be a subset
  // of the clean one — degraded means fewer rows, never different rows.
  ResilienceConfig res;
  res.retry = FastRetry();
  res.deadline.budget = IndexationCost() + 18.0;
  auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  auto report = Feed(&wh, res);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_TRUE(report->deadline_exhausted);
  EXPECT_LT(report->rows_loaded, clean->rows_loaded);
  EXPECT_EQ(ExtraRows(WeatherRows(wh), WeatherRows(clean_wh)), "");
  EXPECT_EQ(report->rows_loaded + report->rows_deduplicated +
                report->rows_quarantined,
            report->facts_extracted);
}

TEST_F(ChaosPipelineTest, UnlimitedDeadlineChangesNothing) {
  auto a_wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  ResilienceConfig plain;
  plain.retry = FastRetry();
  auto a = Feed(&a_wh, plain);
  ASSERT_TRUE(a.ok());

  auto b_wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  ResilienceConfig unlimited = plain;
  unlimited.deadline = DeadlineConfig{};  // Explicit unlimited budget.
  auto b = Feed(&b_wh, unlimited);
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(b->deadline_exhausted);
  EXPECT_EQ(b->questions_deadline_skipped, 0u);
  EXPECT_EQ(WeatherRows(a_wh), WeatherRows(b_wh));
}

/// Golden equivalence under chaos: at 10% transient faults with the same
/// seed, the cached AnalyzedCorpus path and the reanalyze_per_question
/// ablation (the pre-refactor per-question analysis) must load identical
/// warehouse rows and report identical feed accounting. The fault RNG draws
/// once per Hit() call, so any control-flow divergence between the two
/// analysis modes would desynchronize the injected-fault sequence and show
/// up as a row or counter diff.
TEST_F(ChaosPipelineTest, TenPercentFaultsFeedIdenticallyInBothModes) {
  ResilienceConfig res;
  res.fault = FaultConfig::TransientEverywhere(0.10, 77);
  res.retry = FastRetry();

  auto cached_wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  auto cached = Feed(&cached_wh, res, nullptr, false);
  ASSERT_TRUE(cached.ok());

  auto ablation_wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  auto ablation = Feed(&ablation_wh, res, nullptr, true);
  ASSERT_TRUE(ablation.ok());

  EXPECT_EQ(WeatherRows(cached_wh), WeatherRows(ablation_wh));
  EXPECT_EQ(cached->questions_asked, ablation->questions_asked);
  EXPECT_EQ(cached->questions_answered, ablation->questions_answered);
  EXPECT_EQ(cached->questions_failed, ablation->questions_failed);
  EXPECT_EQ(cached->facts_extracted, ablation->facts_extracted);
  EXPECT_EQ(cached->rows_loaded, ablation->rows_loaded);
  EXPECT_EQ(cached->rows_deduplicated, ablation->rows_deduplicated);
  EXPECT_EQ(cached->rows_quarantined, ablation->rows_quarantined);
  EXPECT_EQ(cached->retries, ablation->retries);
  EXPECT_EQ(cached->transient_failures, ablation->transient_failures);
  // The accounting identity holds in both modes.
  for (const FeedReport* r : {&*cached, &*ablation}) {
    EXPECT_EQ(r->rows_loaded + r->rows_deduplicated + r->rows_quarantined,
              r->facts_extracted);
  }
}

/// Golden equivalence under chaos, serial vs batched: with 10% transient
/// faults and the same seed, parallel indexation (threads=4) plus the
/// batched Step-5 ask phase (parallel_questions=4) must load identical
/// warehouse rows and report identical feed accounting as the fully serial
/// run. All fault draws, retries and breaker decisions stay serialized at
/// the merge point, so the injected-fault schedule cannot diverge.
TEST_F(ChaosPipelineTest, TenPercentFaultsFeedIdenticallySerialAndBatched) {
  ResilienceConfig res;
  res.fault = FaultConfig::TransientEverywhere(0.10, 77);
  res.retry = FastRetry();

  auto serial_wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  auto serial = Feed(&serial_wh, res, nullptr, false, /*parallel=*/1);
  ASSERT_TRUE(serial.ok());

  auto batched_wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  auto batched = Feed(&batched_wh, res, nullptr, false, /*parallel=*/4);
  ASSERT_TRUE(batched.ok());

  EXPECT_EQ(WeatherRows(serial_wh), WeatherRows(batched_wh));
  EXPECT_EQ(serial->questions_asked, batched->questions_asked);
  EXPECT_EQ(serial->questions_answered, batched->questions_answered);
  EXPECT_EQ(serial->questions_failed, batched->questions_failed);
  EXPECT_EQ(serial->facts_extracted, batched->facts_extracted);
  EXPECT_EQ(serial->rows_loaded, batched->rows_loaded);
  EXPECT_EQ(serial->rows_deduplicated, batched->rows_deduplicated);
  EXPECT_EQ(serial->rows_quarantined, batched->rows_quarantined);
  EXPECT_EQ(serial->quarantined_by_reason, batched->quarantined_by_reason);
  EXPECT_EQ(serial->retries, batched->retries);
  EXPECT_EQ(serial->transient_failures, batched->transient_failures);
  EXPECT_EQ(serial->wasted_retries, batched->wasted_retries);
  EXPECT_EQ(serial->breaker_rejections, batched->breaker_rejections);
  // Even the per-stage deadline ledger matches: the speculative workers'
  // private ledgers were absorbed exactly where serial Ask() would have
  // charged.
  EXPECT_EQ(serial->health.budget_spent, batched->health.budget_spent);
  for (const FeedReport* r : {&*serial, &*batched}) {
    EXPECT_EQ(r->rows_loaded + r->rows_deduplicated + r->rows_quarantined,
              r->facts_extracted);
  }
}

}  // namespace
}  // namespace integration
}  // namespace dwqa
