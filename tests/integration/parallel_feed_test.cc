// Serial↔batched equivalence of the Step-5 feed (threads label: the CI
// TSan job runs this under DWQA_SANITIZE=thread). parallel_questions > 1
// speculates Ask() on a pool but must keep every FeedReport counter, every
// warehouse row and the per-stage deadline ledger byte-identical to the
// serial loop; the chaos-label counterpart with injected faults lives in
// chaos_pipeline_test.cc.

#include <cstdio>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "integration/last_minute_sales.h"
#include "integration/pipeline.h"
#include "web/question_factory.h"
#include "web/synthetic_web.h"

namespace dwqa {
namespace integration {
namespace {

/// Fact rows with surrogate keys resolved to member names (surrogate ids
/// depend on load order; resolved rows are the comparable identity).
std::multiset<std::string> WeatherRows(const dw::Warehouse& wh) {
  const dw::Table* table = wh.FactTable("Weather").ValueOrDie();
  size_t loc = table->ColumnIndex("fk_location").ValueOrDie();
  size_t day = table->ColumnIndex("fk_day").ValueOrDie();
  size_t src = table->ColumnIndex("fk_source").ValueOrDie();
  size_t temp = table->ColumnIndex("TemperatureC").ValueOrDie();
  std::multiset<std::string> rows;
  for (size_t r = 0; r < table->row_count(); ++r) {
    auto name = [&](const char* dim, size_t col, const char* level) {
      return wh.MemberLevelValue(dim, dw::MemberId(table->Get(r, col).as_int()),
                                 level)
          .ValueOrDie();
    };
    rows.insert(name("City", loc, "City") + "|" + name("Date", day, "Date") +
                "|" + name("Source", src, "Url") + "|" +
                table->Get(r, temp).ToString());
  }
  return rows;
}

void ExpectReportsIdentical(const FeedReport& a, const FeedReport& b) {
  EXPECT_EQ(a.questions_asked, b.questions_asked);
  EXPECT_EQ(a.questions_answered, b.questions_answered);
  EXPECT_EQ(a.questions_failed, b.questions_failed);
  EXPECT_EQ(a.questions_resumed, b.questions_resumed);
  EXPECT_EQ(a.facts_extracted, b.facts_extracted);
  EXPECT_EQ(a.rows_loaded, b.rows_loaded);
  EXPECT_EQ(a.rows_deduplicated, b.rows_deduplicated);
  EXPECT_EQ(a.rows_quarantined, b.rows_quarantined);
  EXPECT_EQ(a.rows_rejected, b.rows_rejected);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.transient_failures, b.transient_failures);
  EXPECT_EQ(a.questions_by_degradation, b.questions_by_degradation);
  EXPECT_EQ(a.health.budget_spent, b.health.budget_spent);
  ASSERT_EQ(a.facts.size(), b.facts.size());
  for (size_t i = 0; i < a.facts.size(); ++i) {
    EXPECT_EQ(qa::StructuredFactsToCsv({a.facts[i]}),
              qa::StructuredFactsToCsv({b.facts[i]}))
        << "fact " << i;
    EXPECT_EQ(a.facts[i].disposition, b.facts[i].disposition) << "fact " << i;
  }
}

class ParallelFeedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    uml_ = LastMinuteSales::MakeUmlModel();
    web::WebConfig config;
    config.cities = {"Barcelona", "Madrid"};
    config.months = {1};
    config.table_weather = false;
    web_ = std::make_unique<web::SyntheticWeb>(
        web::SyntheticWeb::Build(config).ValueOrDie());
    for (const web::GoldQuestion& gq :
         web::QuestionFactory::WeatherQuestions(*web_)) {
      questions_.push_back(gq.question);
    }
    ASSERT_GE(questions_.size(), 2u);
  }

  PipelineConfig MakeConfig(size_t parallel) const {
    PipelineConfig config = LastMinuteSales::DefaultPipelineConfig();
    config.qa.max_answers = 10;
    config.qa.passages_to_analyze = 8;
    config.qa.threads = parallel;
    config.parallel_questions = parallel;
    config.resilience.retry.sleep = false;
    return config;
  }

  Result<FeedReport> Feed(dw::Warehouse* wh, PipelineConfig config,
                          IntegrationPipeline** out_pipeline = nullptr) {
    pipeline_ = std::make_unique<IntegrationPipeline>(wh, &uml_, config);
    if (out_pipeline != nullptr) *out_pipeline = pipeline_.get();
    DWQA_RETURN_NOT_OK(pipeline_->RunAll(&web_->documents()));
    return pipeline_->RunStep5(questions_, "Weather", "temperature");
  }

  ontology::UmlModel uml_;
  std::unique_ptr<web::SyntheticWeb> web_;
  std::vector<std::string> questions_;
  std::unique_ptr<IntegrationPipeline> pipeline_;
};

TEST_F(ParallelFeedTest, BatchedFeedMatchesSerialFeedExactly) {
  auto serial_wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  auto serial = Feed(&serial_wh, MakeConfig(1));
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_GT(serial->rows_loaded, 0u);

  auto batched_wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  auto batched = Feed(&batched_wh, MakeConfig(4));
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();

  EXPECT_EQ(WeatherRows(serial_wh), WeatherRows(batched_wh));
  ExpectReportsIdentical(*serial, *batched);
}

TEST_F(ParallelFeedTest, MoreWorkersThanQuestionsStillMatchSerial) {
  auto serial_wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  auto serial = Feed(&serial_wh, MakeConfig(1));
  ASSERT_TRUE(serial.ok());

  auto batched_wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  auto batched = Feed(&batched_wh, MakeConfig(16));
  ASSERT_TRUE(batched.ok());
  EXPECT_EQ(WeatherRows(serial_wh), WeatherRows(batched_wh));
  ExpectReportsIdentical(*serial, *batched);
}

TEST_F(ParallelFeedTest, FiniteBudgetFallsBackToTheSerialPath) {
  // With a finite deadline, parallel_questions is ignored (mid-batch
  // exhaustion is order-dependent) — the run must behave exactly like the
  // same budget with parallel_questions=1.
  PipelineConfig serial_config = MakeConfig(1);
  serial_config.resilience.deadline.budget = 500.0;
  auto serial_wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  auto serial = Feed(&serial_wh, serial_config);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  PipelineConfig batched_config = MakeConfig(4);
  batched_config.qa.threads = 1;  // Isolate the Step-5 knob.
  batched_config.resilience.deadline.budget = 500.0;
  auto batched_wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  auto batched = Feed(&batched_wh, batched_config);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();

  EXPECT_EQ(WeatherRows(serial_wh), WeatherRows(batched_wh));
  EXPECT_EQ(serial->deadline_exhausted, batched->deadline_exhausted);
  EXPECT_EQ(serial->questions_deadline_skipped,
            batched->questions_deadline_skipped);
  ExpectReportsIdentical(*serial, *batched);
}

TEST_F(ParallelFeedTest, BatchedResumeSkipsCompletedQuestions) {
  // First run feeds everything with a checkpoint; the resumed batched run
  // must not re-ask (or re-speculate) a completed question.
  std::string ckpt = testing::TempDir() + "parallel_feed.ckpt";
  std::remove(ckpt.c_str());
  PipelineConfig config = MakeConfig(4);
  config.resilience.checkpoint_path = ckpt;
  auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  auto first = Feed(&wh, config);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->questions_resumed, 0u);
  ASSERT_GT(first->rows_loaded, 0u);

  auto resumed_wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  auto resumed = Feed(&resumed_wh, config);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->questions_resumed, questions_.size());
  EXPECT_EQ(resumed->questions_asked, 0u);
  EXPECT_EQ(resumed->rows_loaded, 0u);
  std::remove(ckpt.c_str());
}

}  // namespace
}  // namespace integration
}  // namespace dwqa
