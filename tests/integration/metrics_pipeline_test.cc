// End-to-end observability: the pipeline-wide MetricRegistry must cover
// every layer (qa/ir/dw/feed/resilience), its feed families must agree with
// the FeedReport accounting, and trace_questions must produce a renderable
// span tree even for degraded answers.
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/metric_names.h"
#include "integration/last_minute_sales.h"
#include "integration/pipeline.h"
#include "web/synthetic_web.h"

namespace dwqa {
namespace integration {
namespace {

const char kQ1[] = "What is the temperature in Barcelona in January of 2004?";
const char kQ2[] = "What is the temperature in Madrid in January of 2004?";

RetryPolicy FastRetry() {
  RetryPolicy policy;
  policy.sleep = false;
  return policy;
}

class MetricsPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    uml_ = LastMinuteSales::MakeUmlModel();
    web::WebConfig config;
    config.cities = {"Barcelona", "Madrid"};
    config.months = {1};
    web_ = std::make_unique<web::SyntheticWeb>(
        web::SyntheticWeb::Build(config).ValueOrDie());
  }

  ontology::UmlModel uml_;
  std::unique_ptr<web::SyntheticWeb> web_;
};

TEST_F(MetricsPipelineTest, RegistryCoversAllLayers) {
  auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  IntegrationPipeline pipeline(&wh, &uml_,
                               LastMinuteSales::DefaultPipelineConfig());
  ASSERT_TRUE(pipeline.RunAll(&web_->documents()).ok());
  auto report = pipeline.RunStep5({kQ1, kQ2}, "Weather", "temperature");
  ASSERT_TRUE(report.ok());
  ASSERT_GT(report->rows_loaded, 0u);

  std::set<std::string> families;
  for (const MetricSnapshot& snap : pipeline.metrics()->Snapshot()) {
    families.insert(snap.name);
  }
  // The acceptance bar: at least 15 distinct metrics spanning the QA, IR,
  // DW and integration layers after one indexed + fed run.
  EXPECT_GE(families.size(), 15u);
  for (const char* name : {
           kMetricDeadlineSpentUnits, kMetricDeadlineExhausted,
           kMetricQaIndexDocuments, kMetricQaIndexSentences,
           kMetricQaIndexLatency, kMetricQaQuestions, kMetricQaAnswers,
           kMetricQaPhaseLatency, kMetricQaSentencesAnalyzed,
           kMetricIrPassageLookups, kMetricIrPassageLookupLatency,
           kMetricFeedQuestions, kMetricFeedQuestionsByLevel,
           kMetricFeedFacts, kMetricDwEtlRowsLoaded, kMetricDwEtlLoadLatency,
       }) {
    EXPECT_EQ(families.count(name), 1u) << "missing " << name;
  }

  // Both exporters render the same registry.
  MetricsDump dump = pipeline.DumpMetrics();
  EXPECT_NE(dump.prometheus.find("# TYPE dwqa_qa_questions_total counter"),
            std::string::npos);
  EXPECT_NE(
      dump.prometheus.find("dwqa_feed_facts_total{disposition=\"loaded\"}"),
      std::string::npos);
  EXPECT_NE(dump.prometheus.find("dwqa_qa_phase_latency_ms_bucket"),
            std::string::npos);
  EXPECT_NE(dump.json.find("\"schema\": \"dwqa-metrics-v1\""),
            std::string::npos);
  EXPECT_NE(dump.json.find("dwqa_dw_etl_rows_loaded_total"),
            std::string::npos);
}

TEST_F(MetricsPipelineTest, FeedFamiliesMatchTheFeedReport) {
  PipelineConfig config = LastMinuteSales::DefaultPipelineConfig();
  // Fault injection makes the interesting counters (retries, transient
  // failures, rejects) non-zero, so the agreement below is non-vacuous.
  config.resilience.fault = FaultConfig::TransientEverywhere(0.2, 7);
  config.resilience.retry = FastRetry();
  auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  IntegrationPipeline pipeline(&wh, &uml_, config);
  ASSERT_TRUE(pipeline.RunAll(&web_->documents()).ok());
  auto report = pipeline.RunStep5({kQ1, kQ2}, "Weather", "temperature");
  ASSERT_TRUE(report.ok());

  const MetricRegistry& metrics = *pipeline.metrics();
  // Accounting identity, registry side: every extracted fact carries
  // exactly one disposition, and the buckets match the report's.
  EXPECT_EQ(metrics.FamilySum(kMetricFeedFacts),
            double(report->facts_extracted));
  EXPECT_EQ(metrics.Value(kMetricFeedFacts, {{"disposition", "loaded"}}),
            double(report->rows_loaded));
  EXPECT_EQ(
      metrics.Value(kMetricFeedFacts, {{"disposition", "deduplicated"}}),
      double(report->rows_deduplicated));
  EXPECT_EQ(metrics.Value(kMetricFeedFacts, {{"disposition", "rejected"}}),
            double(report->rows_rejected));
  EXPECT_EQ(
      metrics.Value(kMetricFeedFacts, {{"disposition", "quarantined"}}),
      double(report->rows_quarantined - report->rows_rejected));
  EXPECT_EQ(metrics.FamilySum(kMetricFeedQuarantined),
            double(report->rows_quarantined));

  // Every question lands in exactly one outcome bucket.
  EXPECT_EQ(metrics.FamilySum(kMetricFeedQuestions), 2.0);
  EXPECT_EQ(
      metrics.Value(kMetricFeedQuestions, {{"outcome", "answered"}}),
      double(report->questions_answered));

  // Resilience counters mirror the report one-for-one.
  EXPECT_EQ(metrics.Value(kMetricFeedRetries), double(report->retries));
  EXPECT_EQ(metrics.Value(kMetricFeedTransientFailures),
            double(report->transient_failures));
  EXPECT_EQ(metrics.Value(kMetricDwEtlRowsLoaded),
            double(report->rows_loaded));
  EXPECT_EQ(metrics.Value(kMetricDwEtlRowsRejected),
            double(report->rows_rejected));

  // Degradation mix: one by-level series per rung seen, equal counts.
  for (const auto& [level, count] : report->questions_by_degradation) {
    EXPECT_EQ(metrics.Value(kMetricFeedQuestionsByLevel,
                            {{"level", qa::DegradationLevelName(level)}}),
              double(count));
  }
}

TEST_F(MetricsPipelineTest, HealthIsAThinViewOverTheRegistry) {
  auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  IntegrationPipeline pipeline(&wh, &uml_,
                               LastMinuteSales::DefaultPipelineConfig());
  ASSERT_TRUE(pipeline.RunAll(&web_->documents()).ok());
  auto report = pipeline.RunStep5({kQ1, kQ2}, "Weather", "temperature");
  ASSERT_TRUE(report.ok());

  // Health() outside RunStep5 now reports the cumulative registry numbers
  // (these fields used to be empty outside a feed run).
  PipelineHealth health = pipeline.Health();
  std::map<std::string, size_t> expected;
  for (const auto& [level, count] : report->questions_by_degradation) {
    expected[qa::DegradationLevelName(level)] = count;
  }
  EXPECT_EQ(health.questions_by_degradation, expected);
  EXPECT_EQ(health.wasted_retries, report->wasted_retries);
  EXPECT_EQ(health.breaker_rejections, report->breaker_rejections);
}

TEST_F(MetricsPipelineTest, DegradedAnswerRendersAFullTrace) {
  // Stripped corpus (no unit markers): the published extractor finds
  // nothing and the IR-only rung answers with the best passage.
  ir::DocumentStore docs;
  docs.Add("web://weather-stripped", "weather", ir::DocFormat::kPlainText,
           "Saturday, January 31, 2004\n"
           "Barcelona Weather: Temperature 8 Clear skies today\n");
  PipelineConfig config = LastMinuteSales::DefaultPipelineConfig();
  config.qa.degradation.enable_ir_only = true;
  config.trace_questions = true;
  auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  IntegrationPipeline pipeline(&wh, &uml_, config);
  ASSERT_TRUE(pipeline.RunAll(&docs).ok());
  auto report = pipeline.RunStep5({kQ1}, "Weather", "temperature");
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->questions_by_degradation.count(
                qa::DegradationLevel::kIrOnly),
            1u);

  ASSERT_EQ(pipeline.question_traces().size(), 1u);
  EXPECT_EQ(pipeline.question_traces()[0].question, kQ1);
  std::string rendered = pipeline.RenderTraces();
  // The span tree walks the whole degraded path: question → ask →
  // analysis/retrieval/extraction → the IR-only rung.
  EXPECT_NE(rendered.find(kQ1), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("step5.question ("), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("└─ qa.ask ("), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("   ├─ qa.analysis ("), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("   ├─ ir.retrieval ("), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("   ├─ qa.extraction ("), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("   └─ qa.ladder.ir_only ("), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("level=IrOnly"), std::string::npos) << rendered;

  // A second feed run clears the previous run's traces.
  auto second = pipeline.RunStep5({kQ2}, "Weather", "temperature");
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(pipeline.question_traces().size(), 1u);
  EXPECT_EQ(pipeline.question_traces()[0].question, kQ2);
}

TEST_F(MetricsPipelineTest, TracingOffRecordsNothing) {
  auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  IntegrationPipeline pipeline(&wh, &uml_,
                               LastMinuteSales::DefaultPipelineConfig());
  ASSERT_TRUE(pipeline.RunAll(&web_->documents()).ok());
  ASSERT_TRUE(pipeline.RunStep5({kQ1}, "Weather", "temperature").ok());
  EXPECT_TRUE(pipeline.question_traces().empty());
  EXPECT_EQ(pipeline.RenderTraces(), "");
}

}  // namespace
}  // namespace integration
}  // namespace dwqa
