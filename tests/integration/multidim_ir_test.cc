#include "integration/multidim_ir.h"

#include <gtest/gtest.h>

namespace dwqa {
namespace integration {
namespace {

/// Mirrors the example of the paper's §2 (after McCabe et al.): news about
/// the "financial crisis" categorized by city and time, searched with
/// OLAP-style scoping and drill-down.
class MultidimIrTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mdir_ = std::make_unique<MultidimIr>(MultidimIr::Create().ValueOrDie());
    Add(0, "the financial crisis deepened on wall street",
        "New York", "United States", Date(1998, 2, 10));
    Add(1, "financial crisis summit held downtown",
        "New York", "United States", Date(1998, 7, 3));
    Add(2, "financial crisis hits european banks",
        "London", "United Kingdom", Date(1998, 2, 20));
    Add(3, "city marathon draws record crowd",
        "New York", "United States", Date(1998, 2, 11));
  }

  void Add(ir::DocId id, const std::string& text, const std::string& city,
           const std::string& country, const Date& date) {
    ASSERT_TRUE(mdir_->AddDocument(id, text, city, country, date).ok());
  }

  std::unique_ptr<MultidimIr> mdir_;
};

TEST_F(MultidimIrTest, UnscopedSearchFindsAllMatches) {
  auto hits = mdir_->Search("financial crisis", {}).ValueOrDie();
  EXPECT_EQ(hits.size(), 3u);
}

TEST_F(MultidimIrTest, SliceByCityAndQuarter) {
  // "documents with the terms 'financial crisis' published during the
  // first quarter of 1998 in New York".
  std::vector<dw::Filter> filters = {
      {"location", "City", {"New York"}},
      {"published", "Month", {"1998-01", "1998-02", "1998-03"}},
  };
  auto hits = mdir_->Search("financial crisis", filters).ValueOrDie();
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].doc, 0);
}

TEST_F(MultidimIrTest, DrillDownToJuly) {
  // "...and then drilling down to obtain those documents published in
  // July 1998".
  std::vector<dw::Filter> filters = {
      {"location", "City", {"New York"}},
      {"published", "Month", {"1998-07"}},
  };
  auto hits = mdir_->Search("financial crisis", filters).ValueOrDie();
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].doc, 1);
}

TEST_F(MultidimIrTest, CountryLevelRollUp) {
  std::vector<dw::Filter> filters = {
      {"location", "Country", {"United States"}}};
  auto hits = mdir_->Search("financial crisis", filters).ValueOrDie();
  EXPECT_EQ(hits.size(), 2u);
}

TEST_F(MultidimIrTest, CountByLevel) {
  auto by_city = mdir_->CountBy("location", "City").ValueOrDie();
  ASSERT_EQ(by_city.rows.size(), 2u);
  // London: 1 doc, New York: 3 docs (rows sorted by key).
  EXPECT_EQ(by_city.rows[0][0].ToString(), "London");
  EXPECT_EQ(by_city.rows[0][1].as_int(), 1);
  EXPECT_EQ(by_city.rows[1][1].as_int(), 3);

  auto by_year =
      mdir_->CountBy("published", "Year",
                     {{"location", "City", {"New York"}}})
          .ValueOrDie();
  ASSERT_EQ(by_year.rows.size(), 1u);
  EXPECT_EQ(by_year.rows[0][1].as_int(), 3);
}

TEST_F(MultidimIrTest, KeywordAndScopeBothRequired) {
  // Scoped but query matches nothing.
  auto none = mdir_->Search("zeppelin", {{"location", "City",
                                          {"New York"}}})
                  .ValueOrDie();
  EXPECT_TRUE(none.empty());
  // Query matches but scope excludes everything.
  auto none2 =
      mdir_->Search("financial crisis", {{"location", "City", {"Madrid"}}})
          .ValueOrDie();
  EXPECT_TRUE(none2.empty());
}

TEST_F(MultidimIrTest, InvalidInputsRejected) {
  EXPECT_TRUE(mdir_->AddDocument(-1, "x", "a", "b", Date(1998, 1, 1))
                  .IsInvalidArgument());
  EXPECT_TRUE(mdir_->AddDocument(9, "x", "a", "b", Date(1998, 2, 30))
                  .IsInvalidArgument());
  EXPECT_TRUE(mdir_->Search("x", {{"ghost", "City", {"a"}}})
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(mdir_->Search("x", {{"location", "Continent", {"a"}}})
                  .status()
                  .IsNotFound());
}

TEST_F(MultidimIrTest, TopKRespected) {
  auto hits = mdir_->Search("financial crisis", {}, 2).ValueOrDie();
  EXPECT_EQ(hits.size(), 2u);
}

TEST(MultidimIrCorpusTest, AttachValidatesItsPreconditions) {
  auto mdir = MultidimIr::Create().ValueOrDie();
  EXPECT_TRUE(mdir.AttachCorpus(nullptr).IsInvalidArgument());
  ASSERT_TRUE(mdir.AddDocument(0, "some document text", "London",
                               "United Kingdom", Date(1998, 1, 1))
                  .ok());
  text::AnalyzedCorpus corpus;
  EXPECT_TRUE(mdir.AttachCorpus(&corpus).IsInvalidArgument());
}

TEST(MultidimIrCorpusTest, AttachedSearchMatchesSelfContainedSearch) {
  const struct {
    ir::DocId id;
    const char* text;
    const char* city;
  } kDocs[] = {
      {0, "the financial crisis deepened on wall street", "New York"},
      {1, "financial crisis hits european banks", "London"},
      {2, "city marathon draws record crowd", "New York"},
  };
  auto plain = MultidimIr::Create().ValueOrDie();
  auto shared = MultidimIr::Create().ValueOrDie();
  text::AnalyzedCorpus corpus;
  ASSERT_TRUE(shared.AttachCorpus(&corpus).ok());
  for (const auto& d : kDocs) {
    ASSERT_TRUE(plain.AddDocument(d.id, d.text, d.city, "Country",
                                  Date(1998, 2, 10))
                    .ok());
    ASSERT_TRUE(shared.AddDocument(d.id, d.text, d.city, "Country",
                                   Date(1998, 2, 10))
                    .ok());
  }
  // AddDocument fed the shared corpus as a side effect.
  EXPECT_EQ(corpus.document_count(), 3u);
  auto a = plain.Search("financial crisis", {}).ValueOrDie();
  auto b = shared.Search("financial crisis", {}).ValueOrDie();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].doc, b[i].doc);
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
  }
}

TEST(MultidimIrCorpusTest, PreAnalyzedDocumentsAreNotReanalyzed) {
  text::AnalyzedCorpus corpus;
  corpus.Add(0, "the financial crisis deepened on wall street");
  const text::AnalyzedDocument* before = corpus.Find(0);
  auto mdir = MultidimIr::Create().ValueOrDie();
  ASSERT_TRUE(mdir.AttachCorpus(&corpus).ok());
  ASSERT_TRUE(mdir.AddDocument(0, "the financial crisis deepened on wall "
                                  "street",
                               "New York", "United States", Date(1998, 2, 10))
                  .ok());
  // The cached analysis was reused, not replaced.
  EXPECT_EQ(corpus.Find(0), before);
  EXPECT_EQ(corpus.document_count(), 1u);
  EXPECT_EQ(mdir.Search("financial crisis", {}).ValueOrDie().size(), 1u);
}

}  // namespace
}  // namespace integration
}  // namespace dwqa
