#include "integration/bi_analysis.h"

#include <gtest/gtest.h>

#include "dw/etl.h"
#include "integration/last_minute_sales.h"

namespace dwqa {
namespace integration {
namespace {

/// Feeds the Weather fact directly from the weather model (a perfect
/// extractor), so the BI join is isolated from QA noise.
void FeedPerfectWeather(dw::Warehouse* wh, const web::WeatherModel& weather,
                        const Date& start, int days) {
  dw::EtlLoader loader(wh);
  for (const auto& airport : LastMinuteSales::Airports()) {
    Date d = start;
    for (int i = 0; i < days; ++i, d = d.NextDay()) {
      auto temp = weather.TemperatureCelsius(airport.city, d);
      if (!temp.ok()) continue;
      dw::FactRecord rec;
      rec.role_paths = {{airport.city}, dw::DateMemberPath(d), {"truth://"}};
      rec.measures = {dw::Value(*temp)};
      ASSERT_TRUE(loader.LoadRecord("Weather", rec).ok());
    }
  }
}

TEST(BiAnalysisTest, RecoversPlantedBoostRange) {
  web::WeatherModel weather(42);
  dw::Warehouse wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  ASSERT_TRUE(LastMinuteSales::GenerateSales(&wh, weather, Date(2004, 1, 1),
                                             365)
                  .ok());
  FeedPerfectWeather(&wh, weather, Date(2004, 1, 1), 365);
  BiReport report =
      BiAnalysis::SalesVsTemperature(wh).ValueOrDie();
  ASSERT_FALSE(report.ranges.empty());
  EXPECT_GT(report.joined_days, 300u);
  // The best bucket overlaps the planted [18, 28) interval.
  EXPECT_GE(report.best.high_c, LastMinuteSales::kBoostLowC);
  EXPECT_LE(report.best.low_c, LastMinuteSales::kBoostHighC);
  // Inside-range demand is roughly double the outside-range demand.
  double inside = 0, outside = 0;
  size_t nin = 0, nout = 0;
  for (const auto& r : report.ranges) {
    if (r.observations < 3) continue;
    bool in = r.low_c >= LastMinuteSales::kBoostLowC - 1 &&
              r.high_c <= LastMinuteSales::kBoostHighC + 3;
    if (in) {
      inside += r.avg_tickets;
      ++nin;
    } else {
      outside += r.avg_tickets;
      ++nout;
    }
  }
  ASSERT_GT(nin, 0u);
  ASSERT_GT(nout, 0u);
  EXPECT_GT(inside / nin, 1.5 * (outside / nout));
}

TEST(BiAnalysisTest, BucketWidthControlsGranularity) {
  web::WeatherModel weather(42);
  dw::Warehouse wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  ASSERT_TRUE(LastMinuteSales::GenerateSales(&wh, weather, Date(2004, 6, 1),
                                             60)
                  .ok());
  FeedPerfectWeather(&wh, weather, Date(2004, 6, 1), 60);
  auto coarse = BiAnalysis::SalesVsTemperature(wh, "LastMinuteSales",
                                               "Weather", 10.0)
                    .ValueOrDie();
  auto fine = BiAnalysis::SalesVsTemperature(wh, "LastMinuteSales",
                                             "Weather", 2.0)
                  .ValueOrDie();
  EXPECT_GT(fine.ranges.size(), coarse.ranges.size());
}

TEST(BiAnalysisTest, EmptyJoinIsNotFound) {
  dw::Warehouse wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  web::WeatherModel weather(42);
  ASSERT_TRUE(LastMinuteSales::GenerateSales(&wh, weather, Date(2004, 1, 1),
                                             10)
                  .ok());
  // No weather rows fed → nothing joins.
  EXPECT_TRUE(BiAnalysis::SalesVsTemperature(wh).status().IsNotFound());
}

TEST(BiAnalysisTest, BadBucketWidthRejected) {
  dw::Warehouse wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  EXPECT_TRUE(BiAnalysis::SalesVsTemperature(wh, "LastMinuteSales",
                                             "Weather", 0.0)
                  .status()
                  .IsInvalidArgument());
}

TEST(BiAnalysisTest, UnknownFactsRejected) {
  dw::Warehouse wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  EXPECT_TRUE(BiAnalysis::SalesVsTemperature(wh, "Ghost", "Weather")
                  .status()
                  .IsNotFound());
}

}  // namespace
}  // namespace integration
}  // namespace dwqa
