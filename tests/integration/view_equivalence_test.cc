#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "dw/etl.h"
#include "dw/materialized_view.h"
#include "dw/olap.h"
#include "integration/bi_analysis.h"
#include "integration/last_minute_sales.h"
#include "integration/pipeline.h"
#include "web/synthetic_web.h"

namespace dwqa {
namespace integration {
namespace {

/// Feeds the Weather fact directly from the weather model (a perfect
/// extractor), so equivalence is tested over a dense join.
void FeedPerfectWeather(dw::Warehouse* wh, const web::WeatherModel& weather,
                        const Date& start, int days) {
  dw::EtlLoader loader(wh);
  for (const auto& airport : LastMinuteSales::Airports()) {
    Date d = start;
    for (int i = 0; i < days; ++i, d = d.NextDay()) {
      auto temp = weather.TemperatureCelsius(airport.city, d);
      if (!temp.ok()) continue;
      dw::FactRecord rec;
      rec.role_paths = {{airport.city}, dw::DateMemberPath(d), {"truth://"}};
      rec.measures = {dw::Value(*temp)};
      ASSERT_TRUE(loader.LoadRecord("Weather", rec).ok());
    }
  }
}

void ExpectSameReport(const BiReport& a, const BiReport& b) {
  ASSERT_EQ(a.ranges.size(), b.ranges.size());
  for (size_t i = 0; i < a.ranges.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.ranges[i].low_c, b.ranges[i].low_c);
    EXPECT_DOUBLE_EQ(a.ranges[i].high_c, b.ranges[i].high_c);
    EXPECT_EQ(a.ranges[i].observations, b.ranges[i].observations);
    EXPECT_DOUBLE_EQ(a.ranges[i].avg_tickets, b.ranges[i].avg_tickets);
  }
  EXPECT_DOUBLE_EQ(a.pearson_temperature_tickets,
                   b.pearson_temperature_tickets);
  EXPECT_DOUBLE_EQ(a.best.low_c, b.best.low_c);
  EXPECT_DOUBLE_EQ(a.best.high_c, b.best.high_c);
  EXPECT_EQ(a.joined_days, b.joined_days);
}

void ExpectSameOlap(const dw::OlapResult& view, const dw::OlapResult& engine,
                    const std::string& context) {
  ASSERT_EQ(view.headers, engine.headers) << context;
  ASSERT_EQ(view.rows.size(), engine.rows.size()) << context;
  for (size_t r = 0; r < engine.rows.size(); ++r) {
    for (size_t c = 0; c < engine.rows[r].size(); ++c) {
      EXPECT_TRUE(view.rows[r][c] == engine.rows[r][c])
          << context << " cell (" << r << "," << c << ")";
    }
  }
  EXPECT_EQ(view.facts_scanned, engine.facts_scanned) << context;
  EXPECT_EQ(view.facts_matched, engine.facts_matched) << context;
  EXPECT_EQ(view.ToDisplayString(), engine.ToDisplayString()) << context;
}

/// The golden pin: with the derived catalog maintained incrementally
/// through the whole feed, the view-first analysis is byte-identical to the
/// full recompute — and both paths report where each aggregate came from.
TEST(ViewEquivalenceTest, ViewFirstReportEqualsRecompute) {
  dw::Warehouse wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  dw::ViewCatalog catalog;
  ASSERT_TRUE(
      catalog.DefineAll(dw::DeriveViewsFromSchema(wh.schema())).ok());
  wh.AttachViews(&catalog);
  ASSERT_TRUE(catalog.Bind(wh).ok());

  web::WeatherModel weather(42);
  ASSERT_TRUE(LastMinuteSales::GenerateSales(&wh, weather, Date(2004, 1, 1),
                                             180)
                  .ok());
  FeedPerfectWeather(&wh, weather, Date(2004, 1, 1), 180);
  EXPECT_GT(catalog.maintenance_updates(), 0u);

  BiReport viewed = BiAnalysis::SalesVsTemperature(
                        wh, "LastMinuteSales", "Weather", 5.0,
                        BiMode::kViewFirst)
                        .ValueOrDie();
  BiReport recomputed = BiAnalysis::SalesVsTemperature(
                            wh, "LastMinuteSales", "Weather", 5.0,
                            BiMode::kRecompute)
                            .ValueOrDie();
  EXPECT_TRUE(viewed.sales_from_view);
  EXPECT_TRUE(viewed.weather_from_view);
  EXPECT_FALSE(recomputed.sales_from_view);
  EXPECT_FALSE(recomputed.weather_from_view);
  ExpectSameReport(viewed, recomputed);

  // A catalog bound from scratch over the final facts answers the same.
  dw::ViewCatalog rebuilt;
  ASSERT_TRUE(
      rebuilt.DefineAll(dw::DeriveViewsFromSchema(wh.schema())).ok());
  ASSERT_TRUE(rebuilt.Bind(wh).ok());
  dw::OlapEngine engine(&wh);
  for (const auto& q :
       {BiAnalysis::SalesQuery(), BiAnalysis::WeatherQuery()}) {
    dw::OlapResult golden = engine.Execute(q).ValueOrDie();
    ExpectSameOlap(catalog.Answer(q).ValueOrDie(), golden,
                   q.fact + "/incremental");
    ExpectSameOlap(rebuilt.Answer(q).ValueOrDie(), golden,
                   q.fact + "/rebuilt");
  }
}

TEST(ViewEquivalenceTest, ViewOnlyModeAnswersFromViewsOrFailsTyped) {
  dw::Warehouse wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  web::WeatherModel weather(7);
  ASSERT_TRUE(LastMinuteSales::GenerateSales(&wh, weather, Date(2004, 6, 1),
                                             60)
                  .ok());
  FeedPerfectWeather(&wh, weather, Date(2004, 6, 1), 60);

  // No catalog attached: view-only has nothing to answer from.
  EXPECT_TRUE(BiAnalysis::SalesVsTemperature(wh, "LastMinuteSales",
                                             "Weather", 5.0,
                                             BiMode::kViewOnly)
                  .status()
                  .IsUnavailable());

  dw::ViewCatalog catalog;
  ASSERT_TRUE(
      catalog.DefineAll(dw::DeriveViewsFromSchema(wh.schema())).ok());
  wh.AttachViews(&catalog);
  ASSERT_TRUE(catalog.Bind(wh).ok());
  BiReport viewed = BiAnalysis::SalesVsTemperature(wh, "LastMinuteSales",
                                                   "Weather", 5.0,
                                                   BiMode::kViewOnly)
                        .ValueOrDie();
  EXPECT_TRUE(viewed.sales_from_view);
  EXPECT_TRUE(viewed.weather_from_view);
  ExpectSameReport(viewed,
                   BiAnalysis::SalesVsTemperature(wh, "LastMinuteSales",
                                                  "Weather", 5.0,
                                                  BiMode::kRecompute)
                       .ValueOrDie());
}

/// The chaos pin: across a 0–30% transient-fault sweep of the live Step-5
/// feed (retries masking some faults, quarantine absorbing others), the
/// incrementally-maintained views stay byte-identical to a recompute over
/// whatever facts actually landed.
TEST(ViewEquivalenceTest, ViewsStayIdenticalUnderChaosFeedSweep) {
  const ontology::UmlModel uml = LastMinuteSales::MakeUmlModel();
  web::WebConfig web_config;
  web_config.cities = {"Barcelona", "Madrid"};
  web_config.months = {1};
  web_config.table_weather = false;
  web::SyntheticWeb web =
      web::SyntheticWeb::Build(web_config).ValueOrDie();

  for (double rate : {0.0, 0.1, 0.2, 0.3}) {
    SCOPED_TRACE("fault rate " + std::to_string(rate));
    dw::Warehouse wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
    dw::ViewCatalog catalog;
    ASSERT_TRUE(
        catalog.DefineAll(dw::DeriveViewsFromSchema(wh.schema())).ok());
    wh.AttachViews(&catalog);
    ASSERT_TRUE(catalog.Bind(wh).ok());
    web::WeatherModel weather(42);
    ASSERT_TRUE(LastMinuteSales::GenerateSales(&wh, weather,
                                               Date(2004, 1, 1), 31)
                    .ok());

    PipelineConfig config = LastMinuteSales::DefaultPipelineConfig();
    config.qa.max_answers = 10;
    config.qa.passages_to_analyze = 8;
    config.resilience.fault = FaultConfig::TransientEverywhere(
        rate, /*seed=*/uint64_t(rate * 100) + 1);
    config.resilience.retry.max_attempts = 4;
    config.resilience.retry.sleep = false;
    IntegrationPipeline pipeline(&wh, &uml, config);
    ASSERT_TRUE(pipeline.RunAll(&web.documents()).ok());
    auto report = pipeline.RunStep5(
        {"What is the temperature in Barcelona in January of 2004?",
         "What is the temperature in Madrid in January of 2004?"},
        "Weather", "temperature");
    ASSERT_TRUE(report.ok()) << report.status().ToString();

    // Whatever the chaos let through, views == recompute, byte for byte.
    dw::OlapEngine engine(&wh);
    for (const auto& q :
         {BiAnalysis::SalesQuery(), BiAnalysis::WeatherQuery()}) {
      auto viewed = catalog.Answer(q);
      ASSERT_TRUE(viewed.ok()) << viewed.status().ToString();
      ExpectSameOlap(*viewed, engine.Execute(q).ValueOrDie(), q.fact);
    }
    auto viewed_report = BiAnalysis::SalesVsTemperature(
        wh, "LastMinuteSales", "Weather", 5.0, BiMode::kViewFirst);
    auto golden_report = BiAnalysis::SalesVsTemperature(
        wh, "LastMinuteSales", "Weather", 5.0, BiMode::kRecompute);
    ASSERT_EQ(viewed_report.ok(), golden_report.ok());
    if (viewed_report.ok()) {
      ExpectSameReport(*viewed_report, *golden_report);
    }
  }
}

}  // namespace
}  // namespace integration
}  // namespace dwqa
