// The full paper scenario as one test: Steps 1–5 over the synthetic web,
// DW-generated questions, extraction accuracy against the ground truth, and
// the final BI analysis recovering the planted temperature/sales
// relationship.

#include <gtest/gtest.h>

#include <cmath>

#include "common/string_util.h"
#include "integration/bi_analysis.h"
#include "integration/last_minute_sales.h"
#include "integration/pipeline.h"
#include "integration/query_generation.h"
#include "web/question_factory.h"
#include "web/synthetic_web.h"

namespace dwqa {
namespace integration {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wh_ = std::make_unique<dw::Warehouse>(
        LastMinuteSales::MakeWarehouse().ValueOrDie());
    web::WebConfig config;
    config.seed = 42;
    config.months = {1, 7};
    webb_ = std::make_unique<web::SyntheticWeb>(
        web::SyntheticWeb::Build(config).ValueOrDie());
    uml_ = LastMinuteSales::MakeUmlModel();

    ASSERT_TRUE(LastMinuteSales::GenerateSales(
                    wh_.get(), webb_->weather(), Date(2004, 1, 1), 365)
                    .ok());

    PipelineConfig config2 = LastMinuteSales::DefaultPipelineConfig();
    config2.qa.max_answers = 40;
    pipeline_ = std::make_unique<IntegrationPipeline>(wh_.get(), &uml_,
                                                      config2);
    ASSERT_TRUE(pipeline_->RunAll(&webb_->documents()).ok());
  }

  std::unique_ptr<dw::Warehouse> wh_;
  std::unique_ptr<web::SyntheticWeb> webb_;
  ontology::UmlModel uml_;
  std::unique_ptr<IntegrationPipeline> pipeline_;
};

TEST_F(EndToEndTest, ExtractedTemperaturesMatchGroundTruth) {
  auto report = pipeline_->RunStep5(
      {"What is the temperature in Barcelona in January of 2004?"},
      "Weather", "temperature");
  ASSERT_TRUE(report.ok());
  ASSERT_GT(report->facts.size(), 3u);
  size_t correct = 0;
  for (const auto& fact : report->facts) {
    if (!fact.date.has_value()) continue;
    auto it = webb_->truth().temperature.find(
        {ToLower(fact.location), fact.date->ToIsoString()});
    if (it == webb_->truth().temperature.end()) continue;
    // Accept the published mean (prose pages) or high/low (table pages);
    // Fahrenheit values convert.
    double celsius = fact.unit == "F" ? (fact.value - 32.0) * 5.0 / 9.0
                                      : fact.value;
    if (std::abs(celsius - it->second) < 0.76 ||
        std::abs(celsius - (it->second + 3)) < 0.01 ||
        std::abs(celsius - (it->second - 3)) < 0.01) {
      ++correct;
    }
  }
  // Precision of the fed tuples (the paper's Figure 4 claim: generated
  // "successfully and correctly").
  EXPECT_GT(static_cast<double>(correct) /
                static_cast<double>(report->facts.size()),
            0.8);
}

TEST_F(EndToEndTest, DwGeneratedQuestionsFeedTheWarehouse) {
  AnalysisContext ctx;
  ctx.attribute = "temperature";
  ctx.dimension = "Airport";
  ctx.level = "City";
  std::vector<std::string> questions;
  for (int month : {1, 7}) {
    ctx.month = month;
    auto qs = QueryGeneration::GenerateQuestions(*wh_, ctx).ValueOrDie();
    questions.insert(questions.end(), qs.begin(), qs.end());
  }
  auto report =
      pipeline_->RunStep5(questions, "Weather", "temperature");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->questions_asked, 18u);  // 9 cities × 2 months.
  EXPECT_GT(report->rows_loaded, 50u);

  auto bi = BiAnalysis::SalesVsTemperature(*wh_);
  ASSERT_TRUE(bi.ok()) << bi.status();
  // The BI layer sees the planted pleasant-range boost through the
  // QA-extracted weather data.
  EXPECT_GE(bi->best.high_c, LastMinuteSales::kBoostLowC);
  EXPECT_LE(bi->best.low_c, LastMinuteSales::kBoostHighC);
}

TEST_F(EndToEndTest, ClefStyleAccuracyAboveBaseline) {
  auto questions = web::QuestionFactory::ClefStyleQuestions();
  size_t correct = 0, answered = 0;
  for (const auto& gq : questions) {
    auto answers = pipeline_->aliqan()->Ask(gq.question);
    if (!answers.ok() || answers->empty()) continue;
    ++answered;
    const auto& best = answers->best();
    if (web::QuestionFactory::Matches(gq, best.answer_text, best.has_value,
                                      best.value)) {
      ++correct;
    }
  }
  EXPECT_GT(answered, questions.size() / 2);
  // Over the 20-category set, at least 60% top-1 accuracy.
  EXPECT_GE(correct * 10, questions.size() * 6)
      << correct << "/" << questions.size();
}

TEST_F(EndToEndTest, QuestionTypeDetectionAccuracy) {
  auto questions = web::QuestionFactory::ClefStyleQuestions();
  size_t typed = 0;
  for (const auto& gq : questions) {
    auto analysis = pipeline_->aliqan()->AnalyzeQuestion(gq.question);
    ASSERT_TRUE(analysis.ok());
    if (analysis->answer_type == gq.expected_type) ++typed;
  }
  // Every question pattern maps to its taxonomy category.
  EXPECT_EQ(typed, questions.size());
}

}  // namespace
}  // namespace integration
}  // namespace dwqa
