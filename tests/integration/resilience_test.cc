#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "integration/last_minute_sales.h"
#include "integration/pipeline.h"
#include "web/synthetic_web.h"

namespace dwqa {
namespace integration {
namespace {

const char kQ1[] = "What is the temperature in Barcelona in January of 2004?";
const char kQ2[] = "What is the temperature in Madrid in January of 2004?";

/// No real sleeping in tests: the backoff schedule is still computed and
/// counted, only the waiting is skipped.
RetryPolicy FastRetry() {
  RetryPolicy policy;
  policy.sleep = false;
  return policy;
}

/// Every fact row rendered column-by-column — the comparison unit for
/// "the faulty run loads the identical row set".
std::multiset<std::string> WeatherRows(const dw::Warehouse& wh) {
  const dw::Table* table = wh.FactTable("Weather").ValueOrDie();
  std::multiset<std::string> rows;
  for (size_t r = 0; r < table->row_count(); ++r) {
    std::string row;
    for (size_t c = 0; c < table->column_count(); ++c) {
      row += table->Get(r, c).ToString() + "|";
    }
    rows.insert(row);
  }
  return rows;
}

/// Number of (location, day) dedup keys that appear on more than one row.
size_t DuplicatedFeedKeys(const dw::Warehouse& wh) {
  const dw::Table* table = wh.FactTable("Weather").ValueOrDie();
  size_t loc = table->ColumnIndex("fk_location").ValueOrDie();
  size_t day = table->ColumnIndex("fk_day").ValueOrDie();
  std::map<std::pair<int64_t, int64_t>, size_t> seen;
  size_t duplicated = 0;
  for (size_t r = 0; r < table->row_count(); ++r) {
    if (++seen[{table->Get(r, loc).as_int(),
                table->Get(r, day).as_int()}] == 2) {
      ++duplicated;
    }
  }
  return duplicated;
}

class ResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    uml_ = LastMinuteSales::MakeUmlModel();
    web::WebConfig config;
    config.cities = {"Barcelona", "Madrid"};
    config.months = {1};
    web_ = std::make_unique<web::SyntheticWeb>(
        web::SyntheticWeb::Build(config).ValueOrDie());
  }

  /// Builds a fresh warehouse + pipeline, runs Steps 1–4 + indexation and
  /// one Step-5 batch over both questions.
  Result<FeedReport> Feed(dw::Warehouse* wh, const ResilienceConfig& res) {
    PipelineConfig config = LastMinuteSales::DefaultPipelineConfig();
    config.resilience = res;
    IntegrationPipeline p(wh, &uml_, config);
    DWQA_RETURN_NOT_OK(p.RunAll(&web_->documents()));
    return p.RunStep5({kQ1, kQ2}, "Weather", "temperature");
  }

  ontology::UmlModel uml_;
  std::unique_ptr<web::SyntheticWeb> web_;
};

TEST_F(ResilienceTest, TwentyPercentFaultRateLoadsTheIdenticalRowSet) {
  auto clean_wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  auto clean = Feed(&clean_wh, ResilienceConfig{});
  ASSERT_TRUE(clean.ok());
  ASSERT_GT(clean->rows_loaded, 0u);
  EXPECT_EQ(clean->retries, 0u);

  ResilienceConfig faulty_res;
  faulty_res.fault = FaultConfig::TransientEverywhere(0.2, 7);
  faulty_res.retry = FastRetry();
  auto faulty_wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  auto faulty = Feed(&faulty_wh, faulty_res);
  ASSERT_TRUE(faulty.ok());

  // The retries fully mask a 20% transient fault rate: same questions
  // answered, same rows loaded, byte-identical fact table.
  EXPECT_EQ(faulty->questions_answered, clean->questions_answered);
  EXPECT_EQ(faulty->questions_failed, 0u);
  EXPECT_EQ(faulty->rows_loaded, clean->rows_loaded);
  EXPECT_EQ(WeatherRows(faulty_wh), WeatherRows(clean_wh));
  // ... and the masking was real work, visible in the report.
  EXPECT_GT(faulty->retries, 0u);
  EXPECT_GT(faulty->transient_failures, 0u);
  EXPECT_EQ(faulty->rows_loaded + faulty->rows_deduplicated +
                faulty->rows_quarantined,
            faulty->facts_extracted);
}

TEST_F(ResilienceTest, FaultScheduleIsDeterministic) {
  ResilienceConfig res;
  res.fault = FaultConfig::TransientEverywhere(0.2, 7);
  res.retry = FastRetry();
  auto wh_a = LastMinuteSales::MakeWarehouse().ValueOrDie();
  auto wh_b = LastMinuteSales::MakeWarehouse().ValueOrDie();
  auto a = Feed(&wh_a, res);
  auto b = Feed(&wh_b, res);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->retries, b->retries);
  EXPECT_EQ(a->transient_failures, b->transient_failures);
  EXPECT_EQ(WeatherRows(wh_a), WeatherRows(wh_b));
}

TEST_F(ResilienceTest, PermanentFetchFaultsFailQuestionsFast) {
  ResilienceConfig res;
  res.fault.rules.push_back({kFaultPointFetch, 1.0, FaultMode::kTransient,
                             StatusCode::kInternal});
  res.retry = FastRetry();
  auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  auto report = Feed(&wh, res);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->questions_failed, 2u);
  EXPECT_EQ(report->questions_answered, 0u);
  EXPECT_EQ(report->facts_extracted, 0u);
  // Permanent errors never enter the retry loop.
  EXPECT_EQ(report->retries, 0u);
  EXPECT_EQ(wh.FactRowCount("Weather").ValueOrDie(), 0u);
}

TEST_F(ResilienceTest, ExhaustedEtlRetriesQuarantineTheFacts) {
  ResilienceConfig res;
  res.fault.rules.push_back({kFaultPointEtlLoad, 1.0, FaultMode::kTransient,
                             StatusCode::kUnavailable});
  res.retry = FastRetry();
  res.retry.max_attempts = 2;
  auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();

  PipelineConfig config = LastMinuteSales::DefaultPipelineConfig();
  config.resilience = res;
  IntegrationPipeline p(&wh, &uml_, config);
  ASSERT_TRUE(p.RunAll(&web_->documents()).ok());
  auto report = p.RunStep5({kQ1}, "Weather", "temperature");
  ASSERT_TRUE(report.ok());

  EXPECT_GT(report->facts_extracted, 0u);
  EXPECT_EQ(report->rows_loaded, 0u);
  EXPECT_EQ(wh.FactRowCount("Weather").ValueOrDie(), 0u);
  // Every fact that reached the ETL died there and went to the quarantine
  // as TransientExhausted; the accounting identity still balances.
  EXPECT_GT(report->rows_rejected, 0u);
  EXPECT_EQ(report->rows_quarantined,
            report->facts_extracted - report->rows_deduplicated);
  EXPECT_EQ(report->quarantined_by_reason
                .at(qa::RejectReason::kTransientExhausted),
            report->rows_rejected);
  for (const dw::QuarantineRecord& record : p.quarantine().records()) {
    EXPECT_EQ(record.reason, "TransientExhausted");
    EXPECT_FALSE(record.detail.empty());
  }
}

TEST_F(ResilienceTest, StrictFeedAxiomsQuarantineWithTypedReasons) {
  // The feed boundary can be stricter than the extraction-side axioms:
  // admit only temperatures up to 8 ºC. Barcelona's January mean is ~9 ºC,
  // Madrid's ~6 ºC, so the batch deterministically splits into loaded and
  // quarantined facts.
  PipelineConfig config = LastMinuteSales::DefaultPipelineConfig();
  qa::AttributeRule strict;
  strict.min_value = -90.0;
  strict.max_value = 8.0;
  config.resilience.validator_rules["temperature"] = strict;

  auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  IntegrationPipeline p(&wh, &uml_, config);
  ASSERT_TRUE(p.RunAll(&web_->documents()).ok());
  auto report = p.RunStep5({kQ1, kQ2}, "Weather", "temperature");
  ASSERT_TRUE(report.ok());

  EXPECT_GT(report->rows_loaded, 0u);
  EXPECT_GT(report->rows_quarantined, 0u);
  EXPECT_GT(report->quarantined_by_reason
                .at(qa::RejectReason::kValueOutOfRange),
            0u);
  // Quarantined facts never reach the warehouse.
  EXPECT_EQ(wh.FactRowCount("Weather").ValueOrDie(), report->rows_loaded);
  EXPECT_EQ(report->rows_loaded + report->rows_deduplicated +
                report->rows_quarantined,
            report->facts_extracted);

  // Every quarantined record carries a typed, parseable reason plus the
  // §4.2 provenance URL.
  ASSERT_EQ(p.quarantine().size(), report->rows_quarantined);
  for (const dw::QuarantineRecord& record : p.quarantine().records()) {
    EXPECT_TRUE(qa::RejectReasonFromName(record.reason).ok())
        << record.reason;
    EXPECT_FALSE(record.url.empty());
  }
  // The per-reason counters agree between the report and the store.
  auto counts = p.quarantine().CountsByReason();
  for (const auto& [reason, count] : report->quarantined_by_reason) {
    EXPECT_EQ(counts[qa::RejectReasonName(reason)], count);
  }

  // The CSV export lists each record with its reason.
  std::string path = testing::TempDir() + "resilience_quarantine.csv";
  ASSERT_TRUE(p.quarantine().SaveCsv(path).ok());
  std::ifstream in(path);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_NE(header.find("reason"), std::string::npos);
  size_t data_lines = 0;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) ++data_lines;
  }
  EXPECT_EQ(data_lines, report->rows_quarantined);
  std::remove(path.c_str());
}

TEST_F(ResilienceTest, CheckpointResumeLoadsEachKeyExactlyOnce) {
  std::string ckpt = testing::TempDir() + "resilience_feed.ckpt";
  std::remove(ckpt.c_str());

  PipelineConfig config = LastMinuteSales::DefaultPipelineConfig();
  config.resilience.retry = FastRetry();
  config.resilience.checkpoint_path = ckpt;
  config.resilience.checkpoint_every = 1;

  auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();

  // First run: "crashes" after the first question (we simply never hand it
  // the second one). The checkpoint survives on disk.
  size_t rows_first = 0;
  {
    IntegrationPipeline p(&wh, &uml_, config);
    ASSERT_TRUE(p.RunAll(&web_->documents()).ok());
    auto report = p.RunStep5({kQ1}, "Weather", "temperature");
    ASSERT_TRUE(report.ok());
    rows_first = report->rows_loaded;
    ASSERT_GT(rows_first, 0u);
    ASSERT_TRUE(FeedCheckpointFile::Exists(ckpt));
  }

  // Second run: a fresh pipeline over the SAME warehouse resumes from the
  // checkpoint — the completed question is skipped, its rows are not
  // re-loaded, and the full batch completes.
  {
    IntegrationPipeline p(&wh, &uml_, config);
    ASSERT_TRUE(p.RunAll(&web_->documents()).ok());
    auto report = p.RunStep5({kQ1, kQ2}, "Weather", "temperature");
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->questions_resumed, 1u);
    EXPECT_EQ(report->questions_asked, 1u);
    EXPECT_GT(report->rows_loaded, 0u);
    EXPECT_EQ(wh.FactRowCount("Weather").ValueOrDie(),
              rows_first + report->rows_loaded);
  }

  // No (location, day) key was fed twice...
  EXPECT_EQ(DuplicatedFeedKeys(wh), 0u);

  // ... and the interrupted-and-resumed warehouse matches an uninterrupted
  // run row for row.
  auto whole_wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  ResilienceConfig plain;
  plain.retry = FastRetry();
  auto whole = Feed(&whole_wh, plain);
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(WeatherRows(wh), WeatherRows(whole_wh));
  std::remove(ckpt.c_str());
}

TEST_F(ResilienceTest, CheckpointRoundTripsThroughThePipeline) {
  std::string ckpt = testing::TempDir() + "resilience_roundtrip.ckpt";
  std::remove(ckpt.c_str());
  PipelineConfig config = LastMinuteSales::DefaultPipelineConfig();
  config.resilience.retry = FastRetry();
  config.resilience.checkpoint_path = ckpt;

  auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  IntegrationPipeline p(&wh, &uml_, config);
  ASSERT_TRUE(p.RunAll(&web_->documents()).ok());
  auto report = p.RunStep5({kQ1}, "Weather", "temperature");
  ASSERT_TRUE(report.ok());

  FeedCheckpoint in_memory = p.MakeFeedCheckpoint();
  EXPECT_EQ(in_memory.rows_loaded, report->rows_loaded);
  EXPECT_EQ(in_memory.completed_questions.count(kQ1), 1u);
  EXPECT_EQ(in_memory.fed_keys.size(), report->rows_loaded);
  auto on_disk = FeedCheckpointFile::Load(ckpt);
  ASSERT_TRUE(on_disk.ok());
  EXPECT_EQ(*on_disk, in_memory);
  std::remove(ckpt.c_str());
}

}  // namespace
}  // namespace integration
}  // namespace dwqa
