#include <filesystem>
#include <memory>
#include <set>

#include <gtest/gtest.h>
#include <unistd.h>

#include "common/metric_names.h"
#include "dw/recovery.h"
#include "dw/snapshot.h"
#include "integration/last_minute_sales.h"
#include "integration/pipeline.h"
#include "web/synthetic_web.h"

namespace dwqa {
namespace integration {
namespace {

namespace stdfs = std::filesystem;

const char kQ1[] = "What is the temperature in Barcelona in January of 2004?";
const char kQ2[] = "What is the temperature in Madrid in January of 2004?";

/// Every fact row rendered column-by-column — the comparison unit for
/// "recovery restores the byte-identical row set the live feed loaded".
std::multiset<std::string> WeatherRows(const dw::Warehouse& wh) {
  const dw::Table* table = wh.FactTable("Weather").ValueOrDie();
  std::multiset<std::string> rows;
  for (size_t r = 0; r < table->row_count(); ++r) {
    std::string row;
    for (size_t c = 0; c < table->column_count(); ++c) {
      row += table->Get(r, c).ToString() + "|";
    }
    rows.insert(row);
  }
  return rows;
}

class DurabilityPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    uml_ = LastMinuteSales::MakeUmlModel();
    web::WebConfig config;
    config.cities = {"Barcelona", "Madrid"};
    config.months = {1};
    web_ = std::make_unique<web::SyntheticWeb>(
        web::SyntheticWeb::Build(config).ValueOrDie());
    dir_ = stdfs::path(::testing::TempDir()) / (std::string("dwqa_durability_pipeline.") + std::to_string(::getpid()));
    stdfs::remove_all(dir_);
  }
  void TearDown() override { stdfs::remove_all(dir_); }

  std::string Dir() const { return dir_.string(); }

  PipelineConfig DurableConfig() {
    PipelineConfig config = LastMinuteSales::DefaultPipelineConfig();
    config.resilience.durability.dir = Dir();
    return config;
  }

  ontology::UmlModel uml_;
  std::unique_ptr<web::SyntheticWeb> web_;
  stdfs::path dir_;
};

/// The tentpole wiring, end to end: a durable feed logs every loaded fact
/// to the WAL before the warehouse sees it, a flush snapshots + garbage
/// collects, and Recovery::Open on the durability directory rebuilds the
/// byte-identical Weather row set.
TEST_F(DurabilityPipelineTest, FeedFlushRecoverRoundTrip) {
  auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  IntegrationPipeline p(&wh, &uml_, DurableConfig());
  ASSERT_TRUE(p.RunAll(&web_->documents()).ok());
  auto report = p.RunStep5({kQ1, kQ2}, "Weather", "temperature");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_GT(report->rows_loaded, 0u);

  // Every loaded row was WAL-logged first: one LSN per loaded row.
  EXPECT_EQ(p.wal_last_lsn(), report->rows_loaded);
  EXPECT_EQ(p.metrics()->Value(kMetricWalAppends),
            double(report->rows_loaded));
  EXPECT_EQ(p.metrics()->Value(kMetricWalLastLsn),
            double(report->rows_loaded));
  EXPECT_GT(p.metrics()->Value(kMetricWalAppendBytes), 0.0);

  // Flush: snapshot at the current LSN, covered segments dropped.
  ASSERT_TRUE(p.FlushDurability().ok());
  auto snapshots = dw::ListSnapshots(Dir()).ValueOrDie();
  ASSERT_EQ(snapshots.size(), 1u);
  EXPECT_EQ(snapshots[0].lsn, p.wal_last_lsn());

  // A restarted process recovers the identical warehouse.
  dw::RecoveryOptions options;
  options.bootstrap_schema = LastMinuteSales::MakeSchema();
  auto recovered = dw::Recovery::Open(Dir(), options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->snapshot_lsn, p.wal_last_lsn());
  EXPECT_EQ(WeatherRows(recovered->warehouse), WeatherRows(wh));
  EXPECT_TRUE(recovered->quarantine.empty());

  auto fsck = dw::Fsck(Dir()).ValueOrDie();
  EXPECT_TRUE(fsck.clean())
      << (fsck.issues.empty() ? "" : fsck.issues[0]);
}

/// Without a flush, the WAL alone carries the state: cold-start replay
/// through the bootstrap schema rebuilds every loaded row.
TEST_F(DurabilityPipelineTest, WalOnlyReplayRestoresTheRows) {
  auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  IntegrationPipeline p(&wh, &uml_, DurableConfig());
  ASSERT_TRUE(p.RunAll(&web_->documents()).ok());
  auto report = p.RunStep5({kQ1, kQ2}, "Weather", "temperature");
  ASSERT_TRUE(report.ok());
  ASSERT_GT(report->rows_loaded, 0u);

  dw::RecoveryOptions options;
  options.bootstrap_schema = LastMinuteSales::MakeSchema();
  auto recovered = dw::Recovery::Open(Dir(), options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->snapshot_lsn, 0u);
  EXPECT_EQ(recovered->replayed, report->rows_loaded);
  EXPECT_EQ(WeatherRows(recovered->warehouse), WeatherRows(wh));
}

/// Satellite 2 end to end: the checkpoint written by a durable feed
/// records the WAL position, and a checkpoint claiming progress beyond
/// the recovered LSN is rejected with a typed error instead of silently
/// skipping questions the durable data never saw.
TEST_F(DurabilityPipelineTest, StaleCheckpointAheadOfTheWalIsRejected) {
  PipelineConfig config = DurableConfig();
  config.resilience.checkpoint_path = Dir() + "/feed.ckpt";
  {
    auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
    IntegrationPipeline p(&wh, &uml_, config);
    ASSERT_TRUE(p.RunAll(&web_->documents()).ok());
    auto report = p.RunStep5({kQ1, kQ2}, "Weather", "temperature");
    ASSERT_TRUE(report.ok());
    ASSERT_GT(report->rows_loaded, 0u);
    // The saved checkpoint records exactly the log's position.
    auto checkpoint =
        FeedCheckpointFile::Load(config.resilience.checkpoint_path)
            .ValueOrDie();
    EXPECT_EQ(checkpoint.wal_lsn, p.wal_last_lsn());
  }

  // Forge a checkpoint from "the future": its recorded WAL position
  // exceeds anything this log ever assigned.
  auto checkpoint =
      FeedCheckpointFile::Load(config.resilience.checkpoint_path)
          .ValueOrDie();
  checkpoint.wal_lsn = 1000000;
  ASSERT_TRUE(FeedCheckpointFile::Save(checkpoint,
                                       config.resilience.checkpoint_path)
                  .ok());

  auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  IntegrationPipeline p(&wh, &uml_, config);
  ASSERT_TRUE(p.RunAll(&web_->documents()).ok());
  auto report = p.RunStep5({kQ1, kQ2}, "Weather", "temperature");
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsOutOfRange()) << report.status().ToString();
  EXPECT_NE(report.status().message().find("stale checkpoint"),
            std::string::npos);
}

/// A second RunStep5 on the same pipeline appends to the same log — LSNs
/// continue, nothing is re-logged for deduplicated facts.
TEST_F(DurabilityPipelineTest, SecondBatchContinuesTheLogWithoutRelogging) {
  auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
  IntegrationPipeline p(&wh, &uml_, DurableConfig());
  ASSERT_TRUE(p.RunAll(&web_->documents()).ok());
  auto first = p.RunStep5({kQ1}, "Weather", "temperature");
  ASSERT_TRUE(first.ok());
  uint64_t lsn_after_first = p.wal_last_lsn();
  ASSERT_GT(lsn_after_first, 0u);

  // Re-asking the same question dedups every fact: no new WAL records.
  auto again = p.RunStep5({kQ1}, "Weather", "temperature");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->rows_loaded, 0u);
  EXPECT_EQ(p.wal_last_lsn(), lsn_after_first);

  // A genuinely new question extends the log.
  auto second = p.RunStep5({kQ2}, "Weather", "temperature");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(p.wal_last_lsn(), lsn_after_first + second->rows_loaded);
}

}  // namespace
}  // namespace integration
}  // namespace dwqa
