#include "integration/pipeline.h"

#include <gtest/gtest.h>

#include "integration/last_minute_sales.h"
#include "web/synthetic_web.h"

namespace dwqa {
namespace integration {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wh_ = std::make_unique<dw::Warehouse>(
        LastMinuteSales::MakeWarehouse().ValueOrDie());
    uml_ = LastMinuteSales::MakeUmlModel();
    web::WebConfig config;
    config.cities = {"Barcelona", "Madrid"};
    config.months = {1};
    webb_ = std::make_unique<web::SyntheticWeb>(
        web::SyntheticWeb::Build(config).ValueOrDie());
  }

  std::unique_ptr<dw::Warehouse> wh_;
  ontology::UmlModel uml_;
  std::unique_ptr<web::SyntheticWeb> webb_;
};

TEST_F(PipelineTest, StepsMustRunInOrder) {
  IntegrationPipeline p(wh_.get(), &uml_,
                        LastMinuteSales::DefaultPipelineConfig());
  EXPECT_TRUE(p.RunStep2().IsInternal());
  EXPECT_TRUE(p.RunStep3().IsInternal());
  EXPECT_TRUE(p.RunStep4().IsInternal());
  EXPECT_TRUE(p.IndexCorpus(&webb_->documents()).IsInternal());
  EXPECT_TRUE(
      p.RunStep5({}, "Weather", "temperature").status().IsInternal());
  ASSERT_TRUE(p.RunStep1().ok());
  ASSERT_TRUE(p.RunStep2().ok());
  ASSERT_TRUE(p.RunStep3().ok());
  ASSERT_TRUE(p.RunStep4().ok());
  ASSERT_TRUE(p.IndexCorpus(&webb_->documents()).ok());
}

TEST_F(PipelineTest, Step1DerivesDomainOntology) {
  IntegrationPipeline p(wh_.get(), &uml_);
  ASSERT_TRUE(p.RunStep1().ok());
  EXPECT_TRUE(p.step_done(1));
  EXPECT_GT(p.domain_ontology().concept_count(), 10u);
  EXPECT_TRUE(p.domain_ontology().FindClass("airport").ok());
  EXPECT_TRUE(p.domain_ontology().FindClass("last minute sales").ok());
}

TEST_F(PipelineTest, Step2AddsAirportInstancesWithCities) {
  IntegrationPipeline p(wh_.get(), &uml_,
                        LastMinuteSales::DefaultPipelineConfig());
  ASSERT_TRUE(p.RunStep1().ok());
  ASSERT_TRUE(p.RunStep2().ok());
  const ontology::Ontology& domain = p.domain_ontology();
  auto airport = domain.FindClass("airport").ValueOrDie();
  auto insts =
      domain.Related(airport, ontology::RelationKind::kHasInstance);
  EXPECT_EQ(insts.size(), LastMinuteSales::Airports().size());
}

TEST_F(PipelineTest, Step3MergesIntoUpperOntology) {
  IntegrationPipeline p(wh_.get(), &uml_,
                        LastMinuteSales::DefaultPipelineConfig());
  ASSERT_TRUE(p.RunStep1().ok());
  ASSERT_TRUE(p.RunStep2().ok());
  ASSERT_TRUE(p.RunStep3().ok());
  const ontology::Ontology& merged = p.merged_ontology();
  // The merged ontology has both WordNet content and DW content.
  EXPECT_TRUE(merged.FindClass("entity").ok());
  auto airport = merged.FindClass("airport").ValueOrDie();
  bool el_prat_is_airport = false;
  for (auto id : merged.Find("el prat")) {
    if (merged.IsA(id, airport)) el_prat_is_airport = true;
  }
  EXPECT_TRUE(el_prat_is_airport);
  EXPECT_GT(p.merge_report().exact, 0u);
}

TEST_F(PipelineTest, Step4AttachesTemperatureAxioms) {
  IntegrationPipeline p(wh_.get(), &uml_,
                        LastMinuteSales::DefaultPipelineConfig());
  ASSERT_TRUE(p.RunStep1().ok());
  ASSERT_TRUE(p.RunStep2().ok());
  ASSERT_TRUE(p.RunStep3().ok());
  ASSERT_TRUE(p.RunStep4().ok());
  auto temp = p.merged_ontology().FindClass("temperature").ValueOrDie();
  EXPECT_EQ(p.merged_ontology().GetAxiom(temp, "unit").ValueOrDie(),
            "\xC2\xBA\x43|F");
  EXPECT_TRUE(p.merged_ontology().GetAxiom(temp, "min_celsius").ok());
  EXPECT_TRUE(p.merged_ontology().GetAxiom(temp, "conversion").ok());
}

TEST_F(PipelineTest, Step5FeedsWarehouse) {
  IntegrationPipeline p(wh_.get(), &uml_,
                        LastMinuteSales::DefaultPipelineConfig());
  ASSERT_TRUE(p.RunAll(&webb_->documents()).ok());
  auto report = p.RunStep5(
      {"What is the temperature in Barcelona in January of 2004?"},
      "Weather", "temperature");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->questions_asked, 1u);
  EXPECT_EQ(report->questions_answered, 1u);
  EXPECT_GT(report->rows_loaded, 0u);
  // Accounting identity: every extracted fact ends in exactly one bucket.
  EXPECT_EQ(report->rows_loaded + report->rows_quarantined +
                report->rows_deduplicated,
            report->facts_extracted);
  // On a clean run nothing is quarantined or retried.
  EXPECT_EQ(report->rows_quarantined, 0u);
  EXPECT_EQ(report->retries, 0u);
  EXPECT_TRUE(p.quarantine().empty());
  EXPECT_EQ(wh_->FactRowCount("Weather").ValueOrDie(),
            report->rows_loaded);
  // Extracted tuples carry the (temperature – date – city – URL) shape.
  ASSERT_FALSE(report->facts.empty());
  const qa::StructuredFact& fact = report->facts.front();
  EXPECT_EQ(fact.location, "Barcelona");
  EXPECT_TRUE(fact.date.has_value());
  EXPECT_FALSE(fact.url.empty());
}

TEST_F(PipelineTest, Step5AnswersViaAirportNameNeedEnrichment) {
  // With Step 2 enabled the airport-phrased question resolves and feeds
  // rows; with enrichment disabled the same question extracts nothing
  // usable for Barcelona (E8's mechanism).
  auto ask = [&](bool enrich) {
    auto wh = LastMinuteSales::MakeWarehouse().ValueOrDie();
    PipelineConfig config = LastMinuteSales::DefaultPipelineConfig();
    config.enrich_with_dw_contents = enrich;
    IntegrationPipeline p(&wh, &uml_, config);
    EXPECT_TRUE(p.RunAll(&webb_->documents()).ok());
    auto report = p.RunStep5(
        {"What is the temperature in El Prat in January of 2004?"},
        "Weather", "temperature");
    EXPECT_TRUE(report.ok());
    size_t good = 0;
    for (const auto& fact : report->facts) {
      if (fact.location == "Barcelona") ++good;
    }
    return good;
  };
  EXPECT_GT(ask(true), ask(false));
}

TEST_F(PipelineTest, NullInputsRejected) {
  IntegrationPipeline p(nullptr, nullptr);
  EXPECT_TRUE(p.RunStep1().IsInvalidArgument());
}

TEST_F(PipelineTest, Step5FeedDeduplicates) {
  IntegrationPipeline p(wh_.get(), &uml_,
                        LastMinuteSales::DefaultPipelineConfig());
  ASSERT_TRUE(p.RunAll(&webb_->documents()).ok());
  const std::vector<std::string> question = {
      "What is the temperature in Barcelona in January of 2004?"};
  auto first = p.RunStep5(question, "Weather", "temperature");
  ASSERT_TRUE(first.ok());
  size_t rows_after_first = wh_->FactRowCount("Weather").ValueOrDie();
  ASSERT_GT(rows_after_first, 0u);
  // Re-asking the same question must not double the warehouse.
  auto second = p.RunStep5(question, "Weather", "temperature");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->rows_loaded, 0u);
  EXPECT_GT(second->rows_deduplicated, 0u);
  EXPECT_EQ(wh_->FactRowCount("Weather").ValueOrDie(), rows_after_first);
}

TEST_F(PipelineTest, DedupCanBeDisabled) {
  PipelineConfig config = LastMinuteSales::DefaultPipelineConfig();
  config.dedup_feed = false;
  IntegrationPipeline p(wh_.get(), &uml_, config);
  ASSERT_TRUE(p.RunAll(&webb_->documents()).ok());
  const std::vector<std::string> question = {
      "What is the temperature in Barcelona in January of 2004?"};
  ASSERT_TRUE(p.RunStep5(question, "Weather", "temperature").ok());
  size_t rows_after_first = wh_->FactRowCount("Weather").ValueOrDie();
  ASSERT_TRUE(p.RunStep5(question, "Weather", "temperature").ok());
  EXPECT_EQ(wh_->FactRowCount("Weather").ValueOrDie(),
            2 * rows_after_first);
}

}  // namespace
}  // namespace integration
}  // namespace dwqa
