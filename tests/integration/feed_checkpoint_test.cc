#include "integration/feed_checkpoint.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace dwqa {
namespace integration {
namespace {

FeedCheckpoint SampleCheckpoint() {
  FeedCheckpoint checkpoint;
  checkpoint.completed_questions = {
      "What is the temperature in Barcelona in January of 2004?",
      "What is the temperature in Madrid in January of 2004?"};
  checkpoint.fed_keys = {"temperature|barcelona|2004-01-30",
                         "temperature|barcelona|2004-01-31",
                         "temperature|madrid|2004-01-31"};
  checkpoint.reject_counts = {{"ValueOutOfRange", 3}, {"BadUnit", 1}};
  checkpoint.rows_loaded = 62;
  return checkpoint;
}

TEST(FeedCheckpointTest, TextRoundTrip) {
  FeedCheckpoint checkpoint = SampleCheckpoint();
  std::string text = FeedCheckpointSerde::ToText(checkpoint);
  auto parsed = FeedCheckpointSerde::FromText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, checkpoint);
}

TEST(FeedCheckpointTest, EmptyCheckpointRoundTrips) {
  FeedCheckpoint empty;
  auto parsed =
      FeedCheckpointSerde::FromText(FeedCheckpointSerde::ToText(empty));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, empty);
}

TEST(FeedCheckpointTest, MissingMagicIsRejected) {
  auto parsed = FeedCheckpointSerde::FromText("loaded\t3\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsInvalidArgument());
}

TEST(FeedCheckpointTest, GarbageLinesAreRejectedWithLineNumbers) {
  std::string text = FeedCheckpointSerde::ToText(SampleCheckpoint());
  auto parsed = FeedCheckpointSerde::FromText(text + "what even is this\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsInvalidArgument());
  EXPECT_NE(parsed.status().message().find("line"), std::string::npos)
      << parsed.status().ToString();
}

TEST(FeedCheckpointTest, MalformedRejectCountIsRejected) {
  auto parsed = FeedCheckpointSerde::FromText(
      "dwqa-feed-checkpoint\t1\nreject\tBadUnit\tmany\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsInvalidArgument());
}

TEST(FeedCheckpointTest, FileRoundTripAndExists) {
  std::string path = testing::TempDir() + "feed_checkpoint_test.ckpt";
  std::remove(path.c_str());
  EXPECT_FALSE(FeedCheckpointFile::Exists(path));
  FeedCheckpoint checkpoint = SampleCheckpoint();
  ASSERT_TRUE(FeedCheckpointFile::Save(checkpoint, path).ok());
  EXPECT_TRUE(FeedCheckpointFile::Exists(path));
  auto loaded = FeedCheckpointFile::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, checkpoint);
  std::remove(path.c_str());
}

TEST(FeedCheckpointTest, SaveReplacesAtomically) {
  std::string path = testing::TempDir() + "feed_checkpoint_replace.ckpt";
  FeedCheckpoint first = SampleCheckpoint();
  ASSERT_TRUE(FeedCheckpointFile::Save(first, path).ok());
  FeedCheckpoint second = first;
  second.rows_loaded = 99;
  second.fed_keys.insert("temperature|valencia|2004-01-31");
  ASSERT_TRUE(FeedCheckpointFile::Save(second, path).ok());
  auto loaded = FeedCheckpointFile::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, second);
  std::remove(path.c_str());
}

TEST(FeedCheckpointTest, LoadOfMissingFileFails) {
  auto loaded = FeedCheckpointFile::Load(testing::TempDir() +
                                         "no_such_checkpoint.ckpt");
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace integration
}  // namespace dwqa
