// Golden-equivalence suite for the AnalyzedCorpus refactor: the cached
// indexation-time analysis path must answer byte-identically to the
// reanalyze_per_question ablation (the pre-refactor per-question behaviour)
// over the full question-factory set — every answer field, every structured
// fact. The chaos-label fault-injection counterpart lives in
// tests/integration/chaos_pipeline_test.cc.

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "ontology/enrichment.h"
#include "ontology/wordnet.h"
#include "qa/aliqan.h"
#include "qa/structured.h"
#include "web/question_factory.h"
#include "web/synthetic_web.h"

namespace dwqa {
namespace qa {
namespace {

/// Full-fidelity rendering of an AnswerSet: any behavioural drift between
/// the two analysis modes must show up as a string diff.
std::string Serialize(const AnswerSet& set, bool with_sentence_count = true) {
  std::ostringstream out;
  out.precision(17);
  out << "type=" << static_cast<int>(set.analysis.answer_type)
      << " degradation=" << static_cast<int>(set.degradation)
      << " reason=" << set.unanswered_reason;
  // The sentence counter is part of the contract on the retrieval-filtered
  // path; the unfiltered ablation's legacy path estimates it from newlines
  // (off by the trailing newline), so that test compares answers only.
  if (with_sentence_count) out << " sentences=" << set.sentences_analyzed;
  out << "\n";
  for (const std::string& p : set.passages) out << "P|" << p << "\n";
  for (const AnswerCandidate& a : set.answers) {
    out << "A|" << a.answer_text << "|" << static_cast<int>(a.type) << "|"
        << a.score << "|" << static_cast<int>(a.level) << "|" << a.sentence
        << "|" << a.doc << "|" << a.url << "|" << a.has_value << "|"
        << a.value << "|" << a.unit << "|"
        << (a.date.has_value() ? a.date->ToIsoString() : "-") << "|"
        << a.date_complete << "|" << a.location << "\n";
  }
  return out.str();
}

class GoldenEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    web::WebConfig config;
    config.cities = {"Barcelona", "Madrid"};
    config.months = {1};
    web_ = std::make_unique<web::SyntheticWeb>(
        web::SyntheticWeb::Build(config).ValueOrDie());
    wn_ = ontology::MiniWordNet::Build();
    std::vector<ontology::InstanceSeed> seeds = {
        {"El Prat", {}, "Barcelona", ""}};
    ASSERT_TRUE(ontology::Enricher::Enrich(&wn_, "airport", seeds).ok());
  }

  AliQAnConfig ModeConfig(bool reanalyze) const {
    AliQAnConfig config;
    // Both ladder rungs on, so the relaxed-pattern and IR-only fallback
    // paths are part of the equivalence contract too.
    config.degradation.enable_relaxed = true;
    config.degradation.enable_ir_only = true;
    config.reanalyze_per_question = reanalyze;
    return config;
  }

  /// Asks every question in both modes and asserts byte-identical answer
  /// sets and structured-fact CSVs.
  void ExpectModesIdentical(const std::vector<web::GoldQuestion>& questions) {
    AliQAn cached(&wn_, ModeConfig(false));
    AliQAn reanalyzed(&wn_, ModeConfig(true));
    ASSERT_TRUE(cached.IndexCorpus(&web_->documents()).ok());
    ASSERT_TRUE(reanalyzed.IndexCorpus(&web_->documents()).ok());
    for (const web::GoldQuestion& gq : questions) {
      Result<AnswerSet> a = cached.Ask(gq.question);
      Result<AnswerSet> b = reanalyzed.Ask(gq.question);
      ASSERT_EQ(a.ok(), b.ok()) << gq.question;
      if (!a.ok()) continue;
      EXPECT_EQ(Serialize(*a), Serialize(*b)) << gq.question;
      EXPECT_EQ(StructuredFactsToCsv(ToStructuredFacts(*a, "temperature")),
                StructuredFactsToCsv(ToStructuredFacts(*b, "temperature")))
          << gq.question;
    }
  }

  std::unique_ptr<web::SyntheticWeb> web_;
  ontology::Ontology wn_;
};

TEST_F(GoldenEquivalenceTest, AllTwentyTaxonomyCategoriesAnswerIdentically) {
  ExpectModesIdentical(web::QuestionFactory::ClefStyleQuestions());
}

TEST_F(GoldenEquivalenceTest, WeatherQuestionsAnswerIdentically) {
  ExpectModesIdentical(web::QuestionFactory::WeatherQuestions(*web_));
}

TEST_F(GoldenEquivalenceTest, ParallelIndexationAnswersAndPostingsIdentical) {
  // threads=4 fans the off-line analysis over a pool and must still produce
  // the same dictionary ids, the same postings bytes and the same answers
  // as the serial build (threads=1, the degenerate case).
  AliQAnConfig serial_config = ModeConfig(false);
  serial_config.threads = 1;
  AliQAnConfig parallel_config = ModeConfig(false);
  parallel_config.threads = 4;
  AliQAn serial(&wn_, serial_config);
  AliQAn parallel(&wn_, parallel_config);
  ASSERT_TRUE(serial.IndexCorpus(&web_->documents()).ok());
  ASSERT_TRUE(parallel.IndexCorpus(&web_->documents()).ok());
  EXPECT_EQ(serial.corpus().dictionary().size(),
            parallel.corpus().dictionary().size());
  EXPECT_EQ(serial.document_index().DebugString(),
            parallel.document_index().DebugString());
  EXPECT_EQ(serial.passage_index().DebugString(),
            parallel.passage_index().DebugString());
  for (const web::GoldQuestion& gq :
       web::QuestionFactory::WeatherQuestions(*web_)) {
    Result<AnswerSet> a = serial.Ask(gq.question);
    Result<AnswerSet> b = parallel.Ask(gq.question);
    ASSERT_EQ(a.ok(), b.ok()) << gq.question;
    if (!a.ok()) continue;
    EXPECT_EQ(Serialize(*a), Serialize(*b)) << gq.question;
    EXPECT_EQ(StructuredFactsToCsv(ToStructuredFacts(*a, "temperature")),
              StructuredFactsToCsv(ToStructuredFacts(*b, "temperature")))
        << gq.question;
  }
}

TEST_F(GoldenEquivalenceTest, UnfilteredAblationAnswersIdentically) {
  // use_ir_filter=false walks whole documents through extraction — the
  // other passage shape (document-sized, first_sentence == 0).
  AliQAnConfig base = ModeConfig(false);
  base.use_ir_filter = false;
  AliQAnConfig ablation = ModeConfig(true);
  ablation.use_ir_filter = false;
  AliQAn cached(&wn_, base);
  AliQAn reanalyzed(&wn_, ablation);
  ASSERT_TRUE(cached.IndexCorpus(&web_->documents()).ok());
  ASSERT_TRUE(reanalyzed.IndexCorpus(&web_->documents()).ok());
  for (const web::GoldQuestion& gq :
       web::QuestionFactory::WeatherQuestions(*web_)) {
    Result<AnswerSet> a = cached.Ask(gq.question);
    Result<AnswerSet> b = reanalyzed.Ask(gq.question);
    ASSERT_EQ(a.ok(), b.ok()) << gq.question;
    if (a.ok()) {
      EXPECT_EQ(Serialize(*a, false), Serialize(*b, false)) << gq.question;
    }
  }
}

}  // namespace
}  // namespace qa
}  // namespace dwqa
