#include "qa/question_analyzer.h"

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "ontology/enrichment.h"
#include "ontology/wordnet.h"

namespace dwqa {
namespace qa {
namespace {

class QuestionAnalyzerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wn_ = ontology::MiniWordNet::Build();
    // Simulate Steps 2+3: the merged ontology knows El Prat as a Barcelona
    // airport.
    std::vector<ontology::InstanceSeed> seeds = {
        {"El Prat", {}, "Barcelona", ""},
        {"JFK", {"Kennedy International Airport"}, "New York", ""},
    };
    ASSERT_TRUE(ontology::Enricher::Enrich(&wn_, "airport", seeds).ok());
  }

  QuestionAnalysis Analyze(const std::string& q) {
    QuestionAnalyzer analyzer(&wn_);
    auto result = analyzer.Analyze(q);
    EXPECT_TRUE(result.ok()) << q;
    return result.ValueOrDie();
  }

  static bool HasMainSb(const QuestionAnalysis& a, const std::string& sb) {
    for (const auto& s : a.main_sbs) {
      if (ToLower(s) == ToLower(sb)) return true;
    }
    return false;
  }

  ontology::Ontology wn_;
};

TEST_F(QuestionAnalyzerTest, Table1WeatherQuestion) {
  auto a = Analyze("What is the weather like in January of 2004 in El Prat?");
  EXPECT_EQ(a.answer_type, AnswerType::kNumericalMeasure);
  EXPECT_EQ(a.pattern,
            "[WHAT] [to be] [synonym of weather | temperature] ...");
  EXPECT_EQ(a.expected_answer, "Number + [\xC2\xBA\x43 | F]");
  EXPECT_EQ(a.focus_lemma, "weather");
  // Table 1: main SBs = [January of 2004] [El Prat] [Barcelona].
  EXPECT_TRUE(HasMainSb(a, "January of 2004"));
  EXPECT_TRUE(HasMainSb(a, "El Prat"));
  EXPECT_TRUE(HasMainSb(a, "Barcelona"));
  // The focus noun is not passed to retrieval.
  EXPECT_FALSE(HasMainSb(a, "the weather"));
  EXPECT_EQ(a.resolved_city, "Barcelona");
  ASSERT_TRUE(a.date_constraint.has_value());
  EXPECT_EQ(a.date_constraint->date.year(), 2004);
  EXPECT_EQ(a.date_constraint->date.month(), 1);
  EXPECT_FALSE(a.date_constraint->has_day);
}

TEST_F(QuestionAnalyzerTest, TemperatureVariant) {
  auto a = Analyze("What is the temperature in JFK in January of 2008?");
  EXPECT_EQ(a.answer_type, AnswerType::kNumericalMeasure);
  EXPECT_EQ(a.focus_lemma, "temperature");
  // JFK resolves to its city through the enriched ontology.
  EXPECT_EQ(a.resolved_city, "New York");
  EXPECT_TRUE(HasMainSb(a, "New York"));
}

TEST_F(QuestionAnalyzerTest, ClefCountryQuestion) {
  auto a = Analyze("Which country did Iraq invade in 1990?");
  EXPECT_EQ(a.answer_type, AnswerType::kPlaceCountry);
  EXPECT_EQ(a.pattern, "[WHICH] [synonym of COUNTRY] [...]");
  EXPECT_EQ(a.focus_lemma, "country");
  // "[Iraq] [to invade] [in 1990]": content SBs reach the retrieval query.
  EXPECT_TRUE(HasMainSb(a, "Iraq"));
  EXPECT_TRUE(HasMainSb(a, "invade"));
  // The focus "country" is not a retrieval term (paper: "it is not usual
  // to find a country description in the form of 'the country of Kuwait'").
  EXPECT_FALSE(HasMainSb(a, "country"));
}

TEST_F(QuestionAnalyzerTest, CapitalCityPlace) {
  EXPECT_EQ(Analyze("What is the capital of Spain?").answer_type,
            AnswerType::kPlaceCapital);
  EXPECT_EQ(Analyze("In which city is El Prat located?").answer_type,
            AnswerType::kPlaceCity);
  EXPECT_EQ(Analyze("Where is Kennedy International Airport located?")
                .answer_type,
            AnswerType::kPlace);
}

TEST_F(QuestionAnalyzerTest, PersonAndProfessionAndGroup) {
  EXPECT_EQ(Analyze("Who was the 35th president of the United States?")
                .answer_type,
            AnswerType::kPerson);
  EXPECT_EQ(Analyze("What was the profession of John Wayne?").answer_type,
            AnswerType::kProfession);
  EXPECT_EQ(Analyze("Which group performed in Madrid in 1998?").answer_type,
            AnswerType::kGroup);
}

TEST_F(QuestionAnalyzerTest, TemporalTypes) {
  EXPECT_EQ(Analyze("When did Iraq invade Kuwait?").answer_type,
            AnswerType::kTemporalDate);
  EXPECT_EQ(
      Analyze("What year did Kennedy International Airport open?")
          .answer_type,
      AnswerType::kTemporalYear);
  EXPECT_EQ(Analyze("Which month is the hottest month in Barcelona?")
                .answer_type,
            AnswerType::kTemporalMonth);
}

TEST_F(QuestionAnalyzerTest, NumericalTypes) {
  EXPECT_EQ(Analyze("How many flights does the airline operate per day?")
                .answer_type,
            AnswerType::kNumericalQuantity);
  EXPECT_EQ(Analyze("How much does a ticket to Paris cost?").answer_type,
            AnswerType::kNumericalEconomic);
  EXPECT_EQ(Analyze("What is the price of a one-way ticket from Barcelona "
                    "to Paris?")
                .answer_type,
            AnswerType::kNumericalEconomic);
  EXPECT_EQ(Analyze("How old was John F. Kennedy in 1963?").answer_type,
            AnswerType::kNumericalAge);
  EXPECT_EQ(
      Analyze("How long does the flight from Barcelona to Paris take?")
          .answer_type,
      AnswerType::kNumericalPeriod);
  EXPECT_EQ(Analyze("What percentage of all seats were sold at the last "
                    "minute in 2004?")
                .answer_type,
            AnswerType::kNumericalPercentage);
}

TEST_F(QuestionAnalyzerTest, DefinitionShape) {
  auto a = Analyze("What is a data warehouse?");
  EXPECT_EQ(a.answer_type, AnswerType::kDefinition);
  EXPECT_EQ(a.focus_lemma, "warehouse");
}

TEST_F(QuestionAnalyzerTest, ObjectFallback) {
  auto a = Analyze("What is the brightest star visible in the universe?");
  EXPECT_EQ(a.answer_type, AnswerType::kObject);
}

TEST_F(QuestionAnalyzerTest, EmptyQuestionRejected) {
  QuestionAnalyzer analyzer(&wn_);
  EXPECT_TRUE(analyzer.Analyze("").status().IsInvalidArgument());
  EXPECT_TRUE(analyzer.Analyze("   ").status().IsInvalidArgument());
}

TEST_F(QuestionAnalyzerTest, AnnotatedFormMatchesPaperStyle) {
  auto a = Analyze("What is the weather like in January of 2004 in El Prat?");
  EXPECT_NE(a.annotated.find("What WP what"), std::string::npos);
  EXPECT_NE(a.annotated.find("is VBZBE be"), std::string::npos);
  EXPECT_NE(a.annotated.find("<@NP,compl,comun,,>"), std::string::npos);
  EXPECT_NE(a.annotated.find("? SENT ?"), std::string::npos);
}

TEST_F(QuestionAnalyzerTest, WithoutEnrichmentNoCityExpansion) {
  // Ablation E8: on the bare MiniWordNet, "El Prat" is only a musical
  // group, so no Barcelona expansion happens.
  ontology::Ontology bare = ontology::MiniWordNet::Build();
  QuestionAnalyzer analyzer(&bare);
  auto a = analyzer
               .Analyze("What is the temperature in January of 2004 in "
                        "El Prat?")
               .ValueOrDie();
  EXPECT_TRUE(a.resolved_city.empty());
  EXPECT_FALSE(HasMainSb(a, "Barcelona"));
}

TEST_F(QuestionAnalyzerTest, WhereQuestionKeepsThemeEntity) {
  // Focus suppression is for attribute nouns; in a where-question the
  // post-wh NP is the entity whose location is asked and must be a
  // retrieval term.
  auto a = Analyze("Where is Kennedy International Airport located?");
  EXPECT_EQ(a.answer_type, AnswerType::kPlace);
  EXPECT_TRUE(HasMainSb(a, "Kennedy International Airport"));
}

TEST_F(QuestionAnalyzerTest, PlaceQuestionSkipsCircularCityExpansion) {
  // "In which city is El Prat located?" — the resolved city is the answer;
  // injecting it into the retrieval terms would be circular.
  auto a = Analyze("In which city is El Prat located?");
  EXPECT_EQ(a.answer_type, AnswerType::kPlaceCity);
  EXPECT_EQ(a.resolved_city, "Barcelona");
  EXPECT_FALSE(HasMainSb(a, "Barcelona"));
}

}  // namespace
}  // namespace qa
}  // namespace dwqa
