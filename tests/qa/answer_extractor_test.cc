#include "qa/answer_extractor.h"

#include <gtest/gtest.h>

#include "ontology/enrichment.h"
#include "ontology/wordnet.h"
#include "qa/question_analyzer.h"

namespace dwqa {
namespace qa {
namespace {

class AnswerExtractorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wn_ = ontology::MiniWordNet::Build();
    std::vector<ontology::InstanceSeed> seeds = {
        {"El Prat", {}, "Barcelona", ""}};
    ASSERT_TRUE(ontology::Enricher::Enrich(&wn_, "airport", seeds).ok());
    // Step 4 axioms.
    auto temp = wn_.FindClass("temperature").ValueOrDie();
    ASSERT_TRUE(wn_.SetAxiom(temp, "min_celsius", "-90").ok());
    ASSERT_TRUE(wn_.SetAxiom(temp, "max_celsius", "60").ok());
  }

  QuestionAnalysis Analyze(const std::string& q) {
    QuestionAnalyzer analyzer(&wn_);
    return analyzer.Analyze(q).ValueOrDie();
  }

  std::vector<AnswerCandidate> Extract(const std::string& question,
                                       const std::string& passage) {
    AnswerExtractor extractor(&wn_);
    return AnswerExtractor::Rank(
        extractor.Extract(Analyze(question), passage, 0, "web://test"), 10);
  }

  ontology::Ontology wn_;
};

TEST_F(AnswerExtractorTest, Table1TemperatureExtraction) {
  // The exact passage of the paper's Table 1.
  std::string passage =
      "Monday, January 31, 2004\n"
      "Barcelona Weather: Temperature 8\xC2\xBA C around 46.4 F Clear "
      "skies today";
  auto answers = Extract(
      "What is the weather like in January of 2004 in El Prat?", passage);
  ASSERT_FALSE(answers.empty());
  const AnswerCandidate& best = answers.front();
  // Extracted answer: (8ºC – Monday, January 31, 2004 – Barcelona).
  EXPECT_TRUE(best.has_value);
  EXPECT_DOUBLE_EQ(best.value, 8.0);
  EXPECT_EQ(best.unit, "\xC2\xBA\x43");
  ASSERT_TRUE(best.date.has_value());
  EXPECT_EQ(*best.date, Date(2004, 1, 31));
  EXPECT_TRUE(best.date_complete);
  EXPECT_EQ(best.location, "Barcelona");
  EXPECT_EQ(best.url, "web://test");
}

TEST_F(AnswerExtractorTest, DateBorrowedFromPrecedingSentence) {
  std::string passage =
      "Friday, January 30, 2004\n"
      "Barcelona Weather: Temperature 7\xC2\xBA C Clear skies";
  auto answers = Extract(
      "What is the temperature in January of 2004 in Barcelona?", passage);
  ASSERT_FALSE(answers.empty());
  ASSERT_TRUE(answers.front().date.has_value());
  EXPECT_EQ(answers.front().date->day(), 30);
}

TEST_F(AnswerExtractorTest, ImplausibleTemperatureScoredDown) {
  std::string passage =
      "Monday, January 31, 2004\n"
      "Barcelona Weather: Temperature 800\xC2\xBA C today\n"
      "Tuesday, January 27, 2004\n"
      "Barcelona Weather: Temperature 9\xC2\xBA C today";
  auto answers = Extract(
      "What is the temperature in January of 2004 in Barcelona?", passage);
  ASSERT_GE(answers.size(), 2u);
  EXPECT_DOUBLE_EQ(answers.front().value, 9.0);  // Plausible one wins.
}

TEST_F(AnswerExtractorTest, DateMismatchPenalized) {
  std::string passage =
      "Monday, March 15, 2004\n"
      "Barcelona Weather: Temperature 20\xC2\xBA C today\n"
      "Saturday, January 31, 2004\n"
      "Barcelona Weather: Temperature 8\xC2\xBA C today";
  auto answers = Extract(
      "What is the temperature in January of 2004 in Barcelona?", passage);
  ASSERT_GE(answers.size(), 2u);
  EXPECT_DOUBLE_EQ(answers.front().value, 8.0);  // January beats March.
}

TEST_F(AnswerExtractorTest, UnknownUnitScoredBelowKnownUnit) {
  std::string passage =
      "Saturday, January 31, 2004\n"
      "Barcelona readings: 12\xC2\xBA in the morning\n"
      "Saturday, January 31, 2004\n"
      "Barcelona Weather: Temperature 8\xC2\xBA C at noon";
  auto answers = Extract(
      "What is the temperature in January of 2004 in Barcelona?", passage);
  ASSERT_GE(answers.size(), 2u);
  EXPECT_EQ(answers.front().unit, "\xC2\xBA\x43");
}

TEST_F(AnswerExtractorTest, PlaceCountryPrefersOntologyHyponym) {
  std::string passage =
      "Iraq invaded Kuwait in 1990.\n"
      "The invasion surprised Washington observers.";
  auto answers =
      Extract("Which country did Iraq invade in 1990?", passage);
  ASSERT_FALSE(answers.empty());
  // "Kuwait" is a country hyponym; "Washington" is not; "Iraq" is a
  // question term and excluded.
  EXPECT_EQ(answers.front().answer_text, "Kuwait");
}

TEST_F(AnswerExtractorTest, PersonExtraction) {
  std::string passage =
      "John F. Kennedy was the 35th president of the United States.";
  auto answers =
      Extract("Who was the 35th president of the United States?", passage);
  ASSERT_FALSE(answers.empty());
  EXPECT_NE(answers.front().answer_text.find("Kennedy"), std::string::npos);
}

TEST_F(AnswerExtractorTest, MoneyExtraction) {
  std::string passage =
      "The price of a one-way ticket from Barcelona to Paris is 120 euros.";
  auto answers = Extract(
      "What is the price of a one-way ticket from Barcelona to Paris?",
      passage);
  ASSERT_FALSE(answers.empty());
  EXPECT_DOUBLE_EQ(answers.front().value, 120.0);
  EXPECT_EQ(answers.front().unit, "EUR");
}

TEST_F(AnswerExtractorTest, QuantityExcludesTypedNumbers) {
  std::string passage =
      "On January 5, 2004 the airline operated 120 flights at 8\xC2\xBA C "
      "for 99 euros each covering 12 percent of demand.";
  auto answers = Extract(
      "How many flights does the airline operate per day?", passage);
  ASSERT_FALSE(answers.empty());
  // 2004, 5, 8, 99 and 12 are consumed by date/temperature/money/percent;
  // the plain cardinal 120 remains.
  EXPECT_DOUBLE_EQ(answers.front().value, 120.0);
}

TEST_F(AnswerExtractorTest, AgeAndPeriod) {
  auto age = Extract("How old was John F. Kennedy in 1963?",
                     "In 1963 John F. Kennedy was 46 years old.");
  ASSERT_FALSE(age.empty());
  EXPECT_DOUBLE_EQ(age.front().value, 46.0);
  auto period =
      Extract("How long does the flight from Barcelona to Paris take?",
              "The flight from Barcelona to Paris takes 2 hours.");
  ASSERT_FALSE(period.empty());
  EXPECT_DOUBLE_EQ(period.front().value, 2.0);
  EXPECT_EQ(period.front().unit, "hours");
}

TEST_F(AnswerExtractorTest, TemporalYearAndDate) {
  auto year = Extract("What year did Kennedy International Airport open?",
                      "Kennedy International Airport opened in 1948.");
  ASSERT_FALSE(year.empty());
  EXPECT_EQ(year.front().answer_text, "1948");

  auto date = Extract("When did the storm reach Barcelona?",
                      "The storm reached Barcelona on January 31, 2004.");
  ASSERT_FALSE(date.empty());
  ASSERT_TRUE(date.front().date.has_value());
  EXPECT_EQ(*date.front().date, Date(2004, 1, 31));
}

TEST_F(AnswerExtractorTest, Definition) {
  auto answers = Extract(
      "What is a data warehouse?",
      "A data warehouse is a central repository of integrated data.");
  ASSERT_FALSE(answers.empty());
  EXPECT_NE(answers.front().answer_text.find("central repository"),
            std::string::npos);
}

TEST_F(AnswerExtractorTest, Abbreviation) {
  auto a = Analyze("What does DW stand for?");
  AnswerExtractor extractor(&wn_);
  auto found = extractor.Extract(a, "DW stands for Data Warehouse.", 0, "");
  bool ok = false;
  for (const auto& c : found) {
    if (c.answer_text.find("Data Warehouse") != std::string::npos) ok = true;
  }
  EXPECT_TRUE(ok);
}

TEST_F(AnswerExtractorTest, RankDeduplicatesByTextAndDate) {
  AnswerCandidate a;
  a.answer_text = "8\xC2\xBA\x43";
  a.score = 1.0;
  a.date = Date(2004, 1, 31);
  AnswerCandidate b = a;
  b.score = 5.0;
  AnswerCandidate c = a;
  c.date = Date(2004, 1, 30);  // Different date → separate answer.
  auto ranked = AnswerExtractor::Rank({a, b, c}, 10);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_DOUBLE_EQ(ranked.front().score, 5.0);
}

TEST_F(AnswerExtractorTest, RankCapsResults) {
  std::vector<AnswerCandidate> many;
  for (int i = 0; i < 20; ++i) {
    AnswerCandidate c;
    c.answer_text = "answer-" + std::to_string(i);
    c.score = i;
    many.push_back(c);
  }
  auto ranked = AnswerExtractor::Rank(std::move(many), 5);
  ASSERT_EQ(ranked.size(), 5u);
  EXPECT_EQ(ranked.front().answer_text, "answer-19");
}

TEST_F(AnswerExtractorTest, EmptyPassageYieldsNothing) {
  auto answers = Extract("What is the temperature in Barcelona?", "");
  EXPECT_TRUE(answers.empty());
}

TEST_F(AnswerExtractorTest, DaySpecificQuestionSelectsThatDay) {
  // "on the 12th of May, 1997" constrains the day, not just the month.
  std::string passage =
      "Sunday, May 11, 1997\n"
      "Barcelona Weather: Temperature 19\xC2\xBA C today\n"
      "Monday, May 12, 1997\n"
      "Barcelona Weather: Temperature 23\xC2\xBA C today";
  auto answers = Extract(
      "What is the weather like in Barcelona on the 12th of May, 1997?",
      passage);
  ASSERT_FALSE(answers.empty());
  EXPECT_DOUBLE_EQ(answers.front().value, 23.0);
  ASSERT_TRUE(answers.front().date.has_value());
  EXPECT_EQ(*answers.front().date, Date(1997, 5, 12));
}

}  // namespace
}  // namespace qa
}  // namespace dwqa
