#include "qa/aliqan.h"

#include <gtest/gtest.h>

#include "ontology/enrichment.h"
#include "ontology/wordnet.h"

namespace dwqa {
namespace qa {
namespace {

class AliQAnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wn_ = ontology::MiniWordNet::Build();
    std::vector<ontology::InstanceSeed> seeds = {
        {"El Prat", {}, "Barcelona", ""}};
    ASSERT_TRUE(ontology::Enricher::Enrich(&wn_, "airport", seeds).ok());

    docs_.Add("web://weather", "weather", ir::DocFormat::kPlainText,
              "Saturday, January 31, 2004\n"
              "Barcelona Weather: Temperature 8\xC2\xBA C around 46.4 F "
              "Clear skies today\n"
              "Friday, January 30, 2004\n"
              "Barcelona Weather: Temperature 7\xC2\xBA C Cloudy today\n");
    docs_.Add("web://news", "news", ir::DocFormat::kPlainText,
              "The stock market rose by 340 points in January of 2004.\n"
              "Analysts in New York were surprised.\n");
    docs_.Add("web://history", "history", ir::DocFormat::kPlainText,
              "Iraq invaded Kuwait in 1990.\n");
    docs_.Add("web://html", "html page", ir::DocFormat::kHtml,
              "<html><body><p>Madrid Weather: Temperature 5\xC2\xBA C on "
              "January 15, 2004</p></body></html>");
  }

  ontology::Ontology wn_;
  ir::DocumentStore docs_;
};

TEST_F(AliQAnTest, SearchBeforeIndexFails) {
  AliQAn aliqan(&wn_);
  EXPECT_TRUE(aliqan.Ask("What is the temperature?").status().IsInternal());
  QuestionAnalysis dummy;
  EXPECT_TRUE(aliqan.SelectPassages(dummy).status().IsInternal());
}

TEST_F(AliQAnTest, IndexCorpusBuildsBothIndexes) {
  AliQAn aliqan(&wn_);
  ASSERT_TRUE(aliqan.IndexCorpus(&docs_).ok());
  EXPECT_EQ(aliqan.document_index().document_count(), 4u);
  EXPECT_EQ(aliqan.passage_index().document_count(), 4u);
  EXPECT_GT(aliqan.last_timings().indexation_ms, 0.0);
}

TEST_F(AliQAnTest, HtmlIsStrippedByDefaultPreprocessor) {
  AliQAn aliqan(&wn_);
  ASSERT_TRUE(aliqan.IndexCorpus(&docs_).ok());
  std::string plain = aliqan.PlainText(3).ValueOrDie();
  EXPECT_EQ(plain.find("<p>"), std::string::npos);
  EXPECT_NE(plain.find("Madrid Weather"), std::string::npos);
}

TEST_F(AliQAnTest, FullPipelineAnswersTemperatureQuestion) {
  AliQAn aliqan(&wn_);
  ASSERT_TRUE(aliqan.IndexCorpus(&docs_).ok());
  auto answers =
      aliqan.Ask("What is the temperature in January of 2004 in El Prat?");
  ASSERT_TRUE(answers.ok());
  ASSERT_FALSE(answers->empty());
  const AnswerCandidate& best = answers->best();
  EXPECT_TRUE(best.has_value);
  // Either day of the Barcelona page is acceptable; 340 (stock points)
  // must not win.
  EXPECT_TRUE(best.value == 8.0 || best.value == 7.0) << best.value;
  EXPECT_EQ(best.location, "Barcelona");
  EXPECT_EQ(best.url, "web://weather");
}

TEST_F(AliQAnTest, AnswersClefQuestion) {
  AliQAn aliqan(&wn_);
  ASSERT_TRUE(aliqan.IndexCorpus(&docs_).ok());
  auto answers = aliqan.Ask("Which country did Iraq invade in 1990?");
  ASSERT_TRUE(answers.ok());
  ASSERT_FALSE(answers->empty());
  EXPECT_EQ(answers->best().answer_text, "Kuwait");
}

TEST_F(AliQAnTest, UnfilteredModeAnalyzesWholeCorpus) {
  AliQAnConfig config;
  config.use_ir_filter = false;
  AliQAn aliqan(&wn_, config);
  ASSERT_TRUE(aliqan.IndexCorpus(&docs_).ok());
  auto answers =
      aliqan.Ask("What is the temperature in January of 2004 in El Prat?");
  ASSERT_TRUE(answers.ok());
  EXPECT_FALSE(answers->empty());
  // All four documents were analyzed.
  EXPECT_EQ(answers->passages.size(), 4u);

  AliQAn filtered(&wn_);
  ASSERT_TRUE(filtered.IndexCorpus(&docs_).ok());
  auto filtered_answers =
      filtered.Ask("What is the temperature in January of 2004 in El Prat?");
  ASSERT_TRUE(filtered_answers.ok());
  // The filter reduces the text volume reaching the extraction module —
  // the paper's "time of analysis ... highly decreased" mechanism.
  EXPECT_LT(filtered_answers->sentences_analyzed,
            answers->sentences_analyzed);
}

TEST_F(AliQAnTest, CustomPreprocessorUsed) {
  AliQAn aliqan(&wn_);
  aliqan.set_preprocessor([](const ir::Document& doc) {
    return "REPLACED " + doc.title;
  });
  ASSERT_TRUE(aliqan.IndexCorpus(&docs_).ok());
  EXPECT_EQ(aliqan.PlainText(0).ValueOrDie(), "REPLACED weather");
}

TEST_F(AliQAnTest, PlainTextBoundsChecked) {
  AliQAn aliqan(&wn_);
  ASSERT_TRUE(aliqan.IndexCorpus(&docs_).ok());
  EXPECT_TRUE(aliqan.PlainText(99).status().IsNotFound());
  EXPECT_TRUE(aliqan.PlainText(-1).status().IsNotFound());
}

TEST_F(AliQAnTest, MaxAnswersCapRespected) {
  AliQAnConfig config;
  config.max_answers = 1;
  AliQAn aliqan(&wn_, config);
  ASSERT_TRUE(aliqan.IndexCorpus(&docs_).ok());
  auto answers =
      aliqan.Ask("What is the temperature in January of 2004 in El Prat?");
  ASSERT_TRUE(answers.ok());
  EXPECT_LE(answers->answers.size(), 1u);
}

TEST_F(AliQAnTest, NullDocumentStoreRejected) {
  AliQAn aliqan(&wn_);
  EXPECT_TRUE(aliqan.IndexCorpus(nullptr).IsInvalidArgument());
}

TEST_F(AliQAnTest, TimingsPopulatedPerPhase) {
  AliQAn aliqan(&wn_);
  ASSERT_TRUE(aliqan.IndexCorpus(&docs_).ok());
  ASSERT_TRUE(
      aliqan.Ask("What is the temperature in January of 2004 in El Prat?")
          .ok());
  const PhaseTimings& t = aliqan.last_timings();
  EXPECT_GE(t.analysis_ms, 0.0);
  EXPECT_GE(t.retrieval_ms, 0.0);
  EXPECT_GE(t.extraction_ms, 0.0);
  EXPECT_GT(t.sentences_analyzed, 0u);
}

TEST_F(AliQAnTest, AskResetsSearchPhaseFieldsOnEntry) {
  AliQAn aliqan(&wn_);
  ASSERT_TRUE(aliqan.IndexCorpus(&docs_).ok());
  ASSERT_TRUE(aliqan.Ask("What is the temperature in Barcelona?").ok());
  ASSERT_GT(aliqan.last_timings().sentences_analyzed, 0u);
  // A question retrieving no passages must not show the previous
  // question's counters — Ask() zeroes the search-phase fields on entry.
  ASSERT_TRUE(aliqan.Ask("Who is Xyzzyplugh?").ok());
  const PhaseTimings& t = aliqan.last_timings();
  EXPECT_EQ(t.sentences_analyzed, 0u);
  EXPECT_EQ(t.sentences_analyzed_cached, 0u);
}

TEST_F(AliQAnTest, IndexCorpusResetsOnlyIndexationFields) {
  AliQAn aliqan(&wn_);
  ASSERT_TRUE(aliqan.IndexCorpus(&docs_).ok());
  EXPECT_GT(aliqan.last_timings().indexation_ms, 0.0);
  EXPECT_GT(aliqan.last_timings().indexation_sentences, 0u);
  ASSERT_TRUE(aliqan.Ask("What is the temperature in Barcelona?").ok());
  size_t asked_sentences = aliqan.last_timings().sentences_analyzed;
  ASSERT_GT(asked_sentences, 0u);
  // Re-indexing refreshes the indexation fields and leaves the last Ask()'s
  // search-phase fields untouched.
  size_t sentences_before = aliqan.last_timings().indexation_sentences;
  ASSERT_TRUE(aliqan.IndexCorpus(&docs_).ok());
  EXPECT_GT(aliqan.last_timings().indexation_ms, 0.0);
  EXPECT_EQ(aliqan.last_timings().indexation_sentences, sentences_before);
  EXPECT_EQ(aliqan.last_timings().sentences_analyzed, asked_sentences);
}

TEST_F(AliQAnTest, CachedSentenceCounterTracksAnalysisMode) {
  const char kQuestion[] = "What is the temperature in Barcelona?";
  AliQAn cached(&wn_);
  ASSERT_TRUE(cached.IndexCorpus(&docs_).ok());
  ASSERT_TRUE(cached.Ask(kQuestion).ok());
  EXPECT_GT(cached.last_timings().sentences_analyzed, 0u);
  EXPECT_EQ(cached.last_timings().sentences_analyzed_cached,
            cached.last_timings().sentences_analyzed);

  AliQAnConfig ablation;
  ablation.reanalyze_per_question = true;
  AliQAn reanalyzed(&wn_, ablation);
  ASSERT_TRUE(reanalyzed.IndexCorpus(&docs_).ok());
  ASSERT_TRUE(reanalyzed.Ask(kQuestion).ok());
  EXPECT_GT(reanalyzed.last_timings().sentences_analyzed, 0u);
  EXPECT_EQ(reanalyzed.last_timings().sentences_analyzed_cached, 0u);
  // The ablation skips the corpus build entirely.
  EXPECT_EQ(reanalyzed.corpus().document_count(), 0u);
  EXPECT_EQ(reanalyzed.last_timings().indexation_sentences, 0u);
}

}  // namespace
}  // namespace qa
}  // namespace dwqa
