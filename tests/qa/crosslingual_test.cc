#include "qa/crosslingual.h"

#include <gtest/gtest.h>

#include "ontology/enrichment.h"
#include "ontology/wordnet.h"
#include "web/synthetic_web.h"

namespace dwqa {
namespace qa {
namespace {

TEST(SpanishTranslatorTest, NormalizeDropsInvertedPunctAndAccents) {
  EXPECT_EQ(SpanishTranslator::Normalize("\xC2\xBFQu\xC3\xA9?"), "que?");
  EXPECT_EQ(SpanishTranslator::Normalize("a\xC3\xB1o"), "ano");
  EXPECT_EQ(SpanishTranslator::Normalize("invadi\xC3\xB3"), "invadio");
  EXPECT_EQ(SpanishTranslator::Normalize("ABC"), "abc");
}

TEST(SpanishTranslatorTest, WeatherQuestion) {
  Translation t = SpanishTranslator::Translate(
      "\xC2\xBFQu\xC3\xA9 tiempo hace en enero de 2004 en El Prat?");
  EXPECT_EQ(t.english,
            "What is the weather like in January of 2004 in El Prat?");
  EXPECT_DOUBLE_EQ(t.coverage, 1.0);
  EXPECT_TRUE(t.unknown_words.empty());
}

TEST(SpanishTranslatorTest, TemperatureQuestion) {
  Translation t = SpanishTranslator::Translate(
      "\xC2\xBF\x43u\xC3\xA1l es la temperatura en Barcelona en enero de "
      "2004?");
  EXPECT_EQ(t.english,
            "What is the temperature in Barcelona in January of 2004?");
  EXPECT_DOUBLE_EQ(t.coverage, 1.0);
}

TEST(SpanishTranslatorTest, CapitalQuestion) {
  Translation t = SpanishTranslator::Translate(
      "\xC2\xBF\x43u\xC3\xA1l es la capital de Espa\xC3\xB1\x61?");
  EXPECT_EQ(t.english, "What is the capital of Spain?");
}

TEST(SpanishTranslatorTest, ProperNounsAndNumbersPassThrough) {
  Translation t = SpanishTranslator::Translate(
      "\xC2\xBF\x43u\xC3\xA1l es la temperatura en Fiumicino en 2004?");
  EXPECT_NE(t.english.find("Fiumicino"), std::string::npos);
  EXPECT_NE(t.english.find("2004"), std::string::npos);
  EXPECT_DOUBLE_EQ(t.coverage, 1.0);
}

TEST(SpanishTranslatorTest, UnknownWordsReported) {
  Translation t = SpanishTranslator::Translate(
      "\xC2\xBF\x43u\xC3\xA1l es la zanahoria?");
  ASSERT_EQ(t.unknown_words.size(), 1u);
  EXPECT_EQ(t.unknown_words[0], "zanahoria");
  EXPECT_LT(t.coverage, 1.0);
}

TEST(SpanishTranslatorTest, EmptyInput) {
  Translation t = SpanishTranslator::Translate("");
  EXPECT_DOUBLE_EQ(t.coverage, 0.0);
}

class CrossLingualTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wn_ = ontology::MiniWordNet::Build();
    std::vector<ontology::InstanceSeed> seeds = {
        {"El Prat", {}, "Barcelona", ""}};
    ASSERT_TRUE(ontology::Enricher::Enrich(&wn_, "airport", seeds).ok());
    web::WebConfig config;
    config.cities = {"Barcelona", "Madrid"};
    config.months = {1};
    config.table_weather = false;
    webb_ = std::make_unique<web::SyntheticWeb>(
        web::SyntheticWeb::Build(config).ValueOrDie());
    aliqan_ = std::make_unique<AliQAn>(&wn_);
    ASSERT_TRUE(aliqan_->IndexCorpus(&webb_->documents()).ok());
  }

  ontology::Ontology wn_;
  std::unique_ptr<web::SyntheticWeb> webb_;
  std::unique_ptr<AliQAn> aliqan_;
};

TEST_F(CrossLingualTest, AnswersSpanishWeatherQuestion) {
  CrossLingualAliQAn xl(aliqan_.get());
  auto answers = xl.Ask(
      "\xC2\xBF\x43u\xC3\xA1l es la temperatura en El Prat en enero de "
      "2004?");
  ASSERT_TRUE(answers.ok()) << answers.status();
  ASSERT_FALSE(answers->empty());
  const AnswerCandidate& best = answers->best();
  EXPECT_TRUE(best.has_value);
  EXPECT_EQ(best.location, "Barcelona");
  // The answer matches the day's published ground truth.
  ASSERT_TRUE(best.date.has_value());
  auto it = webb_->truth().temperature.find(
      {"barcelona", best.date->ToIsoString()});
  ASSERT_NE(it, webb_->truth().temperature.end());
  EXPECT_NEAR(best.value, it->second, 0.6);
}

TEST_F(CrossLingualTest, AnswersSpanishCapitalQuestion) {
  CrossLingualAliQAn xl(aliqan_.get());
  auto answers =
      xl.Ask("\xC2\xBF\x43u\xC3\xA1l es la capital de Espa\xC3\xB1\x61?");
  ASSERT_TRUE(answers.ok());
  ASSERT_FALSE(answers->empty());
  EXPECT_EQ(answers->best().answer_text, "Madrid");
  EXPECT_EQ(xl.last_translation().english, "What is the capital of Spain?");
}

TEST_F(CrossLingualTest, LowCoverageRejected) {
  CrossLingualAliQAn xl(aliqan_.get());
  auto answers = xl.Ask("zanahorias moradas bailan alegremente hoy");
  EXPECT_TRUE(answers.status().IsInvalidArgument());
}

}  // namespace
}  // namespace qa
}  // namespace dwqa
