#include "qa/fact_validator.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "ontology/ontology.h"

namespace dwqa {
namespace qa {
namespace {

StructuredFact TemperatureFact() {
  StructuredFact fact;
  fact.attribute = "temperature";
  fact.value = 8.0;
  fact.unit = "\xC2\xBA" "C";
  fact.date = Date(2004, 1, 31);
  fact.location = "Barcelona";
  fact.url = "http://weather.example/barcelona/2004-01-31";
  return fact;
}

ValidatorConfig TemperatureConfig() {
  ValidatorConfig config;
  AttributeRule rule;
  rule.min_value = -90.0;
  rule.max_value = 60.0;
  rule.allowed_units = {"\xC2\xBA" "C", "F"};
  config.rules["temperature"] = rule;
  return config;
}

TEST(FactValidatorTest, AdmitsAPlausibleFact) {
  FactValidator validator(TemperatureConfig());
  EXPECT_EQ(validator.Check(TemperatureFact()), RejectReason::kNone);
}

TEST(FactValidatorTest, RejectsNonFiniteValues) {
  FactValidator validator(TemperatureConfig());
  StructuredFact fact = TemperatureFact();
  fact.value = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(validator.Check(fact), RejectReason::kNonFiniteValue);
  fact.value = std::numeric_limits<double>::infinity();
  EXPECT_EQ(validator.Check(fact), RejectReason::kNonFiniteValue);
}

TEST(FactValidatorTest, RejectsValuesOutsideTheAxiomInterval) {
  FactValidator validator(TemperatureConfig());
  StructuredFact fact = TemperatureFact();
  fact.value = 888.0;  // The classic swapped-digits corruption artifact.
  EXPECT_EQ(validator.Check(fact), RejectReason::kValueOutOfRange);
  fact.value = -273.0;
  EXPECT_EQ(validator.Check(fact), RejectReason::kValueOutOfRange);
}

TEST(FactValidatorTest, FahrenheitIsConvertedBeforeTheRangeCheck) {
  FactValidator validator(TemperatureConfig());
  StructuredFact fact = TemperatureFact();
  fact.unit = "F";
  fact.value = 100.0;  // 37.8 ºC — fine, though 100 ºC would not be.
  EXPECT_EQ(validator.Check(fact), RejectReason::kNone);
  fact.value = 200.0;  // 93.3 ºC — beyond the axiom interval.
  EXPECT_EQ(validator.Check(fact), RejectReason::kValueOutOfRange);
}

TEST(FactValidatorTest, RejectsUnitsTheAttributeDoesNotAdmit) {
  FactValidator validator(TemperatureConfig());
  StructuredFact fact = TemperatureFact();
  fact.unit = "K";  // The BreakUnits corruption plants kelvins.
  EXPECT_EQ(validator.Check(fact), RejectReason::kBadUnit);
}

TEST(FactValidatorTest, EmptyUnitIsAdmittedUnlessRequired) {
  ValidatorConfig config = TemperatureConfig();
  FactValidator lax(config);
  StructuredFact fact = TemperatureFact();
  fact.unit = "";  // Figure-5 stripped-table case: bare number.
  EXPECT_EQ(lax.Check(fact), RejectReason::kNone);

  config.rules["temperature"].require_unit = true;
  FactValidator strict(config);
  EXPECT_EQ(strict.Check(fact), RejectReason::kBadUnit);
}

TEST(FactValidatorTest, RejectsImpossibleDates) {
  FactValidator validator(TemperatureConfig());
  StructuredFact fact = TemperatureFact();
  fact.date = Date(2004, 2, 30);
  EXPECT_EQ(validator.Check(fact), RejectReason::kInvalidDate);
}

TEST(FactValidatorTest, DatelessFactsPassTheDateAxiom) {
  FactValidator validator(TemperatureConfig());
  StructuredFact fact = TemperatureFact();
  fact.date.reset();
  EXPECT_EQ(validator.Check(fact), RejectReason::kNone);
}

TEST(FactValidatorTest, RejectsMissingLocation) {
  FactValidator validator(TemperatureConfig());
  StructuredFact fact = TemperatureFact();
  fact.location = "";
  EXPECT_EQ(validator.Check(fact), RejectReason::kMissingLocation);
  fact.location = "?";
  EXPECT_EQ(validator.Check(fact), RejectReason::kMissingLocation);
}

TEST(FactValidatorTest, DefaultRuleAppliesToUnknownAttributes) {
  FactValidator validator(TemperatureConfig());
  StructuredFact fact = TemperatureFact();
  fact.attribute = "price";
  fact.value = 1e12;  // No rule for price: any finite value is admitted.
  fact.unit = "euro";
  EXPECT_EQ(validator.Check(fact), RejectReason::kNone);
}

TEST(FactValidatorTest, FromOntologyReadsTheStepFourAxioms) {
  ontology::Ontology onto;
  auto id = onto.AddConcept("temperature", "degree of hotness", "uml");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(onto.SetAxiom(*id, "unit", "\xC2\xBA" "C|F").ok());
  ASSERT_TRUE(onto.SetAxiom(*id, "min_celsius", "-90").ok());
  ASSERT_TRUE(onto.SetAxiom(*id, "max_celsius", "60").ok());

  FactValidator validator =
      FactValidator::FromOntology(onto, {"temperature"});
  StructuredFact fact = TemperatureFact();
  EXPECT_EQ(validator.Check(fact), RejectReason::kNone);
  fact.value = 75.0;
  EXPECT_EQ(validator.Check(fact), RejectReason::kValueOutOfRange);
  fact = TemperatureFact();
  fact.unit = "K";
  EXPECT_EQ(validator.Check(fact), RejectReason::kBadUnit);
}

TEST(FactValidatorTest, ReasonNamesRoundTrip) {
  for (RejectReason reason : AllRejectReasons()) {
    auto back = RejectReasonFromName(RejectReasonName(reason));
    ASSERT_TRUE(back.ok()) << RejectReasonName(reason);
    EXPECT_EQ(*back, reason);
  }
  EXPECT_FALSE(RejectReasonFromName("NotAReason").ok());
}

}  // namespace
}  // namespace qa
}  // namespace dwqa
