#include "qa/structured.h"

#include <limits>

#include <gtest/gtest.h>

namespace dwqa {
namespace qa {
namespace {

AnswerCandidate TemperatureAnswer() {
  AnswerCandidate a;
  a.answer_text = "8\xC2\xBA\x43";
  a.type = AnswerType::kNumericalMeasure;
  a.score = 7.5;
  a.has_value = true;
  a.value = 8.0;
  a.unit = "\xC2\xBA\x43";
  a.date = Date(2004, 1, 31);
  a.date_complete = true;
  a.location = "Barcelona";
  a.url = "web://weather/barcelona";
  return a;
}

TEST(StructuredTest, ConversionCopiesAllSlots) {
  auto fact = ToStructuredFact(TemperatureAnswer(), "temperature");
  ASSERT_TRUE(fact.ok());
  EXPECT_EQ(fact->attribute, "temperature");
  EXPECT_DOUBLE_EQ(fact->value, 8.0);
  EXPECT_EQ(fact->unit, "\xC2\xBA\x43");
  EXPECT_EQ(*fact->date, Date(2004, 1, 31));
  EXPECT_EQ(fact->location, "Barcelona");
  EXPECT_EQ(fact->url, "web://weather/barcelona");
  EXPECT_DOUBLE_EQ(fact->confidence, 7.5);
}

TEST(StructuredTest, NonNumericAnswerRejected) {
  AnswerCandidate a;
  a.answer_text = "Kuwait";
  a.has_value = false;
  EXPECT_TRUE(
      ToStructuredFact(a, "temperature").status().IsInvalidArgument());
}

// Adversarial inputs — the shapes corrupt pages actually produce. All of
// them must come back as clean Status failures or odd-but-valid facts,
// never crashes.

TEST(StructuredTest, NanValueRejected) {
  AnswerCandidate a = TemperatureAnswer();
  a.value = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(
      ToStructuredFact(a, "temperature").status().IsInvalidArgument());
}

TEST(StructuredTest, InfiniteValueRejected) {
  AnswerCandidate a = TemperatureAnswer();
  a.value = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(
      ToStructuredFact(a, "temperature").status().IsInvalidArgument());
  a.value = -std::numeric_limits<double>::infinity();
  EXPECT_TRUE(
      ToStructuredFact(a, "temperature").status().IsInvalidArgument());
}

TEST(StructuredTest, AbsurdMagnitudeSurvivesConversion) {
  // A finite-but-absurd value ("8888888888" from swapped digits) is not
  // this layer's call to reject — it converts cleanly and the Step-4 axiom
  // validator quarantines it downstream.
  AnswerCandidate a = TemperatureAnswer();
  a.value = 8888888888.0;
  auto fact = ToStructuredFact(a, "temperature");
  ASSERT_TRUE(fact.ok());
  EXPECT_DOUBLE_EQ(fact->value, 8888888888.0);
}

TEST(StructuredTest, EmptyLocationSurvivesConversion) {
  AnswerCandidate a = TemperatureAnswer();
  a.location = "";
  auto fact = ToStructuredFact(a, "temperature");
  ASSERT_TRUE(fact.ok());
  EXPECT_TRUE(fact->location.empty());
  // ... and still renders without crashing.
  EXPECT_FALSE(fact->ToDisplayString().empty());
}

TEST(StructuredTest, BatchConversionDropsNonFiniteAnswers) {
  AnswerSet set;
  set.answers.push_back(TemperatureAnswer());
  AnswerCandidate bad = TemperatureAnswer();
  bad.value = std::numeric_limits<double>::quiet_NaN();
  set.answers.push_back(bad);
  EXPECT_EQ(ToStructuredFacts(set, "temperature").size(), 1u);
}

TEST(StructuredTest, DisplayStringMatchesPaperShape) {
  auto fact =
      ToStructuredFact(TemperatureAnswer(), "temperature").ValueOrDie();
  // "(8ºC – Saturday, January 31, 2004 – Barcelona – URL)".
  std::string s = fact.ToDisplayString();
  EXPECT_NE(s.find("(8\xC2\xBA\x43"), std::string::npos);
  EXPECT_NE(s.find("January 31, 2004"), std::string::npos);
  EXPECT_NE(s.find("Barcelona"), std::string::npos);
  EXPECT_NE(s.find("web://weather/barcelona"), std::string::npos);
}

TEST(StructuredTest, MissingSlotsRenderedAsQuestionMarks) {
  StructuredFact fact;
  fact.value = 5;
  std::string s = fact.ToDisplayString();
  EXPECT_NE(s.find("?"), std::string::npos);
}

TEST(StructuredTest, BatchConversionSkipsNonNumeric) {
  AnswerSet set;
  set.answers.push_back(TemperatureAnswer());
  AnswerCandidate text_only;
  text_only.answer_text = "Kuwait";
  set.answers.push_back(text_only);
  set.answers.push_back(TemperatureAnswer());
  auto facts = ToStructuredFacts(set, "temperature");
  EXPECT_EQ(facts.size(), 2u);
}

TEST(StructuredTest, CsvRendering) {
  std::vector<StructuredFact> facts = {
      ToStructuredFact(TemperatureAnswer(), "temperature").ValueOrDie()};
  facts.push_back(facts[0]);
  facts[1].location = "City, with comma";
  std::string csv = StructuredFactsToCsv(facts);
  EXPECT_NE(csv.find("attribute,value,unit,date,location,url,confidence"),
            std::string::npos);
  EXPECT_NE(csv.find("temperature,8.00"), std::string::npos);
  EXPECT_NE(csv.find("2004-01-31"), std::string::npos);
  EXPECT_NE(csv.find("\"City, with comma\""), std::string::npos);
  EXPECT_EQ(StructuredFactsToCsv({}).find("attribute"), 0u);
}

}  // namespace
}  // namespace qa
}  // namespace dwqa
