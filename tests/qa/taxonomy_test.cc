#include "qa/taxonomy.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace dwqa {
namespace qa {
namespace {

TEST(TaxonomyTest, ExactlyTwentyCategories) {
  // Paper §4.1 lists exactly these twenty categories.
  const std::set<std::string> expected = {
      "person", "profession", "group", "object", "place city",
      "place country", "place capital", "place", "abbreviation", "event",
      "numerical economic", "numerical age", "numerical measure",
      "numerical period", "numerical percentage", "numerical quantity",
      "temporal year", "temporal month", "temporal date", "definition"};
  std::set<std::string> actual;
  for (int i = 0; i < kAnswerTypeCount; ++i) {
    actual.insert(AnswerTypeName(AllAnswerTypes()[i]));
  }
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(kAnswerTypeCount, 20);
}

TEST(TaxonomyTest, NumericalPredicate) {
  EXPECT_TRUE(IsNumerical(AnswerType::kNumericalEconomic));
  EXPECT_TRUE(IsNumerical(AnswerType::kNumericalQuantity));
  EXPECT_FALSE(IsNumerical(AnswerType::kTemporalYear));
  EXPECT_FALSE(IsNumerical(AnswerType::kPerson));
}

TEST(TaxonomyTest, TemporalPredicate) {
  EXPECT_TRUE(IsTemporal(AnswerType::kTemporalDate));
  EXPECT_TRUE(IsTemporal(AnswerType::kTemporalMonth));
  EXPECT_TRUE(IsTemporal(AnswerType::kTemporalYear));
  EXPECT_FALSE(IsTemporal(AnswerType::kNumericalPeriod));
}

TEST(TaxonomyTest, PlacePredicate) {
  EXPECT_TRUE(IsPlace(AnswerType::kPlace));
  EXPECT_TRUE(IsPlace(AnswerType::kPlaceCity));
  EXPECT_TRUE(IsPlace(AnswerType::kPlaceCountry));
  EXPECT_TRUE(IsPlace(AnswerType::kPlaceCapital));
  EXPECT_FALSE(IsPlace(AnswerType::kEvent));
}

TEST(TaxonomyTest, PredicatesArePartition) {
  // Each type is at most one of numerical/temporal/place.
  for (int i = 0; i < kAnswerTypeCount; ++i) {
    AnswerType t = AllAnswerTypes()[i];
    int count = (IsNumerical(t) ? 1 : 0) + (IsTemporal(t) ? 1 : 0) +
                (IsPlace(t) ? 1 : 0);
    EXPECT_LE(count, 1) << AnswerTypeName(t);
  }
}

TEST(TaxonomyTest, ConceptLemmasForSemanticTypes) {
  EXPECT_EQ(TypeConceptLemma(AnswerType::kPlaceCountry), "country");
  EXPECT_EQ(TypeConceptLemma(AnswerType::kPlaceCity), "city");
  EXPECT_EQ(TypeConceptLemma(AnswerType::kPerson), "person");
  EXPECT_EQ(TypeConceptLemma(AnswerType::kGroup), "group");
  // Lexically-checked types have no concept.
  EXPECT_EQ(TypeConceptLemma(AnswerType::kNumericalMeasure), "");
  EXPECT_EQ(TypeConceptLemma(AnswerType::kDefinition), "");
  EXPECT_EQ(TypeConceptLemma(AnswerType::kAbbreviation), "");
}

}  // namespace
}  // namespace qa
}  // namespace dwqa
