#include "qa/degradation.h"

#include <gtest/gtest.h>

#include "ontology/enrichment.h"
#include "ontology/wordnet.h"
#include "qa/aliqan.h"
#include "qa/fact_validator.h"
#include "qa/structured.h"

namespace dwqa {
namespace qa {
namespace {

/// Corpus whose weather page lost its unit markers — the Figure-5
/// stripped-table shape. FindTemperatures needs "8ºC"/"8 degrees"; a bare
/// "Temperature 8" defeats the full extractor but not the relaxed rung.
class DegradationLadderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wn_ = ontology::MiniWordNet::Build();
    std::vector<ontology::InstanceSeed> seeds = {
        {"El Prat", {}, "Barcelona", ""}};
    ASSERT_TRUE(ontology::Enricher::Enrich(&wn_, "airport", seeds).ok());

    docs_.Add("web://weather-stripped", "weather", ir::DocFormat::kPlainText,
              "Saturday, January 31, 2004\n"
              "Barcelona Weather: Temperature 8 Clear skies today\n");
  }

  AnswerSet AskWith(DegradationConfig degradation,
                    const std::string& question =
                        "What is the temperature in January of 2004 in "
                        "El Prat?") {
    AliQAnConfig config;
    config.degradation = degradation;
    AliQAn aliqan(&wn_, config);
    auto status = aliqan.IndexCorpus(&docs_);
    EXPECT_TRUE(status.ok()) << status.ToString();
    auto answers = aliqan.Ask(question);
    EXPECT_TRUE(answers.ok()) << answers.status().ToString();
    return answers.ValueOrDie();
  }

  ontology::Ontology wn_;
  ir::DocumentStore docs_;
};

TEST(DegradationLevelTest, NamesAreStable) {
  EXPECT_STREQ(DegradationLevelName(DegradationLevel::kFull), "Full");
  EXPECT_STREQ(DegradationLevelName(DegradationLevel::kRelaxedPattern),
               "RelaxedPattern");
  EXPECT_STREQ(DegradationLevelName(DegradationLevel::kIrOnly), "IrOnly");
  EXPECT_STREQ(DegradationLevelName(DegradationLevel::kUnanswered),
               "Unanswered");
  EXPECT_EQ(AllDegradationLevels().size(), 4u);
}

TEST(FactDispositionTest, NamesAreStable) {
  EXPECT_STREQ(FactDispositionName(FactDisposition::kLoaded), "Loaded");
  EXPECT_STREQ(FactDispositionName(FactDisposition::kDeduplicated),
               "Deduplicated");
  EXPECT_STREQ(FactDispositionName(FactDisposition::kQuarantined),
               "Quarantined");
  EXPECT_STREQ(FactDispositionName(FactDisposition::kRejected), "Rejected");
}

TEST_F(DegradationLadderTest, LadderOffLeavesTheQuestionUnanswered) {
  AnswerSet answers = AskWith(DegradationConfig{});
  EXPECT_TRUE(answers.empty());
  EXPECT_EQ(answers.degradation, DegradationLevel::kUnanswered);
  EXPECT_FALSE(answers.unanswered_reason.empty());
}

TEST_F(DegradationLadderTest, RelaxedRungRecoversTheBareNumber) {
  DegradationConfig degradation;
  degradation.enable_relaxed = true;
  AnswerSet answers = AskWith(degradation);
  ASSERT_FALSE(answers.empty());
  EXPECT_EQ(answers.degradation, DegradationLevel::kRelaxedPattern);
  const AnswerCandidate& best = answers.best();
  EXPECT_EQ(best.level, DegradationLevel::kRelaxedPattern);
  EXPECT_TRUE(best.has_value);
  // The bare 8; the date cardinals (31, 2004) must stay dates.
  EXPECT_EQ(best.value, 8.0);
  EXPECT_EQ(best.score, degradation.relaxed_score);
  // Context still attached: location from question resolution, date carried
  // from the preceding date line.
  EXPECT_EQ(best.location, "Barcelona");
  ASSERT_TRUE(best.date.has_value());
  EXPECT_EQ(best.date->year(), 2004);
  EXPECT_EQ(best.url, "web://weather-stripped");
}

TEST_F(DegradationLadderTest, IrOnlyRungReturnsTheBestPassage) {
  DegradationConfig degradation;
  degradation.enable_ir_only = true;  // Relaxed rung stays off.
  AnswerSet answers = AskWith(degradation);
  ASSERT_FALSE(answers.empty());
  EXPECT_EQ(answers.degradation, DegradationLevel::kIrOnly);
  const AnswerCandidate& best = answers.best();
  EXPECT_EQ(best.level, DegradationLevel::kIrOnly);
  EXPECT_FALSE(best.has_value);  // A passage, not a value.
  EXPECT_NE(best.answer_text.find("Barcelona"), std::string::npos);
  EXPECT_EQ(best.score, degradation.ir_only_score);
}

TEST_F(DegradationLadderTest, FullAnswersNeverReachTheLowerRungs) {
  docs_.Add("web://weather-intact", "weather", ir::DocFormat::kPlainText,
            "Friday, January 30, 2004\n"
            "Barcelona Weather: Temperature 7\xC2\xBA C Cloudy today\n");
  DegradationConfig degradation;
  degradation.enable_relaxed = true;
  degradation.enable_ir_only = true;
  AnswerSet answers = AskWith(degradation);
  ASSERT_FALSE(answers.empty());
  // The intact page feeds the full extractor, so the ladder never engages.
  EXPECT_EQ(answers.degradation, DegradationLevel::kFull);
  EXPECT_EQ(answers.best().level, DegradationLevel::kFull);
  EXPECT_EQ(answers.best().value, 7.0);
}

TEST_F(DegradationLadderTest, NoPassagesMeansUnansweredEvenWithTheLadder) {
  DegradationConfig degradation;
  degradation.enable_relaxed = true;
  degradation.enable_ir_only = true;
  AnswerSet answers =
      AskWith(degradation, "Which country did Iraq invade in 1990?");
  EXPECT_TRUE(answers.empty());
  EXPECT_EQ(answers.degradation, DegradationLevel::kUnanswered);
  EXPECT_FALSE(answers.unanswered_reason.empty());
}

TEST(ConfidenceFloorTest, LowConfidenceFactsAreRejectedFirst) {
  ValidatorConfig config;
  config.confidence_floor = 0.5;
  FactValidator validator(config);

  StructuredFact fact;
  fact.attribute = "temperature";
  fact.value = 8.0;
  fact.location = "Barcelona";
  fact.confidence = 0.1;
  fact.level = DegradationLevel::kRelaxedPattern;
  EXPECT_EQ(validator.Check(fact), RejectReason::kBelowConfidenceFloor);

  fact.confidence = 0.9;
  EXPECT_EQ(validator.Check(fact), RejectReason::kNone);

  // The default floor (-inf) admits even zero-confidence facts.
  FactValidator permissive;
  fact.confidence = 0.0;
  EXPECT_EQ(permissive.Check(fact), RejectReason::kNone);
}

TEST(ConfidenceFloorTest, NewRejectReasonsHaveStableNames) {
  EXPECT_STREQ(RejectReasonName(RejectReason::kCircuitOpen), "CircuitOpen");
  EXPECT_STREQ(RejectReasonName(RejectReason::kBelowConfidenceFloor),
               "BelowConfidenceFloor");
  EXPECT_EQ(RejectReasonFromName("CircuitOpen").ValueOrDie(),
            RejectReason::kCircuitOpen);
  EXPECT_EQ(RejectReasonFromName("BelowConfidenceFloor").ValueOrDie(),
            RejectReason::kBelowConfidenceFloor);
}

TEST(StructuredFactCsvTest, CsvCarriesLevelAndDisposition) {
  StructuredFact fact;
  fact.attribute = "temperature";
  fact.value = 8.0;
  fact.location = "Barcelona";
  fact.level = DegradationLevel::kRelaxedPattern;
  fact.disposition = FactDisposition::kQuarantined;
  std::string csv = StructuredFactsToCsv({fact});
  EXPECT_NE(csv.find("level"), std::string::npos);
  EXPECT_NE(csv.find("disposition"), std::string::npos);
  EXPECT_NE(csv.find("RelaxedPattern"), std::string::npos);
  EXPECT_NE(csv.find("Quarantined"), std::string::npos);
}

}  // namespace
}  // namespace qa
}  // namespace dwqa
