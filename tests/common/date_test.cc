#include "common/date.h"

#include <gtest/gtest.h>

namespace dwqa {
namespace {

TEST(DateTest, MakeValidatesFields) {
  EXPECT_TRUE(Date::Make(2004, 1, 31).ok());
  EXPECT_FALSE(Date::Make(2004, 1, 32).ok());
  EXPECT_FALSE(Date::Make(2004, 13, 1).ok());
  EXPECT_FALSE(Date::Make(2004, 0, 1).ok());
  EXPECT_FALSE(Date::Make(2004, 2, 30).ok());
}

TEST(DateTest, LeapYears) {
  EXPECT_TRUE(Date::IsLeapYear(2004));
  EXPECT_TRUE(Date::IsLeapYear(2000));
  EXPECT_FALSE(Date::IsLeapYear(1900));
  EXPECT_FALSE(Date::IsLeapYear(2003));
  EXPECT_TRUE(Date::Make(2004, 2, 29).ok());
  EXPECT_FALSE(Date::Make(2003, 2, 29).ok());
}

TEST(DateTest, DaysInMonth) {
  EXPECT_EQ(Date::DaysInMonth(2004, 1), 31);
  EXPECT_EQ(Date::DaysInMonth(2004, 2), 29);
  EXPECT_EQ(Date::DaysInMonth(2003, 2), 28);
  EXPECT_EQ(Date::DaysInMonth(2004, 4), 30);
  EXPECT_EQ(Date::DaysInMonth(2004, 13), 0);
}

TEST(DateTest, KnownWeekdays) {
  EXPECT_EQ(Date(2004, 1, 31).DayOfWeekName(), "Saturday");
  EXPECT_EQ(Date(2000, 1, 1).DayOfWeekName(), "Saturday");
  EXPECT_EQ(Date(1970, 1, 1).DayOfWeekName(), "Thursday");
  EXPECT_EQ(Date(2026, 7, 6).DayOfWeekName(), "Monday");
}

TEST(DateTest, EpochRoundTripProperty) {
  // Property: FromEpochDays(ToEpochDays(d)) == d, walked over 3 years
  // including leap boundaries.
  Date d(2003, 12, 20);
  for (int i = 0; i < 1100; ++i) {
    Date back = Date::FromEpochDays(d.ToEpochDays());
    ASSERT_EQ(back, d) << d.ToIsoString();
    d = d.NextDay();
  }
}

TEST(DateTest, NextDayAdvancesMonotonically) {
  Date d(2004, 2, 28);
  d = d.NextDay();
  EXPECT_EQ(d, Date(2004, 2, 29));
  d = d.NextDay();
  EXPECT_EQ(d, Date(2004, 3, 1));
  Date eoy(2004, 12, 31);
  EXPECT_EQ(eoy.NextDay(), Date(2005, 1, 1));
}

TEST(DateTest, EpochDaysKnownValues) {
  EXPECT_EQ(Date(1970, 1, 1).ToEpochDays(), 0);
  EXPECT_EQ(Date(1970, 1, 2).ToEpochDays(), 1);
  EXPECT_EQ(Date(1969, 12, 31).ToEpochDays(), -1);
}

TEST(DateTest, Formatting) {
  Date d(2004, 1, 31);
  EXPECT_EQ(d.ToIsoString(), "2004-01-31");
  EXPECT_EQ(d.ToLongString(), "Saturday, January 31, 2004");
  EXPECT_EQ(d.MonthName(), "January");
}

TEST(DateTest, MonthFromName) {
  EXPECT_EQ(Date::MonthFromName("January"), 1);
  EXPECT_EQ(Date::MonthFromName("january"), 1);
  EXPECT_EQ(Date::MonthFromName("DECEMBER"), 12);
  EXPECT_EQ(Date::MonthFromName("Januar"), 0);
  EXPECT_EQ(Date::MonthFromName(""), 0);
}

TEST(DateTest, ComparisonOperators) {
  EXPECT_LT(Date(2004, 1, 30), Date(2004, 1, 31));
  EXPECT_LT(Date(2004, 1, 31), Date(2004, 2, 1));
  EXPECT_LT(Date(2003, 12, 31), Date(2004, 1, 1));
  EXPECT_EQ(Date(2004, 1, 31), Date(2004, 1, 31));
}

class DateWeekdaySweep : public ::testing::TestWithParam<int> {};

TEST_P(DateWeekdaySweep, ConsecutiveDaysCycleThroughWeek) {
  // Property: weekday advances by exactly one (mod 7) day over day.
  Date d(2000 + GetParam(), 1, 1);
  int prev = d.DayOfWeek();
  for (int i = 0; i < 370; ++i) {
    d = d.NextDay();
    int cur = d.DayOfWeek();
    ASSERT_EQ(cur, (prev + 1) % 7) << d.ToIsoString();
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Years, DateWeekdaySweep,
                         ::testing::Values(0, 3, 4, 10, 23, 24));

}  // namespace
}  // namespace dwqa
