#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace dwqa {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status st = Status::NotFound("concept 'airport' missing");
  EXPECT_EQ(st.ToString(), "NotFound: concept 'airport' missing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, StreamOperatorRendersToString) {
  std::ostringstream os;
  os << Status::IOError("disk full");
  EXPECT_EQ(os.str(), "IOError: disk full");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto f = [](bool fail) -> Status {
    DWQA_RETURN_NOT_OK(fail ? Status::Internal("boom") : Status::OK());
    return Status::OK();
  };
  EXPECT_TRUE(f(false).ok());
  EXPECT_TRUE(f(true).IsInternal());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 7);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(*r, 7);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueOnSuccess) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r.ValueOr("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, OkStatusIntoResultBecomesInternalError) {
  Result<int> r = [&]() -> Result<int> { return Status::OK(); }();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, AssignOrReturnMacroChains) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::OutOfRange("too big");
    return 21;
  };
  auto outer = [&](bool fail) -> Result<int> {
    DWQA_ASSIGN_OR_RETURN(int v, inner(fail));
    return v * 2;
  };
  EXPECT_EQ(outer(false).ValueOrDie(), 42);
  EXPECT_TRUE(outer(true).status().IsOutOfRange());
}

TEST(ResultTest, ArrowOperatorReachesMembers) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace dwqa
