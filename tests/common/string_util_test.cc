#include "common/string_util.h"

#include <gtest/gtest.h>

namespace dwqa {
namespace {

TEST(StringUtilTest, ToLowerAndUpper) {
  EXPECT_EQ(ToLower("BarCeloNa"), "barcelona");
  EXPECT_EQ(ToUpper("ºc stays"), "ºC STAYS");  // Non-ASCII untouched.
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtilTest, TrimRemovesEdgesOnly) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpties) {
  auto parts = SplitWhitespace("  one \t two\nthree  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "one");
  EXPECT_EQ(parts[2], "three");
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, JoinRoundTripsWithSplit) {
  std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(Join(parts, ","), "a,b,c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, " - "), "solo");
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(ReplaceAll("no hits", "xyz", "q"), "no hits");
  EXPECT_EQ(ReplaceAll("ababab", "ab", ""), "");
  // Empty needle: identity, no infinite loop.
  EXPECT_EQ(ReplaceAll("abc", "", "x"), "abc");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("web://weather/x", "web://"));
  EXPECT_FALSE(StartsWith("web", "web://"));
  EXPECT_TRUE(EndsWith("page.html", ".html"));
  EXPECT_FALSE(EndsWith(".html", "page.html"));
}

TEST(StringUtilTest, NumberPredicates) {
  EXPECT_TRUE(IsDigits("2004"));
  EXPECT_FALSE(IsDigits("20a4"));
  EXPECT_FALSE(IsDigits(""));
  EXPECT_TRUE(IsNumber("46.4"));
  EXPECT_TRUE(IsNumber("-3.5"));
  EXPECT_TRUE(IsNumber("+8"));
  EXPECT_FALSE(IsNumber("4.6.4"));
  EXPECT_FALSE(IsNumber("."));
  EXPECT_FALSE(IsNumber("-"));
  EXPECT_FALSE(IsNumber("12th"));
}

TEST(StringUtilTest, IsCapitalized) {
  EXPECT_TRUE(IsCapitalized("Barcelona"));
  EXPECT_FALSE(IsCapitalized("barcelona"));
  EXPECT_FALSE(IsCapitalized(""));
  EXPECT_FALSE(IsCapitalized("8ºC"));
}

TEST(StringUtilTest, EditDistanceBasics) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("airport", "airport"), 0u);
}

TEST(StringUtilTest, EditDistanceSymmetry) {
  // Property: d(a,b) == d(b,a) over a sample of pairs.
  const char* words[] = {"sale", "sales", "mile", "smile", "temperature"};
  for (const char* a : words) {
    for (const char* b : words) {
      EXPECT_EQ(EditDistance(a, b), EditDistance(b, a)) << a << "/" << b;
    }
  }
}

TEST(StringUtilTest, EditDistanceTriangleInequality) {
  const char* words[] = {"city", "cite", "kite", "site", "sight"};
  for (const char* a : words) {
    for (const char* b : words) {
      for (const char* c : words) {
        EXPECT_LE(EditDistance(a, c),
                  EditDistance(a, b) + EditDistance(b, c));
      }
    }
  }
}

TEST(StringUtilTest, StringSimilarityRange) {
  EXPECT_DOUBLE_EQ(StringSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(StringSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(StringSimilarity("abc", "xyz"), 0.0);
  double sim = StringSimilarity("sale", "sales");
  EXPECT_GT(sim, 0.7);
  EXPECT_LT(sim, 1.0);
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(46.4, 1), "46.4");
  EXPECT_EQ(FormatDouble(8.0, 0), "8");
  EXPECT_EQ(FormatDouble(-3.456, 2), "-3.46");
}

}  // namespace
}  // namespace dwqa
