#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace dwqa {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  size_t same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5u);
}

TEST(RngTest, NextBelowStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(13), 13u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // All five values reachable.
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  double sum = 0;
  for (int i = 0; i < 2000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 2000.0, 0.5, 0.05);  // Roughly uniform.
}

TEST(RngTest, GaussianMoments) {
  Rng rng(5);
  double sum = 0, sum2 = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian(10.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.15);
  EXPECT_NEAR(var, 4.0, 0.5);
}

TEST(RngTest, NextBoolProbability) {
  Rng rng(11);
  int heads = 0;
  for (int i = 0; i < 2000; ++i) heads += rng.NextBool(0.25) ? 1 : 0;
  EXPECT_NEAR(heads / 2000.0, 0.25, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ShuffleSingleAndEmpty) {
  Rng rng(3);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(&one);
  EXPECT_EQ(one[0], 42);
}

}  // namespace
}  // namespace dwqa
