#include "common/trace.h"

#include <gtest/gtest.h>

namespace dwqa {
namespace {

TEST(SpanTest, NullRecorderIsANoOp) {
  Span span(nullptr, "qa.ask");
  span.Annotate("k", "v");
  span.Annotate("n", 3.0);
  span.End();  // Must not crash.
}

TEST(TraceRecorderTest, NestedScopesFormATree) {
  TraceRecorder recorder;
  EXPECT_TRUE(recorder.empty());
  {
    Span question(&recorder, "step5.question");
    {
      Span ask(&recorder, "qa.ask");
      { Span analysis(&recorder, "qa.analysis"); }
      { Span retrieval(&recorder, "ir.retrieval"); }
    }
    Span validate(&recorder, "qa.validate");
  }
  std::vector<SpanRecord> spans = recorder.spans();
  ASSERT_EQ(spans.size(), 5u);
  EXPECT_EQ(spans[0].name, "step5.question");
  EXPECT_EQ(spans[0].parent, SpanRecord::kNoParent);
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[1].name, "qa.ask");
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_EQ(spans[2].name, "qa.analysis");
  EXPECT_EQ(spans[2].parent, 1u);
  EXPECT_EQ(spans[2].depth, 2u);
  EXPECT_EQ(spans[3].name, "ir.retrieval");
  EXPECT_EQ(spans[3].parent, 1u);
  // qa.validate starts after qa.ask closed, so it parents on the question.
  EXPECT_EQ(spans[4].name, "qa.validate");
  EXPECT_EQ(spans[4].parent, 0u);
}

TEST(TraceRecorderTest, ExplicitEndReleasesTheParentSlot) {
  TraceRecorder recorder;
  Span first(&recorder, "first");
  first.End();
  first.End();  // Idempotent.
  Span second(&recorder, "second");
  std::vector<SpanRecord> spans = recorder.spans();
  ASSERT_EQ(spans.size(), 2u);
  // `first` was closed, so `second` is a sibling root, not a child.
  EXPECT_EQ(spans[1].parent, SpanRecord::kNoParent);
}

TEST(TraceRecorderTest, AnnotationsKeepCallOrderAndFormatNumbers) {
  TraceRecorder recorder;
  {
    Span span(&recorder, "qa.ask");
    span.Annotate("question", "temp?");
    span.Annotate("passages", 5.0);
    span.Annotate("score", 0.5);
  }
  std::vector<SpanRecord> spans = recorder.spans();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].annotations.size(), 3u);
  EXPECT_EQ(spans[0].annotations[0],
            (std::pair<std::string, std::string>{"question", "temp?"}));
  // Whole numbers render without a decimal point.
  EXPECT_EQ(spans[0].annotations[1].second, "5");
  EXPECT_EQ(spans[0].annotations[2].second, "0.5");
}

TEST(TraceRecorderTest, MovedFromSpanIsInert) {
  TraceRecorder recorder;
  {
    Span outer(&recorder, "outer");
    Span moved = std::move(outer);
    outer.End();  // No effect: ownership transferred.
    ASSERT_EQ(recorder.spans().size(), 1u);
    EXPECT_EQ(recorder.spans()[0].duration_ms, 0.0);  // Still open.
  }
  // `moved` closed it on scope exit; an open child started before the move
  // would still have parented correctly.
  EXPECT_EQ(recorder.spans().size(), 1u);
}

TEST(TraceRecorderTest, RenderDrawsTheGuideTree) {
  TraceRecorder recorder;
  {
    Span question(&recorder, "step5.question");
    question.Annotate("question", "temp?");
    {
      Span ask(&recorder, "qa.ask");
      { Span analysis(&recorder, "qa.analysis"); }
      { Span retrieval(&recorder, "ir.retrieval"); }
    }
    Span load(&recorder, "dw.etl.load");
  }
  std::string rendered = recorder.Render();
  // Durations are wall-clock; assert the structure around them.
  EXPECT_NE(rendered.find("step5.question ("), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("[question=temp?]"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("├─ qa.ask ("), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("│  ├─ qa.analysis ("), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("│  └─ ir.retrieval ("), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("└─ dw.etl.load ("), std::string::npos) << rendered;
}

TEST(TraceRecorderTest, RenderHandlesMultipleRoots) {
  TraceRecorder recorder;
  { Span a(&recorder, "one"); }
  { Span b(&recorder, "two"); }
  std::string rendered = recorder.Render();
  EXPECT_NE(rendered.find("one ("), std::string::npos);
  EXPECT_NE(rendered.find("two ("), std::string::npos);
  // Roots carry no guide glyphs.
  EXPECT_EQ(rendered.find("├─"), std::string::npos);
}

}  // namespace
}  // namespace dwqa
