#include "common/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dwqa {
namespace {

TEST(CounterTest, IncrementAccumulates) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("dwqa_test_events_total");
  counter->Increment();
  counter->Increment(2.5);
  EXPECT_DOUBLE_EQ(counter->value(), 3.5);
}

TEST(CounterTest, NegativeAndNanDeltasAreDropped) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("dwqa_test_events_total");
  counter->Increment(5.0);
  counter->Increment(-3.0);
  counter->Increment(std::nan(""));
  EXPECT_DOUBLE_EQ(counter->value(), 5.0);
}

TEST(GaugeTest, SetAndAddMoveBothWays) {
  MetricRegistry registry;
  Gauge* gauge = registry.GetGauge("dwqa_test_depth");
  gauge->Set(10.0);
  gauge->Add(-4.0);
  EXPECT_DOUBLE_EQ(gauge->value(), 6.0);
  gauge->Set(0.0);
  EXPECT_DOUBLE_EQ(gauge->value(), 0.0);
}

TEST(HistogramTest, ObservationsLandInTheRightBuckets) {
  Histogram histogram({1.0, 5.0, 10.0});
  histogram.Observe(0.5);   // <= 1
  histogram.Observe(1.0);   // <= 1 (inclusive upper bound)
  histogram.Observe(3.0);   // <= 5
  histogram.Observe(100.0);  // +Inf
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 104.5);
  std::vector<uint64_t> counts = histogram.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 finite + the +Inf overflow.
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(MetricRegistryTest, SameNameAndLabelsReturnsTheSameInstrument) {
  MetricRegistry registry;
  Counter* a = registry.GetCounter("dwqa_test_events_total", {{"k", "v"}});
  Counter* b = registry.GetCounter("dwqa_test_events_total", {{"k", "v"}});
  EXPECT_EQ(a, b);
  Counter* other =
      registry.GetCounter("dwqa_test_events_total", {{"k", "w"}});
  EXPECT_NE(a, other);
  EXPECT_EQ(registry.series_count(), 2u);
}

TEST(MetricRegistryTest, LabelOrderDoesNotSplitSeries) {
  MetricRegistry registry;
  Counter* a = registry.GetCounter("dwqa_test_events_total",
                                   {{"a", "1"}, {"b", "2"}});
  Counter* b = registry.GetCounter("dwqa_test_events_total",
                                   {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a, b);
}

TEST(MetricRegistryTest, ValueAndFamilySumReadBack) {
  MetricRegistry registry;
  registry.GetCounter("dwqa_test_facts_total", {{"disposition", "loaded"}})
      ->Increment(3.0);
  registry
      .GetCounter("dwqa_test_facts_total", {{"disposition", "rejected"}})
      ->Increment(2.0);
  EXPECT_DOUBLE_EQ(
      registry.Value("dwqa_test_facts_total", {{"disposition", "loaded"}}),
      3.0);
  // Absent series reads as 0, Prometheus-style.
  EXPECT_DOUBLE_EQ(registry.Value("dwqa_test_missing_total"), 0.0);
  EXPECT_DOUBLE_EQ(registry.FamilySum("dwqa_test_facts_total"), 5.0);
}

TEST(MetricRegistryTest, SnapshotFamilyIsSortedByLabels) {
  MetricRegistry registry;
  registry.GetCounter("dwqa_test_total", {{"x", "b"}})->Increment();
  registry.GetCounter("dwqa_test_total", {{"x", "a"}})->Increment(2.0);
  registry.GetCounter("dwqa_other_total")->Increment();
  std::vector<MetricSnapshot> family =
      registry.SnapshotFamily("dwqa_test_total");
  ASSERT_EQ(family.size(), 2u);
  EXPECT_EQ(family[0].labels.at("x"), "a");
  EXPECT_DOUBLE_EQ(family[0].value, 2.0);
  EXPECT_EQ(family[1].labels.at("x"), "b");
}

TEST(MetricRegistryTest, HelpIsRecordedOnFirstProvidingCall) {
  MetricRegistry registry;
  registry.GetCounter("dwqa_test_total", {}, "");
  registry.GetCounter("dwqa_test_total", {}, "first help");
  registry.GetCounter("dwqa_test_total", {}, "second help");
  std::vector<MetricSnapshot> snaps = registry.Snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].help, "first help");
}

TEST(ScopedLatencyTimerTest, ObservesOnceAndToleratesNull) {
  MetricRegistry registry;
  Histogram* histogram =
      registry.GetHistogram("dwqa_test_latency_ms", {}, {1e9});
  {
    ScopedLatencyTimer timer(histogram);
  }
  EXPECT_EQ(histogram->count(), 1u);
  {
    ScopedLatencyTimer null_timer(nullptr);  // Must not crash.
  }
  EXPECT_EQ(histogram->count(), 1u);
}

// Golden exporter output: the exact exposition format is API — dashboards
// and the BENCH_phase3.json tee parse it.
TEST(ExportPrometheusTest, GoldenOutput) {
  MetricRegistry registry;
  registry
      .GetCounter("dwqa_test_events_total", {{"kind", "a"}},
                  "Events seen")
      ->Increment(3.0);
  registry.GetCounter("dwqa_test_events_total", {{"kind", "b"}})
      ->Increment(1.5);
  registry.GetGauge("dwqa_test_depth", {}, "Current depth")->Set(7.0);
  registry
      .GetHistogram("dwqa_test_latency_ms", {}, {1.0, 5.0},
                    "Latency of tests")
      ->Observe(2.0);
  EXPECT_EQ(registry.ExportPrometheus(),
            "# HELP dwqa_test_depth Current depth\n"
            "# TYPE dwqa_test_depth gauge\n"
            "dwqa_test_depth 7\n"
            "# HELP dwqa_test_events_total Events seen\n"
            "# TYPE dwqa_test_events_total counter\n"
            "dwqa_test_events_total{kind=\"a\"} 3\n"
            "dwqa_test_events_total{kind=\"b\"} 1.5\n"
            "# HELP dwqa_test_latency_ms Latency of tests\n"
            "# TYPE dwqa_test_latency_ms histogram\n"
            "dwqa_test_latency_ms_bucket{le=\"1\"} 0\n"
            "dwqa_test_latency_ms_bucket{le=\"5\"} 1\n"
            "dwqa_test_latency_ms_bucket{le=\"+Inf\"} 1\n"
            "dwqa_test_latency_ms_sum 2\n"
            "dwqa_test_latency_ms_count 1\n");
}

TEST(ExportPrometheusTest, LabelValuesAreEscaped) {
  MetricRegistry registry;
  registry
      .GetCounter("dwqa_test_total", {{"q", "say \"hi\"\nback\\slash"}})
      ->Increment();
  std::string out = registry.ExportPrometheus();
  EXPECT_NE(out.find("q=\"say \\\"hi\\\"\\nback\\\\slash\""),
            std::string::npos)
      << out;
}

TEST(ExportJsonTest, GoldenOutput) {
  MetricRegistry registry;
  registry.GetCounter("dwqa_test_events_total", {{"kind", "a"}})
      ->Increment(2.0);
  registry.GetHistogram("dwqa_test_latency_ms", {}, {1.0})->Observe(0.5);
  EXPECT_EQ(registry.ExportJson(),
            "{\n"
            "  \"schema\": \"dwqa-metrics-v1\",\n"
            "  \"metrics\": [\n"
            "    {\"name\": \"dwqa_test_events_total\", "
            "\"type\": \"counter\", \"labels\": {\"kind\": \"a\"}, "
            "\"value\": 2},\n"
            "    {\"name\": \"dwqa_test_latency_ms\", "
            "\"type\": \"histogram\", \"labels\": {}, \"count\": 1, "
            "\"sum\": 0.5, \"buckets\": [{\"le\": 1, \"count\": 1}, "
            "{\"le\": \"+Inf\", \"count\": 0}]}\n"
            "  ]\n"
            "}\n");
}

TEST(ExportTest, EmptyRegistryExportsCleanly) {
  MetricRegistry registry;
  EXPECT_EQ(registry.ExportPrometheus(), "");
  EXPECT_EQ(registry.ExportJson(),
            "{\n  \"schema\": \"dwqa-metrics-v1\",\n  \"metrics\": [\n"
            "  ]\n}\n");
}

}  // namespace
}  // namespace dwqa
