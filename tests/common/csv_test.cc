#include "common/csv.h"

#include <gtest/gtest.h>

namespace dwqa {
namespace {

TEST(CsvTest, ParseSimpleRows) {
  auto rows = Csv::Parse("a,b,c\n1,2,3\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(CsvTest, ParseQuotedFieldWithComma) {
  auto rows = Csv::Parse("\"8ºC, cold\",Barcelona\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0][0], "8ºC, cold");
  EXPECT_EQ((*rows)[0][1], "Barcelona");
}

TEST(CsvTest, ParseEscapedQuotes) {
  auto rows = Csv::Parse("\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0][0], "he said \"hi\"");
}

TEST(CsvTest, ParseQuotedNewline) {
  auto rows = Csv::Parse("\"line1\nline2\",x\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], "line1\nline2");
}

TEST(CsvTest, ParseToleratesCrlfAndMissingTrailingNewline) {
  auto rows = Csv::Parse("a,b\r\nc,d");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1][1], "d");
}

TEST(CsvTest, ParseRejectsUnterminatedQuote) {
  auto rows = Csv::Parse("\"oops");
  EXPECT_FALSE(rows.ok());
  EXPECT_TRUE(rows.status().IsInvalidArgument());
}

TEST(CsvTest, EmptyInputYieldsNoRows) {
  auto rows = Csv::Parse("");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(CsvTest, EscapeFieldOnlyWhenNeeded) {
  EXPECT_EQ(Csv::EscapeField("plain"), "plain");
  EXPECT_EQ(Csv::EscapeField("a,b"), "\"a,b\"");
  EXPECT_EQ(Csv::EscapeField("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvTest, RenderParseRoundTrip) {
  std::vector<std::vector<std::string>> rows = {
      {"temperature", "date", "city", "url"},
      {"8", "2004-01-31", "Barcelona, Spain", "web://a\nb"},
      {"", "with \"quotes\"", ",", "plain"},
  };
  auto parsed = Csv::Parse(Csv::Render(rows));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, rows);
}

TEST(CsvTest, RoundTripPropertySweep) {
  // Property: render ∘ parse == id for fields drawn from tricky alphabet.
  const std::string pieces[] = {"", ",", "\"", "\n", "x", "ºC", "a,b\"c\n"};
  for (const std::string& a : pieces) {
    for (const std::string& b : pieces) {
      std::vector<std::vector<std::string>> rows = {{a, b}, {b, a}};
      auto parsed = Csv::Parse(Csv::Render(rows));
      ASSERT_TRUE(parsed.ok());
      EXPECT_EQ(*parsed, rows) << "a='" << a << "' b='" << b << "'";
    }
  }
}

}  // namespace
}  // namespace dwqa
