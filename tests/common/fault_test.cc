#include "common/fault.h"

#include <gtest/gtest.h>

namespace dwqa {
namespace {

TEST(FaultTest, DisabledInjectorNeverFires) {
  FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(injector.Hit(kFaultPointFetch).ok());
  }
  FaultMode mode = FaultMode::kTransient;
  EXPECT_FALSE(injector.ShouldCorrupt(kFaultPointParse, &mode));
  EXPECT_EQ(injector.total_fires(), 0u);
}

TEST(FaultTest, TransientRuleFiresAtConfiguredRate) {
  FaultConfig config;
  config.seed = 7;
  config.rules.push_back(
      {kFaultPointFetch, 0.3, FaultMode::kTransient,
       StatusCode::kUnavailable});
  FaultInjector injector(config);
  size_t fired = 0;
  for (int i = 0; i < 10000; ++i) {
    Status st = injector.Hit(kFaultPointFetch);
    if (!st.ok()) {
      EXPECT_TRUE(st.IsUnavailable());
      EXPECT_TRUE(IsTransient(st));
      ++fired;
    }
  }
  EXPECT_EQ(fired, injector.fires(kFaultPointFetch));
  EXPECT_NEAR(double(fired) / 10000.0, 0.3, 0.03);
}

TEST(FaultTest, DeterministicUnderFixedSeed) {
  auto schedule = [](uint64_t seed) {
    FaultInjector injector(FaultConfig::TransientEverywhere(0.25, seed));
    std::string out;
    for (int i = 0; i < 200; ++i) {
      out += injector.Hit(kFaultPointEtlLoad).ok() ? '.' : 'X';
    }
    return out;
  };
  EXPECT_EQ(schedule(42), schedule(42));
  EXPECT_NE(schedule(42), schedule(43));
}

TEST(FaultTest, PointsAreIndependent) {
  FaultConfig config;
  config.rules.push_back({kFaultPointFetch, 1.0, FaultMode::kTransient,
                          StatusCode::kDeadlineExceeded});
  FaultInjector injector(config);
  EXPECT_TRUE(injector.Hit(kFaultPointEtlLoad).ok());
  Status st = injector.Hit(kFaultPointFetch);
  EXPECT_TRUE(st.IsDeadlineExceeded());
  EXPECT_TRUE(IsTransient(st));
  EXPECT_EQ(injector.fires(kFaultPointEtlLoad), 0u);
  EXPECT_EQ(injector.fires(kFaultPointFetch), 1u);
}

TEST(FaultTest, CorruptionRulesDoNotFireOnHit) {
  FaultConfig config;
  config.rules.push_back(
      {kFaultPointParse, 1.0, FaultMode::kTruncatePayload});
  FaultInjector injector(config);
  EXPECT_TRUE(injector.Hit(kFaultPointParse).ok());
  FaultMode mode = FaultMode::kTransient;
  EXPECT_TRUE(injector.ShouldCorrupt(kFaultPointParse, &mode));
  EXPECT_EQ(mode, FaultMode::kTruncatePayload);
}

TEST(FaultTest, TruncateKeepsAPrefix) {
  Rng rng(3);
  std::string page(1000, 'a');
  std::string cut = FaultInjector::TruncatePayload(page, &rng);
  EXPECT_LT(cut.size(), page.size());
  EXPECT_GE(cut.size(), page.size() / 2);
  EXPECT_EQ(page.compare(0, cut.size(), cut), 0);
}

TEST(FaultTest, SwapDigitsGarblesNumbers) {
  Rng rng(5);
  std::string page = "Temperature 8 C. Temperature 12 C. Temperature 31 C.";
  bool changed = false;
  // The per-digit garble probability is 0.25; a few tries must hit one.
  for (int i = 0; i < 20 && !changed; ++i) {
    changed = FaultInjector::SwapDigits(page, &rng) != page;
  }
  EXPECT_TRUE(changed);
  // Non-digit text survives untouched.
  std::string garbled = FaultInjector::SwapDigits(page, &rng);
  EXPECT_NE(garbled.find("Temperature"), std::string::npos);
}

TEST(FaultTest, BreakUnitsDestroysScaleMarkers) {
  Rng rng(11);
  std::string page = "Temperature 8\xC2\xBA C around 46.4 F today";
  bool broke = false;
  for (int i = 0; i < 20 && !broke; ++i) {
    broke = FaultInjector::BreakUnits(page, &rng)
                .find("\xC2\xBA C") == std::string::npos;
  }
  EXPECT_TRUE(broke);
}

TEST(FaultTest, ModeNamesAreStable) {
  EXPECT_STREQ(FaultModeName(FaultMode::kTransient), "Transient");
  EXPECT_STREQ(FaultModeName(FaultMode::kTruncatePayload),
               "TruncatePayload");
  EXPECT_STREQ(FaultModeName(FaultMode::kSwapDigits), "SwapDigits");
  EXPECT_STREQ(FaultModeName(FaultMode::kBreakUnits), "BreakUnits");
}

TEST(FaultTest, TransientEverywhereArmsAllPoints) {
  FaultInjector injector(FaultConfig::TransientEverywhere(1.0, 1));
  for (const char* point : {kFaultPointFetch, kFaultPointParse,
                            kFaultPointIndex, kFaultPointEtlLoad}) {
    EXPECT_TRUE(injector.Hit(point).IsUnavailable()) << point;
  }
}

}  // namespace
}  // namespace dwqa
