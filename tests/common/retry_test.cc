#include "common/retry.h"

#include <gtest/gtest.h>

#include "common/metric_names.h"
#include "common/metrics.h"

namespace dwqa {
namespace {

RetryPolicy FastPolicy() {
  RetryPolicy policy;
  policy.sleep = false;  // Schedule-only: tests assert counts, not time.
  return policy;
}

TEST(RetryTest, SuccessFirstTry) {
  RetryStats stats;
  int calls = 0;
  Status st = RetryCall(
      FastPolicy(),
      [&] {
        ++calls;
        return Status::OK();
      },
      &stats);
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_EQ(stats.transient_failures, 0);
}

TEST(RetryTest, TransientFailuresAreRetriedUntilSuccess) {
  RetryStats stats;
  int calls = 0;
  Status st = RetryCall(
      FastPolicy(),
      [&] {
        return ++calls < 3 ? Status::Unavailable("flaky") : Status::OK();
      },
      &stats);
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_EQ(stats.transient_failures, 2);
}

TEST(RetryTest, PermanentFailureFailsFast) {
  RetryStats stats;
  int calls = 0;
  Status st = RetryCall(
      FastPolicy(),
      [&] {
        ++calls;
        return Status::InvalidArgument("bad input");
      },
      &stats);
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(stats.transient_failures, 0);
}

TEST(RetryTest, BudgetExhaustionReturnsLastTransient) {
  RetryPolicy policy = FastPolicy();
  policy.max_attempts = 3;
  RetryStats stats;
  int calls = 0;
  Status st = RetryCall(
      policy,
      [&] {
        ++calls;
        return Status::DeadlineExceeded("slow backend");
      },
      &stats);
  EXPECT_TRUE(st.IsDeadlineExceeded());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_EQ(stats.transient_failures, 3);
}

TEST(RetryTest, ResultFlavourCarriesTheValue) {
  RetryStats stats;
  int calls = 0;
  Result<int> result = RetryResultCall<int>(
      FastPolicy(),
      [&]() -> Result<int> {
        if (++calls < 2) return Status::Unavailable("flaky");
        return 42;
      },
      &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(stats.attempts, 2);
}

TEST(RetryTest, ResultFlavourPropagatesPermanentFailure) {
  Result<int> result = RetryResultCall<int>(
      FastPolicy(), []() -> Result<int> { return Status::NotFound("gone"); });
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST(RetryTest, BackoffGrowsGeometricallyAndCaps) {
  RetryPolicy policy;
  policy.base_delay_ms = 1.0;
  policy.backoff_factor = 2.0;
  policy.max_delay_ms = 4.0;
  policy.jitter = 0.0;
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 1, nullptr), 1.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 2, nullptr), 2.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 3, nullptr), 4.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 4, nullptr), 4.0);  // Capped.
}

TEST(RetryTest, JitterShrinksDelayDeterministically) {
  RetryPolicy policy;
  policy.base_delay_ms = 100.0;
  policy.max_delay_ms = 100.0;
  policy.jitter = 0.5;
  Rng rng_a(9);
  Rng rng_b(9);
  double a = BackoffDelayMs(policy, 1, &rng_a);
  double b = BackoffDelayMs(policy, 1, &rng_b);
  EXPECT_DOUBLE_EQ(a, b);       // Same seed, same jitter.
  EXPECT_LE(a, 100.0);
  EXPECT_GE(a, 50.0);           // At most `jitter` shaved off.
}

TEST(RetryTest, AtLeastOneAttemptEvenWithZeroBudget) {
  RetryPolicy policy = FastPolicy();
  policy.max_attempts = 0;
  RetryStats stats;
  int calls = 0;
  Status st = RetryCall(
      policy,
      [&] {
        ++calls;
        return Status::OK();
      },
      &stats);
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, MirrorRetryStatsLandsInTheRegistry) {
  MetricRegistry metrics;
  RetryStats stats;
  stats.attempts = 3;
  stats.transient_failures = 2;
  MirrorRetryStats(&metrics, "serve.ask", stats, /*gave_up=*/true);
  EXPECT_DOUBLE_EQ(
      metrics.Value(kMetricRetryAttempts, {{"stage", "serve.ask"}}), 3.0);
  EXPECT_DOUBLE_EQ(
      metrics.Value(kMetricRetryTransientFailures, {{"stage", "serve.ask"}}),
      2.0);
  EXPECT_DOUBLE_EQ(
      metrics.Value(kMetricRetryGiveups, {{"stage", "serve.ask"}}), 1.0);

  // A clean second call only moves the attempt counter.
  RetryStats clean;
  clean.attempts = 1;
  MirrorRetryStats(&metrics, "serve.ask", clean, /*gave_up=*/false);
  EXPECT_DOUBLE_EQ(
      metrics.Value(kMetricRetryAttempts, {{"stage", "serve.ask"}}), 4.0);
  EXPECT_DOUBLE_EQ(
      metrics.Value(kMetricRetryGiveups, {{"stage", "serve.ask"}}), 1.0);

  // Zero-attempt stats and a null registry are both no-ops, not crashes.
  MirrorRetryStats(&metrics, "idle", RetryStats{}, /*gave_up=*/false);
  EXPECT_DOUBLE_EQ(metrics.Value(kMetricRetryAttempts, {{"stage", "idle"}}),
                   0.0);
  MirrorRetryStats(nullptr, "serve.ask", stats, /*gave_up=*/true);
}

TEST(RetryTest, StatsAccumulate) {
  RetryStats total;
  RetryStats one;
  one.attempts = 3;
  one.transient_failures = 2;
  one.total_delay_ms = 1.5;
  total.Accumulate(one);
  total.Accumulate(one);
  EXPECT_EQ(total.attempts, 6);
  EXPECT_EQ(total.transient_failures, 4);
  EXPECT_DOUBLE_EQ(total.total_delay_ms, 3.0);
}

}  // namespace
}  // namespace dwqa
