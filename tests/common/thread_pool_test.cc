// Contract tests for the one threading primitive of the codebase:
// deterministic output ordering, exception transparency, and the
// zero/one-worker degenerate cases that make threads=1 configs exercise
// the exact serial code path.

#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace dwqa {
namespace {

TEST(ThreadPoolTest, ZeroAndOneThreadStartNoWorkers) {
  EXPECT_EQ(ThreadPool(0).worker_count(), 0u);
  EXPECT_EQ(ThreadPool(1).worker_count(), 0u);
  EXPECT_EQ(ThreadPool(4).worker_count(), 4u);
}

TEST(ThreadPoolTest, InlinePoolRunsSubmitOnCallerThread) {
  ThreadPool pool(1);
  std::thread::id caller = std::this_thread::get_id();
  auto future = pool.Submit([caller]() {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    return 42;
  });
  // Inline Submit completes before returning.
  EXPECT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, SubmitReturnsResultsThroughFutures) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.Submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(futures[size_t(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  for (size_t threads : {size_t(1), size_t(3)}) {
    ThreadPool pool(threads);
    auto future = pool.Submit(
        []() -> int { throw std::runtime_error("task failed"); });
    EXPECT_THROW(future.get(), std::runtime_error);
  }
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  for (size_t threads : {size_t(0), size_t(1), size_t(2), size_t(4)}) {
    ThreadPool pool(threads);
    constexpr size_t kN = 500;
    std::vector<std::atomic<int>> visits(kN);
    pool.ParallelFor(kN, [&](size_t i) { ++visits[i]; });
    for (size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i << " with " << threads
                                     << " threads";
    }
  }
}

TEST(ThreadPoolTest, ParallelForOutputIsIndependentOfWorkerCount) {
  // The determinism contract: a caller filling out[i] gets the same vector
  // for any worker count.
  constexpr size_t kN = 200;
  std::vector<std::vector<int>> results;
  for (size_t threads : {size_t(1), size_t(2), size_t(8)}) {
    ThreadPool pool(threads);
    std::vector<int> out(kN, -1);
    pool.ParallelFor(kN, [&](size_t i) { out[i] = int(i) * 3 + 1; });
    results.push_back(std::move(out));
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(ThreadPoolTest, ParallelForZeroIterationsIsANoOp) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestIndexException) {
  for (size_t threads : {size_t(1), size_t(4)}) {
    ThreadPool pool(threads);
    constexpr size_t kN = 100;
    std::vector<std::atomic<int>> visits(kN);
    std::string caught;
    try {
      pool.ParallelFor(kN, [&](size_t i) {
        ++visits[i];
        if (i == 7 || i == 60) {
          throw std::runtime_error("boom at " + std::to_string(i));
        }
      });
      FAIL() << "expected ParallelFor to rethrow";
    } catch (const std::runtime_error& e) {
      caught = e.what();
    }
    // The lowest-index exception wins, deterministically.
    EXPECT_EQ(caught, "boom at 7") << threads << " threads";
    // A throwing index does not cancel the rest of the round.
    for (size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForMakesProgressWhilePoolIsBusy) {
  // The calling thread participates, so a round larger than the worker
  // count (or issued while workers chew on Submit backlog) still finishes.
  ThreadPool pool(2);
  std::atomic<int> background{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.Submit([&background]() { ++background; }));
  }
  std::atomic<size_t> sum{0};
  pool.ParallelFor(1000, [&](size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 1000u * 999u / 2);
  for (auto& f : futures) f.get();
  EXPECT_EQ(background.load(), 8);
}

TEST(ThreadPoolTest, ManyConcurrentRoundsOnOnePool) {
  // Back-to-back ParallelFor rounds reuse the same workers without leaking
  // state between rounds.
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::vector<int> out(64, 0);
    pool.ParallelFor(out.size(), [&](size_t i) { out[i] = round; });
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), round * 64);
  }
}

}  // namespace
}  // namespace dwqa
