// Tests for the thread-safe interning front-end of parallel indexation:
// single-threaded round-trip semantics, and a TSan-targeted stress test
// hammering the shards from many threads at once (the CI thread-sanitizer
// job runs this suite under DWQA_SANITIZE=thread).

#include "common/interner.h"

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace dwqa {
namespace {

TEST(ShardedTermInternerTest, InternIsIdempotentAndRoundTrips) {
  ShardedTermInterner interner;
  TermId weather = interner.Intern("weather");
  TermId madrid = interner.Intern("madrid");
  EXPECT_NE(weather, madrid);
  EXPECT_EQ(interner.Intern("weather"), weather);
  EXPECT_EQ(interner.Intern("madrid"), madrid);
  EXPECT_EQ(interner.Term(weather), "weather");
  EXPECT_EQ(interner.Term(madrid), "madrid");
  EXPECT_EQ(interner.size(), 2u);
}

TEST(ShardedTermInternerTest, IdBoundCoversEveryIssuedId) {
  ShardedTermInterner interner;
  std::vector<TermId> issued;
  for (int i = 0; i < 300; ++i) {
    issued.push_back(interner.Intern("term-" + std::to_string(i)));
  }
  size_t bound = interner.IdBound();
  for (TermId id : issued) {
    EXPECT_LT(size_t(id), bound);
  }
  EXPECT_EQ(interner.size(), 300u);
}

TEST(ShardedTermInternerTest, ProvisionalIdsAreUnique) {
  ShardedTermInterner interner;
  std::set<TermId> seen;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(seen.insert(interner.Intern(std::to_string(i))).second);
  }
}

TEST(ShardedTermInternerTest, ConcurrentInterningStress) {
  // Eight workers intern overlapping vocabularies: a shared core every
  // worker hits (maximal contention on the same shards) plus a private
  // tail. TSan must see no races; every term must end up with exactly one
  // id that round-trips.
  ShardedTermInterner interner;
  constexpr size_t kWorkers = 8;
  constexpr int kShared = 200;
  constexpr int kPrivate = 200;
  std::vector<std::vector<TermId>> shared_ids(kWorkers);
  ThreadPool pool(kWorkers);
  pool.ParallelFor(kWorkers, [&](size_t w) {
    shared_ids[w].reserve(kShared);
    for (int i = 0; i < kShared; ++i) {
      shared_ids[w].push_back(interner.Intern("shared-" + std::to_string(i)));
    }
    for (int i = 0; i < kPrivate; ++i) {
      interner.Intern("private-" + std::to_string(w) + "-" +
                      std::to_string(i));
    }
  });
  // Every worker observed the same id for the same shared term.
  for (size_t w = 1; w < kWorkers; ++w) {
    EXPECT_EQ(shared_ids[w], shared_ids[0]);
  }
  for (int i = 0; i < kShared; ++i) {
    EXPECT_EQ(interner.Term(shared_ids[0][size_t(i)]),
              "shared-" + std::to_string(i));
  }
  EXPECT_EQ(interner.size(), size_t(kShared) + kWorkers * kPrivate);
}

TEST(ShardedTermInternerTest, ConcurrentTermLookupWhileInterning) {
  // Term() must be safe against concurrent Intern() growth (the merge never
  // does this, but the contract says lifetime-stable ids, so enforce it).
  ShardedTermInterner interner;
  std::vector<TermId> warm;
  for (int i = 0; i < 100; ++i) {
    warm.push_back(interner.Intern("warm-" + std::to_string(i)));
  }
  ThreadPool pool(4);
  pool.ParallelFor(4, [&](size_t w) {
    if (w % 2 == 0) {
      for (int i = 0; i < 500; ++i) {
        interner.Intern("grow-" + std::to_string(w) + "-" +
                        std::to_string(i));
      }
    } else {
      for (int pass = 0; pass < 5; ++pass) {
        for (size_t i = 0; i < warm.size(); ++i) {
          EXPECT_EQ(interner.Term(warm[i]), "warm-" + std::to_string(i));
        }
      }
    }
  });
}

}  // namespace
}  // namespace dwqa
