#include "common/table_printer.h"

#include <gtest/gtest.h>

namespace dwqa {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter printer({"City", "Temp"});
  printer.AddRow({"Barcelona", "8"});
  printer.AddRow({"NY", "0"});
  std::string out = printer.Render();
  // Every line has the same length when columns are aligned.
  std::vector<size_t> lengths;
  size_t start = 0;
  while (start < out.size()) {
    size_t end = out.find('\n', start);
    if (end == std::string::npos) break;
    lengths.push_back(end - start);
    start = end + 1;
  }
  ASSERT_EQ(lengths.size(), 4u);  // header, separator, 2 rows
  EXPECT_EQ(lengths[0], lengths[1]);
  EXPECT_EQ(lengths[0], lengths[2]);
  EXPECT_EQ(lengths[0], lengths[3]);
  EXPECT_NE(out.find("Barcelona"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter printer({"a", "b", "c"});
  printer.AddRow({"only"});
  std::string out = printer.Render();
  EXPECT_NE(out.find("only"), std::string::npos);
  EXPECT_EQ(printer.row_count(), 1u);
}

TEST(TablePrinterTest, LongRowsAreTruncatedToHeaderWidth) {
  TablePrinter printer({"a"});
  printer.AddRow({"x", "overflow-dropped"});
  std::string out = printer.Render();
  EXPECT_EQ(out.find("overflow-dropped"), std::string::npos);
}

TEST(TablePrinterTest, EmptyTableRendersHeaderOnly) {
  TablePrinter printer({"h1", "h2"});
  std::string out = printer.Render();
  EXPECT_NE(out.find("h1"), std::string::npos);
  EXPECT_EQ(printer.row_count(), 0u);
}

TEST(TablePrinterTest, BannerFormat) {
  std::ostringstream os;
  PrintBanner(os, "Table 1");
  EXPECT_EQ(os.str(), "\n=== Table 1 ===\n");
}

}  // namespace
}  // namespace dwqa
