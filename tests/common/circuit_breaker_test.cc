#include "common/circuit_breaker.h"

#include <gtest/gtest.h>

namespace dwqa {
namespace {

BreakerConfig Enabled(size_t threshold = 3, size_t cooldown = 2) {
  BreakerConfig config;
  config.enabled = true;
  config.failure_threshold = threshold;
  config.cooldown_attempts = cooldown;
  return config;
}

TEST(BreakerConfigTest, ZeroFailureThresholdIsRejected) {
  BreakerConfig config;
  config.failure_threshold = 0;
  Status st = config.Validate();
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_TRUE(Enabled().Validate().ok());
  EXPECT_TRUE(BreakerConfig{}.Validate().ok());  // Defaults are valid.
}

TEST(CircuitBreakerTest, DisabledBreakerAdmitsEverythingAndNeverTrips) {
  CircuitBreaker breaker;  // enabled = false by default.
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(breaker.Allow());
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.rejected(), 0u);
  EXPECT_EQ(breaker.opens(), 0u);
  // Failures are still tallied for reports.
  EXPECT_EQ(breaker.total_failures(), 20u);
}

TEST(CircuitBreakerTest, OpensOnNthConsecutiveFailure) {
  CircuitBreaker breaker(Enabled(/*threshold=*/3));
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.RecordFailure();  // The 3rd consecutive failure trips it.
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.opens(), 1u);
}

TEST(CircuitBreakerTest, SuccessResetsTheConsecutiveFailureCount) {
  CircuitBreaker breaker(Enabled(/*threshold=*/3));
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.RecordSuccess();  // Streak broken.
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 2u);
}

TEST(CircuitBreakerTest, OpenRejectsForTheCooldownThenGrantsTheProbe) {
  CircuitBreaker breaker(Enabled(/*threshold=*/1, /*cooldown=*/3));
  breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  // Three rejected admissions serve the cool-down...
  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());
  EXPECT_EQ(breaker.rejected(), 3u);
  // ...and the next admission is the half-open probe.
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  // Only one probe at a time.
  EXPECT_FALSE(breaker.Allow());
}

TEST(CircuitBreakerTest, ProbeSuccessClosesTheBreaker) {
  CircuitBreaker breaker(Enabled(/*threshold=*/1, /*cooldown=*/1));
  breaker.RecordFailure();
  EXPECT_FALSE(breaker.Allow());  // Cool-down.
  ASSERT_TRUE(breaker.Allow());   // Probe granted.
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.consecutive_failures(), 0u);
}

TEST(CircuitBreakerTest, ProbeFailureReopensAndResetsTheCooldown) {
  CircuitBreaker breaker(Enabled(/*threshold=*/1, /*cooldown=*/2));
  breaker.RecordFailure();
  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());
  ASSERT_TRUE(breaker.Allow());  // Probe.
  breaker.RecordFailure();       // Probe failed.
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.opens(), 2u);
  // The cool-down restarts from zero: two more rejections before the next
  // probe.
  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
}

TEST(CircuitBreakerTest, WouldAllowIsNonMutating) {
  CircuitBreaker breaker(Enabled(/*threshold=*/1, /*cooldown=*/2));
  breaker.RecordFailure();
  // Consulting the breaker any number of times advances nothing.
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(breaker.WouldAllow());
  EXPECT_EQ(breaker.rejected(), 0u);
  // The committed admissions still serve the full cool-down.
  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());
  EXPECT_TRUE(breaker.WouldAllow());  // Probe would be granted...
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);  // ...but was not yet.
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
}

TEST(CircuitBreakerTest, StateNamesAreStable) {
  EXPECT_STREQ(BreakerStateName(BreakerState::kClosed), "Closed");
  EXPECT_STREQ(BreakerStateName(BreakerState::kOpen), "Open");
  EXPECT_STREQ(BreakerStateName(BreakerState::kHalfOpen), "HalfOpen");
}

TEST(CircuitBreakerRegistryTest, GetCreatesOnDemandAndIsStable) {
  CircuitBreakerRegistry registry(Enabled(/*threshold=*/1));
  CircuitBreaker* a = registry.Get("source:http://a");
  CircuitBreaker* b = registry.Get("source:http://b");
  EXPECT_NE(a, b);
  EXPECT_EQ(registry.Get("source:http://a"), a);
  EXPECT_EQ(registry.breakers().size(), 2u);
  EXPECT_TRUE(registry.enabled());

  a->RecordFailure();
  EXPECT_EQ(registry.open_count(), 1u);  // a open, b closed.
  EXPECT_EQ(b->state(), BreakerState::kClosed);
}

}  // namespace
}  // namespace dwqa
