// Concurrency hammer for the metrics registry: many ThreadPool workers
// recording into shared instruments and lazily creating series at the same
// time. Counts must be exact (no lost updates) and the suite runs under
// TSan in CI (`ctest -L threads` with DWQA_SANITIZE=thread), so any data
// race in the lock-free recording paths fails loudly.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/thread_pool.h"

namespace dwqa {
namespace {

TEST(MetricsConcurrencyTest, ConcurrentIncrementsAreExact) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("dwqa_test_hammer_total");
  Gauge* gauge = registry.GetGauge("dwqa_test_hammer_depth");
  constexpr size_t kTasks = 64;
  constexpr size_t kPerTask = 1000;
  ThreadPool pool(8);
  pool.ParallelFor(kTasks, [&](size_t) {
    for (size_t i = 0; i < kPerTask; ++i) {
      counter->Increment();
      gauge->Add(1.0);
    }
  });
  EXPECT_DOUBLE_EQ(counter->value(), double(kTasks * kPerTask));
  EXPECT_DOUBLE_EQ(gauge->value(), double(kTasks * kPerTask));
}

TEST(MetricsConcurrencyTest, ConcurrentHistogramObservationsAreExact) {
  MetricRegistry registry;
  Histogram* histogram =
      registry.GetHistogram("dwqa_test_hammer_latency_ms", {}, {1.0, 10.0});
  constexpr size_t kTasks = 64;
  constexpr size_t kPerTask = 500;
  ThreadPool pool(8);
  pool.ParallelFor(kTasks, [&](size_t task) {
    for (size_t i = 0; i < kPerTask; ++i) {
      // Deterministic mix across the three buckets.
      histogram->Observe(double((task + i) % 3) * 5.0);  // 0, 5, 10.
    }
  });
  EXPECT_EQ(histogram->count(), kTasks * kPerTask);
  std::vector<uint64_t> counts = histogram->bucket_counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0] + counts[1] + counts[2], kTasks * kPerTask);
  EXPECT_EQ(counts[2], 0u);  // Nothing above 10.
}

TEST(MetricsConcurrencyTest, ConcurrentSeriesCreationYieldsOneInstrument) {
  MetricRegistry registry;
  constexpr size_t kTasks = 64;
  std::vector<Counter*> seen(kTasks, nullptr);
  ThreadPool pool(8);
  pool.ParallelFor(kTasks, [&](size_t task) {
    // All workers race to create the same few series, then record.
    Counter* counter = registry.GetCounter(
        "dwqa_test_race_total", {{"k", std::to_string(task % 4)}});
    seen[task] = counter;
    counter->Increment();
  });
  EXPECT_EQ(registry.series_count(), 4u);
  for (size_t task = 0; task < kTasks; ++task) {
    EXPECT_EQ(seen[task], seen[task % 4]) << task;
  }
  EXPECT_DOUBLE_EQ(registry.FamilySum("dwqa_test_race_total"),
                   double(kTasks));
}

TEST(MetricsConcurrencyTest, SnapshotWhileRecordingIsSafe) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("dwqa_test_snapshot_total");
  constexpr size_t kTasks = 32;
  ThreadPool pool(8);
  pool.ParallelFor(kTasks, [&](size_t task) {
    for (size_t i = 0; i < 200; ++i) {
      counter->Increment();
      if (task % 4 == 0 && i % 50 == 0) {
        // Concurrent readers must see a consistent, parseable snapshot.
        std::string text = registry.ExportPrometheus();
        EXPECT_NE(text.find("dwqa_test_snapshot_total"), std::string::npos);
      }
    }
  });
  EXPECT_DOUBLE_EQ(counter->value(), double(kTasks * 200));
}

}  // namespace
}  // namespace dwqa
