#include "common/deadline.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/retry.h"

namespace dwqa {
namespace {

RetryPolicy FastRetry(int max_attempts = 5) {
  RetryPolicy policy;
  policy.max_attempts = max_attempts;
  policy.sleep = false;
  return policy;
}

TEST(DeadlineConfigTest, NegativeOrNanBudgetIsRejected) {
  DeadlineConfig config;
  config.budget = -1.0;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
  config.budget = std::nan("");
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
  config.budget = 0.0;
  EXPECT_TRUE(config.Validate().ok());
  EXPECT_TRUE(DeadlineConfig{}.Validate().ok());  // Unlimited default.
}

TEST(DeadlineTest, DefaultIsUnlimitedButStillTallies) {
  Deadline deadline;
  EXPECT_TRUE(deadline.unlimited());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(deadline.Spend("stage").ok());
  }
  EXPECT_FALSE(deadline.exhausted());
  EXPECT_EQ(deadline.spent(), 1000.0);
  EXPECT_TRUE(deadline.Check("stage").ok());
}

TEST(DeadlineTest, TheChargeThatCrossesTheLineSucceeds) {
  DeadlineConfig config;
  config.budget = 3.0;
  Deadline deadline(config);
  EXPECT_TRUE(deadline.Spend("a").ok());
  EXPECT_TRUE(deadline.Spend("a").ok());
  // The third charge reaches the budget: the work was already under way,
  // so it succeeds — but the budget is now exhausted.
  EXPECT_TRUE(deadline.Spend("b").ok());
  EXPECT_TRUE(deadline.exhausted());
  Status st = deadline.Spend("c");
  EXPECT_TRUE(st.IsDeadlineExceeded());
  EXPECT_NE(st.message().find("'c'"), std::string::npos);
  EXPECT_EQ(deadline.exhausted_stage(), "c");
  // The failed charge was not booked.
  EXPECT_EQ(deadline.spent(), 3.0);
  EXPECT_EQ(deadline.remaining(), 0.0);
}

TEST(DeadlineTest, CheckDoesNotCharge) {
  DeadlineConfig config;
  config.budget = 2.0;
  Deadline deadline(config);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(deadline.Check("probe").ok());
  EXPECT_EQ(deadline.spent(), 0.0);
  EXPECT_TRUE(deadline.Spend("a").ok());
  EXPECT_TRUE(deadline.Spend("a").ok());
  EXPECT_TRUE(deadline.Check("probe").IsDeadlineExceeded());
}

TEST(DeadlineTest, SpendIsAttributedPerStage) {
  Deadline deadline;
  ASSERT_TRUE(deadline.Spend("web.fetch").ok());
  ASSERT_TRUE(deadline.Spend("web.fetch").ok());
  ASSERT_TRUE(deadline.Spend("dw.etl.load", 3.0).ok());
  const auto& by_stage = deadline.spent_by_stage();
  EXPECT_EQ(by_stage.at("web.fetch"), 2.0);
  EXPECT_EQ(by_stage.at("dw.etl.load"), 3.0);
  EXPECT_EQ(deadline.spent(), 5.0);
}

Status GuardedOperation(Deadline* deadline) {
  DWQA_CHECK_DEADLINE(deadline, "guarded");
  return Status::OK();
}

TEST(DeadlineTest, CheckDeadlineMacroPropagates) {
  EXPECT_TRUE(GuardedOperation(nullptr).ok());  // Null = no deadline.
  Deadline fresh;
  EXPECT_TRUE(GuardedOperation(&fresh).ok());
  DeadlineConfig config;
  config.budget = 0.0;
  Deadline spent(config);
  EXPECT_TRUE(GuardedOperation(&spent).IsDeadlineExceeded());
}

TEST(RetryDeadlineTest, RetryLoopStopsWhenTheBudgetRunsOut) {
  DeadlineConfig config;
  config.budget = 3.0;
  Deadline deadline(config);
  int calls = 0;
  RetryStats stats;
  Status st = RetryCall(
      FastRetry(/*max_attempts=*/5),
      [&]() -> Status {
        ++calls;
        return Status::Unavailable("always transient");
      },
      &stats, &deadline, "flaky.op");
  // The budget admits exactly 3 of the 5 attempts; the 4th is refused.
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_TRUE(st.IsDeadlineExceeded());
  EXPECT_TRUE(deadline.exhausted());
}

TEST(RetryDeadlineTest, BudgetSpentByInnerLoopIsVisibleToTheOuterLoop) {
  DeadlineConfig config;
  config.budget = 4.0;
  Deadline deadline(config);
  // Inner loop burns 4 units on a hopeless operation...
  RetryStats inner_stats;
  Status inner = RetryCall(
      FastRetry(/*max_attempts=*/10),
      [&]() -> Status { return Status::Unavailable("hopeless"); },
      &inner_stats, &deadline, "inner");
  EXPECT_EQ(inner_stats.attempts, 4);
  EXPECT_TRUE(inner.IsDeadlineExceeded());
  // ...so the outer loop, sharing the same Deadline, never runs at all.
  int outer_calls = 0;
  RetryStats outer_stats;
  Status outer = RetryCall(
      FastRetry(),
      [&]() -> Status {
        ++outer_calls;
        return Status::OK();
      },
      &outer_stats, &deadline, "outer");
  EXPECT_EQ(outer_calls, 0);
  EXPECT_EQ(outer_stats.attempts, 0);
  EXPECT_TRUE(outer.IsDeadlineExceeded());
  EXPECT_EQ(deadline.exhausted_stage(), "inner");
}

TEST(RetryDeadlineTest, RetryResultCallSurfacesTheDeadlineError) {
  DeadlineConfig config;
  config.budget = 2.0;
  Deadline deadline(config);
  Result<int> result = RetryResultCall<int>(
      FastRetry(/*max_attempts=*/5),
      [&]() -> Result<int> { return Status::Unavailable("flaky"); },
      nullptr, &deadline, "op");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded());
}

TEST(RetryPolicyValidateTest, BadPoliciesAreRejected) {
  RetryPolicy policy;
  EXPECT_TRUE(policy.Validate().ok());  // Defaults are valid.
  policy.max_attempts = 0;
  EXPECT_TRUE(policy.Validate().IsInvalidArgument());
  policy = RetryPolicy{};
  policy.base_delay_ms = -1.0;
  EXPECT_TRUE(policy.Validate().IsInvalidArgument());
  policy = RetryPolicy{};
  policy.max_delay_ms = -0.5;
  EXPECT_TRUE(policy.Validate().IsInvalidArgument());
  policy = RetryPolicy{};
  policy.backoff_factor = 0.0;
  EXPECT_TRUE(policy.Validate().IsInvalidArgument());
  policy = RetryPolicy{};
  policy.jitter = 1.5;
  EXPECT_TRUE(policy.Validate().IsInvalidArgument());
  policy = RetryPolicy{};
  policy.jitter = -0.1;
  EXPECT_TRUE(policy.Validate().IsInvalidArgument());
}

}  // namespace
}  // namespace dwqa
