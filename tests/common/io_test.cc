#include "common/io.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

namespace dwqa {
namespace {

namespace stdfs = std::filesystem;

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = stdfs::path(::testing::TempDir()) / (std::string("dwqa_io_test.") + std::to_string(::getpid()));
    stdfs::remove_all(dir_);
    stdfs::create_directories(dir_);
  }
  void TearDown() override { stdfs::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  stdfs::path dir_;
};

TEST(Crc32Test, KnownVectors) {
  // The canonical CRC-32 check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_EQ(Crc32Hex("123456789"), "cbf43926");
}

TEST(Crc32Test, SingleBitFlipChangesTheSum) {
  std::string data = "the quick brown fox";
  uint32_t clean = Crc32(data);
  for (size_t i = 0; i < data.size(); ++i) {
    std::string flipped = data;
    flipped[i] ^= 0x01;
    EXPECT_NE(Crc32(flipped), clean) << "flip at byte " << i;
  }
}

TEST_F(IoTest, RealFsRoundTrip) {
  Fs* fs = RealFilesystem();
  ASSERT_TRUE(fs->WriteFile(Path("a.txt"), "hello").ok());
  EXPECT_TRUE(fs->Exists(Path("a.txt")));
  EXPECT_EQ(fs->ReadFile(Path("a.txt")).ValueOrDie(), "hello");
  ASSERT_TRUE(fs->AppendFile(Path("a.txt"), " world").ok());
  EXPECT_EQ(fs->ReadFile(Path("a.txt")).ValueOrDie(), "hello world");
  EXPECT_EQ(fs->FileSize(Path("a.txt")).ValueOrDie(), 11u);
  ASSERT_TRUE(fs->TruncateFile(Path("a.txt"), 5).ok());
  EXPECT_EQ(fs->ReadFile(Path("a.txt")).ValueOrDie(), "hello");
  ASSERT_TRUE(fs->Rename(Path("a.txt"), Path("b.txt")).ok());
  EXPECT_FALSE(fs->Exists(Path("a.txt")));
  EXPECT_TRUE(fs->Exists(Path("b.txt")));
  ASSERT_TRUE(fs->RemoveFile(Path("b.txt")).ok());
  EXPECT_FALSE(fs->Exists(Path("b.txt")));
}

TEST_F(IoTest, ListDirIsSorted) {
  Fs* fs = RealFilesystem();
  ASSERT_TRUE(fs->WriteFile(Path("c"), "").ok());
  ASSERT_TRUE(fs->WriteFile(Path("a"), "").ok());
  ASSERT_TRUE(fs->WriteFile(Path("b"), "").ok());
  auto entries = fs->ListDir(dir_.string()).ValueOrDie();
  EXPECT_EQ(entries, (std::vector<std::string>{"a", "b", "c"}));
}

TEST_F(IoTest, ReadOfMissingFileIsIOError) {
  EXPECT_TRUE(
      RealFilesystem()->ReadFile(Path("ghost")).status().IsIOError());
}

TEST_F(IoTest, WriteFileAtomicReplacesAndLeavesNoTmp) {
  Fs* fs = RealFilesystem();
  ASSERT_TRUE(WriteFileAtomic(fs, Path("x"), "first").ok());
  ASSERT_TRUE(WriteFileAtomic(fs, Path("x"), "second").ok());
  EXPECT_EQ(fs->ReadFile(Path("x")).ValueOrDie(), "second");
  EXPECT_FALSE(fs->Exists(Path("x") + ".tmp"));
}

TEST_F(IoTest, FaultFsRecordsMutatingOpsOnly) {
  FaultFs fs(RealFilesystem());
  ASSERT_TRUE(fs.WriteFile(Path("f"), "data").ok());
  ASSERT_TRUE(fs.AppendFile(Path("f"), "+").ok());
  ASSERT_TRUE(fs.SyncFile(Path("f")).ok());
  // Reads do not book ops: the crash sweep only enumerates writes.
  EXPECT_TRUE(fs.ReadFile(Path("f")).ok());
  EXPECT_TRUE(fs.Exists(Path("f")));
  EXPECT_TRUE(fs.FileSize(Path("f")).ok());
  EXPECT_EQ(fs.op_count(), 3u);
  ASSERT_EQ(fs.op_log().size(), 3u);
  EXPECT_EQ(fs.op_log()[0].substr(0, 6), "write:");
  EXPECT_EQ(fs.op_log()[1].substr(0, 7), "append:");
  EXPECT_EQ(fs.op_log()[2].substr(0, 5), "sync:");
  EXPECT_FALSE(fs.crashed());
}

TEST_F(IoTest, StopCrashDropsTheOpAndKillsTheFs) {
  FaultFs fs(RealFilesystem());
  ASSERT_TRUE(fs.WriteFile(Path("f"), "keep").ok());
  CrashPlan plan;
  plan.crash_at_op = 1;  // The append below (op 0 is the write above... )
  fs.Arm(plan);          // ...but Arm resets the counter: op 0 is next.
  ASSERT_TRUE(fs.WriteFile(Path("g"), "other").ok());
  EXPECT_FALSE(fs.crashed());
  // Op 1: the crashing append. kStop = nothing reaches the disk.
  Status st = fs.AppendFile(Path("f"), "lost");
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_TRUE(fs.crashed());
  EXPECT_EQ(RealFilesystem()->ReadFile(Path("f")).ValueOrDie(), "keep");
  // Every later mutating op fails; reads still work (recovery needs them).
  EXPECT_TRUE(fs.WriteFile(Path("h"), "x").IsIOError());
  EXPECT_TRUE(fs.SyncFile(Path("f")).IsIOError());
  EXPECT_TRUE(fs.Rename(Path("f"), Path("i")).IsIOError());
  EXPECT_TRUE(fs.ReadFile(Path("f")).ok());
}

TEST_F(IoTest, TornWriteLandsAStrictPrefix) {
  FaultFs fs(RealFilesystem());
  CrashPlan plan;
  plan.crash_at_op = 0;
  plan.mode = CrashMode::kTornWrite;
  fs.Arm(plan);
  std::string data(100, 'x');
  EXPECT_TRUE(fs.AppendFile(Path("torn"), data).IsIOError());
  EXPECT_TRUE(fs.crashed());
  std::string landed =
      RealFilesystem()->Exists(Path("torn"))
          ? RealFilesystem()->ReadFile(Path("torn")).ValueOrDie()
          : "";
  EXPECT_LT(landed.size(), data.size());
  EXPECT_EQ(landed, data.substr(0, landed.size()));
}

TEST_F(IoTest, BitFlipCorruptsExactlyOneBit) {
  FaultFs fs(RealFilesystem());
  CrashPlan plan;
  plan.crash_at_op = 0;
  plan.mode = CrashMode::kBitFlip;
  fs.Arm(plan);
  std::string data = "checksums must catch this";
  EXPECT_TRUE(fs.WriteFile(Path("flip"), data).IsIOError());
  std::string landed = RealFilesystem()->ReadFile(Path("flip")).ValueOrDie();
  ASSERT_EQ(landed.size(), data.size());
  size_t differing_bits = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    uint8_t diff = uint8_t(data[i]) ^ uint8_t(landed[i]);
    while (diff != 0) {
      differing_bits += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(differing_bits, 1u);
  EXPECT_NE(Crc32(landed), Crc32(data));
}

TEST_F(IoTest, RecorderPlanNeverCrashes) {
  FaultFs fs(RealFilesystem());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(fs.AppendFile(Path("busy"), "x").ok());
  }
  EXPECT_FALSE(fs.crashed());
  EXPECT_EQ(fs.op_count(), 50u);
}

}  // namespace
}  // namespace dwqa
