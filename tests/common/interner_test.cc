#include "common/interner.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace dwqa {
namespace {

TEST(TermDictionaryTest, InternAssignsDenseFirstSeenIds) {
  TermDictionary dict;
  EXPECT_EQ(dict.Intern("barcelona"), 0u);
  EXPECT_EQ(dict.Intern("weather"), 1u);
  EXPECT_EQ(dict.Intern("temperature"), 2u);
  EXPECT_EQ(dict.size(), 3u);
}

TEST(TermDictionaryTest, InternIsIdempotent) {
  TermDictionary dict;
  TermId id = dict.Intern("madrid");
  EXPECT_EQ(dict.Intern("madrid"), id);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(TermDictionaryTest, FindNeverGrowsTheDictionary) {
  TermDictionary dict;
  dict.Intern("known");
  EXPECT_EQ(dict.Find("unknown"), kInvalidTermId);
  EXPECT_EQ(dict.size(), 1u);
  EXPECT_EQ(dict.Find("known"), 0u);
}

TEST(TermDictionaryTest, TermRoundTrips) {
  TermDictionary dict;
  TermId a = dict.Intern("alpha");
  TermId b = dict.Intern("beta");
  EXPECT_EQ(dict.Term(a), "alpha");
  EXPECT_EQ(dict.Term(b), "beta");
}

TEST(TermDictionaryTest, TermAddressesSurviveRehash) {
  TermDictionary dict;
  TermId first = dict.Intern("first");
  const std::string* before = &dict.Term(first);
  // Enough inserts to force several rehashes of the underlying map.
  for (int i = 0; i < 5000; ++i) {
    dict.Intern("term" + std::to_string(i));
  }
  EXPECT_EQ(before, &dict.Term(first));
  EXPECT_EQ(*before, "first");
}

TEST(TermDictionaryTest, IdsStayValidAcrossManyInterns) {
  TermDictionary dict;
  std::vector<TermId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(dict.Intern("t" + std::to_string(i)));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(dict.Term(ids[size_t(i)]), "t" + std::to_string(i));
    EXPECT_EQ(dict.Find("t" + std::to_string(i)), ids[size_t(i)]);
  }
}

}  // namespace
}  // namespace dwqa
