// Serial↔parallel equivalence of the off-line indexation merge:
// AnalyzedCorpus::AddBatch on a pool must produce the same dictionary ids
// (dense, first-seen-in-document-order), the same cached analyses and the
// same sentence accounting as document-by-document Add() — for any worker
// count, because the serial merge replays the exact intern order of the
// serial path.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "text/analyzed_corpus.h"

namespace dwqa {
namespace text {
namespace {

/// A small corpus with heavy cross-document vocabulary overlap (the worst
/// case for interning order) plus per-document unique terms.
std::vector<std::string> TestDocuments() {
  return {
      "The temperature in Barcelona was 8 degrees.\n"
      "Saturday, January 31, 2004 was clear in Barcelona.\n",
      "The temperature in Madrid was 5 degrees.\n"
      "The weather in Madrid was cloudy on Sunday, February 1, 2004.\n",
      "Iraq invaded Kuwait in 1990.\nThe invasion started a war.\n",
      "The airline flies to Kennedy International Airport.\n"
      "JFK serves New York City.\n",
      "The temperature in Valencia reached 21 degrees on a sunny day.\n",
      "Snow fell in the mountains.\nThe roads were closed by the snow.\n",
  };
}

void ExpectDocumentsEqual(const AnalyzedDocument& a,
                          const AnalyzedDocument& b) {
  EXPECT_EQ(a.plain, b.plain);
  EXPECT_EQ(a.token_count, b.token_count);
  EXPECT_EQ(a.lemma_set, b.lemma_set);
  ASSERT_EQ(a.sentences.size(), b.sentences.size());
  for (size_t s = 0; s < a.sentences.size(); ++s) {
    const AnalyzedSentence& sa = a.sentences[s];
    const AnalyzedSentence& sb = b.sentences[s];
    EXPECT_EQ(sa.text, sb.text);
    EXPECT_EQ(sa.token_ids, sb.token_ids) << "sentence " << s;
    EXPECT_EQ(sa.lemma_ids, sb.lemma_ids) << "sentence " << s;
    EXPECT_EQ(sa.lemma_set, sb.lemma_set) << "sentence " << s;
    EXPECT_EQ(sa.tokens.size(), sb.tokens.size());
    EXPECT_EQ(sa.blocks.size(), sb.blocks.size());
    EXPECT_EQ(sa.dates.size(), sb.dates.size());
  }
}

void ExpectBatchMatchesSerial(size_t threads) {
  std::vector<std::string> plains = TestDocuments();
  std::vector<AnalyzedCorpus::DocKey> keys;
  for (size_t i = 0; i < plains.size(); ++i) {
    keys.push_back(AnalyzedCorpus::DocKey(i));
  }

  AnalyzedCorpus serial;
  for (size_t i = 0; i < plains.size(); ++i) {
    serial.Add(keys[i], plains[i]);
  }

  AnalyzedCorpus batched;
  ThreadPool pool(threads);
  batched.AddBatch(keys, plains, &pool);

  EXPECT_EQ(batched.document_count(), serial.document_count());
  EXPECT_EQ(batched.sentence_count(), serial.sentence_count());
  // The dictionaries assign the same dense id to the same string — not just
  // the same size, the same numbering.
  ASSERT_EQ(batched.dictionary().size(), serial.dictionary().size());
  for (TermId id = 0; id < TermId(serial.dictionary().size()); ++id) {
    EXPECT_EQ(batched.dictionary().Term(id), serial.dictionary().Term(id))
        << "id " << id << " with " << threads << " threads";
  }
  for (AnalyzedCorpus::DocKey key : keys) {
    const AnalyzedDocument* a = serial.Find(key);
    const AnalyzedDocument* b = batched.Find(key);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    ExpectDocumentsEqual(*a, *b);
  }
}

TEST(ParallelIndexationTest, InlinePoolMatchesSerialAdd) {
  ExpectBatchMatchesSerial(1);
}

TEST(ParallelIndexationTest, TwoWorkersMatchSerialAdd) {
  ExpectBatchMatchesSerial(2);
}

TEST(ParallelIndexationTest, FourWorkersMatchSerialAdd) {
  ExpectBatchMatchesSerial(4);
}

TEST(ParallelIndexationTest, MoreWorkersThanDocumentsMatchSerialAdd) {
  ExpectBatchMatchesSerial(16);
}

TEST(ParallelIndexationTest, BatchReplacesPreviousAnalyses) {
  // AddBatch has Add()'s replace semantics: re-adding a key swaps the
  // analysis and keeps the sentence accounting straight.
  AnalyzedCorpus corpus;
  corpus.Add(0, "One sentence.\n");
  corpus.Add(1, "First.\nSecond.\n");
  ASSERT_EQ(corpus.sentence_count(), 3u);
  ThreadPool pool(2);
  corpus.AddBatch({0, 2}, {"Now two.\nSentences here.\n", "Third doc.\n"},
                  &pool);
  EXPECT_EQ(corpus.document_count(), 3u);
  EXPECT_EQ(corpus.sentence_count(), 5u);
  ASSERT_NE(corpus.Find(0), nullptr);
  EXPECT_EQ(corpus.Find(0)->sentences.size(), 2u);
}

TEST(ParallelIndexationTest, EmptyBatchIsANoOp) {
  AnalyzedCorpus corpus;
  ThreadPool pool(4);
  corpus.AddBatch({}, {}, &pool);
  EXPECT_EQ(corpus.document_count(), 0u);
  EXPECT_EQ(corpus.dictionary().size(), 0u);
}

}  // namespace
}  // namespace text
}  // namespace dwqa
