#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace dwqa {
namespace text {
namespace {

std::vector<std::string> Surface(const TokenSequence& toks) {
  std::vector<std::string> out;
  for (const Token& t : toks) out.push_back(t.text);
  return out;
}

TEST(TokenizerTest, SimpleSentence) {
  auto toks = Tokenizer::Tokenize("The weather is clear today.");
  EXPECT_EQ(Surface(toks), (std::vector<std::string>{
                               "The", "weather", "is", "clear", "today",
                               "."}));
}

TEST(TokenizerTest, LowercaseFilledIn) {
  auto toks = Tokenizer::Tokenize("Barcelona Weather");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].lower, "barcelona");
  EXPECT_EQ(toks[1].lower, "weather");
}

TEST(TokenizerTest, DegreeSignIsItsOwnToken) {
  // The Table 1 shape: "8ºC" → "8", "º", "C".
  auto toks = Tokenizer::Tokenize("Temperature 8\xC2\xBA\x43 today");
  EXPECT_EQ(Surface(toks), (std::vector<std::string>{
                               "Temperature", "8", "\xC2\xBA", "C",
                               "today"}));
}

TEST(TokenizerTest, DegreeSignU00B0Normalized) {
  auto toks = Tokenizer::Tokenize("8\xC2\xB0\x43");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[1].text, "\xC2\xBA");  // Normalized to U+00BA.
}

TEST(TokenizerTest, DecimalsStayTogether) {
  auto toks = Tokenizer::Tokenize("around 46.4 F");
  EXPECT_EQ(Surface(toks), (std::vector<std::string>{"around", "46.4",
                                                     "F"}));
}

TEST(TokenizerTest, OrdinalsStayTogether) {
  auto toks = Tokenizer::Tokenize("the 12th of May");
  EXPECT_EQ(Surface(toks),
            (std::vector<std::string>{"the", "12th", "of", "May"}));
}

TEST(TokenizerTest, SentenceFinalPeriodSplitsFromNumber) {
  auto toks = Tokenizer::Tokenize("It was 8.");
  EXPECT_EQ(Surface(toks), (std::vector<std::string>{"It", "was", "8",
                                                     "."}));
}

TEST(TokenizerTest, PunctuationIsolated) {
  auto toks = Tokenizer::Tokenize("Weather: 8, cold?");
  EXPECT_EQ(Surface(toks), (std::vector<std::string>{"Weather", ":", "8",
                                                     ",", "cold", "?"}));
}

TEST(TokenizerTest, HyphenatedWordsKeptTogether) {
  auto toks = Tokenizer::Tokenize("cross-lingual question answering");
  EXPECT_EQ(toks[0].text, "cross-lingual");
}

TEST(TokenizerTest, TrailingHyphenNotSwallowed) {
  auto toks = Tokenizer::Tokenize("pre- and post-war");
  EXPECT_EQ(Surface(toks), (std::vector<std::string>{"pre", "-", "and",
                                                     "post-war"}));
}

TEST(TokenizerTest, NegativeNumbers) {
  auto toks = Tokenizer::Tokenize("It was -3.5 degrees");
  EXPECT_EQ(toks[2].text, "-3.5");
}

TEST(TokenizerTest, OffsetsCoverOriginal) {
  std::string input = "Barcelona Weather: 8\xC2\xBA\x43";
  auto toks = Tokenizer::Tokenize(input);
  for (const Token& t : toks) {
    ASSERT_LE(t.end, input.size());
    EXPECT_EQ(input.substr(t.begin, t.end - t.begin),
              t.text == "\xC2\xBA" ? std::string("\xC2\xBA") : t.text);
  }
  // Offsets strictly increase.
  for (size_t i = 1; i < toks.size(); ++i) {
    EXPECT_GE(toks[i].begin, toks[i - 1].end);
  }
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(Tokenizer::Tokenize("").empty());
  EXPECT_TRUE(Tokenizer::Tokenize("  \t\n ").empty());
}

TEST(TokenizerTest, DollarSign) {
  auto toks = Tokenizer::Tokenize("$99 fare");
  EXPECT_EQ(Surface(toks), (std::vector<std::string>{"$", "99", "fare"}));
}

}  // namespace
}  // namespace text
}  // namespace dwqa
