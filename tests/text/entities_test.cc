#include "text/entities.h"

#include <gtest/gtest.h>

#include "text/pos_tagger.h"
#include "text/tokenizer.h"

namespace dwqa {
namespace text {
namespace {

TokenSequence Tag(const std::string& s) {
  TokenSequence toks = Tokenizer::Tokenize(s);
  PosTagger tagger;
  tagger.Tag(&toks);
  return toks;
}

TEST(EntitiesDateTest, FullDateWithComma) {
  auto dates = EntityRecognizer::FindDates(Tag("January 31, 2004 was cold"));
  ASSERT_EQ(dates.size(), 1u);
  EXPECT_TRUE(dates[0].IsComplete());
  EXPECT_EQ(dates[0].date, Date(2004, 1, 31));
  EXPECT_EQ(dates[0].text, "January 31 , 2004");
}

TEST(EntitiesDateTest, MonthOfYear) {
  auto dates = EntityRecognizer::FindDates(Tag("in January of 2004"));
  ASSERT_EQ(dates.size(), 1u);
  EXPECT_TRUE(dates[0].has_month);
  EXPECT_TRUE(dates[0].has_year);
  EXPECT_FALSE(dates[0].has_day);
  EXPECT_EQ(dates[0].date.month(), 1);
  EXPECT_EQ(dates[0].date.year(), 2004);
}

TEST(EntitiesDateTest, MonthYearWithoutOf) {
  auto dates = EntityRecognizer::FindDates(Tag("May 1997 was rainy"));
  ASSERT_EQ(dates.size(), 1u);
  EXPECT_EQ(dates[0].date.month(), 5);
  EXPECT_EQ(dates[0].date.year(), 1997);
  EXPECT_FALSE(dates[0].has_day);
}

TEST(EntitiesDateTest, OrdinalOfMonthYear) {
  // "the 12th of May, 1997" (paper §3, Step 4 example).
  auto dates =
      EntityRecognizer::FindDates(Tag("on the 12th of May, 1997 it rained"));
  ASSERT_EQ(dates.size(), 1u);
  EXPECT_TRUE(dates[0].IsComplete());
  EXPECT_EQ(dates[0].date, Date(1997, 5, 12));
}

TEST(EntitiesDateTest, MonthDayWithoutYear) {
  auto dates = EntityRecognizer::FindDates(Tag("on January 5 it snowed"));
  ASSERT_EQ(dates.size(), 1u);
  EXPECT_TRUE(dates[0].has_day);
  EXPECT_FALSE(dates[0].has_year);
  EXPECT_EQ(dates[0].date.day(), 5);
}

TEST(EntitiesDateTest, ImpossibleDateRejected) {
  auto dates = EntityRecognizer::FindDates(Tag("February 30, 2004"));
  EXPECT_TRUE(dates.empty());
}

TEST(EntitiesDateTest, YearAloneIsNotADate) {
  auto dates = EntityRecognizer::FindDates(Tag("It happened in 1990."));
  EXPECT_TRUE(dates.empty());
}

TEST(EntitiesDateTest, MultipleDates) {
  auto dates = EntityRecognizer::FindDates(
      Tag("January 30, 2004 and January 31, 2004"));
  ASSERT_EQ(dates.size(), 2u);
  EXPECT_EQ(dates[0].date.day(), 30);
  EXPECT_EQ(dates[1].date.day(), 31);
}

TEST(EntitiesTemperatureTest, DegreeSignWithScale) {
  auto temps = EntityRecognizer::FindTemperatures(
      Tag("Temperature 8\xC2\xBA\x43 today"));
  ASSERT_EQ(temps.size(), 1u);
  EXPECT_DOUBLE_EQ(temps[0].value, 8.0);
  EXPECT_EQ(temps[0].scale, 'C');
}

TEST(EntitiesTemperatureTest, SpacedDegreeSign) {
  auto temps =
      EntityRecognizer::FindTemperatures(Tag("Temperature 8 \xC2\xBA C"));
  ASSERT_EQ(temps.size(), 1u);
  EXPECT_EQ(temps[0].scale, 'C');
}

TEST(EntitiesTemperatureTest, FahrenheitLetterAfterNumber) {
  auto temps = EntityRecognizer::FindTemperatures(Tag("around 46.4 F Clear"));
  ASSERT_EQ(temps.size(), 1u);
  EXPECT_DOUBLE_EQ(temps[0].value, 46.4);
  EXPECT_EQ(temps[0].scale, 'F');
}

TEST(EntitiesTemperatureTest, DegreesCelsiusWords) {
  auto temps =
      EntityRecognizer::FindTemperatures(Tag("about 21 degrees Celsius"));
  ASSERT_EQ(temps.size(), 1u);
  EXPECT_EQ(temps[0].scale, 'C');
}

TEST(EntitiesTemperatureTest, BareDegreeSignUnknownScale) {
  // The Figure 5 failure mode: number + º with no scale letter.
  auto temps = EntityRecognizer::FindTemperatures(Tag("high of 12\xC2\xBA"));
  ASSERT_EQ(temps.size(), 1u);
  EXPECT_EQ(temps[0].scale, '?');
}

TEST(EntitiesTemperatureTest, PlainNumberIsNotATemperature) {
  auto temps = EntityRecognizer::FindTemperatures(Tag("He bought 8 tickets"));
  EXPECT_TRUE(temps.empty());
}

TEST(EntitiesTemperatureTest, NegativeTemperature) {
  auto temps = EntityRecognizer::FindTemperatures(Tag("it was -5 \xC2\xBA C"));
  ASSERT_EQ(temps.size(), 1u);
  EXPECT_DOUBLE_EQ(temps[0].value, -5.0);
}

TEST(EntitiesMoneyTest, NumberCurrencyWord) {
  auto money = EntityRecognizer::FindMoney(Tag("the ticket is 120 euros"));
  ASSERT_EQ(money.size(), 1u);
  EXPECT_DOUBLE_EQ(money[0].value, 120.0);
  EXPECT_EQ(money[0].currency, "EUR");
}

TEST(EntitiesMoneyTest, DollarSignPrefix) {
  auto money = EntityRecognizer::FindMoney(Tag("a fare of $ 99 only"));
  ASSERT_EQ(money.size(), 1u);
  EXPECT_DOUBLE_EQ(money[0].value, 99.0);
  EXPECT_EQ(money[0].currency, "USD");
}

TEST(EntitiesPercentTest, PercentWordAndSign) {
  auto p1 = EntityRecognizer::FindPercents(Tag("grew by 12 percent"));
  ASSERT_EQ(p1.size(), 1u);
  EXPECT_DOUBLE_EQ(p1[0].value, 12.0);
  auto p2 = EntityRecognizer::FindPercents(Tag("grew by 12 %"));
  ASSERT_EQ(p2.size(), 1u);
}

TEST(EntitiesNumberTest, FindsAllCardinals) {
  auto nums = EntityRecognizer::FindNumbers(Tag("8 of 120 seats on 2 days"));
  ASSERT_EQ(nums.size(), 3u);
  EXPECT_DOUBLE_EQ(nums[1].value, 120.0);
}

TEST(EntitiesProperNounTest, MaximalRuns) {
  auto pns = EntityRecognizer::FindProperNouns(
      Tag("El Prat serves Barcelona and Madrid"));
  ASSERT_EQ(pns.size(), 3u);
  EXPECT_EQ(pns[0].text, "El Prat");
  EXPECT_EQ(pns[1].text, "Barcelona");
  EXPECT_EQ(pns[2].text, "Madrid");
}

TEST(EntitiesProperNounTest, MonthsAndWeekdaysExcluded) {
  auto pns = EntityRecognizer::FindProperNouns(
      Tag("Monday January Barcelona"));
  ASSERT_EQ(pns.size(), 1u);
  EXPECT_EQ(pns[0].text, "Barcelona");
}

TEST(EntitiesHelpersTest, MonthWeekdayYearPredicates) {
  EXPECT_TRUE(EntityRecognizer::IsMonthName("january"));
  EXPECT_FALSE(EntityRecognizer::IsMonthName("janua"));
  EXPECT_TRUE(EntityRecognizer::IsWeekdayName("sunday"));
  EXPECT_FALSE(EntityRecognizer::IsWeekdayName("someday"));
  Token year("2004", 0, 4);
  year.lower = "2004";
  year.tag = "CD";
  EXPECT_TRUE(EntityRecognizer::LooksLikeYear(year));
  Token small("31", 0, 2);
  small.lower = "31";
  small.tag = "CD";
  EXPECT_FALSE(EntityRecognizer::LooksLikeYear(small));
}

}  // namespace
}  // namespace text
}  // namespace dwqa
