#include "text/pos_tagger.h"

#include <gtest/gtest.h>

#include "text/tokenizer.h"

namespace dwqa {
namespace text {
namespace {

TokenSequence Tag(const std::string& s) {
  TokenSequence toks = Tokenizer::Tokenize(s);
  PosTagger tagger;
  tagger.Tag(&toks);
  return toks;
}

const Token& Find(const TokenSequence& toks, const std::string& surface) {
  for (const Token& t : toks) {
    if (t.text == surface) return t;
  }
  ADD_FAILURE() << "token '" << surface << "' not found";
  static Token dummy;
  return dummy;
}

TEST(PosTaggerTest, Table1QuestionTags) {
  // "What WP ... is VBZBE be ... the DT ... weather NN ... in IN ...
  //  January NP ... of OF ... 2004 CD ... ? SENT" (paper Table 1).
  auto toks = Tag("What is the weather like in January of 2004 in El Prat?");
  EXPECT_EQ(Find(toks, "What").tag, "WP");
  EXPECT_EQ(Find(toks, "is").tag, "VBZBE");
  EXPECT_EQ(Find(toks, "is").lemma, "be");
  EXPECT_EQ(Find(toks, "the").tag, "DT");
  EXPECT_EQ(Find(toks, "weather").tag, "NN");
  EXPECT_EQ(Find(toks, "like").tag, "IN");
  EXPECT_EQ(Find(toks, "January").tag, "NP");
  EXPECT_EQ(Find(toks, "January").lemma, "january");
  EXPECT_EQ(Find(toks, "of").tag, "OF");
  EXPECT_EQ(Find(toks, "2004").tag, "CD");
  EXPECT_EQ(Find(toks, "El").tag, "NP");
  EXPECT_EQ(Find(toks, "Prat").tag, "NP");
  EXPECT_EQ(Find(toks, "?").tag, "SENT");
}

TEST(PosTaggerTest, Table1PassageTags) {
  auto toks = Tag(
      "Monday, January 31, 2004 Barcelona Weather: Temperature 8\xC2\xBA\x43 "
      "around 46.4 F Clear skies today");
  EXPECT_EQ(Find(toks, "Monday").tag, "NP");
  EXPECT_EQ(Find(toks, "31").tag, "CD");
  EXPECT_EQ(Find(toks, "Barcelona").tag, "NP");
  EXPECT_EQ(Find(toks, "Temperature").tag, "NN");
  EXPECT_EQ(Find(toks, "8").tag, "CD");
  EXPECT_EQ(Find(toks, "\xC2\xBA").tag, "NN");  // "º NN º" in the paper.
  EXPECT_EQ(Find(toks, "C").tag, "NP");
  EXPECT_EQ(Find(toks, "46.4").tag, "CD");
  EXPECT_EQ(Find(toks, "F").tag, "NP");
  EXPECT_EQ(Find(toks, "skies").tag, "NNS");
  EXPECT_EQ(Find(toks, "skies").lemma, "sky");
}

TEST(PosTaggerTest, UnknownCapitalizedIsProperNoun) {
  auto toks = Tag("Fiumicino serves Rome");
  EXPECT_EQ(Find(toks, "Fiumicino").tag, "NP");
}

TEST(PosTaggerTest, OrdinalTagAndLemma) {
  auto toks = Tag("the 12th of May");
  EXPECT_EQ(Find(toks, "12th").tag, "OD");
  EXPECT_EQ(Find(toks, "12th").lemma, "12");
}

TEST(PosTaggerTest, SuffixRules) {
  auto toks = Tag("quickly running invaded happiness optional");
  EXPECT_EQ(Find(toks, "quickly").tag, "RB");
  EXPECT_EQ(Find(toks, "running").tag, "VBG");
  EXPECT_EQ(Find(toks, "invaded").tag, "VBD");
  EXPECT_EQ(Find(toks, "happiness").tag, "NN");
  EXPECT_EQ(Find(toks, "optional").tag, "JJ");
}

TEST(PosTaggerTest, UnknownPluralIsNns) {
  auto toks = Tag("the gizmos work");
  EXPECT_EQ(Find(toks, "gizmos").tag, "NNS");
  EXPECT_EQ(Find(toks, "gizmos").lemma, "gizmo");
}

TEST(PosTaggerTest, IrregularVerbLemmas) {
  auto toks = Tag("he sold tickets and flew home");
  EXPECT_EQ(Find(toks, "sold").lemma, "sell");
  EXPECT_EQ(Find(toks, "flew").lemma, "fly");
}

TEST(PosTaggerTest, WhWords) {
  EXPECT_EQ(Find(Tag("Which country"), "Which").tag, "WDT");
  EXPECT_EQ(Find(Tag("Who came"), "Who").tag, "WP");
  EXPECT_EQ(Find(Tag("Where is it"), "Where").tag, "WRB");
  EXPECT_EQ(Find(Tag("How many"), "How").tag, "WRB");
}

TEST(PosTaggerTest, MidSentencePeriodVsFinal) {
  auto toks = Tag("It works.");
  EXPECT_EQ(toks.back().tag, "SENT");
}

TEST(PosTaggerTest, CustomLexiconOverrides) {
  Lexicon lex;  // Empty lexicon: even "the" becomes unknown.
  lex.Add("zorp", "VB", "zorp");
  PosTagger tagger(&lex);
  TokenSequence toks = Tokenizer::Tokenize("zorp the thing");
  tagger.Tag(&toks);
  EXPECT_EQ(toks[0].tag, "VB");
  EXPECT_EQ(toks[1].tag, "NN");  // "the" unknown here → default NN.
}

TEST(PosTaggerPostPassTest, CapitalizedAdjectiveJoinsProperNoun) {
  // "New" is a lexicon adjective but part of the name in "New York".
  TokenSequence toks = Tokenizer::Tokenize("He flew to New York today");
  PosTagger tagger;
  tagger.Tag(&toks);
  for (const Token& t : toks) {
    if (t.text == "New") EXPECT_EQ(t.tag, "NP");
    if (t.text == "York") EXPECT_EQ(t.tag, "NP");
  }
}

TEST(PosTaggerPostPassTest, LowercaseAdjectiveUntouched) {
  TokenSequence toks = Tokenizer::Tokenize("the new Barcelona terminal");
  PosTagger tagger;
  tagger.Tag(&toks);
  EXPECT_EQ(toks[1].tag, "JJ");  // "new" stays an adjective.
}

}  // namespace
}  // namespace text
}  // namespace dwqa
