#include "text/sentence_splitter.h"

#include <gtest/gtest.h>

namespace dwqa {
namespace text {
namespace {

TEST(SentenceSplitterTest, SplitsOnPeriods) {
  auto sents = SentenceSplitter::Split("First one. Second one. Third.");
  ASSERT_EQ(sents.size(), 3u);
  EXPECT_EQ(sents[0], "First one.");
  EXPECT_EQ(sents[2], "Third.");
}

TEST(SentenceSplitterTest, SplitsOnQuestionAndExclamation) {
  auto sents = SentenceSplitter::Split("Really? Yes! Fine.");
  ASSERT_EQ(sents.size(), 3u);
  EXPECT_EQ(sents[0], "Really?");
  EXPECT_EQ(sents[1], "Yes!");
}

TEST(SentenceSplitterTest, NewlineEndsSentence) {
  // The line-oriented weather pages: each line is one sentence.
  auto sents = SentenceSplitter::Split(
      "Monday, January 31, 2004\nBarcelona Weather: Temperature 8ºC");
  ASSERT_EQ(sents.size(), 2u);
  EXPECT_EQ(sents[0], "Monday, January 31, 2004");
}

TEST(SentenceSplitterTest, DecimalNumbersDoNotSplit) {
  auto sents = SentenceSplitter::Split("It was 46.4 F today. Cold.");
  ASSERT_EQ(sents.size(), 2u);
  EXPECT_EQ(sents[0], "It was 46.4 F today.");
}

TEST(SentenceSplitterTest, AbbreviationsDoNotSplit) {
  auto sents = SentenceSplitter::Split("Dr. Smith arrived. He left.");
  ASSERT_EQ(sents.size(), 2u);
  EXPECT_EQ(sents[0], "Dr. Smith arrived.");
}

TEST(SentenceSplitterTest, SingleLetterAbbreviation) {
  auto sents = SentenceSplitter::Split("The U.S. economy grew. Indeed.");
  ASSERT_EQ(sents.size(), 2u);
}

TEST(SentenceSplitterTest, EmptyAndBlankLines) {
  EXPECT_TRUE(SentenceSplitter::Split("").empty());
  EXPECT_TRUE(SentenceSplitter::Split("\n\n  \n").empty());
}

TEST(SentenceSplitterTest, TrailingTextWithoutTerminatorKept) {
  auto sents = SentenceSplitter::Split("Complete. trailing fragment");
  ASSERT_EQ(sents.size(), 2u);
  EXPECT_EQ(sents[1], "trailing fragment");
}

TEST(SentenceSplitterTest, WhitespaceTrimmed) {
  auto sents = SentenceSplitter::Split("   padded.   \n  next  ");
  ASSERT_EQ(sents.size(), 2u);
  EXPECT_EQ(sents[0], "padded.");
  EXPECT_EQ(sents[1], "next");
}

}  // namespace
}  // namespace text
}  // namespace dwqa
