#include "text/analyzed_corpus.h"

#include <gtest/gtest.h>

#include "common/string_util.h"

namespace dwqa {
namespace text {
namespace {

TEST(CorpusAnalyzerTest, SentenceFieldsAreParallelToTokens) {
  TermDictionary dict;
  CorpusAnalyzer analyzer(&dict);
  AnalyzedSentence s =
      analyzer.AnalyzeSentence("The temperature in Barcelona was 8 degrees.");
  ASSERT_FALSE(s.tokens.empty());
  EXPECT_EQ(s.token_ids.size(), s.tokens.size());
  EXPECT_EQ(s.lemma_ids.size(), s.tokens.size());
  for (size_t i = 0; i < s.tokens.size(); ++i) {
    EXPECT_EQ(dict.Term(s.token_ids[i]), ToLower(s.tokens[i].text));
    EXPECT_EQ(dict.Term(s.lemma_ids[i]), s.tokens[i].lemma);
    EXPECT_TRUE(s.lemma_set.count(s.lemma_ids[i]));
  }
}

TEST(CorpusAnalyzerTest, ChunkOptionControlsSyntacticBlocks) {
  TermDictionary dict;
  CorpusAnalyzer chunked(&dict, {.chunk = true});
  CorpusAnalyzer flat(&dict, {.chunk = false});
  const char kSentence[] = "The weather in Madrid was cloudy.";
  EXPECT_FALSE(chunked.AnalyzeSentence(kSentence).blocks.empty());
  EXPECT_TRUE(flat.AnalyzeSentence(kSentence).blocks.empty());
}

TEST(CorpusAnalyzerTest, DateMentionsAreCached) {
  TermDictionary dict;
  CorpusAnalyzer analyzer(&dict);
  AnalyzedSentence s =
      analyzer.AnalyzeSentence("Saturday, January 31, 2004 was clear.");
  ASSERT_FALSE(s.dates.empty());
}

TEST(CorpusAnalyzerTest, DocumentSplitsIntoSentences) {
  TermDictionary dict;
  CorpusAnalyzer analyzer(&dict);
  AnalyzedDocument doc = analyzer.AnalyzeDocument(
      "Iraq invaded Kuwait in 1990.\nThe invasion started a war.\n");
  EXPECT_EQ(doc.sentences.size(), 2u);
  EXPECT_GT(doc.token_count, 0u);
  // The document lemma set is the union of the sentence sets.
  for (const AnalyzedSentence& s : doc.sentences) {
    for (TermId id : s.lemma_set) {
      EXPECT_TRUE(doc.lemma_set.count(id));
    }
  }
}

TEST(AnalyzedCorpusTest, AddFindContains) {
  AnalyzedCorpus corpus;
  EXPECT_FALSE(corpus.Contains(7));
  EXPECT_EQ(corpus.Find(7), nullptr);
  const AnalyzedDocument& doc = corpus.Add(7, "One sentence here.");
  EXPECT_TRUE(corpus.Contains(7));
  EXPECT_EQ(corpus.Find(7), &doc);
  EXPECT_EQ(doc.plain, "One sentence here.");
  EXPECT_EQ(corpus.document_count(), 1u);
  EXPECT_EQ(corpus.sentence_count(), 1u);
}

TEST(AnalyzedCorpusTest, ReAddingADocReplacesItsSentenceCount) {
  AnalyzedCorpus corpus;
  corpus.Add(1, "First.\nSecond.\nThird.");
  EXPECT_EQ(corpus.sentence_count(), 3u);
  corpus.Add(1, "Only one now.");
  EXPECT_EQ(corpus.document_count(), 1u);
  EXPECT_EQ(corpus.sentence_count(), 1u);
}

TEST(AnalyzedCorpusTest, ClearResetsDictionaryInPlace) {
  AnalyzedCorpus corpus;
  TermDictionary* dict = corpus.mutable_dictionary();
  corpus.Add(1, "Barcelona weather was clear.");
  EXPECT_GT(dict->size(), 0u);
  corpus.Clear();
  // Borrowed pointers stay valid and observe the emptied dictionary.
  EXPECT_EQ(corpus.mutable_dictionary(), dict);
  EXPECT_EQ(dict->size(), 0u);
  EXPECT_EQ(corpus.document_count(), 0u);
  EXPECT_EQ(corpus.sentence_count(), 0u);
}

TEST(AnalyzedCorpusTest, DictionaryPointerSurvivesMove) {
  AnalyzedCorpus corpus;
  corpus.Add(1, "Madrid is in Spain.");
  TermDictionary* dict = corpus.mutable_dictionary();
  AnalyzedCorpus moved = std::move(corpus);
  EXPECT_EQ(moved.mutable_dictionary(), dict);
  ASSERT_NE(moved.Find(1), nullptr);
  EXPECT_EQ(moved.Find(1)->plain, "Madrid is in Spain.");
}

}  // namespace
}  // namespace text
}  // namespace dwqa
