#include "text/lemmatizer.h"

#include <gtest/gtest.h>

namespace dwqa {
namespace text {
namespace {

TEST(LemmatizerTest, PluralNouns) {
  EXPECT_EQ(Lemmatizer::Lemmatize("cities", "NNS"), "city");
  EXPECT_EQ(Lemmatizer::Lemmatize("temperatures", "NNS"), "temperature");
  EXPECT_EQ(Lemmatizer::Lemmatize("churches", "NNS"), "church");
  EXPECT_EQ(Lemmatizer::Lemmatize("boxes", "NNS"), "box");
  EXPECT_EQ(Lemmatizer::Lemmatize("classes", "NNS"), "class");
  EXPECT_EQ(Lemmatizer::Lemmatize("miles", "NNS"), "mile");
}

TEST(LemmatizerTest, PluralEdgeCasesNotStripped) {
  // -ss, -us, -is endings are not plural 's'.
  EXPECT_EQ(Lemmatizer::Lemmatize("glass", "NNS"), "glass");
  EXPECT_EQ(Lemmatizer::Lemmatize("status", "NNS"), "status");
  EXPECT_EQ(Lemmatizer::Lemmatize("analysis", "NNS"), "analysis");
}

TEST(LemmatizerTest, ThirdPersonVerbs) {
  EXPECT_EQ(Lemmatizer::Lemmatize("operates", "VBZ"), "operate");
  EXPECT_EQ(Lemmatizer::Lemmatize("flies", "VBZ"), "fly");
  EXPECT_EQ(Lemmatizer::Lemmatize("reaches", "VBZ"), "reach");
}

TEST(LemmatizerTest, GerundRestoresSilentE) {
  EXPECT_EQ(Lemmatizer::Lemmatize("making", "VBG"), "make");
  EXPECT_EQ(Lemmatizer::Lemmatize("pricing", "VBG"), "price");
}

TEST(LemmatizerTest, GerundUndoubling) {
  EXPECT_EQ(Lemmatizer::Lemmatize("dropping", "VBG"), "drop");
  EXPECT_EQ(Lemmatizer::Lemmatize("winning", "VBG"), "win");
}

TEST(LemmatizerTest, PastTense) {
  EXPECT_EQ(Lemmatizer::Lemmatize("arrived", "VBD"), "arrive");
  EXPECT_EQ(Lemmatizer::Lemmatize("carried", "VBD"), "carry");
  EXPECT_EQ(Lemmatizer::Lemmatize("dropped", "VBD"), "drop");
}

TEST(LemmatizerTest, Comparatives) {
  EXPECT_EQ(Lemmatizer::Lemmatize("colder", "JJR"), "cold");
  EXPECT_EQ(Lemmatizer::Lemmatize("brightest", "JJS"), "bright");
}

TEST(LemmatizerTest, OtherTagsUntouched) {
  EXPECT_EQ(Lemmatizer::Lemmatize("running", "NN"), "running");
  EXPECT_EQ(Lemmatizer::Lemmatize("is", "DT"), "is");
}

TEST(LemmatizerTest, ShortWordsAreSafe) {
  // Guards: stripping must not empty very short words.
  EXPECT_EQ(Lemmatizer::Lemmatize("as", "NNS"), "as");
  EXPECT_EQ(Lemmatizer::Lemmatize("ed", "VBD"), "ed");
  EXPECT_EQ(Lemmatizer::Lemmatize("s", "NNS"), "s");
}

}  // namespace
}  // namespace text
}  // namespace dwqa
