#include "text/chunker.h"

#include <gtest/gtest.h>

#include "text/pos_tagger.h"
#include "text/tokenizer.h"

namespace dwqa {
namespace text {
namespace {

std::vector<SyntacticBlock> Chunks(const std::string& s) {
  TokenSequence toks = Tokenizer::Tokenize(s);
  PosTagger tagger;
  tagger.Tag(&toks);
  return Chunker::Chunk(toks);
}

TEST(ChunkerTest, Table1QuestionBlocks) {
  // "What is the weather like in January of 2004 in El Prat?"
  auto blocks = Chunks("What is the weather like in January of 2004 in "
                       "El Prat?");
  // Expected: VBC(is), NP(the weather), PP(in January-of-2004),
  // PP(in El Prat). The wh-word stays outside blocks.
  ASSERT_GE(blocks.size(), 4u);
  EXPECT_EQ(blocks[0].type, SyntacticBlock::Type::kVBC);
  EXPECT_EQ(blocks[1].type, SyntacticBlock::Type::kNP);
  EXPECT_EQ(blocks[1].Text(), "the weather");
  EXPECT_EQ(blocks[1].role, "compl");
  EXPECT_EQ(blocks[1].subtype, "comun");
  EXPECT_EQ(blocks[2].type, SyntacticBlock::Type::kPP);
  ASSERT_FALSE(blocks[2].children.empty());
  EXPECT_EQ(blocks[2].children[0].subtype, "date");
  EXPECT_EQ(blocks[2].children[0].Text(), "January of 2004");
  EXPECT_EQ(blocks[3].type, SyntacticBlock::Type::kPP);
  EXPECT_EQ(blocks[3].children[0].subtype, "properNoun");
  EXPECT_EQ(blocks[3].children[0].Text(), "El Prat");
}

TEST(ChunkerTest, WeekdayWrapsDate) {
  // Table 1 passage: <@NP,,day,,> Monday , <@NP,,date,,> January 31, 2004.
  auto blocks = Chunks("Monday, January 31, 2004");
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].subtype, "day");
  ASSERT_EQ(blocks[0].children.size(), 1u);
  EXPECT_EQ(blocks[0].children[0].subtype, "date");
}

TEST(ChunkerTest, SubjectBeforeVerb) {
  auto blocks = Chunks("Iraq invaded Kuwait");
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[0].role, "subject");
  EXPECT_EQ(blocks[0].subtype, "properNoun");
  EXPECT_EQ(blocks[1].type, SyntacticBlock::Type::kVBC);
  EXPECT_EQ(blocks[2].role, "compl");
}

TEST(ChunkerTest, ClefQuestionMainBlocks) {
  // "Which country did Iraq invade in 1990?" → SBs like
  // "[Iraq] [to invade] [in 1990]" (paper §4.1).
  auto blocks = Chunks("Which country did Iraq invade in 1990?");
  // country NP, VBC(did), Iraq NP, VBC(invade), then "in 1990" — 1990 is
  // a bare CD, so the PP contains a numeral NP.
  ASSERT_GE(blocks.size(), 4u);
  EXPECT_EQ(blocks[0].Text(), "country");
  bool found_iraq = false, found_invade = false;
  for (const auto& b : blocks) {
    if (b.Text() == "Iraq") found_iraq = true;
    if (b.type == SyntacticBlock::Type::kVBC) {
      for (const Token& t : b.tokens) {
        if (t.lemma == "invade") found_invade = true;
      }
    }
  }
  EXPECT_TRUE(found_iraq);
  EXPECT_TRUE(found_invade);
}

TEST(ChunkerTest, NumeralSubtype) {
  auto blocks = Chunks("He bought 46 tickets for 120");
  bool saw_numeral = false;
  for (const auto& b : blocks) {
    for (const auto& child : b.children) {
      if (child.subtype == "numeral") saw_numeral = true;
    }
    if (b.subtype == "numeral") saw_numeral = true;
  }
  EXPECT_TRUE(saw_numeral);
}

TEST(ChunkerTest, HeadLemmaIsFinalNoun) {
  auto blocks = Chunks("the last minute sales");
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].HeadLemma(), "sale");
}

TEST(ChunkerTest, PpHeadComesFromInnerNp) {
  auto blocks = Chunks("in Barcelona");
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].type, SyntacticBlock::Type::kPP);
  EXPECT_EQ(blocks[0].HeadLemma(), "barcelona");
}

TEST(ChunkerTest, AnnotatedRoundTripContainsPaperMarkup) {
  TokenSequence toks =
      Tokenizer::Tokenize("What is the weather like in January of 2004?");
  PosTagger tagger;
  tagger.Tag(&toks);
  std::string annotated = Chunker::AnnotateSentence(toks);
  EXPECT_NE(annotated.find("<@VBC>"), std::string::npos);
  EXPECT_NE(annotated.find("<@NP,compl,comun,,>"), std::string::npos);
  EXPECT_NE(annotated.find("<@NP,,date,,>"), std::string::npos);
  EXPECT_NE(annotated.find("What WP what"), std::string::npos);
  EXPECT_NE(annotated.find("is VBZBE be"), std::string::npos);
}

TEST(ChunkerTest, EmptyInput) {
  EXPECT_TRUE(Chunks("").empty());
}

TEST(ChunkerTest, PunctuationOnlyInput) {
  EXPECT_TRUE(Chunks("?!.").empty());
}

TEST(ChunkerTest, LemmasCollectsDepthFirst) {
  auto blocks = Chunks("in January of 2004");
  ASSERT_EQ(blocks.size(), 1u);
  auto lemmas = blocks[0].Lemmas();
  EXPECT_EQ(lemmas.front(), "in");
  bool has_jan = false;
  for (const auto& l : lemmas) has_jan |= (l == "january");
  EXPECT_TRUE(has_jan);
}

}  // namespace
}  // namespace text
}  // namespace dwqa
