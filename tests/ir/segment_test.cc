#include "ir/segment.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <utility>
#include <vector>

namespace dwqa {
namespace ir {
namespace {

TEST(VarintTest, RoundTripsBoundaryValues) {
  const uint64_t values[] = {0,   1,   126,        127,
                             128, 129, 16383,      16384,
                             300, 1u << 21,        (1ull << 35) + 7,
                             ~0ull};
  std::string bytes;
  for (uint64_t v : values) AppendVarint(&bytes, v);
  size_t pos = 0;
  for (uint64_t v : values) {
    EXPECT_EQ(ReadVarint(bytes, &pos), v);
  }
  EXPECT_EQ(pos, bytes.size());
}

TEST(VarintTest, SmallValuesAreOneByte) {
  std::string bytes;
  AppendVarint(&bytes, 127);
  EXPECT_EQ(bytes.size(), 1u);
  AppendVarint(&bytes, 128);
  EXPECT_EQ(bytes.size(), 3u);  // 128 takes two bytes.
}

std::vector<std::pair<uint32_t, uint32_t>> Decode(const PostingList& list) {
  std::vector<std::pair<uint32_t, uint32_t>> out;
  ForEachPosting(list, [&](uint32_t ordinal, uint32_t payload) {
    out.emplace_back(ordinal, payload);
  });
  return out;
}

TEST(EncodePostingsTest, RoundTripsAcrossBlocks) {
  std::vector<std::pair<uint32_t, uint32_t>> postings;
  for (uint32_t i = 0; i < 100; ++i) {
    postings.emplace_back(i * 3, i % 7 + 1);
  }
  PostingList list = EncodePostings(postings, /*block_postings=*/8,
                                    [](size_t) { return 0.0; });
  EXPECT_EQ(list.count, 100u);
  EXPECT_EQ(list.blocks.size(), 13u);  // ceil(100 / 8)
  EXPECT_EQ(Decode(list), postings);
}

TEST(EncodePostingsTest, BlockMaxTracksTheWeightCallback) {
  // Weights 1, 2, ..., 6 over two blocks of three.
  std::vector<std::pair<uint32_t, uint32_t>> postings;
  for (uint32_t i = 0; i < 6; ++i) postings.emplace_back(i, 1);
  PostingList list =
      EncodePostings(postings, 3, [](size_t i) { return double(i + 1); });
  ASSERT_EQ(list.blocks.size(), 2u);
  EXPECT_DOUBLE_EQ(list.blocks[0].max_weight, 3.0);
  EXPECT_DOUBLE_EQ(list.blocks[1].max_weight, 6.0);
  EXPECT_DOUBLE_EQ(list.max_weight, 6.0);
  EXPECT_EQ(list.blocks[0].last_ordinal, 2u);
  EXPECT_EQ(list.blocks[1].last_ordinal, 5u);
}

TEST(EncodePostingsTest, EmptyListDecodesEmpty) {
  PostingList list = EncodePostings({}, 8, [](size_t) { return 0.0; });
  EXPECT_EQ(list.count, 0u);
  EXPECT_TRUE(Decode(list).empty());
  PostingCursor cursor(&list);
  EXPECT_TRUE(cursor.done());
}

TEST(PostingCursorTest, SkipBlockJumpsWithoutDecoding) {
  std::vector<std::pair<uint32_t, uint32_t>> postings;
  for (uint32_t i = 0; i < 10; ++i) postings.emplace_back(i * 2, i);
  PostingList list = EncodePostings(postings, 4, [](size_t) { return 0.0; });
  PostingCursor cursor(&list);
  EXPECT_EQ(cursor.ordinal(), 0u);
  ASSERT_TRUE(cursor.SkipBlock());
  EXPECT_EQ(cursor.ordinal(), 8u);  // First posting of block 1.
  EXPECT_EQ(cursor.payload(), 4u);
  ASSERT_TRUE(cursor.SkipBlock());
  EXPECT_EQ(cursor.ordinal(), 16u);  // First posting of block 2.
  EXPECT_FALSE(cursor.SkipBlock());
  EXPECT_TRUE(cursor.done());
}

/// Content is a function of the global DocId (tf = id+1, len = id+2), so
/// sealing [0,4)+[4,7) merges into exactly the corpus sealed as [0,7).
DocSegment::Builder MakeDocBuilder(DocId first_doc, size_t docs) {
  DocSegment::Builder builder;
  for (size_t i = 0; i < docs; ++i) {
    DocId id = first_doc + DocId(i);
    std::unordered_map<TermId, uint32_t> tf;
    tf[TermId(1)] = uint32_t(id + 1);
    if (id % 2 == 0) tf[TermId(2)] = 1;
    builder.Add(id, tf, /*doc_len=*/size_t(id) + 2);
  }
  return builder;
}

TEST(DocSegmentTest, SealPreservesDocsAndPostings) {
  auto segment = DocSegment::Seal(MakeDocBuilder(10, 5), 2);
  ASSERT_EQ(segment->doc_count(), 5u);
  EXPECT_EQ(segment->doc(0), 10);
  EXPECT_EQ(segment->doc(4), 14);
  EXPECT_EQ(segment->length(0), 12u);
  EXPECT_EQ(segment->length(4), 16u);
  const PostingList* all = segment->Find(TermId(1));
  ASSERT_NE(all, nullptr);
  EXPECT_EQ(all->count, 5u);
  auto decoded = Decode(*all);
  ASSERT_EQ(decoded.size(), 5u);
  EXPECT_EQ(decoded[0], (std::pair<uint32_t, uint32_t>{0, 11}));
  EXPECT_EQ(decoded[4], (std::pair<uint32_t, uint32_t>{4, 15}));
  const PostingList* even = segment->Find(TermId(2));
  ASSERT_NE(even, nullptr);
  EXPECT_EQ(even->count, 3u);
  EXPECT_EQ(segment->Find(TermId(99)), nullptr);
  EXPECT_GT(segment->postings_bytes(), 0u);
}

TEST(DocSegmentTest, SealWeightsAreTfOverSqrtLen) {
  auto segment = DocSegment::Seal(MakeDocBuilder(0, 3), 128);
  const PostingList* list = segment->Find(TermId(1));
  ASSERT_NE(list, nullptr);
  // Ordinal i has tf = i+1 and len = i+2: the max of (i+1)/sqrt(i+2).
  double expected = 0.0;
  for (size_t i = 0; i < 3; ++i) {
    expected = std::max(expected, double(i + 1) / std::sqrt(double(i + 2)));
  }
  EXPECT_DOUBLE_EQ(list->max_weight, expected);
}

TEST(DocSegmentTest, MergeConcatenatesInOrder) {
  auto left = DocSegment::Seal(MakeDocBuilder(0, 3), 2);
  auto right = DocSegment::Seal(MakeDocBuilder(100, 2), 2);
  auto merged = DocSegment::Merge(*left, *right, 2);
  ASSERT_EQ(merged->doc_count(), 5u);
  EXPECT_EQ(merged->doc(0), 0);
  EXPECT_EQ(merged->doc(2), 2);
  EXPECT_EQ(merged->doc(3), 100);
  EXPECT_EQ(merged->doc(4), 101);
  EXPECT_EQ(merged->length(3), 102u);
  // Right-hand ordinals shift by left.doc_count().
  auto decoded = Decode(*merged->Find(TermId(1)));
  ASSERT_EQ(decoded.size(), 5u);
  EXPECT_EQ(decoded[3].first, 3u);
  EXPECT_EQ(decoded[4].first, 4u);
  EXPECT_EQ(decoded[3].second, 101u);  // tf of doc 100 (id + 1).
}

TEST(DocSegmentTest, MergeEqualsSealOfConcatenatedBuilder) {
  auto merged = DocSegment::Merge(*DocSegment::Seal(MakeDocBuilder(0, 4), 3),
                                  *DocSegment::Seal(MakeDocBuilder(4, 3), 3),
                                  3);
  auto direct = DocSegment::Seal(MakeDocBuilder(0, 7), 3);
  ASSERT_EQ(merged->doc_count(), direct->doc_count());
  for (TermId t : {TermId(1), TermId(2)}) {
    const PostingList* a = merged->Find(t);
    const PostingList* b = direct->Find(t);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->bytes, b->bytes);
    EXPECT_DOUBLE_EQ(a->max_weight, b->max_weight);
  }
}

TEST(DocSegmentTest, EmptyBuilderSealsToEmptySegment) {
  auto segment = DocSegment::Seal(DocSegment::Builder{}, 8);
  EXPECT_EQ(segment->doc_count(), 0u);
  EXPECT_TRUE(segment->postings().empty());
  EXPECT_EQ(segment->postings_bytes(), 0u);
}

TEST(DocSegmentTest, DocsWithoutPostingsSealFine) {
  // All text stopword-filtered away: docs but no postings.
  DocSegment::Builder builder;
  builder.Add(7, {}, 0);
  auto segment = DocSegment::Seal(std::move(builder), 8);
  EXPECT_EQ(segment->doc_count(), 1u);
  EXPECT_EQ(segment->doc(0), 7);
  EXPECT_TRUE(segment->postings().empty());
}

/// Content is a function of the global DocId (doc `id` has id+1 sentences;
/// term 1 in every sentence, term 2 in the first), so split builds merge
/// into exactly the single-builder corpus.
PassageSegment::Builder MakePassageBuilder(DocId first_doc, size_t docs) {
  PassageSegment::Builder builder;
  for (size_t i = 0; i < docs; ++i) {
    DocId id = first_doc + DocId(i);
    std::vector<std::vector<TermId>> sentence_terms(size_t(id) + 1);
    for (size_t s = 0; s <= size_t(id); ++s) {
      sentence_terms[s].push_back(TermId(1));
    }
    sentence_terms[0].push_back(TermId(2));
    builder.Add(id, sentence_terms);
  }
  return builder;
}

TEST(PassageSegmentTest, SealComputesDocFreqAndMaxOccurrences) {
  auto segment = PassageSegment::Seal(MakePassageBuilder(0, 3), 4);
  ASSERT_EQ(segment->doc_count(), 3u);
  const PassageSegment::TermInfo* everywhere = segment->Find(TermId(1));
  ASSERT_NE(everywhere, nullptr);
  EXPECT_EQ(everywhere->doc_freq, 3u);
  EXPECT_EQ(everywhere->max_occurrences, 3u);  // Doc 2 has 3 sentences.
  EXPECT_EQ(everywhere->list.count, 6u);       // 1 + 2 + 3 refs.
  const PassageSegment::TermInfo* first_only = segment->Find(TermId(2));
  ASSERT_NE(first_only, nullptr);
  EXPECT_EQ(first_only->doc_freq, 3u);
  EXPECT_EQ(first_only->max_occurrences, 1u);
  EXPECT_EQ(segment->Find(TermId(3)), nullptr);
}

TEST(PassageSegmentTest, MergeMatchesDirectSeal) {
  auto merged = PassageSegment::Merge(
      *PassageSegment::Seal(MakePassageBuilder(0, 2), 4),
      *PassageSegment::Seal(MakePassageBuilder(2, 2), 4), 4);
  auto direct = PassageSegment::Seal(MakePassageBuilder(0, 4), 4);
  ASSERT_EQ(merged->doc_count(), direct->doc_count());
  for (TermId t : {TermId(1), TermId(2)}) {
    const PassageSegment::TermInfo* a = merged->Find(t);
    const PassageSegment::TermInfo* b = direct->Find(t);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->list.bytes, b->list.bytes);
    EXPECT_EQ(a->doc_freq, b->doc_freq);
    EXPECT_EQ(a->max_occurrences, b->max_occurrences);
  }
}

TEST(PassageSegmentTest, EmptyBuilderSealsToEmptySegment) {
  auto segment = PassageSegment::Seal(PassageSegment::Builder{}, 4);
  EXPECT_EQ(segment->doc_count(), 0u);
  EXPECT_TRUE(segment->terms().empty());
}

}  // namespace
}  // namespace ir
}  // namespace dwqa
