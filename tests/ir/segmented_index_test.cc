// Behavioural suite of the LSM-style segmented index cores, driven through
// the InvertedIndex/PassageIndex façades: byte-identical results for every
// segment layout (the golden-equivalence contract), pinned tie-breaks,
// adversarial segment shapes, and searches racing background merges. The
// target carries the `index` ctest label so scripts/check.sh can rerun it
// under ASan/UBSan and ci.yml under TSan.

#include <gtest/gtest.h>

#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "ir/inverted_index.h"
#include "ir/passage_index.h"
#include "ir/segmented_index.h"

namespace dwqa {
namespace ir {
namespace {

/// Full-fidelity rendering of document hits: any drift across segment
/// layouts must show up as a string diff, down to the last score bit.
std::string Serialize(const std::vector<DocHit>& hits) {
  std::ostringstream out;
  out.precision(17);
  for (const DocHit& h : hits) {
    out << h.doc << "|" << h.score << "|" << h.matched_terms << "\n";
  }
  return out.str();
}

std::string Serialize(const std::vector<Passage>& passages) {
  std::ostringstream out;
  out.precision(17);
  for (const Passage& p : passages) {
    out << p.doc << "|" << p.first_sentence << "|" << p.last_sentence << "|"
        << p.score << "|" << p.text << "\n";
  }
  return out.str();
}

/// A small deterministic corpus with term overlap, repeats, stopword-only
/// documents and multi-sentence texts.
std::vector<std::string> Corpus(size_t docs) {
  std::vector<std::string> out;
  for (size_t i = 0; i < docs; ++i) {
    std::ostringstream text;
    text << "Document " << i << " about weather. ";
    if (i % 2 == 0) text << "Barcelona temperature is mild. ";
    if (i % 3 == 0) text << "Madrid summers are hot and dry. ";
    if (i % 5 == 0) text << "Weather weather weather everywhere. ";
    if (i % 7 == 0) text << "The the of of and and. ";  // Stopwords only.
    text << "Topic t" << i % 11 << " appears here.";
    out.push_back(text.str());
  }
  return out;
}

const char* const kQueries[] = {
    "Barcelona weather",       "Madrid summers temperature",
    "weather",                 "topic t3",
    "mild temperature dry",    "nothing matches this query zz",
};

InvertedIndex BuildDocIndex(const SegmentedIndexOptions& options,
                            size_t docs) {
  InvertedIndex index(options);
  std::vector<std::string> corpus = Corpus(docs);
  for (size_t i = 0; i < corpus.size(); ++i) {
    index.AddDocument(DocId(i), corpus[i]);
  }
  return index;
}

PassageIndex BuildPassageIndex(const SegmentedIndexOptions& options,
                               size_t docs) {
  PassageIndex index(/*window=*/2, options);
  std::vector<std::string> corpus = Corpus(docs);
  for (size_t i = 0; i < corpus.size(); ++i) {
    index.AddDocument(DocId(i), corpus[i]);
  }
  return index;
}

SegmentedIndexOptions Monolithic() {
  SegmentedIndexOptions options;
  options.seal_every = 0;  // Pure memtable — the old monolithic index.
  return options;
}

TEST(SegmentedDocIndexTest, EveryLayoutMatchesTheMonolithicIndex) {
  const size_t kDocs = 40;
  InvertedIndex golden = BuildDocIndex(Monolithic(), kDocs);
  EXPECT_EQ(golden.sealed_segment_count(), 0u);

  std::vector<SegmentedIndexOptions> layouts(3);
  layouts[0].seal_every = 1;  // One segment per document.
  layouts[1].seal_every = 7;  // Sealed segments plus a memtable tail.
  layouts[2].seal_every = 4;
  layouts[2].merge_trigger = 2;  // Aggressive inline merging.
  layouts[2].block_postings = 2;
  for (const SegmentedIndexOptions& options : layouts) {
    InvertedIndex segmented = BuildDocIndex(options, kDocs);
    EXPECT_EQ(segmented.DebugString(), golden.DebugString());
    EXPECT_EQ(segmented.document_count(), golden.document_count());
    for (const char* query : kQueries) {
      EXPECT_EQ(Serialize(segmented.Search(query, 10)),
                Serialize(golden.Search(query, 10)))
          << "query: " << query << " seal_every=" << options.seal_every;
    }
  }
}

TEST(SegmentedPassageIndexTest, EveryLayoutMatchesTheMonolithicIndex) {
  const size_t kDocs = 40;
  PassageIndex golden = BuildPassageIndex(Monolithic(), kDocs);
  std::vector<SegmentedIndexOptions> layouts(3);
  layouts[0].seal_every = 1;
  layouts[1].seal_every = 7;
  layouts[2].seal_every = 4;
  layouts[2].merge_trigger = 2;
  layouts[2].block_postings = 2;
  for (const SegmentedIndexOptions& options : layouts) {
    PassageIndex segmented = BuildPassageIndex(options, kDocs);
    EXPECT_EQ(segmented.DebugString(), golden.DebugString());
    for (const char* query : kQueries) {
      EXPECT_EQ(Serialize(segmented.Search(query, 5)),
                Serialize(golden.Search(query, 5)))
          << "query: " << query << " seal_every=" << options.seal_every;
    }
  }
}

TEST(SegmentedDocIndexTest, TieBreaksArePinnedAcrossLayouts) {
  // Identical documents score identically; the contract is ascending DocId
  // among equals, independent of how documents are spread over segments.
  for (size_t seal_every : {size_t(0), size_t(1), size_t(3)}) {
    SegmentedIndexOptions options;
    options.seal_every = seal_every;
    options.merge_trigger = 2;
    InvertedIndex index(options);
    for (DocId d = 0; d < 9; ++d) {
      index.AddDocument(d, "identical tie content here");
    }
    std::vector<DocHit> hits = index.Search("identical content", 9);
    ASSERT_EQ(hits.size(), 9u);
    for (DocId d = 0; d < 9; ++d) {
      EXPECT_EQ(hits[size_t(d)].doc, d) << "seal_every=" << seal_every;
      EXPECT_DOUBLE_EQ(hits[size_t(d)].score, hits[0].score);
    }
  }
}

TEST(SegmentedPassageIndexTest, TieBreaksArePinnedAcrossLayouts) {
  // Equal-score windows order by (DocId asc, first sentence asc) in every
  // layout — byte-identical serialization ties the contract down.
  std::string golden;
  for (size_t seal_every : {size_t(0), size_t(1), size_t(3)}) {
    SegmentedIndexOptions options;
    options.seal_every = seal_every;
    options.merge_trigger = 2;
    PassageIndex index(/*window=*/1, options);
    for (DocId d = 0; d < 6; ++d) {
      index.AddDocument(d, "Equal window. Equal window. Equal window.");
    }
    std::string serialized = Serialize(index.Search("equal window", 6));
    if (golden.empty()) {
      golden = serialized;
      std::vector<Passage> hits = index.Search("equal window", 6);
      ASSERT_EQ(hits.size(), 6u);
      for (size_t i = 1; i < hits.size(); ++i) {
        EXPECT_DOUBLE_EQ(hits[i].score, hits[0].score);
        EXPECT_TRUE(hits[i - 1].doc < hits[i].doc ||
                    (hits[i - 1].doc == hits[i].doc &&
                     hits[i - 1].first_sentence < hits[i].first_sentence));
      }
    } else {
      EXPECT_EQ(serialized, golden) << "seal_every=" << seal_every;
    }
  }
}

TEST(SegmentedDocIndexTest, IncrementalAppendAfterSealIsSearchable) {
  SegmentedIndexOptions options;
  options.seal_every = 2;
  InvertedIndex index(options);
  index.AddDocument(0, "first batch apple");
  index.AddDocument(1, "first batch banana");  // Seals here.
  EXPECT_EQ(index.sealed_segment_count(), 1u);
  index.AddDocument(2, "late arrival cherry");  // Memtable only.
  std::vector<DocHit> hits = index.Search("cherry", 3);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].doc, 2);
  EXPECT_GT(index.postings_bytes(), 0u);
}

TEST(SegmentedDocIndexTest, StopwordOnlySegmentIsHarmless) {
  // A sealed segment with documents but zero postings (adversarial shape).
  SegmentedIndexOptions options;
  options.seal_every = 1;
  InvertedIndex index(options);
  index.AddDocument(0, "the of and but");  // Stopwords only.
  index.AddDocument(1, "real content weather");
  EXPECT_EQ(index.sealed_segment_count(), 2u);
  EXPECT_EQ(index.document_count(), 2u);
  std::vector<DocHit> hits = index.Search("weather", 2);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].doc, 1);
  EXPECT_TRUE(index.Search("the of", 2).empty());
}

TEST(SegmentedPassageIndexTest, SentencesSurviveSealsAndMerges) {
  SegmentedIndexOptions options;
  options.seal_every = 1;
  options.merge_trigger = 2;
  PassageIndex index(/*window=*/2, options);
  index.AddDocument(0, "Keep this reference. Second sentence.");
  const std::vector<std::string>& sentences = index.Sentences(0);
  ASSERT_EQ(sentences.size(), 2u);
  const std::string* first = &sentences[0];
  // Every further add seals a segment and triggers merges; the reference
  // handed out above must stay valid and unchanged.
  for (DocId d = 1; d <= 8; ++d) {
    index.AddDocument(d, "Filler document number. With two sentences.");
  }
  EXPECT_EQ(&index.Sentences(0)[0], first);
  EXPECT_EQ(*first, "Keep this reference.");
}

TEST(SegmentedDocIndexTest, BackgroundMergesMatchInlineMerges) {
  const size_t kDocs = 50;
  SegmentedIndexOptions inline_options;
  inline_options.seal_every = 3;
  inline_options.merge_trigger = 2;
  InvertedIndex inline_merged = BuildDocIndex(inline_options, kDocs);

  ThreadPool pool(2);
  SegmentedIndexOptions background = inline_options;
  background.merge_pool = &pool;
  InvertedIndex background_merged = BuildDocIndex(background, kDocs);
  background_merged.WaitForMerges();

  EXPECT_EQ(background_merged.DebugString(), inline_merged.DebugString());
  EXPECT_EQ(background_merged.sealed_segment_count(),
            inline_merged.sealed_segment_count());
  for (const char* query : kQueries) {
    EXPECT_EQ(Serialize(background_merged.Search(query, 10)),
              Serialize(inline_merged.Search(query, 10)))
        << query;
  }
}

TEST(SegmentedDocIndexTest, SearchesRacingBackgroundMergesStayGolden) {
  const size_t kDocs = 60;
  InvertedIndex golden = BuildDocIndex(Monolithic(), kDocs);
  std::string expected[6];
  for (size_t q = 0; q < 6; ++q) {
    expected[q] = Serialize(golden.Search(kQueries[q], 10));
  }

  ThreadPool merge_pool(2);
  SegmentedIndexOptions options;
  options.seal_every = 2;
  options.merge_trigger = 2;
  options.merge_pool = &merge_pool;
  InvertedIndex index = BuildDocIndex(options, kDocs);
  // Writers are done; merges are (likely) still running. Query from many
  // threads without waiting — results must already be golden, and TSan
  // must see no races between the readers and the merge thread.
  ThreadPool query_pool(4);
  std::vector<std::future<std::string>> results;
  for (int round = 0; round < 4; ++round) {
    for (size_t q = 0; q < 6; ++q) {
      results.push_back(query_pool.Submit([&index, q] {
        return Serialize(index.Search(kQueries[q], 10));
      }));
    }
  }
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].get(), expected[i % 6]);
  }
  index.WaitForMerges();
  for (size_t q = 0; q < 6; ++q) {
    EXPECT_EQ(Serialize(index.Search(kQueries[q], 10)), expected[q]);
  }
}

TEST(SegmentedPassageIndexTest, SearchesRacingBackgroundMergesStayGolden) {
  const size_t kDocs = 40;
  PassageIndex golden = BuildPassageIndex(Monolithic(), kDocs);
  std::string expected[6];
  for (size_t q = 0; q < 6; ++q) {
    expected[q] = Serialize(golden.Search(kQueries[q], 5));
  }

  ThreadPool merge_pool(2);
  SegmentedIndexOptions options;
  options.seal_every = 2;
  options.merge_trigger = 2;
  options.merge_pool = &merge_pool;
  PassageIndex index = BuildPassageIndex(options, kDocs);
  ThreadPool query_pool(4);
  std::vector<std::future<std::string>> results;
  for (int round = 0; round < 4; ++round) {
    for (size_t q = 0; q < 6; ++q) {
      results.push_back(query_pool.Submit([&index, q] {
        return Serialize(index.Search(kQueries[q], 5));
      }));
    }
  }
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].get(), expected[i % 6]);
  }
  index.WaitForMerges();
}

TEST(SegmentedDocIndexTest, PruningFiresAndResultsStayExact) {
  MetricRegistry metrics;
  SegmentedIndexOptions options;
  options.seal_every = 8;
  options.merge_trigger = 64;  // Keep many segments so bounds get used.
  options.block_postings = 4;
  InvertedIndex segmented(options);
  segmented.set_metrics(&metrics);
  InvertedIndex golden(Monolithic());
  std::vector<std::string> corpus = Corpus(120);
  for (size_t i = 0; i < corpus.size(); ++i) {
    segmented.AddDocument(DocId(i), corpus[i]);
    golden.AddDocument(DocId(i), corpus[i]);
  }
  for (const char* query : kQueries) {
    EXPECT_EQ(Serialize(segmented.Search(query, 3)),
              Serialize(golden.Search(query, 3)))
        << query;
  }
  double pruned =
      metrics.Value("dwqa_index_pruned_segments_total", {{"index", "doc"}}) +
      metrics.Value("dwqa_index_pruned_blocks_total", {{"index", "doc"}}) +
      metrics.Value("dwqa_index_pruned_candidates_total",
                    {{"index", "doc"}});
  EXPECT_GT(pruned, 0.0);
  EXPECT_EQ(metrics.Value("dwqa_index_segments", {{"index", "doc"}}),
            double(segmented.sealed_segment_count()));
  EXPECT_EQ(metrics.Value("dwqa_index_postings_bytes", {{"index", "doc"}}),
            double(segmented.postings_bytes()));
}

TEST(SegmentedPassageIndexTest, PruningFiresAndResultsStayExact) {
  MetricRegistry metrics;
  SegmentedIndexOptions options;
  options.seal_every = 8;
  options.merge_trigger = 64;
  PassageIndex segmented(/*window=*/2, options);
  segmented.set_metrics(&metrics);
  PassageIndex golden(/*window=*/2, Monolithic());
  std::vector<std::string> corpus = Corpus(120);
  for (size_t i = 0; i < corpus.size(); ++i) {
    segmented.AddDocument(DocId(i), corpus[i]);
    golden.AddDocument(DocId(i), corpus[i]);
  }
  for (const char* query : kQueries) {
    EXPECT_EQ(Serialize(segmented.Search(query, 3)),
              Serialize(golden.Search(query, 3)))
        << query;
  }
  double pruned =
      metrics.Value("dwqa_index_pruned_segments_total",
                    {{"index", "passage"}}) +
      metrics.Value("dwqa_index_pruned_candidates_total",
                    {{"index", "passage"}});
  EXPECT_GT(pruned, 0.0);
}

TEST(SegmentedDocIndexTest, SealAndInlineMergeEmitSpans) {
  TraceRecorder trace;
  SegmentedIndexOptions options;
  options.seal_every = 1;
  options.merge_trigger = 2;  // Inline merges (no pool) are traced.
  InvertedIndex index(options);
  index.set_trace(&trace);
  for (DocId d = 0; d < 5; ++d) {
    index.AddDocument(d, "span content number " + std::to_string(d));
  }
  size_t seals = 0;
  size_t merges = 0;
  for (const SpanRecord& span : trace.spans()) {
    if (span.name == "index.seal") ++seals;
    if (span.name == "index.merge") ++merges;
  }
  EXPECT_EQ(seals, 5u);
  EXPECT_GT(merges, 0u);
}

TEST(SegmentedDocIndexTest, SealCountersTrackSealsAndMerges) {
  MetricRegistry metrics;
  SegmentedIndexOptions options;
  options.seal_every = 1;
  options.merge_trigger = 2;
  InvertedIndex index(options);
  index.set_metrics(&metrics);
  for (DocId d = 0; d < 6; ++d) {
    index.AddDocument(d, "counter content number " + std::to_string(d));
  }
  EXPECT_EQ(metrics.Value("dwqa_index_seals_total", {{"index", "doc"}}), 6.0);
  EXPECT_GT(metrics.Value("dwqa_index_merges_total", {{"index", "doc"}}),
            0.0);
  EXPECT_LE(index.sealed_segment_count(), 2u);
}

}  // namespace
}  // namespace ir
}  // namespace dwqa
