#include "ir/passage_index.h"

#include <gtest/gtest.h>

namespace dwqa {
namespace ir {
namespace {

std::string WeatherDoc() {
  // Line-per-sentence, Figure 4 layout.
  return "Saturday, January 31, 2004\n"
         "Barcelona Weather: Temperature 8\xC2\xBA C around 46.4 F\n"
         "Friday, January 30, 2004\n"
         "Barcelona Weather: Temperature 7\xC2\xBA C Clear skies\n"
         "Some unrelated footer line about cookies\n";
}

std::string NoiseDoc() {
  return "The stock market rose in January.\n"
         "Analysts in New York expected the 2004 rally.\n";
}

class PassageIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    index_.AddDocument(0, WeatherDoc());
    index_.AddDocument(1, NoiseDoc());
  }
  PassageIndex index_{3};
};

TEST_F(PassageIndexTest, FindsBestPassage) {
  auto passages = index_.Search("Barcelona January 2004 temperature");
  ASSERT_FALSE(passages.empty());
  EXPECT_EQ(passages[0].doc, 0);
  EXPECT_NE(passages[0].text.find("Barcelona Weather"), std::string::npos);
}

TEST_F(PassageIndexTest, PassageIsConsecutiveSentenceWindow) {
  auto passages = index_.Search("Barcelona temperature");
  ASSERT_FALSE(passages.empty());
  const Passage& p = passages[0];
  EXPECT_LE(p.last_sentence - p.first_sentence + 1, index_.window());
  // Text is the join of those sentences.
  const auto& sents = index_.Sentences(p.doc);
  std::string expect;
  for (size_t s = p.first_sentence; s <= p.last_sentence; ++s) {
    if (!expect.empty()) expect += '\n';
    expect += sents[s];
  }
  EXPECT_EQ(p.text, expect);
}

TEST_F(PassageIndexTest, CoverageBeatsRepetition) {
  PassageIndex idx(4);
  // Doc 0 repeats one term many times; doc 1 covers both query terms once.
  idx.AddDocument(0,
                  "january january.\njanuary january.\njanuary january.\n"
                  "january january.\n");
  idx.AddDocument(1, "january weather in the city.\n");
  auto passages = idx.Search("january weather");
  ASSERT_FALSE(passages.empty());
  EXPECT_EQ(passages[0].doc, 1);
}

TEST_F(PassageIndexTest, SelectedPassagesDoNotOverlap) {
  auto passages = index_.Search("Barcelona temperature January", 5);
  for (size_t i = 0; i < passages.size(); ++i) {
    for (size_t j = i + 1; j < passages.size(); ++j) {
      if (passages[i].doc != passages[j].doc) continue;
      bool overlap =
          passages[i].first_sentence <= passages[j].last_sentence &&
          passages[j].first_sentence <= passages[i].last_sentence;
      EXPECT_FALSE(overlap);
    }
  }
}

TEST_F(PassageIndexTest, TopKRespected) {
  auto passages = index_.Search("January 2004", 1);
  EXPECT_EQ(passages.size(), 1u);
}

TEST_F(PassageIndexTest, EmptyAndStopwordQueries) {
  EXPECT_TRUE(index_.Search("").empty());
  EXPECT_TRUE(index_.Search("the of is").empty());
  EXPECT_TRUE(index_.Search("zeppelin dirigible").empty());
}

TEST_F(PassageIndexTest, SentencesStoredPerDocument) {
  EXPECT_EQ(index_.Sentences(0).size(), 5u);
  EXPECT_EQ(index_.Sentences(1).size(), 2u);
  EXPECT_TRUE(index_.Sentences(99).empty());
}

TEST_F(PassageIndexTest, WindowSizeClampsAtDocumentEnd) {
  PassageIndex idx(8);
  idx.AddDocument(0, "only sentence about barcelona.\n");
  auto passages = idx.Search("barcelona");
  ASSERT_EQ(passages.size(), 1u);
  EXPECT_EQ(passages[0].first_sentence, 0u);
  EXPECT_EQ(passages[0].last_sentence, 0u);
}

TEST_F(PassageIndexTest, ScoresDescending) {
  auto passages = index_.Search("Barcelona January 2004 weather", 5);
  for (size_t i = 1; i < passages.size(); ++i) {
    EXPECT_GE(passages[i - 1].score, passages[i].score);
  }
}

TEST_F(PassageIndexTest, ZeroWindowClampsToOne) {
  PassageIndex idx(0);
  EXPECT_EQ(idx.window(), 1u);
  idx.AddDocument(0, "barcelona weather.\nanother sentence.\n");
  auto passages = idx.Search("barcelona");
  ASSERT_EQ(passages.size(), 1u);
  EXPECT_EQ(passages[0].first_sentence, passages[0].last_sentence);
}

}  // namespace
}  // namespace ir
}  // namespace dwqa
