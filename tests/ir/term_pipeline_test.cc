#include "ir/term_pipeline.h"

#include <gtest/gtest.h>

#include "ir/inverted_index.h"
#include "ir/passage_index.h"
#include "text/analyzed_corpus.h"

namespace dwqa {
namespace ir {
namespace {

text::Token Tok(const std::string& lower) {
  text::Token t;
  t.text = lower;
  t.lower = lower;
  return t;
}

TEST(TermPipelineTest, PassageTermsDropStopwordsAndNonAlnum) {
  EXPECT_TRUE(IsPassageTerm(Tok("barcelona")));
  EXPECT_TRUE(IsPassageTerm(Tok("2004")));
  EXPECT_FALSE(IsPassageTerm(Tok("the")));
  EXPECT_FALSE(IsPassageTerm(Tok(",")));
  EXPECT_FALSE(IsPassageTerm(Tok("")));
}

TEST(TermPipelineTest, DocumentTermsAlsoDropOneCharNonDigits) {
  EXPECT_FALSE(IsDocumentTerm(Tok("c")));
  EXPECT_TRUE(IsDocumentTerm(Tok("8")));
  EXPECT_TRUE(IsPassageTerm(Tok("c")));  // the asymmetry is deliberate
}

TEST(TermPipelineTest, DocumentAndPassageTermsKeepOrderAndDuplicates) {
  std::vector<std::string> doc = DocumentTerms("The cat saw the cat.");
  std::vector<std::string> expected = {"cat", "saw", "cat"};
  EXPECT_EQ(doc, expected);
  std::vector<std::string> pas = PassageTerms("Temperature 8\xC2\xBA C");
  ASSERT_FALSE(pas.empty());
  EXPECT_EQ(pas.front(), "temperature");
}

/// The analyze-once corpus must feed both indexes with postings identical
/// to the raw-string path — the load-bearing equivalence of the refactor.
class AnalyzedEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    texts_ = {
        "Saturday, January 31, 2004\n"
        "Barcelona Weather: Temperature 8\xC2\xBA C Clear skies today\n"
        "Friday, January 30, 2004\n"
        "Barcelona Weather: Temperature 7\xC2\xBA C Cloudy today\n",
        "The stock market rose by 340 points in January of 2004.\n"
        "Analysts in New York were surprised.\n",
        "Iraq invaded Kuwait in 1990.\n",
    };
    for (size_t i = 0; i < texts_.size(); ++i) {
      corpus_.Add(DocId(i), texts_[i]);
    }
  }

  std::vector<std::string> texts_;
  text::AnalyzedCorpus corpus_;
};

TEST_F(AnalyzedEquivalenceTest, InvertedIndexSearchIsIdentical) {
  InvertedIndex raw;
  InvertedIndex analyzed(corpus_.mutable_dictionary());
  for (size_t i = 0; i < texts_.size(); ++i) {
    raw.AddDocument(DocId(i), texts_[i]);
    analyzed.AddAnalyzed(DocId(i), *corpus_.Find(DocId(i)));
  }
  for (const char* query :
       {"barcelona weather", "temperature", "Kuwait invasion",
        "stock market points", "nothing matches this"}) {
    std::vector<DocHit> a = raw.Search(query, 10);
    std::vector<DocHit> b = analyzed.Search(query, 10);
    ASSERT_EQ(a.size(), b.size()) << query;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].doc, b[i].doc) << query;
      EXPECT_DOUBLE_EQ(a[i].score, b[i].score) << query;
    }
  }
  for (const char* term : {"barcelona", "weather", "kuwait", "the", "8"}) {
    EXPECT_EQ(raw.DocFreq(term), analyzed.DocFreq(term)) << term;
  }
}

TEST_F(AnalyzedEquivalenceTest, PassageIndexSearchIsIdentical) {
  PassageIndex raw(3);
  PassageIndex analyzed(3, corpus_.mutable_dictionary());
  for (size_t i = 0; i < texts_.size(); ++i) {
    raw.AddDocument(DocId(i), texts_[i]);
    analyzed.AddAnalyzed(DocId(i), *corpus_.Find(DocId(i)));
  }
  for (const char* query :
       {"barcelona weather temperature", "Kuwait", "analysts New York",
        "zzz unknown"}) {
    std::vector<Passage> a = raw.Search(query, 5);
    std::vector<Passage> b = analyzed.Search(query, 5);
    ASSERT_EQ(a.size(), b.size()) << query;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].doc, b[i].doc) << query;
      EXPECT_EQ(a[i].first_sentence, b[i].first_sentence) << query;
      EXPECT_EQ(a[i].last_sentence, b[i].last_sentence) << query;
      EXPECT_DOUBLE_EQ(a[i].score, b[i].score) << query;
      EXPECT_EQ(a[i].text, b[i].text) << query;
    }
  }
}

}  // namespace
}  // namespace ir
}  // namespace dwqa
