#include "ir/inverted_index.h"

#include <gtest/gtest.h>

#include "ir/stopwords.h"

namespace dwqa {
namespace ir {
namespace {

class InvertedIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    index_.AddDocument(0, "Barcelona weather is mild in January");
    index_.AddDocument(1, "Madrid weather in July is hot");
    index_.AddDocument(2, "The stock market rose in January");
    index_.AddDocument(3,
                       "Barcelona Barcelona Barcelona football club news");
  }
  InvertedIndex index_;
};

TEST_F(InvertedIndexTest, FindsMatchingDocuments) {
  auto hits = index_.Search("Barcelona weather");
  ASSERT_FALSE(hits.empty());
  // Document-level TF-IDF lets the term-spamming football page (doc 3)
  // outrank the one that covers both query terms — precisely the
  // low-precision IR behaviour the paper criticizes (§1). Both docs are
  // found; the full-coverage one carries matched_terms == 2.
  bool found_full_coverage = false;
  for (const DocHit& h : hits) {
    if (h.doc == 0) {
      EXPECT_EQ(h.matched_terms, 2u);
      found_full_coverage = true;
    }
  }
  EXPECT_TRUE(found_full_coverage);
}

TEST_F(InvertedIndexTest, StopwordsIgnored) {
  // "the", "is", "in" carry no signal.
  auto hits = index_.Search("the is in");
  EXPECT_TRUE(hits.empty());
  EXPECT_EQ(index_.DocFreq("the"), 0u);
}

TEST_F(InvertedIndexTest, CaseInsensitive) {
  auto hits = index_.Search("BARCELONA");
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(index_.DocFreq("barcelona"), 2u);
}

TEST_F(InvertedIndexTest, TfMattersButLengthNormalized) {
  auto hits = index_.Search("Barcelona");
  ASSERT_EQ(hits.size(), 2u);
  // Doc 3 repeats the term 3 times: more weight despite normalization.
  EXPECT_EQ(hits[0].doc, 3);
}

TEST_F(InvertedIndexTest, RareTermsWeighMore) {
  index_.AddDocument(4, "hot hot hot market market january weather");
  // "hot" (2 docs) is rarer than "january" (3 docs); a doc with only "hot"
  // should beat one with only "january" at equal tf.
  index_.AddDocument(5, "hot");
  index_.AddDocument(6, "january");
  auto hits = index_.Search("hot january");
  ASSERT_GE(hits.size(), 3u);
  double hot_score = 0, january_score = 0;
  for (const auto& h : hits) {
    if (h.doc == 5) hot_score = h.score;
    if (h.doc == 6) january_score = h.score;
  }
  EXPECT_GT(hot_score, january_score);
}

TEST_F(InvertedIndexTest, TopKRespected) {
  auto hits = index_.Search("January weather Barcelona Madrid", 2);
  EXPECT_EQ(hits.size(), 2u);
}

TEST_F(InvertedIndexTest, NoMatchesEmpty) {
  EXPECT_TRUE(index_.Search("zeppelin").empty());
  EXPECT_TRUE(index_.Search("").empty());
}

TEST_F(InvertedIndexTest, DeterministicTieBreak) {
  InvertedIndex idx;
  idx.AddDocument(7, "alpha beta");
  idx.AddDocument(3, "alpha beta");
  auto hits = idx.Search("alpha");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].doc, 3);  // Lower id wins on equal score.
}

TEST_F(InvertedIndexTest, DuplicateQueryTermsCountOnce) {
  auto once = index_.Search("weather");
  auto thrice = index_.Search("weather weather weather");
  ASSERT_EQ(once.size(), thrice.size());
  EXPECT_DOUBLE_EQ(once[0].score, thrice[0].score);
}

TEST_F(InvertedIndexTest, Counters) {
  EXPECT_EQ(index_.document_count(), 4u);
  EXPECT_GT(index_.term_count(), 5u);
}

TEST(StopwordsTest, CommonWordsAreStopwords) {
  for (const char* w : {"the", "is", "of", "in", "what", "which"}) {
    EXPECT_TRUE(Stopwords::IsStopword(w)) << w;
  }
  for (const char* w : {"temperature", "barcelona", "weather", "january"}) {
    EXPECT_FALSE(Stopwords::IsStopword(w)) << w;
  }
}

}  // namespace
}  // namespace ir
}  // namespace dwqa
