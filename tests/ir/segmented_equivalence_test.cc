// Golden-equivalence suite for the segmented-index refactor at the QA
// level: every segment layout — monolithic memtable, one-doc segments,
// aggressive merging, background merge pool — must answer byte-identically
// over the full question-factory set, and incremental ingest must be
// indistinguishable from having indexed the whole corpus up front.

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ir/document.h"
#include "ontology/enrichment.h"
#include "ontology/wordnet.h"
#include "qa/aliqan.h"
#include "qa/structured.h"
#include "web/question_factory.h"
#include "web/synthetic_web.h"

namespace dwqa {
namespace qa {
namespace {

/// Full-fidelity rendering of an AnswerSet (mirrors the AnalyzedCorpus
/// golden suite): drift across segment layouts must show as a string diff.
std::string Serialize(const AnswerSet& set) {
  std::ostringstream out;
  out.precision(17);
  out << "type=" << static_cast<int>(set.analysis.answer_type)
      << " degradation=" << static_cast<int>(set.degradation)
      << " reason=" << set.unanswered_reason
      << " sentences=" << set.sentences_analyzed << "\n";
  for (const std::string& p : set.passages) out << "P|" << p << "\n";
  for (const AnswerCandidate& a : set.answers) {
    out << "A|" << a.answer_text << "|" << static_cast<int>(a.type) << "|"
        << a.score << "|" << static_cast<int>(a.level) << "|" << a.sentence
        << "|" << a.doc << "|" << a.url << "|" << a.has_value << "|"
        << a.value << "|" << a.unit << "|"
        << (a.date.has_value() ? a.date->ToIsoString() : "-") << "|"
        << a.date_complete << "|" << a.location << "\n";
  }
  return out.str();
}

class SegmentedEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    web::WebConfig config;
    config.cities = {"Barcelona", "Madrid"};
    config.months = {1};
    web_ = std::make_unique<web::SyntheticWeb>(
        web::SyntheticWeb::Build(config).ValueOrDie());
    wn_ = ontology::MiniWordNet::Build();
    std::vector<ontology::InstanceSeed> seeds = {
        {"El Prat", {}, "Barcelona", ""}};
    ASSERT_TRUE(ontology::Enricher::Enrich(&wn_, "airport", seeds).ok());
  }

  AliQAnConfig BaseConfig() const {
    AliQAnConfig config;
    config.degradation.enable_relaxed = true;
    config.degradation.enable_ir_only = true;
    return config;
  }

  /// Asks every question against both systems and asserts byte-identical
  /// answer sets and structured-fact CSVs.
  void ExpectIdentical(AliQAn* a, AliQAn* b,
                       const std::vector<web::GoldQuestion>& questions) {
    for (const web::GoldQuestion& gq : questions) {
      Result<AnswerSet> ra = a->Ask(gq.question);
      Result<AnswerSet> rb = b->Ask(gq.question);
      ASSERT_EQ(ra.ok(), rb.ok()) << gq.question;
      if (!ra.ok()) continue;
      EXPECT_EQ(Serialize(*ra), Serialize(*rb)) << gq.question;
      EXPECT_EQ(StructuredFactsToCsv(ToStructuredFacts(*ra, "temperature")),
                StructuredFactsToCsv(ToStructuredFacts(*rb, "temperature")))
          << gq.question;
    }
  }

  std::vector<web::GoldQuestion> AllQuestions() const {
    std::vector<web::GoldQuestion> questions =
        web::QuestionFactory::ClefStyleQuestions();
    for (const web::GoldQuestion& gq :
         web::QuestionFactory::WeatherQuestions(*web_)) {
      questions.push_back(gq);
    }
    return questions;
  }

  std::unique_ptr<web::SyntheticWeb> web_;
  ontology::Ontology wn_;
};

TEST_F(SegmentedEquivalenceTest, SegmentLayoutsAnswerIdentically) {
  AliQAnConfig monolithic_config = BaseConfig();
  monolithic_config.index_options.seal_every = 0;  // Pure memtable.
  AliQAn monolithic(&wn_, monolithic_config);
  ASSERT_TRUE(monolithic.IndexCorpus(&web_->documents()).ok());
  EXPECT_EQ(monolithic.document_index().sealed_segment_count(), 0u);

  // Default layout, one-doc segments, and aggressive merging must all
  // produce the same postings dump and the same answers.
  std::vector<AliQAnConfig> layouts;
  layouts.push_back(BaseConfig());
  layouts.push_back(BaseConfig());
  layouts.back().index_options.seal_every = 1;
  layouts.push_back(BaseConfig());
  layouts.back().index_options.seal_every = 2;
  layouts.back().index_options.merge_trigger = 2;
  layouts.back().index_options.block_postings = 4;
  for (const AliQAnConfig& config : layouts) {
    AliQAn segmented(&wn_, config);
    ASSERT_TRUE(segmented.IndexCorpus(&web_->documents()).ok());
    EXPECT_EQ(segmented.document_index().DebugString(),
              monolithic.document_index().DebugString());
    EXPECT_EQ(segmented.passage_index().DebugString(),
              monolithic.passage_index().DebugString());
    ExpectIdentical(&segmented, &monolithic, AllQuestions());
  }
}

TEST_F(SegmentedEquivalenceTest, BackgroundMergePoolAnswersIdentically) {
  AliQAn golden(&wn_, BaseConfig());
  ASSERT_TRUE(golden.IndexCorpus(&web_->documents()).ok());

  AliQAnConfig pooled_config = BaseConfig();
  pooled_config.index_options.seal_every = 2;
  pooled_config.index_options.merge_trigger = 2;
  pooled_config.index_merge_threads = 2;
  AliQAn pooled(&wn_, pooled_config);
  ASSERT_TRUE(pooled.IndexCorpus(&web_->documents()).ok());
  // Merge timing never changes results: ask *before* waiting, then verify
  // the settled manifest dumps identically to an inline-merged build.
  ExpectIdentical(&pooled, &golden, AllQuestions());
  pooled.document_index().WaitForMerges();
  pooled.passage_index().WaitForMerges();

  AliQAnConfig inline_config = pooled_config;
  inline_config.index_merge_threads = 0;
  AliQAn inlined(&wn_, inline_config);
  ASSERT_TRUE(inlined.IndexCorpus(&web_->documents()).ok());
  EXPECT_EQ(pooled.document_index().DebugString(),
            inlined.document_index().DebugString());
  EXPECT_EQ(pooled.passage_index().DebugString(),
            inlined.passage_index().DebugString());
}

TEST_F(SegmentedEquivalenceTest, ParallelShardedBuildMatchesSerialBuild) {
  AliQAnConfig serial_config = BaseConfig();
  AliQAnConfig parallel_config = BaseConfig();
  parallel_config.threads = 4;
  AliQAn serial(&wn_, serial_config);
  AliQAn parallel(&wn_, parallel_config);
  ASSERT_TRUE(serial.IndexCorpus(&web_->documents()).ok());
  ASSERT_TRUE(parallel.IndexCorpus(&web_->documents()).ok());
  // The parallel path seals one segment per shard instead of filling the
  // memtable, so the manifests differ — but the canonical dump and the
  // answers may not.
  EXPECT_EQ(serial.document_index().DebugString(),
            parallel.document_index().DebugString());
  EXPECT_EQ(serial.passage_index().DebugString(),
            parallel.passage_index().DebugString());
  ExpectIdentical(&parallel, &serial, AllQuestions());
}

TEST_F(SegmentedEquivalenceTest, IncrementalIngestMatchesFullRebuild) {
  const auto& all = web_->documents().documents();
  ASSERT_GE(all.size(), 4u);
  const size_t initial = all.size() - 2;

  // System A: index a prefix, then append the rest through the ingest path.
  ir::DocumentStore growing;
  for (size_t i = 0; i < initial; ++i) {
    growing.Add(all[i].url, all[i].title, all[i].format, all[i].raw);
  }
  AliQAn incremental(&wn_, BaseConfig());
  ASSERT_TRUE(incremental.IndexCorpus(&growing).ok());
  Result<size_t> none = incremental.IngestNewDocuments();
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(*none, 0u);  // Nothing new yet.
  for (size_t i = initial; i < all.size(); ++i) {
    growing.Add(all[i].url, all[i].title, all[i].format, all[i].raw);
  }
  Result<size_t> ingested = incremental.IngestNewDocuments();
  ASSERT_TRUE(ingested.ok());
  EXPECT_EQ(*ingested, 2u);

  // System B: everything indexed up front.
  AliQAn rebuilt(&wn_, BaseConfig());
  ASSERT_TRUE(rebuilt.IndexCorpus(&web_->documents()).ok());

  EXPECT_EQ(incremental.document_index().document_count(),
            rebuilt.document_index().document_count());
  EXPECT_EQ(incremental.document_index().DebugString(),
            rebuilt.document_index().DebugString());
  EXPECT_EQ(incremental.passage_index().DebugString(),
            rebuilt.passage_index().DebugString());
  ExpectIdentical(&incremental, &rebuilt, AllQuestions());
}

TEST_F(SegmentedEquivalenceTest, IngestBeforeIndexCorpusIsAnError) {
  AliQAn fresh(&wn_, BaseConfig());
  Result<size_t> ingested = fresh.IngestNewDocuments();
  EXPECT_FALSE(ingested.ok());
}

}  // namespace
}  // namespace qa
}  // namespace dwqa
