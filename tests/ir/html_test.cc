#include "ir/html.h"

#include <gtest/gtest.h>

namespace dwqa {
namespace ir {
namespace {

TEST(HtmlTest, StripRemovesTags) {
  std::string out = Html::StripTags("<b>bold</b> and <i>italic</i>");
  EXPECT_EQ(out, "bold and italic");
}

TEST(HtmlTest, BlockTagsBecomeNewlines) {
  std::string out =
      Html::StripTags("<p>Monday, January 31, 2004</p><p>Barcelona</p>");
  EXPECT_NE(out.find("Monday, January 31, 2004\n"), std::string::npos);
  EXPECT_NE(out.find("\nBarcelona"), std::string::npos);
}

TEST(HtmlTest, ScriptAndStyleContentDropped) {
  std::string out = Html::StripTags(
      "before<script>var x = 1;</script>middle<style>.a{}</style>after");
  EXPECT_EQ(out.find("var x"), std::string::npos);
  EXPECT_NE(out.find("before"), std::string::npos);
  EXPECT_NE(out.find("middle"), std::string::npos);
  EXPECT_NE(out.find("after"), std::string::npos);
}

TEST(HtmlTest, EntitiesDecoded) {
  EXPECT_EQ(Html::DecodeEntities("a &amp; b &lt;c&gt; &quot;d&quot;"),
            "a & b <c> \"d\"");
  EXPECT_EQ(Html::DecodeEntities("8&deg;C"), "8\xC2\xBA\x43");
  EXPECT_EQ(Html::DecodeEntities("&#186;"), "\xC2\xBA");
  EXPECT_EQ(Html::DecodeEntities("&#65;"), "A");
  EXPECT_EQ(Html::DecodeEntities("x&nbsp;y"), "x y");
}

TEST(HtmlTest, UnknownEntityPreserved) {
  EXPECT_EQ(Html::DecodeEntities("&zzz;"), "&zzz;");
  EXPECT_EQ(Html::DecodeEntities("lone & ampersand"), "lone & ampersand");
}

TEST(HtmlTest, WhitespaceSqueezed) {
  std::string out = Html::StripTags("a    b\t\tc");
  EXPECT_EQ(out, "a b c");
}

TEST(HtmlTest, PlainTextPassesThrough) {
  EXPECT_EQ(Html::StripTags("no tags here"), "no tags here");
}

TEST(HtmlTest, UnterminatedTagDoesNotCrash) {
  std::string out = Html::StripTags("text <unclosed");
  EXPECT_NE(out.find("text"), std::string::npos);
}

TEST(HtmlTableTest, ExtractSimpleTable) {
  std::string html =
      "<table><tr><th>Date</th><th>High</th></tr>"
      "<tr><td>January 5, 2004</td><td>12</td></tr>"
      "<tr><td>January 6, 2004</td><td>10</td></tr></table>";
  auto tables = Html::ExtractTables(html);
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_TRUE(tables[0].has_header);
  ASSERT_EQ(tables[0].rows.size(), 3u);
  EXPECT_EQ(tables[0].rows[0][0], "Date");
  EXPECT_EQ(tables[0].rows[1][0], "January 5, 2004");
  EXPECT_EQ(tables[0].rows[2][1], "10");
}

TEST(HtmlTableTest, TableWithoutHeader) {
  std::string html =
      "<table><tr><td>a</td><td>b</td></tr></table>";
  auto tables = Html::ExtractTables(html);
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_FALSE(tables[0].has_header);
}

TEST(HtmlTableTest, MultipleTables) {
  std::string html =
      "<table><tr><td>1</td></tr></table>text"
      "<table><tr><td>2</td></tr></table>";
  auto tables = Html::ExtractTables(html);
  ASSERT_EQ(tables.size(), 2u);
  EXPECT_EQ(tables[0].rows[0][0], "1");
  EXPECT_EQ(tables[1].rows[0][0], "2");
}

TEST(HtmlTableTest, NestedMarkupInCells) {
  std::string html =
      "<table><tr><td><b>bold</b> cell</td></tr></table>";
  auto tables = Html::ExtractTables(html);
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_EQ(tables[0].rows[0][0], "bold cell");
}

TEST(HtmlTableTest, NoTablesInPlainHtml) {
  EXPECT_TRUE(Html::ExtractTables("<p>just text</p>").empty());
}

TEST(HtmlTableTest, CaseInsensitiveTags) {
  std::string html =
      "<TABLE><TR><TD>x</TD></TR></TABLE>";
  auto tables = Html::ExtractTables(html);
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_EQ(tables[0].rows[0][0], "x");
}

}  // namespace
}  // namespace ir
}  // namespace dwqa
