#include "web/synthetic_web.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/string_util.h"

namespace dwqa {
namespace web {
namespace {

WebConfig SmallConfig() {
  WebConfig config;
  config.cities = {"Barcelona", "Madrid"};
  config.months = {1};
  config.price_pages = 3;
  config.noise_pages = 4;
  return config;
}

TEST(SyntheticWebTest, DocumentInventory) {
  SyntheticWeb webb = SyntheticWeb::Build(SmallConfig()).ValueOrDie();
  // 2 cities × (prose + table) + 3 price + 4 noise + encyclopedia.
  EXPECT_EQ(webb.DocsWithUrlPrefix("web://weather/").size(), 2u);
  EXPECT_EQ(webb.DocsWithUrlPrefix("web://weather-table/").size(), 2u);
  EXPECT_EQ(webb.DocsWithUrlPrefix("web://prices/").size(), 3u);
  EXPECT_EQ(webb.DocsWithUrlPrefix("web://news/").size(), 4u);
  EXPECT_GE(webb.DocsWithUrlPrefix("web://encyclopedia/").size(), 10u);
}

TEST(SyntheticWebTest, GroundTruthCoversEveryCityDay) {
  SyntheticWeb webb = SyntheticWeb::Build(SmallConfig()).ValueOrDie();
  EXPECT_EQ(webb.truth().temperature.size(), 2u * 31u);
  // Every truth value is integral (published temperatures are rounded).
  for (const auto& [key, value] : webb.truth().temperature) {
    EXPECT_DOUBLE_EQ(value, std::round(value)) << key.first;
  }
}

TEST(SyntheticWebTest, TruthMatchesPageContent) {
  SyntheticWeb webb = SyntheticWeb::Build(SmallConfig()).ValueOrDie();
  double truth = webb.truth().temperature.at({"barcelona", "2004-01-31"});
  const auto& docs = webb.documents();
  bool found = false;
  for (const ir::Document& doc : docs.documents()) {
    if (doc.url != "web://weather/barcelona/2004-1.html") continue;
    char needle[64];
    std::snprintf(needle, sizeof(needle),
                  "Temperature %.0f\xC2\xBA C", truth);
    EXPECT_NE(doc.raw.find(needle), std::string::npos);
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST(SyntheticWebTest, ConfigTogglesLayouts) {
  WebConfig config = SmallConfig();
  config.table_weather = false;
  SyntheticWeb webb = SyntheticWeb::Build(config).ValueOrDie();
  EXPECT_TRUE(webb.DocsWithUrlPrefix("web://weather-table/").empty());
  EXPECT_FALSE(webb.DocsWithUrlPrefix("web://weather/").empty());

  config.table_weather = true;
  config.prose_weather = false;
  SyntheticWeb tables_only = SyntheticWeb::Build(config).ValueOrDie();
  EXPECT_TRUE(tables_only.DocsWithUrlPrefix("web://weather/").empty());
  EXPECT_FALSE(
      tables_only.DocsWithUrlPrefix("web://weather-table/").empty());
  // Both layouts carry the same ground truth.
  EXPECT_EQ(tables_only.truth().temperature.size(),
            webb.truth().temperature.size());
}

TEST(SyntheticWebTest, DeterministicAcrossBuilds) {
  SyntheticWeb a = SyntheticWeb::Build(SmallConfig()).ValueOrDie();
  SyntheticWeb b = SyntheticWeb::Build(SmallConfig()).ValueOrDie();
  ASSERT_EQ(a.documents().size(), b.documents().size());
  for (size_t i = 0; i < a.documents().size(); ++i) {
    EXPECT_EQ(a.documents().Get(static_cast<ir::DocId>(i)).raw,
              b.documents().Get(static_cast<ir::DocId>(i)).raw);
  }
  EXPECT_EQ(a.truth().temperature, b.truth().temperature);
  EXPECT_EQ(a.truth().fare_eur, b.truth().fare_eur);
}

TEST(SyntheticWebTest, DifferentSeedsChangeTemperatures) {
  WebConfig c1 = SmallConfig();
  WebConfig c2 = SmallConfig();
  c2.seed = 77;
  SyntheticWeb a = SyntheticWeb::Build(c1).ValueOrDie();
  SyntheticWeb b = SyntheticWeb::Build(c2).ValueOrDie();
  EXPECT_NE(a.truth().temperature, b.truth().temperature);
}

TEST(SyntheticWebTest, FareTruthPopulated) {
  SyntheticWeb webb = SyntheticWeb::Build(SmallConfig()).ValueOrDie();
  EXPECT_FALSE(webb.truth().fare_eur.empty());
  for (const auto& [route, fare] : webb.truth().fare_eur) {
    EXPECT_NE(route.first, route.second);
    EXPECT_GE(fare, 40.0);
    EXPECT_LT(fare, 240.0);
  }
}

TEST(SyntheticWebTest, BadMonthRejected) {
  WebConfig config = SmallConfig();
  config.months = {13};
  EXPECT_FALSE(SyntheticWeb::Build(config).ok());
}

TEST(SyntheticWebTest, AllCitiesDefault) {
  WebConfig config;
  config.months = {1};
  config.price_pages = 0;
  config.noise_pages = 0;
  config.encyclopedia = false;
  SyntheticWeb webb = SyntheticWeb::Build(config).ValueOrDie();
  EXPECT_EQ(webb.DocsWithUrlPrefix("web://weather/").size(),
            WeatherModel::Cities().size());
}

TEST(SyntheticWebTest, CorruptRateDirtiesPagesButNotTheTruth) {
  WebConfig clean_config = SmallConfig();
  SyntheticWeb clean = SyntheticWeb::Build(clean_config).ValueOrDie();
  EXPECT_TRUE(clean.corrupted_urls().empty());

  WebConfig dirty_config = SmallConfig();
  dirty_config.corrupt_rate = 1.0;
  SyntheticWeb dirty = SyntheticWeb::Build(dirty_config).ValueOrDie();
  // Every weather page (prose + table, per city) comes out corrupted.
  EXPECT_EQ(dirty.corrupted_urls().size(), 4u);

  // The ground truth keeps the clean values: corruption dirties the
  // observable pages, never the reference the benches score against.
  EXPECT_EQ(dirty.truth().temperature, clean.truth().temperature);

  // The corrupted payloads really differ from their clean counterparts.
  auto page_by_url = [](const SyntheticWeb& webb, const std::string& url) {
    for (const ir::Document& doc : webb.documents().documents()) {
      if (doc.url == url) return doc.raw;
    }
    return std::string();
  };
  for (const std::string& url : dirty.corrupted_urls()) {
    std::string clean_page = page_by_url(clean, url);
    ASSERT_FALSE(clean_page.empty()) << url;
    EXPECT_NE(page_by_url(dirty, url), clean_page) << url;
  }
}

TEST(SyntheticWebTest, CorruptionIsDeterministicPerSeed) {
  WebConfig config = SmallConfig();
  config.corrupt_rate = 0.5;
  SyntheticWeb a = SyntheticWeb::Build(config).ValueOrDie();
  SyntheticWeb b = SyntheticWeb::Build(config).ValueOrDie();
  EXPECT_EQ(a.corrupted_urls(), b.corrupted_urls());
  ASSERT_EQ(a.documents().size(), b.documents().size());
  for (size_t i = 0; i < a.documents().size(); ++i) {
    EXPECT_EQ(a.documents().documents()[i].raw,
              b.documents().documents()[i].raw);
  }
}

TEST(SyntheticWebTest, CorruptRateRequiresModes) {
  WebConfig config = SmallConfig();
  config.corrupt_rate = 0.5;
  config.corruption_modes.clear();
  EXPECT_FALSE(SyntheticWeb::Build(config).ok());
}

TEST(SyntheticWebTest, SingleCityWebHasNoPricePagesAndTerminates) {
  WebConfig config;
  config.cities = {"Barcelona"};
  config.months = {1};
  config.price_pages = 5;  // Requested but impossible: routes need 2 cities.
  SyntheticWeb webb = SyntheticWeb::Build(config).ValueOrDie();
  EXPECT_TRUE(webb.DocsWithUrlPrefix("web://prices/").empty());
  EXPECT_TRUE(webb.truth().fare_eur.empty());
  EXPECT_FALSE(webb.DocsWithUrlPrefix("web://weather/").empty());
}

}  // namespace
}  // namespace web
}  // namespace dwqa
