#include "web/question_factory.h"

#include <gtest/gtest.h>

#include <set>

namespace dwqa {
namespace web {
namespace {

SyntheticWeb SmallWeb() {
  WebConfig config;
  config.cities = {"Barcelona", "Madrid"};
  config.months = {1};
  config.price_pages = 4;
  return SyntheticWeb::Build(config).ValueOrDie();
}

TEST(QuestionFactoryTest, ClefSetCoversAllTwentyCategories) {
  auto questions = QuestionFactory::ClefStyleQuestions();
  std::set<qa::AnswerType> types;
  for (const auto& q : questions) types.insert(q.expected_type);
  EXPECT_EQ(types.size(), static_cast<size_t>(qa::kAnswerTypeCount));
}

TEST(QuestionFactoryTest, ClefQuestionsHaveGolds) {
  for (const auto& q : QuestionFactory::ClefStyleQuestions()) {
    EXPECT_FALSE(q.question.empty());
    // Every question has a gold string or numeric gold (one weather
    // question defers to the synthetic truth).
    if (q.expected_type != qa::AnswerType::kNumericalMeasure) {
      EXPECT_FALSE(q.gold.empty() &&
                   q.gold_value == GoldQuestion::kNoGoldValue)
          << q.question;
    }
  }
}

TEST(QuestionFactoryTest, WeatherQuestionsPerCityMonth) {
  SyntheticWeb webb = SmallWeb();
  auto questions = QuestionFactory::WeatherQuestions(webb);
  ASSERT_EQ(questions.size(), 2u);  // 2 cities × 1 month.
  for (const auto& q : questions) {
    EXPECT_NE(q.question.find("January of 2004"), std::string::npos);
    EXPECT_EQ(q.expected_type, qa::AnswerType::kNumericalMeasure);
    EXPECT_EQ(q.gold.size(), 31u);  // One acceptable value per day.
  }
}

TEST(QuestionFactoryTest, AirportQuestionsSubstituteCityNames) {
  SyntheticWeb webb = SmallWeb();
  auto questions = QuestionFactory::AirportWeatherQuestions(
      webb, {{"barcelona", "El Prat"}, {"madrid", "Barajas"}});
  ASSERT_EQ(questions.size(), 2u);
  bool prat = false;
  for (const auto& q : questions) {
    if (q.question.find("El Prat") != std::string::npos) prat = true;
    EXPECT_EQ(q.question.find("Barcelona"), std::string::npos);
  }
  EXPECT_TRUE(prat);
}

TEST(QuestionFactoryTest, PriceQuestionsMatchTruth) {
  SyntheticWeb webb = SmallWeb();
  auto questions = QuestionFactory::PriceQuestions(webb);
  EXPECT_EQ(questions.size(), webb.truth().fare_eur.size());
  for (const auto& q : questions) {
    EXPECT_NE(q.gold_value, GoldQuestion::kNoGoldValue);
  }
}

TEST(QuestionFactoryTest, MatchesByGoldString) {
  GoldQuestion q;
  q.gold = {"Kuwait"};
  EXPECT_TRUE(QuestionFactory::Matches(q, "the state of Kuwait", false, 0));
  EXPECT_TRUE(QuestionFactory::Matches(q, "KUWAIT", false, 0));
  EXPECT_FALSE(QuestionFactory::Matches(q, "Iraq", false, 0));
}

TEST(QuestionFactoryTest, MatchesByNumericValueWithTolerance) {
  GoldQuestion q;
  q.gold_value = 46.0;
  EXPECT_TRUE(QuestionFactory::Matches(q, "whatever", true, 46.0));
  EXPECT_TRUE(QuestionFactory::Matches(q, "whatever", true, 46.4));
  EXPECT_FALSE(QuestionFactory::Matches(q, "whatever", true, 47.0));
  EXPECT_FALSE(QuestionFactory::Matches(q, "whatever", false, 46.0));
}

TEST(QuestionFactoryTest, NumericAndStringGoldsCombine) {
  GoldQuestion q;
  q.gold = {"120"};
  q.gold_value = 120.0;
  EXPECT_TRUE(QuestionFactory::Matches(q, "120 flights", false, 0));
  EXPECT_TRUE(QuestionFactory::Matches(q, "about", true, 120.2));
}

}  // namespace
}  // namespace web
}  // namespace dwqa
