#include "web/page_generators.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include <cmath>

#include "ir/html.h"

namespace dwqa {
namespace web {
namespace {

TEST(PageGeneratorsTest, ProsePageHasFigure4Shape) {
  WeatherModel model(42);
  std::string html =
      PageGenerators::ProseWeatherPage(model, "Barcelona", 2004, 1)
          .ValueOrDie();
  // Every day appears, newest first, in the paper's two-line format.
  EXPECT_NE(html.find("January 31, 2004"), std::string::npos);
  EXPECT_NE(html.find("January 1, 2004"), std::string::npos);
  EXPECT_NE(html.find("Barcelona Weather: Temperature "), std::string::npos);
  EXPECT_NE(html.find("\xC2\xBA C around "), std::string::npos);
  EXPECT_NE(html.find(" F "), std::string::npos);
  // Newest first.
  EXPECT_LT(html.find("January 31, 2004"), html.find("January 30, 2004"));
}

TEST(PageGeneratorsTest, ProsePublishesRoundedMeanAndItsFahrenheit) {
  WeatherModel model(42);
  Date d(2004, 1, 31);
  double published =
      PageGenerators::PublishedTemperature(model, "Barcelona", d)
          .ValueOrDie();
  EXPECT_DOUBLE_EQ(published, std::round(published));  // Integral.
  std::string html =
      PageGenerators::ProseWeatherPage(model, "Barcelona", 2004, 1)
          .ValueOrDie();
  char expect[64];
  std::snprintf(expect, sizeof(expect), "Temperature %.0f\xC2\xBA C around",
                published);
  EXPECT_NE(html.find(expect), std::string::npos);
}

TEST(PageGeneratorsTest, TablePageUnitsOnlyInHeader) {
  WeatherModel model(42);
  std::string html =
      PageGenerators::TableWeatherPage(model, "Barcelona", 2004, 1)
          .ValueOrDie();
  auto tables = ir::Html::ExtractTables(html);
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_TRUE(tables[0].has_header);
  ASSERT_EQ(tables[0].rows.size(), 32u);  // Header + 31 days.
  // The scale letter only appears in the header cells.
  EXPECT_NE(tables[0].rows[0][1].find("\xC2\xBA\x43"), std::string::npos);
  for (size_t r = 1; r < tables[0].rows.size(); ++r) {
    EXPECT_EQ(tables[0].rows[r][1].find("C"), std::string::npos);
    EXPECT_NE(tables[0].rows[r][1].find("\xC2\xBA"), std::string::npos);
  }
}

TEST(PageGeneratorsTest, TableHighLowStraddlePublishedMean) {
  WeatherModel model(42);
  std::string html =
      PageGenerators::TableWeatherPage(model, "Barcelona", 2004, 1)
          .ValueOrDie();
  auto tables = ir::Html::ExtractTables(html);
  ASSERT_FALSE(tables.empty());
  double mean = PageGenerators::PublishedTemperature(model, "Barcelona",
                                                     Date(2004, 1, 1))
                    .ValueOrDie();
  double high = std::atof(tables[0].rows[1][1].c_str());
  double low = std::atof(tables[0].rows[1][2].c_str());
  EXPECT_DOUBLE_EQ(high, mean + 3.0);
  EXPECT_DOUBLE_EQ(low, mean - 3.0);
}

TEST(PageGeneratorsTest, BadMonthRejected) {
  WeatherModel model(42);
  EXPECT_FALSE(
      PageGenerators::ProseWeatherPage(model, "Barcelona", 2004, 13).ok());
  EXPECT_FALSE(
      PageGenerators::TableWeatherPage(model, "Barcelona", 2004, 0).ok());
  EXPECT_FALSE(
      PageGenerators::ProseWeatherPage(model, "Atlantis", 2004, 1).ok());
}

TEST(PageGeneratorsTest, PricePageMentionsRouteAndFare) {
  std::string page =
      PageGenerators::PricePage("AcmeAir", "Barcelona", "Paris", 2004, 1,
                                120.0);
  EXPECT_NE(page.find("from Barcelona to Paris"), std::string::npos);
  EXPECT_NE(page.find("120 euros"), std::string::npos);
  EXPECT_NE(page.find("AcmeAir"), std::string::npos);
}

TEST(PageGeneratorsTest, NoisePagesIncludeAmbiguityDistractors) {
  bool jfk = false, wayne = false, laguardia = false, elprat = false;
  for (size_t i = 0; i < PageGenerators::NoiseTemplateCount(); ++i) {
    std::string page = PageGenerators::NoisePage(i, nullptr);
    jfk |= page.find("John F. Kennedy") != std::string::npos;
    wayne |= page.find("John Wayne") != std::string::npos;
    laguardia |= page.find("La Guardia") != std::string::npos;
    elprat |= page.find("El Prat") != std::string::npos;
  }
  EXPECT_TRUE(jfk);
  EXPECT_TRUE(wayne);
  EXPECT_TRUE(laguardia);
  EXPECT_TRUE(elprat);
}

TEST(PageGeneratorsTest, NoisePageFooterVariesWithRng) {
  Rng rng(1);
  std::string a = PageGenerators::NoisePage(0, &rng);
  std::string b = PageGenerators::NoisePage(0, &rng);
  EXPECT_NE(a, b);
}

TEST(PageGeneratorsTest, EncyclopediaCoversQuestionFacts) {
  auto pages = PageGenerators::EncyclopediaPages();
  EXPECT_GE(pages.size(), 10u);
  std::string all;
  for (const auto& p : pages) all += p + "\n";
  for (const char* fact :
       {"Sirius", "Kuwait", "capital of Spain", "Data Warehouse",
        "Olympic Games", "1948", "12 percent", "120 flights", "21 years"}) {
    EXPECT_NE(all.find(fact), std::string::npos) << fact;
  }
}

TEST(PageGeneratorsTest, ProseStyleVariants) {
  WeatherModel model(42);
  std::string f_first =
      PageGenerators::ProseWeatherPage(model, "Barcelona", 2004, 1,
                                       ProseStyle::kFahrenheitWithCelsius)
          .ValueOrDie();
  EXPECT_NE(f_first.find(" F around "), std::string::npos);
  std::string f_only =
      PageGenerators::ProseWeatherPage(model, "Barcelona", 2004, 1,
                                       ProseStyle::kFahrenheitOnly)
          .ValueOrDie();
  EXPECT_EQ(f_only.find("\xC2\xBA C"), std::string::npos);
  EXPECT_NE(f_only.find(" F "), std::string::npos);
}

}  // namespace
}  // namespace web
}  // namespace dwqa
