#include "web/weather_model.h"

#include <gtest/gtest.h>

namespace dwqa {
namespace web {
namespace {

TEST(WeatherModelTest, DeterministicPerSeed) {
  WeatherModel a(42), b(42), c(43);
  Date d(2004, 1, 15);
  EXPECT_DOUBLE_EQ(a.TemperatureCelsius("Barcelona", d).ValueOrDie(),
                   b.TemperatureCelsius("Barcelona", d).ValueOrDie());
  EXPECT_NE(a.TemperatureCelsius("Barcelona", d).ValueOrDie(),
            c.TemperatureCelsius("Barcelona", d).ValueOrDie());
}

TEST(WeatherModelTest, SeasonalShape) {
  WeatherModel m(42);
  // July is warmer than January, on average over the month, everywhere.
  for (const CityClimate& city : WeatherModel::Cities()) {
    double jan = 0, jul = 0;
    for (int d = 1; d <= 28; ++d) {
      jan += m.TemperatureCelsius(city.name, Date(2004, 1, d)).ValueOrDie();
      jul += m.TemperatureCelsius(city.name, Date(2004, 7, d)).ValueOrDie();
    }
    EXPECT_GT(jul, jan) << city.name;
  }
}

TEST(WeatherModelTest, MonthlyMeanNearClimate) {
  WeatherModel m(42);
  double sum = 0;
  int n = 0;
  for (int d = 1; d <= 31; ++d) {
    sum += m.TemperatureCelsius("Barcelona", Date(2004, 1, d)).ValueOrDie();
    ++n;
  }
  const CityClimate* bcn = WeatherModel::FindCity("Barcelona").ValueOrDie();
  EXPECT_NEAR(sum / n, bcn->january_mean_c, 2.5);
}

TEST(WeatherModelTest, UnknownCityAndBadDate) {
  WeatherModel m(42);
  EXPECT_TRUE(m.TemperatureCelsius("Atlantis", Date(2004, 1, 1))
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(m.TemperatureCelsius("Barcelona", Date(2004, 2, 30))
                  .status()
                  .IsInvalidArgument());
}

TEST(WeatherModelTest, FindCityCaseInsensitive) {
  EXPECT_TRUE(WeatherModel::FindCity("barcelona").ok());
  EXPECT_TRUE(WeatherModel::FindCity("NEW YORK").ok());
  EXPECT_FALSE(WeatherModel::FindCity("Gotham").ok());
}

TEST(WeatherModelTest, FahrenheitConversionConsistent) {
  WeatherModel m(42);
  Date d(2004, 1, 15);
  double c = m.TemperatureCelsius("Madrid", d).ValueOrDie();
  double f = m.TemperatureFahrenheit("Madrid", d).ValueOrDie();
  EXPECT_NEAR(f, c * 9.0 / 5.0 + 32.0, 1e-9);
  EXPECT_DOUBLE_EQ(WeatherModel::CelsiusToFahrenheit(0.0), 32.0);
  EXPECT_DOUBLE_EQ(WeatherModel::CelsiusToFahrenheit(100.0), 212.0);
}

TEST(WeatherModelTest, ConditionDeterministicAndPlausible) {
  WeatherModel m(42);
  Date d(2004, 1, 15);
  EXPECT_EQ(m.Condition("Paris", d).ValueOrDie(),
            m.Condition("Paris", d).ValueOrDie());
  for (int day = 1; day <= 28; ++day) {
    std::string cond = m.Condition("Paris", Date(2004, 1, day)).ValueOrDie();
    EXPECT_TRUE(cond == "Snow" || cond == "Rain" || cond == "Cloudy" ||
                cond == "Clear skies")
        << cond;
  }
}

TEST(WeatherModelTest, NoiseVariesDayToDay) {
  WeatherModel m(42);
  // Not all January days are equal: the noise is alive.
  double first =
      m.TemperatureCelsius("Barcelona", Date(2004, 1, 1)).ValueOrDie();
  bool varies = false;
  for (int d = 2; d <= 10; ++d) {
    if (m.TemperatureCelsius("Barcelona", Date(2004, 1, d)).ValueOrDie() !=
        first) {
      varies = true;
    }
  }
  EXPECT_TRUE(varies);
}

}  // namespace
}  // namespace web
}  // namespace dwqa
