// Admission-control tests: the bounded queue, the cost budget, per-tenant
// concurrency, the tick-driven token bucket, and the shed counters.

#include "serve/admission.h"

#include <gtest/gtest.h>

#include "common/metric_names.h"
#include "common/metrics.h"

namespace dwqa {
namespace serve {
namespace {

TEST(AdmissionConfigTest, Validation) {
  AdmissionConfig ok;
  EXPECT_TRUE(ok.Validate().ok());

  AdmissionConfig zero_depth;
  zero_depth.max_queue_depth = 0;
  EXPECT_TRUE(zero_depth.Validate().IsInvalidArgument());

  AdmissionConfig negative_cost;
  negative_cost.max_queued_cost = -1.0;
  EXPECT_TRUE(negative_cost.Validate().IsInvalidArgument());

  AdmissionConfig starving_bucket;
  starving_bucket.rate.capacity = 5.0;
  starving_bucket.rate.refill_per_tick = 0.0;
  EXPECT_TRUE(starving_bucket.Validate().IsInvalidArgument());
}

TEST(AdmissionTest, QueueDepthBoundsAdmissions) {
  AdmissionConfig config;
  config.max_queue_depth = 2;
  AdmissionController admission(config);

  EXPECT_TRUE(admission.Admit("a", 1.0, 1).status.ok());
  EXPECT_TRUE(admission.Admit("a", 1.0, 2).status.ok());
  AdmissionDecision shed = admission.Admit("a", 1.0, 3);
  EXPECT_TRUE(shed.status.IsOverloaded());
  EXPECT_EQ(shed.reason, "queue_full");
  EXPECT_EQ(admission.depth(), 2u);

  // Releasing frees a slot.
  admission.Release("a", 1.0);
  EXPECT_TRUE(admission.Admit("a", 1.0, 4).status.ok());
}

TEST(AdmissionTest, CostBudgetShedsExpensiveRequests) {
  AdmissionConfig config;
  config.max_queue_depth = 100;
  config.max_queued_cost = 10.0;
  AdmissionController admission(config);

  EXPECT_TRUE(admission.Admit("a", 8.0, 1).status.ok());
  AdmissionDecision shed = admission.Admit("a", 5.0, 2);
  EXPECT_TRUE(shed.status.IsOverloaded());
  EXPECT_EQ(shed.reason, "cost_budget");
  // A cheaper request still fits.
  EXPECT_TRUE(admission.Admit("a", 2.0, 3).status.ok());
  EXPECT_DOUBLE_EQ(admission.queued_cost(), 10.0);
  admission.Release("a", 8.0);
  admission.Release("a", 2.0);
  EXPECT_DOUBLE_EQ(admission.queued_cost(), 0.0);
}

TEST(AdmissionTest, PerTenantConcurrencyIsolatesTenants) {
  AdmissionConfig config;
  config.max_queue_depth = 100;
  config.per_tenant_concurrency = 2;
  AdmissionController admission(config);

  EXPECT_TRUE(admission.Admit("noisy", 1.0, 1).status.ok());
  EXPECT_TRUE(admission.Admit("noisy", 1.0, 2).status.ok());
  AdmissionDecision shed = admission.Admit("noisy", 1.0, 3);
  EXPECT_TRUE(shed.status.IsOverloaded());
  EXPECT_EQ(shed.reason, "tenant_concurrency");
  // The noisy neighbour does not block the quiet one.
  EXPECT_TRUE(admission.Admit("quiet", 1.0, 4).status.ok());
  EXPECT_EQ(admission.tenant_inflight("noisy"), 2u);
  EXPECT_EQ(admission.tenant_inflight("quiet"), 1u);
}

TEST(AdmissionTest, TokenBucketRateLimitsPerTick) {
  AdmissionConfig config;
  config.max_queue_depth = 100;
  config.rate.capacity = 2.0;
  config.rate.refill_per_tick = 0.5;
  AdmissionController admission(config);

  // Burst of two at tick 1, third is rate limited.
  EXPECT_TRUE(admission.Admit("a", 1.0, 1).status.ok());
  EXPECT_TRUE(admission.Admit("a", 1.0, 1).status.ok());
  AdmissionDecision shed = admission.Admit("a", 1.0, 1);
  EXPECT_TRUE(shed.status.IsOverloaded());
  EXPECT_EQ(shed.reason, "rate_limited");

  // Two ticks later 0.5 * 2 = 1 token has refilled.
  EXPECT_TRUE(admission.Admit("a", 1.0, 3).status.ok());
  EXPECT_FALSE(admission.Admit("a", 1.0, 3).status.ok());

  // Each tenant has its own bucket.
  EXPECT_TRUE(admission.Admit("b", 1.0, 3).status.ok());
}

TEST(AdmissionTest, DisabledBucketAdmitsEverything) {
  TokenBucket bucket;  // Default config: capacity 0 = disabled.
  EXPECT_TRUE(bucket.disabled());
  for (uint64_t tick = 0; tick < 100; ++tick) {
    EXPECT_TRUE(bucket.TryTake(tick));
  }
}

TEST(AdmissionTest, ShedsAndGaugesLandInTheRegistry) {
  AdmissionConfig config;
  config.max_queue_depth = 1;
  AdmissionController admission(config);
  MetricRegistry metrics;
  admission.set_metrics(&metrics);

  ASSERT_TRUE(admission.Admit("a", 2.0, 1).status.ok());
  ASSERT_FALSE(admission.Admit("a", 1.0, 2).status.ok());
  EXPECT_DOUBLE_EQ(
      metrics.Value(kMetricServeRejections, {{"reason", "queue_full"}}),
      1.0);
  EXPECT_DOUBLE_EQ(metrics.Value(kMetricServeQueueDepth), 1.0);
  EXPECT_DOUBLE_EQ(metrics.Value(kMetricServeQueuedCost), 2.0);
  EXPECT_DOUBLE_EQ(
      metrics.Value(kMetricServeTenantInflight, {{"tenant", "a"}}), 1.0);
  admission.Release("a", 2.0);
  EXPECT_DOUBLE_EQ(metrics.Value(kMetricServeQueueDepth), 0.0);
  EXPECT_DOUBLE_EQ(
      metrics.Value(kMetricServeTenantInflight, {{"tenant", "a"}}), 0.0);
}

}  // namespace
}  // namespace serve
}  // namespace dwqa
