// Wire-format tests: framing, request/response round-trips, and the
// question normalization behind the answer-cache key.

#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dwqa {
namespace serve {
namespace {

TEST(EndpointTest, NamesRoundTrip) {
  for (Endpoint endpoint :
       {Endpoint::kAsk, Endpoint::kFeed, Endpoint::kBi, Endpoint::kIngest,
        Endpoint::kHealth, Endpoint::kMetrics}) {
    auto parsed = ParseEndpoint(EndpointName(endpoint));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, endpoint);
  }
  EXPECT_FALSE(ParseEndpoint("teleport").ok());
  EXPECT_FALSE(ParseEndpoint("").ok());
}

TEST(RequestTest, SerializeParseRoundTrip) {
  Request req;
  req.id = 7;
  req.tenant = "acme";
  req.endpoint = Endpoint::kAsk;
  req.questions = {"What is the temperature in Madrid?"};
  req.budget = 12.5;
  req.no_cache = true;
  auto parsed = Request::Parse(req.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->id, 7u);
  EXPECT_EQ(parsed->tenant, "acme");
  EXPECT_EQ(parsed->endpoint, Endpoint::kAsk);
  ASSERT_EQ(parsed->questions.size(), 1u);
  EXPECT_EQ(parsed->questions[0], "What is the temperature in Madrid?");
  EXPECT_DOUBLE_EQ(parsed->budget, 12.5);
  EXPECT_TRUE(parsed->no_cache);
  EXPECT_EQ(parsed->fact_name, "Weather");
  EXPECT_EQ(parsed->attribute, "temperature");
}

TEST(RequestTest, FeedCarriesSeveralQuestionsAndFactTarget) {
  Request req;
  req.id = 1;
  req.tenant = "acme";
  req.endpoint = Endpoint::kFeed;
  req.fact_name = "Prices";
  req.attribute = "price";
  req.questions = {"q one", "q two", "q three"};
  auto parsed = Request::Parse(req.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->endpoint, Endpoint::kFeed);
  EXPECT_EQ(parsed->fact_name, "Prices");
  EXPECT_EQ(parsed->attribute, "price");
  EXPECT_EQ(parsed->questions,
            (std::vector<std::string>{"q one", "q two", "q three"}));
}

TEST(RequestTest, IngestRoundTripsHeadersAndPayloadContent) {
  Request req;
  req.id = 11;
  req.tenant = "acme";
  req.endpoint = Endpoint::kIngest;
  req.doc_url = "http://example.test/new-page";
  req.doc_title = "A new page";
  req.doc_format = "html";
  // Content travels in the payload section, so newlines and '=' survive.
  req.doc_content = "<html>line one\nkey = value\n</html>\n";
  auto parsed = Request::Parse(req.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->endpoint, Endpoint::kIngest);
  EXPECT_EQ(parsed->tenant, "acme");
  EXPECT_EQ(parsed->doc_url, "http://example.test/new-page");
  EXPECT_EQ(parsed->doc_title, "A new page");
  EXPECT_EQ(parsed->doc_format, "html");
  EXPECT_EQ(parsed->doc_content, req.doc_content);
}

TEST(RequestTest, IngestRejectsUnknownDocumentFormat) {
  auto parsed = Request::Parse("endpoint=ingest\nid=1\nformat=pdf\n\nbody");
  ASSERT_FALSE(parsed.ok());
  // The request-shape validation error names the offending value — the
  // message examples/serve and docs/SERVING.md point callers at.
  EXPECT_TRUE(parsed.status().IsInvalidArgument());
  EXPECT_NE(parsed.status().message().find("protocol: unknown format 'pdf'"),
            std::string::npos)
      << parsed.status().ToString();
}

TEST(RequestTest, BiScopeRoundTripsAndRejectsUnknownValues) {
  Request req;
  req.id = 21;
  req.tenant = "acme";
  req.endpoint = Endpoint::kBi;
  req.scope = "federated";
  auto parsed = Request::Parse(req.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->endpoint, Endpoint::kBi);
  EXPECT_EQ(parsed->scope, "federated");

  // "local" and an absent scope both parse (and mean the same thing).
  auto local = Request::Parse("endpoint=bi\nid=1\nscope=local\n");
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(local->scope, "local");
  auto none = Request::Parse("endpoint=bi\nid=1\n");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->scope.empty());

  auto bad = Request::Parse("endpoint=bi\nid=1\nscope=galactic\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
  EXPECT_NE(bad.status().message().find("protocol: unknown scope 'galactic'"),
            std::string::npos)
      << bad.status().ToString();
}

TEST(RequestTest, RejectsMalformedBodies) {
  // No endpoint at all.
  EXPECT_FALSE(Request::Parse("id=1\n").ok());
  // Unknown endpoint.
  EXPECT_FALSE(Request::Parse("endpoint=warp\nid=1\n").ok());
  // Non-numeric id.
  EXPECT_FALSE(Request::Parse("endpoint=ask\nid=abc\n").ok());
  // Non-numeric budget.
  EXPECT_FALSE(Request::Parse("endpoint=ask\nid=1\nbudget=lots\n").ok());
  // Header line without '='.
  EXPECT_FALSE(Request::Parse("endpoint=ask\nbare line\n").ok());
}

TEST(RequestTest, IgnoresUnknownKeysForForwardCompatibility) {
  auto parsed =
      Request::Parse("endpoint=ask\nid=3\nshiny_new_option=yes\nq=hi\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->id, 3u);
  ASSERT_EQ(parsed->questions.size(), 1u);
}

TEST(ResponseTest, SerializeParseRoundTripWithAnswerAndPayload) {
  Response resp;
  resp.id = 9;
  resp.endpoint = "ask";
  resp.status = "ok";
  resp.code = "OK";
  resp.cached = true;
  resp.stale = true;
  resp.answer = {{"degradation", "Full"}, {"answered", "1"},
                 {"answer", "8\xC2\xBA\x43"}};
  resp.payload = "line one\nline two\n";
  const std::string body = resp.Serialize();
  auto parsed = Response::Parse(body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->id, 9u);
  EXPECT_EQ(parsed->status, "ok");
  EXPECT_TRUE(parsed->cached);
  EXPECT_TRUE(parsed->stale);
  EXPECT_EQ(parsed->AnswerField("degradation"), "Full");
  EXPECT_EQ(parsed->AnswerField("answer"), "8\xC2\xBA\x43");
  EXPECT_EQ(parsed->AnswerField("missing"), "");
  EXPECT_EQ(parsed->payload, "line one\nline two\n");
  // Re-serializing the parse reproduces the body byte for byte.
  EXPECT_EQ(parsed->Serialize(), body);
}

TEST(ResponseTest, AnswerBlockIsTheCacheUnit) {
  Response resp;
  resp.answer = {{"a", "1"}, {"b", "two"}};
  EXPECT_EQ(resp.AnswerBlock(), "a=1\nb=two\n");
}

TEST(FramingTest, WriteReadRoundTrip) {
  Framing framing;
  std::stringstream stream;
  ASSERT_TRUE(framing.WriteFrame(stream, "endpoint=ask\nid=1\n").ok());
  ASSERT_TRUE(framing.WriteFrame(stream, "second body").ok());
  auto first = framing.ReadFrame(stream);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, "endpoint=ask\nid=1\n");
  auto second = framing.ReadFrame(stream);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, "second body");
  // Clean EOF is NotFound, distinguishable from a corrupt stream.
  EXPECT_TRUE(framing.ReadFrame(stream).status().IsNotFound());
}

TEST(FramingTest, RejectsBadMagicOversizeAndTruncation) {
  Framing framing;
  framing.max_frame_bytes = 16;

  std::stringstream bad_magic("HTTP/1.1 200 OK\n");
  EXPECT_TRUE(
      framing.ReadFrame(bad_magic).status().IsInvalidArgument());

  std::stringstream oversize("DWQA1 1024\n");
  EXPECT_TRUE(framing.ReadFrame(oversize).status().IsInvalidArgument());

  std::stringstream truncated("DWQA1 10\nabc");
  EXPECT_TRUE(framing.ReadFrame(truncated).status().IsIOError());

  std::stringstream bad_length("DWQA1 ten\n");
  EXPECT_TRUE(
      framing.ReadFrame(bad_length).status().IsInvalidArgument());
}

TEST(NormalizeQuestionTest, CollapsesCaseWhitespaceAndPunctuation) {
  EXPECT_EQ(NormalizeQuestion("What is  the temperature in Madrid?"),
            "what is the temperature in madrid");
  EXPECT_EQ(NormalizeQuestion("  what IS the\ttemperature in MADRID ?! "),
            "what is the temperature in madrid");
  // Different questions stay different.
  EXPECT_NE(NormalizeQuestion("temperature in Madrid"),
            NormalizeQuestion("temperature in Barcelona"));
  EXPECT_EQ(NormalizeQuestion("???"), "");
}

}  // namespace
}  // namespace serve
}  // namespace dwqa
