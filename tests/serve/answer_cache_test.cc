// Answer-cache tests: tick-counted TTL expiry, LRU eviction at the byte
// cap, replacement, and the cache metrics.

#include "serve/answer_cache.h"

#include <gtest/gtest.h>

#include <string>

#include "common/metric_names.h"
#include "common/metrics.h"

namespace dwqa {
namespace serve {
namespace {

CachedAnswer MakeAnswer(const std::string& text,
                        qa::DegradationLevel level =
                            qa::DegradationLevel::kFull) {
  CachedAnswer answer;
  answer.answer = {{"degradation", qa::DegradationLevelName(level)},
                   {"answered", "1"},
                   {"answer", text}};
  answer.level = level;
  return answer;
}

TEST(AnswerCacheConfigTest, Validation) {
  AnswerCacheConfig ok;
  EXPECT_TRUE(ok.Validate().ok());
  AnswerCacheConfig zero_ttl;
  zero_ttl.ttl_ticks = 0;
  EXPECT_TRUE(zero_ttl.Validate().IsInvalidArgument());
  AnswerCacheConfig zero_bytes;
  zero_bytes.max_bytes = 0;
  EXPECT_TRUE(zero_bytes.Validate().IsInvalidArgument());
}

TEST(AnswerCacheTest, MissThenHit) {
  AnswerCache cache;
  EXPECT_FALSE(cache.Get("q", 1).found);
  cache.Put("q", MakeAnswer("8C"), 1);
  CacheLookup lookup = cache.Get("q", 2);
  ASSERT_TRUE(lookup.found);
  EXPECT_FALSE(lookup.stale);
  EXPECT_EQ(lookup.entry.answer[2].second, "8C");
  EXPECT_EQ(lookup.entry.level, qa::DegradationLevel::kFull);
}

TEST(AnswerCacheTest, TtlExpiryIsTickCounted) {
  AnswerCacheConfig config;
  config.ttl_ticks = 10;
  AnswerCache cache(config);
  cache.Put("q", MakeAnswer("8C"), 100);

  // Exactly at the TTL boundary the entry is still fresh...
  CacheLookup at_ttl = cache.Get("q", 110);
  ASSERT_TRUE(at_ttl.found);
  EXPECT_FALSE(at_ttl.stale);

  // ...one tick past it, the entry is stale but still served as one.
  CacheLookup past_ttl = cache.Get("q", 111);
  ASSERT_TRUE(past_ttl.found);
  EXPECT_TRUE(past_ttl.stale);
  EXPECT_EQ(past_ttl.entry.answer[2].second, "8C");
}

TEST(AnswerCacheTest, ReplacementRefreshesTtlAndValue) {
  AnswerCacheConfig config;
  config.ttl_ticks = 10;
  AnswerCache cache(config);
  cache.Put("q", MakeAnswer("old"), 1);
  cache.Put("q", MakeAnswer("new"), 100);
  EXPECT_EQ(cache.size(), 1u);
  CacheLookup lookup = cache.Get("q", 105);
  ASSERT_TRUE(lookup.found);
  EXPECT_FALSE(lookup.stale);
  EXPECT_EQ(lookup.entry.answer[2].second, "new");
}

TEST(AnswerCacheTest, LruEvictionAtTheByteCap) {
  AnswerCacheConfig config;
  // Room for roughly three small entries.
  config.max_bytes = 500;
  AnswerCache cache(config);
  cache.Put("first", MakeAnswer("1"), 1);
  cache.Put("second", MakeAnswer("2"), 2);
  cache.Put("third", MakeAnswer("3"), 3);
  ASSERT_EQ(cache.size(), 3u);

  // Touch "first" so "second" becomes the LRU tail.
  ASSERT_TRUE(cache.Get("first", 4).found);

  cache.Put("fourth", MakeAnswer("4"), 5);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_TRUE(cache.Get("first", 6).found);
  EXPECT_FALSE(cache.Get("second", 6).found);  // Evicted as LRU.
  EXPECT_TRUE(cache.Get("third", 6).found);
  EXPECT_TRUE(cache.Get("fourth", 6).found);
  EXPECT_LE(cache.bytes(), config.max_bytes);
}

TEST(AnswerCacheTest, OversizedEntryIsDroppedNotCached) {
  AnswerCacheConfig config;
  config.max_bytes = 200;
  AnswerCache cache(config);
  cache.Put("small", MakeAnswer("x"), 1);
  CachedAnswer huge = MakeAnswer(std::string(10'000, 'y'));
  cache.Put("huge", huge, 2);
  // The oversize insert neither landed nor evicted the resident entry.
  EXPECT_FALSE(cache.Get("huge", 3).found);
  EXPECT_TRUE(cache.Get("small", 3).found);
}

TEST(AnswerCacheTest, MetricsCountLookupsInsertionsAndEvictions) {
  AnswerCacheConfig config;
  config.ttl_ticks = 5;
  config.max_bytes = 300;
  AnswerCache cache(config);
  MetricRegistry metrics;
  cache.set_metrics(&metrics, "acme");

  cache.Get("q", 1);                     // miss
  cache.Put("q", MakeAnswer("a"), 1);    // insert
  cache.Get("q", 2);                     // hit
  cache.Get("q", 20);                    // stale
  cache.Put("r", MakeAnswer("b"), 21);   // insert
  cache.Put("s", MakeAnswer("c"), 22);   // insert, evicts LRU

  auto lookups = [&](const char* result) {
    return metrics.Value(kMetricServeCacheLookups,
                         {{"tenant", "acme"}, {"result", result}});
  };
  EXPECT_DOUBLE_EQ(lookups("miss"), 1.0);
  EXPECT_DOUBLE_EQ(lookups("hit"), 1.0);
  EXPECT_DOUBLE_EQ(lookups("stale"), 1.0);
  EXPECT_DOUBLE_EQ(
      metrics.Value(kMetricServeCacheInsertions, {{"tenant", "acme"}}), 3.0);
  EXPECT_GE(
      metrics.Value(kMetricServeCacheEvictions, {{"tenant", "acme"}}), 1.0);
  EXPECT_EQ(
      metrics.Value(kMetricServeCacheEntries, {{"tenant", "acme"}}),
      static_cast<double>(cache.size()));
  EXPECT_EQ(metrics.Value(kMetricServeCacheBytes, {{"tenant", "acme"}}),
            static_cast<double>(cache.bytes()));
}

}  // namespace
}  // namespace serve
}  // namespace dwqa
