// Graceful-shutdown tests: drain completes every accepted request, flushes
// the Step-5 checkpoint, rejects late arrivals with the typed Draining
// code, and the framed serving loop settles every frame before draining.
// Runs under the `threads` label too: the concurrent-clients test is the
// TSan surface of the serving layer.

#include <gtest/gtest.h>
#include <unistd.h>

#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/date.h"
#include "common/metric_names.h"
#include "common/thread_pool.h"
#include "integration/last_minute_sales.h"
#include "serve/server.h"
#include "web/synthetic_web.h"

namespace dwqa {
namespace serve {
namespace {

constexpr char kQuestion[] =
    "What is the temperature in Barcelona in January of 2004?";

class DrainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    web::WebConfig config;
    config.seed = 42;
    config.months = {1};
    web_ = std::make_unique<web::SyntheticWeb>(
        web::SyntheticWeb::Build(config).ValueOrDie());
    uml_ = integration::LastMinuteSales::MakeUmlModel();
    wh_ = std::make_unique<dw::Warehouse>(
        integration::LastMinuteSales::MakeWarehouse().ValueOrDie());
    ASSERT_TRUE(integration::LastMinuteSales::GenerateSales(
                    wh_.get(), web_->weather(), Date(2004, 1, 1), 60)
                    .ok());
  }

  ServeTenantConfig TenantConfig(const std::string& name) {
    ServeTenantConfig tenant;
    tenant.name = name;
    tenant.warehouse = wh_.get();
    tenant.uml = &uml_;
    tenant.docs = &web_->documents();
    tenant.pipeline = integration::LastMinuteSales::DefaultPipelineConfig();
    tenant.retry.sleep = false;
    return tenant;
  }

  Request Ask(const std::string& question, uint64_t id) {
    Request request;
    request.id = id;
    request.tenant = "a";
    request.endpoint = Endpoint::kAsk;
    request.questions = {question};
    return request;
  }

  std::unique_ptr<web::SyntheticWeb> web_;
  ontology::UmlModel uml_;
  std::unique_ptr<dw::Warehouse> wh_;
};

TEST_F(DrainTest, DrainFlushesCheckpointAndRejectsLateArrivals) {
  const std::string checkpoint =
      ::testing::TempDir() + "/dwqa_serve_drain_checkpoint." +
      std::to_string(::getpid()) + ".json";
  std::remove(checkpoint.c_str());

  ServeTenantConfig tenant = TenantConfig("a");
  tenant.pipeline.resilience.checkpoint_path = checkpoint;
  QaServer server;
  ASSERT_TRUE(server.AddTenant(tenant).ok());

  Request feed;
  feed.id = 1;
  feed.tenant = "a";
  feed.endpoint = Endpoint::kFeed;
  feed.questions = {kQuestion};
  ASSERT_EQ(server.Handle(feed).status, "ok");

  server.RequestDrain();
  EXPECT_TRUE(server.draining());

  // Late arrivals get the typed Draining rejection, not an error and not a
  // hang.
  Response late = server.Handle(Ask(kQuestion, 2));
  EXPECT_EQ(late.status, "rejected");
  EXPECT_EQ(late.code, "Draining");
  EXPECT_EQ(late.reason, "draining");

  // Health still answers while draining and says so.
  Request health;
  health.id = 3;
  health.endpoint = Endpoint::kHealth;
  Response healthy = server.Handle(health);
  ASSERT_EQ(healthy.status, "ok");
  EXPECT_EQ(healthy.AnswerField("draining"), "1");

  ASSERT_TRUE(server.Drain().ok());
  EXPECT_EQ(server.inflight(), 0u);
  EXPECT_DOUBLE_EQ(server.metrics()->Value(kMetricServeDraining), 1.0);

  // The drain flushed the tenant's feed checkpoint; a fresh pipeline can
  // resume from it.
  std::ifstream saved(checkpoint);
  EXPECT_TRUE(saved.good());
  integration::IntegrationPipeline resumed(
      wh_.get(), &uml_, integration::LastMinuteSales::DefaultPipelineConfig());
  EXPECT_TRUE(resumed.LoadFeedCheckpoint(checkpoint).ok());

  // Drain is idempotent.
  ASSERT_TRUE(server.Drain().ok());
  std::remove(checkpoint.c_str());
}

TEST_F(DrainTest, ConcurrentClientsAllSettleAcrossADrain) {
  ServerConfig config;
  config.admission.max_queue_depth = 8;
  config.admission.per_tenant_concurrency = 4;
  QaServer server(config);
  ASSERT_TRUE(server.AddTenant(TenantConfig("a")).ok());

  const std::vector<std::string> questions = {
      "What is the temperature in Barcelona in January of 2004?",
      "What is the temperature in Madrid in January of 2004?",
      "What is the temperature in Alicante in January of 2004?",
  };

  ThreadPool clients(4);
  std::vector<std::future<Response>> responses;
  for (uint64_t id = 1; id <= 16; ++id) {
    const std::string& question = questions[id % questions.size()];
    responses.push_back(clients.Submit(
        [this, &server, question, id] { return server.Handle(Ask(question, id)); }));
  }
  // Drain while clients are still in flight: accepted requests complete,
  // the rest get typed rejections.
  server.RequestDrain();
  ASSERT_TRUE(server.Drain().ok());

  size_t answered = 0;
  size_t rejected = 0;
  for (auto& future : responses) {
    Response response = future.get();
    if (response.status == "ok") {
      ++answered;
      EXPECT_FALSE(response.AnswerField("degradation").empty());
    } else {
      ASSERT_EQ(response.status, "rejected") << response.payload;
      ++rejected;
      // Every rejection is typed — a client can always tell what to do.
      EXPECT_TRUE(response.code == "Overloaded" ||
                  response.code == "Draining")
          << response.code;
    }
  }
  EXPECT_EQ(answered + rejected, 16u);
  EXPECT_EQ(server.inflight(), 0u);
}

TEST_F(DrainTest, ServeStreamAnswersEveryFrameThenDrains) {
  QaServer server;
  ASSERT_TRUE(server.AddTenant(TenantConfig("a")).ok());

  Framing framing;
  std::stringstream in;
  ASSERT_TRUE(framing.WriteFrame(in, Ask(kQuestion, 1).Serialize()).ok());
  ASSERT_TRUE(framing.WriteFrame(in, Ask(kQuestion, 2).Serialize()).ok());
  // A well-framed but malformed request: answered in order, session lives.
  ASSERT_TRUE(framing.WriteFrame(in, "endpoint=warp\nid=9\n").ok());
  Request health;
  health.id = 3;
  health.endpoint = Endpoint::kHealth;
  ASSERT_TRUE(framing.WriteFrame(in, health.Serialize()).ok());

  std::stringstream out;
  ASSERT_TRUE(server.ServeStream(in, out).ok());
  EXPECT_TRUE(server.draining());

  std::vector<Response> responses;
  while (true) {
    auto body = framing.ReadFrame(out);
    if (!body.ok()) {
      ASSERT_TRUE(body.status().IsNotFound()) << body.status().message();
      break;
    }
    auto parsed = Response::Parse(*body);
    ASSERT_TRUE(parsed.ok());
    responses.push_back(*parsed);
  }
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_EQ(responses[0].id, 1u);
  EXPECT_EQ(responses[0].status, "ok");
  EXPECT_FALSE(responses[0].cached);
  EXPECT_EQ(responses[1].id, 2u);
  EXPECT_TRUE(responses[1].cached);
  EXPECT_EQ(responses[1].AnswerBlock(), responses[0].AnswerBlock());
  EXPECT_EQ(responses[2].status, "rejected");
  EXPECT_EQ(responses[2].code, "BadRequest");
  EXPECT_EQ(responses[3].id, 3u);
  EXPECT_EQ(responses[3].status, "ok");
}

}  // namespace
}  // namespace serve
}  // namespace dwqa
