// QaServer tests: multi-tenant serving over real pipelines — ask with
// caching and byte-identical hits, stale-while-degraded fallbacks, typed
// rejections (Overloaded / DeadlineExceeded / CircuitOpen / UnknownTenant /
// BadRequest), the feed and BI endpoints, health/metrics bypassing
// admission, and the retry-pressure mirroring of served asks.

#include "serve/server.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/date.h"
#include "common/metric_names.h"
#include "dw/federation/federated_engine.h"
#include "dw/federation/partner_warehouse.h"
#include "dw/materialized_view.h"
#include "integration/last_minute_sales.h"
#include "web/synthetic_web.h"

namespace dwqa {
namespace serve {
namespace {

constexpr char kQuestion[] =
    "What is the temperature in Barcelona in January of 2004?";

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    web::WebConfig config;
    config.seed = 42;
    config.months = {1};
    web_ = std::make_unique<web::SyntheticWeb>(
        web::SyntheticWeb::Build(config).ValueOrDie());
    uml_ = integration::LastMinuteSales::MakeUmlModel();
    wh_a_ = std::make_unique<dw::Warehouse>(
        integration::LastMinuteSales::MakeWarehouse().ValueOrDie());
    wh_b_ = std::make_unique<dw::Warehouse>(
        integration::LastMinuteSales::MakeWarehouse().ValueOrDie());
    ASSERT_TRUE(integration::LastMinuteSales::GenerateSales(
                    wh_a_.get(), web_->weather(), Date(2004, 1, 1), 60)
                    .ok());
  }

  ServeTenantConfig TenantConfig(const std::string& name,
                                 dw::Warehouse* warehouse) {
    ServeTenantConfig tenant;
    tenant.name = name;
    tenant.warehouse = warehouse;
    tenant.uml = &uml_;
    tenant.docs = &web_->documents();
    tenant.pipeline = integration::LastMinuteSales::DefaultPipelineConfig();
    tenant.retry.sleep = false;
    return tenant;
  }

  Request Ask(const std::string& tenant, const std::string& question,
              uint64_t id = 1) {
    Request request;
    request.id = id;
    request.tenant = tenant;
    request.endpoint = Endpoint::kAsk;
    request.questions = {question};
    return request;
  }

  std::unique_ptr<web::SyntheticWeb> web_;
  ontology::UmlModel uml_;
  std::unique_ptr<dw::Warehouse> wh_a_;
  std::unique_ptr<dw::Warehouse> wh_b_;
};

TEST_F(ServeTest, AskAnswersThenServesByteIdenticalCacheHit) {
  QaServer server;
  ASSERT_TRUE(server.AddTenant(TenantConfig("a", wh_a_.get())).ok());

  Response cold = server.Handle(Ask("a", kQuestion, 1));
  ASSERT_EQ(cold.status, "ok") << cold.payload;
  EXPECT_EQ(cold.code, "OK");
  EXPECT_FALSE(cold.cached);
  EXPECT_EQ(cold.AnswerField("answered"), "1");
  EXPECT_EQ(cold.AnswerField("degradation"), "Full");
  EXPECT_FALSE(cold.AnswerField("answer").empty());

  Response hit = server.Handle(Ask("a", kQuestion, 2));
  ASSERT_EQ(hit.status, "ok");
  EXPECT_TRUE(hit.cached);
  EXPECT_FALSE(hit.stale);
  // The acceptance criterion: a cache hit is byte-identical to the cold
  // path's answer block.
  EXPECT_EQ(hit.AnswerBlock(), cold.AnswerBlock());
  EXPECT_EQ(hit.id, 2u);

  // Normalization: case/whitespace/punctuation variants share the entry.
  Response variant = server.Handle(
      Ask("a", "what is THE temperature  in barcelona in January of 2004 ?",
          3));
  EXPECT_TRUE(variant.cached);
  EXPECT_EQ(variant.AnswerBlock(), cold.AnswerBlock());

  // nocache bypasses the cache and still answers identically.
  Request fresh = Ask("a", kQuestion, 4);
  fresh.no_cache = true;
  Response live = server.Handle(fresh);
  ASSERT_EQ(live.status, "ok");
  EXPECT_FALSE(live.cached);
  EXPECT_EQ(live.AnswerBlock(), cold.AnswerBlock());
}

TEST_F(ServeTest, TenantsAreIsolated) {
  QaServer server;
  ASSERT_TRUE(server.AddTenant(TenantConfig("a", wh_a_.get())).ok());
  ASSERT_TRUE(server.AddTenant(TenantConfig("b", wh_b_.get())).ok());
  ASSERT_TRUE(server.AddTenant(TenantConfig("a", wh_a_.get()))
                  .IsAlreadyExists());

  ASSERT_EQ(server.Handle(Ask("a", kQuestion, 1)).status, "ok");
  // Tenant a's question is not in tenant b's cache, and did not touch
  // tenant b's pipeline registry.
  Response other = server.Handle(Ask("b", kQuestion, 2));
  ASSERT_EQ(other.status, "ok");
  EXPECT_FALSE(other.cached);
  EXPECT_DOUBLE_EQ(
      server.tenant_pipeline("a")->metrics()->Value("dwqa_qa_questions_total"),
      server.tenant_pipeline("b")->metrics()->Value(
          "dwqa_qa_questions_total"));
}

TEST_F(ServeTest, UnknownTenantAndMalformedRequestsGetTypedRejections) {
  QaServer server;
  ASSERT_TRUE(server.AddTenant(TenantConfig("a", wh_a_.get())).ok());

  Response unknown = server.Handle(Ask("nobody", kQuestion));
  EXPECT_EQ(unknown.status, "rejected");
  EXPECT_EQ(unknown.code, "UnknownTenant");
  EXPECT_EQ(unknown.reason, "unknown_tenant");

  Request no_question = Ask("a", kQuestion);
  no_question.questions.clear();
  Response bad = server.Handle(no_question);
  EXPECT_EQ(bad.status, "rejected");
  EXPECT_EQ(bad.code, "BadRequest");

  Request two_questions = Ask("a", kQuestion);
  two_questions.questions.push_back("another?");
  EXPECT_EQ(server.Handle(two_questions).code, "BadRequest");

  Request empty_feed;
  empty_feed.tenant = "a";
  empty_feed.endpoint = Endpoint::kFeed;
  EXPECT_EQ(server.Handle(empty_feed).code, "BadRequest");

  EXPECT_DOUBLE_EQ(server.metrics()->Value(kMetricServeRejections,
                                           {{"reason", "unknown_tenant"}}),
                   1.0);
  EXPECT_DOUBLE_EQ(server.metrics()->Value(kMetricServeRejections,
                                           {{"reason", "bad_request"}}),
                   3.0);
}

TEST_F(ServeTest, RateLimitShedsWithTypedOverloaded) {
  ServerConfig config;
  config.admission.rate.capacity = 1.0;
  config.admission.rate.refill_per_tick = 0.0001;
  QaServer server(config);
  ASSERT_TRUE(server.AddTenant(TenantConfig("a", wh_a_.get())).ok());

  Request fresh = Ask("a", kQuestion, 1);
  fresh.no_cache = true;
  ASSERT_EQ(server.Handle(fresh).status, "ok");

  fresh.id = 2;
  Response shed = server.Handle(fresh);
  EXPECT_EQ(shed.status, "rejected");
  EXPECT_EQ(shed.code, "Overloaded");
  EXPECT_EQ(shed.reason, "rate_limited");
  EXPECT_DOUBLE_EQ(server.metrics()->Value(kMetricServeRejections,
                                           {{"reason", "rate_limited"}}),
                   1.0);
  EXPECT_DOUBLE_EQ(
      server.metrics()->Value(kMetricServeRequests,
                              {{"endpoint", "ask"}, {"outcome", "rejected"}}),
      1.0);
}

TEST_F(ServeTest, TinyBudgetEndsInAnswerOrTypedDeadlineRejection) {
  QaServer server;
  ASSERT_TRUE(server.AddTenant(TenantConfig("a", wh_a_.get())).ok());

  Request starved = Ask("a", kQuestion);
  starved.no_cache = true;
  starved.budget = 1.0;
  Response response = server.Handle(starved);
  // The robustness contract: a starved request still ends in either a
  // (possibly degraded) answer or the typed DeadlineExceeded rejection —
  // never a hang, never an untyped error.
  if (response.status == "ok") {
    EXPECT_FALSE(response.AnswerField("degradation").empty());
  } else {
    EXPECT_EQ(response.status, "rejected");
    EXPECT_EQ(response.code, "DeadlineExceeded");
    EXPECT_EQ(response.reason, "deadline_exceeded");
  }
}

TEST_F(ServeTest, StaleWhileDegradedServesTheExpiredCacheEntry) {
  ServeTenantConfig tenant = TenantConfig("a", wh_a_.get());
  tenant.cache.ttl_ticks = 1;
  QaServer server;
  ASSERT_TRUE(server.AddTenant(tenant).ok());

  Response cold = server.Handle(Ask("a", kQuestion, 1));
  ASSERT_EQ(cold.status, "ok");
  ASSERT_EQ(cold.AnswerField("answered"), "1");

  // Let the entry outlive its TTL, then starve the live path: the stale
  // entry beats whatever rung the degraded live ask could reach.
  server.AdvanceTicks(10);
  Request starved = Ask("a", kQuestion, 2);
  starved.budget = 1.0;
  Response fallback = server.Handle(starved);
  ASSERT_EQ(fallback.status, "ok");
  EXPECT_TRUE(fallback.cached);
  EXPECT_TRUE(fallback.stale);
  EXPECT_EQ(fallback.AnswerBlock(), cold.AnswerBlock());
  EXPECT_GE(server.metrics()->Value(kMetricServeStaleServed,
                                    {{"tenant", "a"}}),
            1.0);
}

TEST_F(ServeTest, BreakerTripsFastFailsAndMirrorsRetryPressure) {
  ServeTenantConfig tenant = TenantConfig("chaotic", wh_b_.get());
  FaultRule always_down;
  always_down.point = kFaultPointFetch;
  always_down.probability = 1.0;
  tenant.fault.rules = {always_down};
  tenant.retry.max_attempts = 2;
  tenant.breaker.enabled = true;
  tenant.breaker.failure_threshold = 1;
  tenant.breaker.cooldown_attempts = 2;
  QaServer server;
  ASSERT_TRUE(server.AddTenant(tenant).ok());

  // First ask: both attempts hit the armed fault, the request errors, the
  // breaker trips — and the retry pressure is mirrored into the tenant's
  // registry (the satellite fix: RetryStats no longer die inside the
  // request).
  Response down = server.Handle(Ask("chaotic", kQuestion, 1));
  EXPECT_EQ(down.status, "error");
  EXPECT_EQ(down.code, "Unavailable");
  MetricRegistry* registry = server.tenant_pipeline("chaotic")->metrics();
  EXPECT_DOUBLE_EQ(
      registry->Value(kMetricRetryAttempts, {{"stage", "serve.ask"}}), 2.0);
  EXPECT_DOUBLE_EQ(registry->Value(kMetricRetryTransientFailures,
                                   {{"stage", "serve.ask"}}),
                   2.0);
  EXPECT_DOUBLE_EQ(
      registry->Value(kMetricRetryGiveups, {{"stage", "serve.ask"}}), 1.0);

  // While open: fast-fail with the typed CircuitOpen rejection, no retry
  // budget burned (the attempt counters do not move).
  for (uint64_t id = 2; id <= 3; ++id) {
    Response rejected = server.Handle(Ask("chaotic", kQuestion, id));
    EXPECT_EQ(rejected.status, "rejected");
    EXPECT_EQ(rejected.code, "CircuitOpen");
    EXPECT_EQ(rejected.reason, "circuit_open");
  }
  EXPECT_DOUBLE_EQ(
      registry->Value(kMetricRetryAttempts, {{"stage", "serve.ask"}}), 2.0);

  // Cool-down served: the next ask is the half-open probe — one attempt,
  // which the armed fault fails again.
  Response probe = server.Handle(Ask("chaotic", kQuestion, 4));
  EXPECT_EQ(probe.status, "error");
  EXPECT_DOUBLE_EQ(
      registry->Value(kMetricRetryAttempts, {{"stage", "serve.ask"}}), 3.0);
}

TEST_F(ServeTest, FeedThenBiClosesTheLoop) {
  QaServer server;
  ASSERT_TRUE(server.AddTenant(TenantConfig("a", wh_a_.get())).ok());

  Request feed;
  feed.id = 1;
  feed.tenant = "a";
  feed.endpoint = Endpoint::kFeed;
  feed.questions = {kQuestion};
  Response fed = server.Handle(feed);
  ASSERT_EQ(fed.status, "ok") << fed.payload;
  EXPECT_EQ(fed.AnswerField("questions_asked"), "1");
  EXPECT_EQ(fed.AnswerField("questions_answered"), "1");
  EXPECT_NE(fed.AnswerField("rows_loaded"), "0");

  Request bi;
  bi.id = 2;
  bi.tenant = "a";
  bi.endpoint = Endpoint::kBi;
  Response analyzed = server.Handle(bi);
  ASSERT_EQ(analyzed.status, "ok") << analyzed.payload;
  EXPECT_NE(analyzed.AnswerField("joined_days"), "0");
  EXPECT_FALSE(analyzed.AnswerField("best_low_c").empty());
  EXPECT_FALSE(analyzed.payload.empty());
}

TEST_F(ServeTest, IngestAppendsToTheCorpusThroughTheServingPath) {
  // Tenant with a mutable store: its own copy of the synthetic web docs.
  ir::DocumentStore docs;
  for (const ir::Document& d : web_->documents().documents()) {
    docs.Add(d.url, d.title, d.format, d.raw);
  }
  ServeTenantConfig tenant = TenantConfig("a", wh_a_.get());
  tenant.docs = &docs;
  tenant.ingest_docs = &docs;
  QaServer server;
  ASSERT_TRUE(server.AddTenant(tenant).ok());

  // First ask builds the index over the initial corpus.
  ASSERT_EQ(server.Handle(Ask("a", kQuestion, 1)).status, "ok");
  const size_t before = docs.size();

  Request ingest;
  ingest.id = 2;
  ingest.tenant = "a";
  ingest.endpoint = Endpoint::kIngest;
  ingest.doc_url = "http://synthetic.test/extra";
  ingest.doc_title = "Extra page";
  ingest.doc_content = "The new terminal of El Prat opened in Barcelona.";
  Response response = server.Handle(ingest);
  ASSERT_EQ(response.status, "ok") << response.payload;
  EXPECT_EQ(response.AnswerField("ingested"), "1");
  EXPECT_EQ(response.AnswerField("documents"), std::to_string(before + 1));
  // The pipeline really appended to its segmented indexes.
  EXPECT_DOUBLE_EQ(server.tenant_pipeline("a")->metrics()->Value(
                       kMetricIndexIngestDocs),
                   1.0);

  // The serving path keeps answering after the corpus grew.
  Request fresh = Ask("a", kQuestion, 3);
  fresh.no_cache = true;
  EXPECT_EQ(server.Handle(fresh).status, "ok");
}

TEST_F(ServeTest, IngestRejectsWhenDisabledEmptyOrMisconfigured) {
  // ingest_docs must alias docs: a separate store is a config error.
  ir::DocumentStore other;
  ServeTenantConfig bad = TenantConfig("x", wh_b_.get());
  bad.ingest_docs = &other;
  QaServer server;
  EXPECT_TRUE(server.AddTenant(bad).IsInvalidArgument());

  ASSERT_TRUE(server.AddTenant(TenantConfig("a", wh_a_.get())).ok());

  // Content is mandatory — rejected before touching the tenant.
  Request empty;
  empty.id = 1;
  empty.tenant = "a";
  empty.endpoint = Endpoint::kIngest;
  empty.doc_url = "http://synthetic.test/empty";
  Response no_content = server.Handle(empty);
  EXPECT_EQ(no_content.status, "rejected");
  EXPECT_EQ(no_content.code, "BadRequest");

  // A tenant registered without a mutable store has ingest disabled.
  Request ingest = empty;
  ingest.id = 2;
  ingest.doc_content = "some text";
  Response disabled = server.Handle(ingest);
  EXPECT_EQ(disabled.status, "rejected");
  EXPECT_EQ(disabled.code, "BadRequest");
}

TEST_F(ServeTest, HealthAndMetricsBypassAdmissionAndReportTheServer) {
  ServerConfig config;
  config.admission.rate.capacity = 1.0;
  config.admission.rate.refill_per_tick = 0.0001;
  QaServer server(config);
  ASSERT_TRUE(server.AddTenant(TenantConfig("a", wh_a_.get())).ok());

  // Exhaust the rate budget...
  ASSERT_EQ(server.Handle(Ask("a", kQuestion, 1)).status, "ok");
  ASSERT_EQ(server.Handle(Ask("a", kQuestion, 2)).status, "rejected");

  // ...health and metrics still answer: the server stays observable under
  // overload.
  Request health;
  health.id = 3;
  health.endpoint = Endpoint::kHealth;
  Response healthy = server.Handle(health);
  ASSERT_EQ(healthy.status, "ok");
  EXPECT_EQ(healthy.AnswerField("draining"), "0");
  EXPECT_EQ(healthy.AnswerField("tenants"), "1");
  EXPECT_NE(healthy.payload.find("tenant a:"), std::string::npos);
  EXPECT_NE(healthy.payload.find("rate_limited=1"), std::string::npos);

  Request metrics;
  metrics.id = 4;
  metrics.endpoint = Endpoint::kMetrics;
  Response exported = server.Handle(metrics);
  ASSERT_EQ(exported.status, "ok");
  EXPECT_NE(exported.payload.find("dwqa_serve_requests_total"),
            std::string::npos);
  EXPECT_NE(exported.payload.find("# tenant: a"), std::string::npos);
  EXPECT_NE(exported.payload.find("dwqa_qa_questions_total"),
            std::string::npos);
}

TEST_F(ServeTest, BiAnswersFromViewsAndMatchesTheRecomputeTenant) {
  // Tenant "viewed" carries a bound derived catalog; tenant "plain" serves
  // the same warehouse contents without one.
  ASSERT_TRUE(integration::LastMinuteSales::GenerateSales(
                  wh_b_.get(), web_->weather(), Date(2004, 1, 1), 60)
                  .ok());
  dw::ViewCatalog catalog;
  ASSERT_TRUE(
      catalog.DefineAll(dw::DeriveViewsFromSchema(wh_a_->schema())).ok());
  wh_a_->AttachViews(&catalog);
  ASSERT_TRUE(catalog.Bind(*wh_a_).ok());

  QaServer server;
  ASSERT_TRUE(server.AddTenant(TenantConfig("viewed", wh_a_.get())).ok());
  ASSERT_TRUE(server.AddTenant(TenantConfig("plain", wh_b_.get())).ok());
  for (const char* tenant : {"viewed", "plain"}) {
    Request feed;
    feed.id = 1;
    feed.tenant = tenant;
    feed.endpoint = Endpoint::kFeed;
    feed.questions = {kQuestion};
    ASSERT_EQ(server.Handle(feed).status, "ok") << tenant;
  }

  Request bi;
  bi.id = 2;
  bi.endpoint = Endpoint::kBi;
  bi.tenant = "viewed";
  Response viewed = server.Handle(bi);
  ASSERT_EQ(viewed.status, "ok") << viewed.payload;
  EXPECT_EQ(viewed.AnswerField("bi_mode"), "view_first");
  EXPECT_EQ(viewed.AnswerField("sales_from_view"), "1");
  EXPECT_EQ(viewed.AnswerField("weather_from_view"), "1");
  bi.tenant = "plain";
  Response plain = server.Handle(bi);
  ASSERT_EQ(plain.status, "ok") << plain.payload;
  EXPECT_EQ(plain.AnswerField("sales_from_view"), "0");
  EXPECT_EQ(plain.AnswerField("weather_from_view"), "0");

  // Byte-identity at the serving layer: same warehouse contents, same
  // analysis — view-answered or recomputed.
  EXPECT_EQ(viewed.payload, plain.payload);
  for (const char* field : {"joined_days", "correlation", "best_low_c",
                            "best_high_c", "best_avg_tickets",
                            "best_observations"}) {
    EXPECT_EQ(viewed.AnswerField(field), plain.AnswerField(field)) << field;
  }
  // The view-backed estimate touches group cardinalities, not fact rows.
  EXPECT_LT(std::stoul(viewed.AnswerField("estimated_rows")),
            std::stoul(plain.AnswerField("estimated_rows")));
}

TEST_F(ServeTest, ExpensiveBiIsShedFirstWithoutViews) {
  // One cost unit per fact row makes the 60-day sales table expensive;
  // the ceiling degrades the request to view-only, and with no views to
  // fall back on it is shed with the typed bi_cost rejection.
  ServerConfig config;
  config.bi_rows_per_cost_unit = 1.0;
  config.max_bi_cost = 5.0;
  QaServer server(config);
  ASSERT_TRUE(server.AddTenant(TenantConfig("a", wh_a_.get())).ok());

  Request bi;
  bi.id = 1;
  bi.tenant = "a";
  bi.endpoint = Endpoint::kBi;
  Response shed = server.Handle(bi);
  EXPECT_EQ(shed.status, "rejected");
  EXPECT_EQ(shed.code, "Overloaded");
  EXPECT_EQ(shed.reason, "bi_cost");
  EXPECT_NE(shed.payload.find("max_bi_cost"), std::string::npos);

  // An ask on the same tenant still flows: only the expensive analysis
  // shed, not the tenant.
  EXPECT_EQ(server.Handle(Ask("a", kQuestion, 2)).status, "ok");
}

TEST_F(ServeTest, ViewsKeepExpensiveBiUnderTheCeiling) {
  dw::ViewCatalog catalog;
  ASSERT_TRUE(
      catalog.DefineAll(dw::DeriveViewsFromSchema(wh_a_->schema())).ok());
  wh_a_->AttachViews(&catalog);
  ASSERT_TRUE(catalog.Bind(*wh_a_).ok());

  ServerConfig config;
  config.bi_rows_per_cost_unit = 1.0;
  config.max_bi_cost = 5.0;
  QaServer server(config);
  ASSERT_TRUE(server.AddTenant(TenantConfig("a", wh_a_.get())).ok());
  Request feed;
  feed.id = 1;
  feed.tenant = "a";
  feed.endpoint = Endpoint::kFeed;
  feed.questions = {kQuestion};
  ASSERT_EQ(server.Handle(feed).status, "ok");

  // Same pressure as the shed test — but the catalog covers both
  // aggregates, so the estimate stays at group cardinality and the
  // request is answered from views instead of being shed.
  Request bi;
  bi.id = 2;
  bi.tenant = "a";
  bi.endpoint = Endpoint::kBi;
  Response answered = server.Handle(bi);
  ASSERT_EQ(answered.status, "ok") << answered.payload;
  EXPECT_EQ(answered.AnswerField("bi_mode"), "view_first");
  EXPECT_EQ(answered.AnswerField("sales_from_view"), "1");
}

TEST_F(ServeTest, AdmissionCostBudgetWeighsBiByItsEstimate) {
  // Cost budget below the recompute estimate: the admission controller
  // sheds the un-viewed bi before execution with the cost_budget reason.
  ServerConfig config;
  config.bi_rows_per_cost_unit = 1.0;
  config.admission.max_queued_cost = 50.0;
  QaServer server(config);
  ASSERT_TRUE(server.AddTenant(TenantConfig("a", wh_a_.get())).ok());

  Request bi;
  bi.id = 1;
  bi.tenant = "a";
  bi.endpoint = Endpoint::kBi;
  Response shed = server.Handle(bi);
  EXPECT_EQ(shed.status, "rejected");
  EXPECT_EQ(shed.code, "Overloaded");
  EXPECT_EQ(shed.reason, "cost_budget");

  // With views attached the same request weighs its bi_cost floor and
  // clears the same budget.
  dw::ViewCatalog catalog;
  ASSERT_TRUE(
      catalog.DefineAll(dw::DeriveViewsFromSchema(wh_b_->schema())).ok());
  wh_b_->AttachViews(&catalog);
  ASSERT_TRUE(catalog.Bind(*wh_b_).ok());
  ASSERT_TRUE(server.AddTenant(TenantConfig("b", wh_b_.get())).ok());
  bi.id = 2;
  bi.tenant = "b";
  Response cheap = server.Handle(bi);
  // Empty warehouse: the analysis itself finds nothing to join, but the
  // request was ADMITTED — the estimator weighed the views, not the scan.
  EXPECT_NE(cheap.reason, "cost_budget");
}

TEST_F(ServeTest, BiFederatedScopeWithoutFederationIsRejected) {
  QaServer server;
  ASSERT_TRUE(server.AddTenant(TenantConfig("a", wh_a_.get())).ok());

  Request bi;
  bi.id = 1;
  bi.tenant = "a";
  bi.endpoint = Endpoint::kBi;
  bi.scope = "federated";
  Response rejected = server.Handle(bi);
  EXPECT_EQ(rejected.status, "rejected");
  EXPECT_EQ(rejected.code, "BadRequest");
  EXPECT_NE(rejected.payload.find("no federation attached"),
            std::string::npos)
      << rejected.payload;

  // scope=local is the explicit spelling of the default path, not an error
  // (it may still fail the analysis itself on an unfed warehouse).
  Request local = bi;
  local.id = 2;
  local.scope = "local";
  Response answered = server.Handle(local);
  EXPECT_NE(answered.status, "rejected");
}

TEST_F(ServeTest, BiFederatedFansOutAndAnnotatesCoverage) {
  // A partner warehouse supplies the weather the local tenant never fed:
  // only the federated scope can join sales against it.
  auto partner = std::make_unique<dw::Warehouse>(
      dw::fed::PartnerAirline::MakeWarehouse().ValueOrDie());
  ASSERT_TRUE(dw::fed::PartnerAirline::GeneratePartnerSales(
                  partner.get(), Date(2004, 1, 1), 31)
                  .ok());
  ASSERT_TRUE(dw::fed::PartnerAirline::GeneratePartnerWeather(
                  partner.get(), Date(2004, 1, 1), 31)
                  .ok());
  dw::fed::SchemaMatcher matcher(
      dw::fed::PartnerAirline::DefaultMatcherOptions());
  auto mapping = matcher.Match(*wh_a_, *partner);
  ASSERT_TRUE(mapping.ok()) << mapping.status().ToString();
  dw::fed::FederatedEngine engine(wh_a_.get());
  ASSERT_TRUE(engine.AddRemote("partner", partner.get(), *mapping).ok());

  ServeTenantConfig tenant = TenantConfig("a", wh_a_.get());
  tenant.federation = &engine;
  QaServer server;
  ASSERT_TRUE(server.AddTenant(tenant).ok());

  // The local scope has no weather to join against…
  Request local_bi;
  local_bi.id = 1;
  local_bi.tenant = "a";
  local_bi.endpoint = Endpoint::kBi;
  Response local_answer = server.Handle(local_bi);
  EXPECT_EQ(local_answer.status, "error");

  // …while the federated scope answers from both members' shares.
  Request fed_bi = local_bi;
  fed_bi.id = 2;
  fed_bi.scope = "federated";
  Response fed_answer = server.Handle(fed_bi);
  ASSERT_EQ(fed_answer.status, "ok") << fed_answer.payload;
  EXPECT_EQ(fed_answer.AnswerField("bi_mode"), "federated");
  EXPECT_EQ(fed_answer.AnswerField("coverage"), "full");
  EXPECT_EQ(fed_answer.AnswerField("fed_members"), "2");
  EXPECT_EQ(fed_answer.AnswerField("sales_coverage"), "full");
  EXPECT_EQ(fed_answer.AnswerField("weather_coverage"), "full");
  EXPECT_NE(fed_answer.AnswerField("joined_days"), "0");
  EXPECT_FALSE(fed_answer.AnswerField("joined_days").empty());
  EXPECT_FALSE(fed_answer.AnswerField("best_low_c").empty());
  EXPECT_FALSE(fed_answer.payload.empty());
}

}  // namespace
}  // namespace serve
}  // namespace dwqa
