file(REMOVE_RECURSE
  "libdwqa_ir.a"
)
