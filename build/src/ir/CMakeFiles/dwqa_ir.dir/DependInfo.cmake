
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/document.cc" "src/ir/CMakeFiles/dwqa_ir.dir/document.cc.o" "gcc" "src/ir/CMakeFiles/dwqa_ir.dir/document.cc.o.d"
  "/root/repo/src/ir/html.cc" "src/ir/CMakeFiles/dwqa_ir.dir/html.cc.o" "gcc" "src/ir/CMakeFiles/dwqa_ir.dir/html.cc.o.d"
  "/root/repo/src/ir/inverted_index.cc" "src/ir/CMakeFiles/dwqa_ir.dir/inverted_index.cc.o" "gcc" "src/ir/CMakeFiles/dwqa_ir.dir/inverted_index.cc.o.d"
  "/root/repo/src/ir/passage_index.cc" "src/ir/CMakeFiles/dwqa_ir.dir/passage_index.cc.o" "gcc" "src/ir/CMakeFiles/dwqa_ir.dir/passage_index.cc.o.d"
  "/root/repo/src/ir/stopwords.cc" "src/ir/CMakeFiles/dwqa_ir.dir/stopwords.cc.o" "gcc" "src/ir/CMakeFiles/dwqa_ir.dir/stopwords.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dwqa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/dwqa_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
