file(REMOVE_RECURSE
  "CMakeFiles/dwqa_ir.dir/document.cc.o"
  "CMakeFiles/dwqa_ir.dir/document.cc.o.d"
  "CMakeFiles/dwqa_ir.dir/html.cc.o"
  "CMakeFiles/dwqa_ir.dir/html.cc.o.d"
  "CMakeFiles/dwqa_ir.dir/inverted_index.cc.o"
  "CMakeFiles/dwqa_ir.dir/inverted_index.cc.o.d"
  "CMakeFiles/dwqa_ir.dir/passage_index.cc.o"
  "CMakeFiles/dwqa_ir.dir/passage_index.cc.o.d"
  "CMakeFiles/dwqa_ir.dir/stopwords.cc.o"
  "CMakeFiles/dwqa_ir.dir/stopwords.cc.o.d"
  "libdwqa_ir.a"
  "libdwqa_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwqa_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
