# Empty compiler generated dependencies file for dwqa_ir.
# This may be replaced when dependencies are built.
