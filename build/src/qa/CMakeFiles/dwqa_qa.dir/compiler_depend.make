# Empty compiler generated dependencies file for dwqa_qa.
# This may be replaced when dependencies are built.
