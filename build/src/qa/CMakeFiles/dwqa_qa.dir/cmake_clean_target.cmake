file(REMOVE_RECURSE
  "libdwqa_qa.a"
)
