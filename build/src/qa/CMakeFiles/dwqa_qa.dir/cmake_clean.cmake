file(REMOVE_RECURSE
  "CMakeFiles/dwqa_qa.dir/aliqan.cc.o"
  "CMakeFiles/dwqa_qa.dir/aliqan.cc.o.d"
  "CMakeFiles/dwqa_qa.dir/answer_extractor.cc.o"
  "CMakeFiles/dwqa_qa.dir/answer_extractor.cc.o.d"
  "CMakeFiles/dwqa_qa.dir/crosslingual.cc.o"
  "CMakeFiles/dwqa_qa.dir/crosslingual.cc.o.d"
  "CMakeFiles/dwqa_qa.dir/question_analyzer.cc.o"
  "CMakeFiles/dwqa_qa.dir/question_analyzer.cc.o.d"
  "CMakeFiles/dwqa_qa.dir/structured.cc.o"
  "CMakeFiles/dwqa_qa.dir/structured.cc.o.d"
  "CMakeFiles/dwqa_qa.dir/taxonomy.cc.o"
  "CMakeFiles/dwqa_qa.dir/taxonomy.cc.o.d"
  "libdwqa_qa.a"
  "libdwqa_qa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwqa_qa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
