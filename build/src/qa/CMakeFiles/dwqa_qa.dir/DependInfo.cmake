
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qa/aliqan.cc" "src/qa/CMakeFiles/dwqa_qa.dir/aliqan.cc.o" "gcc" "src/qa/CMakeFiles/dwqa_qa.dir/aliqan.cc.o.d"
  "/root/repo/src/qa/answer_extractor.cc" "src/qa/CMakeFiles/dwqa_qa.dir/answer_extractor.cc.o" "gcc" "src/qa/CMakeFiles/dwqa_qa.dir/answer_extractor.cc.o.d"
  "/root/repo/src/qa/crosslingual.cc" "src/qa/CMakeFiles/dwqa_qa.dir/crosslingual.cc.o" "gcc" "src/qa/CMakeFiles/dwqa_qa.dir/crosslingual.cc.o.d"
  "/root/repo/src/qa/question_analyzer.cc" "src/qa/CMakeFiles/dwqa_qa.dir/question_analyzer.cc.o" "gcc" "src/qa/CMakeFiles/dwqa_qa.dir/question_analyzer.cc.o.d"
  "/root/repo/src/qa/structured.cc" "src/qa/CMakeFiles/dwqa_qa.dir/structured.cc.o" "gcc" "src/qa/CMakeFiles/dwqa_qa.dir/structured.cc.o.d"
  "/root/repo/src/qa/taxonomy.cc" "src/qa/CMakeFiles/dwqa_qa.dir/taxonomy.cc.o" "gcc" "src/qa/CMakeFiles/dwqa_qa.dir/taxonomy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dwqa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/dwqa_text.dir/DependInfo.cmake"
  "/root/repo/build/src/ontology/CMakeFiles/dwqa_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/dwqa_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
