# Empty compiler generated dependencies file for dwqa_ontology.
# This may be replaced when dependencies are built.
