file(REMOVE_RECURSE
  "libdwqa_ontology.a"
)
