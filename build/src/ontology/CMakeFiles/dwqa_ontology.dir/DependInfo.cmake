
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ontology/enrichment.cc" "src/ontology/CMakeFiles/dwqa_ontology.dir/enrichment.cc.o" "gcc" "src/ontology/CMakeFiles/dwqa_ontology.dir/enrichment.cc.o.d"
  "/root/repo/src/ontology/merge.cc" "src/ontology/CMakeFiles/dwqa_ontology.dir/merge.cc.o" "gcc" "src/ontology/CMakeFiles/dwqa_ontology.dir/merge.cc.o.d"
  "/root/repo/src/ontology/ontology.cc" "src/ontology/CMakeFiles/dwqa_ontology.dir/ontology.cc.o" "gcc" "src/ontology/CMakeFiles/dwqa_ontology.dir/ontology.cc.o.d"
  "/root/repo/src/ontology/owl_writer.cc" "src/ontology/CMakeFiles/dwqa_ontology.dir/owl_writer.cc.o" "gcc" "src/ontology/CMakeFiles/dwqa_ontology.dir/owl_writer.cc.o.d"
  "/root/repo/src/ontology/similarity.cc" "src/ontology/CMakeFiles/dwqa_ontology.dir/similarity.cc.o" "gcc" "src/ontology/CMakeFiles/dwqa_ontology.dir/similarity.cc.o.d"
  "/root/repo/src/ontology/uml_model.cc" "src/ontology/CMakeFiles/dwqa_ontology.dir/uml_model.cc.o" "gcc" "src/ontology/CMakeFiles/dwqa_ontology.dir/uml_model.cc.o.d"
  "/root/repo/src/ontology/uml_to_ontology.cc" "src/ontology/CMakeFiles/dwqa_ontology.dir/uml_to_ontology.cc.o" "gcc" "src/ontology/CMakeFiles/dwqa_ontology.dir/uml_to_ontology.cc.o.d"
  "/root/repo/src/ontology/wordnet.cc" "src/ontology/CMakeFiles/dwqa_ontology.dir/wordnet.cc.o" "gcc" "src/ontology/CMakeFiles/dwqa_ontology.dir/wordnet.cc.o.d"
  "/root/repo/src/ontology/wsd.cc" "src/ontology/CMakeFiles/dwqa_ontology.dir/wsd.cc.o" "gcc" "src/ontology/CMakeFiles/dwqa_ontology.dir/wsd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dwqa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/dwqa_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
