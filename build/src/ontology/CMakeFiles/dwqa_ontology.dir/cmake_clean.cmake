file(REMOVE_RECURSE
  "CMakeFiles/dwqa_ontology.dir/enrichment.cc.o"
  "CMakeFiles/dwqa_ontology.dir/enrichment.cc.o.d"
  "CMakeFiles/dwqa_ontology.dir/merge.cc.o"
  "CMakeFiles/dwqa_ontology.dir/merge.cc.o.d"
  "CMakeFiles/dwqa_ontology.dir/ontology.cc.o"
  "CMakeFiles/dwqa_ontology.dir/ontology.cc.o.d"
  "CMakeFiles/dwqa_ontology.dir/owl_writer.cc.o"
  "CMakeFiles/dwqa_ontology.dir/owl_writer.cc.o.d"
  "CMakeFiles/dwqa_ontology.dir/similarity.cc.o"
  "CMakeFiles/dwqa_ontology.dir/similarity.cc.o.d"
  "CMakeFiles/dwqa_ontology.dir/uml_model.cc.o"
  "CMakeFiles/dwqa_ontology.dir/uml_model.cc.o.d"
  "CMakeFiles/dwqa_ontology.dir/uml_to_ontology.cc.o"
  "CMakeFiles/dwqa_ontology.dir/uml_to_ontology.cc.o.d"
  "CMakeFiles/dwqa_ontology.dir/wordnet.cc.o"
  "CMakeFiles/dwqa_ontology.dir/wordnet.cc.o.d"
  "CMakeFiles/dwqa_ontology.dir/wsd.cc.o"
  "CMakeFiles/dwqa_ontology.dir/wsd.cc.o.d"
  "libdwqa_ontology.a"
  "libdwqa_ontology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwqa_ontology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
