# Empty compiler generated dependencies file for dwqa_text.
# This may be replaced when dependencies are built.
