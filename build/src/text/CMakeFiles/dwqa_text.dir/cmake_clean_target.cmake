file(REMOVE_RECURSE
  "libdwqa_text.a"
)
