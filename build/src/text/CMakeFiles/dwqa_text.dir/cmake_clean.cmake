file(REMOVE_RECURSE
  "CMakeFiles/dwqa_text.dir/chunker.cc.o"
  "CMakeFiles/dwqa_text.dir/chunker.cc.o.d"
  "CMakeFiles/dwqa_text.dir/entities.cc.o"
  "CMakeFiles/dwqa_text.dir/entities.cc.o.d"
  "CMakeFiles/dwqa_text.dir/lemmatizer.cc.o"
  "CMakeFiles/dwqa_text.dir/lemmatizer.cc.o.d"
  "CMakeFiles/dwqa_text.dir/lexicon.cc.o"
  "CMakeFiles/dwqa_text.dir/lexicon.cc.o.d"
  "CMakeFiles/dwqa_text.dir/pos_tagger.cc.o"
  "CMakeFiles/dwqa_text.dir/pos_tagger.cc.o.d"
  "CMakeFiles/dwqa_text.dir/sentence_splitter.cc.o"
  "CMakeFiles/dwqa_text.dir/sentence_splitter.cc.o.d"
  "CMakeFiles/dwqa_text.dir/tokenizer.cc.o"
  "CMakeFiles/dwqa_text.dir/tokenizer.cc.o.d"
  "libdwqa_text.a"
  "libdwqa_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwqa_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
