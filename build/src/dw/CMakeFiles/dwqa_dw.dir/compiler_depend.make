# Empty compiler generated dependencies file for dwqa_dw.
# This may be replaced when dependencies are built.
