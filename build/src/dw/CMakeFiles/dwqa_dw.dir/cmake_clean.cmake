file(REMOVE_RECURSE
  "CMakeFiles/dwqa_dw.dir/csv_etl.cc.o"
  "CMakeFiles/dwqa_dw.dir/csv_etl.cc.o.d"
  "CMakeFiles/dwqa_dw.dir/etl.cc.o"
  "CMakeFiles/dwqa_dw.dir/etl.cc.o.d"
  "CMakeFiles/dwqa_dw.dir/olap.cc.o"
  "CMakeFiles/dwqa_dw.dir/olap.cc.o.d"
  "CMakeFiles/dwqa_dw.dir/persistence.cc.o"
  "CMakeFiles/dwqa_dw.dir/persistence.cc.o.d"
  "CMakeFiles/dwqa_dw.dir/query_parser.cc.o"
  "CMakeFiles/dwqa_dw.dir/query_parser.cc.o.d"
  "CMakeFiles/dwqa_dw.dir/schema.cc.o"
  "CMakeFiles/dwqa_dw.dir/schema.cc.o.d"
  "CMakeFiles/dwqa_dw.dir/table.cc.o"
  "CMakeFiles/dwqa_dw.dir/table.cc.o.d"
  "CMakeFiles/dwqa_dw.dir/value.cc.o"
  "CMakeFiles/dwqa_dw.dir/value.cc.o.d"
  "CMakeFiles/dwqa_dw.dir/warehouse.cc.o"
  "CMakeFiles/dwqa_dw.dir/warehouse.cc.o.d"
  "libdwqa_dw.a"
  "libdwqa_dw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwqa_dw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
