
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dw/csv_etl.cc" "src/dw/CMakeFiles/dwqa_dw.dir/csv_etl.cc.o" "gcc" "src/dw/CMakeFiles/dwqa_dw.dir/csv_etl.cc.o.d"
  "/root/repo/src/dw/etl.cc" "src/dw/CMakeFiles/dwqa_dw.dir/etl.cc.o" "gcc" "src/dw/CMakeFiles/dwqa_dw.dir/etl.cc.o.d"
  "/root/repo/src/dw/olap.cc" "src/dw/CMakeFiles/dwqa_dw.dir/olap.cc.o" "gcc" "src/dw/CMakeFiles/dwqa_dw.dir/olap.cc.o.d"
  "/root/repo/src/dw/persistence.cc" "src/dw/CMakeFiles/dwqa_dw.dir/persistence.cc.o" "gcc" "src/dw/CMakeFiles/dwqa_dw.dir/persistence.cc.o.d"
  "/root/repo/src/dw/query_parser.cc" "src/dw/CMakeFiles/dwqa_dw.dir/query_parser.cc.o" "gcc" "src/dw/CMakeFiles/dwqa_dw.dir/query_parser.cc.o.d"
  "/root/repo/src/dw/schema.cc" "src/dw/CMakeFiles/dwqa_dw.dir/schema.cc.o" "gcc" "src/dw/CMakeFiles/dwqa_dw.dir/schema.cc.o.d"
  "/root/repo/src/dw/table.cc" "src/dw/CMakeFiles/dwqa_dw.dir/table.cc.o" "gcc" "src/dw/CMakeFiles/dwqa_dw.dir/table.cc.o.d"
  "/root/repo/src/dw/value.cc" "src/dw/CMakeFiles/dwqa_dw.dir/value.cc.o" "gcc" "src/dw/CMakeFiles/dwqa_dw.dir/value.cc.o.d"
  "/root/repo/src/dw/warehouse.cc" "src/dw/CMakeFiles/dwqa_dw.dir/warehouse.cc.o" "gcc" "src/dw/CMakeFiles/dwqa_dw.dir/warehouse.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dwqa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
