file(REMOVE_RECURSE
  "libdwqa_dw.a"
)
