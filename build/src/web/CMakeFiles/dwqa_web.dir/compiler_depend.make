# Empty compiler generated dependencies file for dwqa_web.
# This may be replaced when dependencies are built.
