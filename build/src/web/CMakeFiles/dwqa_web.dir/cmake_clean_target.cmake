file(REMOVE_RECURSE
  "libdwqa_web.a"
)
