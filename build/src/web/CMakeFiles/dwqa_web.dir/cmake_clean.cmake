file(REMOVE_RECURSE
  "CMakeFiles/dwqa_web.dir/page_generators.cc.o"
  "CMakeFiles/dwqa_web.dir/page_generators.cc.o.d"
  "CMakeFiles/dwqa_web.dir/question_factory.cc.o"
  "CMakeFiles/dwqa_web.dir/question_factory.cc.o.d"
  "CMakeFiles/dwqa_web.dir/synthetic_web.cc.o"
  "CMakeFiles/dwqa_web.dir/synthetic_web.cc.o.d"
  "CMakeFiles/dwqa_web.dir/weather_model.cc.o"
  "CMakeFiles/dwqa_web.dir/weather_model.cc.o.d"
  "libdwqa_web.a"
  "libdwqa_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwqa_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
