
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/web/page_generators.cc" "src/web/CMakeFiles/dwqa_web.dir/page_generators.cc.o" "gcc" "src/web/CMakeFiles/dwqa_web.dir/page_generators.cc.o.d"
  "/root/repo/src/web/question_factory.cc" "src/web/CMakeFiles/dwqa_web.dir/question_factory.cc.o" "gcc" "src/web/CMakeFiles/dwqa_web.dir/question_factory.cc.o.d"
  "/root/repo/src/web/synthetic_web.cc" "src/web/CMakeFiles/dwqa_web.dir/synthetic_web.cc.o" "gcc" "src/web/CMakeFiles/dwqa_web.dir/synthetic_web.cc.o.d"
  "/root/repo/src/web/weather_model.cc" "src/web/CMakeFiles/dwqa_web.dir/weather_model.cc.o" "gcc" "src/web/CMakeFiles/dwqa_web.dir/weather_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dwqa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/dwqa_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/qa/CMakeFiles/dwqa_qa.dir/DependInfo.cmake"
  "/root/repo/build/src/ontology/CMakeFiles/dwqa_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/dwqa_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
