file(REMOVE_RECURSE
  "CMakeFiles/dwqa_common.dir/csv.cc.o"
  "CMakeFiles/dwqa_common.dir/csv.cc.o.d"
  "CMakeFiles/dwqa_common.dir/date.cc.o"
  "CMakeFiles/dwqa_common.dir/date.cc.o.d"
  "CMakeFiles/dwqa_common.dir/logging.cc.o"
  "CMakeFiles/dwqa_common.dir/logging.cc.o.d"
  "CMakeFiles/dwqa_common.dir/status.cc.o"
  "CMakeFiles/dwqa_common.dir/status.cc.o.d"
  "CMakeFiles/dwqa_common.dir/string_util.cc.o"
  "CMakeFiles/dwqa_common.dir/string_util.cc.o.d"
  "CMakeFiles/dwqa_common.dir/table_printer.cc.o"
  "CMakeFiles/dwqa_common.dir/table_printer.cc.o.d"
  "libdwqa_common.a"
  "libdwqa_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwqa_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
