file(REMOVE_RECURSE
  "libdwqa_common.a"
)
