# Empty dependencies file for dwqa_common.
# This may be replaced when dependencies are built.
