file(REMOVE_RECURSE
  "CMakeFiles/dwqa_integration.dir/bi_analysis.cc.o"
  "CMakeFiles/dwqa_integration.dir/bi_analysis.cc.o.d"
  "CMakeFiles/dwqa_integration.dir/last_minute_sales.cc.o"
  "CMakeFiles/dwqa_integration.dir/last_minute_sales.cc.o.d"
  "CMakeFiles/dwqa_integration.dir/multidim_ir.cc.o"
  "CMakeFiles/dwqa_integration.dir/multidim_ir.cc.o.d"
  "CMakeFiles/dwqa_integration.dir/pipeline.cc.o"
  "CMakeFiles/dwqa_integration.dir/pipeline.cc.o.d"
  "CMakeFiles/dwqa_integration.dir/query_generation.cc.o"
  "CMakeFiles/dwqa_integration.dir/query_generation.cc.o.d"
  "CMakeFiles/dwqa_integration.dir/table_preprocess.cc.o"
  "CMakeFiles/dwqa_integration.dir/table_preprocess.cc.o.d"
  "libdwqa_integration.a"
  "libdwqa_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwqa_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
