file(REMOVE_RECURSE
  "libdwqa_integration.a"
)
