
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/integration/bi_analysis.cc" "src/integration/CMakeFiles/dwqa_integration.dir/bi_analysis.cc.o" "gcc" "src/integration/CMakeFiles/dwqa_integration.dir/bi_analysis.cc.o.d"
  "/root/repo/src/integration/last_minute_sales.cc" "src/integration/CMakeFiles/dwqa_integration.dir/last_minute_sales.cc.o" "gcc" "src/integration/CMakeFiles/dwqa_integration.dir/last_minute_sales.cc.o.d"
  "/root/repo/src/integration/multidim_ir.cc" "src/integration/CMakeFiles/dwqa_integration.dir/multidim_ir.cc.o" "gcc" "src/integration/CMakeFiles/dwqa_integration.dir/multidim_ir.cc.o.d"
  "/root/repo/src/integration/pipeline.cc" "src/integration/CMakeFiles/dwqa_integration.dir/pipeline.cc.o" "gcc" "src/integration/CMakeFiles/dwqa_integration.dir/pipeline.cc.o.d"
  "/root/repo/src/integration/query_generation.cc" "src/integration/CMakeFiles/dwqa_integration.dir/query_generation.cc.o" "gcc" "src/integration/CMakeFiles/dwqa_integration.dir/query_generation.cc.o.d"
  "/root/repo/src/integration/table_preprocess.cc" "src/integration/CMakeFiles/dwqa_integration.dir/table_preprocess.cc.o" "gcc" "src/integration/CMakeFiles/dwqa_integration.dir/table_preprocess.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dwqa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/dwqa_text.dir/DependInfo.cmake"
  "/root/repo/build/src/ontology/CMakeFiles/dwqa_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/dw/CMakeFiles/dwqa_dw.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/dwqa_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/qa/CMakeFiles/dwqa_qa.dir/DependInfo.cmake"
  "/root/repo/build/src/web/CMakeFiles/dwqa_web.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
