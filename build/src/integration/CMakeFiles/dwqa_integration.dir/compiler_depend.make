# Empty compiler generated dependencies file for dwqa_integration.
# This may be replaced when dependencies are built.
