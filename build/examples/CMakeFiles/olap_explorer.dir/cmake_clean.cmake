file(REMOVE_RECURSE
  "CMakeFiles/olap_explorer.dir/olap_explorer.cpp.o"
  "CMakeFiles/olap_explorer.dir/olap_explorer.cpp.o.d"
  "olap_explorer"
  "olap_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olap_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
