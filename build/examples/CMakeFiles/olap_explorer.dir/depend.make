# Empty dependencies file for olap_explorer.
# This may be replaced when dependencies are built.
