
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/integration/CMakeFiles/dwqa_integration.dir/DependInfo.cmake"
  "/root/repo/build/src/dw/CMakeFiles/dwqa_dw.dir/DependInfo.cmake"
  "/root/repo/build/src/web/CMakeFiles/dwqa_web.dir/DependInfo.cmake"
  "/root/repo/build/src/qa/CMakeFiles/dwqa_qa.dir/DependInfo.cmake"
  "/root/repo/build/src/ontology/CMakeFiles/dwqa_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/dwqa_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/dwqa_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dwqa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
