# Empty dependencies file for competitor_prices.
# This may be replaced when dependencies are built.
