file(REMOVE_RECURSE
  "CMakeFiles/competitor_prices.dir/competitor_prices.cpp.o"
  "CMakeFiles/competitor_prices.dir/competitor_prices.cpp.o.d"
  "competitor_prices"
  "competitor_prices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/competitor_prices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
