file(REMOVE_RECURSE
  "CMakeFiles/ask.dir/ask.cpp.o"
  "CMakeFiles/ask.dir/ask.cpp.o.d"
  "ask"
  "ask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
