# Empty compiler generated dependencies file for ask.
# This may be replaced when dependencies are built.
