# Empty dependencies file for last_minute_sales.
# This may be replaced when dependencies are built.
