file(REMOVE_RECURSE
  "CMakeFiles/last_minute_sales.dir/last_minute_sales.cpp.o"
  "CMakeFiles/last_minute_sales.dir/last_minute_sales.cpp.o.d"
  "last_minute_sales"
  "last_minute_sales.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/last_minute_sales.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
