file(REMOVE_RECURSE
  "CMakeFiles/dwqa_dw_test.dir/dw/csv_etl_test.cc.o"
  "CMakeFiles/dwqa_dw_test.dir/dw/csv_etl_test.cc.o.d"
  "CMakeFiles/dwqa_dw_test.dir/dw/etl_test.cc.o"
  "CMakeFiles/dwqa_dw_test.dir/dw/etl_test.cc.o.d"
  "CMakeFiles/dwqa_dw_test.dir/dw/olap_test.cc.o"
  "CMakeFiles/dwqa_dw_test.dir/dw/olap_test.cc.o.d"
  "CMakeFiles/dwqa_dw_test.dir/dw/persistence_test.cc.o"
  "CMakeFiles/dwqa_dw_test.dir/dw/persistence_test.cc.o.d"
  "CMakeFiles/dwqa_dw_test.dir/dw/query_parser_test.cc.o"
  "CMakeFiles/dwqa_dw_test.dir/dw/query_parser_test.cc.o.d"
  "CMakeFiles/dwqa_dw_test.dir/dw/schema_test.cc.o"
  "CMakeFiles/dwqa_dw_test.dir/dw/schema_test.cc.o.d"
  "CMakeFiles/dwqa_dw_test.dir/dw/table_test.cc.o"
  "CMakeFiles/dwqa_dw_test.dir/dw/table_test.cc.o.d"
  "CMakeFiles/dwqa_dw_test.dir/dw/value_test.cc.o"
  "CMakeFiles/dwqa_dw_test.dir/dw/value_test.cc.o.d"
  "CMakeFiles/dwqa_dw_test.dir/dw/warehouse_test.cc.o"
  "CMakeFiles/dwqa_dw_test.dir/dw/warehouse_test.cc.o.d"
  "dwqa_dw_test"
  "dwqa_dw_test.pdb"
  "dwqa_dw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwqa_dw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
