# Empty dependencies file for dwqa_dw_test.
# This may be replaced when dependencies are built.
