# Empty compiler generated dependencies file for dwqa_ir_test.
# This may be replaced when dependencies are built.
