file(REMOVE_RECURSE
  "CMakeFiles/dwqa_ir_test.dir/ir/html_test.cc.o"
  "CMakeFiles/dwqa_ir_test.dir/ir/html_test.cc.o.d"
  "CMakeFiles/dwqa_ir_test.dir/ir/inverted_index_test.cc.o"
  "CMakeFiles/dwqa_ir_test.dir/ir/inverted_index_test.cc.o.d"
  "CMakeFiles/dwqa_ir_test.dir/ir/passage_index_test.cc.o"
  "CMakeFiles/dwqa_ir_test.dir/ir/passage_index_test.cc.o.d"
  "dwqa_ir_test"
  "dwqa_ir_test.pdb"
  "dwqa_ir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwqa_ir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
