# Empty dependencies file for dwqa_text_test.
# This may be replaced when dependencies are built.
