file(REMOVE_RECURSE
  "CMakeFiles/dwqa_text_test.dir/text/chunker_test.cc.o"
  "CMakeFiles/dwqa_text_test.dir/text/chunker_test.cc.o.d"
  "CMakeFiles/dwqa_text_test.dir/text/entities_test.cc.o"
  "CMakeFiles/dwqa_text_test.dir/text/entities_test.cc.o.d"
  "CMakeFiles/dwqa_text_test.dir/text/lemmatizer_test.cc.o"
  "CMakeFiles/dwqa_text_test.dir/text/lemmatizer_test.cc.o.d"
  "CMakeFiles/dwqa_text_test.dir/text/pos_tagger_test.cc.o"
  "CMakeFiles/dwqa_text_test.dir/text/pos_tagger_test.cc.o.d"
  "CMakeFiles/dwqa_text_test.dir/text/sentence_splitter_test.cc.o"
  "CMakeFiles/dwqa_text_test.dir/text/sentence_splitter_test.cc.o.d"
  "CMakeFiles/dwqa_text_test.dir/text/tokenizer_test.cc.o"
  "CMakeFiles/dwqa_text_test.dir/text/tokenizer_test.cc.o.d"
  "dwqa_text_test"
  "dwqa_text_test.pdb"
  "dwqa_text_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwqa_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
