file(REMOVE_RECURSE
  "CMakeFiles/dwqa_ontology_test.dir/ontology/enrichment_test.cc.o"
  "CMakeFiles/dwqa_ontology_test.dir/ontology/enrichment_test.cc.o.d"
  "CMakeFiles/dwqa_ontology_test.dir/ontology/merge_test.cc.o"
  "CMakeFiles/dwqa_ontology_test.dir/ontology/merge_test.cc.o.d"
  "CMakeFiles/dwqa_ontology_test.dir/ontology/ontology_test.cc.o"
  "CMakeFiles/dwqa_ontology_test.dir/ontology/ontology_test.cc.o.d"
  "CMakeFiles/dwqa_ontology_test.dir/ontology/owl_writer_test.cc.o"
  "CMakeFiles/dwqa_ontology_test.dir/ontology/owl_writer_test.cc.o.d"
  "CMakeFiles/dwqa_ontology_test.dir/ontology/similarity_test.cc.o"
  "CMakeFiles/dwqa_ontology_test.dir/ontology/similarity_test.cc.o.d"
  "CMakeFiles/dwqa_ontology_test.dir/ontology/uml_model_test.cc.o"
  "CMakeFiles/dwqa_ontology_test.dir/ontology/uml_model_test.cc.o.d"
  "CMakeFiles/dwqa_ontology_test.dir/ontology/uml_to_ontology_test.cc.o"
  "CMakeFiles/dwqa_ontology_test.dir/ontology/uml_to_ontology_test.cc.o.d"
  "CMakeFiles/dwqa_ontology_test.dir/ontology/wordnet_test.cc.o"
  "CMakeFiles/dwqa_ontology_test.dir/ontology/wordnet_test.cc.o.d"
  "CMakeFiles/dwqa_ontology_test.dir/ontology/wsd_test.cc.o"
  "CMakeFiles/dwqa_ontology_test.dir/ontology/wsd_test.cc.o.d"
  "dwqa_ontology_test"
  "dwqa_ontology_test.pdb"
  "dwqa_ontology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwqa_ontology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
