
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ontology/enrichment_test.cc" "tests/CMakeFiles/dwqa_ontology_test.dir/ontology/enrichment_test.cc.o" "gcc" "tests/CMakeFiles/dwqa_ontology_test.dir/ontology/enrichment_test.cc.o.d"
  "/root/repo/tests/ontology/merge_test.cc" "tests/CMakeFiles/dwqa_ontology_test.dir/ontology/merge_test.cc.o" "gcc" "tests/CMakeFiles/dwqa_ontology_test.dir/ontology/merge_test.cc.o.d"
  "/root/repo/tests/ontology/ontology_test.cc" "tests/CMakeFiles/dwqa_ontology_test.dir/ontology/ontology_test.cc.o" "gcc" "tests/CMakeFiles/dwqa_ontology_test.dir/ontology/ontology_test.cc.o.d"
  "/root/repo/tests/ontology/owl_writer_test.cc" "tests/CMakeFiles/dwqa_ontology_test.dir/ontology/owl_writer_test.cc.o" "gcc" "tests/CMakeFiles/dwqa_ontology_test.dir/ontology/owl_writer_test.cc.o.d"
  "/root/repo/tests/ontology/similarity_test.cc" "tests/CMakeFiles/dwqa_ontology_test.dir/ontology/similarity_test.cc.o" "gcc" "tests/CMakeFiles/dwqa_ontology_test.dir/ontology/similarity_test.cc.o.d"
  "/root/repo/tests/ontology/uml_model_test.cc" "tests/CMakeFiles/dwqa_ontology_test.dir/ontology/uml_model_test.cc.o" "gcc" "tests/CMakeFiles/dwqa_ontology_test.dir/ontology/uml_model_test.cc.o.d"
  "/root/repo/tests/ontology/uml_to_ontology_test.cc" "tests/CMakeFiles/dwqa_ontology_test.dir/ontology/uml_to_ontology_test.cc.o" "gcc" "tests/CMakeFiles/dwqa_ontology_test.dir/ontology/uml_to_ontology_test.cc.o.d"
  "/root/repo/tests/ontology/wordnet_test.cc" "tests/CMakeFiles/dwqa_ontology_test.dir/ontology/wordnet_test.cc.o" "gcc" "tests/CMakeFiles/dwqa_ontology_test.dir/ontology/wordnet_test.cc.o.d"
  "/root/repo/tests/ontology/wsd_test.cc" "tests/CMakeFiles/dwqa_ontology_test.dir/ontology/wsd_test.cc.o" "gcc" "tests/CMakeFiles/dwqa_ontology_test.dir/ontology/wsd_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/integration/CMakeFiles/dwqa_integration.dir/DependInfo.cmake"
  "/root/repo/build/src/dw/CMakeFiles/dwqa_dw.dir/DependInfo.cmake"
  "/root/repo/build/src/web/CMakeFiles/dwqa_web.dir/DependInfo.cmake"
  "/root/repo/build/src/qa/CMakeFiles/dwqa_qa.dir/DependInfo.cmake"
  "/root/repo/build/src/ontology/CMakeFiles/dwqa_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/dwqa_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/dwqa_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dwqa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
