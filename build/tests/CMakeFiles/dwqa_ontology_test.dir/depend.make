# Empty dependencies file for dwqa_ontology_test.
# This may be replaced when dependencies are built.
