file(REMOVE_RECURSE
  "CMakeFiles/dwqa_common_test.dir/common/csv_test.cc.o"
  "CMakeFiles/dwqa_common_test.dir/common/csv_test.cc.o.d"
  "CMakeFiles/dwqa_common_test.dir/common/date_test.cc.o"
  "CMakeFiles/dwqa_common_test.dir/common/date_test.cc.o.d"
  "CMakeFiles/dwqa_common_test.dir/common/rng_test.cc.o"
  "CMakeFiles/dwqa_common_test.dir/common/rng_test.cc.o.d"
  "CMakeFiles/dwqa_common_test.dir/common/status_test.cc.o"
  "CMakeFiles/dwqa_common_test.dir/common/status_test.cc.o.d"
  "CMakeFiles/dwqa_common_test.dir/common/string_util_test.cc.o"
  "CMakeFiles/dwqa_common_test.dir/common/string_util_test.cc.o.d"
  "CMakeFiles/dwqa_common_test.dir/common/table_printer_test.cc.o"
  "CMakeFiles/dwqa_common_test.dir/common/table_printer_test.cc.o.d"
  "dwqa_common_test"
  "dwqa_common_test.pdb"
  "dwqa_common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwqa_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
