# Empty compiler generated dependencies file for dwqa_common_test.
# This may be replaced when dependencies are built.
