file(REMOVE_RECURSE
  "CMakeFiles/dwqa_qa_test.dir/qa/aliqan_test.cc.o"
  "CMakeFiles/dwqa_qa_test.dir/qa/aliqan_test.cc.o.d"
  "CMakeFiles/dwqa_qa_test.dir/qa/answer_extractor_test.cc.o"
  "CMakeFiles/dwqa_qa_test.dir/qa/answer_extractor_test.cc.o.d"
  "CMakeFiles/dwqa_qa_test.dir/qa/crosslingual_test.cc.o"
  "CMakeFiles/dwqa_qa_test.dir/qa/crosslingual_test.cc.o.d"
  "CMakeFiles/dwqa_qa_test.dir/qa/question_analyzer_test.cc.o"
  "CMakeFiles/dwqa_qa_test.dir/qa/question_analyzer_test.cc.o.d"
  "CMakeFiles/dwqa_qa_test.dir/qa/structured_test.cc.o"
  "CMakeFiles/dwqa_qa_test.dir/qa/structured_test.cc.o.d"
  "CMakeFiles/dwqa_qa_test.dir/qa/taxonomy_test.cc.o"
  "CMakeFiles/dwqa_qa_test.dir/qa/taxonomy_test.cc.o.d"
  "dwqa_qa_test"
  "dwqa_qa_test.pdb"
  "dwqa_qa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwqa_qa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
