# Empty compiler generated dependencies file for dwqa_qa_test.
# This may be replaced when dependencies are built.
