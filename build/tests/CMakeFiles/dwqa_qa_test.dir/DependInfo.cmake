
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/qa/aliqan_test.cc" "tests/CMakeFiles/dwqa_qa_test.dir/qa/aliqan_test.cc.o" "gcc" "tests/CMakeFiles/dwqa_qa_test.dir/qa/aliqan_test.cc.o.d"
  "/root/repo/tests/qa/answer_extractor_test.cc" "tests/CMakeFiles/dwqa_qa_test.dir/qa/answer_extractor_test.cc.o" "gcc" "tests/CMakeFiles/dwqa_qa_test.dir/qa/answer_extractor_test.cc.o.d"
  "/root/repo/tests/qa/crosslingual_test.cc" "tests/CMakeFiles/dwqa_qa_test.dir/qa/crosslingual_test.cc.o" "gcc" "tests/CMakeFiles/dwqa_qa_test.dir/qa/crosslingual_test.cc.o.d"
  "/root/repo/tests/qa/question_analyzer_test.cc" "tests/CMakeFiles/dwqa_qa_test.dir/qa/question_analyzer_test.cc.o" "gcc" "tests/CMakeFiles/dwqa_qa_test.dir/qa/question_analyzer_test.cc.o.d"
  "/root/repo/tests/qa/structured_test.cc" "tests/CMakeFiles/dwqa_qa_test.dir/qa/structured_test.cc.o" "gcc" "tests/CMakeFiles/dwqa_qa_test.dir/qa/structured_test.cc.o.d"
  "/root/repo/tests/qa/taxonomy_test.cc" "tests/CMakeFiles/dwqa_qa_test.dir/qa/taxonomy_test.cc.o" "gcc" "tests/CMakeFiles/dwqa_qa_test.dir/qa/taxonomy_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/integration/CMakeFiles/dwqa_integration.dir/DependInfo.cmake"
  "/root/repo/build/src/dw/CMakeFiles/dwqa_dw.dir/DependInfo.cmake"
  "/root/repo/build/src/web/CMakeFiles/dwqa_web.dir/DependInfo.cmake"
  "/root/repo/build/src/qa/CMakeFiles/dwqa_qa.dir/DependInfo.cmake"
  "/root/repo/build/src/ontology/CMakeFiles/dwqa_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/dwqa_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/dwqa_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dwqa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
