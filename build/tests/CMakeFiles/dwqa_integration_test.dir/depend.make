# Empty dependencies file for dwqa_integration_test.
# This may be replaced when dependencies are built.
