file(REMOVE_RECURSE
  "CMakeFiles/dwqa_integration_test.dir/integration/bi_analysis_test.cc.o"
  "CMakeFiles/dwqa_integration_test.dir/integration/bi_analysis_test.cc.o.d"
  "CMakeFiles/dwqa_integration_test.dir/integration/end_to_end_test.cc.o"
  "CMakeFiles/dwqa_integration_test.dir/integration/end_to_end_test.cc.o.d"
  "CMakeFiles/dwqa_integration_test.dir/integration/last_minute_sales_test.cc.o"
  "CMakeFiles/dwqa_integration_test.dir/integration/last_minute_sales_test.cc.o.d"
  "CMakeFiles/dwqa_integration_test.dir/integration/multidim_ir_test.cc.o"
  "CMakeFiles/dwqa_integration_test.dir/integration/multidim_ir_test.cc.o.d"
  "CMakeFiles/dwqa_integration_test.dir/integration/pipeline_test.cc.o"
  "CMakeFiles/dwqa_integration_test.dir/integration/pipeline_test.cc.o.d"
  "CMakeFiles/dwqa_integration_test.dir/integration/properties_test.cc.o"
  "CMakeFiles/dwqa_integration_test.dir/integration/properties_test.cc.o.d"
  "CMakeFiles/dwqa_integration_test.dir/integration/query_generation_test.cc.o"
  "CMakeFiles/dwqa_integration_test.dir/integration/query_generation_test.cc.o.d"
  "CMakeFiles/dwqa_integration_test.dir/integration/table_preprocess_test.cc.o"
  "CMakeFiles/dwqa_integration_test.dir/integration/table_preprocess_test.cc.o.d"
  "dwqa_integration_test"
  "dwqa_integration_test.pdb"
  "dwqa_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwqa_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
