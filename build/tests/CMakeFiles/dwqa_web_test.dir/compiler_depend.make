# Empty compiler generated dependencies file for dwqa_web_test.
# This may be replaced when dependencies are built.
