file(REMOVE_RECURSE
  "CMakeFiles/dwqa_web_test.dir/web/page_generators_test.cc.o"
  "CMakeFiles/dwqa_web_test.dir/web/page_generators_test.cc.o.d"
  "CMakeFiles/dwqa_web_test.dir/web/question_factory_test.cc.o"
  "CMakeFiles/dwqa_web_test.dir/web/question_factory_test.cc.o.d"
  "CMakeFiles/dwqa_web_test.dir/web/synthetic_web_test.cc.o"
  "CMakeFiles/dwqa_web_test.dir/web/synthetic_web_test.cc.o.d"
  "CMakeFiles/dwqa_web_test.dir/web/weather_model_test.cc.o"
  "CMakeFiles/dwqa_web_test.dir/web/weather_model_test.cc.o.d"
  "dwqa_web_test"
  "dwqa_web_test.pdb"
  "dwqa_web_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwqa_web_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
