# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/dwqa_common_test[1]_include.cmake")
include("/root/repo/build/tests/dwqa_text_test[1]_include.cmake")
include("/root/repo/build/tests/dwqa_ontology_test[1]_include.cmake")
include("/root/repo/build/tests/dwqa_dw_test[1]_include.cmake")
include("/root/repo/build/tests/dwqa_ir_test[1]_include.cmake")
include("/root/repo/build/tests/dwqa_qa_test[1]_include.cmake")
include("/root/repo/build/tests/dwqa_web_test[1]_include.cmake")
include("/root/repo/build/tests/dwqa_integration_test[1]_include.cmake")
