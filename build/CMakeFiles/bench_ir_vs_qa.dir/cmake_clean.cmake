file(REMOVE_RECURSE
  "CMakeFiles/bench_ir_vs_qa.dir/bench/bench_ir_vs_qa.cpp.o"
  "CMakeFiles/bench_ir_vs_qa.dir/bench/bench_ir_vs_qa.cpp.o.d"
  "bench/bench_ir_vs_qa"
  "bench/bench_ir_vs_qa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ir_vs_qa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
