# Empty compiler generated dependencies file for bench_ir_vs_qa.
# This may be replaced when dependencies are built.
