file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_qa.dir/bench/bench_micro_qa.cpp.o"
  "CMakeFiles/bench_micro_qa.dir/bench/bench_micro_qa.cpp.o.d"
  "bench/bench_micro_qa"
  "bench/bench_micro_qa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_qa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
