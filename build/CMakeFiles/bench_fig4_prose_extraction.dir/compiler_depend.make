# Empty compiler generated dependencies file for bench_fig4_prose_extraction.
# This may be replaced when dependencies are built.
