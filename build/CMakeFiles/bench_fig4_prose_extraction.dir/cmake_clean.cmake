file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_prose_extraction.dir/bench/bench_fig4_prose_extraction.cpp.o"
  "CMakeFiles/bench_fig4_prose_extraction.dir/bench/bench_fig4_prose_extraction.cpp.o.d"
  "bench/bench_fig4_prose_extraction"
  "bench/bench_fig4_prose_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_prose_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
