# Empty compiler generated dependencies file for bench_dw_feed_bi.
# This may be replaced when dependencies are built.
