file(REMOVE_RECURSE
  "CMakeFiles/bench_dw_feed_bi.dir/bench/bench_dw_feed_bi.cpp.o"
  "CMakeFiles/bench_dw_feed_bi.dir/bench/bench_dw_feed_bi.cpp.o.d"
  "bench/bench_dw_feed_bi"
  "bench/bench_dw_feed_bi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dw_feed_bi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
