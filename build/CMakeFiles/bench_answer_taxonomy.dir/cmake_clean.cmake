file(REMOVE_RECURSE
  "CMakeFiles/bench_answer_taxonomy.dir/bench/bench_answer_taxonomy.cpp.o"
  "CMakeFiles/bench_answer_taxonomy.dir/bench/bench_answer_taxonomy.cpp.o.d"
  "bench/bench_answer_taxonomy"
  "bench/bench_answer_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_answer_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
