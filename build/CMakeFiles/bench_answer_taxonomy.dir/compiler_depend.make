# Empty compiler generated dependencies file for bench_answer_taxonomy.
# This may be replaced when dependencies are built.
