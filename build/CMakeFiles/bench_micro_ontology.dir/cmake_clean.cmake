file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_ontology.dir/bench/bench_micro_ontology.cpp.o"
  "CMakeFiles/bench_micro_ontology.dir/bench/bench_micro_ontology.cpp.o.d"
  "bench/bench_micro_ontology"
  "bench/bench_micro_ontology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_ontology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
