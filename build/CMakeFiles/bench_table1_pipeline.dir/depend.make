# Empty dependencies file for bench_table1_pipeline.
# This may be replaced when dependencies are built.
