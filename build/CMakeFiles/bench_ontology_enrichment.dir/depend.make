# Empty dependencies file for bench_ontology_enrichment.
# This may be replaced when dependencies are built.
