file(REMOVE_RECURSE
  "CMakeFiles/bench_ontology_enrichment.dir/bench/bench_ontology_enrichment.cpp.o"
  "CMakeFiles/bench_ontology_enrichment.dir/bench/bench_ontology_enrichment.cpp.o.d"
  "bench/bench_ontology_enrichment"
  "bench/bench_ontology_enrichment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ontology_enrichment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
