file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_ontology.dir/bench/bench_fig2_ontology.cpp.o"
  "CMakeFiles/bench_fig2_ontology.dir/bench/bench_fig2_ontology.cpp.o.d"
  "bench/bench_fig2_ontology"
  "bench/bench_fig2_ontology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_ontology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
