# Empty dependencies file for bench_fig2_ontology.
# This may be replaced when dependencies are built.
