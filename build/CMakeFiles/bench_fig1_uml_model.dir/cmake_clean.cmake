file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_uml_model.dir/bench/bench_fig1_uml_model.cpp.o"
  "CMakeFiles/bench_fig1_uml_model.dir/bench/bench_fig1_uml_model.cpp.o.d"
  "bench/bench_fig1_uml_model"
  "bench/bench_fig1_uml_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_uml_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
