# Empty compiler generated dependencies file for bench_multidim_ir.
# This may be replaced when dependencies are built.
