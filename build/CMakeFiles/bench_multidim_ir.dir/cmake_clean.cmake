file(REMOVE_RECURSE
  "CMakeFiles/bench_multidim_ir.dir/bench/bench_multidim_ir.cpp.o"
  "CMakeFiles/bench_multidim_ir.dir/bench/bench_multidim_ir.cpp.o.d"
  "bench/bench_multidim_ir"
  "bench/bench_multidim_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multidim_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
