file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_aliqan_phases.dir/bench/bench_fig3_aliqan_phases.cpp.o"
  "CMakeFiles/bench_fig3_aliqan_phases.dir/bench/bench_fig3_aliqan_phases.cpp.o.d"
  "bench/bench_fig3_aliqan_phases"
  "bench/bench_fig3_aliqan_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_aliqan_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
