# Empty dependencies file for bench_fig5_table_extraction.
# This may be replaced when dependencies are built.
