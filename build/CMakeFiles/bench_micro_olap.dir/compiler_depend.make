# Empty compiler generated dependencies file for bench_micro_olap.
# This may be replaced when dependencies are built.
