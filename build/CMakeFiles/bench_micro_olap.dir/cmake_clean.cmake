file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_olap.dir/bench/bench_micro_olap.cpp.o"
  "CMakeFiles/bench_micro_olap.dir/bench/bench_micro_olap.cpp.o.d"
  "bench/bench_micro_olap"
  "bench/bench_micro_olap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_olap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
