#ifndef DWQA_DW_ETL_H_
#define DWQA_DW_ETL_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "dw/warehouse.h"

namespace dwqa {
namespace dw {

/// \brief One logical fact record at the ETL boundary: member *paths* per
/// role (so unseen dimension members are registered on the fly) plus the
/// measure values. This is the shape in which Step 5 of the integration
/// pipeline feeds QA-extracted tuples into the warehouse.
struct FactRecord {
  /// One path per fact role, in declaration order; each path is finest
  /// level first ({"El Prat", "Barcelona", "Catalonia", "Spain"}).
  std::vector<std::vector<std::string>> role_paths;
  std::vector<Value> measures;
};

/// \brief Load statistics.
struct LoadReport {
  size_t rows_loaded = 0;
  size_t rows_rejected = 0;
  size_t members_created = 0;
  /// First reject messages, capped at EtlLoader's `max_error_messages` so a
  /// pathological batch cannot balloon the report.
  std::vector<std::string> errors;
  /// Rejects per StatusCode name ("InvalidArgument" → 12) — every reject is
  /// counted here even once the message cap truncates `errors`, so batch
  /// failures stay diagnosable.
  std::map<std::string, size_t> rejected_by_code;
};

/// \brief Row loader: registers dimension members and inserts facts.
class EtlLoader {
 public:
  /// `max_error_messages` caps LoadReport::errors (not the per-code
  /// counters, which always see every reject).
  explicit EtlLoader(Warehouse* warehouse, size_t max_error_messages = 10)
      : wh_(warehouse), max_error_messages_(max_error_messages) {}

  /// Loads one record; member registration is idempotent.
  Status LoadRecord(const std::string& fact, const FactRecord& record);

  /// Loads a batch, continuing past rejected records (errors are collected
  /// in the report, message list capped at `max_error_messages`).
  Result<LoadReport> LoadBatch(const std::string& fact,
                               const std::vector<FactRecord>& records);

  size_t max_error_messages() const { return max_error_messages_; }

 private:
  Warehouse* wh_;
  size_t max_error_messages_;
};

/// Builds the canonical member path of a calendar date for a
/// Date → Month → Year hierarchy: {"2004-01-31", "2004-01", "2004"}.
std::vector<std::string> DateMemberPath(const Date& date);

}  // namespace dw
}  // namespace dwqa

#endif  // DWQA_DW_ETL_H_
