#ifndef DWQA_DW_ETL_H_
#define DWQA_DW_ETL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "dw/warehouse.h"

namespace dwqa {
namespace dw {

/// \brief One logical fact record at the ETL boundary: member *paths* per
/// role (so unseen dimension members are registered on the fly) plus the
/// measure values. This is the shape in which Step 5 of the integration
/// pipeline feeds QA-extracted tuples into the warehouse.
struct FactRecord {
  /// One path per fact role, in declaration order; each path is finest
  /// level first ({"El Prat", "Barcelona", "Catalonia", "Spain"}).
  std::vector<std::vector<std::string>> role_paths;
  std::vector<Value> measures;
};

/// \brief Load statistics.
struct LoadReport {
  size_t rows_loaded = 0;
  size_t rows_rejected = 0;
  size_t members_created = 0;
  std::vector<std::string> errors;  ///< First few reject reasons.
};

/// \brief Row loader: registers dimension members and inserts facts.
class EtlLoader {
 public:
  explicit EtlLoader(Warehouse* warehouse) : wh_(warehouse) {}

  /// Loads one record; member registration is idempotent.
  Status LoadRecord(const std::string& fact, const FactRecord& record);

  /// Loads a batch, continuing past rejected records (errors are collected
  /// in the report; at most 10 messages kept).
  Result<LoadReport> LoadBatch(const std::string& fact,
                               const std::vector<FactRecord>& records);

 private:
  Warehouse* wh_;
};

/// Builds the canonical member path of a calendar date for a
/// Date → Month → Year hierarchy: {"2004-01-31", "2004-01", "2004"}.
std::vector<std::string> DateMemberPath(const Date& date);

}  // namespace dw
}  // namespace dwqa

#endif  // DWQA_DW_ETL_H_
