#ifndef DWQA_DW_OLAP_H_
#define DWQA_DW_OLAP_H_

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "common/result.h"
#include "dw/warehouse.h"

namespace dwqa {
namespace dw {

/// One aggregated output of a query ("SUM(Price)").
struct QueryMeasure {
  std::string measure;
  AggFn agg = AggFn::kSum;
};

/// One grouping axis: a hierarchy level of a dimension role
/// ("destination" at level "City").
struct GroupBy {
  std::string role;
  std::string level;
};

/// Slice/dice predicate: keep facts whose member value at `level` of `role`
/// is in `values` (one value = slice, several = dice).
struct Filter {
  std::string role;
  std::string level;
  std::vector<std::string> values;
};

/// Comparison operators of HAVING predicates.
enum class CompareOp { kLess, kLessEqual, kGreater, kGreaterEqual, kEqual };

const char* CompareOpName(CompareOp op);

/// Evaluates `lhs op rhs` — the one comparator both the OLAP engine and the
/// materialized-view reader apply to HAVING predicates.
bool EvalCompare(double lhs, CompareOp op, double rhs);

/// \brief Running aggregate of one measure within one group.
///
/// Shared by the OLAP engine's hash aggregation and the materialized-view
/// maintenance path: a view's groups are byte-identical to a recompute
/// because both sides accumulate through this struct and render through the
/// same Finish().
struct AggState {
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  size_t count = 0;

  void Add(double v) {
    sum += v;
    min = std::min(min, v);
    max = std::max(max, v);
    ++count;
  }

  /// Folds another partial aggregate into this one — the merge half of the
  /// split/merge identity the federation layer relies on: accumulating a
  /// row set in partitions and merging the partials lands on the same state
  /// as accumulating the whole set in one pass (exactly so for min/max/
  /// count, and for sums of dyadic-rational measures; within rounding for
  /// arbitrary doubles).
  void Merge(const AggState& other) {
    sum += other.sum;
    min = std::min(min, other.min);
    max = std::max(max, other.max);
    count += other.count;
  }

  Value Finish(AggFn fn) const {
    switch (fn) {
      case AggFn::kSum:
        return Value(sum);
      case AggFn::kCount:
        return Value(static_cast<int64_t>(count));
      case AggFn::kAvg:
        return count == 0 ? Value() : Value(sum / double(count));
      case AggFn::kMin:
        return count == 0 ? Value() : Value(min);
      case AggFn::kMax:
        return count == 0 ? Value() : Value(max);
    }
    return Value();
  }
};

/// Post-aggregation predicate: keep groups whose aggregated measure
/// compares true against `value`. `measure_index` refers to the query's
/// measure list.
struct Having {
  size_t measure_index = 0;
  CompareOp op = CompareOp::kGreater;
  double value = 0.0;
};

/// \brief A multidimensional aggregation query over one fact.
struct OlapQuery {
  std::string fact;
  std::vector<QueryMeasure> measures;
  std::vector<GroupBy> group_by;
  std::vector<Filter> filters;
  std::vector<Having> having;
};

/// \brief Query result: one row per group; group columns first, then one
/// column per aggregated measure.
struct OlapResult {
  std::vector<std::string> headers;
  std::vector<std::vector<Value>> rows;
  size_t facts_scanned = 0;
  size_t facts_matched = 0;

  std::string ToDisplayString(size_t max_rows = 50) const;
};

/// \brief Hash-aggregation OLAP engine over a star-schema Warehouse, with
/// the classical operations the paper's BI motivation relies on: group-by at
/// any hierarchy level (aggregating "at different levels of detail"),
/// roll-up, drill-down, slice and dice.
class OlapEngine {
 public:
  explicit OlapEngine(const Warehouse* warehouse) : wh_(warehouse) {}

  /// Executes `query` with a full scan + hash aggregate.
  Result<OlapResult> Execute(const OlapQuery& query) const;

  /// Returns `query` with the `role` grouping moved one level coarser
  /// (Airport → City). Fails at the top level.
  Result<OlapQuery> RollUp(const OlapQuery& query,
                           const std::string& role) const;

  /// Returns `query` with the `role` grouping moved one level finer
  /// (City → Airport). Fails at the base level.
  Result<OlapQuery> DrillDown(const OlapQuery& query,
                              const std::string& role) const;

 private:
  Result<OlapQuery> ShiftLevel(const OlapQuery& query,
                               const std::string& role, int delta) const;

  const Warehouse* wh_;
};

}  // namespace dw
}  // namespace dwqa

#endif  // DWQA_DW_OLAP_H_
