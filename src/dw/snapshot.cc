#include "dw/snapshot.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"
#include "dw/persistence.h"

namespace dwqa {
namespace dw {

namespace {

constexpr char kManifestMagic[] = "dwqa-snapshot";
constexpr char kManifestVersion[] = "1";
constexpr char kManifestFile[] = "MANIFEST";

std::string SnapshotDirName(Lsn lsn) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "snap-%020llu",
                static_cast<unsigned long long>(lsn));
  return buf;
}

bool ParseUint64(const std::string& s, uint64_t* out) {
  if (!IsDigits(s) || s.size() > 20) return false;
  errno = 0;
  char* end = nullptr;
  uint64_t v = std::strtoull(s.c_str(), &end, 10);
  if (errno == ERANGE || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool IsSnapshotDirName(const std::string& name, Lsn* lsn) {
  if (!StartsWith(name, "snap-") || EndsWith(name, ".tmp")) return false;
  std::string digits = name.substr(5);
  if (digits.size() != 20) return false;
  return ParseUint64(digits, lsn);
}

}  // namespace

std::string ManifestSerde::ToText(const SnapshotManifest& manifest) {
  std::string out;
  out += std::string(kManifestMagic) + "\t" + kManifestVersion + "\n";
  out += "lsn\t" + std::to_string(manifest.lsn) + "\n";
  for (const ManifestEntry& entry : manifest.entries) {
    out += "file\t" + entry.file + "\t" + std::to_string(entry.size) + "\t" +
           entry.crc_hex + "\n";
  }
  return out;
}

Result<SnapshotManifest> ManifestSerde::FromText(const std::string& text) {
  auto malformed = [](size_t line_no, const std::string& why) {
    return Status::Corruption("snapshot manifest line " +
                              std::to_string(line_no) + ": " + why);
  };
  SnapshotManifest manifest;
  std::vector<std::string> lines = Split(text, '\n');
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (lines.empty()) return malformed(1, "empty manifest");
  {
    std::vector<std::string> fields = Split(lines[0], '\t');
    if (fields.size() != 2 || fields[0] != kManifestMagic ||
        fields[1] != kManifestVersion) {
      return malformed(1, "bad magic/version");
    }
  }
  bool saw_lsn = false;
  for (size_t i = 1; i < lines.size(); ++i) {
    const size_t line_no = i + 1;
    std::vector<std::string> fields = Split(lines[i], '\t');
    if (fields[0] == "lsn") {
      if (fields.size() != 2 || !ParseUint64(fields[1], &manifest.lsn)) {
        return malformed(line_no, "bad 'lsn' line");
      }
      if (saw_lsn) return malformed(line_no, "duplicate 'lsn' line");
      saw_lsn = true;
    } else if (fields[0] == "file") {
      ManifestEntry entry;
      if (fields.size() != 4 || fields[1].empty() ||
          !ParseUint64(fields[2], &entry.size) || fields[3].size() != 8) {
        return malformed(line_no, "bad 'file' line");
      }
      entry.file = fields[1];
      entry.crc_hex = fields[3];
      manifest.entries.push_back(std::move(entry));
    } else {
      return malformed(line_no, "unknown tag '" + fields[0] + "'");
    }
  }
  if (!saw_lsn) return malformed(lines.size(), "missing 'lsn' line");
  return manifest;
}

Result<std::string> SnapshotWriter::Write(const std::string& dir,
                                          const Warehouse& warehouse,
                                          Lsn lsn, Fs* fs) {
  fs = FsOrReal(fs);
  DWQA_RETURN_NOT_OK(fs->CreateDirs(dir));
  const std::string final_dir = dir + "/" + SnapshotDirName(lsn);
  const std::string tmp_dir = final_dir + ".tmp";
  if (fs->Exists(final_dir)) {
    // Same covering LSN, same warehouse state: the snapshot is already
    // committed (a retried flush after a crash between rename and ack).
    return final_dir;
  }
  if (fs->Exists(tmp_dir)) DWQA_RETURN_NOT_OK(fs->RemoveAll(tmp_dir));
  DWQA_RETURN_NOT_OK(WarehousePersistence::Save(warehouse, tmp_dir, fs));

  SnapshotManifest manifest;
  manifest.lsn = lsn;
  DWQA_ASSIGN_OR_RETURN(std::vector<std::string> names,
                        fs->ListDir(tmp_dir));
  for (const std::string& name : names) {
    // WriteFileAtomic leaves no .tmp behind on success; anything else in
    // the build dir is snapshot data and gets covered by the manifest.
    if (EndsWith(name, ".tmp") || name == kManifestFile) continue;
    DWQA_ASSIGN_OR_RETURN(std::string content,
                          fs->ReadFile(tmp_dir + "/" + name));
    manifest.entries.push_back(
        ManifestEntry{name, content.size(), Crc32Hex(content)});
  }
  DWQA_RETURN_NOT_OK(WriteFileAtomic(fs, tmp_dir + "/" + kManifestFile,
                                     ManifestSerde::ToText(manifest)));
  DWQA_RETURN_NOT_OK(fs->Rename(tmp_dir, final_dir));
  return final_dir;
}

Result<std::vector<SnapshotInfo>> ListSnapshots(
    const std::string& dir, Fs* fs, std::vector<std::string>* tmp_leftovers) {
  fs = FsOrReal(fs);
  std::vector<SnapshotInfo> snapshots;
  if (!fs->Exists(dir)) return snapshots;
  DWQA_ASSIGN_OR_RETURN(std::vector<std::string> names, fs->ListDir(dir));
  for (const std::string& name : names) {
    Lsn lsn = 0;
    if (IsSnapshotDirName(name, &lsn)) {
      snapshots.push_back(SnapshotInfo{name, lsn});
    } else if (StartsWith(name, "snap-") && EndsWith(name, ".tmp") &&
               tmp_leftovers != nullptr) {
      tmp_leftovers->push_back(name);
    }
  }
  // ListDir sorts lexicographically; zero-padded LSNs make that oldest
  // first already, but keep the contract explicit.
  return snapshots;
}

Result<SnapshotManifest> VerifySnapshot(const std::string& snapshot_dir,
                                        Fs* fs) {
  fs = FsOrReal(fs);
  auto manifest_text = fs->ReadFile(snapshot_dir + "/" + kManifestFile);
  if (!manifest_text.ok()) {
    return Status::Corruption("snapshot '" + snapshot_dir +
                              "' has no readable MANIFEST: " +
                              manifest_text.status().message());
  }
  DWQA_ASSIGN_OR_RETURN(SnapshotManifest manifest,
                        ManifestSerde::FromText(*manifest_text));
  for (const ManifestEntry& entry : manifest.entries) {
    const std::string path = snapshot_dir + "/" + entry.file;
    auto content = fs->ReadFile(path);
    if (!content.ok()) {
      return Status::Corruption("snapshot file '" + path +
                                "' unreadable: " +
                                content.status().message());
    }
    if (content->size() != entry.size) {
      return Status::Corruption(
          "snapshot file '" + path + "' size " +
          std::to_string(content->size()) + " != manifest size " +
          std::to_string(entry.size));
    }
    if (Crc32Hex(*content) != entry.crc_hex) {
      return Status::Corruption("snapshot file '" + path +
                                "' CRC mismatch (bit rot?)");
    }
  }
  return manifest;
}

}  // namespace dw
}  // namespace dwqa
