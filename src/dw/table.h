#ifndef DWQA_DW_TABLE_H_
#define DWQA_DW_TABLE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dw/value.h"

namespace dwqa {
namespace dw {

/// \brief A typed column: contiguous storage of one attribute.
///
/// Values are stored in a type-homogeneous vector (columnar layout); nulls
/// are tracked in a parallel validity vector. Appends are type-checked.
class Column {
 public:
  Column(std::string name, ColumnType type)
      : name_(std::move(name)), type_(type) {}

  const std::string& name() const { return name_; }
  ColumnType type() const { return type_; }
  size_t size() const { return valid_.size(); }

  /// Appends `v`, which must be null or match the column type.
  Status Append(const Value& v);

  /// Cell accessor (null Value if invalid row or stored null).
  Value Get(size_t row) const;

  /// Fast numeric view for aggregation (0.0 where null / non-numeric).
  double GetDouble(size_t row) const;

 private:
  std::string name_;
  ColumnType type_;
  std::vector<bool> valid_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<Date> dates_;
};

/// \brief Name and type of one table column.
struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kString;
};

/// \brief A columnar table: the physical storage unit of the warehouse
/// (dimension tables and fact tables) and the shape of OLAP results.
class Table {
 public:
  Table() = default;
  Table(std::string name, std::vector<ColumnDef> columns);

  const std::string& name() const { return name_; }
  size_t row_count() const { return row_count_; }
  size_t column_count() const { return columns_.size(); }

  /// Index of the column called `name`, or NotFound.
  Result<size_t> ColumnIndex(std::string_view name) const;

  const Column& column(size_t i) const { return columns_[i]; }

  /// Appends one row; `row` must have one value per column.
  Status AppendRow(const std::vector<Value>& row);

  Value Get(size_t row, size_t col) const { return columns_[col].Get(row); }

  /// Renders the table for display (used by examples and benches).
  std::string ToDisplayString(size_t max_rows = 50) const;

 private:
  std::string name_;
  std::vector<Column> columns_;
  size_t row_count_ = 0;
};

}  // namespace dw
}  // namespace dwqa

#endif  // DWQA_DW_TABLE_H_
