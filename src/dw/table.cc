#include "dw/table.h"

#include "common/logging.h"
#include "common/table_printer.h"

namespace dwqa {
namespace dw {

Status Column::Append(const Value& v) {
  if (v.is_null()) {
    valid_.push_back(false);
    switch (type_) {
      case ColumnType::kInt64:
        ints_.push_back(0);
        break;
      case ColumnType::kDouble:
        doubles_.push_back(0.0);
        break;
      case ColumnType::kString:
        strings_.emplace_back();
        break;
      case ColumnType::kDate:
        dates_.emplace_back();
        break;
    }
    return Status::OK();
  }
  switch (type_) {
    case ColumnType::kInt64:
      if (!v.is_int()) break;
      ints_.push_back(v.as_int());
      valid_.push_back(true);
      return Status::OK();
    case ColumnType::kDouble:
      if (v.is_double()) {
        doubles_.push_back(v.as_double());
      } else if (v.is_int()) {
        doubles_.push_back(static_cast<double>(v.as_int()));
      } else {
        break;
      }
      valid_.push_back(true);
      return Status::OK();
    case ColumnType::kString:
      if (!v.is_string()) break;
      strings_.push_back(v.as_string());
      valid_.push_back(true);
      return Status::OK();
    case ColumnType::kDate:
      if (!v.is_date()) break;
      dates_.push_back(v.as_date());
      valid_.push_back(true);
      return Status::OK();
  }
  return Status::InvalidArgument("type mismatch appending to column '" +
                                 name_ + "' (" + ColumnTypeName(type_) + ")");
}

Value Column::Get(size_t row) const {
  if (row >= valid_.size() || !valid_[row]) return Value();
  switch (type_) {
    case ColumnType::kInt64:
      return Value(ints_[row]);
    case ColumnType::kDouble:
      return Value(doubles_[row]);
    case ColumnType::kString:
      return Value(strings_[row]);
    case ColumnType::kDate:
      return Value(dates_[row]);
  }
  return Value();
}

double Column::GetDouble(size_t row) const {
  if (row >= valid_.size() || !valid_[row]) return 0.0;
  if (type_ == ColumnType::kInt64) return static_cast<double>(ints_[row]);
  if (type_ == ColumnType::kDouble) return doubles_[row];
  return 0.0;
}

Table::Table(std::string name, std::vector<ColumnDef> columns)
    : name_(std::move(name)) {
  for (ColumnDef& def : columns) {
    columns_.emplace_back(std::move(def.name), def.type);
  }
}

Result<size_t> Table::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name() == name) return i;
  }
  return Status::NotFound("table '" + name_ + "' has no column '" +
                          std::string(name) + "'");
}

Status Table::AppendRow(const std::vector<Value>& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != column count " +
        std::to_string(columns_.size()) + " in table '" + name_ + "'");
  }
  // Validate all appends up-front so a failed row does not leave ragged
  // columns behind.
  for (size_t i = 0; i < row.size(); ++i) {
    const Value& v = row[i];
    if (v.is_null()) continue;
    bool ok = false;
    switch (columns_[i].type()) {
      case ColumnType::kInt64:
        ok = v.is_int();
        break;
      case ColumnType::kDouble:
        ok = v.is_double() || v.is_int();
        break;
      case ColumnType::kString:
        ok = v.is_string();
        break;
      case ColumnType::kDate:
        ok = v.is_date();
        break;
    }
    if (!ok) {
      return Status::InvalidArgument("type mismatch in column '" +
                                     columns_[i].name() + "' of table '" +
                                     name_ + "'");
    }
  }
  for (size_t i = 0; i < row.size(); ++i) {
    Status st = columns_[i].Append(row[i]);
    DWQA_CHECK(st.ok());  // Pre-validated above.
  }
  ++row_count_;
  return Status::OK();
}

std::string Table::ToDisplayString(size_t max_rows) const {
  std::vector<std::string> headers;
  for (const Column& c : columns_) headers.push_back(c.name());
  TablePrinter printer(std::move(headers));
  for (size_t r = 0; r < row_count_ && r < max_rows; ++r) {
    std::vector<std::string> row;
    for (const Column& c : columns_) row.push_back(c.Get(r).ToString());
    printer.AddRow(std::move(row));
  }
  std::string out = printer.Render();
  if (row_count_ > max_rows) {
    out += "... (" + std::to_string(row_count_ - max_rows) + " more rows)\n";
  }
  return out;
}

}  // namespace dw
}  // namespace dwqa
