#include "dw/persistence.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/csv.h"
#include "common/string_util.h"
#include "dw/csv_etl.h"
#include "dw/etl.h"

namespace dwqa {
namespace dw {

namespace {

namespace fs = std::filesystem;

Result<ColumnType> ColumnTypeFromName(const std::string& name) {
  if (name == "int64") return ColumnType::kInt64;
  if (name == "double") return ColumnType::kDouble;
  if (name == "string") return ColumnType::kString;
  if (name == "date") return ColumnType::kDate;
  return Status::InvalidArgument("unknown column type '" + name + "'");
}

Result<AggFn> AggFnFromName(const std::string& name) {
  for (AggFn fn : {AggFn::kSum, AggFn::kCount, AggFn::kAvg, AggFn::kMin,
                   AggFn::kMax}) {
    if (name == AggFnName(fn)) return fn;
  }
  return Status::InvalidArgument("unknown aggregation '" + name + "'");
}

Result<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path.string() + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Status WriteFile(const fs::path& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path.string() + "'");
  out << content;
  return out.good() ? Status::OK()
                    : Status::IOError("write failed: " + path.string());
}

/// Filesystem-safe file stem for a schema object name.
std::string Slug(const std::string& name) {
  std::string out;
  for (char c : name) {
    out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  }
  return out;
}

}  // namespace

std::string SchemaSerde::ToText(const MdSchema& schema) {
  std::string out;
  for (const DimensionDef& dim : schema.dimensions()) {
    out += "dimension\t" + dim.name + "\n";
    for (const LevelDef& level : dim.levels) {
      out += "level\t" + level.name + "\n";
    }
  }
  for (const FactDef& fact : schema.facts()) {
    out += "fact\t" + fact.name + "\n";
    for (const DimRole& role : fact.roles) {
      out += "role\t" + role.role + "\t" + role.dimension + "\n";
    }
    for (const MeasureDef& m : fact.measures) {
      out += "measure\t" + m.name + "\t" +
             std::string(ColumnTypeName(m.type)) + "\t" +
             AggFnName(m.default_agg) + "\n";
    }
  }
  return out;
}

Result<MdSchema> SchemaSerde::FromText(const std::string& text) {
  MdSchema schema;
  // Accumulate the current dimension or fact; flush when the next object
  // starts or at EOF.
  DimensionDef dim;
  FactDef fact;
  enum class Mode { kNone, kDimension, kFact } mode = Mode::kNone;
  auto flush = [&]() -> Status {
    if (mode == Mode::kDimension) {
      DWQA_RETURN_NOT_OK(schema.AddDimension(std::move(dim)));
      dim = DimensionDef();
    } else if (mode == Mode::kFact) {
      DWQA_RETURN_NOT_OK(schema.AddFact(std::move(fact)));
      fact = FactDef();
    }
    mode = Mode::kNone;
    return Status::OK();
  };

  for (const std::string& raw_line : Split(text, '\n')) {
    std::string line = Trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = Split(line, '\t');
    const std::string& kind = fields[0];
    if (kind == "dimension") {
      if (fields.size() != 2) {
        return Status::InvalidArgument("malformed dimension line");
      }
      DWQA_RETURN_NOT_OK(flush());
      mode = Mode::kDimension;
      dim.name = fields[1];
    } else if (kind == "level") {
      if (mode != Mode::kDimension || fields.size() != 2) {
        return Status::InvalidArgument("level outside a dimension");
      }
      dim.levels.push_back({fields[1]});
    } else if (kind == "fact") {
      if (fields.size() != 2) {
        return Status::InvalidArgument("malformed fact line");
      }
      DWQA_RETURN_NOT_OK(flush());
      mode = Mode::kFact;
      fact.name = fields[1];
    } else if (kind == "role") {
      if (mode != Mode::kFact || fields.size() != 3) {
        return Status::InvalidArgument("role outside a fact");
      }
      fact.roles.push_back({fields[1], fields[2]});
    } else if (kind == "measure") {
      if (mode != Mode::kFact || fields.size() != 4) {
        return Status::InvalidArgument("malformed measure line");
      }
      MeasureDef m;
      m.name = fields[1];
      DWQA_ASSIGN_OR_RETURN(m.type, ColumnTypeFromName(fields[2]));
      DWQA_ASSIGN_OR_RETURN(m.default_agg, AggFnFromName(fields[3]));
      fact.measures.push_back(std::move(m));
    } else {
      return Status::InvalidArgument("unknown schema line kind '" + kind +
                                     "'");
    }
  }
  DWQA_RETURN_NOT_OK(flush());
  DWQA_RETURN_NOT_OK(schema.Validate());
  return schema;
}

Status WarehousePersistence::Save(const Warehouse& wh,
                                  const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create directory '" + dir +
                           "': " + ec.message());
  }
  DWQA_RETURN_NOT_OK(
      WriteFile(fs::path(dir) / "schema.txt", SchemaSerde::ToText(
                                                  wh.schema())));
  for (const DimensionDef& dim : wh.schema().dimensions()) {
    DWQA_ASSIGN_OR_RETURN(const Table* table, wh.DimensionTable(dim.name));
    DWQA_RETURN_NOT_OK(
        WriteFile(fs::path(dir) / ("dim_" + Slug(dim.name) + ".csv"),
                  CsvEtl::ExportTable(*table)));
  }
  for (const FactDef& fact : wh.schema().facts()) {
    DWQA_ASSIGN_OR_RETURN(std::string csv, CsvEtl::ExportFact(wh,
                                                              fact.name));
    DWQA_RETURN_NOT_OK(WriteFile(
        fs::path(dir) / ("fact_" + Slug(fact.name) + ".csv"), csv));
  }
  return Status::OK();
}

Result<Warehouse> WarehousePersistence::Load(const std::string& dir) {
  DWQA_ASSIGN_OR_RETURN(std::string schema_text,
                        ReadFile(fs::path(dir) / "schema.txt"));
  DWQA_ASSIGN_OR_RETURN(MdSchema schema,
                        SchemaSerde::FromText(schema_text));
  DWQA_ASSIGN_OR_RETURN(Warehouse wh, Warehouse::Create(std::move(schema)));

  // Dimension members first, preserving insertion order (surrogate keys
  // are reassigned but identical because order is preserved).
  for (const DimensionDef& dim : wh.schema().dimensions()) {
    DWQA_ASSIGN_OR_RETURN(
        std::string csv,
        ReadFile(fs::path(dir) / ("dim_" + Slug(dim.name) + ".csv")));
    DWQA_ASSIGN_OR_RETURN(auto rows, Csv::Parse(csv));
    for (size_t r = 1; r < rows.size(); ++r) {
      std::vector<std::string> path = rows[r];
      while (!path.empty() && path.back().empty()) path.pop_back();
      if (path.empty()) {
        return Status::InvalidArgument("empty member row in dimension '" +
                                       dim.name + "'");
      }
      DWQA_RETURN_NOT_OK(wh.AddMember(dim.name, path).status());
    }
  }
  for (const FactDef& fact : wh.schema().facts()) {
    DWQA_ASSIGN_OR_RETURN(
        std::string csv,
        ReadFile(fs::path(dir) / ("fact_" + Slug(fact.name) + ".csv")));
    DWQA_ASSIGN_OR_RETURN(
        auto records,
        CsvEtl::ImportFactRecords(wh.schema(), fact.name, csv));
    EtlLoader loader(&wh);
    DWQA_ASSIGN_OR_RETURN(LoadReport report,
                          loader.LoadBatch(fact.name, records));
    if (report.rows_rejected > 0) {
      return Status::Internal(
          "reload rejected " + std::to_string(report.rows_rejected) +
          " rows of fact '" + fact.name + "': " +
          (report.errors.empty() ? "" : report.errors.front()));
    }
  }
  return wh;
}

}  // namespace dw
}  // namespace dwqa
