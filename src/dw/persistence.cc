#include "dw/persistence.h"

#include <set>

#include "common/csv.h"
#include "common/string_util.h"
#include "dw/csv_etl.h"
#include "dw/etl.h"

namespace dwqa {
namespace dw {

namespace {

Result<ColumnType> ColumnTypeFromName(const std::string& name) {
  if (name == "int64") return ColumnType::kInt64;
  if (name == "double") return ColumnType::kDouble;
  if (name == "string") return ColumnType::kString;
  if (name == "date") return ColumnType::kDate;
  return Status::InvalidArgument("unknown column type '" + name + "'");
}

Result<AggFn> AggFnFromName(const std::string& name) {
  for (AggFn fn : {AggFn::kSum, AggFn::kCount, AggFn::kAvg, AggFn::kMin,
                   AggFn::kMax}) {
    if (name == AggFnName(fn)) return fn;
  }
  return Status::InvalidArgument("unknown aggregation '" + name + "'");
}

/// Filesystem-safe file stem for a schema object name.
std::string Slug(const std::string& name) {
  std::string out;
  for (char c : name) {
    out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  }
  return out;
}

}  // namespace

std::string SchemaSerde::ToText(const MdSchema& schema) {
  std::string out;
  for (const DimensionDef& dim : schema.dimensions()) {
    out += "dimension\t" + dim.name + "\n";
    for (const LevelDef& level : dim.levels) {
      out += "level\t" + level.name + "\n";
    }
  }
  for (const FactDef& fact : schema.facts()) {
    out += "fact\t" + fact.name + "\n";
    for (const DimRole& role : fact.roles) {
      out += "role\t" + role.role + "\t" + role.dimension + "\n";
    }
    for (const MeasureDef& m : fact.measures) {
      out += "measure\t" + m.name + "\t" +
             std::string(ColumnTypeName(m.type)) + "\t" +
             AggFnName(m.default_agg) + "\n";
    }
  }
  return out;
}

Result<MdSchema> SchemaSerde::FromText(const std::string& text) {
  MdSchema schema;
  // Accumulate the current dimension or fact; flush when the next object
  // starts or at EOF.
  DimensionDef dim;
  FactDef fact;
  enum class Mode { kNone, kDimension, kFact } mode = Mode::kNone;
  auto flush = [&]() -> Status {
    if (mode == Mode::kDimension) {
      DWQA_RETURN_NOT_OK(schema.AddDimension(std::move(dim)));
      dim = DimensionDef();
    } else if (mode == Mode::kFact) {
      DWQA_RETURN_NOT_OK(schema.AddFact(std::move(fact)));
      fact = FactDef();
    }
    mode = Mode::kNone;
    return Status::OK();
  };
  size_t line_no = 0;
  auto malformed = [&](const std::string& why) {
    return Status::InvalidArgument("schema line " + std::to_string(line_no) +
                                   ": " + why);
  };
  // Duplicate names are rejected at the line that re-declares them, so the
  // error points at the offending line rather than the later flush point.
  std::set<std::string> dim_names;
  std::set<std::string> fact_names;
  std::set<std::string> level_names;

  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_no;
    std::string line = Trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = Split(line, '\t');
    const std::string& kind = fields[0];
    if (kind == "dimension") {
      if (fields.size() != 2 || fields[1].empty()) {
        return malformed("malformed dimension line");
      }
      if (!dim_names.insert(fields[1]).second) {
        return malformed("duplicate dimension '" + fields[1] + "'");
      }
      DWQA_RETURN_NOT_OK(flush());
      mode = Mode::kDimension;
      dim.name = fields[1];
      level_names.clear();
    } else if (kind == "level") {
      if (mode != Mode::kDimension) {
        return malformed("level outside a dimension");
      }
      if (fields.size() != 2 || fields[1].empty()) {
        return malformed("malformed level line");
      }
      if (!level_names.insert(fields[1]).second) {
        return malformed("duplicate level '" + fields[1] +
                         "' in dimension '" + dim.name + "'");
      }
      dim.levels.push_back({fields[1]});
    } else if (kind == "fact") {
      if (fields.size() != 2 || fields[1].empty()) {
        return malformed("malformed fact line");
      }
      if (!fact_names.insert(fields[1]).second) {
        return malformed("duplicate fact '" + fields[1] + "'");
      }
      DWQA_RETURN_NOT_OK(flush());
      mode = Mode::kFact;
      fact.name = fields[1];
    } else if (kind == "role") {
      if (mode != Mode::kFact) return malformed("role outside a fact");
      if (fields.size() != 3 || fields[1].empty() || fields[2].empty()) {
        return malformed("malformed role line");
      }
      fact.roles.push_back({fields[1], fields[2]});
    } else if (kind == "measure") {
      if (mode != Mode::kFact) return malformed("measure outside a fact");
      if (fields.size() != 4 || fields[1].empty()) {
        return malformed("malformed measure line");
      }
      MeasureDef m;
      m.name = fields[1];
      auto type = ColumnTypeFromName(fields[2]);
      if (!type.ok()) return malformed(type.status().message());
      m.type = *type;
      auto agg = AggFnFromName(fields[3]);
      if (!agg.ok()) return malformed(agg.status().message());
      m.default_agg = *agg;
      fact.measures.push_back(std::move(m));
    } else {
      return malformed("unknown schema line kind '" + kind + "'");
    }
  }
  DWQA_RETURN_NOT_OK(flush());
  DWQA_RETURN_NOT_OK(schema.Validate());
  return schema;
}

Status WarehousePersistence::Save(const Warehouse& wh, const std::string& dir,
                                  Fs* fs) {
  fs = FsOrReal(fs);
  DWQA_RETURN_NOT_OK(fs->CreateDirs(dir));
  DWQA_RETURN_NOT_OK(WriteFileAtomic(fs, dir + "/schema.txt",
                                     SchemaSerde::ToText(wh.schema())));
  for (const DimensionDef& dim : wh.schema().dimensions()) {
    DWQA_ASSIGN_OR_RETURN(const Table* table, wh.DimensionTable(dim.name));
    DWQA_RETURN_NOT_OK(
        WriteFileAtomic(fs, dir + "/dim_" + Slug(dim.name) + ".csv",
                        CsvEtl::ExportTable(*table)));
  }
  for (const FactDef& fact : wh.schema().facts()) {
    DWQA_ASSIGN_OR_RETURN(std::string csv, CsvEtl::ExportFact(wh,
                                                              fact.name));
    DWQA_RETURN_NOT_OK(WriteFileAtomic(
        fs, dir + "/fact_" + Slug(fact.name) + ".csv", csv));
  }
  return Status::OK();
}

Result<Warehouse> WarehousePersistence::Load(const std::string& dir,
                                             Fs* fs) {
  fs = FsOrReal(fs);
  DWQA_ASSIGN_OR_RETURN(std::string schema_text,
                        fs->ReadFile(dir + "/schema.txt"));
  DWQA_ASSIGN_OR_RETURN(MdSchema schema,
                        SchemaSerde::FromText(schema_text));
  DWQA_ASSIGN_OR_RETURN(Warehouse wh, Warehouse::Create(std::move(schema)));

  // Dimension members first, preserving insertion order (surrogate keys
  // are reassigned but identical because order is preserved).
  for (const DimensionDef& dim : wh.schema().dimensions()) {
    std::string file = "dim_" + Slug(dim.name) + ".csv";
    DWQA_ASSIGN_OR_RETURN(std::string csv, fs->ReadFile(dir + "/" + file));
    auto parsed = Csv::Parse(csv);
    if (!parsed.ok()) {
      return Status::InvalidArgument("malformed '" + file +
                                     "': " + parsed.status().message());
    }
    const auto& rows = *parsed;
    if (rows.empty()) {
      return Status::InvalidArgument("'" + file +
                                     "' is empty or truncated: missing "
                                     "header row");
    }
    for (size_t r = 1; r < rows.size(); ++r) {
      std::vector<std::string> path = rows[r];
      while (!path.empty() && path.back().empty()) path.pop_back();
      if (path.empty()) {
        return Status::InvalidArgument("'" + file + "' row " +
                                       std::to_string(r + 1) +
                                       ": empty member row in dimension '" +
                                       dim.name + "'");
      }
      if (path.size() > dim.levels.size()) {
        return Status::InvalidArgument(
            "'" + file + "' row " + std::to_string(r + 1) + ": member path "
            "has " + std::to_string(path.size()) + " levels, dimension '" +
            dim.name + "' defines " + std::to_string(dim.levels.size()));
      }
      Status st = wh.AddMember(dim.name, path).status();
      if (!st.ok()) {
        return Status::InvalidArgument("'" + file + "' row " +
                                       std::to_string(r + 1) + ": " +
                                       st.message());
      }
    }
  }
  for (const FactDef& fact : wh.schema().facts()) {
    std::string file = "fact_" + Slug(fact.name) + ".csv";
    DWQA_ASSIGN_OR_RETURN(std::string csv, fs->ReadFile(dir + "/" + file));
    auto records = CsvEtl::ImportFactRecords(wh.schema(), fact.name, csv);
    if (!records.ok()) {
      return Status::InvalidArgument("malformed '" + file +
                                     "': " + records.status().message());
    }
    EtlLoader loader(&wh);
    DWQA_ASSIGN_OR_RETURN(LoadReport report,
                          loader.LoadBatch(fact.name, *records));
    if (report.rows_rejected > 0) {
      return Status::InvalidArgument(
          "'" + file + "': reload rejected " +
          std::to_string(report.rows_rejected) + " rows of fact '" +
          fact.name + "': " +
          (report.errors.empty() ? "" : report.errors.front()));
    }
  }
  return wh;
}

}  // namespace dw
}  // namespace dwqa
