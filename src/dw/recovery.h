#ifndef DWQA_DW_RECOVERY_H_
#define DWQA_DW_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/metrics.h"
#include "common/result.h"
#include "dw/quarantine.h"
#include "dw/snapshot.h"
#include "dw/wal.h"
#include "dw/warehouse.h"

namespace dwqa {
namespace dw {

/// \brief Options of Recovery::Open.
struct RecoveryOptions {
  /// Filesystem seam (null = real). The crash sweep recovers through the
  /// real Fs after crashing a FaultFs-backed run.
  Fs* fs = nullptr;
  /// Schema used to build an empty warehouse when no valid snapshot exists
  /// (cold start, or every snapshot corrupt). Without it, recovery with no
  /// usable snapshot fails.
  std::optional<MdSchema> bootstrap_schema;
  /// Re-validates each replayed fact — the integration layer plugs the
  /// Step-4 FactValidator in here (MakeRecoveryValidator) so a fact that
  /// was corrupted between WAL append and replay lands in quarantine, not
  /// in the warehouse. Returns a RejectReasonName ("" admits the fact).
  std::function<std::string(const WalFact&)> validate;
  /// Cut torn WAL tails during open (the crash-recovery default). Off,
  /// tears are only reported.
  bool truncate_torn_tail = true;
  /// Receives the dwqa_recovery_* series (null = observability off).
  MetricRegistry* metrics = nullptr;
  /// Materialized-view catalog to attach to the recovered warehouse
  /// (caller-owned, with its view set already Define()d). View state is
  /// derivable, so it is never persisted: recovery rebuilds it from the
  /// recovered fact multiset (Bind after the snapshot loads) and the WAL
  /// replay routes every replayed fact's delta through incremental
  /// maintenance — the crash-point sweep asserts the result equals a
  /// from-scratch rebuild at every crash point.
  ViewCatalog* views = nullptr;
};

/// \brief The outcome of Recovery::Open: the rebuilt warehouse plus the
/// full account of what recovery did to get there.
struct RecoveredWarehouse {
  explicit RecoveredWarehouse(Warehouse wh) : warehouse(std::move(wh)) {}

  Warehouse warehouse;
  Lsn snapshot_lsn = 0;       ///< Covering LSN of the snapshot loaded (0 = none).
  Lsn last_lsn = 0;           ///< Highest LSN recovered (snapshot or replay).
  size_t replayed = 0;        ///< WAL records applied on top of the snapshot.
  size_t skipped_covered = 0; ///< Records skipped as already covered (LSN dedup).
  /// Replayed facts refused admission (corrupt payload, validator reject,
  /// ETL refusal) — same dead-letter semantics as the live feed.
  QuarantineStore quarantine;
  size_t torn_bytes_truncated = 0;  ///< Torn-tail bytes cut from the log.
  size_t corrupt_records = 0;       ///< CRC-mismatch records quarantined.
  /// Human-readable findings (fallbacks taken, tmp dirs removed, tears).
  std::vector<std::string> issues;
};

/// \brief Crash recovery: newest valid snapshot + idempotent WAL replay.
///
/// Open() is the one entry point a restarted process uses to get its
/// warehouse back:
///
///  1. leftover `snap-*.tmp` build directories are removed;
///  2. the newest snapshot whose MANIFEST verifies (size + CRC of every
///     file) is loaded — corrupt snapshots are skipped with an issue,
///     falling back to older ones, then to the bootstrap schema;
///  3. the WAL is scanned; a torn tail is truncated (the bytes past the
///     last durable record boundary never committed);
///  4. records with LSN beyond the snapshot's covering LSN are replayed
///     through the same ETL path the live feed uses; replay is idempotent
///     (LSN-deduped) and corrupt or invalid facts land in `quarantine`
///     instead of the warehouse.
///
/// The resulting warehouse holds exactly the committed fact set: every
/// fact whose WAL append was acknowledged, and nothing else — the property
/// the crash-point sweep (tests/dw/crash_sweep_test.cc) asserts for every
/// injected crash point.
class Recovery {
 public:
  static Result<RecoveredWarehouse> Open(const std::string& dir,
                                         RecoveryOptions options = {});
};

/// \brief Options of Fsck.
struct FsckOptions {
  Fs* fs = nullptr;
  /// When set, the feed checkpoint's recorded WAL position is checked
  /// against the recovered LSN: a checkpoint claiming progress beyond the
  /// durable data is flagged (the satellite-2 stale-checkpoint guard).
  bool has_checkpoint_lsn = false;
  uint64_t checkpoint_lsn = 0;
};

/// \brief Read-only integrity report of a durability directory.
struct FsckReport {
  std::vector<std::string> issues;  ///< Empty = everything verifies.
  Lsn snapshot_lsn = 0;             ///< Newest valid snapshot's covering LSN.
  Lsn wal_last_lsn = 0;             ///< Highest valid WAL record LSN.
  size_t snapshots = 0;             ///< Committed snapshots found.
  size_t wal_records = 0;           ///< Valid WAL records found.

  bool clean() const { return issues.empty(); }
};

/// Verifies `dir` without mutating it: every snapshot manifest (file
/// sizes + CRCs), WAL framing and CRCs, strict LSN monotonicity and
/// contiguity, snapshot↔WAL continuity (the WAL must cover everything past
/// the newest snapshot), leftover tmp directories, and (optionally) the
/// feed checkpoint's LSN against the durable data.
Result<FsckReport> Fsck(const std::string& dir, FsckOptions options = {});

}  // namespace dw
}  // namespace dwqa

#endif  // DWQA_DW_RECOVERY_H_
