#ifndef DWQA_DW_WAL_H_
#define DWQA_DW_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/metrics.h"
#include "common/result.h"
#include "dw/etl.h"

namespace dwqa {
namespace dw {

/// Log sequence number: position of a record in the warehouse's write-ahead
/// log. Strictly monotonic, starting at 1; 0 means "nothing logged yet".
using Lsn = uint64_t;

/// \brief One parsed WAL record: its LSN plus the raw payload bytes.
struct WalRecord {
  Lsn lsn = 0;
  std::string payload;
};

/// \brief The logical content of a Step-5 fact WAL record: everything the
/// recovery replay needs to re-admit the fact — the ETL-shaped record, plus
/// the extraction metadata the Step-4 validator re-checks and the dedup key
/// the feed's idempotence rests on.
///
/// Lives in dw/ (not qa/) so recovery does not depend on the QA layer; the
/// integration pipeline converts its qa::StructuredFact into this shape at
/// append time and supplies a validator callback at recovery time.
struct WalFact {
  std::string fact_name;   ///< Warehouse fact to load into.
  std::string attribute;   ///< "temperature", "price" — the analyzed attr.
  double value = 0.0;      ///< Extracted measure value (post-conversion).
  std::string unit;        ///< Normalized unit ("ºC"), may be empty.
  std::string date_iso;    ///< ISO date or "" when the fact had none.
  std::string location;    ///< City role value.
  std::string url;         ///< Source page (the paper's provenance column).
  double confidence = 0.0; ///< Extraction score of the source answer.
  std::string dedup_key;   ///< (attribute|location|date) feed key.
  FactRecord record;       ///< The exact ETL record the live run loaded.
};

/// \brief Text round-trip of a WalFact, WAL-payload shaped: line-based,
/// tab-separated, hardened against adversarial bytes.
///
///   fact<TAB>Weather
///   attr<TAB>temperature<TAB>8<TAB>ºC<TAB>2004-01-31<TAB>Barcelona<TAB>0.75
///   url<TAB>http://weather.example/barcelona
///   key<TAB>temperature|barcelona|2004-01-31
///   role<TAB>Barcelona
///   role<TAB>2004-01-31<TAB>2004-01<TAB>2004
///   measure<TAB>double<TAB>8
///
/// ToPayload refuses fields containing tabs or newlines (they would tear
/// the framing) with a typed error naming the field; FromPayload returns
/// typed errors with the offending payload line number, never crashes.
class WalFactSerde {
 public:
  static Result<std::string> ToPayload(const WalFact& fact);
  static Result<WalFact> FromPayload(const std::string& payload);
};

/// \brief Options of a WalWriter.
struct WalOptions {
  /// Segment rotation threshold: a segment that has grown past this many
  /// bytes is closed and a new one started at the next append.
  size_t segment_bytes = 64 * 1024;
  /// fsync after every append: the default durability barrier. Off, the
  /// tail is only guaranteed after an explicit Sync() (higher throughput,
  /// bench_recovery measures both).
  bool sync_each_append = true;
};

/// \brief One scanned WAL segment file.
struct WalSegmentInfo {
  std::string file;     ///< File name inside the log dir ("wal-….log").
  Lsn start_lsn = 0;    ///< LSN the segment header declares.
  Lsn first_lsn = 0;    ///< First valid record (0 when empty).
  Lsn last_lsn = 0;     ///< Last valid record (0 when empty).
  size_t records = 0;   ///< Valid records in the segment.
  /// Byte offset of a torn/malformed tail inside this file
  /// (std::string::npos when the segment is clean).
  size_t torn_offset = static_cast<size_t>(-1);

  bool torn() const { return torn_offset != static_cast<size_t>(-1); }
};

/// \brief Result of scanning a WAL directory.
struct WalScan {
  /// Every CRC-valid record, in (segment, offset) order — replay order.
  std::vector<WalRecord> records;
  std::vector<WalSegmentInfo> segments;
  Lsn last_lsn = 0;             ///< Highest valid LSN seen (0 = empty log).
  bool torn_tail = false;       ///< A torn/malformed region was found.
  size_t torn_bytes = 0;        ///< Bytes from the first tear to EOF.
  /// Well-framed records whose payload failed its CRC (bit rot): skipped,
  /// never replayed; recovery quarantines them.
  std::vector<WalRecord> corrupt_records;
  /// Human-readable findings ("wal-…log: torn tail at offset 132").
  std::vector<std::string> issues;
};

/// Scans every segment of `dir` (non-destructively): parses records,
/// validates CRCs and LSN monotonicity, locates torn tails. An empty or
/// absent directory yields an empty scan, not an error. Scanning stops at
/// the first torn region (framing cannot be trusted past it); well-framed
/// CRC failures are skipped and collected instead.
Result<WalScan> ScanWal(const std::string& dir, Fs* fs = nullptr);

/// Truncates the torn region a scan found: the tail of the torn segment is
/// cut at the tear offset and any later segment files are removed (their
/// framing is unreachable past the tear). Returns bytes dropped.
Result<size_t> TruncateTornTail(const std::string& dir, const WalScan& scan,
                                Fs* fs = nullptr);

/// \brief Append side of the write-ahead log.
///
/// Layout: `dir/wal-<start-lsn, 20 digits>.log`, each segment a text
/// header line `dwqa-wal<TAB>1<TAB><start_lsn>` followed by framed records
///
///   rec<TAB><lsn><TAB><payload-bytes><TAB><crc32-hex>\n
///   <payload>\n
///
/// with the CRC computed over the payload bytes. A record is *committed*
/// once its append (and, with sync_each_append, its fsync) returned OK —
/// the crash-point sweep asserts exactly the committed set survives
/// recovery. Open() continues an existing log: it scans for the highest
/// LSN, truncates any torn tail (same policy as recovery), and appends to
/// the newest segment.
class WalWriter {
 public:
  /// Opens (or creates) the log at `dir`. `metrics` (optional) receives
  /// the dwqa_wal_* series.
  static Result<std::unique_ptr<WalWriter>> Open(
      const std::string& dir, WalOptions options = {}, Fs* fs = nullptr,
      MetricRegistry* metrics = nullptr);

  /// Appends one record, assigning the next LSN. With sync_each_append the
  /// record is durable when this returns OK.
  Result<Lsn> Append(const std::string& payload);

  /// WalFactSerde::ToPayload + Append.
  Result<Lsn> AppendFact(const WalFact& fact);

  /// fsyncs the current segment (a no-op barrier when everything appended
  /// so far was already synced).
  Status Sync();

  /// Closes the current segment and starts a new one at the next append.
  Status Rotate();

  /// Removes whole segments every record of which has LSN <= `covered_lsn`
  /// (a snapshot with that covering LSN makes them redundant). The current
  /// segment is never removed. Returns segments dropped.
  Result<size_t> DropSegmentsCoveredBy(Lsn covered_lsn);

  Lsn last_lsn() const { return last_lsn_; }
  const std::string& dir() const { return dir_; }
  /// Full path of the segment the next append writes to.
  std::string current_segment_path() const;
  size_t segment_count() const { return segments_.size(); }

 private:
  WalWriter(std::string dir, WalOptions options, Fs* fs,
            MetricRegistry* metrics)
      : dir_(std::move(dir)), options_(options), fs_(fs),
        metrics_(metrics) {}

  /// Starts a fresh segment whose header declares `start_lsn`.
  Status StartSegment(Lsn start_lsn);

  std::string dir_;
  WalOptions options_;
  Fs* fs_;
  MetricRegistry* metrics_;
  Lsn last_lsn_ = 0;
  /// (file name, first LSN, last LSN) of every live segment, oldest first.
  struct Segment {
    std::string file;
    Lsn start_lsn = 0;
    Lsn last_lsn = 0;
  };
  std::vector<Segment> segments_;
  size_t current_segment_bytes_ = 0;
  /// Bytes appended to the current segment since the last fsync.
  bool dirty_ = false;
  /// A rotation was requested; the next append opens a new segment.
  bool rotate_pending_ = false;
};

}  // namespace dw
}  // namespace dwqa

#endif  // DWQA_DW_WAL_H_
