#include "dw/olap.h"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_set>

#include "common/string_util.h"
#include "common/table_printer.h"

namespace dwqa {
namespace dw {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kLess:
      return "<";
    case CompareOp::kLessEqual:
      return "<=";
    case CompareOp::kGreater:
      return ">";
    case CompareOp::kGreaterEqual:
      return ">=";
    case CompareOp::kEqual:
      return "=";
  }
  return "?";
}

bool EvalCompare(double lhs, CompareOp op, double rhs) {
  switch (op) {
    case CompareOp::kLess:
      return lhs < rhs;
    case CompareOp::kLessEqual:
      return lhs <= rhs;
    case CompareOp::kGreater:
      return lhs > rhs;
    case CompareOp::kGreaterEqual:
      return lhs >= rhs;
    case CompareOp::kEqual:
      return lhs == rhs;
  }
  return false;
}

std::string OlapResult::ToDisplayString(size_t max_rows) const {
  TablePrinter printer(headers);
  for (size_t r = 0; r < rows.size() && r < max_rows; ++r) {
    std::vector<std::string> cells;
    for (const Value& v : rows[r]) cells.push_back(v.ToString());
    printer.AddRow(std::move(cells));
  }
  std::string out = printer.Render();
  if (rows.size() > max_rows) {
    out += "... (" + std::to_string(rows.size() - max_rows) +
           " more rows)\n";
  }
  return out;
}

Result<OlapResult> OlapEngine::Execute(const OlapQuery& query) const {
  DWQA_ASSIGN_OR_RETURN(const FactDef* fact,
                        wh_->schema().FindFact(query.fact));
  DWQA_ASSIGN_OR_RETURN(const Table* ftab, wh_->FactTable(query.fact));
  if (query.measures.empty()) {
    return Status::InvalidArgument("OLAP query needs at least one measure");
  }

  // Resolve measures to fact-table columns.
  std::vector<size_t> measure_cols;
  for (const QueryMeasure& qm : query.measures) {
    DWQA_ASSIGN_OR_RETURN(size_t mi, fact->MeasureIndex(qm.measure));
    measure_cols.push_back(fact->roles.size() + mi);
  }
  // Resolve group-by axes to (fk column, dimension name, level name).
  struct Axis {
    size_t fk_col;
    std::string dimension;
    std::string level;
  };
  std::vector<Axis> axes;
  for (const GroupBy& g : query.group_by) {
    DWQA_ASSIGN_OR_RETURN(size_t ri, fact->RoleIndex(g.role));
    const std::string& dim = fact->roles[ri].dimension;
    DWQA_ASSIGN_OR_RETURN(const DimensionDef* ddef,
                          wh_->schema().FindDimension(dim));
    DWQA_RETURN_NOT_OK(ddef->LevelIndex(g.level).status());
    axes.push_back({ri, dim, g.level});
  }
  // Resolve filters.
  struct ResolvedFilter {
    size_t fk_col;
    std::string dimension;
    std::string level;
    std::unordered_set<std::string> values;  // lowercased
  };
  std::vector<ResolvedFilter> filters;
  for (const Filter& f : query.filters) {
    DWQA_ASSIGN_OR_RETURN(size_t ri, fact->RoleIndex(f.role));
    const std::string& dim = fact->roles[ri].dimension;
    DWQA_ASSIGN_OR_RETURN(const DimensionDef* ddef,
                          wh_->schema().FindDimension(dim));
    DWQA_RETURN_NOT_OK(ddef->LevelIndex(f.level).status());
    ResolvedFilter rf{ri, dim, f.level, {}};
    for (const std::string& v : f.values) rf.values.insert(ToLower(v));
    filters.push_back(std::move(rf));
  }

  // Scan + hash aggregate. Group keys are ordered so results are
  // deterministic (std::map).
  std::map<std::vector<std::string>, std::vector<AggState>> groups;
  OlapResult result;
  result.facts_scanned = ftab->row_count();
  for (size_t r = 0; r < ftab->row_count(); ++r) {
    bool keep = true;
    for (const ResolvedFilter& f : filters) {
      MemberId member =
          static_cast<MemberId>(ftab->Get(r, f.fk_col).as_int());
      DWQA_ASSIGN_OR_RETURN(
          std::string v, wh_->MemberLevelValue(f.dimension, member, f.level));
      if (!f.values.count(ToLower(v))) {
        keep = false;
        break;
      }
    }
    if (!keep) continue;
    ++result.facts_matched;
    std::vector<std::string> key;
    for (const Axis& a : axes) {
      MemberId member =
          static_cast<MemberId>(ftab->Get(r, a.fk_col).as_int());
      DWQA_ASSIGN_OR_RETURN(
          std::string v, wh_->MemberLevelValue(a.dimension, member, a.level));
      key.push_back(std::move(v));
    }
    auto [it, inserted] =
        groups.try_emplace(std::move(key), query.measures.size());
    for (size_t m = 0; m < measure_cols.size(); ++m) {
      it->second[m].Add(ftab->column(measure_cols[m]).GetDouble(r));
    }
  }

  for (const GroupBy& g : query.group_by) {
    result.headers.push_back(g.role + "." + g.level);
  }
  for (const QueryMeasure& qm : query.measures) {
    result.headers.push_back(std::string(AggFnName(qm.agg)) + "(" +
                             qm.measure + ")");
  }
  for (const Having& h : query.having) {
    if (h.measure_index >= query.measures.size()) {
      return Status::InvalidArgument(
          "HAVING refers to measure index " +
          std::to_string(h.measure_index) + ", query has " +
          std::to_string(query.measures.size()));
    }
  }
  for (const auto& [key, states] : groups) {
    bool keep = true;
    for (const Having& h : query.having) {
      double aggregated =
          states[h.measure_index]
              .Finish(query.measures[h.measure_index].agg)
              .ToDouble();
      if (!EvalCompare(aggregated, h.op, h.value)) {
        keep = false;
        break;
      }
    }
    if (!keep) continue;
    std::vector<Value> row;
    for (const std::string& k : key) row.emplace_back(k);
    for (size_t m = 0; m < states.size(); ++m) {
      row.push_back(states[m].Finish(query.measures[m].agg));
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

Result<OlapQuery> OlapEngine::ShiftLevel(const OlapQuery& query,
                                         const std::string& role,
                                         int delta) const {
  DWQA_ASSIGN_OR_RETURN(const FactDef* fact,
                        wh_->schema().FindFact(query.fact));
  DWQA_ASSIGN_OR_RETURN(size_t ri, fact->RoleIndex(role));
  DWQA_ASSIGN_OR_RETURN(const DimensionDef* dim,
                        wh_->schema().FindDimension(fact->roles[ri].dimension));
  OlapQuery out = query;
  for (GroupBy& g : out.group_by) {
    if (ToLower(g.role) != ToLower(role)) continue;
    DWQA_ASSIGN_OR_RETURN(size_t li, dim->LevelIndex(g.level));
    // Levels are finest-first, so roll-up moves to a *larger* index.
    int target = static_cast<int>(li) + delta;
    if (target < 0) {
      return Status::OutOfRange("already at the base level of '" +
                                dim->name + "'");
    }
    if (target >= static_cast<int>(dim->levels.size())) {
      return Status::OutOfRange("already at the top level of '" +
                                dim->name + "'");
    }
    g.level = dim->levels[static_cast<size_t>(target)].name;
    return out;
  }
  return Status::NotFound("query does not group by role '" + role + "'");
}

Result<OlapQuery> OlapEngine::RollUp(const OlapQuery& query,
                                     const std::string& role) const {
  return ShiftLevel(query, role, +1);
}

Result<OlapQuery> OlapEngine::DrillDown(const OlapQuery& query,
                                        const std::string& role) const {
  return ShiftLevel(query, role, -1);
}

}  // namespace dw
}  // namespace dwqa
