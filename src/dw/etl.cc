#include "dw/etl.h"

#include <cstdio>

namespace dwqa {
namespace dw {

std::vector<std::string> DateMemberPath(const Date& date) {
  char month_buf[16];
  std::snprintf(month_buf, sizeof(month_buf), "%04d-%02d", date.year(),
                date.month());
  return {date.ToIsoString(), month_buf, std::to_string(date.year())};
}

Status EtlLoader::LoadRecord(const std::string& fact,
                             const FactRecord& record) {
  DWQA_ASSIGN_OR_RETURN(const FactDef* def, wh_->schema().FindFact(fact));
  if (record.role_paths.size() != def->roles.size()) {
    return Status::InvalidArgument(
        "record has " + std::to_string(record.role_paths.size()) +
        " role paths, fact '" + def->name + "' expects " +
        std::to_string(def->roles.size()));
  }
  std::vector<MemberId> members;
  for (size_t i = 0; i < def->roles.size(); ++i) {
    DWQA_ASSIGN_OR_RETURN(
        MemberId id,
        wh_->AddMember(def->roles[i].dimension, record.role_paths[i]));
    members.push_back(id);
  }
  return wh_->InsertFact(fact, members, record.measures);
}

Result<LoadReport> EtlLoader::LoadBatch(
    const std::string& fact, const std::vector<FactRecord>& records) {
  LoadReport report;
  for (const FactRecord& record : records) {
    Status st = LoadRecord(fact, record);
    if (st.ok()) {
      ++report.rows_loaded;
    } else {
      ++report.rows_rejected;
      ++report.rejected_by_code[StatusCodeToString(st.code())];
      if (report.errors.size() < max_error_messages_) {
        report.errors.push_back(st.ToString());
      }
    }
  }
  return report;
}

}  // namespace dw
}  // namespace dwqa
