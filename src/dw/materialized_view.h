#ifndef DWQA_DW_MATERIALIZED_VIEW_H_
#define DWQA_DW_MATERIALIZED_VIEW_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/trace.h"
#include "dw/olap.h"

namespace dwqa {
namespace dw {

/// \brief Definition of one materialized OLAP view: a cube slice of one
/// fact, grouped at fixed hierarchy levels, covering a set of measures.
///
/// A view materializes the *aggregation state* (sum/min/max/count per
/// group), not a finished result, so one view answers SUM, COUNT, AVG, MIN
/// and MAX over any covered measure — and any HAVING predicate — without
/// touching base facts.
struct ViewDefinition {
  /// Unique catalog key ("LastMinuteSales/destination.City+date.Date").
  std::string name;
  /// The fact this view aggregates.
  std::string fact;
  /// Grouping axes, in query order (a query matches only with the same
  /// axis sequence).
  std::vector<GroupBy> group_by;
  /// Covered measure names. Empty covers every measure of the fact.
  std::vector<std::string> measures;
};

/// Derives the view set from the multidimensional schema itself (after
/// Pardillo & Mazón's ontology-driven design): one single-axis view per
/// (role, hierarchy level) of every fact, plus two-axis dashboard slices
/// pairing *conformed* levels — levels that recur across dimensions, or
/// belong to a dimension shared by several facts (City, Date in the flight
/// schema). The conformed levels are exactly where BI dashboards join, so
/// they are where precomputation pays.
std::vector<ViewDefinition> DeriveViewsFromSchema(const MdSchema& schema);

/// Summary of one bound view (introspection for tests/benches/health).
struct ViewStats {
  std::string name;
  std::string fact;
  size_t groups = 0;          ///< Materialized groups.
  size_t facts_absorbed = 0;  ///< Fact rows folded into the state.
};

/// \brief The catalog of materialized views attached to one Warehouse.
///
/// Lifecycle: Define() the view set (no warehouse needed — recovery defines
/// views before any fact exists), Warehouse::AttachViews(), then Bind() to
/// resolve every definition against the schema and rebuild state from the
/// facts already loaded. From then on Warehouse::InsertFact routes every
/// appended fact through OnFactInserted (delta-based incremental
/// maintenance), so Answer() is always as fresh as the fact tables.
///
/// Thread-safety: a single catalog-wide shared_mutex makes readers
/// snapshot-consistent — Answer()/EstimateGroups()/StatsSnapshot() take it
/// shared and observe a fact-aligned state; OnFactInserted/Bind take it
/// exclusive and apply each fact's delta to every view atomically. The
/// `views` ctest label races concurrent BI reads against maintenance under
/// TSan to pin this contract.
///
/// The catalog never points back at its warehouse (every operation that
/// needs one takes it as a parameter), so the warehouse can be moved freely
/// — Recovery::Open moves it several times — while the attach pointer
/// travels along.
class ViewCatalog {
 public:
  ViewCatalog();
  ~ViewCatalog();
  ViewCatalog(const ViewCatalog&) = delete;
  ViewCatalog& operator=(const ViewCatalog&) = delete;

  /// Records a definition (unresolved). Fails on a duplicate name or an
  /// empty fact/axis list.
  Status Define(ViewDefinition def);

  /// Define() for a whole derived set.
  Status DefineAll(std::vector<ViewDefinition> defs);

  /// Resolves every definition against `wh`'s schema and rebuilds all view
  /// state from the facts currently loaded — the from-scratch path that
  /// bootstraps a catalog and that recovery uses after loading a snapshot.
  /// Idempotent: a re-Bind discards and rebuilds.
  Status Bind(const Warehouse& wh);

  /// Define + Bind of one extra view against an already-bound warehouse.
  Status Register(const Warehouse& wh, ViewDefinition def);

  /// Answers `query` from a matching view, byte-identical to
  /// OlapEngine::Execute on the same warehouse: same headers, same group
  /// order (std::map over the key vector), same AggState::Finish values,
  /// same facts_scanned/facts_matched. NotFound when no view covers the
  /// query (callers fall back to a recompute); queries with filters always
  /// miss (slices need base facts).
  Result<OlapResult> Answer(const OlapQuery& query) const;

  /// Group cardinality of the view that would answer `query` — the
  /// cost estimator's rows-touched figure. NotFound when no view matches.
  Result<size_t> EstimateGroups(const OlapQuery& query) const;

  /// Incremental maintenance hook, called by Warehouse::InsertFact after
  /// the fact row is appended: folds the fact's delta into every view of
  /// `fact_index`, under the exclusive lock (one span `view.maintain` per
  /// fact when a trace recorder is set).
  Status OnFactInserted(const Warehouse& wh, size_t fact_index,
                        const std::vector<MemberId>& member_per_role,
                        const std::vector<Value>& measures);

  /// \name Introspection
  /// @{
  size_t view_count() const;
  std::vector<ViewStats> StatsSnapshot() const;
  /// Total per-view delta applications since construction.
  uint64_t maintenance_updates() const;
  /// @}

  /// Receives the dwqa_view_* series (null = observability off).
  void set_metrics(MetricRegistry* metrics);
  /// Trace recorder for `view.maintain` spans (null = tracing off). The
  /// Step-5 feed points this at the per-question recorder while it loads.
  void set_trace_recorder(TraceRecorder* trace);

 private:
  struct BoundView;

  /// Resolves `def` against the schema into a bound view with empty state.
  Result<std::unique_ptr<BoundView>> Resolve(const Warehouse& wh,
                                             const ViewDefinition& def) const;
  /// Full scan of the view's fact table into its aggregation state.
  Status RebuildOne(const Warehouse& wh, BoundView* view) const;
  /// The bound view matching `query`, or null. Caller holds `mu_`.
  const BoundView* Match(const OlapQuery& query) const;

  mutable std::shared_mutex mu_;
  std::vector<ViewDefinition> definitions_;
  std::vector<std::unique_ptr<BoundView>> views_;  ///< Empty until Bind().
  uint64_t maintenance_updates_ = 0;
  MetricRegistry* metrics_ = nullptr;
  TraceRecorder* trace_ = nullptr;
};

}  // namespace dw
}  // namespace dwqa

#endif  // DWQA_DW_MATERIALIZED_VIEW_H_
