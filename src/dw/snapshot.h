#ifndef DWQA_DW_SNAPSHOT_H_
#define DWQA_DW_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/result.h"
#include "dw/wal.h"
#include "dw/warehouse.h"

namespace dwqa {
namespace dw {

/// \brief One file entry of a snapshot manifest.
struct ManifestEntry {
  std::string file;      ///< Name inside the snapshot directory.
  uint64_t size = 0;     ///< Byte size at manifest time.
  std::string crc_hex;   ///< Crc32Hex of the file content.
};

/// \brief Parsed snapshot MANIFEST.
struct SnapshotManifest {
  Lsn lsn = 0;                          ///< Highest WAL LSN the snapshot covers.
  std::vector<ManifestEntry> entries;   ///< Every data file of the snapshot.
};

/// Serializes/parses the MANIFEST file (`dwqa-snapshot<TAB>1` magic, one
/// `lsn` line, one `file<TAB><name><TAB><size><TAB><crc>` line per entry).
/// Parse errors carry the offending line number and never crash.
class ManifestSerde {
 public:
  static std::string ToText(const SnapshotManifest& manifest);
  static Result<SnapshotManifest> FromText(const std::string& text);
};

/// \brief One snapshot directory found under the durability root.
struct SnapshotInfo {
  std::string name;  ///< Directory name ("snap-<20-digit LSN>").
  Lsn lsn = 0;       ///< Covering LSN parsed from the name.
};

/// \brief Checksummed, atomic warehouse snapshots.
///
/// Layout under the durability root `dir`:
///
///   snap-<lsn, 20 digits>/          one immutable snapshot
///     schema.txt, dim_*.csv, fact_*.csv   (WarehousePersistence format)
///     MANIFEST                      written last, covers all other files
///
/// Write() builds the snapshot in `snap-<lsn>.tmp` (every file written
/// atomically, the manifest last) and commits it with one directory
/// rename: a crash at any point leaves either no new snapshot or a
/// complete, verifiable one — never a torn half-snapshot. Readers treat a
/// snapshot as valid only if its MANIFEST parses and every entry matches
/// in size and CRC.
class SnapshotWriter {
 public:
  /// Writes a snapshot of `warehouse` covering WAL position `lsn`.
  /// Returns the committed snapshot directory path.
  static Result<std::string> Write(const std::string& dir,
                                   const Warehouse& warehouse, Lsn lsn,
                                   Fs* fs = nullptr);
};

/// Lists committed snapshots under `dir`, oldest first. Leftover `*.tmp`
/// build directories are reported via `tmp_leftovers` when non-null.
Result<std::vector<SnapshotInfo>> ListSnapshots(
    const std::string& dir, Fs* fs = nullptr,
    std::vector<std::string>* tmp_leftovers = nullptr);

/// Verifies one snapshot directory against its MANIFEST: parse, existence,
/// size and CRC of every entry. Returns the manifest on success; a typed
/// Corruption error naming the first mismatching file otherwise.
Result<SnapshotManifest> VerifySnapshot(const std::string& snapshot_dir,
                                        Fs* fs = nullptr);

}  // namespace dw
}  // namespace dwqa

#endif  // DWQA_DW_SNAPSHOT_H_
