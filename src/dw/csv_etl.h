#ifndef DWQA_DW_CSV_ETL_H_
#define DWQA_DW_CSV_ETL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "dw/etl.h"
#include "dw/warehouse.h"

namespace dwqa {
namespace dw {

/// \brief CSV boundary of the warehouse: the interchange format through
/// which the Step-5-generated database reaches downstream BI tools, and
/// through which external fact feeds enter.
///
/// The denormalized fact layout has one column per (role, level) pair
/// followed by one column per measure:
///
///   location.City,location.Country,day.Date,day.Month,day.Year,TemperatureC
///   Barcelona,Spain,2004-01-31,2004-01,2004,8
///
/// Export and import are inverses: ImportFactRecords(ExportFact(...))
/// round-trips every row (modulo surrogate ids, which are reassigned).
class CsvEtl {
 public:
  /// Renders any physical table (dimension or fact) with a header row.
  static std::string ExportTable(const Table& table);

  /// Renders `fact` in the denormalized layout above (surrogate keys
  /// resolved into their level values).
  static Result<std::string> ExportFact(const Warehouse& warehouse,
                                        const std::string& fact);

  /// Parses a denormalized CSV back into loadable records. The header is
  /// validated against the schema: every (role, level) column must exist
  /// and appear in hierarchy order; measure columns follow.
  static Result<std::vector<FactRecord>> ImportFactRecords(
      const MdSchema& schema, const std::string& fact,
      const std::string& csv);

  /// ExportFact + write to `path`.
  static Status ExportFactToFile(const Warehouse& warehouse,
                                 const std::string& fact,
                                 const std::string& path);
};

}  // namespace dw
}  // namespace dwqa

#endif  // DWQA_DW_CSV_ETL_H_
