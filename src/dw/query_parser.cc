#include "dw/query_parser.h"

#include <cctype>
#include <cstdlib>
#include <vector>

#include "common/string_util.h"

namespace dwqa {
namespace dw {

namespace {

/// Token kinds of the query language.
enum class TokKind { kIdent, kPunct, kEnd };

struct Tok {
  TokKind kind = TokKind::kEnd;
  std::string text;  ///< Identifier text or the punctuation character.
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) { Advance(); }

  const Tok& current() const { return current_; }

  void Advance() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      current_ = {TokKind::kEnd, ""};
      return;
    }
    char c = text_[pos_];
    if (c == '"') {
      // Quoted identifier: may contain spaces.
      size_t end = text_.find('"', pos_ + 1);
      if (end == std::string_view::npos) {
        current_ = {TokKind::kPunct, "\""};  // Unterminated; caller errors.
        pos_ = text_.size();
        return;
      }
      current_ = {TokKind::kIdent,
                  std::string(text_.substr(pos_ + 1, end - pos_ - 1))};
      pos_ = end + 1;
      return;
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
        c == '-') {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' || text_[pos_] == '-')) {
        ++pos_;
      }
      current_ = {TokKind::kIdent,
                  std::string(text_.substr(start, pos_ - start))};
      return;
    }
    current_ = {TokKind::kPunct, std::string(1, c)};
    ++pos_;
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
  Tok current_;
};

bool IsKeyword(const Tok& tok, const char* keyword) {
  return tok.kind == TokKind::kIdent && ToLower(tok.text) == keyword;
}

Result<AggFn> ParseAggFn(const std::string& name) {
  std::string lower = ToLower(name);
  if (lower == "sum") return AggFn::kSum;
  if (lower == "count") return AggFn::kCount;
  if (lower == "avg") return AggFn::kAvg;
  if (lower == "min") return AggFn::kMin;
  if (lower == "max") return AggFn::kMax;
  return Status::InvalidArgument("unknown aggregation function '" + name +
                                 "'");
}

}  // namespace

Result<OlapQuery> QueryParser::Parse(std::string_view text) {
  Lexer lex(text);
  OlapQuery query;

  auto expect_punct = [&](char c) -> Status {
    if (lex.current().kind != TokKind::kPunct || lex.current().text[0] != c) {
      return Status::InvalidArgument(std::string("expected '") + c +
                                     "' near '" + lex.current().text + "'");
    }
    lex.Advance();
    return Status::OK();
  };
  auto expect_ident = [&](const char* what) -> Result<std::string> {
    if (lex.current().kind != TokKind::kIdent) {
      return Status::InvalidArgument(std::string("expected ") + what +
                                     " near '" + lex.current().text + "'");
    }
    std::string out = lex.current().text;
    lex.Advance();
    return out;
  };
  // role "." level
  auto parse_axis = [&](std::string* role, std::string* level) -> Status {
    DWQA_ASSIGN_OR_RETURN(*role, expect_ident("a dimension role"));
    DWQA_RETURN_NOT_OK(expect_punct('.'));
    DWQA_ASSIGN_OR_RETURN(*level, expect_ident("a hierarchy level"));
    return Status::OK();
  };

  if (!IsKeyword(lex.current(), "select")) {
    return Status::InvalidArgument("query must start with SELECT");
  }
  lex.Advance();

  // ---- Aggregations -----------------------------------------------------
  while (true) {
    DWQA_ASSIGN_OR_RETURN(std::string fn,
                          expect_ident("an aggregation function"));
    DWQA_ASSIGN_OR_RETURN(AggFn agg, ParseAggFn(fn));
    DWQA_RETURN_NOT_OK(expect_punct('('));
    DWQA_ASSIGN_OR_RETURN(std::string measure,
                          expect_ident("a measure name"));
    DWQA_RETURN_NOT_OK(expect_punct(')'));
    query.measures.push_back({measure, agg});
    if (lex.current().kind == TokKind::kPunct &&
        lex.current().text == ",") {
      lex.Advance();
      continue;
    }
    break;
  }

  if (!IsKeyword(lex.current(), "from")) {
    return Status::InvalidArgument("expected FROM after the measure list");
  }
  lex.Advance();
  DWQA_ASSIGN_OR_RETURN(query.fact, expect_ident("a fact name"));

  // ---- BY ----------------------------------------------------------------
  if (IsKeyword(lex.current(), "by")) {
    lex.Advance();
    while (true) {
      GroupBy axis;
      DWQA_RETURN_NOT_OK(parse_axis(&axis.role, &axis.level));
      query.group_by.push_back(std::move(axis));
      if (lex.current().kind == TokKind::kPunct &&
          lex.current().text == ",") {
        lex.Advance();
        continue;
      }
      break;
    }
  }

  // ---- WHERE ---------------------------------------------------------------
  if (IsKeyword(lex.current(), "where")) {
    lex.Advance();
    while (true) {
      Filter filter;
      DWQA_RETURN_NOT_OK(parse_axis(&filter.role, &filter.level));
      if (lex.current().kind == TokKind::kPunct &&
          lex.current().text == "=") {
        lex.Advance();
        DWQA_ASSIGN_OR_RETURN(std::string value,
                              expect_ident("a filter value"));
        filter.values.push_back(std::move(value));
      } else if (IsKeyword(lex.current(), "in")) {
        lex.Advance();
        DWQA_RETURN_NOT_OK(expect_punct('('));
        while (true) {
          DWQA_ASSIGN_OR_RETURN(std::string value,
                                expect_ident("a filter value"));
          filter.values.push_back(std::move(value));
          if (lex.current().kind == TokKind::kPunct &&
              lex.current().text == ",") {
            lex.Advance();
            continue;
          }
          break;
        }
        DWQA_RETURN_NOT_OK(expect_punct(')'));
      } else {
        return Status::InvalidArgument(
            "expected '=' or IN in the WHERE predicate");
      }
      query.filters.push_back(std::move(filter));
      if (IsKeyword(lex.current(), "and")) {
        lex.Advance();
        continue;
      }
      break;
    }
  }

  // ---- HAVING ---------------------------------------------------------------
  if (IsKeyword(lex.current(), "having")) {
    lex.Advance();
    while (true) {
      DWQA_ASSIGN_OR_RETURN(std::string fn,
                            expect_ident("an aggregation function"));
      DWQA_ASSIGN_OR_RETURN(AggFn agg, ParseAggFn(fn));
      DWQA_RETURN_NOT_OK(expect_punct('('));
      DWQA_ASSIGN_OR_RETURN(std::string measure,
                            expect_ident("a measure name"));
      DWQA_RETURN_NOT_OK(expect_punct(')'));
      // The predicate must reference one of the selected aggregations.
      Having having;
      bool found = false;
      for (size_t m = 0; m < query.measures.size(); ++m) {
        if (query.measures[m].agg == agg &&
            ToLower(query.measures[m].measure) == ToLower(measure)) {
          having.measure_index = m;
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::InvalidArgument(
            "HAVING aggregation " + fn + "(" + measure +
            ") is not in the SELECT list");
      }
      // Operator: one of < <= > >= =.
      if (lex.current().kind != TokKind::kPunct) {
        return Status::InvalidArgument("expected a comparison operator");
      }
      char op0 = lex.current().text[0];
      lex.Advance();
      bool or_equal = false;
      if ((op0 == '<' || op0 == '>') &&
          lex.current().kind == TokKind::kPunct &&
          lex.current().text == "=") {
        or_equal = true;
        lex.Advance();
      }
      switch (op0) {
        case '<':
          having.op = or_equal ? CompareOp::kLessEqual : CompareOp::kLess;
          break;
        case '>':
          having.op =
              or_equal ? CompareOp::kGreaterEqual : CompareOp::kGreater;
          break;
        case '=':
          having.op = CompareOp::kEqual;
          break;
        default:
          return Status::InvalidArgument(
              std::string("unknown comparison operator '") + op0 + "'");
      }
      DWQA_ASSIGN_OR_RETURN(std::string number,
                            expect_ident("a numeric bound"));
      if (!IsNumber(number)) {
        return Status::InvalidArgument("HAVING bound '" + number +
                                       "' is not a number");
      }
      having.value = std::atof(number.c_str());
      query.having.push_back(having);
      if (IsKeyword(lex.current(), "and")) {
        lex.Advance();
        continue;
      }
      break;
    }
  }

  if (lex.current().kind != TokKind::kEnd) {
    return Status::InvalidArgument("unexpected trailing input near '" +
                                   lex.current().text + "'");
  }
  if (query.measures.empty()) {
    return Status::InvalidArgument("query selects no measures");
  }
  return query;
}

}  // namespace dw
}  // namespace dwqa
