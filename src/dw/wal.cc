#include "dw/wal.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "common/metric_names.h"
#include "common/string_util.h"

namespace dwqa {
namespace dw {

namespace {

/// Shortest decimal form that round-trips a double exactly.
std::string FormatExact(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

bool ParseUint64(const std::string& s, uint64_t* out) {
  if (!IsDigits(s) || s.size() > 20) return false;
  errno = 0;
  char* end = nullptr;
  uint64_t v = std::strtoull(s.c_str(), &end, 10);
  if (errno == ERANGE || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (errno == ERANGE || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

/// Rejects field content that would tear the line/tab framing.
Status CheckField(const std::string& field_name, const std::string& value) {
  if (value.find('\t') != std::string::npos ||
      value.find('\n') != std::string::npos ||
      value.find('\r') != std::string::npos) {
    return Status::InvalidArgument("WAL fact field '" + field_name +
                                   "' contains tab/newline: cannot frame");
  }
  return Status::OK();
}

Status PayloadError(size_t line_no, const std::string& what) {
  return Status::Corruption("WAL fact payload line " +
                            std::to_string(line_no) + ": " + what);
}

std::string SegmentFileName(Lsn start_lsn) {
  char buf[36];
  std::snprintf(buf, sizeof(buf), "wal-%020llu.log",
                static_cast<unsigned long long>(start_lsn));
  return buf;
}

bool IsSegmentFileName(const std::string& name, Lsn* start_lsn) {
  if (!StartsWith(name, "wal-") || !EndsWith(name, ".log")) return false;
  std::string digits = name.substr(4, name.size() - 8);
  if (digits.size() != 20) return false;
  return ParseUint64(digits, start_lsn);
}

constexpr char kSegmentMagic[] = "dwqa-wal";
constexpr char kSegmentVersion[] = "1";

std::string SegmentHeader(Lsn start_lsn) {
  return std::string(kSegmentMagic) + "\t" + kSegmentVersion + "\t" +
         std::to_string(start_lsn) + "\n";
}

std::string FrameRecord(Lsn lsn, const std::string& payload) {
  return "rec\t" + std::to_string(lsn) + "\t" +
         std::to_string(payload.size()) + "\t" + Crc32Hex(payload) + "\n" +
         payload + "\n";
}

}  // namespace

Result<std::string> WalFactSerde::ToPayload(const WalFact& fact) {
  DWQA_RETURN_NOT_OK(CheckField("fact_name", fact.fact_name));
  DWQA_RETURN_NOT_OK(CheckField("attribute", fact.attribute));
  DWQA_RETURN_NOT_OK(CheckField("unit", fact.unit));
  DWQA_RETURN_NOT_OK(CheckField("date_iso", fact.date_iso));
  DWQA_RETURN_NOT_OK(CheckField("location", fact.location));
  DWQA_RETURN_NOT_OK(CheckField("url", fact.url));
  DWQA_RETURN_NOT_OK(CheckField("dedup_key", fact.dedup_key));
  if (fact.fact_name.empty()) {
    return Status::InvalidArgument("WAL fact has empty fact_name");
  }
  std::string out;
  out += "fact\t" + fact.fact_name + "\n";
  out += "attr\t" + fact.attribute + "\t" + FormatExact(fact.value) + "\t" +
         fact.unit + "\t" + fact.date_iso + "\t" + fact.location + "\t" +
         FormatExact(fact.confidence) + "\n";
  out += "url\t" + fact.url + "\n";
  out += "key\t" + fact.dedup_key + "\n";
  for (const auto& path : fact.record.role_paths) {
    out += "role";
    for (const auto& member : path) {
      DWQA_RETURN_NOT_OK(CheckField("role member", member));
      out += "\t" + member;
    }
    out += "\n";
  }
  for (const auto& measure : fact.record.measures) {
    if (measure.is_null()) {
      out += "measure\tnull\t\n";
    } else if (measure.is_int()) {
      out += "measure\tint64\t" + std::to_string(measure.as_int()) + "\n";
    } else if (measure.is_double()) {
      out += "measure\tdouble\t" + FormatExact(measure.as_double()) + "\n";
    } else if (measure.is_date()) {
      out += "measure\tdate\t" + measure.as_date().ToIsoString() + "\n";
    } else {
      DWQA_RETURN_NOT_OK(CheckField("measure", measure.as_string()));
      out += "measure\tstring\t" + measure.as_string() + "\n";
    }
  }
  return out;
}

Result<WalFact> WalFactSerde::FromPayload(const std::string& payload) {
  WalFact fact;
  bool saw_fact = false;
  bool saw_attr = false;
  std::vector<std::string> lines = Split(payload, '\n');
  // A well-formed payload ends with '\n', leaving one trailing empty field.
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  for (size_t i = 0; i < lines.size(); ++i) {
    const size_t line_no = i + 1;
    std::vector<std::string> fields = Split(lines[i], '\t');
    const std::string& tag = fields[0];
    if (tag == "fact") {
      if (fields.size() != 2 || fields[1].empty()) {
        return PayloadError(line_no, "expected 'fact<TAB><name>'");
      }
      if (saw_fact) return PayloadError(line_no, "duplicate 'fact' line");
      fact.fact_name = fields[1];
      saw_fact = true;
    } else if (tag == "attr") {
      if (fields.size() != 7) {
        return PayloadError(line_no, "expected 7 'attr' fields, got " +
                                         std::to_string(fields.size()));
      }
      if (saw_attr) return PayloadError(line_no, "duplicate 'attr' line");
      fact.attribute = fields[1];
      if (!ParseDouble(fields[2], &fact.value)) {
        return PayloadError(line_no, "bad value '" + fields[2] + "'");
      }
      fact.unit = fields[3];
      fact.date_iso = fields[4];
      fact.location = fields[5];
      if (!ParseDouble(fields[6], &fact.confidence)) {
        return PayloadError(line_no, "bad confidence '" + fields[6] + "'");
      }
      saw_attr = true;
    } else if (tag == "url") {
      if (fields.size() != 2) {
        return PayloadError(line_no, "expected 'url<TAB><url>'");
      }
      fact.url = fields[1];
    } else if (tag == "key") {
      if (fields.size() != 2) {
        return PayloadError(line_no, "expected 'key<TAB><dedup key>'");
      }
      fact.dedup_key = fields[1];
    } else if (tag == "role") {
      fact.record.role_paths.emplace_back(fields.begin() + 1, fields.end());
    } else if (tag == "measure") {
      if (fields.size() != 3) {
        return PayloadError(line_no, "expected 'measure<TAB><type><TAB><repr>'");
      }
      const std::string& type = fields[1];
      const std::string& repr = fields[2];
      if (type == "null") {
        fact.record.measures.emplace_back();
      } else if (type == "int64") {
        errno = 0;
        char* end = nullptr;
        long long v = std::strtoll(repr.c_str(), &end, 10);
        if (repr.empty() || errno == ERANGE ||
            end != repr.c_str() + repr.size()) {
          return PayloadError(line_no, "bad int64 measure '" + repr + "'");
        }
        fact.record.measures.emplace_back(static_cast<int64_t>(v));
      } else if (type == "double") {
        double v = 0;
        if (!ParseDouble(repr, &v)) {
          return PayloadError(line_no, "bad double measure '" + repr + "'");
        }
        fact.record.measures.emplace_back(v);
      } else if (type == "date") {
        auto date = Date::FromIsoString(repr);
        if (!date.ok()) {
          return PayloadError(line_no, "bad date measure '" + repr + "'");
        }
        fact.record.measures.emplace_back(*date);
      } else if (type == "string") {
        fact.record.measures.emplace_back(repr);
      } else {
        return PayloadError(line_no, "unknown measure type '" + type + "'");
      }
    } else {
      return PayloadError(line_no, "unknown tag '" + tag + "'");
    }
  }
  if (!saw_fact) return PayloadError(lines.size(), "missing 'fact' line");
  if (!saw_attr) return PayloadError(lines.size(), "missing 'attr' line");
  return fact;
}

namespace {

/// Parses one segment file into `scan`. Returns false when a torn region
/// was found (the caller stops scanning later segments).
bool ScanSegment(const std::string& file, const std::string& content,
                 Lsn filename_lsn, WalScan* scan) {
  WalSegmentInfo info;
  info.file = file;
  auto tear = [&](size_t offset, const std::string& why) {
    info.torn_offset = offset;
    scan->torn_tail = true;
    scan->torn_bytes += content.size() - offset;
    scan->issues.push_back(file + ": torn tail at offset " +
                           std::to_string(offset) + " (" + why + ")");
    scan->segments.push_back(info);
    return false;
  };

  // Header line: dwqa-wal<TAB>1<TAB><start_lsn>
  size_t nl = content.find('\n');
  if (nl == std::string::npos) return tear(0, "incomplete header");
  {
    std::vector<std::string> fields = Split(content.substr(0, nl), '\t');
    if (fields.size() != 3 || fields[0] != kSegmentMagic ||
        fields[1] != kSegmentVersion ||
        !ParseUint64(fields[2], &info.start_lsn)) {
      return tear(0, "bad header");
    }
  }
  if (info.start_lsn != filename_lsn) {
    scan->issues.push_back(file + ": header start LSN " +
                           std::to_string(info.start_lsn) +
                           " does not match file name");
  }

  size_t pos = nl + 1;
  while (pos < content.size()) {
    size_t rec_nl = content.find('\n', pos);
    if (rec_nl == std::string::npos) return tear(pos, "incomplete record header");
    std::vector<std::string> fields =
        Split(content.substr(pos, rec_nl - pos), '\t');
    uint64_t lsn = 0;
    uint64_t len = 0;
    if (fields.size() != 4 || fields[0] != "rec" ||
        !ParseUint64(fields[1], &lsn) || !ParseUint64(fields[2], &len) ||
        fields[3].size() != 8) {
      return tear(pos, "bad record header");
    }
    size_t payload_start = rec_nl + 1;
    if (payload_start + len + 1 > content.size()) {
      return tear(pos, "truncated payload of record " + std::to_string(lsn));
    }
    if (content[payload_start + len] != '\n') {
      return tear(pos, "missing record terminator after record " +
                           std::to_string(lsn));
    }
    std::string payload = content.substr(payload_start, len);
    size_t next = payload_start + len + 1;
    if (Crc32Hex(payload) != fields[3]) {
      // Framing is intact — the payload itself rotted. Skip the record
      // but keep scanning: later records are still trustworthy.
      scan->corrupt_records.push_back(WalRecord{lsn, std::move(payload)});
      scan->issues.push_back(file + ": CRC mismatch on record " +
                             std::to_string(lsn) + " at offset " +
                             std::to_string(pos));
      pos = next;
      continue;
    }
    if (lsn <= scan->last_lsn) {
      scan->issues.push_back(file + ": non-monotonic LSN " +
                             std::to_string(lsn) + " at offset " +
                             std::to_string(pos));
    } else {
      scan->last_lsn = lsn;
    }
    if (info.first_lsn == 0) info.first_lsn = lsn;
    info.last_lsn = lsn;
    ++info.records;
    scan->records.push_back(WalRecord{lsn, std::move(payload)});
    pos = next;
  }
  scan->segments.push_back(info);
  return true;
}

}  // namespace

Result<WalScan> ScanWal(const std::string& dir, Fs* fs) {
  fs = FsOrReal(fs);
  WalScan scan;
  if (!fs->Exists(dir)) return scan;
  DWQA_ASSIGN_OR_RETURN(std::vector<std::string> names, fs->ListDir(dir));
  bool torn = false;
  for (const std::string& name : names) {
    Lsn filename_lsn = 0;
    if (!IsSegmentFileName(name, &filename_lsn)) continue;
    const std::string path = dir + "/" + name;
    if (torn) {
      // Framing past the first tear cannot be trusted; later segments are
      // part of the torn region.
      auto size = fs->FileSize(path);
      scan.torn_bytes += size.ok() ? static_cast<size_t>(*size) : 0;
      scan.issues.push_back(name + ": unreachable past torn tail");
      WalSegmentInfo info;
      info.file = name;
      info.start_lsn = filename_lsn;
      info.torn_offset = 0;
      scan.segments.push_back(info);
      continue;
    }
    DWQA_ASSIGN_OR_RETURN(std::string content, fs->ReadFile(path));
    if (!ScanSegment(name, content, filename_lsn, &scan)) torn = true;
  }
  return scan;
}

Result<size_t> TruncateTornTail(const std::string& dir, const WalScan& scan,
                                Fs* fs) {
  fs = FsOrReal(fs);
  if (!scan.torn_tail) return static_cast<size_t>(0);
  size_t dropped = 0;
  bool past_tear = false;
  for (const WalSegmentInfo& info : scan.segments) {
    const std::string path = dir + "/" + info.file;
    if (past_tear) {
      DWQA_ASSIGN_OR_RETURN(uint64_t size, fs->FileSize(path));
      dropped += static_cast<size_t>(size);
      DWQA_RETURN_NOT_OK(fs->RemoveFile(path));
      continue;
    }
    if (!info.torn()) continue;
    past_tear = true;
    DWQA_ASSIGN_OR_RETURN(uint64_t size, fs->FileSize(path));
    dropped += static_cast<size_t>(size) - info.torn_offset;
    if (info.torn_offset == 0) {
      // Not even the header survived: drop the whole segment file.
      DWQA_RETURN_NOT_OK(fs->RemoveFile(path));
    } else {
      DWQA_RETURN_NOT_OK(fs->TruncateFile(path, info.torn_offset));
      DWQA_RETURN_NOT_OK(fs->SyncFile(path));
    }
  }
  return dropped;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& dir,
                                                   WalOptions options,
                                                   Fs* fs,
                                                   MetricRegistry* metrics) {
  fs = FsOrReal(fs);
  DWQA_RETURN_NOT_OK(fs->CreateDirs(dir));
  DWQA_ASSIGN_OR_RETURN(WalScan scan, ScanWal(dir, fs));
  if (scan.torn_tail) {
    DWQA_RETURN_NOT_OK(TruncateTornTail(dir, scan, fs).status());
    DWQA_ASSIGN_OR_RETURN(scan, ScanWal(dir, fs));
  }
  std::unique_ptr<WalWriter> writer(
      new WalWriter(dir, options, fs, metrics));
  writer->last_lsn_ = scan.last_lsn;
  for (const WalSegmentInfo& info : scan.segments) {
    writer->segments_.push_back(
        Segment{info.file, info.start_lsn, info.last_lsn});
  }
  if (writer->segments_.empty()) {
    DWQA_RETURN_NOT_OK(writer->StartSegment(scan.last_lsn + 1));
  } else {
    DWQA_ASSIGN_OR_RETURN(
        uint64_t size,
        fs->FileSize(dir + "/" + writer->segments_.back().file));
    writer->current_segment_bytes_ = static_cast<size_t>(size);
  }
  if (metrics != nullptr) {
    metrics->GetGauge(kMetricWalLastLsn)->Set(
        static_cast<double>(writer->last_lsn_));
    metrics->GetGauge(kMetricWalSegments)->Set(
        static_cast<double>(writer->segments_.size()));
  }
  return writer;
}

std::string WalWriter::current_segment_path() const {
  return dir_ + "/" + segments_.back().file;
}

Status WalWriter::StartSegment(Lsn start_lsn) {
  const std::string name = SegmentFileName(start_lsn);
  const std::string path = dir_ + "/" + name;
  const std::string header = SegmentHeader(start_lsn);
  DWQA_RETURN_NOT_OK(fs_->WriteFile(path, header));
  if (options_.sync_each_append) DWQA_RETURN_NOT_OK(fs_->SyncFile(path));
  segments_.push_back(Segment{name, start_lsn, 0});
  current_segment_bytes_ = header.size();
  if (metrics_ != nullptr) {
    metrics_->GetGauge(kMetricWalSegments)->Set(
        static_cast<double>(segments_.size()));
  }
  return Status::OK();
}

Result<Lsn> WalWriter::Append(const std::string& payload) {
  auto fail = [&](Status status) -> Result<Lsn> {
    if (metrics_ != nullptr) {
      metrics_->GetCounter(kMetricWalAppendFailures)->Increment();
    }
    return status;
  };
  const Lsn lsn = last_lsn_ + 1;
  // An empty current segment never rotates: the fresh segment would carry
  // the same start LSN (and thus the same file name) as the one it
  // replaces.
  const bool segment_empty = segments_.back().last_lsn == 0;
  if (!segment_empty &&
      (rotate_pending_ || current_segment_bytes_ >= options_.segment_bytes)) {
    Status started = StartSegment(lsn);
    if (!started.ok()) return fail(started);
    if (metrics_ != nullptr) {
      metrics_->GetCounter(kMetricWalRotations)->Increment();
    }
  }
  rotate_pending_ = false;
  const std::string path = current_segment_path();
  const std::string frame = FrameRecord(lsn, payload);
  Status appended = fs_->AppendFile(path, frame);
  if (!appended.ok()) return fail(appended);
  if (options_.sync_each_append) {
    Status synced = fs_->SyncFile(path);
    if (!synced.ok()) return fail(synced);
    dirty_ = false;
    if (metrics_ != nullptr) {
      metrics_->GetCounter(kMetricWalSyncs)->Increment();
    }
  } else {
    dirty_ = true;
  }
  last_lsn_ = lsn;
  segments_.back().last_lsn = lsn;
  current_segment_bytes_ += frame.size();
  if (metrics_ != nullptr) {
    metrics_->GetCounter(kMetricWalAppends)->Increment();
    metrics_->GetCounter(kMetricWalAppendBytes)
        ->Increment(static_cast<double>(payload.size()));
    metrics_->GetGauge(kMetricWalLastLsn)->Set(static_cast<double>(lsn));
  }
  return lsn;
}

Result<Lsn> WalWriter::AppendFact(const WalFact& fact) {
  auto payload = WalFactSerde::ToPayload(fact);
  if (!payload.ok()) {
    if (metrics_ != nullptr) {
      metrics_->GetCounter(kMetricWalAppendFailures)->Increment();
    }
    return payload.status();
  }
  return Append(*payload);
}

Status WalWriter::Sync() {
  if (!dirty_) return Status::OK();
  DWQA_RETURN_NOT_OK(fs_->SyncFile(current_segment_path()));
  dirty_ = false;
  if (metrics_ != nullptr) {
    metrics_->GetCounter(kMetricWalSyncs)->Increment();
  }
  return Status::OK();
}

Status WalWriter::Rotate() {
  DWQA_RETURN_NOT_OK(Sync());
  rotate_pending_ = true;
  return Status::OK();
}

Result<size_t> WalWriter::DropSegmentsCoveredBy(Lsn covered_lsn) {
  size_t dropped = 0;
  while (segments_.size() > 1) {
    const Segment& oldest = segments_.front();
    // An empty old segment (last_lsn 0) is covered iff the next segment
    // starts at or below the cover point; its own records would have been.
    Lsn high = oldest.last_lsn != 0 ? oldest.last_lsn
                                    : segments_[1].start_lsn - 1;
    if (high > covered_lsn) break;
    DWQA_RETURN_NOT_OK(fs_->RemoveFile(dir_ + "/" + oldest.file));
    segments_.erase(segments_.begin());
    ++dropped;
  }
  if (metrics_ != nullptr && dropped > 0) {
    metrics_->GetGauge(kMetricWalSegments)->Set(
        static_cast<double>(segments_.size()));
  }
  return dropped;
}

}  // namespace dw
}  // namespace dwqa
