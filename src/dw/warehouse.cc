#include "dw/warehouse.h"

#include "common/string_util.h"
#include "dw/materialized_view.h"

namespace dwqa {
namespace dw {

Result<Warehouse> Warehouse::Create(MdSchema schema) {
  DWQA_RETURN_NOT_OK(schema.Validate());
  Warehouse wh;
  wh.schema_ = std::move(schema);
  for (const DimensionDef& dim : wh.schema_.dimensions()) {
    std::vector<ColumnDef> cols;
    for (const LevelDef& level : dim.levels) {
      cols.push_back({level.name, ColumnType::kString});
    }
    wh.dim_tables_.emplace_back("dim_" + dim.name, std::move(cols));
    wh.member_index_.emplace_back();
  }
  for (const FactDef& fact : wh.schema_.facts()) {
    std::vector<ColumnDef> cols;
    for (const DimRole& role : fact.roles) {
      cols.push_back({"fk_" + role.role, ColumnType::kInt64});
    }
    for (const MeasureDef& m : fact.measures) {
      cols.push_back({m.name, m.type});
    }
    wh.fact_tables_.emplace_back("fact_" + fact.name, std::move(cols));
  }
  return wh;
}

Result<size_t> Warehouse::DimIndex(std::string_view dimension) const {
  const auto& dims = schema_.dimensions();
  for (size_t i = 0; i < dims.size(); ++i) {
    if (ToLower(dims[i].name) == ToLower(dimension)) return i;
  }
  return Status::NotFound("no dimension '" + std::string(dimension) + "'");
}

Result<size_t> Warehouse::FactIndex(std::string_view fact) const {
  const auto& facts = schema_.facts();
  for (size_t i = 0; i < facts.size(); ++i) {
    if (ToLower(facts[i].name) == ToLower(fact)) return i;
  }
  return Status::NotFound("no fact '" + std::string(fact) + "'");
}

Result<MemberId> Warehouse::AddMember(std::string_view dimension,
                                      const std::vector<std::string>& path) {
  DWQA_ASSIGN_OR_RETURN(size_t di, DimIndex(dimension));
  if (path.empty() || path.front().empty()) {
    return Status::InvalidArgument("member path must start with a base name");
  }
  const DimensionDef& dim = schema_.dimensions()[di];
  if (path.size() > dim.levels.size()) {
    return Status::InvalidArgument(
        "member path longer than hierarchy of dimension '" + dim.name + "'");
  }
  std::string key = ToLower(path.front());
  auto it = member_index_[di].find(key);
  if (it != member_index_[di].end()) return it->second;

  std::vector<Value> row;
  for (size_t i = 0; i < dim.levels.size(); ++i) {
    if (i < path.size() && !path[i].empty()) {
      row.emplace_back(path[i]);
    } else {
      row.emplace_back();  // null
    }
  }
  DWQA_RETURN_NOT_OK(dim_tables_[di].AppendRow(row));
  MemberId id = static_cast<MemberId>(dim_tables_[di].row_count() - 1);
  member_index_[di].emplace(std::move(key), id);
  return id;
}

Result<MemberId> Warehouse::FindMember(std::string_view dimension,
                                       std::string_view base_name) const {
  DWQA_ASSIGN_OR_RETURN(size_t di, DimIndex(dimension));
  auto it = member_index_[di].find(ToLower(base_name));
  if (it == member_index_[di].end()) {
    return Status::NotFound("dimension '" + std::string(dimension) +
                            "' has no member '" + std::string(base_name) +
                            "'");
  }
  return it->second;
}

Result<std::string> Warehouse::MemberLevelValue(std::string_view dimension,
                                                MemberId member,
                                                std::string_view level) const {
  DWQA_ASSIGN_OR_RETURN(size_t di, DimIndex(dimension));
  DWQA_ASSIGN_OR_RETURN(size_t li,
                        schema_.dimensions()[di].LevelIndex(level));
  if (member < 0 ||
      static_cast<size_t>(member) >= dim_tables_[di].row_count()) {
    return Status::OutOfRange("member id out of range");
  }
  Value v = dim_tables_[di].Get(static_cast<size_t>(member), li);
  return v.is_null() ? std::string() : v.as_string();
}

Result<std::vector<std::string>> Warehouse::MemberNames(
    std::string_view dimension) const {
  DWQA_ASSIGN_OR_RETURN(size_t di, DimIndex(dimension));
  std::vector<std::string> out;
  const Table& t = dim_tables_[di];
  for (size_t r = 0; r < t.row_count(); ++r) {
    Value v = t.Get(r, 0);
    out.push_back(v.is_null() ? std::string() : v.as_string());
  }
  return out;
}

Status Warehouse::InsertFact(std::string_view fact,
                             const std::vector<MemberId>& member_per_role,
                             const std::vector<Value>& measures) {
  DWQA_ASSIGN_OR_RETURN(size_t fi, FactIndex(fact));
  const FactDef& def = schema_.facts()[fi];
  if (member_per_role.size() != def.roles.size()) {
    return Status::InvalidArgument(
        "fact '" + def.name + "' expects " +
        std::to_string(def.roles.size()) + " member ids, got " +
        std::to_string(member_per_role.size()));
  }
  if (measures.size() != def.measures.size()) {
    return Status::InvalidArgument(
        "fact '" + def.name + "' expects " +
        std::to_string(def.measures.size()) + " measures, got " +
        std::to_string(measures.size()));
  }
  // Referential integrity: every surrogate key must exist.
  for (size_t i = 0; i < member_per_role.size(); ++i) {
    DWQA_ASSIGN_OR_RETURN(size_t di, DimIndex(def.roles[i].dimension));
    if (member_per_role[i] < 0 ||
        static_cast<size_t>(member_per_role[i]) >=
            dim_tables_[di].row_count()) {
      return Status::InvalidArgument("role '" + def.roles[i].role +
                                     "': member id " +
                                     std::to_string(member_per_role[i]) +
                                     " not registered");
    }
  }
  std::vector<Value> row;
  for (MemberId id : member_per_role) {
    row.emplace_back(static_cast<int64_t>(id));
  }
  for (const Value& m : measures) row.push_back(m);
  DWQA_RETURN_NOT_OK(fact_tables_[fi].AppendRow(row));
  // Incremental view maintenance: the delta of this one fact, applied to
  // every bound view of the fact, before the insert returns — views are
  // never staler than the fact tables.
  if (views_ != nullptr) {
    DWQA_RETURN_NOT_OK(
        views_->OnFactInserted(*this, fi, member_per_role, measures));
  }
  return Status::OK();
}

Result<const Table*> Warehouse::FactTable(std::string_view fact) const {
  DWQA_ASSIGN_OR_RETURN(size_t fi, FactIndex(fact));
  return &fact_tables_[fi];
}

Result<const Table*> Warehouse::DimensionTable(
    std::string_view dimension) const {
  DWQA_ASSIGN_OR_RETURN(size_t di, DimIndex(dimension));
  return &dim_tables_[di];
}

Result<size_t> Warehouse::FactRowCount(std::string_view fact) const {
  DWQA_ASSIGN_OR_RETURN(size_t fi, FactIndex(fact));
  return fact_tables_[fi].row_count();
}

}  // namespace dw
}  // namespace dwqa
