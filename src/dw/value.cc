#include "dw/value.h"

#include "common/string_util.h"

namespace dwqa {
namespace dw {

const char* ColumnTypeName(ColumnType t) {
  switch (t) {
    case ColumnType::kInt64:
      return "int64";
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kString:
      return "string";
    case ColumnType::kDate:
      return "date";
  }
  return "?";
}

std::string Value::ToString() const {
  if (is_null()) return "";
  if (is_int()) return std::to_string(as_int());
  if (is_double()) return FormatDouble(as_double(), 2);
  if (is_date()) return as_date().ToIsoString();
  return as_string();
}

}  // namespace dw
}  // namespace dwqa
