#ifndef DWQA_DW_SCHEMA_H_
#define DWQA_DW_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dw/value.h"

namespace dwqa {
namespace dw {

/// Aggregation functions of the OLAP engine.
enum class AggFn { kSum, kCount, kAvg, kMin, kMax };

const char* AggFnName(AggFn fn);

/// \brief A measure of a fact ("Price", "Miles").
struct MeasureDef {
  std::string name;
  ColumnType type = ColumnType::kDouble;
  AggFn default_agg = AggFn::kSum;
};

/// \brief One aggregation level of a dimension ("Airport", "City", "State").
struct LevelDef {
  std::string name;
};

/// \brief A dimension with its hierarchy, finest level first
/// (Airport → City → State → Country).
struct DimensionDef {
  std::string name;
  std::vector<LevelDef> levels;

  Result<size_t> LevelIndex(std::string_view level) const;
};

/// \brief A named use of a dimension by a fact. The Last Minute Sales fact
/// uses the Airport dimension twice, as "origin" and "destination".
struct DimRole {
  std::string role;
  std::string dimension;
};

/// \brief A fact class with its measures and dimension roles.
struct FactDef {
  std::string name;
  std::vector<MeasureDef> measures;
  std::vector<DimRole> roles;

  Result<size_t> MeasureIndex(std::string_view measure) const;
  Result<size_t> RoleIndex(std::string_view role) const;
};

/// \brief The multidimensional schema of a warehouse: the logical
/// counterpart of the UML profile model (paper Figure 1).
class MdSchema {
 public:
  Status AddDimension(DimensionDef dim);
  Status AddFact(FactDef fact);

  Result<const DimensionDef*> FindDimension(std::string_view name) const;
  Result<const FactDef*> FindFact(std::string_view name) const;

  const std::vector<DimensionDef>& dimensions() const { return dimensions_; }
  const std::vector<FactDef>& facts() const { return facts_; }

  /// Checks fact roles reference declared dimensions, names are unique and
  /// every dimension has at least one level.
  Status Validate() const;

 private:
  std::vector<DimensionDef> dimensions_;
  std::vector<FactDef> facts_;
};

}  // namespace dw
}  // namespace dwqa

#endif  // DWQA_DW_SCHEMA_H_
