#include "dw/quarantine.h"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>

#include "common/csv.h"

namespace dwqa {
namespace dw {

namespace {

std::string NowUtcIso() {
  std::time_t now = std::chrono::system_clock::to_time_t(
      std::chrono::system_clock::now());
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

}  // namespace

void QuarantineStore::Add(QuarantineRecord record) {
  record.sequence = next_sequence_++;
  if (record.timestamp.empty()) record.timestamp = NowUtcIso();
  records_.push_back(std::move(record));
}

std::map<std::string, size_t> QuarantineStore::CountsByReason() const {
  std::map<std::string, size_t> counts;
  for (const QuarantineRecord& record : records_) ++counts[record.reason];
  return counts;
}

std::string QuarantineStore::ToCsv() const {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"sequence", "timestamp", "reason", "attribute", "value",
                  "unit", "date", "location", "url", "detail"});
  for (const QuarantineRecord& r : records_) {
    rows.push_back({std::to_string(r.sequence), r.timestamp, r.reason,
                    r.attribute, r.value, r.unit, r.date_iso, r.location,
                    r.url, r.detail});
  }
  return Csv::Render(rows);
}

Status QuarantineStore::SaveCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "'");
  out << ToCsv();
  return out.good() ? Status::OK()
                    : Status::IOError("write failed: " + path);
}

void QuarantineStore::Clear() {
  // Sequence numbers keep counting across Clear so CSV exports taken at
  // different moments never reuse an admission number.
  records_.clear();
}

}  // namespace dw
}  // namespace dwqa
