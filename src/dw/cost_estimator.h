#ifndef DWQA_DW_COST_ESTIMATOR_H_
#define DWQA_DW_COST_ESTIMATOR_H_

#include <string>

#include "common/result.h"
#include "dw/olap.h"

namespace dwqa {
namespace dw {

/// \brief The cost estimate of one OLAP query, before executing it.
struct CostEstimate {
  /// Rows the query will touch: the matched view's group cardinality, or
  /// the fact table's full row count for a recompute scan.
  size_t estimated_rows = 0;
  /// True when a materialized view covers the query (microsecond read).
  bool from_view = false;
  /// Normalized admission weight: max(min_units, rows / rows_per_unit).
  double cost_units = 1.0;
};

/// \brief Rows-touched estimator for OLAP/BI queries, from table and view
/// cardinalities — never from executing the query.
///
/// The serving layer consults this before admission (the `estimate_cost`
/// pattern): a query a view covers costs its group count (tiny, stable as
/// facts stream in), a recompute costs the full fact scan (grows with the
/// warehouse), so under load the admission cost budget sheds the expensive
/// recomputes first while view-answered dashboards keep flowing.
class CostEstimator {
 public:
  /// Tuning knobs mapping fact-scan volume onto admission cost units.
  struct Options {
    /// Fact rows one admission cost unit buys.
    double rows_per_unit = 1000.0;
    /// Floor under every estimate (admission costs are >= 1 by convention).
    double min_units = 1.0;
  };

  CostEstimator() = default;
  explicit CostEstimator(Options options) : options_(options) {}

  const Options& options() const { return options_; }

  /// Estimates `query` against `wh`: the attached view catalog's matching
  /// group count when one covers it, the fact row count otherwise. Fails
  /// only when the fact itself is unknown.
  Result<CostEstimate> Estimate(const Warehouse& wh,
                                const OlapQuery& query) const;

 private:
  Options options_;
};

}  // namespace dw
}  // namespace dwqa

#endif  // DWQA_DW_COST_ESTIMATOR_H_
