#ifndef DWQA_DW_QUARANTINE_H_
#define DWQA_DW_QUARANTINE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace dwqa {
namespace dw {

/// \brief One fact refused admission to the warehouse, with everything a
/// human needs to triage it.
///
/// The paper stores the source URL with every fed tuple "in order to make
/// the approach robust against errors ... the user can select the more
/// useful data" (§4.2); the quarantine is the other half of that loop —
/// the rows that did NOT make it, kept with their reason and provenance
/// instead of being silently dropped.
struct QuarantineRecord {
  std::string attribute;
  /// Rendered value, not a double — corrupt input is the norm here and the
  /// broken rendering itself is diagnostic ("888", "nan").
  std::string value;
  std::string unit;
  std::string date_iso;  ///< ISO date or "" when the fact had none.
  std::string location;
  std::string url;       ///< Source page, the §4.2 provenance.
  std::string reason;    ///< RejectReasonName(...) of qa/fact_validator.h.
  std::string detail;    ///< Free-form context (e.g. the ETL error).
  /// Monotonic admission number, assigned by the store.
  size_t sequence = 0;
  /// Wall-clock ISO 8601 UTC stamp, assigned by the store unless preset.
  std::string timestamp;
};

/// \brief Dead-letter store for rejected facts.
///
/// Append-only in memory, exportable as CSV for the §4.2 "user selects the
/// more useful data" inspection loop. Counting per reason feeds the
/// FeedReport and the checkpoint.
class QuarantineStore {
 public:
  /// Appends `record`, stamping sequence (and timestamp when empty).
  void Add(QuarantineRecord record);

  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const std::vector<QuarantineRecord>& records() const { return records_; }

  /// Rejections per RejectReason name.
  std::map<std::string, size_t> CountsByReason() const;

  /// CSV with header: sequence,timestamp,reason,attribute,value,unit,date,
  /// location,url,detail.
  std::string ToCsv() const;

  /// Writes ToCsv() to `path`.
  Status SaveCsv(const std::string& path) const;

  void Clear();

 private:
  std::vector<QuarantineRecord> records_;
  size_t next_sequence_ = 1;
};

}  // namespace dw
}  // namespace dwqa

#endif  // DWQA_DW_QUARANTINE_H_
