#ifndef DWQA_DW_VALUE_H_
#define DWQA_DW_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/date.h"

namespace dwqa {
namespace dw {

/// Column data types of the warehouse.
enum class ColumnType { kInt64, kDouble, kString, kDate };

const char* ColumnTypeName(ColumnType t);

/// \brief A dynamically typed cell value. Null is the monostate alternative.
class Value {
 public:
  Value() = default;  // null
  Value(int64_t v) : repr_(v) {}                      // NOLINT
  Value(int v) : repr_(static_cast<int64_t>(v)) {}    // NOLINT
  Value(double v) : repr_(v) {}                       // NOLINT
  Value(std::string v) : repr_(std::move(v)) {}       // NOLINT
  Value(const char* v) : repr_(std::string(v)) {}     // NOLINT
  Value(Date v) : repr_(v) {}                         // NOLINT

  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }
  bool is_int() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }
  bool is_date() const { return std::holds_alternative<Date>(repr_); }

  int64_t as_int() const { return std::get<int64_t>(repr_); }
  double as_double() const { return std::get<double>(repr_); }
  const std::string& as_string() const { return std::get<std::string>(repr_); }
  Date as_date() const { return std::get<Date>(repr_); }

  /// Numeric view: ints and doubles coerce; everything else is 0.
  double ToDouble() const {
    if (is_int()) return static_cast<double>(as_int());
    if (is_double()) return as_double();
    return 0.0;
  }

  /// Display rendering ("" for null, ISO form for dates).
  std::string ToString() const;

  bool operator==(const Value& other) const { return repr_ == other.repr_; }

 private:
  std::variant<std::monostate, int64_t, double, std::string, Date> repr_;
};

}  // namespace dw
}  // namespace dwqa

#endif  // DWQA_DW_VALUE_H_
