#include "dw/materialized_view.h"

#include <map>
#include <mutex>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/metric_names.h"
#include "common/string_util.h"

namespace dwqa {
namespace dw {

/// \brief One resolved view: the definition bound to schema indexes plus
/// the materialized aggregation state.
///
/// Group keys and aggregation states are the same containers the OLAP
/// engine's hash aggregation uses (std::map over the key vector, AggState
/// per measure), which is what makes a view answer byte-identical to a
/// recompute: both sides insert the same strings into the same ordered map
/// and render through the same AggState::Finish.
struct ViewCatalog::BoundView {
  ViewDefinition def;
  size_t fact_index = 0;      ///< Index into schema().facts().
  std::string fact_lower;     ///< Lowercased fact name (match key).
  struct Axis {
    size_t role_index = 0;    ///< Role position == fk column of the fact table.
    std::string role_lower;   ///< Lowercased declared role name (match key).
    std::string dimension;    ///< Dimension the role references.
    std::string level;        ///< Hierarchy level this axis groups at.
    std::string level_lower;  ///< Lowercased level name (match key).
  };
  std::vector<Axis> axes;
  /// Covered measures: lowercased name -> slot in `measure_slots`.
  std::unordered_map<std::string, size_t> measure_slot_by_name;
  /// Slot -> measure position within the fact's measure list.
  std::vector<size_t> measure_slots;
  /// Group key (axis level values, in axis order) -> one AggState per
  /// covered measure slot.
  std::map<std::vector<std::string>, std::vector<AggState>> groups;
  size_t facts_absorbed = 0;
};

namespace {

/// The fact's position in the schema (the index InsertFact reports).
Result<size_t> FactIndexOf(const MdSchema& schema, const std::string& fact) {
  const auto& facts = schema.facts();
  for (size_t i = 0; i < facts.size(); ++i) {
    if (ToLower(facts[i].name) == ToLower(fact)) return i;
  }
  return Status::NotFound("no fact '" + fact + "'");
}

std::string ViewName(const std::string& fact,
                     const std::vector<GroupBy>& axes) {
  std::string name = fact + "/";
  for (size_t i = 0; i < axes.size(); ++i) {
    if (i > 0) name += "+";
    name += axes[i].role + "." + axes[i].level;
  }
  return name;
}

}  // namespace

std::vector<ViewDefinition> DeriveViewsFromSchema(const MdSchema& schema) {
  // Conformed levels: a level name recurring across dimensions, or any
  // level of a dimension referenced by roles of more than one fact. These
  // are the join points of the star schema — the axes dashboards group on.
  std::unordered_map<std::string, std::set<std::string>> dims_per_level;
  for (const DimensionDef& dim : schema.dimensions()) {
    for (const LevelDef& level : dim.levels) {
      dims_per_level[ToLower(level.name)].insert(ToLower(dim.name));
    }
  }
  std::unordered_map<std::string, std::set<std::string>> facts_per_dim;
  for (const FactDef& fact : schema.facts()) {
    for (const DimRole& role : fact.roles) {
      facts_per_dim[ToLower(role.dimension)].insert(ToLower(fact.name));
    }
  }
  auto conformed = [&](const std::string& dimension,
                       const std::string& level) {
    if (dims_per_level[ToLower(level)].size() >= 2) return true;
    return facts_per_dim[ToLower(dimension)].size() >= 2;
  };

  std::vector<ViewDefinition> views;
  for (const FactDef& fact : schema.facts()) {
    // Single-axis views: every (role, hierarchy level) — the roll-up
    // ladder of each dimension, precomputed at every rung.
    for (const DimRole& role : fact.roles) {
      auto dim = schema.FindDimension(role.dimension);
      if (!dim.ok()) continue;  // Validate() rejects this schema anyway.
      for (const LevelDef& level : (*dim)->levels) {
        ViewDefinition def;
        def.fact = fact.name;
        def.group_by = {{role.role, level.name}};
        def.name = ViewName(fact.name, def.group_by);
        views.push_back(std::move(def));
      }
    }
    // Two-axis dashboard slices: pairs of roles at conformed levels
    // (City × Date and friends) — exactly the shapes the BI layer joins.
    for (size_t i = 0; i < fact.roles.size(); ++i) {
      for (size_t j = i + 1; j < fact.roles.size(); ++j) {
        const DimRole& a = fact.roles[i];
        const DimRole& b = fact.roles[j];
        auto dim_a = schema.FindDimension(a.dimension);
        auto dim_b = schema.FindDimension(b.dimension);
        if (!dim_a.ok() || !dim_b.ok()) continue;
        for (const LevelDef& la : (*dim_a)->levels) {
          if (!conformed(a.dimension, la.name)) continue;
          for (const LevelDef& lb : (*dim_b)->levels) {
            if (!conformed(b.dimension, lb.name)) continue;
            ViewDefinition def;
            def.fact = fact.name;
            def.group_by = {{a.role, la.name}, {b.role, lb.name}};
            def.name = ViewName(fact.name, def.group_by);
            views.push_back(std::move(def));
          }
        }
      }
    }
  }
  return views;
}

ViewCatalog::ViewCatalog() = default;
ViewCatalog::~ViewCatalog() = default;

Status ViewCatalog::Define(ViewDefinition def) {
  if (def.fact.empty()) {
    return Status::InvalidArgument("view definition needs a fact");
  }
  if (def.group_by.empty()) {
    return Status::InvalidArgument("view '" + def.name +
                                   "' needs at least one grouping axis");
  }
  if (def.name.empty()) def.name = ViewName(def.fact, def.group_by);
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (const ViewDefinition& existing : definitions_) {
    if (ToLower(existing.name) == ToLower(def.name)) {
      return Status::AlreadyExists("view '" + def.name + "' already defined");
    }
  }
  definitions_.push_back(std::move(def));
  return Status::OK();
}

Status ViewCatalog::DefineAll(std::vector<ViewDefinition> defs) {
  for (ViewDefinition& def : defs) {
    DWQA_RETURN_NOT_OK(Define(std::move(def)));
  }
  return Status::OK();
}

Result<std::unique_ptr<ViewCatalog::BoundView>> ViewCatalog::Resolve(
    const Warehouse& wh, const ViewDefinition& def) const {
  auto view = std::make_unique<BoundView>();
  view->def = def;
  DWQA_ASSIGN_OR_RETURN(view->fact_index,
                        FactIndexOf(wh.schema(), def.fact));
  const FactDef& fact = wh.schema().facts()[view->fact_index];
  view->fact_lower = ToLower(fact.name);
  for (const GroupBy& g : def.group_by) {
    DWQA_ASSIGN_OR_RETURN(size_t ri, fact.RoleIndex(g.role));
    const std::string& dim_name = fact.roles[ri].dimension;
    DWQA_ASSIGN_OR_RETURN(const DimensionDef* dim,
                          wh.schema().FindDimension(dim_name));
    DWQA_ASSIGN_OR_RETURN(size_t li, dim->LevelIndex(g.level));
    BoundView::Axis axis;
    axis.role_index = ri;
    axis.role_lower = ToLower(fact.roles[ri].role);
    axis.dimension = dim_name;
    axis.level = dim->levels[li].name;
    axis.level_lower = ToLower(axis.level);
    view->axes.push_back(std::move(axis));
  }
  std::vector<std::string> covered = def.measures;
  if (covered.empty()) {
    for (const MeasureDef& m : fact.measures) covered.push_back(m.name);
  }
  for (const std::string& name : covered) {
    DWQA_ASSIGN_OR_RETURN(size_t mi, fact.MeasureIndex(name));
    std::string key = ToLower(name);
    if (view->measure_slot_by_name.count(key)) continue;
    view->measure_slot_by_name.emplace(std::move(key),
                                       view->measure_slots.size());
    view->measure_slots.push_back(mi);
  }
  if (view->measure_slots.empty()) {
    return Status::InvalidArgument("view '" + def.name +
                                   "' covers no measures");
  }
  return view;
}

Status ViewCatalog::RebuildOne(const Warehouse& wh, BoundView* view) const {
  view->groups.clear();
  view->facts_absorbed = 0;
  DWQA_ASSIGN_OR_RETURN(const Table* ftab, wh.FactTable(view->def.fact));
  const size_t n_roles = wh.schema().facts()[view->fact_index].roles.size();
  for (size_t r = 0; r < ftab->row_count(); ++r) {
    std::vector<std::string> key;
    key.reserve(view->axes.size());
    for (const BoundView::Axis& a : view->axes) {
      MemberId member =
          static_cast<MemberId>(ftab->Get(r, a.role_index).as_int());
      DWQA_ASSIGN_OR_RETURN(
          std::string v, wh.MemberLevelValue(a.dimension, member, a.level));
      key.push_back(std::move(v));
    }
    auto [it, inserted] =
        view->groups.try_emplace(std::move(key), view->measure_slots.size());
    for (size_t s = 0; s < view->measure_slots.size(); ++s) {
      it->second[s].Add(
          ftab->column(n_roles + view->measure_slots[s]).GetDouble(r));
    }
    ++view->facts_absorbed;
  }
  return Status::OK();
}

Status ViewCatalog::Bind(const Warehouse& wh) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::vector<std::unique_ptr<BoundView>> bound;
  for (const ViewDefinition& def : definitions_) {
    DWQA_ASSIGN_OR_RETURN(std::unique_ptr<BoundView> view, Resolve(wh, def));
    DWQA_RETURN_NOT_OK(RebuildOne(wh, view.get()));
    bound.push_back(std::move(view));
  }
  views_ = std::move(bound);
  if (metrics_ != nullptr) {
    metrics_
        ->GetCounter(kMetricViewRebuilds, {},
                     "Full rebuild scans of the view catalog (Bind/recovery)")
        ->Increment();
    metrics_
        ->GetGauge(kMetricViewCount, {}, "Views currently bound")
        ->Set(static_cast<double>(views_.size()));
    size_t groups = 0;
    for (const auto& view : views_) groups += view->groups.size();
    metrics_
        ->GetGauge(kMetricViewGroups, {},
                   "Aggregate groups materialized across all views")
        ->Set(static_cast<double>(groups));
  }
  return Status::OK();
}

Status ViewCatalog::Register(const Warehouse& wh, ViewDefinition def) {
  DWQA_RETURN_NOT_OK(Define(def));
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (def.name.empty()) def.name = ViewName(def.fact, def.group_by);
  DWQA_ASSIGN_OR_RETURN(std::unique_ptr<BoundView> view, Resolve(wh, def));
  DWQA_RETURN_NOT_OK(RebuildOne(wh, view.get()));
  views_.push_back(std::move(view));
  if (metrics_ != nullptr) {
    metrics_->GetGauge(kMetricViewCount, {}, "Views currently bound")
        ->Set(static_cast<double>(views_.size()));
  }
  return Status::OK();
}

const ViewCatalog::BoundView* ViewCatalog::Match(
    const OlapQuery& query) const {
  // Filters need base facts; views keep only aggregation state.
  if (!query.filters.empty()) return nullptr;
  if (query.measures.empty()) return nullptr;  // Execute's error path.
  const std::string fact_lower = ToLower(query.fact);
  for (const auto& view : views_) {
    if (view->fact_lower != fact_lower) continue;
    if (view->axes.size() != query.group_by.size()) continue;
    bool axes_match = true;
    for (size_t i = 0; i < view->axes.size(); ++i) {
      if (ToLower(query.group_by[i].role) != view->axes[i].role_lower ||
          ToLower(query.group_by[i].level) != view->axes[i].level_lower) {
        axes_match = false;
        break;
      }
    }
    if (!axes_match) continue;
    bool covered = true;
    for (const QueryMeasure& qm : query.measures) {
      if (!view->measure_slot_by_name.count(ToLower(qm.measure))) {
        covered = false;
        break;
      }
    }
    if (covered) return view.get();
  }
  return nullptr;
}

Result<OlapResult> ViewCatalog::Answer(const OlapQuery& query) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const BoundView* view = Match(query);
  if (view == nullptr) {
    if (metrics_ != nullptr) {
      metrics_
          ->GetCounter(kMetricViewMisses, {},
                       "View lookups that missed (recompute fallback)")
          ->Increment();
    }
    return Status::NotFound("no materialized view covers the query over '" +
                            query.fact + "'");
  }
  // Mirror Execute's HAVING validation so a matched-but-malformed query
  // fails identically on both paths.
  for (const Having& h : query.having) {
    if (h.measure_index >= query.measures.size()) {
      return Status::InvalidArgument(
          "HAVING refers to measure index " +
          std::to_string(h.measure_index) + ", query has " +
          std::to_string(query.measures.size()));
    }
  }
  // Slot of each query measure within the view's state vector.
  std::vector<size_t> slots;
  for (const QueryMeasure& qm : query.measures) {
    slots.push_back(view->measure_slot_by_name.at(ToLower(qm.measure)));
  }

  OlapResult result;
  // Every absorbed fact was scanned and (with no filters) matched —
  // identical to a full recompute over the same fact table.
  result.facts_scanned = view->facts_absorbed;
  result.facts_matched = view->facts_absorbed;
  for (const GroupBy& g : query.group_by) {
    result.headers.push_back(g.role + "." + g.level);
  }
  for (const QueryMeasure& qm : query.measures) {
    result.headers.push_back(std::string(AggFnName(qm.agg)) + "(" +
                             qm.measure + ")");
  }
  for (const auto& [key, states] : view->groups) {
    bool keep = true;
    for (const Having& h : query.having) {
      double aggregated = states[slots[h.measure_index]]
                              .Finish(query.measures[h.measure_index].agg)
                              .ToDouble();
      if (!EvalCompare(aggregated, h.op, h.value)) {
        keep = false;
        break;
      }
    }
    if (!keep) continue;
    std::vector<Value> row;
    for (const std::string& k : key) row.emplace_back(k);
    for (size_t m = 0; m < slots.size(); ++m) {
      row.push_back(states[slots[m]].Finish(query.measures[m].agg));
    }
    result.rows.push_back(std::move(row));
  }
  if (metrics_ != nullptr) {
    metrics_
        ->GetCounter(kMetricViewReads, {{"view", view->def.name}},
                     "Queries answered from a matching materialized view")
        ->Increment();
  }
  return result;
}

Result<size_t> ViewCatalog::EstimateGroups(const OlapQuery& query) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const BoundView* view = Match(query);
  if (view == nullptr) {
    return Status::NotFound("no materialized view covers the query over '" +
                            query.fact + "'");
  }
  return view->groups.size();
}

Status ViewCatalog::OnFactInserted(const Warehouse& wh, size_t fact_index,
                                   const std::vector<MemberId>& member_per_role,
                                   const std::vector<Value>& measures) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (views_.empty()) return Status::OK();  // Not bound yet.
  Histogram* latency =
      metrics_ != nullptr
          ? metrics_->GetHistogram(
                kMetricViewMaintainLatency, {}, {},
                "Per-fact incremental maintenance latency across all views")
          : nullptr;
  ScopedLatencyTimer timer(latency);
  Span span(trace_, "view.maintain");
  size_t touched = 0;
  for (const auto& view : views_) {
    if (view->fact_index != fact_index) continue;
    std::vector<std::string> key;
    key.reserve(view->axes.size());
    for (const BoundView::Axis& a : view->axes) {
      DWQA_ASSIGN_OR_RETURN(
          std::string v,
          wh.MemberLevelValue(a.dimension, member_per_role[a.role_index],
                              a.level));
      key.push_back(std::move(v));
    }
    auto [it, inserted] =
        view->groups.try_emplace(std::move(key), view->measure_slots.size());
    for (size_t s = 0; s < view->measure_slots.size(); ++s) {
      it->second[s].Add(measures[view->measure_slots[s]].ToDouble());
    }
    ++view->facts_absorbed;
    ++touched;
  }
  maintenance_updates_ += touched;
  span.Annotate("views", static_cast<double>(touched));
  if (metrics_ != nullptr && touched > 0) {
    metrics_
        ->GetCounter(kMetricViewMaintenanceUpdates, {},
                     "Per-view delta applications (one per view touched "
                     "per inserted fact)")
        ->Increment(static_cast<double>(touched));
  }
  return Status::OK();
}

size_t ViewCatalog::view_count() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return views_.empty() ? definitions_.size() : views_.size();
}

std::vector<ViewStats> ViewCatalog::StatsSnapshot() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<ViewStats> stats;
  for (const auto& view : views_) {
    ViewStats s;
    s.name = view->def.name;
    s.fact = view->def.fact;
    s.groups = view->groups.size();
    s.facts_absorbed = view->facts_absorbed;
    stats.push_back(std::move(s));
  }
  return stats;
}

uint64_t ViewCatalog::maintenance_updates() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return maintenance_updates_;
}

void ViewCatalog::set_metrics(MetricRegistry* metrics) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  metrics_ = metrics;
}

void ViewCatalog::set_trace_recorder(TraceRecorder* trace) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  trace_ = trace;
}

}  // namespace dw
}  // namespace dwqa
