#include "dw/cost_estimator.h"

#include <algorithm>

#include "dw/materialized_view.h"

namespace dwqa {
namespace dw {

Result<CostEstimate> CostEstimator::Estimate(const Warehouse& wh,
                                             const OlapQuery& query) const {
  CostEstimate estimate;
  const ViewCatalog* views = wh.views();
  if (views != nullptr) {
    auto groups = views->EstimateGroups(query);
    if (groups.ok()) {
      estimate.estimated_rows = *groups;
      estimate.from_view = true;
    }
  }
  if (!estimate.from_view) {
    DWQA_ASSIGN_OR_RETURN(estimate.estimated_rows,
                          wh.FactRowCount(query.fact));
  }
  double units = options_.rows_per_unit > 0.0
                     ? static_cast<double>(estimate.estimated_rows) /
                           options_.rows_per_unit
                     : static_cast<double>(estimate.estimated_rows);
  estimate.cost_units = std::max(options_.min_units, units);
  return estimate;
}

}  // namespace dw
}  // namespace dwqa
