#include "dw/csv_etl.h"

#include <cstdlib>
#include <fstream>

#include "common/csv.h"
#include "common/string_util.h"

namespace dwqa {
namespace dw {

std::string CsvEtl::ExportTable(const Table& table) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header;
  for (size_t c = 0; c < table.column_count(); ++c) {
    header.push_back(table.column(c).name());
  }
  rows.push_back(std::move(header));
  for (size_t r = 0; r < table.row_count(); ++r) {
    std::vector<std::string> row;
    for (size_t c = 0; c < table.column_count(); ++c) {
      row.push_back(table.Get(r, c).ToString());
    }
    rows.push_back(std::move(row));
  }
  return Csv::Render(rows);
}

Result<std::string> CsvEtl::ExportFact(const Warehouse& wh,
                                       const std::string& fact) {
  DWQA_ASSIGN_OR_RETURN(const FactDef* def, wh.schema().FindFact(fact));
  DWQA_ASSIGN_OR_RETURN(const Table* ftab, wh.FactTable(fact));

  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header;
  for (const DimRole& role : def->roles) {
    DWQA_ASSIGN_OR_RETURN(const DimensionDef* dim,
                          wh.schema().FindDimension(role.dimension));
    for (const LevelDef& level : dim->levels) {
      header.push_back(role.role + "." + level.name);
    }
  }
  for (const MeasureDef& m : def->measures) header.push_back(m.name);
  rows.push_back(std::move(header));

  for (size_t r = 0; r < ftab->row_count(); ++r) {
    std::vector<std::string> row;
    for (size_t ri = 0; ri < def->roles.size(); ++ri) {
      MemberId member = static_cast<MemberId>(ftab->Get(r, ri).as_int());
      DWQA_ASSIGN_OR_RETURN(const DimensionDef* dim,
                            wh.schema().FindDimension(
                                def->roles[ri].dimension));
      for (const LevelDef& level : dim->levels) {
        DWQA_ASSIGN_OR_RETURN(
            std::string value,
            wh.MemberLevelValue(def->roles[ri].dimension, member,
                                level.name));
        row.push_back(std::move(value));
      }
    }
    for (size_t m = 0; m < def->measures.size(); ++m) {
      row.push_back(ftab->Get(r, def->roles.size() + m).ToString());
    }
    rows.push_back(std::move(row));
  }
  return Csv::Render(rows);
}

Result<std::vector<FactRecord>> CsvEtl::ImportFactRecords(
    const MdSchema& schema, const std::string& fact,
    const std::string& csv) {
  DWQA_ASSIGN_OR_RETURN(const FactDef* def, schema.FindFact(fact));
  DWQA_ASSIGN_OR_RETURN(auto rows, Csv::Parse(csv));
  if (rows.empty()) {
    return Status::InvalidArgument("CSV has no header row");
  }

  // Validate the header: role-level columns in declaration/hierarchy
  // order, then the measures.
  std::vector<std::string> expected;
  for (const DimRole& role : def->roles) {
    DWQA_ASSIGN_OR_RETURN(const DimensionDef* dim,
                          schema.FindDimension(role.dimension));
    for (const LevelDef& level : dim->levels) {
      expected.push_back(ToLower(role.role + "." + level.name));
    }
  }
  std::vector<size_t> levels_per_role;
  for (const DimRole& role : def->roles) {
    const DimensionDef* dim =
        schema.FindDimension(role.dimension).ValueOrDie();
    levels_per_role.push_back(dim->levels.size());
  }
  for (const MeasureDef& m : def->measures) {
    expected.push_back(ToLower(m.name));
  }
  const std::vector<std::string>& header = rows.front();
  if (header.size() != expected.size()) {
    return Status::InvalidArgument(
        "header has " + std::to_string(header.size()) + " columns, fact '" +
        def->name + "' expects " + std::to_string(expected.size()));
  }
  for (size_t i = 0; i < header.size(); ++i) {
    if (ToLower(Trim(header[i])) != expected[i]) {
      return Status::InvalidArgument("unexpected column '" + header[i] +
                                     "' (expected '" + expected[i] + "')");
    }
  }

  std::vector<FactRecord> records;
  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != expected.size()) {
      return Status::InvalidArgument("row " + std::to_string(r) + " has " +
                                     std::to_string(row.size()) +
                                     " fields");
    }
    FactRecord record;
    size_t col = 0;
    for (size_t ri = 0; ri < def->roles.size(); ++ri) {
      std::vector<std::string> path;
      for (size_t li = 0; li < levels_per_role[ri]; ++li) {
        path.push_back(row[col++]);
      }
      // Trailing empty levels are allowed (short member paths).
      while (!path.empty() && path.back().empty()) path.pop_back();
      record.role_paths.push_back(std::move(path));
    }
    for (size_t m = 0; m < def->measures.size(); ++m) {
      const std::string& cell = row[col++];
      if (cell.empty()) {
        record.measures.push_back(Value());
      } else if (def->measures[m].type == ColumnType::kInt64) {
        record.measures.push_back(
            Value(static_cast<int64_t>(std::atoll(cell.c_str()))));
      } else {
        record.measures.push_back(Value(std::atof(cell.c_str())));
      }
    }
    records.push_back(std::move(record));
  }
  return records;
}

Status CsvEtl::ExportFactToFile(const Warehouse& wh, const std::string& fact,
                                const std::string& path) {
  DWQA_ASSIGN_OR_RETURN(std::string csv, ExportFact(wh, fact));
  std::ofstream file(path);
  if (!file) return Status::IOError("cannot open '" + path + "'");
  file << csv;
  return file.good() ? Status::OK()
                     : Status::IOError("write to '" + path + "' failed");
}

}  // namespace dw
}  // namespace dwqa
