#include "dw/recovery.h"

#include <algorithm>

#include "common/metric_names.h"
#include "dw/etl.h"
#include "dw/materialized_view.h"
#include "dw/persistence.h"

namespace dwqa {
namespace dw {

namespace {

/// First ~80 bytes of a payload, newlines flattened — enough context to
/// triage a quarantined record without dumping the whole blob.
std::string PayloadSnippet(const std::string& payload) {
  std::string snippet = payload.substr(0, 80);
  for (char& c : snippet) {
    if (c == '\n' || c == '\t') c = ' ';
  }
  if (payload.size() > 80) snippet += "...";
  return snippet;
}

QuarantineRecord QuarantineFromFact(const WalFact& fact,
                                    const std::string& reason,
                                    const std::string& detail) {
  QuarantineRecord record;
  record.attribute = fact.attribute;
  record.value = std::to_string(fact.value);
  record.unit = fact.unit;
  record.date_iso = fact.date_iso;
  record.location = fact.location;
  record.url = fact.url;
  record.reason = reason;
  record.detail = detail;
  return record;
}

Result<RecoveredWarehouse> OpenImpl(const std::string& dir,
                                    const RecoveryOptions& options, Fs* fs,
                                    MetricRegistry* metrics) {
  std::vector<std::string> issues;

  // 1. Sweep leftover snapshot build directories: they are by definition
  // uncommitted (the commit point is the directory rename).
  std::vector<std::string> tmp_leftovers;
  DWQA_ASSIGN_OR_RETURN(std::vector<SnapshotInfo> snapshots,
                        ListSnapshots(dir, fs, &tmp_leftovers));
  for (const std::string& tmp : tmp_leftovers) {
    DWQA_RETURN_NOT_OK(fs->RemoveAll(dir + "/" + tmp));
    issues.push_back("removed uncommitted snapshot build dir '" + tmp + "'");
  }

  // 2. Newest snapshot that verifies wins; corrupt ones are skipped.
  std::optional<Warehouse> warehouse;
  Lsn snapshot_lsn = 0;
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    const std::string path = dir + "/" + it->name;
    auto manifest = VerifySnapshot(path, fs);
    if (!manifest.ok()) {
      issues.push_back("snapshot '" + it->name + "' failed verification, "
                       "falling back: " + manifest.status().message());
      continue;
    }
    auto loaded = WarehousePersistence::Load(path, fs);
    if (!loaded.ok()) {
      issues.push_back("snapshot '" + it->name + "' verified but did not "
                       "load, falling back: " + loaded.status().message());
      continue;
    }
    warehouse.emplace(std::move(*loaded));
    snapshot_lsn = it->lsn;
    break;
  }
  if (!warehouse.has_value()) {
    if (!options.bootstrap_schema.has_value()) {
      return Status::NotFound(
          "recovery of '" + dir + "': no usable snapshot and no bootstrap "
          "schema to build an empty warehouse from");
    }
    DWQA_ASSIGN_OR_RETURN(Warehouse empty,
                          Warehouse::Create(*options.bootstrap_schema));
    warehouse.emplace(std::move(empty));
    if (!snapshots.empty()) {
      issues.push_back("no snapshot verified; rebuilt from bootstrap "
                       "schema + full WAL replay");
    }
  }

  RecoveredWarehouse recovered(std::move(*warehouse));
  recovered.snapshot_lsn = snapshot_lsn;
  recovered.last_lsn = snapshot_lsn;
  recovered.issues = std::move(issues);

  // View state is derivable: rebuild it from the snapshot's fact multiset
  // now, then let the WAL replay below stream every recovered fact through
  // the incremental-maintenance hook — the exact path the live feed takes.
  if (options.views != nullptr) {
    recovered.warehouse.AttachViews(options.views);
    DWQA_RETURN_NOT_OK(options.views->Bind(recovered.warehouse));
  }

  // 3. Scan the WAL; cut the torn tail (those bytes never committed).
  DWQA_ASSIGN_OR_RETURN(WalScan scan, ScanWal(dir, fs));
  for (const std::string& issue : scan.issues) {
    recovered.issues.push_back(issue);
  }
  if (scan.torn_tail && options.truncate_torn_tail) {
    DWQA_ASSIGN_OR_RETURN(recovered.torn_bytes_truncated,
                          TruncateTornTail(dir, scan, fs));
    if (metrics != nullptr) {
      metrics->GetCounter(kMetricRecoveryTornBytes)
          ->Increment(static_cast<double>(recovered.torn_bytes_truncated));
    }
  }
  recovered.corrupt_records = scan.corrupt_records.size();
  for (const WalRecord& corrupt : scan.corrupt_records) {
    QuarantineRecord record;
    record.reason = "WalCorrupt";  // qa::RejectReason::kWalCorrupt's name.
    record.detail = "WAL record " + std::to_string(corrupt.lsn) +
                    " failed its CRC: " + PayloadSnippet(corrupt.payload);
    recovered.quarantine.Add(std::move(record));
  }

  // 4. Idempotent replay of the tail through the live ETL path.
  EtlLoader loader(&recovered.warehouse);
  for (const WalRecord& rec : scan.records) {
    if (rec.lsn <= recovered.last_lsn) {
      ++recovered.skipped_covered;
      continue;
    }
    recovered.last_lsn = rec.lsn;
    auto fact = WalFactSerde::FromPayload(rec.payload);
    if (!fact.ok()) {
      QuarantineRecord record;
      record.reason = "WalCorrupt";
      record.detail = "WAL record " + std::to_string(rec.lsn) +
                      " unparseable: " + fact.status().message();
      recovered.quarantine.Add(std::move(record));
      continue;
    }
    if (options.validate) {
      std::string reject = options.validate(*fact);
      if (!reject.empty()) {
        recovered.quarantine.Add(QuarantineFromFact(
            *fact, reject, "rejected by validator during replay of WAL "
                           "record " + std::to_string(rec.lsn)));
        continue;
      }
    }
    Status loaded = loader.LoadRecord(fact->fact_name, fact->record);
    if (!loaded.ok()) {
      recovered.quarantine.Add(QuarantineFromFact(
          *fact, "EtlRejected", "replay of WAL record " +
                                    std::to_string(rec.lsn) + ": " +
                                    loaded.message()));
      continue;
    }
    ++recovered.replayed;
  }

  if (metrics != nullptr) {
    metrics->GetCounter(kMetricRecoveryReplayed)
        ->Increment(static_cast<double>(recovered.replayed));
    metrics->GetCounter(kMetricRecoveryQuarantined)
        ->Increment(static_cast<double>(recovered.quarantine.size()));
    metrics->GetCounter(kMetricRecoveryCorruptRecords)
        ->Increment(static_cast<double>(recovered.corrupt_records));
    metrics->GetGauge(kMetricRecoverySnapshotLsn)
        ->Set(static_cast<double>(recovered.snapshot_lsn));
  }
  return recovered;
}

}  // namespace

Result<RecoveredWarehouse> Recovery::Open(const std::string& dir,
                                          RecoveryOptions options) {
  Fs* fs = FsOrReal(options.fs);
  MetricRegistry* metrics = options.metrics;
  Histogram* latency =
      metrics != nullptr
          ? metrics->GetHistogram(kMetricRecoveryOpenLatency)
          : nullptr;
  ScopedLatencyTimer timer(latency);
  auto recovered = OpenImpl(dir, options, fs, metrics);
  if (metrics != nullptr) {
    metrics
        ->GetCounter(kMetricRecoveryOpens,
                     {{"outcome", recovered.ok() ? "ok" : "error"}})
        ->Increment();
  }
  return recovered;
}

Result<FsckReport> Fsck(const std::string& dir, FsckOptions options) {
  Fs* fs = FsOrReal(options.fs);
  FsckReport report;

  std::vector<std::string> tmp_leftovers;
  DWQA_ASSIGN_OR_RETURN(std::vector<SnapshotInfo> snapshots,
                        ListSnapshots(dir, fs, &tmp_leftovers));
  for (const std::string& tmp : tmp_leftovers) {
    report.issues.push_back("uncommitted snapshot build dir '" + tmp + "'");
  }
  report.snapshots = snapshots.size();
  for (const SnapshotInfo& info : snapshots) {
    auto manifest = VerifySnapshot(dir + "/" + info.name, fs);
    if (!manifest.ok()) {
      report.issues.push_back(manifest.status().message());
      continue;
    }
    if (manifest->lsn != info.lsn) {
      report.issues.push_back(
          "snapshot '" + info.name + "' manifest LSN " +
          std::to_string(manifest->lsn) + " does not match directory name");
      continue;
    }
    report.snapshot_lsn = std::max(report.snapshot_lsn, info.lsn);
  }

  DWQA_ASSIGN_OR_RETURN(WalScan scan, ScanWal(dir, fs));
  for (const std::string& issue : scan.issues) {
    report.issues.push_back(issue);
  }
  report.wal_records = scan.records.size();
  report.wal_last_lsn = scan.last_lsn;

  // LSN contiguity: the writer assigns consecutive LSNs, so holes inside
  // the retained log mean lost records — unless a CRC-corrupt record (its
  // own issue above) occupies the hole.
  size_t missing = 0;
  for (size_t i = 1; i < scan.records.size(); ++i) {
    Lsn prev = scan.records[i - 1].lsn;
    Lsn cur = scan.records[i].lsn;
    if (cur > prev + 1) missing += cur - prev - 1;
  }
  if (missing > scan.corrupt_records.size()) {
    report.issues.push_back(
        std::to_string(missing - scan.corrupt_records.size()) +
        " WAL record(s) missing from otherwise-contiguous LSN sequence");
  }

  // Snapshot ↔ WAL continuity: everything past the newest snapshot must
  // still be in the log, so the first retained record may not leave a gap.
  if (!scan.records.empty() &&
      scan.records.front().lsn > report.snapshot_lsn + 1) {
    report.issues.push_back(
        "WAL starts at LSN " + std::to_string(scan.records.front().lsn) +
        " but newest snapshot covers only up to " +
        std::to_string(report.snapshot_lsn) + ": records in between are "
        "unrecoverable");
  }

  if (options.has_checkpoint_lsn) {
    Lsn recovered_lsn = std::max(report.wal_last_lsn, report.snapshot_lsn);
    if (options.checkpoint_lsn > recovered_lsn) {
      report.issues.push_back(
          "feed checkpoint records WAL position " +
          std::to_string(options.checkpoint_lsn) +
          " beyond the durable data (recovered LSN " +
          std::to_string(recovered_lsn) + "): stale or foreign checkpoint");
    }
  }
  return report;
}

}  // namespace dw
}  // namespace dwqa
