#include "dw/schema.h"

#include <unordered_set>

#include "common/string_util.h"

namespace dwqa {
namespace dw {

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kSum:
      return "SUM";
    case AggFn::kCount:
      return "COUNT";
    case AggFn::kAvg:
      return "AVG";
    case AggFn::kMin:
      return "MIN";
    case AggFn::kMax:
      return "MAX";
  }
  return "?";
}

Result<size_t> DimensionDef::LevelIndex(std::string_view level) const {
  for (size_t i = 0; i < levels.size(); ++i) {
    if (ToLower(levels[i].name) == ToLower(level)) return i;
  }
  return Status::NotFound("dimension '" + name + "' has no level '" +
                          std::string(level) + "'");
}

Result<size_t> FactDef::MeasureIndex(std::string_view measure) const {
  for (size_t i = 0; i < measures.size(); ++i) {
    if (ToLower(measures[i].name) == ToLower(measure)) return i;
  }
  return Status::NotFound("fact '" + name + "' has no measure '" +
                          std::string(measure) + "'");
}

Result<size_t> FactDef::RoleIndex(std::string_view role) const {
  for (size_t i = 0; i < roles.size(); ++i) {
    if (ToLower(roles[i].role) == ToLower(role)) return i;
  }
  return Status::NotFound("fact '" + name + "' has no dimension role '" +
                          std::string(role) + "'");
}

Status MdSchema::AddDimension(DimensionDef dim) {
  if (dim.name.empty()) {
    return Status::InvalidArgument("dimension name must not be empty");
  }
  if (dim.levels.empty()) {
    return Status::InvalidArgument("dimension '" + dim.name +
                                   "' must declare at least one level");
  }
  if (FindDimension(dim.name).ok()) {
    return Status::AlreadyExists("dimension '" + dim.name + "' exists");
  }
  dimensions_.push_back(std::move(dim));
  return Status::OK();
}

Status MdSchema::AddFact(FactDef fact) {
  if (fact.name.empty()) {
    return Status::InvalidArgument("fact name must not be empty");
  }
  if (FindFact(fact.name).ok()) {
    return Status::AlreadyExists("fact '" + fact.name + "' exists");
  }
  for (const DimRole& role : fact.roles) {
    if (!FindDimension(role.dimension).ok()) {
      return Status::NotFound("fact '" + fact.name +
                              "' references unknown dimension '" +
                              role.dimension + "'");
    }
  }
  facts_.push_back(std::move(fact));
  return Status::OK();
}

Result<const DimensionDef*> MdSchema::FindDimension(
    std::string_view name) const {
  for (const DimensionDef& d : dimensions_) {
    if (ToLower(d.name) == ToLower(name)) return &d;
  }
  return Status::NotFound("no dimension '" + std::string(name) + "'");
}

Result<const FactDef*> MdSchema::FindFact(std::string_view name) const {
  for (const FactDef& f : facts_) {
    if (ToLower(f.name) == ToLower(name)) return &f;
  }
  return Status::NotFound("no fact '" + std::string(name) + "'");
}

Status MdSchema::Validate() const {
  for (const FactDef& f : facts_) {
    std::unordered_set<std::string> roles;
    for (const DimRole& r : f.roles) {
      if (!roles.insert(ToLower(r.role)).second) {
        return Status::InvalidArgument("fact '" + f.name +
                                       "' has duplicate role '" + r.role +
                                       "'");
      }
      DWQA_RETURN_NOT_OK(FindDimension(r.dimension).status());
    }
    std::unordered_set<std::string> measures;
    for (const MeasureDef& m : f.measures) {
      if (!measures.insert(ToLower(m.name)).second) {
        return Status::InvalidArgument("fact '" + f.name +
                                       "' has duplicate measure '" + m.name +
                                       "'");
      }
    }
  }
  return Status::OK();
}

}  // namespace dw
}  // namespace dwqa
