#ifndef DWQA_DW_WAREHOUSE_H_
#define DWQA_DW_WAREHOUSE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dw/schema.h"
#include "dw/table.h"

namespace dwqa {
namespace dw {

class ViewCatalog;

/// Surrogate key of a dimension member (row in the dimension table).
using MemberId = int32_t;
constexpr MemberId kInvalidMember = -1;

/// \brief Star-schema storage for one MdSchema.
///
/// Physical layout: one denormalized dimension table per dimension (one
/// column per hierarchy level, one row per base-level member) and one fact
/// table per fact (one int64 surrogate-key column per dimension role plus
/// the measure columns).
class Warehouse {
 public:
  /// Builds the physical tables for `schema` (validated first).
  static Result<Warehouse> Create(MdSchema schema);

  const MdSchema& schema() const { return schema_; }

  /// Registers (or finds) a member from its level path, finest level first:
  /// {"El Prat", "Barcelona", "Catalonia", "Spain"} for an Airport member.
  /// The path may be shorter than the hierarchy (missing coarse levels stay
  /// null). Re-registration with a consistent path returns the existing id.
  Result<MemberId> AddMember(std::string_view dimension,
                             const std::vector<std::string>& path);

  /// Finds a member by its base-level name.
  Result<MemberId> FindMember(std::string_view dimension,
                              std::string_view base_name) const;

  /// Value of `member` at `level` of `dimension` ("" when null).
  Result<std::string> MemberLevelValue(std::string_view dimension,
                                       MemberId member,
                                       std::string_view level) const;

  /// All base-level member names of a dimension (insertion order).
  Result<std::vector<std::string>> MemberNames(
      std::string_view dimension) const;

  /// Appends a fact row: one member id per declared role (in declaration
  /// order) and one value per measure.
  Status InsertFact(std::string_view fact,
                    const std::vector<MemberId>& member_per_role,
                    const std::vector<Value>& measures);

  /// The fact table for `fact` (read-only view used by the OLAP engine).
  Result<const Table*> FactTable(std::string_view fact) const;

  /// The dimension table for `dimension`.
  Result<const Table*> DimensionTable(std::string_view dimension) const;

  /// Number of rows of a fact table.
  Result<size_t> FactRowCount(std::string_view fact) const;

  /// Attaches a materialized-view catalog: every subsequent InsertFact
  /// routes its delta through ViewCatalog::OnFactInserted (incremental
  /// maintenance). The catalog is caller-owned and must outlive the
  /// warehouse. The pointer travels with warehouse moves; the catalog never
  /// points back, so moving the warehouse (recovery does, repeatedly) is
  /// safe. Null detaches.
  void AttachViews(ViewCatalog* views) { views_ = views; }

  /// The attached view catalog (null = none). BI readers consult it first;
  /// the cost estimator reads its cardinalities.
  ViewCatalog* views() const { return views_; }

 private:
  Warehouse() = default;

  ViewCatalog* views_ = nullptr;

  MdSchema schema_;
  /// Parallel to schema_.dimensions().
  std::vector<Table> dim_tables_;
  /// dimension index -> base-name (lowercased) -> member id.
  std::vector<std::unordered_map<std::string, MemberId>> member_index_;
  /// Parallel to schema_.facts().
  std::vector<Table> fact_tables_;

  Result<size_t> DimIndex(std::string_view dimension) const;
  Result<size_t> FactIndex(std::string_view fact) const;
};

}  // namespace dw
}  // namespace dwqa

#endif  // DWQA_DW_WAREHOUSE_H_
